package hbnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// A Feed opens one subscriber's view of a heartbeat stream, positioned
// after global sequence number since — the server calls it once per
// accepted connection with the cursor the subscriber presented, so every
// subscriber gets its own independent stream and a reconnecting one
// resumes where it left off. Streams that also implement io.Closer are
// closed when the connection ends.
type Feed func(ctx context.Context, since uint64) (observer.Stream, error)

// HeartbeatFeed publishes a live in-process Heartbeat: each subscriber
// gets a cursor subscription (heartbeat.Heartbeat.SubscribeFrom via
// observer.HeartbeatStreamFrom), so replay-then-live-push and Missed
// accounting behave exactly like a local subscription.
func HeartbeatFeed(hb *heartbeat.Heartbeat) Feed {
	return func(ctx context.Context, since uint64) (observer.Stream, error) {
		return observer.HeartbeatStreamFrom(hb, since), nil
	}
}

// FileFeed publishes a heartbeat ring or log file: the relay case, where
// the hbnet server and the observed application share a filesystem but
// subscribers do not. Each subscriber opens its own live tail
// (observer.FollowFileFrom — readers never coordinate, so concurrent
// subscribers cost nothing extra), tailed every poll (poll <= 0 selects
// observer.DefaultPollInterval). The variant is detected per open, and the
// tail survives the file being deleted and recreated by a restarted
// producer — including in the other format — without dropping the
// connection.
func FileFeed(path string, poll time.Duration) Feed {
	return FileFeedClock(path, poll, nil)
}

// FileFeedClock is FileFeed on an explicit clock: subscriber tails poll on
// clk's time, so a simulated server relays a file at virtual speed. A nil
// clk is the wall clock.
func FileFeedClock(path string, poll time.Duration, clk heartbeat.Clock) Feed {
	return func(ctx context.Context, since uint64) (observer.Stream, error) {
		s, err := observer.FollowFileClock(path, poll, since, clk)
		if err != nil {
			return nil, fmt.Errorf("hbnet: open feed file: %w", err)
		}
		return s, nil
	}
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithWriteTimeout bounds each batch write to a subscriber; one that stops
// draining its socket for longer is disconnected rather than allowed to
// pin the stream goroutine forever (it reconnects with its cursor and
// resumes, so nothing is lost that the history still retains). The default
// is 10 seconds; d <= 0 disables the bound.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithHandshakeTimeout bounds how long an accepted connection may take to
// present its hello (default 5 seconds).
func WithHandshakeTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.handshakeTimeout = d }
}

// WithServerOnError installs a callback for per-connection failures
// (default: dropped; a failed subscriber simply reconnects).
func WithServerOnError(f func(error)) ServerOption {
	return func(s *Server) { s.onError = f }
}

// WithServerClock computes the handshake and write deadlines on clk
// (default: the wall clock). Under a virtual clock — with connections that
// honor deadlines on the same clock, as simnet's do — simulated scenarios
// drive the server's timeout paths deterministically instead of never.
func WithServerClock(clk heartbeat.Clock) ServerOption {
	return func(s *Server) { s.clk = clk }
}

// Server fans named heartbeat feeds out to TCP subscribers. Publish feeds,
// then drive it with Serve (or ListenAndServe); subscribers dial in with
// Dial naming the feed they want. A server with many published feeds is
// the network counterpart of observer.Hub: one endpoint exposing every
// application on the machine, each subscriber picking one stream.
//
// Publish may be called while the server is running; Close stops the
// listeners and disconnects every subscriber.
type Server struct {
	writeTimeout     time.Duration
	handshakeTimeout time.Duration
	onError          func(error)
	clk              heartbeat.Clock // nil = wall clock; deadline arithmetic

	mu        sync.Mutex
	feeds     map[string]feedEntry
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]context.CancelFunc
	closed    bool
	wg        sync.WaitGroup
}

// feedEntry is one published name: a raw record feed or a rollup feed
// (exactly one of the two is set).
type feedEntry struct {
	raw    Feed
	rollup RollupFeed
}

// NewServer creates a server with no feeds published yet.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		writeTimeout:     10 * time.Second,
		handshakeTimeout: 5 * time.Second,
		feeds:            make(map[string]feedEntry),
		listeners:        make(map[net.Listener]struct{}),
		conns:            make(map[net.Conn]context.CancelFunc),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Publish registers feed under name. Re-publishing a name replaces its
// feed for future subscribers; live subscriptions keep their stream.
func (s *Server) Publish(name string, feed Feed) error {
	if feed == nil {
		return fmt.Errorf("hbnet: nil feed for %q", name)
	}
	return s.publish(name, feedEntry{raw: feed})
}

// PublishRollup registers a rollup feed under name: subscribers dial it
// with DialRollup and receive downsampled per-app Rollups instead of raw
// records. A name carries either raw records or rollups, never both —
// the conventional relay pair is Publish(raw) next to PublishRollup.
func (s *Server) PublishRollup(name string, feed RollupFeed) error {
	if feed == nil {
		return fmt.Errorf("hbnet: nil rollup feed for %q", name)
	}
	return s.publish(name, feedEntry{rollup: feed})
}

func (s *Server) publish(name string, e feedEntry) error {
	if len(name) > maxFeedName {
		return fmt.Errorf("hbnet: feed name exceeds %d bytes", maxFeedName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.feeds[name] = e
	return nil
}

// PublishHeartbeat is Publish(name, HeartbeatFeed(hb)).
func (s *Server) PublishHeartbeat(name string, hb *heartbeat.Heartbeat) error {
	if hb == nil {
		return fmt.Errorf("hbnet: nil heartbeat for %q", name)
	}
	return s.Publish(name, HeartbeatFeed(hb))
}

// Serve accepts subscribers on l until the listener fails or the server is
// closed. Like net/http, it blocks; run it in its own goroutine. Serve
// returns nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("hbnet: server closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()
	var acceptDelay time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			// Transient accept failures (EMFILE pressure, aborted
			// handshakes) must not kill the whole relay; back off and
			// retry, the way net/http's Serve does.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if acceptDelay == 0 {
					acceptDelay = 5 * time.Millisecond
				} else if acceptDelay *= 2; acceptDelay > time.Second {
					acceptDelay = time.Second
				}
				if s.onError != nil {
					s.onError(fmt.Errorf("hbnet: accept: %w", err))
				}
				<-heartbeat.After(s.clk, acceptDelay)
				continue
			}
			return err
		}
		acceptDelay = 0
		ctx, cancel := context.WithCancel(context.Background())
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			conn.Close()
			return nil
		}
		s.conns[conn] = cancel
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				cancel()
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.serveConn(ctx, conn); err != nil && s.onError != nil {
				s.onError(fmt.Errorf("hbnet: subscriber %v: %w", conn.RemoteAddr(), err))
			}
		}()
	}
}

// ListenAndServe listens on the TCP address addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops every listener, disconnects every subscriber, and waits for
// their goroutines to exit. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for conn, cancel := range s.conns {
		cancel()
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn runs one subscriber: handshake, replay-then-live-push, done.
func (s *Server) serveConn(ctx context.Context, conn net.Conn) error {
	if s.handshakeTimeout > 0 {
		conn.SetReadDeadline(heartbeat.Now(s.clk).Add(s.handshakeTimeout))
	}
	ftype, body, err := readFrame(conn)
	if err != nil {
		return fmt.Errorf("reading hello: %w", err)
	}
	if ftype != frameHello {
		return fmt.Errorf("first frame is %#x, want hello", ftype)
	}
	name, since, err := decodeHello(body)
	if err != nil {
		s.writeTimed(conn, appendError(nil, err.Error(), true))
		return err
	}
	s.mu.Lock()
	entry := s.feeds[name]
	s.mu.Unlock()
	if entry.raw == nil && entry.rollup == nil {
		err := fmt.Errorf("unknown feed %q", name)
		s.writeTimed(conn, appendError(nil, "hbnet: "+err.Error(), true))
		return err
	}
	if entry.rollup != nil {
		return s.serveRollup(ctx, conn, name, entry.rollup, since)
	}
	stream, err := entry.raw(ctx, since)
	if err != nil {
		// Not permanent: the feed exists but failed to open — a file
		// mid-recreation heals, so the subscriber should keep retrying.
		s.writeTimed(conn, appendError(nil, err.Error(), false))
		return err
	}
	defer func() {
		if c, ok := stream.(io.Closer); ok {
			c.Close()
		}
	}()
	if err := s.writeTimed(conn, appendWelcome(nil, since)); err != nil {
		return fmt.Errorf("writing welcome: %w", err)
	}
	conn.SetReadDeadline(time.Time{})

	ctx, cancel, unwatch := s.watchSubscriber(ctx, conn)
	defer cancel()
	defer unwatch()

	if fs, ok := stream.(frameStream); ok {
		return s.serveFrames(ctx, conn, name, fs)
	}

	cursor := since
	buf := make([]byte, 0, 4096)
	// The encode loop never retains records past appendBatch, so streams
	// that can reuse their record storage (BatchRecycler) get each batch
	// back as soon as its bytes are framed — the server side of the same
	// recycling contract the Relay pump uses on its upstream clients.
	rec, _ := stream.(BatchRecycler)
	for {
		b, err := stream.Next(ctx)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			s.writeTimed(conn, []byte{frameEOF})
			return nil
		case ctx.Err() != nil:
			return nil // subscriber went away or server closed: not a failure
		default:
			s.writeTimed(conn, appendError(nil, err.Error(), false))
			return fmt.Errorf("feed %q: %w", name, err)
		}
		if len(b.Records) <= maxRecordsPerFrame {
			// The steady-state push: one reused buffer, one Write, no
			// per-batch allocation (the length prefix is encoded in place).
			cursor = advanceCursor(cursor, b)
			buf = appendBatch(append(buf[:0], 0, 0, 0, 0), b, cursor)
			if len(buf)-4 > maxFramePayload {
				// Cannot happen with the record cap; guard it with a
				// visible, permanent error rather than a silent livelock.
				s.writeTimed(conn, appendError(nil, errFrameTooLarge.Error(), true))
				return fmt.Errorf("feed %q: %w", name, errFrameTooLarge)
			}
			binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
			if rec != nil {
				rec.Recycle(b)
			}
			if err := s.writeRaw(conn, buf); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return fmt.Errorf("writing batch: %w", err)
			}
			continue
		}
		// A huge replay (a subscriber dialing from 0 against a very large
		// retained history arrives as ONE batch) must not exceed the frame
		// cap — aborting would make the client redial from the same cursor
		// and rebuild the same batch forever. Split the records across
		// frames and flush them in one vectored write; the cursor advances
		// per chunk, so even a disconnect mid-split resumes exactly.
		var group net.Buffers
		recs := b.Records
		for first := true; len(recs) > 0; first = false {
			chunk := b
			chunk.Records = recs
			if len(recs) > maxRecordsPerFrame {
				chunk.Records = recs[:maxRecordsPerFrame]
			}
			recs = recs[len(chunk.Records):]
			if !first {
				chunk.Missed = 0 // lapped records are reported once
			}
			cursor = advanceCursor(cursor, chunk)
			cb := appendBatch(make([]byte, 4, 4+len(chunk.Records)*8), chunk, cursor)
			if len(cb)-4 > maxFramePayload {
				s.writeTimed(conn, appendError(nil, errFrameTooLarge.Error(), true))
				return fmt.Errorf("feed %q: %w", name, errFrameTooLarge)
			}
			binary.BigEndian.PutUint32(cb, uint32(len(cb)-4))
			group = append(group, cb)
		}
		if rec != nil {
			rec.Recycle(b)
		}
		if err := s.writeBuffers(conn, &group); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("writing batch: %w", err)
		}
	}
}

// serveFrames is serveConn's push loop on the encode-once fast path: the
// stream hands each delivery over as a pre-encoded, ref-counted frame
// shared with every other subscriber at the same cursor, and the server
// writes the identical bytes to each connection — no per-connection
// encode, no per-connection buffer. The stream advances its own cursor
// (the frame embeds it), so resume semantics are unchanged.
func (s *Server) serveFrames(ctx context.Context, conn net.Conn, name string, stream frameStream) error {
	for {
		fb, err := stream.NextFrame(ctx)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			s.writeTimed(conn, []byte{frameEOF})
			return nil
		case ctx.Err() != nil:
			return nil // subscriber went away or server closed: not a failure
		default:
			s.writeTimed(conn, appendError(nil, err.Error(), false))
			return fmt.Errorf("feed %q: %w", name, err)
		}
		werr := s.writeRaw(conn, fb.data)
		fb.release()
		if werr != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("writing batch: %w", werr)
		}
	}
}

// watchSubscriber watches the subscriber side of an established stream:
// the subscriber never speaks again, so a read can only return a close or
// an error, either way meaning the connection is done — the only way to
// notice a subscriber that vanished while the stream is idle (nothing to
// write, nothing to fail). The returned cleanup closes the connection and
// reaps the watch goroutine; call it (deferred) before cancel.
func (s *Server) watchSubscriber(ctx context.Context, conn net.Conn) (context.Context, context.CancelFunc, func()) {
	watchDone := make(chan struct{})
	ctx, cancel := context.WithCancel(ctx)
	go func() {
		defer close(watchDone)
		var one [1]byte
		conn.Read(one[:])
		cancel()
	}()
	return ctx, cancel, func() { conn.Close(); <-watchDone }
}

// serveRollup runs one rollup subscriber: same shape as the raw path, but
// each delivery is one rollup frame (the ring bounds batch sizes, so no
// frame splitting is needed).
func (s *Server) serveRollup(ctx context.Context, conn net.Conn, name string, feed RollupFeed, since uint64) error {
	stream, err := feed(ctx, since)
	if err != nil {
		s.writeTimed(conn, appendError(nil, err.Error(), false))
		return err
	}
	defer func() {
		if c, ok := stream.(io.Closer); ok {
			c.Close()
		}
	}()
	if err := s.writeTimed(conn, appendWelcome(nil, since)); err != nil {
		return fmt.Errorf("writing welcome: %w", err)
	}
	conn.SetReadDeadline(time.Time{})

	ctx, cancel, unwatch := s.watchSubscriber(ctx, conn)
	defer cancel()
	defer unwatch()

	buf := make([]byte, 0, 4096)
	for {
		rb, err := stream.Next(ctx)
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			s.writeTimed(conn, []byte{frameEOF})
			return nil
		case ctx.Err() != nil:
			return nil // subscriber went away or server closed: not a failure
		default:
			s.writeTimed(conn, appendError(nil, err.Error(), false))
			return fmt.Errorf("rollup feed %q: %w", name, err)
		}
		buf = appendRollups(append(buf[:0], 0, 0, 0, 0), rb)
		if len(buf)-4 > maxFramePayload {
			// Cannot happen with the per-batch rollup cap; guard it with a
			// visible, permanent error rather than a silent livelock.
			s.writeTimed(conn, appendError(nil, errFrameTooLarge.Error(), true))
			return fmt.Errorf("rollup feed %q: %w", name, errFrameTooLarge)
		}
		binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
		if err := s.writeRaw(conn, buf); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("writing rollup batch: %w", err)
		}
	}
}

// advanceCursor computes the resume cursor after delivering b. For real
// sequence numbers (every built-in stream) the newest record's Seq is
// exact for everything up to that record — including when it regressed
// below the cursor, which means the underlying stream resynchronized to a
// restarted producer's new seq space and the wire cursor must follow it
// down (a synthetic cursor left above the new head would make the next
// resume resync again and replay everything already delivered). What the
// last Seq does NOT cover is Missed that trails it: a batch may account
// for more stream positions than the cursor-to-last-Seq span (a ring that
// lapped between its newest retained record and its head), and a cursor
// left at the last Seq would make the next read re-report that loss.
// Advance past the excess. Foreign zero-Seq streams fall back to counting
// delivered and lapped records.
func advanceCursor(cursor uint64, b observer.Batch) uint64 {
	if n := len(b.Records); n > 0 && b.Records[n-1].Seq > 0 {
		last := b.Records[n-1].Seq
		if last < cursor {
			return last // resync-down: the new seq space's head is exact
		}
		span := last - cursor
		if accounted := uint64(n) + b.Missed; accounted > span {
			return last + (accounted - span) // trailing Missed
		}
		return last
	}
	return cursor + uint64(len(b.Records)) + b.Missed
}

// writeTimed frames and writes one payload under the server's write
// timeout (the rare handshake/shutdown frames; batches use writeRaw).
func (s *Server) writeTimed(conn net.Conn, payload []byte) error {
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(heartbeat.Now(s.clk).Add(s.writeTimeout))
	}
	err := writeFrame(conn, payload)
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// writeRaw writes an already-framed buffer under the write timeout.
func (s *Server) writeRaw(conn net.Conn, framed []byte) error {
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(heartbeat.Now(s.clk).Add(s.writeTimeout))
	}
	_, err := conn.Write(framed)
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	return err
}

// writeBuffers writes a group of already-framed buffers under the write
// timeout in one vectored write (writev, on platforms that batch it).
func (s *Server) writeBuffers(conn net.Conn, group *net.Buffers) error {
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(heartbeat.Now(s.clk).Add(s.writeTimeout))
	}
	_, err := group.WriteTo(conn)
	if s.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Time{})
	}
	return err
}
