package heartbeat

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// DefaultWindow is the default-window fallback used when New is given a
// window of 0.
const DefaultWindow = 20

// Heartbeat is an application's heartbeat handle: a global history of
// records, a default averaging window, and an advertised target heart-rate
// range. A single Heartbeat is shared by the whole application; per-thread
// histories hang off it via Thread. All methods are safe for concurrent use.
type Heartbeat struct {
	window int
	clock  Clock
	store  store
	sink   Sink

	targetMin atomic.Uint64 // math.Float64bits
	targetMax atomic.Uint64
	targetSet atomic.Bool

	sinkErr atomic.Pointer[error]

	mu           sync.Mutex
	threads      []*Thread
	nextThreadID int32
	threadCap    int
	closed       bool
}

type config struct {
	capacity  int
	threadCap int
	clock     Clock
	sink      Sink
	locked    bool
}

// Option configures New.
type Option func(*config)

// WithCapacity sets how many global records are retained (the history ring
// size). The default is max(4*window, 64). Capacities below the window are
// raised to the window so the default window is always computable.
func WithCapacity(n int) Option { return func(c *config) { c.capacity = n } }

// WithThreadCapacity sets how many records each per-thread history retains.
// It defaults to the global capacity.
func WithThreadCapacity(n int) Option { return func(c *config) { c.threadCap = n } }

// WithClock injects the timestamp source (default: the wall clock).
func WithClock(clk Clock) Option { return func(c *config) { c.clock = clk } }

// WithSink registers a Sink that receives every global record as it is
// produced, e.g. an hbfile.Writer exposing the heartbeat to other processes.
func WithSink(s Sink) Option { return func(c *config) { c.sink = s } }

// WithLockedStore selects the mutex-guarded history instead of the default
// lock-free one. It exists for the locking-strategy ablation; the lock-free
// store is preferred.
func WithLockedStore() Option { return func(c *config) { c.locked = true } }

// New creates a Heartbeat whose default averaging window is window beats
// (HB_initialize in the paper). A window of 0 selects DefaultWindow;
// negative windows are an error.
func New(window int, opts ...Option) (*Heartbeat, error) {
	if window < 0 {
		return nil, fmt.Errorf("heartbeat: negative window %d", window)
	}
	if window == 0 {
		window = DefaultWindow
	}
	if window < 2 {
		window = 2 // a rate needs at least two beats
	}
	cfg := config{clock: SystemClock()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.capacity <= 0 {
		cfg.capacity = 4 * window
		if cfg.capacity < 64 {
			cfg.capacity = 64
		}
	}
	if cfg.capacity < window {
		cfg.capacity = window
	}
	if cfg.threadCap <= 0 {
		cfg.threadCap = cfg.capacity
	}
	if cfg.clock == nil {
		return nil, errors.New("heartbeat: nil clock")
	}
	h := &Heartbeat{
		window:    window,
		clock:     cfg.clock,
		sink:      cfg.sink,
		threadCap: cfg.threadCap,
	}
	if cfg.locked {
		h.store = newLockedStore(cfg.capacity)
	} else {
		h.store = newLockfreeStore(cfg.capacity)
	}
	return h, nil
}

// Window returns the default averaging window in beats.
func (h *Heartbeat) Window() int { return h.window }

// Capacity returns how many global records are retained.
func (h *Heartbeat) Capacity() int { return h.store.capacity() }

// Beat registers a global heartbeat with tag 0 (HB_heartbeat, local=false).
func (h *Heartbeat) Beat() { h.beat(0, 0) }

// BeatTag registers a global heartbeat carrying a caller-defined tag, e.g.
// the frame type of a video encoder or a sequence number.
func (h *Heartbeat) BeatTag(tag int64) { h.beat(tag, 0) }

func (h *Heartbeat) beat(tag int64, producer int32) {
	now := h.clock.Now()
	seq := h.store.append(now.UnixNano(), tag, producer)
	if h.sink != nil {
		r := Record{Seq: seq, Time: now, Tag: tag, Producer: producer}
		if err := h.sink.WriteRecord(r); err != nil {
			h.sinkErr.Store(&err)
		}
	}
}

// Count returns the total number of global heartbeats ever registered.
func (h *Heartbeat) Count() uint64 { return h.store.total() }

// Rate returns the average heart rate over the last window beats
// (HB_current_rate). window == 0 uses the default window; windows larger
// than the retained history are silently clipped. ok is false until at
// least two beats spanning positive time are available.
func (h *Heartbeat) Rate(window int) (perSec float64, ok bool) {
	r, ok := h.RateDetail(window)
	return r.PerSec, ok
}

// RateDetail is Rate with the full measurement (span, window endpoints).
func (h *Heartbeat) RateDetail(window int) (Rate, bool) {
	return rateOf(h.History(h.clipWindow(window)))
}

func (h *Heartbeat) clipWindow(window int) int {
	if window <= 0 {
		return h.window
	}
	if window > h.store.capacity() {
		return h.store.capacity()
	}
	return window
}

// History returns up to n of the most recent global records, oldest to
// newest (HB_get_history). n larger than the retained history is clipped.
func (h *Heartbeat) History(n int) []Record { return h.store.last(n) }

// SetTarget advertises the heart-rate goal [min, max] beats per second
// (HB_set_target_rate) for external observers.
func (h *Heartbeat) SetTarget(min, max float64) error {
	if math.IsNaN(min) || math.IsNaN(max) || min < 0 || max < min {
		return fmt.Errorf("heartbeat: invalid target [%v, %v]", min, max)
	}
	h.targetMin.Store(math.Float64bits(min))
	h.targetMax.Store(math.Float64bits(max))
	h.targetSet.Store(true)
	if h.sink != nil {
		if ts, ok := h.sink.(TargetSink); ok {
			if err := ts.WriteTarget(min, max); err != nil {
				h.sinkErr.Store(&err)
			}
		}
	}
	return nil
}

// Target returns the advertised heart-rate goal (HB_get_target_min/max).
// ok is false if SetTarget was never called.
func (h *Heartbeat) Target() (min, max float64, ok bool) {
	if !h.targetSet.Load() {
		return 0, 0, false
	}
	return math.Float64frombits(h.targetMin.Load()), math.Float64frombits(h.targetMax.Load()), true
}

// Thread registers a per-thread heartbeat handle with a private history
// (the paper's local heartbeats). Each concurrent worker should register its
// own handle; handles remain valid for the life of the Heartbeat.
func (h *Heartbeat) Thread(name string) *Thread {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextThreadID++
	t := newThread(h, h.nextThreadID, name, h.threadCap)
	h.threads = append(h.threads, t)
	return t
}

// Threads returns all registered per-thread handles in registration order.
func (h *Heartbeat) Threads() []*Thread {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Thread, len(h.threads))
	copy(out, h.threads)
	return out
}

// SinkErr returns the most recent error reported by the sink, if any.
func (h *Heartbeat) SinkErr() error {
	if p := h.sinkErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close releases the sink (if it implements io.Closer). The Heartbeat
// itself holds no other resources; beats after Close still record in memory
// but sink writes will report errors via SinkErr. Close is idempotent.
func (h *Heartbeat) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	if c, ok := h.sink.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
