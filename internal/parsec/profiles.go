package parsec

import (
	"fmt"

	"repro/sim"
)

// Profile describes one PARSEC benchmark's behaviour on the paper's
// eight-core reference platform (Table 2): its average heart rate on the
// native input and its parallel scaling. Together with a simulated
// machine's per-core rate, it yields the abstract cost of one beat of work.
type Profile struct {
	// Name is the benchmark name.
	Name string
	// BeatLabel is where the heartbeat is inserted (Table 2).
	BeatLabel string
	// PaperRate is the average heart rate the paper reports on the
	// eight-core x86 server (beats/s).
	PaperRate float64
	// ParallelFrac is the Amdahl parallel fraction used in simulation.
	ParallelFrac float64
	// Beats is how many heartbeats the Table 2 reproduction simulates.
	Beats int
}

// Profiles returns the ten benchmarks in Table 2 order, with the paper's
// measured rates.
func Profiles() []Profile {
	return []Profile{
		{Name: "blackscholes", BeatLabel: "Every 25000 options", PaperRate: 561.03, ParallelFrac: 0.99, Beats: 400},
		{Name: "bodytrack", BeatLabel: "Every frame", PaperRate: 4.31, ParallelFrac: 0.95, Beats: 261},
		{Name: "canneal", BeatLabel: "Every 1875 moves", PaperRate: 1043.76, ParallelFrac: 0.90, Beats: 400},
		{Name: "dedup", BeatLabel: "Every \"chunk\"", PaperRate: 264.30, ParallelFrac: 0.95, Beats: 400},
		{Name: "facesim", BeatLabel: "Every frame", PaperRate: 0.72, ParallelFrac: 0.90, Beats: 100},
		{Name: "ferret", BeatLabel: "Every query", PaperRate: 40.78, ParallelFrac: 0.97, Beats: 400},
		{Name: "fluidanimate", BeatLabel: "Every frame", PaperRate: 41.25, ParallelFrac: 0.96, Beats: 400},
		{Name: "streamcluster", BeatLabel: "Every 200000 points", PaperRate: 0.02, ParallelFrac: 0.93, Beats: 60},
		{Name: "swaptions", BeatLabel: "Every \"swaption\"", PaperRate: 2.27, ParallelFrac: 0.99, Beats: 200},
		{Name: "x264", BeatLabel: "Every frame", PaperRate: 11.32, ParallelFrac: 0.93, Beats: 512},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("parsec: unknown benchmark %q", name)
}

// OpsPerBeat returns the abstract operation count of one beat of work,
// calibrated so that a machine with the given per-core rate reproduces
// PaperRate on cores cores. (Table 2's absolute values are platform
// measurements; the calibration anchors our simulated platform to the
// paper's and the experiment then validates the whole pipeline — kernels,
// machine, heartbeats, rate windows — against it.)
func (p Profile) OpsPerBeat(coreRate float64, cores int) float64 {
	return coreRate * sim.Speedup(cores, p.ParallelFrac) / p.PaperRate
}

// Work returns one beat of simulated work.
func (p Profile) Work(coreRate float64, cores int) sim.Work {
	return sim.Work{Ops: p.OpsPerBeat(coreRate, cores), ParallelFrac: p.ParallelFrac}
}
