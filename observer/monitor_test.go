package observer_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

func TestMonitorOnErrorCallback(t *testing.T) {
	boom := errors.New("source unavailable")
	src := sourceFunc(func(int) (observer.Snapshot, error) { return observer.Snapshot{}, boom })
	var errs atomic.Int32
	m := observer.NewMonitor(src, time.Millisecond, func(observer.Status) {
		t.Error("status delivered from failing source")
	}, observer.WithOnError(func(err error) {
		if errors.Is(err, boom) {
			errs.Add(1)
		}
	}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	deadline := time.After(5 * time.Second)
	for errs.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no error callbacks")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	<-done
}

func TestMonitorMaxRecordsOption(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	// First 30 beats slow, last 4 fast.
	for i := 0; i < 30; i++ {
		clk.Advance(time.Second)
		hb.Beat()
	}
	for i := 0; i < 4; i++ {
		clk.Advance(10 * time.Millisecond)
		hb.Beat()
	}
	// A classifier windowed to the last 4 records sees only the fast burst.
	m := observer.NewMonitor(observer.HeartbeatSource(hb), time.Second, nil,
		observer.WithClassifier(&observer.Classifier{Clock: clk, Window: 4}),
		observer.WithMaxRecords(4))
	st, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !st.RateOK || st.Rate < 99 || st.Rate > 101 {
		t.Fatalf("windowed rate = %v, want ~100", st.Rate)
	}
}

func TestMonitorPollWithDefaults(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	for i := 0; i < 10; i++ {
		clk.Advance(100 * time.Millisecond)
		hb.Beat()
	}
	m := observer.NewMonitor(observer.HeartbeatSource(hb), time.Second, nil)
	st, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	// Default classifier uses the wall clock; the beats are at simulated
	// epoch so SinceLast is enormous — flatline is the correct judgment,
	// proving defaults engage end to end.
	if st.Count != 10 {
		t.Fatalf("count = %d", st.Count)
	}
}
