package scheduler_test

import (
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

func TestDVFSGovernorValidation(t *testing.T) {
	hb, _ := heartbeat.New(10)
	m := sim.NewMachine(sim.NewClock(time.Time{}), 8, 1e6)
	if _, err := scheduler.NewDVFSGovernor(nil, m); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := scheduler.NewDVFSGovernor(observer.HeartbeatSource(hb), nil); err == nil {
		t.Fatal("nil machine accepted")
	}
}

// The governor must settle at the lowest frequency step that meets the
// target, and track a load increase back up.
func TestDVFSGovernorSettlesAtMinimumFrequency(t *testing.T) {
	const window = 10
	clk := sim.NewClock(time.Time{})
	m := sim.NewMachine(clk, 8, 1e9)
	hb, err := heartbeat.New(window, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(29, 33)
	gov, err := scheduler.NewDVFSGovernor(observer.HeartbeatSource(hb), m,
		scheduler.WithGovernorWindow(window))
	if err != nil {
		t.Fatal(err)
	}
	// Work sized so f=0.5 gives ~32.5 beats/s: the governor should land
	// there from full frequency (saving power) and return there after a
	// heavy interlude.
	light := sim.Work{Ops: 0.0912e9, ParallelFrac: 0.95}
	heavy := sim.Work{Ops: 0.188e9, ParallelFrac: 0.95}
	run := func(w sim.Work, beats int) {
		for b := 1; b <= beats; b++ {
			m.Execute(w)
			hb.Beat()
			if b%window == 0 {
				if _, err := gov.Step(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run(light, 200)
	if f := m.Frequency(); f != 0.5 {
		t.Fatalf("light-phase frequency = %v, want 0.5", f)
	}
	rate, ok := hb.Rate(0)
	if !ok || rate < 29 || rate > 33 {
		t.Fatalf("light-phase rate = %v, want in window", rate)
	}
	run(heavy, 200)
	if f := m.Frequency(); f != 1.0 {
		t.Fatalf("heavy-phase frequency = %v, want 1.0", f)
	}
	run(light, 200)
	if f := m.Frequency(); f != 0.5 {
		t.Fatalf("frequency after load drop = %v, want 0.5", f)
	}
}

func TestDVFSGovernorHoldsWithoutMeasurement(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	m := sim.NewMachine(clk, 8, 1e6)
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(10, 20)
	gov, err := scheduler.NewDVFSGovernor(observer.HeartbeatSource(hb), m)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Frequency()
	s, err := gov.Step() // no beats yet
	if err != nil {
		t.Fatal(err)
	}
	if s.RateOK || m.Frequency() != before {
		t.Fatalf("governor acted without measurement: %+v, freq %v", s, m.Frequency())
	}
}
