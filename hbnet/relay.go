package hbnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// This file is the hierarchical fan-in tier: a Relay subscribes to many
// upstream heartbeat streams (remote hbnet feeds, local files, in-process
// heartbeats — anything satisfying observer.Stream), merges them into one
// bounded replay ring with its own dense sequence space, reduces them into
// per-app rollup windows, and re-exports both as hbnet feeds. Because the
// merged feed is itself an ordinary feed, relays compose into trees:
// producers → leaf relays → a root relay → one monitor connection, keeping
// every node's fan-in (and every subscriber's connection count) bounded
// while the fleet underneath grows.

// RollupBatch is one delivery of a rollup feed: the rollups of one or more
// emissions, flattened, plus the emission cursor to resume from. Missed
// counts emissions that were dropped from the relay's bounded rollup
// history before this subscriber could read them — downsampling keeps the
// same never-silent loss accounting as raw streams.
type RollupBatch struct {
	Rollups []observer.Rollup
	// Cursor is the emission index of the newest delivered emission; a
	// reconnecting subscriber presents it to resume exactly.
	Cursor uint64
	// Missed counts emissions lapped before delivery.
	Missed uint64
}

// RollupStream is the rollup counterpart of observer.Stream: Next blocks
// until new emissions are published and honors the same non-blocking-drain
// contract (pending data is returned even under an expired ctx; io.EOF
// after the publisher closes).
type RollupStream interface {
	Next(ctx context.Context) (RollupBatch, error)
}

// RollupFeed opens one subscriber's view of a rollup stream, positioned
// after emission number since — the rollup counterpart of Feed.
type RollupFeed func(ctx context.Context, since uint64) (RollupStream, error)

// maxRelayBatch bounds how many records a replay-ring subscriber receives
// per Next, keeping every frame the server builds from it far inside the
// wire caps.
const maxRelayBatch = 1 << 16

// maxRollupBatchBytes bounds the estimated encoded size of one rollup
// delivery (whole emissions; at least one emission is always delivered),
// keeping every frame far inside maxFramePayload even when app names run
// to their maxFeedName limit. A single emission can only exceed it with
// thousands of maximally-named upstreams on one relay — the server's
// frame guard still catches that pathology explicitly.
const maxRollupBatchBytes = 4 << 20

// rollupWireCost over-estimates one rollup's encoded size: its app name
// plus a generous fixed overhead for every other field.
func rollupWireCost(r observer.Rollup) int { return len(r.App) + 64 }

// replayRing is the relay's merged history: a bounded ring of records in
// the relay's own dense sequence space, fanned out to any number of
// cursor-carrying subscribers. Appends re-sequence the records (a relay
// hop assigns hop-local sequence numbers — origin spaces from different
// upstreams collide) and widen the space by the upstream's reported losses,
// so a gap in the upstream surfaces to every subscriber exactly once, as
// Missed, through ordinary cursor arithmetic.
type replayRing struct {
	mu    sync.Mutex
	recs  []heartbeat.Record // ring storage, strictly increasing Seq
	start int
	n     int
	head  uint64 // newest assigned seq, counting gap (missed) seqs
	// notify wakes blocked subscribers; nil while nobody waits. Lazy on
	// purpose: an append only pays for a channel when a subscriber is
	// actually parked, so the saturated fan-in steady state — subscribers
	// always behind, never waiting — closes and recreates nothing.
	notify chan struct{}
	closed bool

	// Shed accounting: winBase is the newest evicted record's Seq — a
	// cursor at or above it is still inside the retained window; a cursor
	// below it has been lapped and the span up to the shed floor is
	// charged to shedTotal when the subscriber next reads. lagBound, when
	// positive, additionally floors every read at head-lagBound (the
	// WithShedLag policy), so a slow subscriber is advanced and the skip
	// counted instead of silently trailing the full ring.
	winBase   uint64
	lagBound  int
	shedTotal uint64

	// Encode-once fan-out cache (guarded by mu): the encoded frame of the
	// last frameSince read, keyed by the cursor it was read from. In the
	// fan-out steady state every subscriber sits at the same cursor, so N
	// subscribers share one encode and one buffer instead of paying N.
	// Invalidated (its reference released) by every append.
	fbuf *frameBuf
	fkey uint64 // the `since` the cached frame was encoded for
	fcur uint64 // the cursor the cached frame advances to
}

func newReplayRing(capacity int) *replayRing {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &replayRing{recs: make([]heartbeat.Record, capacity)}
}

// wakeLocked wakes parked subscribers, if any. Callers hold r.mu.
func (r *replayRing) wakeLocked() {
	if r.notify != nil {
		close(r.notify)
		r.notify = nil
	}
}

// waitChanLocked returns the channel a subscriber with nothing to read
// parks on, creating it on first need. Callers hold r.mu.
func (r *replayRing) waitChanLocked() <-chan struct{} {
	if r.notify == nil {
		r.notify = make(chan struct{})
	}
	return r.notify
}

// append re-sequences recs into the ring. missed widens the sequence space
// without storing records; producer, when >= 0, overwrites each record's
// Producer with the hop-local upstream id.
func (r *replayRing) append(recs []heartbeat.Record, missed uint64, producer int32) {
	if len(recs) == 0 && missed == 0 {
		return
	}
	r.mu.Lock()
	r.head += missed
	for _, rec := range recs {
		r.head++
		rec.Seq = r.head
		if producer >= 0 {
			rec.Producer = producer
		}
		idx := (r.start + r.n) % len(r.recs)
		if r.n < len(r.recs) {
			r.n++
		} else {
			// Overwriting the oldest retained record: every cursor below
			// its seq is now lapped (see winBase).
			r.winBase = r.recs[idx].Seq
			r.start = (r.start + 1) % len(r.recs)
		}
		r.recs[idx] = rec
	}
	if r.fbuf != nil {
		r.fbuf.release()
		r.fbuf = nil
	}
	r.wakeLocked()
	r.mu.Unlock()
}

// close marks the ring ended; subscribers drain and then see io.EOF.
func (r *replayRing) close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.wakeLocked()
	}
	r.mu.Unlock()
}

// shedFloorLocked returns the lowest cursor this read may proceed from:
// winBase (everything below it was lapped out of the ring) raised to
// head-lagBound when the shed-lag policy is set. Callers hold r.mu.
func (r *replayRing) shedFloorLocked() uint64 {
	floor := r.winBase
	if r.lagBound > 0 && r.head > uint64(r.lagBound) && r.head-uint64(r.lagBound) > floor {
		floor = r.head - uint64(r.lagBound)
	}
	return floor
}

// readSince returns up to max retained records with Seq > since plus the
// cursor to resume from, how many seqs below the shed floor were skipped
// for this subscriber (already folded into shedTotal), the current notify
// channel (valid until the next append) and the closed flag. When the
// returned batch is not truncated by max the cursor advances to head, so
// trailing gap seqs (upstream losses with no records) are accounted in the
// same read.
func (r *replayRing) readSince(since uint64, max int) (out []heartbeat.Record, cur uint64, shed uint64, notify <-chan struct{}, closed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	closed = r.closed
	if r.head <= since {
		// Idle — or a foreign cursor from a previous relay life (head <
		// since): return head either way so the caller resynchronizes.
		// Only this branch can leave the caller waiting, so only it pays
		// for a wait channel.
		return nil, r.head, 0, r.waitChanLocked(), closed
	}
	eff := since
	if floor := r.shedFloorLocked(); eff < floor {
		// Lapped (or beyond the lag bound): the span up to the floor was
		// dropped by THIS ring — attribute it, don't just widen Missed.
		shed = floor - eff
		r.shedTotal += shed
		eff = floor
	}
	// First retained index with Seq > eff (records are Seq-ordered).
	i := sort.Search(r.n, func(i int) bool {
		return r.recs[(r.start+i)%len(r.recs)].Seq > eff
	})
	take := r.n - i
	truncated := false
	if take > max {
		take, truncated = max, true
	}
	if take > 0 {
		out = make([]heartbeat.Record, take)
		for k := 0; k < take; k++ {
			out[k] = r.recs[(r.start+i+k)%len(r.recs)]
		}
	}
	if truncated {
		cur = out[len(out)-1].Seq
	} else {
		cur = r.head
	}
	return out, cur, shed, notify, closed
}

// shed returns the cumulative shed count across every subscriber read.
func (r *replayRing) shed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shedTotal
}

// frameSince is readSince's zero-copy counterpart: the same read, returned
// as an encoded batch frame built directly from ring storage — no record
// slice is materialized, and the encode happens at most once per (cursor,
// head) because the result is cached until the next append. The returned
// frame carries one reference owned by the caller; release it after
// writing. A nil frame means nothing newer than since exists — cur then
// reports head so the caller can resynchronize (cur < since) or wait on
// notify (cur == since).
//
// Frame size needs no guard here: take <= maxRelayBatch and a worst-case
// record encodes to ~35 bytes, keeping every frame far inside
// maxFramePayload.
func (r *replayRing) frameSince(since uint64, max int) (fb *frameBuf, cur uint64, shed uint64, notify <-chan struct{}, closed bool) {
	r.mu.Lock()         //hbvet:allow hotpath -- bounded per-feed critical section; the gated contract is zero allocations, not zero locks
	defer r.mu.Unlock() //hbvet:allow hotpath -- pairs with the lock above
	closed = r.closed
	if r.head <= since {
		return nil, r.head, 0, r.waitChanLocked(), closed //hbvet:allow hotpath -- caught-up park path: lazily makes the notify channel, off the delivery path
	}
	eff := since
	if floor := r.shedFloorLocked(); eff < floor {
		// Shed attribution happens before the cache check so a cache hit
		// still charges this subscriber; the shed span stays inside the
		// frame's Missed (computed from the original cursor below), so the
		// wire contract is unchanged — shed refines Missed, never adds to it.
		shed = floor - eff
		r.shedTotal += shed
		eff = floor
	}
	if r.fbuf != nil && r.fkey == since {
		r.fbuf.retain()
		return r.fbuf, r.fcur, shed, notify, closed
	}
	i := sort.Search(r.n, func(i int) bool { //hbvet:allow hotpath -- encode-once path: runs only on cache miss, once per (cursor, head)
		return r.recs[(r.start+i)%len(r.recs)].Seq > eff
	})
	take := r.n - i
	truncated := take > max
	if truncated {
		take = max
		cur = r.recs[(r.start+i+take-1)%len(r.recs)].Seq
	} else {
		cur = r.head // trailing gap seqs are accounted in the same read
	}
	var b observer.Batch
	b.Count = cur
	if d := cur - since; d > uint64(take) {
		b.Missed = d - uint64(take)
	}
	fb = newFrameBuf()                       //hbvet:allow hotpath -- encode-once path: pooled buffer acquired once per (cursor, head)
	buf := append(fb.data, 0, 0, 0, 0)       //hbvet:allow hotpath -- encode-once path: grows pooled storage, amortized across reuse
	buf = appendBatchMeta(buf, b, cur, take) //hbvet:allow hotpath -- encode-once path
	var prevSeq uint64
	var prevNanos int64
	for k := 0; k < take; k++ {
		buf = appendRecordDelta(buf, r.recs[(r.start+i+k)%len(r.recs)], &prevSeq, &prevNanos) //hbvet:allow hotpath -- encode-once path
	}
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	fb.data = buf
	// The cache takes its own reference; the caller keeps the original.
	fb.retain()
	if r.fbuf != nil {
		r.fbuf.release() //hbvet:allow hotpath -- encode-once path: cache handoff, once per new frame
	}
	r.fbuf, r.fkey, r.fcur = fb, since, cur
	return fb, cur, shed, notify, closed
}

// ShedCounter is implemented by subscriber streams that count how many
// sequence numbers the publisher shed to them: records dropped by this
// hop's bounded window (or its WithShedLag policy) rather than lost
// upstream. Shed is always a refinement of the Missed the same subscriber
// observed — shed <= missed, never in addition to it.
type ShedCounter interface {
	Shed() uint64
}

// replayStream is one subscriber's cursor over a replayRing; it satisfies
// observer.Stream with the same resync-and-loss semantics as every other
// stream in the system.
type replayStream struct {
	ring   *replayRing
	cursor uint64
	shedN  atomic.Uint64
}

// Shed reports how many seqs the ring shed to this subscriber (lapped or
// lag-bounded spans skipped at read time) — the per-subscriber share of the
// ring's total. Safe to call concurrently with Next/NextFrame.
func (s *replayStream) Shed() uint64 { return s.shedN.Load() }

func (s *replayStream) Next(ctx context.Context) (observer.Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		recs, cur, shed, notify, closed := s.ring.readSince(s.cursor, maxRelayBatch)
		if shed != 0 {
			s.shedN.Add(shed)
		}
		if cur < s.cursor {
			// The ring's head is behind the cursor: the cursor came from a
			// previous life of the relay. Resynchronize from the beginning
			// (parity with fileStream and Subscription); the records
			// between the two lives are unknowable, so not Missed.
			s.cursor = 0
			continue
		}
		if cur > s.cursor {
			b := observer.Batch{Records: recs, Count: cur}
			if d := cur - s.cursor; d > uint64(len(recs)) {
				b.Missed = d - uint64(len(recs))
			}
			s.cursor = cur
			return b, nil
		}
		if closed {
			return observer.Batch{}, io.EOF
		}
		select {
		case <-ctx.Done():
			return observer.Batch{}, ctx.Err()
		case <-notify:
		}
	}
}

// NextFrame is the server's zero-copy fast path over the ring: the same
// replay-resync-loss semantics as Next, delivered as a pre-encoded frame
// shared with every other subscriber at the same cursor (frameStream).
func (s *replayStream) NextFrame(ctx context.Context) (*frameBuf, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		fb, cur, shed, notify, closed := s.ring.frameSince(s.cursor, maxRelayBatch)
		if shed != 0 {
			s.shedN.Add(shed)
		}
		if cur < s.cursor {
			s.cursor = 0 // previous relay life: resynchronize (see Next)
			continue
		}
		if fb != nil {
			s.cursor = cur
			return fb, nil
		}
		if closed {
			return nil, io.EOF
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-notify:
		}
	}
}

// rollupRing retains the last N rollup emissions (one emission = the
// rollups of every tracked app for one downsample window) for replay to
// reconnecting rollup subscribers.
type rollupRing struct {
	mu     sync.Mutex
	emits  [][]observer.Rollup
	start  int
	n      int
	head   uint64 // emission count
	notify chan struct{}
	closed bool
}

func newRollupRing(capacity int) *rollupRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &rollupRing{emits: make([][]observer.Rollup, capacity), notify: make(chan struct{})}
}

func (r *rollupRing) append(rs []observer.Rollup) {
	if len(rs) == 0 {
		return
	}
	r.mu.Lock()
	r.head++
	r.emits[(r.start+r.n)%len(r.emits)] = rs
	if r.n < len(r.emits) {
		r.n++
	} else {
		r.start = (r.start + 1) % len(r.emits)
	}
	close(r.notify)
	r.notify = make(chan struct{})
	r.mu.Unlock()
}

func (r *rollupRing) close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.notify)
		r.notify = make(chan struct{})
	}
	r.mu.Unlock()
}

// readSince returns the flattened rollups of emissions since+1..head
// (bounded by maxRollupBatchBytes, whole emissions, at least one), the
// emission cursor consumed up to, how many emissions were delivered, the
// notify channel, and the closed flag.
func (r *rollupRing) readSince(since uint64) (out []observer.Rollup, cur uint64, delivered uint64, notify <-chan struct{}, closed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	notify, closed = r.notify, r.closed
	if r.head <= since {
		return nil, r.head, 0, notify, closed
	}
	oldest := r.head - uint64(r.n) + 1
	first := since + 1
	if first < oldest {
		first = oldest // the gap below is the caller's Missed
	}
	cur = since
	bytes := 0
	for e := first; e <= r.head; e++ {
		rs := r.emits[(r.start+int(e-oldest))%len(r.emits)]
		cost := 0
		for _, ru := range rs {
			cost += rollupWireCost(ru)
		}
		if len(out) > 0 && bytes+cost > maxRollupBatchBytes {
			break
		}
		out = append(out, rs...)
		bytes += cost
		delivered++
		cur = e
	}
	if delivered == 0 && first > since+1 {
		// Everything newer than since was lapped and nothing was taken
		// (cannot happen — first <= head implies at least one emission is
		// taken — but keep the cursor honest if it ever does).
		cur = first - 1
	}
	return out, cur, delivered, notify, closed
}

// rollupReplayStream is one subscriber's cursor over a rollupRing.
type rollupReplayStream struct {
	ring   *rollupRing
	cursor uint64
}

func (s *rollupReplayStream) Next(ctx context.Context) (RollupBatch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		rs, cur, delivered, notify, closed := s.ring.readSince(s.cursor)
		if cur < s.cursor {
			s.cursor = 0 // previous relay life: resynchronize
			continue
		}
		if cur > s.cursor {
			b := RollupBatch{Rollups: rs, Cursor: cur}
			if d := cur - s.cursor; d > delivered {
				b.Missed = d - delivered
			}
			s.cursor = cur
			return b, nil
		}
		if closed {
			return RollupBatch{}, io.EOF
		}
		select {
		case <-ctx.Done():
			return RollupBatch{}, ctx.Err()
		case <-notify:
		}
	}
}

// StreamFeed adapts one live observer.Stream — which is single-consumer —
// into a Feed any number of subscribers can open with independent cursors:
// feed registration from a live stream. Run pumps the stream into a
// bounded replay ring; Feed opens subscriber cursors over it. The ring
// re-sequences records into its own dense space (hop-local sequence
// numbers), and upstream losses widen the space so they surface to every
// subscriber as Missed.
//
//	sf := hbnet.NewStreamFeed(observer.HeartbeatStream(hb), 0)
//	go sf.Run(ctx)
//	srv.Publish("app", sf.Feed())
type StreamFeed struct {
	src  observer.Stream
	ring *replayRing
}

// NewStreamFeed wraps src; retain bounds the replay ring (<= 0 selects
// 65536 records). The StreamFeed takes ownership of src: Close releases it
// when it implements io.Closer.
func NewStreamFeed(src observer.Stream, retain int) *StreamFeed {
	return &StreamFeed{src: src, ring: newReplayRing(retain)}
}

// Run pumps the source stream into the ring until ctx is cancelled, the
// source ends (subscribers then drain and see EOF), or it fails.
func (f *StreamFeed) Run(ctx context.Context) error {
	for {
		b, err := f.src.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				f.ring.close()
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		f.ring.append(b.Records, b.Missed, -1)
	}
}

// Feed returns the fan-out feed over the pumped history.
func (f *StreamFeed) Feed() Feed {
	return func(ctx context.Context, since uint64) (observer.Stream, error) {
		return &replayStream{ring: f.ring, cursor: since}, nil
	}
}

// Close ends the feed (subscribers drain, then EOF) and releases the
// source stream.
func (f *StreamFeed) Close() error {
	f.ring.close()
	if c, ok := f.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// RelayOption configures NewRelay.
type RelayOption func(*Relay)

// WithRollupInterval sets the downsample window length: one rollup per
// tracked app is emitted every d (default 1s).
func WithRollupInterval(d time.Duration) RelayOption {
	return func(r *Relay) {
		if d > 0 {
			r.rollupEvery = d
		}
	}
}

// WithMergedRetain bounds the merged replay ring (default 65536 records):
// how far behind (or how long disconnected) a raw subscriber may fall
// before lapped records surface as Missed.
func WithMergedRetain(n int) RelayOption {
	return func(r *Relay) { r.mergedRetain = n }
}

// WithRollupRetain bounds the retained rollup emissions (default 256): how
// many downsample windows a reconnecting rollup subscriber can replay.
func WithRollupRetain(n int) RelayOption {
	return func(r *Relay) { r.rollupRetain = n }
}

// WithRelayOnError installs a callback for per-upstream stream failures
// (default: dropped; a failing upstream surfaces as silence in its
// rollups). Transient failures are retried on the rollup cadence and
// re-reported each attempt; a terminal rejection (ErrRejected) is
// reported once and the upstream retired.
func WithRelayOnError(f func(app string, err error)) RelayOption {
	return func(r *Relay) { r.onError = f }
}

// WithRelayOnRollup installs a callback invoked from the relay loop with
// each emission — the local observation hook (hbmon -relay prints these).
func WithRelayOnRollup(f func([]observer.Rollup)) RelayOption {
	return func(r *Relay) { r.onRollup = f }
}

// WithRelayClock runs the relay on an explicit clock: rollup windows are
// stamped and flushed on clk's time, and the pump re-poll/retry pacing
// follows it, so a virtual clock drives the whole fan-in node as a
// simulation participant. A nil clk is the wall clock.
func WithRelayClock(clk heartbeat.Clock) RelayOption {
	return func(r *Relay) { r.clk = clk }
}

// WithShedLag bounds how far behind the merged head a raw subscriber may
// trail before the relay sheds the excess: a subscriber whose cursor falls
// more than n seqs behind is advanced to head-n on its next read and the
// skipped span counted (per-subscriber via ShedCounter, relay-wide via
// Shed) instead of silently trailing the full replay ring. n <= 0 (the
// default) disables the policy — only an actual ring lap sheds. Shed seqs
// stay inside the subscriber's Missed: the wire contract delivered+Missed
// == head is unchanged; shedding attributes the loss to this hop's
// backpressure decision rather than to the upstream.
func WithShedLag(n int) RelayOption {
	return func(r *Relay) { r.shedLag = n }
}

// Relay is a hierarchical fan-in node: it subscribes to N upstream
// heartbeat streams, merges them into one bounded history in its own dense
// sequence space, reduces them into per-app rollup windows every interval,
// and re-exports both as feeds (MergedFeed, RollupFeed — publish them with
// PublishOn). Add upstreams with AddUpstream / DialUpstream /
// AddFileUpstream, then drive the relay with Run.
//
// Composition: a relay's merged feed is an ordinary raw feed, so another
// relay can dial it as an upstream — trees of relays keep both each node's
// fan-in and the final observer's connection count bounded as the fleet
// grows. Each hop re-sequences records (hop-local dense seqs, Producer
// rewritten to the hop-local upstream id) and conserves loss accounting:
// records + Missed is invariant end to end.
//
// Run may be restarted with a fresh context; the merged history and rollup
// history survive across runs (and across Server restarts — a relay
// process that loses its listener re-publishes the same feeds and resuming
// subscribers lose nothing the rings still retain).
type Relay struct {
	rollupEvery  time.Duration
	mergedRetain int
	rollupRetain int
	shedLag      int // WithShedLag bound on the merged ring; 0 = off
	onError      func(app string, err error)
	onRollup     func([]observer.Rollup)
	clk          heartbeat.Clock // nil = wall clock

	merged    *replayRing
	rollups   *rollupRing
	compacted *rollupRing

	// drainMu serializes consumption of r.events: Run holds it for its
	// whole execution, and removal's drainEvents takes it only when no Run
	// loop is live — so the channel never has two consumers, which would
	// break per-upstream FIFO order. Ordered before mu (never acquired
	// while holding mu).
	drainMu sync.Mutex

	mu        sync.Mutex
	ds        *observer.Downsampler // guarded by mu: pumps absorb on shutdown
	ups       map[string]*relayUpstream
	order     []string
	nextID    int32 // next upstream id: unique per registration life, never reused
	compactor *observer.RollupCompactor // guarded by mu, like ds
	rups      map[string]*rollupUpstream
	rupOrder  []string
	rupMissed uint64    // child rollup emissions lapped before absorption
	winFrom   time.Time // current rollup window's start
	runCtx    context.Context
	runDone   chan struct{} // non-nil while a Run loop consumes r.events; closed at its exit
	events    chan relayEvent
	pumps     sync.WaitGroup
	closed    bool
}

type relayUpstream struct {
	app      string
	id       int32
	stream   observer.Stream
	rec      BatchRecycler // stream's recycler, when it has one
	cancel   context.CancelFunc
	pumping  bool
	eof      bool
	removing bool          // a RemoveUpstream owns this registration's teardown
	done     chan struct{} // closed when the current pump goroutine exits; nil before first start
	// pending holds a batch the pump consumed from the stream but could
	// not hand to a stopped Run loop; the next shutdown drain (or Run)
	// absorbs it after the older events still queued in r.events, so the
	// merged order is preserved across a Run restart.
	pending *observer.Batch
}

// rollupUpstream mirrors relayUpstream for a child's already-downsampled
// feed: the pump forwards RollupBatches into the relay loop, which folds
// them into the compactor instead of the downsampler.
type rollupUpstream struct {
	name     string
	stream   RollupStream
	cancel   context.CancelFunc
	pumping  bool
	eof      bool
	removing bool          // see relayUpstream.removing
	done     chan struct{} // see relayUpstream.done
	pending  *RollupBatch  // see relayUpstream.pending
}

type relayEvent struct {
	up    *relayUpstream
	batch observer.Batch
	err   error
	eof   bool
	// Rollup-upstream events: when rup is set, rbatch carries the child's
	// windows and the other payload fields are unused.
	rup    *rollupUpstream
	rbatch RollupBatch
	// gate, when set, is a drain sentinel: every event queued before it has
	// been handled once the consumer closes it. All other fields are unused.
	gate chan struct{}
}

// NewRelay creates a relay with no upstreams yet.
func NewRelay(opts ...RelayOption) *Relay {
	r := &Relay{
		rollupEvery: time.Second,
		ds:          observer.NewDownsampler(),
		ups:         make(map[string]*relayUpstream),
		compactor:   observer.NewRollupCompactor(),
		rups:        make(map[string]*rollupUpstream),
		events:      make(chan relayEvent, 64),
	}
	for _, o := range opts {
		o(r)
	}
	r.winFrom = r.now()
	r.merged = newReplayRing(r.mergedRetain)
	r.merged.lagBound = r.shedLag
	r.rollups = newRollupRing(r.rollupRetain)
	r.compacted = newRollupRing(r.rollupRetain)
	return r
}

// AddUpstream registers a live stream under a unique app name: feed
// registration from any observer.Stream — an hbnet Client, a FollowFile
// tail, an in-process HeartbeatStream. The relay takes ownership (the
// stream is closed with the relay when it implements io.Closer). Upstreams
// may be added while Run is active; their pump starts immediately.
func (r *Relay) AddUpstream(app string, stream observer.Stream) error {
	if stream == nil {
		return fmt.Errorf("hbnet: nil upstream stream for %q", app)
	}
	if len(app) > maxFeedName {
		return fmt.Errorf("hbnet: upstream name exceeds %d bytes", maxFeedName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("hbnet: relay closed")
	}
	if _, dup := r.ups[app]; dup {
		return fmt.Errorf("hbnet: duplicate upstream %q", app)
	}
	// Ids are allocated, never recycled: a name removed and re-added gets a
	// fresh id, so records from the two registration lives stay
	// distinguishable in the merged seq space (len(r.order) would collide
	// after any removal).
	up := &relayUpstream{app: app, id: r.nextID, stream: stream}
	r.nextID++
	up.rec, _ = stream.(BatchRecycler)
	r.ups[app] = up
	r.order = append(r.order, app)
	r.ds.Track(app) // silent upstreams still roll up, as silence
	if r.runCtx != nil && r.runCtx.Err() == nil {
		r.startPumpLocked(up)
	}
	return nil
}

// DialUpstream dials a remote feed and registers it as an upstream: how a
// relay subscribes to a producer's server — or to another relay's merged
// feed, composing a tree. The relay's clock (WithRelayClock) is passed to
// the client so its reconnect pacing follows the same time as the rest of
// the fan-in node; explicit ClientOptions still override it. The returned
// client is owned by the relay; it is returned for introspection
// (Reconnects, Missed).
func (r *Relay) DialUpstream(app, addr, feed string, opts ...ClientOption) (*Client, error) {
	if r.clk != nil {
		opts = append([]ClientOption{WithClientClock(r.clk)}, opts...)
	}
	c, err := Dial(addr, feed, opts...)
	if err != nil {
		return nil, err
	}
	if err := r.AddUpstream(app, c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// AddFileUpstream registers a heartbeat ring or log file as an upstream,
// tailed live via observer.FollowFileFrom — so a producer that restarts
// and recreates its file resumes instead of flatlining. poll <= 0 selects
// observer.DefaultPollInterval.
func (r *Relay) AddFileUpstream(app, path string, poll time.Duration) error {
	s, err := observer.FollowFileClock(path, poll, 0, r.clk)
	if err != nil {
		return err
	}
	if err := r.AddUpstream(app, s); err != nil {
		if c, ok := s.(io.Closer); ok {
			c.Close()
		}
		return err
	}
	return nil
}

// CursorSource is implemented by streams that report how far into their
// upstream's sequence space they have consumed — the resume cursor. A
// Handoff from a removal carries it so the destination can resume exactly
// where the source stopped (Client implements it; DialUpstreamFrom accepts
// it).
type CursorSource interface {
	Cursor() uint64
}

// Handoff is what removing an upstream yields: everything a caller needs to
// re-home the producer on another relay without double-delivering or
// gapping. Stream is the detached source stream (nil when the removal
// closed it); Cursor is its final consumed position when the stream reports
// one (HasCursor). Re-homing has two shapes: re-add the detached Stream
// itself (its internal cursor carries the position — RebalanceStream), or
// dial a fresh connection positioned at Cursor (DialUpstreamFrom /
// Rebalance).
type Handoff struct {
	App       string
	Stream    observer.Stream
	Cursor    uint64
	HasCursor bool
}

// RemoveUpstream retires the named upstream at runtime: its pump is
// cancelled, every batch it already queued — and any batch a previous
// shutdown parked — is absorbed into the merged history in order, its final
// partial rollup window is emitted, its stream is closed (the relay owns
// it), and the name becomes reusable immediately. Safe while Run is active
// or stopped; returns an error for an unknown name. The returned Handoff
// carries the stream's final cursor when it reports one (CursorSource), so
// a caller re-homing the producer can resume it elsewhere exactly.
func (r *Relay) RemoveUpstream(app string) (Handoff, error) {
	return r.removeUpstream(app, true)
}

// DetachUpstream is RemoveUpstream without closing the stream: ownership
// transfers to the caller through Handoff.Stream, which resumes from its
// internal position when re-added elsewhere — the cursor-preserving half of
// a migration.
func (r *Relay) DetachUpstream(app string) (Handoff, error) {
	return r.removeUpstream(app, false)
}

func (r *Relay) removeUpstream(app string, closeStream bool) (Handoff, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Handoff{}, fmt.Errorf("hbnet: relay closed")
	}
	up, ok := r.ups[app]
	if !ok {
		r.mu.Unlock()
		return Handoff{}, fmt.Errorf("hbnet: unknown upstream %q", app)
	}
	if up.removing {
		r.mu.Unlock()
		return Handoff{}, fmt.Errorf("hbnet: upstream %q already being removed", app)
	}
	up.removing = true // pumps will not restart for it
	cancel, done := up.cancel, up.done
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done // pump exited: all its events are queued (or parked in pending)
	}
	// Flush the event channel before finalizing so the batches the pump
	// queued land in the merged history ahead of the parked pending — the
	// same oldest-first order Run's own shutdown preserves.
	r.drainEvents()
	r.mu.Lock()
	if live, ok := r.ups[app]; !ok || live != up {
		// The eof path retired it while we drained (closing the stream
		// there); the name is free either way.
		r.mu.Unlock()
		return Handoff{App: app}, nil
	}
	if up.pending != nil {
		b := *up.pending
		up.pending = nil
		r.absorbLocked(up, b)
	}
	delete(r.ups, app)
	r.dropOrderLocked(app)
	final, active := r.ds.Remove(app, r.winFrom, r.now())
	r.mu.Unlock()
	if active {
		// The removed app's mid-window counts become one last emission, so
		// rollup conservation holds across the removal.
		r.rollups.append([]observer.Rollup{final})
	}
	h := Handoff{App: app, Stream: up.stream}
	if cs, ok := up.stream.(CursorSource); ok {
		h.Cursor, h.HasCursor = cs.Cursor(), true
	}
	if closeStream {
		h.Stream = nil
		if c, ok := up.stream.(io.Closer); ok {
			c.Close()
		}
	}
	return h, nil
}

// RemoveRollupUpstream retires the named rollup upstream the same way
// RemoveUpstream retires a raw one: pump cancelled, queued and parked
// deliveries folded into the compactor, stream closed, name freed.
// Compactor per-app state stays — the applications still exist even when
// this child stops reporting them.
func (r *Relay) RemoveRollupUpstream(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("hbnet: relay closed")
	}
	rup, ok := r.rups[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("hbnet: unknown rollup upstream %q", name)
	}
	if rup.removing {
		r.mu.Unlock()
		return fmt.Errorf("hbnet: rollup upstream %q already being removed", name)
	}
	rup.removing = true
	cancel, done := rup.cancel, rup.done
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
	r.drainEvents()
	r.mu.Lock()
	if live, ok := r.rups[name]; !ok || live != rup {
		r.mu.Unlock()
		return nil // the eof path retired it while we drained
	}
	if rup.pending != nil {
		b := *rup.pending
		rup.pending = nil
		r.absorbRollupsLocked(b)
	}
	delete(r.rups, name)
	r.dropRupOrderLocked(name)
	r.mu.Unlock()
	if c, ok := rup.stream.(io.Closer); ok {
		c.Close()
	}
	return nil
}

// drainEvents flushes every event queued in r.events at the moment of the
// call before returning — through the live Run loop when one is active (a
// gated sentinel event keeps the loop the channel's only consumer), inline
// under drainMu otherwise. Removal calls it after its pump has exited, so
// everything that pump queued is absorbed before the registration is
// finalized.
func (r *Relay) drainEvents() {
	for {
		r.mu.Lock()
		runDone := r.runDone
		r.mu.Unlock()
		if runDone != nil {
			gate := make(chan struct{})
			select {
			case r.events <- relayEvent{gate: gate}:
				select {
				case <-gate:
					return
				case <-runDone:
					// Run exited before consuming the sentinel; it is still
					// queued — loop and drain inline (closing the gate is a
					// no-op there).
				}
			case <-runDone:
				// Run exited before accepting the sentinel; drain inline.
			}
			continue
		}
		if r.drainMu.TryLock() {
			for {
				select {
				case ev := <-r.events:
					r.handleEvent(ev)
					continue
				default:
				}
				break
			}
			r.drainMu.Unlock()
			return
		}
		// A Run loop is mid-entry or mid-exit: let it progress, re-read
		// runDone, and retry.
		runtime.Gosched()
	}
}

// DialUpstreamFrom is DialUpstream with an explicit start cursor: the
// subscription resumes after position since in the feed's sequence space —
// the receiving half of a cursor-preserving handoff (pass Handoff.Cursor
// from the removal on the source relay).
func (r *Relay) DialUpstreamFrom(app, addr, feed string, since uint64, opts ...ClientOption) (*Client, error) {
	if r.clk != nil {
		opts = append([]ClientOption{WithClientClock(r.clk)}, opts...)
	}
	c, err := DialFrom(addr, feed, since, opts...)
	if err != nil {
		return nil, err
	}
	if err := r.AddUpstream(app, c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Rebalance migrates a dialed upstream from src to dst: src's registration
// is removed (its connection closed) and dst dials the same feed resuming
// at the cursor src had consumed to, so the producer's records arrive
// exactly once across the move — no double delivery, no gap beyond what the
// feed itself already lapped. The source stream must report its cursor
// (CursorSource, as every *Client does); for streams that do not, move the
// stream object itself with RebalanceStream.
func Rebalance(src, dst *Relay, app, addr, feed string, opts ...ClientOption) (*Client, error) {
	src.mu.Lock()
	up, ok := src.ups[app]
	var cs CursorSource
	if ok {
		cs, _ = up.stream.(CursorSource)
	}
	src.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("hbnet: unknown upstream %q", app)
	}
	if cs == nil {
		return nil, fmt.Errorf("hbnet: upstream %q reports no cursor; use RebalanceStream", app)
	}
	h, err := src.RemoveUpstream(app)
	if err != nil {
		return nil, err
	}
	return dst.DialUpstreamFrom(app, addr, feed, h.Cursor, opts...)
}

// RebalanceStream migrates the named upstream from src to dst by moving the
// stream object itself: detach from src (draining everything already
// consumed into src's history), re-add to dst. The stream's internal
// cursor carries the position, so delivery continues on dst exactly where
// src stopped — the migration path for file tails and in-process streams
// that cannot be re-dialed.
func RebalanceStream(src, dst *Relay, app string) error {
	h, err := src.DetachUpstream(app)
	if err != nil {
		return err
	}
	if h.Stream == nil {
		return fmt.Errorf("hbnet: upstream %q had no stream to migrate", app)
	}
	if err := dst.AddUpstream(app, h.Stream); err != nil {
		// Try to put it back rather than strand a live stream; if src
		// refuses too (closed, name retaken), release it.
		if rerr := src.AddUpstream(app, h.Stream); rerr != nil {
			if c, ok := h.Stream.(io.Closer); ok {
				c.Close()
			}
		}
		return err
	}
	return nil
}

// AddRollupUpstream registers a child relay's rollup stream under a unique
// name: hierarchical rollup compaction. Where AddUpstream makes this relay
// re-reduce raw records (per-producer work), a rollup upstream feeds the
// child's already-reduced per-app windows into a RollupCompactor, so an
// interior node's rollup state is O(apps) — constant per application,
// independent of how many producers beat below the child. The relay takes
// ownership (the stream is closed with the relay when it implements
// io.Closer); the pump starts immediately when Run is active.
func (r *Relay) AddRollupUpstream(name string, stream RollupStream) error {
	if stream == nil {
		return fmt.Errorf("hbnet: nil rollup upstream stream for %q", name)
	}
	if len(name) > maxFeedName {
		return fmt.Errorf("hbnet: rollup upstream name exceeds %d bytes", maxFeedName)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("hbnet: relay closed")
	}
	if _, dup := r.rups[name]; dup {
		return fmt.Errorf("hbnet: duplicate rollup upstream %q", name)
	}
	rup := &rollupUpstream{name: name, stream: stream}
	r.rups[name] = rup
	r.rupOrder = append(r.rupOrder, name)
	if r.runCtx != nil && r.runCtx.Err() == nil {
		r.startRollupPumpLocked(rup)
	}
	return nil
}

// DialRollupUpstream dials a child relay's published rollup feed and
// registers it for compaction — how an interior node of a relay tree
// subscribes to the per-app summaries below it. The relay's clock is
// propagated like DialUpstream's. The returned client is owned by the
// relay; it is returned for introspection.
func (r *Relay) DialRollupUpstream(name, addr, feed string, opts ...ClientOption) (*Client, error) {
	if r.clk != nil {
		opts = append([]ClientOption{WithClientClock(r.clk)}, opts...)
	}
	c, err := DialRollup(addr, feed, opts...)
	if err != nil {
		return nil, err
	}
	if err := r.AddRollupUpstream(name, clientRollupStream{c}); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Apps returns the upstream names in registration order.
func (r *Relay) Apps() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// MergedHead returns the newest sequence number of the merged history:
// total records relayed plus upstream losses.
func (r *Relay) MergedHead() uint64 {
	r.merged.mu.Lock()
	defer r.merged.mu.Unlock()
	return r.merged.head
}

// Shed returns the cumulative count of merged-history seqs shed across all
// raw subscribers: spans a subscriber skipped because this relay's bounded
// window lapped them (or its WithShedLag policy advanced past them), each
// subscriber read charged individually. Shed loss is always inside the
// Missed those subscribers observed — this counter attributes it to this
// hop's backpressure rather than to the upstreams. Per-subscriber shares
// are available on streams opened from MergedFeed via ShedCounter.
func (r *Relay) Shed() uint64 { return r.merged.shed() }

// MergedFeed returns the raw merged feed: every upstream's records in the
// relay's own dense sequence space (Producer = hop-local upstream id),
// replay-then-live-push from any cursor.
func (r *Relay) MergedFeed() Feed {
	return func(ctx context.Context, since uint64) (observer.Stream, error) {
		return &replayStream{ring: r.merged, cursor: since}, nil
	}
}

// RollupFeed returns the downsampled feed: one Rollup per upstream per
// interval, replayable across the retained emissions.
func (r *Relay) RollupFeed() RollupFeed {
	return func(ctx context.Context, since uint64) (RollupStream, error) {
		return &rollupReplayStream{ring: r.rollups, cursor: since}, nil
	}
}

// CompactedFeed returns the hierarchically compacted feed: one Rollup per
// application per interval, merged from every rollup upstream — the
// O(apps) view a relay-tree root exports, however many producers feed the
// leaves. Publish it with srv.PublishRollup under its own name (by
// convention "apps", beside the relay's own per-upstream "rollup" feed).
func (r *Relay) CompactedFeed() RollupFeed {
	return func(ctx context.Context, since uint64) (RollupStream, error) {
		return &rollupReplayStream{ring: r.compacted, cursor: since}, nil
	}
}

// RollupApps returns the application names the compactor tracks, in first-
// seen order: at a tree's root, the fleet's applications.
func (r *Relay) RollupApps() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.compactor.Apps()
}

// RollupUpstreamMissed returns how many child rollup emissions were lapped
// before this relay absorbed them. The compacted feed's count conservation
// is exact only while it stays zero (the same caveat as
// simcheck.RollupAccount's EmissionsMissed).
func (r *Relay) RollupUpstreamMissed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rupMissed
}

// PublishOn registers the merged feed and the rollup feed on srv under the
// given names (the conventional pair is "merged" and "rollup"). Either
// name may be empty to skip that feed.
func (r *Relay) PublishOn(srv *Server, mergedName, rollupName string) error {
	if mergedName != "" {
		if err := srv.Publish(mergedName, r.MergedFeed()); err != nil {
			return err
		}
	}
	if rollupName != "" {
		if err := srv.PublishRollup(rollupName, r.RollupFeed()); err != nil {
			return err
		}
	}
	return nil
}

// Run pumps every upstream into the merged history and emits rollups every
// interval until ctx is cancelled. When Run returns, every pump has exited;
// the relay may be Run again with a fresh context.
func (r *Relay) Run(ctx context.Context) {
	r.mu.Lock()
	r.runCtx = ctx
	runDone := make(chan struct{})
	r.runDone = runDone
	r.winFrom = r.now()
	for _, app := range r.order {
		r.startPumpLocked(r.ups[app])
	}
	for _, name := range r.rupOrder {
		r.startRollupPumpLocked(r.rups[name])
	}
	r.mu.Unlock()
	// Hold drainMu for the whole run: this loop is the channel's only
	// consumer while it lives, and a concurrent removal coordinates through
	// runDone (a gated sentinel event) instead of competing for events.
	r.drainMu.Lock()
	defer func() {
		r.mu.Lock()
		for _, up := range r.ups {
			if up.cancel != nil {
				up.cancel()
			}
		}
		for _, rup := range r.rups {
			if rup.cancel != nil {
				rup.cancel()
			}
		}
		r.mu.Unlock()
		r.pumps.Wait()
		// Absorb what the shutdown stranded, oldest first: events still
		// queued predate any batch a pump parked in pending (each pump is
		// its upstream's only producer), so draining the channel before
		// the pending slots keeps every upstream's records in order.
		for {
			select {
			case ev := <-r.events:
				r.handleEvent(ev)
				continue
			default:
			}
			break
		}
		r.mu.Lock()
		for _, app := range r.order {
			// A concurrent removal may have finalized between the drain
			// above and this lock; its pending was absorbed there.
			if up := r.ups[app]; up != nil && up.pending != nil {
				b := *up.pending
				up.pending = nil
				r.absorbLocked(up, b)
			}
		}
		for _, name := range r.rupOrder {
			if rup := r.rups[name]; rup != nil && rup.pending != nil {
				b := *rup.pending
				rup.pending = nil
				r.absorbRollupsLocked(b)
			}
		}
		r.runDone = nil
		r.mu.Unlock()
		close(runDone)
		r.drainMu.Unlock()
	}()
	tick := heartbeat.NewTicker(r.clk, r.rollupEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-r.events:
			r.handleEvent(ev)
		case <-tick.C():
			tick.Next()
			r.flushRollups()
		}
	}
}

// now reads the relay's clock, falling back to the wall clock.
func (r *Relay) now() time.Time { return heartbeat.Now(r.clk) }

// flushRollups emits one rollup per upstream for the elapsed window, and —
// when rollup upstreams are registered — one compacted rollup per app into
// the compacted history.
func (r *Relay) flushRollups() {
	now := r.now()
	r.mu.Lock()
	rs := r.ds.Flush(r.winFrom, now)
	cs := r.compactor.Flush(r.winFrom, now)
	r.winFrom = now
	cb := r.onRollup
	r.mu.Unlock()
	r.rollups.append(rs)
	r.compacted.append(cs)
	if cb != nil && len(rs) > 0 {
		cb(rs)
	}
}

func (r *Relay) handleEvent(ev relayEvent) {
	if ev.gate != nil {
		// Drain sentinel: everything queued before it has been handled.
		close(ev.gate)
		return
	}
	if ev.rup != nil {
		r.handleRollupEvent(ev)
		return
	}
	r.mu.Lock()
	up := ev.up
	if live, ok := r.ups[up.app]; !ok || live != up {
		r.mu.Unlock()
		return // removed/replaced while the event was in flight
	}
	if ev.err != nil {
		cb := r.onError
		r.mu.Unlock()
		if cb != nil {
			cb(up.app, ev.err)
		}
		return
	}
	if ev.eof {
		up.eof = true
		if up.removing || r.closed {
			// A concurrent RemoveUpstream owns the teardown (or relay Close
			// already collected the stream for closing).
			r.mu.Unlock()
			return
		}
		// Retire for good: the stream has ended, so free the registration —
		// absorb anything a previous shutdown parked, emit the app's final
		// partial rollup window, release the stream, and make the name
		// reusable. (Leaving it in r.ups kept the stream open and the name
		// taken until relay Close: the retired-upstream leak.)
		if up.pending != nil {
			b := *up.pending
			up.pending = nil
			r.absorbLocked(up, b)
		}
		delete(r.ups, up.app)
		r.dropOrderLocked(up.app)
		final, active := r.ds.Remove(up.app, r.winFrom, r.now())
		r.mu.Unlock()
		if active {
			r.rollups.append([]observer.Rollup{final})
		}
		if c, ok := up.stream.(io.Closer); ok {
			c.Close()
		}
		return
	}
	r.absorbLocked(up, ev.batch)
	r.mu.Unlock()
}

// dropOrderLocked removes app from the registration-order slice. Callers
// hold r.mu.
func (r *Relay) dropOrderLocked(app string) {
	for i, a := range r.order {
		if a == app {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

// dropRupOrderLocked removes name from the rollup-upstream order slice.
// Callers hold r.mu.
func (r *Relay) dropRupOrderLocked(name string) {
	for i, n := range r.rupOrder {
		if n == name {
			r.rupOrder = append(r.rupOrder[:i], r.rupOrder[i+1:]...)
			return
		}
	}
}

func (r *Relay) handleRollupEvent(ev relayEvent) {
	r.mu.Lock()
	rup := ev.rup
	if live, ok := r.rups[rup.name]; !ok || live != rup {
		r.mu.Unlock()
		return // removed/replaced while the event was in flight
	}
	if ev.err != nil {
		cb := r.onError
		r.mu.Unlock()
		if cb != nil {
			cb(rup.name, ev.err)
		}
		return
	}
	if ev.eof {
		rup.eof = true
		if rup.removing || r.closed {
			r.mu.Unlock()
			return
		}
		// Retire like a raw upstream (see handleEvent): absorb any parked
		// delivery, free the name, release the stream. Compactor state is
		// keyed by application, not by child name, so it stays.
		if rup.pending != nil {
			b := *rup.pending
			rup.pending = nil
			r.absorbRollupsLocked(b)
		}
		delete(r.rups, rup.name)
		r.dropRupOrderLocked(rup.name)
		r.mu.Unlock()
		if c, ok := rup.stream.(io.Closer); ok {
			c.Close()
		}
		return
	}
	r.absorbRollupsLocked(ev.rbatch)
	r.mu.Unlock()
}

// absorbRollupsLocked folds one child delivery into the compactor. Callers
// hold r.mu.
func (r *Relay) absorbRollupsLocked(b RollupBatch) {
	for _, ru := range b.Rollups {
		r.compactor.Absorb(ru)
	}
	r.rupMissed += b.Missed
}

// absorbLocked merges one upstream batch: into the replay ring (re-
// sequenced, loss-widened) and into the app's rollup window. Both copy the
// record values out, so the batch's slice can go straight back to the
// upstream's decode pool — at high fan-in that recycling is what keeps the
// merge path allocation-free. Callers hold r.mu.
func (r *Relay) absorbLocked(up *relayUpstream, b observer.Batch) {
	r.merged.append(b.Records, b.Missed, up.id)
	r.ds.Absorb(up.app, b)
	if up.rec != nil {
		up.rec.Recycle(b)
	}
}

// pollTimeout is a reusable deadline context for the pump's bounded Next
// waits: one context and one timer per pump instead of one of each per
// batch (heartbeat.ContextWithTimeout in the hot loop is a measurable
// allocation rate at high fan-in). arm begins a new wait; a fired deadline
// reports context.DeadlineExceeded until the next arm; parent cancellation
// is terminal. Single-consumer, like the pump loop that owns it: arm and
// disarm never overlap a live wait.
type pollTimeout struct {
	parent context.Context
	timer  *time.Timer

	mu    sync.Mutex
	done  chan struct{}
	err   error
	armed bool
}

func newPollTimeout(parent context.Context) *pollTimeout {
	p := &pollTimeout{parent: parent, done: make(chan struct{})}
	go func() {
		<-parent.Done()
		p.mu.Lock()
		if p.err == nil {
			p.err = parent.Err()
			close(p.done)
		}
		p.mu.Unlock()
	}()
	return p
}

func (p *pollTimeout) fire() {
	p.mu.Lock()
	if p.armed && p.err == nil {
		p.armed = false
		p.err = context.DeadlineExceeded
		close(p.done)
	}
	p.mu.Unlock()
}

// arm begins a new wait of d, clearing a previous wait's expiry. A stale
// timer firing across the arm can only expire the new wait early — a
// spurious timeout the pump already treats as an idle re-poll.
func (p *pollTimeout) arm(d time.Duration) {
	p.mu.Lock()
	if p.err == context.DeadlineExceeded {
		p.err = nil
		p.done = make(chan struct{})
	}
	p.armed = p.err == nil
	p.mu.Unlock()
	if p.timer == nil {
		p.timer = time.AfterFunc(d, p.fire) //hbvet:allow wallclock -- wall-path-only poll bound: virtual clocks take the heartbeat.ContextWithTimeout branch in servePoll instead
	} else {
		p.timer.Reset(d)
	}
}

// disarm ends the current wait without expiring it.
func (p *pollTimeout) disarm() {
	p.timer.Stop()
	p.mu.Lock()
	p.armed = false
	p.mu.Unlock()
}

func (p *pollTimeout) Deadline() (time.Time, bool) { return time.Time{}, false }
func (p *pollTimeout) Value(key any) any           { return p.parent.Value(key) }

func (p *pollTimeout) Done() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

func (p *pollTimeout) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// startPumpLocked starts the goroutine that blocks in the upstream's Next
// and forwards batches to the relay loop. Callers hold r.mu.
func (r *Relay) startPumpLocked(up *relayUpstream) {
	if up.pumping || up.eof || up.removing {
		return
	}
	up.pumping = true
	done := make(chan struct{})
	up.done = done
	pctx, cancel := context.WithCancel(r.runCtx)
	up.cancel = cancel
	r.pumps.Add(1)
	go func() {
		defer func() {
			r.mu.Lock()
			up.pumping = false
			r.mu.Unlock()
			close(done) // after pending is parked: removal reads it via this edge
			r.pumps.Done()
		}()
		// Wall-clock (and coarse-clock) relays poll through one reusable
		// timeout context; virtual WaitClocks need ContextWithTimeout's
		// clock-driven expiry and never care about allocation rates.
		var pt *pollTimeout
		if _, isWait := r.clk.(heartbeat.WaitClock); !isWait {
			pt = newPollTimeout(pctx)
		}
		for {
			// Bound each wait by the rollup interval: re-entering Next is
			// itself a read for poll-based upstreams, so a low-rate
			// in-process upstream still publishes at least once per window.
			var b observer.Batch
			var err error
			if pt != nil {
				pt.arm(r.rollupEvery)
				b, err = up.stream.Next(pt)
				pt.disarm()
			} else {
				nctx, ncancel := heartbeat.ContextWithTimeout(pctx, r.clk, r.rollupEvery)
				b, err = up.stream.Next(nctx)
				ncancel()
			}
			if err == nil {
				select {
				case r.events <- relayEvent{up: up, batch: b}:
				case <-pctx.Done():
					// Shutting down with a batch in hand: park it so the
					// records already consumed from the upstream cursor are
					// not lost across a Run restart. It must NOT be absorbed
					// here — an older batch of this upstream may still sit
					// in r.events, and absorbing out of order would corrupt
					// the merged history; Run's shutdown drain absorbs the
					// queue first, then this.
					r.mu.Lock()
					up.pending = &b
					r.mu.Unlock()
					return
				}
				continue
			}
			if pctx.Err() != nil {
				return
			}
			if errors.Is(err, context.DeadlineExceeded) {
				continue // idle window: loop and re-poll
			}
			if errors.Is(err, io.EOF) {
				select {
				case r.events <- relayEvent{up: up, eof: true}:
				case <-pctx.Done():
				}
				return
			}
			if errors.Is(err, ErrRejected) {
				// The subscription was refused for good (feed unpublished,
				// kind mismatch): every further Next returns the same
				// error, so report it once and retire the upstream rather
				// than re-reporting it every interval forever.
				select {
				case r.events <- relayEvent{up: up, err: err}:
				case <-pctx.Done():
				}
				select {
				case r.events <- relayEvent{up: up, eof: true}:
				case <-pctx.Done():
				}
				return
			}
			select {
			case r.events <- relayEvent{up: up, err: err}:
			case <-pctx.Done():
				return
			}
			// Pace retries against a persistently failing upstream.
			select {
			case <-heartbeat.After(r.clk, r.rollupEvery):
			case <-pctx.Done():
				return
			}
		}
	}()
}

// startRollupPumpLocked starts the goroutine that blocks in a rollup
// upstream's Next and forwards deliveries to the relay loop — the same
// shape as startPumpLocked with RollupBatch payloads. Callers hold r.mu.
func (r *Relay) startRollupPumpLocked(rup *rollupUpstream) {
	if rup.pumping || rup.eof || rup.removing {
		return
	}
	rup.pumping = true
	done := make(chan struct{})
	rup.done = done
	pctx, cancel := context.WithCancel(r.runCtx)
	rup.cancel = cancel
	r.pumps.Add(1)
	go func() {
		defer func() {
			r.mu.Lock()
			rup.pumping = false
			r.mu.Unlock()
			close(done)
			r.pumps.Done()
		}()
		var pt *pollTimeout
		if _, isWait := r.clk.(heartbeat.WaitClock); !isWait {
			pt = newPollTimeout(pctx)
		}
		for {
			var b RollupBatch
			var err error
			if pt != nil {
				pt.arm(r.rollupEvery)
				b, err = rup.stream.Next(pt)
				pt.disarm()
			} else {
				nctx, ncancel := heartbeat.ContextWithTimeout(pctx, r.clk, r.rollupEvery)
				b, err = rup.stream.Next(nctx)
				ncancel()
			}
			if err == nil {
				select {
				case r.events <- relayEvent{rup: rup, rbatch: b}:
				case <-pctx.Done():
					// Park the in-hand delivery for the shutdown drain, like
					// the raw pump (see startPumpLocked). Compaction is
					// commutative over deliveries, but the cursor was already
					// advanced upstream — dropping it would lose windows.
					r.mu.Lock()
					rup.pending = &b
					r.mu.Unlock()
					return
				}
				continue
			}
			if pctx.Err() != nil {
				return
			}
			if errors.Is(err, context.DeadlineExceeded) {
				continue // idle window: loop and re-poll
			}
			if errors.Is(err, io.EOF) {
				select {
				case r.events <- relayEvent{rup: rup, eof: true}:
				case <-pctx.Done():
				}
				return
			}
			if errors.Is(err, ErrRejected) {
				select {
				case r.events <- relayEvent{rup: rup, err: err}:
				case <-pctx.Done():
				}
				select {
				case r.events <- relayEvent{rup: rup, eof: true}:
				case <-pctx.Done():
				}
				return
			}
			select {
			case r.events <- relayEvent{rup: rup, err: err}:
			case <-pctx.Done():
				return
			}
			select {
			case <-heartbeat.After(r.clk, r.rollupEvery):
			case <-pctx.Done():
				return
			}
		}
	}()
}

// Close ends every feed (subscribers drain, then EOF) and releases every
// upstream stream. Close is idempotent; cancel Run's context first (or
// concurrently) — Close does not stop a running loop, it only closes the
// histories and upstreams.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	ups := make([]*relayUpstream, 0, len(r.order))
	for _, app := range r.order {
		ups = append(ups, r.ups[app])
	}
	rups := make([]*rollupUpstream, 0, len(r.rupOrder))
	for _, name := range r.rupOrder {
		rups = append(rups, r.rups[name])
	}
	r.mu.Unlock()
	for _, up := range ups {
		if up.cancel != nil {
			up.cancel()
		}
		if c, ok := up.stream.(io.Closer); ok {
			c.Close()
		}
	}
	for _, rup := range rups {
		if rup.cancel != nil {
			rup.cancel()
		}
		if c, ok := rup.stream.(io.Closer); ok {
			c.Close()
		}
	}
	r.merged.close()
	r.rollups.close()
	r.compacted.close()
	return nil
}
