// Package inside sits under sim/, one of the wallclock analyzer's seam
// directories: the simulated-time implementation is the one place that
// may read the wall freely, so nothing here wants anything.
package inside

import "time"

func seamCode() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
