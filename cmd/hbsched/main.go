// Command hbsched runs the external-scheduler experiments of §5.3: an
// instrumented application advertises a target heart-rate window, and a
// scheduler that sees only heartbeats grows and shrinks its core
// allocation (Figures 5, 6 and 7).
//
// Usage:
//
//	hbsched [-workload bodytrack|streamcluster|x264|all]
//	        [-policy stepper|pi] [-chart-width W] [-chart-height H]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/parsec"
	"repro/internal/plot"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

func main() {
	workload := flag.String("workload", "all", "bodytrack, streamcluster, x264, or all")
	policy := flag.String("policy", "stepper", "'stepper' (the paper's) or 'pi' (extension)")
	cw := flag.Int("chart-width", 72, "ASCII chart width")
	ch := flag.Int("chart-height", 16, "ASCII chart height")
	flag.Parse()

	for _, w := range parsec.SchedWorkloads() {
		if *workload != "all" && w.Name != *workload {
			continue
		}
		if err := runWorkload(w, *policy, *cw, *ch); err != nil {
			fmt.Fprintln(os.Stderr, "hbsched:", err)
			os.Exit(1)
		}
	}
}

func runWorkload(w parsec.SchedWorkload, policyName string, cw, ch int) error {
	const coreRate = 1e9
	clk := sim.NewClock(sim.Epoch)
	m := sim.NewMachine(clk, 8, coreRate)
	hb, err := heartbeat.New(w.Window, heartbeat.WithClock(clk))
	if err != nil {
		return err
	}
	if err := hb.SetTarget(w.TargetMin, w.TargetMax); err != nil {
		return err
	}
	m.SetCores(1)

	var pol scheduler.Policy
	switch policyName {
	case "stepper":
		pol = scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: w.TargetMin, TargetMax: w.TargetMax}}
	case "pi":
		setpoint := (w.TargetMin + w.TargetMax) / 2
		pol = scheduler.PIPolicy{
			PI: &control.PI{Kp: 0.5 / setpoint, Ki: 1.5 / setpoint, Setpoint: setpoint, MinOutput: 1, MaxOutput: 8},
			Dt: float64(w.CheckEvery) / setpoint,
		}
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	sched, err := scheduler.New(observer.HeartbeatSource(hb), m, pol, scheduler.WithWindow(w.Window))
	if err != nil {
		return err
	}

	series := &plot.Series{
		Title:  fmt.Sprintf("%s under the external %s scheduler (target %g-%g beats/s)", w.Name, policyName, w.TargetMin, w.TargetMax),
		XLabel: "heartbeat",
		Cols:   []string{"rate", "cores"},
	}
	for beat := 1; beat <= w.Beats; beat++ {
		m.Execute(w.Work(coreRate, beat))
		hb.Beat()
		rate, ok := hb.Rate(0)
		if !ok {
			rate = 0
		}
		series.Add(float64(beat), rate, float64(m.Cores()))
		if beat%w.CheckEvery == 0 {
			if _, err := sched.Step(); err != nil {
				return err
			}
		}
	}
	series.Chart(os.Stdout, cw, ch)
	fmt.Println()
	return nil
}
