package heartbeat_test

import (
	"fmt"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

// The basic instrumentation pattern: initialize, advertise a goal, beat at
// significant points, observe the rate. (A manual clock stands in for real
// time so the output is deterministic.)
func Example() {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(30, 35)

	for frame := 0; frame < 40; frame++ {
		clk.Advance(25 * time.Millisecond) // encode one frame
		hb.Beat()
	}
	rate, _ := hb.Rate(0)
	min, max, _ := hb.Target()
	fmt.Printf("rate %.0f beats/s, goal [%g, %g], met: %v\n", rate, min, max, rate >= min)
	// Output:
	// rate 40 beats/s, goal [30, 35], met: true
}

// Tags carry application meaning — here a video encoder marks frame types
// and asks for the I-frame rate separately.
func ExampleHeartbeat_RateByTag() {
	const tagI, tagP = 1, 2
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(20, heartbeat.WithClock(clk))

	for frame := 0; frame < 20; frame++ {
		clk.Advance(50 * time.Millisecond)
		if frame%5 == 0 {
			hb.BeatTag(tagI) // keyframe every 5th frame
		} else {
			hb.BeatTag(tagP)
		}
	}
	all, _ := hb.Rate(0)
	iOnly, _ := hb.RateByTag(20, tagI)
	fmt.Printf("all frames %.0f beats/s, I-frames %.0f beats/s\n", all, iOnly.PerSec)
	// Output:
	// all frames 20 beats/s, I-frames 4 beats/s
}

// Per-thread ("local") heartbeats give observers per-worker visibility
// while the global history tracks whole-application progress.
func ExampleHeartbeat_Thread() {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	fast := hb.Thread("fast-worker")
	slow := hb.Thread("slow-worker")

	for i := 0; i < 12; i++ {
		clk.Advance(50 * time.Millisecond)
		fast.Beat()
		if i%3 == 0 {
			slow.Beat()
		}
	}
	fr, _ := fast.Rate(0)
	sr, _ := slow.Rate(0)
	fmt.Printf("fast %.0f beats/s, slow %.1f beats/s, global beats %d\n", fr, sr, hb.Count())
	// Output:
	// fast 20 beats/s, slow 6.7 beats/s, global beats 0
}

// A Subscription is a cursor over the history: each record is delivered
// exactly once, and a consumer that disconnects resumes from its saved
// cursor — the contract every observation backend (files, network,
// relays) extends across process and machine boundaries.
func ExampleHeartbeat_SubscribeFrom() {
	hb, _ := heartbeat.New(10)
	for i := 0; i < 3; i++ {
		hb.Beat()
	}

	sub := hb.Subscribe(nil)
	recs, _ := sub.Next(nil)
	fmt.Printf("first batch: seqs 1..%d\n", recs[len(recs)-1].Seq)
	cursor := sub.Cursor()
	sub.Close() // the consumer goes away, keeping its cursor

	for i := 0; i < 2; i++ {
		hb.Beat()
	}
	resumed := hb.SubscribeFrom(nil, cursor)
	defer resumed.Close()
	recs, _ = resumed.Next(nil)
	fmt.Printf("resumed after %d: seqs %d..%d, nothing twice\n",
		cursor, recs[0].Seq, recs[len(recs)-1].Seq)
	// Output:
	// first batch: seqs 1..3
	// resumed after 3: seqs 4..5, nothing twice
}

// History returns the recent records for in-depth analysis.
func ExampleHeartbeat_History() {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	for i := 1; i <= 3; i++ {
		clk.Advance(time.Second)
		hb.BeatTag(int64(i * 100))
	}
	for _, r := range hb.History(2) {
		fmt.Printf("seq %d tag %d\n", r.Seq, r.Tag)
	}
	// Output:
	// seq 2 tag 200
	// seq 3 tag 300
}
