package hbnet

import (
	"context"
	"net"

	"repro/heartbeat"
)

// Dialer is the client-side transport seam: how a Client (and therefore a
// Relay upstream) reaches a server. The default is the real network
// (net.Dialer, which satisfies this interface); the deterministic
// simulation harness (package simnet) injects an in-memory implementation
// with a programmable fault schedule — partitions, link cuts, listener
// outages — so the reconnect/resume machinery is exercised without a
// socket in sight. The server side needs no counterpart seam: Serve
// already accepts any net.Listener.
type Dialer interface {
	DialContext(ctx context.Context, network, addr string) (net.Conn, error)
}

// WithDialer routes the client's dials (initial and every reconnect)
// through d instead of the real network.
func WithDialer(d Dialer) ClientOption {
	return func(c *Client) { c.dialer = d }
}

// WithClientClock runs the client's time on clk: reconnect backoff waits,
// the connection-survival measurement that paces immediately-dying
// connections, and the dial/handshake deadline all follow clk, so a
// virtual clock makes an outage window — and a hung handshake — a
// simulation event instead of a host sleep. A nil clk is the wall clock.
// Deadlines computed on a virtual clock only bound connections whose
// transport evaluates them on the same clock (simnet does; a kernel
// socket checks them against real time).
func WithClientClock(clk heartbeat.Clock) ClientOption {
	return func(c *Client) { c.clk = clk }
}
