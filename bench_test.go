package repro

// Benchmark harness: one benchmark per table/figure of the paper plus
// ablations of the design choices called out in DESIGN.md (lock-free vs
// locked history, beat granularity, file write-through, controller window,
// scheduler policy, encoder ladder level).
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/control"
	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/experiments"
	"repro/internal/parsec"
	"repro/internal/video"
	"repro/internal/x264"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// ---------------------------------------------------------------- core API

// BenchmarkBeat ablates the global-history locking strategy: the default
// lock-free seqlock ring against the paper-style mutex-guarded ring.
func BenchmarkBeat(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts []heartbeat.Option
	}{
		{"lockfree", nil},
		{"locked", []heartbeat.Option{heartbeat.WithLockedStore()}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			hb, err := heartbeat.New(20, append(variant.opts, heartbeat.WithCapacity(1<<12))...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hb.Beat()
			}
		})
		b.Run(variant.name+"-parallel", func(b *testing.B) {
			hb, err := heartbeat.New(20, append(variant.opts, heartbeat.WithCapacity(1<<12))...)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					hb.Beat()
				}
			})
		})
	}
}

// BenchmarkHeartbeatParallel measures contended beat registration at 1, 4
// and 8 goroutines: the sharded per-thread hot path (each goroutine owns a
// Thread and beats through its lock-free shard) against the seed's mutex
// path (every goroutine funnels through the locked global store). Each pair
// runs on the default wall clock and on the cached CoarseClock, since at
// contended beat rates the vdso clock read is itself a serial bottleneck.
func BenchmarkHeartbeatParallel(b *testing.B) {
	type variant struct {
		name    string
		locked  bool // seed mutex path: hb.Beat through the locked store
		coarse  bool
		sharded bool // per-goroutine Thread.GlobalBeat through shards
	}
	variants := []variant{
		{name: "seed-mutex", locked: true},
		{name: "seed-mutex-coarse", locked: true, coarse: true},
		{name: "sharded", sharded: true},
		{name: "sharded-coarse", sharded: true, coarse: true},
	}
	for _, procs := range []int{1, 4, 8} {
		for _, v := range variants {
			v := v
			b.Run(fmt.Sprintf("%s-%dg", v.name, procs), func(b *testing.B) {
				opts := []heartbeat.Option{
					heartbeat.WithCapacity(256),
					heartbeat.WithShardCapacity(1 << 15),
				}
				if v.locked {
					opts = append(opts, heartbeat.WithLockedStore())
				}
				if v.coarse {
					clk := heartbeat.NewCoarseClock(100 * time.Microsecond)
					defer clk.Stop()
					opts = append(opts, heartbeat.WithClock(clk))
				}
				hb, err := heartbeat.New(20, opts...)
				if err != nil {
					b.Fatal(err)
				}
				beat := make([]func(), procs)
				for g := 0; g < procs; g++ {
					if v.sharded {
						tr := hb.Thread("bench")
						beat[g] = tr.GlobalBeat
					} else {
						beat[g] = hb.Beat
					}
				}
				n := b.N / procs
				if n == 0 {
					n = 1
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < procs; g++ {
					wg.Add(1)
					go func(beat func()) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							beat()
						}
					}(beat[g])
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkBeatFileSink measures the reference-implementation behaviour:
// every heartbeat written through to the observation file.
func BenchmarkBeatFileSink(b *testing.B) {
	w, err := hbfile.Create(filepath.Join(b.TempDir(), "bench.hb"), 20, 1<<12)
	if err != nil {
		b.Fatal(err)
	}
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<12), heartbeat.WithSink(w))
	if err != nil {
		b.Fatal(err)
	}
	defer hb.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hb.Beat()
	}
	if err := hb.SinkErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkThreadBeat measures per-thread (local) heartbeats.
func BenchmarkThreadBeat(b *testing.B) {
	hb, err := heartbeat.New(20)
	if err != nil {
		b.Fatal(err)
	}
	tr := hb.Thread("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Beat()
	}
}

// BenchmarkRate measures windowed rate queries while the history is full.
func BenchmarkRate(b *testing.B) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<12))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<12; i++ {
		hb.Beat()
	}
	for _, window := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := hb.Rate(window); !ok {
					b.Fatal("rate not available")
				}
			}
		})
	}
}

// BenchmarkRateUnderWriters measures observer reads racing live producers —
// the concurrent path the seqlock design exists for.
func BenchmarkRateUnderWriters(b *testing.B) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<10))
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				hb.Beat()
			}
		}
	}()
	for {
		if _, ok := hb.Rate(100); ok {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.Rate(100)
	}
}

// BenchmarkPollVsStream is the consumer-API redesign's proof: snapshot
// polling pays O(window) fetch-and-decode on every tick whether or not
// anything happened, while a cursor-based stream consumer pays O(new
// records) — in particular, an idle tick (no new beats) does no
// per-record work at all. The in-process pairs compare Source.Snapshot
// against Subscription.Poll; the file pairs compare Reader.Last against
// Reader.ReadSince on the same ring file.
func BenchmarkPollVsStream(b *testing.B) {
	const window = 512

	mkFull := func(b *testing.B) *heartbeat.Heartbeat {
		b.Helper()
		hb, err := heartbeat.New(window, heartbeat.WithCapacity(window))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < window; i++ {
			hb.Beat()
		}
		return hb
	}

	b.Run("inproc-poll-idle", func(b *testing.B) {
		hb := mkFull(b)
		src := observer.HeartbeatSource(hb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap, err := src.Snapshot(window)
			if err != nil || len(snap.Records) != window {
				b.Fatal("bad snapshot")
			}
		}
	})
	b.Run("inproc-stream-idle", func(b *testing.B) {
		hb := mkFull(b)
		sub := hb.Subscribe(context.Background())
		defer sub.Close()
		if _, ok := sub.Poll(); !ok {
			b.Fatal("no backlog")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := sub.Poll(); ok {
				b.Fatal("phantom records on an idle tick")
			}
		}
	})
	b.Run("inproc-poll-live", func(b *testing.B) {
		hb := mkFull(b)
		src := observer.HeartbeatSource(hb)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hb.Beat()
			if _, err := src.Snapshot(window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inproc-stream-live", func(b *testing.B) {
		hb := mkFull(b)
		sub := hb.Subscribe(context.Background())
		defer sub.Close()
		sub.Poll() // consume the backlog
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hb.Beat()
			if recs, ok := sub.Poll(); !ok || len(recs) != 1 {
				b.Fatal("expected exactly the one new record")
			}
		}
	})

	mkFile := func(b *testing.B) *hbfile.Reader {
		b.Helper()
		path := filepath.Join(b.TempDir(), "pvs.hb")
		w, err := hbfile.Create(path, window, window)
		if err != nil {
			b.Fatal(err)
		}
		base := time.Unix(0, 0)
		for i := uint64(1); i <= window; i++ {
			if err := w.WriteRecord(heartbeat.Record{Seq: i, Time: base.Add(time.Duration(i) * time.Millisecond)}); err != nil {
				b.Fatal(err)
			}
		}
		r, err := hbfile.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { r.Close(); w.Close() })
		return r
	}

	b.Run("file-poll-idle", func(b *testing.B) {
		r := mkFile(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs, err := r.Last(window)
			if err != nil || len(recs) == 0 {
				b.Fatal("bad read")
			}
		}
	})
	b.Run("file-stream-idle", func(b *testing.B) {
		r := mkFile(b)
		_, cursor, err := r.ReadSince(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs, cur, err := r.ReadSince(cursor, 0)
			if err != nil || len(recs) != 0 || cur != cursor {
				b.Fatal("phantom records on an idle tick")
			}
		}
	})
}

// BenchmarkHBFileRead measures an external observer reading the ring file.
func BenchmarkHBFileRead(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.hb")
	w, err := hbfile.Create(path, 20, 1<<10)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Unix(0, 0)
	for i := uint64(1); i <= 1<<10; i++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: i, Time: base.Add(time.Duration(i) * time.Millisecond)}); err != nil {
			b.Fatal(err)
		}
	}
	r, err := hbfile.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Rate(100); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2Kernels measures one unit of each benchmark's real
// computation — the workload generators behind Table 2.
func BenchmarkTable2Kernels(b *testing.B) {
	for _, k := range parsec.Kernels() {
		k := k
		b.Run(k.Name(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			var sink uint64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs, _ := k.DoUnit(rng)
				sink ^= cs
			}
			benchSink = sink
		})
	}
}

var benchSink uint64

// BenchmarkTable2 regenerates the whole Table 2 simulation.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(experiments.Options{})
		if len(r.Table.Rows) != 10 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkOverheadGranularity ablates beat granularity on real
// blackscholes work with the file-backed sink — the §5.1 study.
func BenchmarkOverheadGranularity(b *testing.B) {
	for _, bench := range []struct {
		name      string
		beatEvery int
	}{
		{"uninstrumented", 0},
		{"beat-per-option", 1},
		{"beat-per-25000", 25000},
	} {
		bench := bench
		b.Run(bench.name, func(b *testing.B) {
			var hb *heartbeat.Heartbeat
			if bench.beatEvery > 0 {
				w, err := hbfile.Create(filepath.Join(b.TempDir(), "o.hb"), 20, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				hb, err = heartbeat.New(20, heartbeat.WithSink(w))
				if err != nil {
					b.Fatal(err)
				}
				defer hb.Close()
			}
			k := parsec.NewBlackscholes()
			rng := rand.New(rand.NewSource(1))
			var sink uint64
			b.ResetTimer()
			for i := 1; i <= b.N; i++ {
				cs, _ := k.DoUnit(rng)
				sink ^= cs
				if bench.beatEvery > 0 && i%bench.beatEvery == 0 {
					hb.Beat()
				}
			}
			benchSink = sink
		})
	}
}

// ---------------------------------------------------------------- figures

// BenchmarkFigures regenerates each figure at a reduced scale (the same
// scale the test suite asserts shape criteria at). Seeds vary per
// iteration to defeat the fig3/fig4 shared-run memoization.
func BenchmarkFigures(b *testing.B) {
	for _, id := range []string{"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "multiapp", "dvfs"} {
		id := id
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := experiments.Options{EncoderFrames: 120, Seed: int64(i)}
				r, err := experiments.Run(id, opt)
				if err != nil {
					b.Fatal(err)
				}
				if r.Series == nil || len(r.Series.X) == 0 {
					b.Fatal("empty series")
				}
			}
		})
	}
}

// BenchmarkEncoderLadder measures one encoded frame at each ladder level —
// the cost axis behind Figures 3 and 4 (knob ablation). The reported
// model-ops/frame metric is the simulated cost the figures are driven by;
// ns/op is the real host cost of the same work.
func BenchmarkEncoderLadder(b *testing.B) {
	prof := video.Uniform(video.Complexity{Motion: 2.5, Detail: 14, Noise: 3})
	for lvl, cfg := range x264.Ladder() {
		lvl, cfg := lvl, cfg
		b.Run(fmt.Sprintf("L%d", lvl), func(b *testing.B) {
			src := video.NewSource(160, 96, 1, prof)
			enc := x264.NewEncoder(cfg)
			f, _ := src.Next()
			if _, err := enc.Encode(f); err != nil { // intra warm-up
				b.Fatal(err)
			}
			var ops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, _ := src.Next()
				st, err := enc.Encode(f)
				if err != nil {
					b.Fatal(err)
				}
				ops += st.Ops
			}
			b.ReportMetric(ops/float64(b.N), "model-ops/frame")
		})
	}
}

// BenchmarkSchedulerPolicy ablates the paper's threshold stepper against
// the PI extension on the Figure 5 workload, reporting beats-in-window.
func BenchmarkSchedulerPolicy(b *testing.B) {
	w := parsec.BodytrackSched()
	mkPolicy := map[string]func() scheduler.Policy{
		"stepper": func() scheduler.Policy {
			return scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: w.TargetMin, TargetMax: w.TargetMax}}
		},
		"pi": func() scheduler.Policy {
			set := (w.TargetMin + w.TargetMax) / 2
			return scheduler.PIPolicy{
				PI: &control.PI{Kp: 0.5 / set, Ki: 1.5 / set, Setpoint: set, MinOutput: 1, MaxOutput: 8},
				Dt: float64(w.CheckEvery) / set,
			}
		},
		"planner": func() scheduler.Policy {
			return &control.AmdahlPlanner{ParallelFrac: w.ParallelFrac, TargetMin: w.TargetMin, TargetMax: w.TargetMax}
		},
	}
	for _, name := range []string{"stepper", "pi", "planner"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var inWindow int
			for i := 0; i < b.N; i++ {
				inWindow = runSchedBench(b, w, mkPolicy[name]())
			}
			b.ReportMetric(float64(inWindow), "beats-in-window")
		})
	}
}

// BenchmarkControllerWindow ablates the observation window length on the
// Figure 5 workload: short windows react faster but judge on fewer beats.
func BenchmarkControllerWindow(b *testing.B) {
	base := parsec.BodytrackSched()
	for _, window := range []int{2, 5, 10, 20} {
		window := window
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			w := base
			w.Window = window
			w.CheckEvery = window
			var inWindow int
			for i := 0; i < b.N; i++ {
				inWindow = runSchedBench(b, w,
					scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: w.TargetMin, TargetMax: w.TargetMax}})
			}
			b.ReportMetric(float64(inWindow), "beats-in-window")
		})
	}
}

// runSchedBench runs one scheduling workload and returns how many beats
// landed inside the target window.
func runSchedBench(b *testing.B, w parsec.SchedWorkload, pol scheduler.Policy) int {
	b.Helper()
	const coreRate = 1e9
	clk := sim.NewClock(sim.Epoch)
	m := sim.NewMachine(clk, 8, coreRate)
	hb, err := heartbeat.New(w.Window, heartbeat.WithClock(clk))
	if err != nil {
		b.Fatal(err)
	}
	if err := hb.SetTarget(w.TargetMin, w.TargetMax); err != nil {
		b.Fatal(err)
	}
	m.SetCores(1)
	sched, err := scheduler.New(observer.HeartbeatSource(hb), m, pol, scheduler.WithWindow(w.Window))
	if err != nil {
		b.Fatal(err)
	}
	inWindow := 0
	for beat := 1; beat <= w.Beats; beat++ {
		m.Execute(w.Work(coreRate, beat))
		hb.Beat()
		if rate, ok := hb.Rate(0); ok && rate >= w.TargetMin && rate <= w.TargetMax {
			inWindow++
		}
		if beat%w.CheckEvery == 0 {
			if _, err := sched.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	return inWindow
}
