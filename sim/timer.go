package sim

import (
	"container/heap"
	"context"
	"runtime"
	"time"
)

// This file gives the simulated clock a timer queue, which is what turns
// it from a readable counter into a schedulable one: goroutines wait on
// After and the clock fires them, in deadline order, as it is advanced.
// Together with heartbeat.WaitClock (which Clock satisfies) this lets the
// whole stack — observer tickers, hbnet backoff, scheduler loops — run
// under virtual time: a blocked loop costs nothing until the clock sweeps
// past its deadline, and a simulated minute takes the real time of its
// events, not a minute.

// simTimer is one registered wait: fire delivers the clock reading once
// the clock passes when.
type simTimer struct {
	when time.Time
	ch   chan time.Time
	seq  uint64 // registration order breaks deadline ties deterministically
}

// timerHeap orders timers by deadline, then registration.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*simTimer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// After implements heartbeat.WaitClock: the returned channel delivers the
// clock's reading once d has elapsed in simulated time — that is, once an
// Advance (or the AutoAdvance driver) sweeps past now+d. A non-positive d
// fires immediately. Like time.After, the timer cannot be cancelled;
// abandoned channels are garbage-collected once fired.
func (c *Clock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	if d <= 0 {
		ch <- c.now
		c.mu.Unlock()
		return ch
	}
	c.timerSeq++
	heap.Push(&c.timers, &simTimer{when: c.now.Add(d), ch: ch, seq: c.timerSeq})
	if c.armed != nil {
		close(c.armed)
		c.armed = nil
	}
	c.mu.Unlock()
	return ch
}

// fireDueLocked pops and fires every timer with a deadline at or before
// target, stepping now to each deadline in order so a timer never observes
// a clock that has not yet reached it. Callers hold c.mu.
func (c *Clock) fireDueLocked(target time.Time) {
	for len(c.timers) > 0 && !c.timers[0].when.After(target) {
		t := heap.Pop(&c.timers).(*simTimer)
		if c.now.Before(t.when) {
			c.now = t.when
		}
		t.ch <- c.now // buffered: never blocks, receiver may be long gone
	}
}

// NextDeadline returns the earliest pending timer deadline, if any.
func (c *Clock) NextDeadline() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) == 0 {
		return time.Time{}, false
	}
	return c.timers[0].when, true
}

// PendingTimers returns how many timers are waiting on the clock.
func (c *Clock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.timers)
}

// AdvanceToNext advances the clock exactly to the earliest pending timer
// deadline, firing every timer registered for it. It reports whether a
// timer was pending; a false return leaves the clock untouched.
func (c *Clock) AdvanceToNext() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.timers) == 0 {
		return false
	}
	c.fireDueLocked(c.timers[0].when)
	return true
}

// awaitTimer blocks until at least one timer is pending or ctx is done;
// false means cancelled.
func (c *Clock) awaitTimer(ctx context.Context) bool {
	for {
		c.mu.Lock()
		if len(c.timers) > 0 {
			c.mu.Unlock()
			return true
		}
		if c.armed == nil {
			c.armed = make(chan struct{})
		}
		armed := c.armed
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			return false
		case <-armed:
		}
	}
}

// settleRounds is how many scheduler yields AutoAdvance grants the
// goroutines woken by one advance before the next: enough for a woken loop
// to consume its event and re-arm its next wait in the common case, cheap
// enough that a simulated second still costs microseconds.
const settleRounds = 16

// AutoAdvance drives the clock until ctx is cancelled: whenever any
// goroutine is waiting on the clock, it yields briefly (letting goroutines
// woken by the previous step run and register their next waits) and then
// advances to the earliest pending deadline. With every loop in the system
// blocked on clock waits, this turns the program into an event-driven
// simulation — virtual time leaps from deadline to deadline at whatever
// rate the host executes the events in between.
//
// The yield is a heuristic, not a quiescence handshake: under host load a
// woken goroutine may re-arm its next wait only after the clock has moved
// past further deadlines, so exact event interleavings can vary between
// runs (the clock can overshoot — a wait lands relative to a later "now").
// What stays reproducible is everything derived from a seed (the simnet
// scenario configurations), and simulation assertions should therefore be
// interleaving-insensitive invariants (conservation, exactly-once), not
// exact timelines.
//
// Run it on its own goroutine; it returns when ctx is cancelled. Limit, if
// positive, stops the driver once the clock passes start+limit — a
// backstop against a runaway simulation.
func (c *Clock) AutoAdvance(ctx context.Context, limit time.Duration) {
	var end time.Time
	if limit > 0 {
		end = c.Now().Add(limit)
	}
	for ctx.Err() == nil {
		if !c.awaitTimer(ctx) {
			return
		}
		for i := 0; i < settleRounds; i++ {
			runtime.Gosched()
		}
		if ctx.Err() != nil {
			return
		}
		if end.IsZero() {
			c.AdvanceToNext()
			continue
		}
		// Honor the backstop exactly: never sweep past end, even when the
		// next deadline lies beyond it (e.g. one far-future backoff wait).
		c.mu.Lock()
		if len(c.timers) == 0 {
			c.mu.Unlock() // a concurrent Advance drained the queue
			continue
		}
		target, done := c.timers[0].when, false
		if target.After(end) {
			target, done = end, true
		}
		c.fireDueLocked(target)
		if c.now.Before(target) {
			c.now = target
		}
		c.mu.Unlock()
		if done {
			return
		}
	}
}
