package observer_test

// FollowFile under virtual time: the delete/recreate machinery driven by a
// simulated clock (and by expired-context drains), covering the windows
// the wall-clock tests could only reach with real sleeps — the
// deleted-but-not-yet-recreated gap, a recreation that lands between two
// idle ticks, and a recreation whose new file is briefly unopenable.

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
	"repro/sim"
)

// virtualRingProducer writes records through an in-process heartbeat
// sinking into a ring file, timestamped by the virtual clock.
func virtualRingProducer(t *testing.T, clk *sim.Clock, path string, capacity int) *heartbeat.Heartbeat {
	t.Helper()
	w, err := hbfile.Create(path, 10, capacity)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w), heartbeat.WithCapacity(capacity))
	if err != nil {
		t.Fatal(err)
	}
	return hb
}

// TestFollowFileVirtualRecreateBetweenIdleTicks runs a live FollowFile
// tail entirely on a simulated clock: the poll ticks, the
// recreation-detection stats they pace, and the producer all advance in
// virtual time (AutoAdvance), so a scenario that would cost seconds of
// wall-clock sleeping resolves in milliseconds. The file is deleted and
// recreated while the tail is idle — between two virtual ticks — and the
// tail must rotate into the new life, redelivering it from sequence 1.
func TestFollowFileVirtualRecreateBetweenIdleTicks(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	path := filepath.Join(t.TempDir(), "app.hb")
	hb := virtualRingProducer(t, clk, path, 1024)

	s, err := observer.FollowFileClock(path, 15*time.Millisecond, 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer s.(io.Closer).Close()

	tracker := simcheck.NewTracker("virtual follow", 0)
	batches := make(chan observer.Batch, 64)
	go func() {
		for {
			b, err := s.Next(ctx)
			if err != nil {
				close(batches)
				return
			}
			batches <- b
		}
	}()
	absorb := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for tracker.Delivered() < want {
			select {
			case b, ok := <-batches:
				if !ok {
					t.Fatalf("stream ended at %d of %d records", tracker.Delivered(), want)
				}
				if err := tracker.Absorb(b); err != nil {
					t.Fatal(err)
				}
			case <-time.After(time.Until(deadline)):
				t.Fatalf("stalled at %d of %d records", tracker.Delivered(), want)
			}
		}
	}

	for i := 0; i < 10; i++ {
		hb.Beat()
	}
	absorb(10)

	// Delete, then recreate after a few virtual ticks have passed over the
	// deleted-not-yet-recreated window (the old inode keeps draining: the
	// missing path must not end or break the stream).
	hb.Close()
	os.Remove(path)
	virtualSleep(t, clk, 100*time.Millisecond)
	hb2 := virtualRingProducer(t, clk, path, 1024)
	defer hb2.Close()
	for i := 0; i < 7; i++ {
		hb2.Beat()
	}
	absorb(17)

	if err := tracker.CheckLives(2); err != nil {
		t.Fatal(err)
	}
	// Both lives fully observed: 10 published + 7 published, every one
	// delivered or accounted.
	if err := tracker.CheckConserved(17); err != nil {
		t.Fatal(err)
	}
}

// virtualSleep blocks (in real time) until the virtual clock has advanced
// by d — letting AutoAdvance fire however many poll ticks fit in it.
func virtualSleep(t *testing.T, clk *sim.Clock, d time.Duration) {
	t.Helper()
	target := clk.Now().Add(d)
	deadline := time.Now().Add(10 * time.Second)
	for clk.Now().Before(target) {
		if time.Now().After(deadline) {
			t.Fatalf("virtual clock stalled at %v short of target", target.Sub(clk.Now()))
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestFollowFileDeletedWindowAndUnopenableSuccessor walks the recreation
// state machine deterministically with expired-context drains (the
// non-blocking form of Next), no clock driver at all: the deleted window
// is an idle tick, a recreated-but-garbage file parks the stream in its
// reopen-retry state, and a later valid successor — in the other variant —
// heals it.
func TestFollowFileDeletedWindowAndUnopenableSuccessor(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	path := filepath.Join(t.TempDir(), "app.hb")
	hb := virtualRingProducer(t, clk, path, 1024)

	s, err := observer.FollowFileClock(path, 10*time.Millisecond, 0, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer s.(io.Closer).Close()

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	drain := func() (observer.Batch, bool) {
		b, err := s.Next(expired)
		if err == nil {
			return b, true
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("drain: %v", err)
		}
		return observer.Batch{}, false
	}

	tracker := simcheck.NewTracker("deleted-window follow", 0)
	for i := 0; i < 5; i++ {
		hb.Beat()
	}
	if b, ok := drain(); !ok {
		t.Fatal("no batch for the first life")
	} else if err := tracker.Absorb(b); err != nil {
		t.Fatal(err)
	}

	// The deleted-not-yet-recreated window: the stream reports idle (a
	// cancelled wait), never an error and never EOF.
	hb.Close()
	os.Remove(path)
	for i := 0; i < 3; i++ {
		if _, ok := drain(); ok {
			t.Fatal("batch delivered from a deleted file")
		}
	}

	// A recreation the open cannot parse yet (a producer mid-write): the
	// stream drops its dead reader, then parks in the reopen-retry state —
	// still only idle ticks outward.
	if err := os.WriteFile(path, []byte("not a heartbeat file"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := drain(); ok {
			t.Fatal("batch delivered from a garbage file")
		}
	}

	// The successor becomes valid — as the other variant (append-only log)
	// — and the tail rotates into it, redelivering from sequence 1.
	os.Remove(path)
	lw, err := hbfile.CreateLog(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	hb2, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(lw))
	if err != nil {
		t.Fatal(err)
	}
	defer hb2.Close()
	for i := 0; i < 4; i++ {
		hb2.Beat()
	}
	deadline := time.Now().Add(5 * time.Second)
	for tracker.Delivered() < 9 {
		if b, ok := drain(); ok {
			if err := tracker.Absorb(b); err != nil {
				t.Fatal(err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled at %d of 9 records", tracker.Delivered())
		}
	}
	if err := tracker.CheckLives(2); err != nil {
		t.Fatal(err)
	}
	if err := tracker.CheckConserved(9); err != nil {
		t.Fatal(err)
	}
}
