package observer

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestCompactorConservation: over any sequence of absorbed child windows
// and interleaved flushes, the summed Records and Missed of the emitted
// compacted windows must equal the sums absorbed — compaction is exactly
// as loss-transparent as downsampling.
func TestCompactorConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	apps := []string{"a", "b", "c", "d"}
	c := NewRollupCompactor()
	var inRecs, inMiss, outRecs, outMiss uint64
	for round := 0; round < 50; round++ {
		for i, n := 0, rng.Intn(10); i < n; i++ {
			r := Rollup{
				App:     apps[rng.Intn(len(apps))],
				Records: uint64(rng.Intn(1000)),
				Missed:  uint64(rng.Intn(100)),
			}
			inRecs += r.Records
			inMiss += r.Missed
			c.Absorb(r)
		}
		for _, r := range c.Flush(time.Unix(int64(round), 0), time.Unix(int64(round+1), 0)) {
			outRecs += r.Records
			outMiss += r.Missed
		}
	}
	if outRecs != inRecs || outMiss != inMiss {
		t.Fatalf("compaction does not conserve: out %d/%d, in %d/%d", outRecs, outMiss, inRecs, inMiss)
	}
}

// TestCompactorSilentApps: a tracked app with nothing absorbed is still
// emitted — as a silent window — and a window with only losses is not
// silent (the Silent() distinction survives compaction).
func TestCompactorSilentApps(t *testing.T) {
	c := NewRollupCompactor()
	c.Track("quiet")
	c.Absorb(Rollup{App: "lossy", Missed: 7})
	rs := c.Flush(time.Unix(0, 0), time.Unix(1, 0))
	if len(rs) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(rs))
	}
	byApp := map[string]Rollup{}
	for _, r := range rs {
		byApp[r.App] = r
	}
	if !byApp["quiet"].Silent() {
		t.Fatalf("tracked-but-unfed app not silent: %+v", byApp["quiet"])
	}
	if byApp["lossy"].Silent() {
		t.Fatal("a losses-only window compacted to silent — loss hidden")
	}
	if byApp["lossy"].Missed != 7 {
		t.Fatalf("lossy Missed = %d, want 7", byApp["lossy"].Missed)
	}
}

// TestCompactorSingleSource: with one child window per interval the
// compacted window passes the descriptive fields through.
func TestCompactorSingleSource(t *testing.T) {
	c := NewRollupCompactor()
	in := Rollup{
		App: "app", Records: 10, Missed: 2, Count: 42,
		MinInterval: 90 * time.Millisecond, MaxInterval: 110 * time.Millisecond,
		MeanInterval: 100 * time.Millisecond,
	}
	c.Absorb(in)
	out := c.Flush(time.Unix(0, 0), time.Unix(1, 0))[0]
	if out.Records != 10 || out.Missed != 2 || out.Count != 42 {
		t.Fatalf("counts mangled: %+v", out)
	}
	if out.MinInterval != in.MinInterval || out.MaxInterval != in.MaxInterval || out.MeanInterval != in.MeanInterval {
		t.Fatalf("intervals mangled: %+v", out)
	}
	if !out.RateOK || out.Rate.PerSec != in.ObservedRate() {
		t.Fatalf("rate %v (ok=%v), want %v", out.Rate.PerSec, out.RateOK, in.ObservedRate())
	}
	// Count is cumulative: it survives an empty interval.
	next := c.Flush(time.Unix(1, 0), time.Unix(2, 0))[0]
	if next.Count != 42 || !next.Silent() {
		t.Fatalf("next interval: %+v, want silent with Count 42", next)
	}
}

// TestCompactorWeightedSummaries: two children of unequal volume combine
// into record-weighted means and cross-child extremes.
func TestCompactorWeightedSummaries(t *testing.T) {
	c := NewRollupCompactor()
	c.Absorb(Rollup{
		App: "app", Records: 30, Count: 30,
		MinInterval: 50 * time.Millisecond, MaxInterval: 150 * time.Millisecond,
		MeanInterval: 100 * time.Millisecond,
	})
	c.Absorb(Rollup{
		App: "app", Records: 10, Count: 40,
		MinInterval: 200 * time.Millisecond, MaxInterval: 400 * time.Millisecond,
		MeanInterval: 300 * time.Millisecond,
	})
	out := c.Flush(time.Unix(0, 0), time.Unix(1, 0))[0]
	if out.Records != 40 {
		t.Fatalf("Records = %d, want 40", out.Records)
	}
	if out.Count != 40 {
		t.Fatalf("Count = %d, want the largest advertised 40", out.Count)
	}
	if out.MinInterval != 50*time.Millisecond || out.MaxInterval != 400*time.Millisecond {
		t.Fatalf("extremes: %v..%v", out.MinInterval, out.MaxInterval)
	}
	// Weighted mean: (100ms*30 + 300ms*10) / 40 = 150ms.
	if got, want := out.MeanInterval, 150*time.Millisecond; got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("MeanInterval = %v, want ~%v", got, want)
	}
	// Weighted rate: (10/s*30 + 10/3/s*10)/40 = 8.333/s.
	if !out.RateOK || out.Rate.PerSec < 8.2 || out.Rate.PerSec > 8.5 {
		t.Fatalf("Rate = %+v, want ~8.33/s weighted", out.Rate)
	}
}

// TestCompactorOrder: emission order is registration order, like the
// Downsampler, so a subscriber sees a stable app layout.
func TestCompactorOrder(t *testing.T) {
	c := NewRollupCompactor()
	c.Absorb(Rollup{App: "z"})
	c.Track("a")
	c.Absorb(Rollup{App: "m"})
	if got, want := c.Apps(), []string{"z", "a", "m"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Apps() = %v, want %v", got, want)
	}
	var order []string
	for _, r := range c.Flush(time.Unix(0, 0), time.Unix(1, 0)) {
		order = append(order, r.App)
	}
	if !reflect.DeepEqual(order, []string{"z", "a", "m"}) {
		t.Fatalf("flush order %v", order)
	}
}
