// Package hbnet streams Application Heartbeats between machines: the
// paper's claim that heartbeats "can be registered by one process and read
// by other processes, possibly on other machines" (§2–3), realized as the
// third observation backend next to in-process subscriptions (heartbeat,
// observer.HeartbeatStream) and shared files (hbfile).
//
// A Server publishes named feeds — live heartbeats, heartbeat files, or
// any cursor-resumable stream — over plain TCP using a length-prefixed
// binary codec. A Client dials one feed and satisfies observer.Stream, so
// every local consumer (observer.Monitor, observer.Hub,
// scheduler.CoreScheduler, scheduler.Partitioner, the control policies)
// works unchanged across the process or machine boundary.
//
// Delivery keeps the local cursor semantics end to end: each record is
// delivered at most once, in order, and records published but lapped
// before delivery are counted in Batch.Missed — exactly like a local
// subscription. A subscriber presents its last cursor on connect; the
// server replays newer retained records (heartbeat.Heartbeat.ReadSince
// underneath) and then switches to live push. The Client redials broken
// connections automatically with that same cursor, so a network blip costs
// a delay, never a duplicate, and ring overwrites during the outage
// surface as Missed rather than silent loss.
//
// Health judgments stay on the consumer side: the wire carries raw
// records, not opinions, which is the paper's division of labor — the
// application publishes progress, observers decide what it means.
//
// For fleets, Relay adds a hierarchical fan-in tier: one node subscribes
// to many upstream feeds (or local files), merges them into a single
// re-sequenced feed, and emits downsampled per-app Rollups — and relays
// compose into trees, so a monitor holds O(1) connections however many
// producers exist. See ARCHITECTURE.md at the repository root for when to
// choose each observation topology.
//
// The transport is a seam, not a hard-coded socket: Serve accepts any
// net.Listener, and WithDialer routes a Client's dials (initial and every
// reconnect) through any Dialer. The deterministic simulation harness
// (package simnet) injects an in-memory network with a programmable fault
// schedule through exactly this seam, and WithClientClock / WithRelayClock
// put the backoff and rollup cadences on a virtual clock — which is how
// the reconnect/resume machinery is proven over hundreds of seeded fault
// scenarios per CI run without opening a socket.
package hbnet
