package parsec

import "repro/sim"

// SchedWorkload describes one of the external-scheduler experiments of
// §5.3: a beat-indexed cost stream, the target window the application
// advertises, and the cadence at which the scheduler re-decides. The
// single-core base rate and Amdahl fraction are chosen so the simulated
// core-allocation trajectory reproduces the corresponding figure's shape.
type SchedWorkload struct {
	// Name is the benchmark name.
	Name string
	// TargetMin and TargetMax are the advertised window (beats/s).
	TargetMin, TargetMax float64
	// Beats is the experiment length in heartbeats.
	Beats int
	// CheckEvery is how many beats separate scheduler decisions.
	CheckEvery int
	// Window is the rate-averaging window in beats.
	Window int
	// ParallelFrac is the Amdahl fraction of each work item.
	ParallelFrac float64
	// BaseRate is the single-core heart rate on the nominal-load phase.
	BaseRate float64
	// Shape multiplies the nominal per-beat cost as the run progresses.
	Shape func(beat int) float64
}

// Work returns the simulated work of the given beat for a machine with the
// given per-core op rate.
func (w SchedWorkload) Work(coreRate float64, beat int) sim.Work {
	return sim.Work{
		Ops:          coreRate / w.BaseRate * w.Shape(beat),
		ParallelFrac: w.ParallelFrac,
	}
}

// BodytrackSched reproduces Figure 5: target 2.5-3.5 beats/s; the scheduler
// ramps to seven cores, a load bump around beat 102 forces the eighth and
// final core, and a sharp load drop at beat 141 lets the scheduler reclaim
// cores until a single core meets the goal.
func BodytrackSched() SchedWorkload {
	return SchedWorkload{
		Name:      "bodytrack",
		TargetMin: 2.5, TargetMax: 3.5,
		Beats:      260,
		CheckEvery: 5,
		Window:     10,
		// Base rate 0.52 beats/s on one core with p=0.95 puts the
		// seven-core rate just above 2.5 (the paper's initial plateau).
		ParallelFrac: 0.95,
		BaseRate:     0.52,
		Shape: func(beat int) float64 {
			switch {
			case beat > 141:
				return 0.16 // load collapses: one core suffices
			case beat > 95:
				return 1.17 // the dip that demands the eighth core
			default:
				return 1
			}
		},
	}
}

// StreamclusterSched reproduces Figure 6: a narrow 0.50-0.55 beats/s window
// reached by roughly the twenty-second heartbeat and held thereafter.
func StreamclusterSched() SchedWorkload {
	return SchedWorkload{
		Name:      "streamcluster",
		TargetMin: 0.50, TargetMax: 0.55,
		Beats:      90,
		CheckEvery: 4,
		Window:     8,
		// Base rate 0.139 with p=0.93: five cores give ~0.53 beats/s,
		// inside the paper's narrow window.
		ParallelFrac: 0.93,
		BaseRate:     0.139,
		Shape:        func(int) float64 { return 1 },
	}
}

// X264Sched reproduces Figure 7: target 30-35 beats/s held with a handful
// of cores, absorbing two transient spikes where easy content pushes the
// encoder above 45 beats/s.
func X264Sched() SchedWorkload {
	return SchedWorkload{
		Name:      "x264",
		TargetMin: 30, TargetMax: 35,
		Beats:      600,
		CheckEvery: 10,
		Window:     10,
		// Base rate 8.96 with p=0.90: five cores give 32 beats/s.
		ParallelFrac: 0.90,
		BaseRate:     8.96,
		Shape: func(beat int) float64 {
			if (beat >= 180 && beat < 230) || (beat >= 400 && beat < 450) {
				return 0.68 // easy scenes: rate spikes past 45
			}
			return 1
		},
	}
}

// SchedWorkloads returns the three §5.3 experiments in paper order.
func SchedWorkloads() []SchedWorkload {
	return []SchedWorkload{BodytrackSched(), StreamclusterSched(), X264Sched()}
}
