package scheduler_test

import (
	"testing"

	"repro/control"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// The model-based planner satisfies the scheduler Policy interface
// structurally and converges in far fewer decisions than the paper's
// one-core-at-a-time stepper — the design-choice ablation DESIGN.md calls
// out (threshold vs model-based control).
func TestPlannerPolicyConvergesFasterThanStepper(t *testing.T) {
	run := func(pol scheduler.Policy) (decisionsToWindow int) {
		const window = 10
		hb, m := newSim(t, window)
		hb.SetTarget(8, 10)
		m.SetCores(1)
		sched, err := scheduler.New(observer.HeartbeatSource(hb), m, pol)
		if err != nil {
			t.Fatal(err)
		}
		work := func(int) sim.Work { return sim.Work{Ops: 0.5e6, ParallelFrac: 0.95} }
		decisions := 0
		for b := 1; b <= 600; b++ {
			m.Execute(work(b))
			hb.Beat()
			if b%window == 0 {
				s, err := sched.Step()
				if err != nil {
					t.Fatal(err)
				}
				decisions++
				if s.RateOK && s.Rate >= 8 && s.Rate <= 10 {
					return decisions
				}
			}
		}
		t.Fatal("never reached window")
		return 0
	}

	stepperDecisions := run(scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 8, TargetMax: 10}})
	plannerDecisions := run(&control.AmdahlPlanner{ParallelFrac: 0.95, TargetMin: 8, TargetMax: 10})

	if plannerDecisions >= stepperDecisions {
		t.Fatalf("planner took %d decisions, stepper %d; planner should jump directly",
			plannerDecisions, stepperDecisions)
	}
	if plannerDecisions > 2 {
		t.Fatalf("planner took %d decisions, want <= 2 on an Amdahl plant", plannerDecisions)
	}
}
