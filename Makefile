# Tier-1 verification plus race checking and the short benchmark pass in
# one command: `make ci`.

GO ?= go

.PHONY: ci vet build test race bench-short bench bench-compare

ci: vet build race bench-short bench-compare

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The core-API benchmarks only, briefly: enough to catch a hot-path
# regression without regenerating every figure.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkBeat$$|BenchmarkHeartbeatParallel|BenchmarkThreadBeat' \
		-benchmem -benchtime=200ms .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Snapshot polling vs cursor streaming, recorded as test2json events in
# BENCH_stream.json so the consumer-path perf trajectory is tracked across
# PRs (compare the Output lines of successive runs).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkPollVsStream' -benchmem \
		-benchtime=200ms -json . > BENCH_stream.json
	@sed -n 's/^{.*"Output":"\(.*\)"}$$/\1/p' BENCH_stream.json \
		| awk '{printf "%s", $$0}' \
		| sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' \
		| grep 'ns/op'
