// Package loadgen is the scale side of the deterministic test harness: a
// synthetic fleet of up to millions of heartbeat producers driven by ONE
// goroutine off a virtual timer queue. Where the scenario matrix (package
// simnet) proves the delivery contract at small scale with goroutine-per-
// producer fidelity, loadgen proves the same contract three orders of
// magnitude up, where per-producer goroutines and per-producer relay state
// are exactly the costs under test.
//
// The shape: a Fleet distributes N producers across A applications by Zipf
// skew (hot apps carry most of the fleet), each application exposes ONE
// observer.Stream (AppStream) that a relay subscribes to, and producers
// exist only as Record.Producer ids and min-heap deadlines inside the
// pump. Membership churn (join/leave mid-run, each incarnation a new
// Life), correlated silence bursts (a contiguous id range going quiet
// together) and per-beat rate jitter are all drawn from one seeded rng, so
// a failing run replays exactly from its seed.
//
// Everything waits on a heartbeat.WaitClock: under sim.Clock/AutoAdvance a
// simulated second costs the events in it, and the pump quantizes those
// events to PumpTick — the virtual timer queue sees O(duration/tick)
// registrations however many producers beat.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// Config parameterizes a synthetic fleet. Zero values select the noted
// defaults.
type Config struct {
	Seed      int64
	Producers int
	// Apps is how many applications the producers are distributed over —
	// the unit of relay fan-in and rollup state (default 32).
	Apps int
	// BeatEvery is the base inter-beat interval per producer (default 1s);
	// Jitter is the ± fraction of it drawn per beat (default 0.2).
	BeatEvery time.Duration
	Jitter    float64
	// ZipfS is the app-popularity exponent: producers land on apps with
	// P(app) ∝ 1/(app+1)^s (default 1.1; 0 = uniform).
	ZipfS float64
	// Duration is the horizon churn and bursts are scheduled within
	// (default 10s). The pump itself runs until its context ends.
	Duration time.Duration
	// ChurnFrac of the producers leave mid-run; most rejoin as a new Life
	// (default 0 — no churn).
	ChurnFrac float64
	// Bursts correlated silence bursts: each silences a contiguous
	// BurstFrac share of the producer id space for BurstLen (defaults
	// 0 bursts, 0.25, 1s).
	Bursts    int
	BurstFrac float64
	BurstLen  time.Duration
	// PumpTick quantizes the pump's virtual wake-ups (default 10ms): beats
	// due within a tick are emitted together, stamped with their scheduled
	// (un-quantized) times.
	PumpTick time.Duration
}

func (c Config) withDefaults() Config {
	if c.Producers <= 0 {
		c.Producers = 1
	}
	if c.Apps <= 0 {
		c.Apps = 32
	}
	if c.Apps > c.Producers {
		c.Apps = c.Producers
	}
	if c.BeatEvery <= 0 {
		c.BeatEvery = time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.BurstFrac == 0 {
		c.BurstFrac = 0.25
	}
	if c.BurstLen <= 0 {
		c.BurstLen = time.Second
	}
	if c.PumpTick <= 0 {
		c.PumpTick = 10 * time.Millisecond
	}
	return c
}

// prod is one simulated producer: 16 bytes of pump state, no goroutine.
type prod struct {
	app      int32
	life     int32
	live     bool
	silentTo time.Duration // beats scheduled before this offset are skipped
}

// beatEntry is one pending deadline in the pump's min-heap. Entries are
// never removed on leave; they are skipped when popped with a stale life —
// which is exactly the no-resurrection guard the churn tests pin down.
type beatEntry struct {
	at   time.Duration
	idx  int32
	life int32
}

type burst struct {
	at       time.Duration
	from, to int // producer id range [from, to)
	until    time.Duration
}

// Fleet drives Config.Producers synthetic producers through Config.Apps
// AppStreams from a single goroutine (Run). Accessors are safe to call
// concurrently with Run.
type Fleet struct {
	cfg   Config
	clk   heartbeat.WaitClock
	apps  []*AppStream
	byApp []int // producer count per app, fixed at New

	paused atomic.Bool

	mu       sync.Mutex // guards everything below (pump-owned between ticks)
	prods    []prod
	heap     []beatEntry
	churn    []ChurnEvent
	churnAt  int
	bursts   []burst
	burstAt  int
	rng      *rand.Rand
	scratch  [][]heartbeat.Record
	left     int // churn leaves applied
	rejoined int // churn joins applied
	silenced int // producer-bursts applied (Σ burst range sizes)
}

// New builds the fleet: app assignment (Zipf), initial beat stagger, churn
// schedule and burst schedule are all drawn here, in this order, from the
// config seed — New is the whole of a run's randomness.
func New(cfg Config, clk heartbeat.WaitClock) *Fleet {
	cfg = cfg.withDefaults()
	if clk == nil {
		panic("loadgen: New needs a WaitClock")
	}
	f := &Fleet{
		cfg:     cfg,
		clk:     clk,
		apps:    make([]*AppStream, cfg.Apps),
		byApp:   make([]int, cfg.Apps),
		prods:   make([]prod, cfg.Producers),
		heap:    make([]beatEntry, 0, cfg.Producers),
		scratch: make([][]heartbeat.Record, cfg.Apps),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range f.apps {
		f.apps[i] = &AppStream{name: fmt.Sprintf("app%03d", i)}
	}
	z := NewZipf(cfg.Apps, cfg.ZipfS)
	for i := range f.prods {
		app := z.Sample(f.rng)
		f.prods[i] = prod{app: int32(app), life: 1, live: true}
		f.byApp[app]++
	}
	for i := range f.prods {
		f.heap = append(f.heap, beatEntry{
			at:   time.Duration(f.rng.Float64() * float64(cfg.BeatEvery)),
			idx:  int32(i),
			life: 1,
		})
	}
	for i := len(f.heap)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
	f.churn = ChurnSchedule(f.rng, cfg.Producers, cfg.ChurnFrac, cfg.Duration)
	for i := 0; i < cfg.Bursts; i++ {
		width := int(float64(cfg.Producers) * cfg.BurstFrac)
		if width < 1 {
			width = 1
		}
		from := 0
		if cfg.Producers > width {
			from = f.rng.Intn(cfg.Producers - width)
		}
		at := time.Duration((0.2 + 0.5*f.rng.Float64()) * float64(cfg.Duration))
		f.bursts = append(f.bursts, burst{at: at, from: from, to: from + width, until: at + cfg.BurstLen})
	}
	for i := 1; i < len(f.bursts); i++ { // apply in time order
		for j := i; j > 0 && f.bursts[j].at < f.bursts[j-1].at; j-- {
			f.bursts[j], f.bursts[j-1] = f.bursts[j-1], f.bursts[j]
		}
	}
	return f
}

// Apps returns the number of application streams.
func (f *Fleet) Apps() int { return len(f.apps) }

// Stream returns app i's stream — subscribe it to a relay with
// Relay.AddUpstream(f.AppName(i), f.Stream(i)).
func (f *Fleet) Stream(i int) *AppStream { return f.apps[i] }

// AppName returns app i's name ("app000", "app001", ...).
func (f *Fleet) AppName(i int) string { return f.apps[i].name }

// ProducersOf returns how many producers app i carries — the Zipf draw's
// outcome, fixed at New.
func (f *Fleet) ProducersOf(i int) int { return f.byApp[i] }

// AppHead returns app i's published head: records published so far.
func (f *Fleet) AppHead(i int) uint64 { return f.apps[i].Head() }

// TotalPublished sums every app's head — the fleet-wide truth the
// end-to-end conservation check closes against.
func (f *Fleet) TotalPublished() uint64 {
	var n uint64
	for _, s := range f.apps {
		n += s.Head()
	}
	return n
}

// Churned reports the membership changes applied so far.
func (f *Fleet) Churned() (left, rejoined int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.left, f.rejoined
}

// Silenced reports how many producer-burst memberships have been applied
// (the sum of burst range widths) — proof the silence arc ran.
func (f *Fleet) Silenced() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.silenced
}

// Pause stops beat emission (the tick loop keeps running, cheaply): the
// harness pauses the fleet at its horizon and lets the pipeline drain to a
// fixed total.
func (f *Fleet) Pause() { f.paused.Store(true) }

// CloseStreams ends every app stream: subscribers drain and see io.EOF.
func (f *Fleet) CloseStreams() {
	for _, s := range f.apps {
		s.Close()
	}
}

// Run drives the pump until ctx is cancelled: one virtual-clock wait per
// PumpTick, then every beat, churn event and burst due in the elapsed
// quantum is applied. One goroutine, however many producers.
func (f *Fleet) Run(ctx context.Context) {
	start := f.clk.Now()
	for tick := 1; ; tick++ {
		target := start.Add(time.Duration(tick) * f.cfg.PumpTick)
		for {
			d := target.Sub(f.clk.Now())
			if d <= 0 {
				break
			}
			select {
			case <-ctx.Done():
				return
			case <-f.clk.After(d):
			}
		}
		if ctx.Err() != nil {
			return
		}
		if !f.paused.Load() {
			f.step(start, time.Duration(tick)*f.cfg.PumpTick)
		}
	}
}

// step applies everything due at or before virtual offset now.
func (f *Fleet) step(start time.Time, now time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.churnAt < len(f.churn) && f.churn[f.churnAt].At <= now {
		ev := f.churn[f.churnAt]
		f.churnAt++
		p := &f.prods[ev.Producer]
		if ev.Join {
			if !p.live && int32(ev.Life) > p.life {
				p.live, p.life = true, int32(ev.Life)
				f.push(beatEntry{at: now, idx: int32(ev.Producer), life: p.life})
				f.rejoined++
			}
		} else if p.live {
			p.live = false
			f.left++
		}
	}
	for f.burstAt < len(f.bursts) && f.bursts[f.burstAt].at <= now {
		b := f.bursts[f.burstAt]
		f.burstAt++
		for i := b.from; i < b.to; i++ {
			if f.prods[i].silentTo < b.until {
				f.prods[i].silentTo = b.until
			}
			f.silenced++
		}
	}
	for len(f.heap) > 0 && f.heap[0].at <= now {
		e := f.pop()
		p := &f.prods[e.idx]
		if !p.live || e.life != p.life {
			continue // left, or a stale life's deadline: never resurrects
		}
		if e.at >= p.silentTo {
			f.scratch[p.app] = append(f.scratch[p.app], heartbeat.Record{
				Time:     start.Add(e.at),
				Tag:      int64(p.life),
				Producer: e.idx,
			})
		}
		iv := time.Duration(float64(f.cfg.BeatEvery) * (1 + f.cfg.Jitter*(2*f.rng.Float64()-1)))
		if iv < f.cfg.PumpTick {
			iv = f.cfg.PumpTick
		}
		f.push(beatEntry{at: e.at + iv, idx: e.idx, life: e.life})
	}
	for app, recs := range f.scratch {
		if len(recs) > 0 {
			f.apps[app].publish(recs)
			f.scratch[app] = recs[:0]
		}
	}
}

// push/pop/siftDown: a hand-rolled binary min-heap over (at, idx) — 16
// bytes per pending producer, no interface boxing, deterministic pop order.
func (f *Fleet) push(e beatEntry) {
	f.heap = append(f.heap, e)
	i := len(f.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(i, parent) {
			break
		}
		f.heap[i], f.heap[parent] = f.heap[parent], f.heap[i]
		i = parent
	}
}

func (f *Fleet) pop() beatEntry {
	e := f.heap[0]
	last := len(f.heap) - 1
	f.heap[0] = f.heap[last]
	f.heap = f.heap[:last]
	if last > 0 {
		f.siftDown(0)
	}
	return e
}

func (f *Fleet) less(i, j int) bool {
	if f.heap[i].at != f.heap[j].at {
		return f.heap[i].at < f.heap[j].at
	}
	return f.heap[i].idx < f.heap[j].idx
}

func (f *Fleet) siftDown(i int) {
	n := len(f.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && f.less(l, small) {
			small = l
		}
		if r < n && f.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		f.heap[i], f.heap[small] = f.heap[small], f.heap[i]
		i = small
	}
}

// AppStream is one application's live stream: the fleet publishes into it,
// a relay (or any observer.Stream consumer) drains it. It honors the full
// Stream contract — pending data under an expired ctx, io.EOF after Close
// — and implements the relay's BatchRecycler so delivered slices come back
// for reuse instead of being reallocated every batch.
type AppStream struct {
	name string

	mu      sync.Mutex
	pending []heartbeat.Record
	free    [][]heartbeat.Record
	head    uint64
	notify  chan struct{}
	closed  bool
}

// Name returns the app name.
func (s *AppStream) Name() string { return s.name }

// Head returns the number of records published so far.
func (s *AppStream) Head() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

// publish appends recs (copied; the caller's slice is scratch) assigning
// dense per-app sequence numbers, and wakes the consumer.
func (s *AppStream) publish(recs []heartbeat.Record) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.pending == nil {
		if n := len(s.free); n > 0 {
			s.pending, s.free = s.free[n-1], s.free[:n-1]
		}
	}
	for _, r := range recs {
		s.head++
		r.Seq = s.head
		s.pending = append(s.pending, r)
	}
	if s.notify != nil {
		close(s.notify)
		s.notify = nil
	}
	s.mu.Unlock()
}

// Next implements observer.Stream.
func (s *AppStream) Next(ctx context.Context) (observer.Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		s.mu.Lock()
		if len(s.pending) > 0 {
			b := observer.Batch{Records: s.pending, Count: s.head}
			s.pending = nil
			s.mu.Unlock()
			return b, nil
		}
		if s.closed {
			s.mu.Unlock()
			return observer.Batch{}, io.EOF
		}
		if s.notify == nil {
			s.notify = make(chan struct{})
		}
		notify := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return observer.Batch{}, ctx.Err()
		case <-notify:
		}
	}
}

// Cursor reports the stream's consumed position in its own sequence space
// — everything published so far minus what still waits undelivered — which
// is what hbnet.CursorSource wants so a relay handoff can report exactly
// where a migration picked the stream up.
func (s *AppStream) Cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head - uint64(len(s.pending))
}

// Recycle returns a delivered batch's storage for reuse (hbnet's
// BatchRecycler contract — the relay calls it after copying records out).
func (s *AppStream) Recycle(b observer.Batch) {
	if cap(b.Records) == 0 {
		return
	}
	s.mu.Lock()
	if len(s.free) < 4 {
		s.free = append(s.free, b.Records[:0])
	}
	s.mu.Unlock()
}

// Close ends the stream: the consumer drains pending records, then sees
// io.EOF.
func (s *AppStream) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.notify != nil {
			close(s.notify)
			s.notify = nil
		}
	}
	s.mu.Unlock()
	return nil
}
