package sim

import "sort"

// FaultEvent schedules the failure of FailCores cores when the application
// reaches heartbeat number AtBeat. The paper's fault-tolerance experiment
// (§5.4) kills cores at frames 160, 320 and 480.
type FaultEvent struct {
	AtBeat    uint64
	FailCores int
}

// FaultInjector applies a sequence of FaultEvents to a Machine as the
// application's beat count advances. It is not safe for concurrent use;
// drive it from the experiment loop.
type FaultInjector struct {
	events []FaultEvent
	next   int
}

// NewFaultInjector returns an injector for the given events, which are
// applied in beat order regardless of argument order.
func NewFaultInjector(events ...FaultEvent) *FaultInjector {
	sorted := make([]FaultEvent, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].AtBeat < sorted[j].AtBeat })
	return &FaultInjector{events: sorted}
}

// Step applies every not-yet-applied event with AtBeat <= beat to m and
// returns the number of cores actually failed by this call: an event
// requesting more failures than the machine has healthy cores clamps, and
// the requested-but-impossible failures are not counted.
func (f *FaultInjector) Step(beat uint64, m *Machine) int {
	failed := 0
	for f.next < len(f.events) && f.events[f.next].AtBeat <= beat {
		failed += m.FailCores(f.events[f.next].FailCores)
		f.next++
	}
	return failed
}

// Pending returns how many events have not yet fired.
func (f *FaultInjector) Pending() int { return len(f.events) - f.next }
