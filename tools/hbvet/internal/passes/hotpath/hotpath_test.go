package hotpath_test

import (
	"testing"

	"repro/tools/hbvet/internal/analysistest"
	"repro/tools/hbvet/internal/passes/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "hot")
}

// TestCrossPackageFacts loads hotdep (whose Fast carries the mark) before
// hotuser and checks the mark travels: Fast is callable from a hot path,
// Slow is not.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotpath.Analyzer, "hotdep", "hotuser")
}
