package heartbeat

import (
	"time"

	"repro/internal/stats"
)

// This file holds the in-depth analysis helpers the paper motivates for
// HB_get_history: "examine intervals between individual heartbeats or
// filter heartbeats according to their tags" (§3). A video encoder tags
// beats with the frame type and asks for the I-frame rate; a pipeline tags
// beats with the stage and asks for per-stage progress.

// RateOf computes the windowed heart rate over recs (oldest to newest):
// len(recs)-1 beats over the span between the first and last record. ok is
// false with fewer than two records or a non-positive span (which a
// backward wall-clock step would otherwise produce — producers clamp beat
// times non-decreasing, so a step plateaus the rate instead of making it
// negative). This is the single shared definition of the windowed rate;
// every consumer — Heartbeat.Rate, observer.Snapshot.Rate, the hbfile
// readers — computes through it, so a step-tolerance fix lands everywhere
// at once.
func RateOf(recs []Record) (Rate, bool) { return rateOf(recs) }

// FilterTag returns the records of recs carrying the given tag, preserving
// order.
func FilterTag(recs []Record, tag int64) []Record {
	var out []Record
	for _, r := range recs {
		if r.Tag == tag {
			out = append(out, r)
		}
	}
	return out
}

// FilterProducer returns the records of recs emitted by the given
// registered thread (0 selects records beaten directly on the global
// handle), preserving order.
func FilterProducer(recs []Record, producer int32) []Record {
	var out []Record
	for _, r := range recs {
		if r.Producer == producer {
			out = append(out, r)
		}
	}
	return out
}

// RateByTag computes the heart rate of only the records carrying tag,
// over the last n global records.
func (h *Heartbeat) RateByTag(n int, tag int64) (Rate, bool) {
	return rateOf(FilterTag(h.History(n), tag))
}

// RateByProducer computes the heart rate of only the records emitted by the
// given registered thread (0 selects direct global beats), over the last n
// global records. With the sharded hot path every global record carries its
// producer, so an observer can ask how fast each worker is contributing to
// the shared history without the workers beating locally too.
func (h *Heartbeat) RateByProducer(n int, producer int32) (Rate, bool) {
	return rateOf(FilterProducer(h.History(n), producer))
}

// Tags returns the distinct tags present in the last n global records, in
// first-appearance order — a cheap way for an observer to discover an
// application's tag vocabulary.
func (h *Heartbeat) Tags(n int) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, r := range h.History(n) {
		if !seen[r.Tag] {
			seen[r.Tag] = true
			out = append(out, r.Tag)
		}
	}
	return out
}

// IntervalStats summarizes the inter-beat gaps of a window of records.
type IntervalStats struct {
	// Beats is the number of records examined.
	Beats int
	// Mean, Min, Max and StdDev describe the gaps between consecutive
	// records.
	Mean, Min, Max, StdDev time.Duration
	// CV is the coefficient of variation (StdDev/Mean): the "erratic"
	// metric used by health classification.
	CV float64
}

// IntervalStatsOf computes interval statistics over recs (oldest first).
// ok is false with fewer than two records.
func IntervalStatsOf(recs []Record) (IntervalStats, bool) {
	gaps := Intervals(recs)
	if len(gaps) == 0 {
		return IntervalStats{}, false
	}
	s := stats.Summarize(gaps)
	return IntervalStats{
		Beats:  len(recs),
		Mean:   time.Duration(s.Mean * float64(time.Second)),
		Min:    time.Duration(s.Min * float64(time.Second)),
		Max:    time.Duration(s.Max * float64(time.Second)),
		StdDev: time.Duration(s.StdDev * float64(time.Second)),
		CV:     s.CV(),
	}, true
}

// IntervalStats summarizes the gaps of the last window global beats;
// window <= 0 uses the default window.
func (h *Heartbeat) IntervalStats(window int) (IntervalStats, bool) {
	return IntervalStatsOf(h.History(h.clipWindow(window)))
}
