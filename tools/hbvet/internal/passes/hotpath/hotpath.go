// Package hotpath machine-checks the measured performance contracts: a
// function marked //hbvet:hotpath (balance.Table.Pick, the ring.SP beat
// paths, replayRing.frameSince) is checked — transitively through every
// same-package callee — for heap allocation (make/new, escaping composite
// literals, append growth, interface conversions, closures, string
// concatenation), lock and channel operations, goroutine spawns, and
// calls that leave the verified set: a callee in another package must
// itself be marked //hbvet:hotpath (the mark travels as a fact, so
// heartbeat's beat path may call into internal/ring) or belong to a
// small allowlist of known allocation-free stdlib helpers.
//
// Known, justified costs — the amortized slow-path spill, the pooled
// buffer growth — are excused line by line with
// //hbvet:allow hotpath -- <reason>, which both silences the finding and
// prunes traversal through that call edge. The same marks feed the
// benchmark gate: `tools/benchgate -require` asserts the 0 allocs/op
// numbers for the benchmarks covering these functions, so the static and
// the measured contract point at the same code.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/hbvet/internal/analysis"
)

// Marker is the annotation that puts a function under hot-path checking.
const Marker = "//hbvet:hotpath"

// Name is the analyzer's name, used in facts, allow annotations, and -run.
const Name = "hotpath"

// Analyzer checks //hbvet:hotpath functions for allocation and blocking.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "checks //hbvet:hotpath functions transitively for allocation, locks, channels, and unverified calls",
	Run:  run,
}

// allowedPkgs are stdlib packages whose functions neither allocate nor
// block: the vocabulary hot paths are built from.
var allowedPkgs = map[string]bool{
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"unsafe":          true,
	"encoding/binary": true,
}

// allowedFuncs are individually vetted stdlib helpers outside those
// packages (non-allocating themselves; a closure argument is still
// reported at its own literal).
var allowedFuncs = map[string]bool{
	"sort.Search":        true,
	"sort.SearchStrings": true,
	"sort.SearchInts":    true,
}

func run(pass *analysis.Pass) error {
	// Index every declared function and find the marked roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if marked(fd) {
				roots = append(roots, fn)
				// Export the mark so dependent packages may call this
				// function from their own hot paths.
				pass.Facts.Set(Name, fn.FullName(), "marked")
			}
		}
	}

	c := &checker{pass: pass, decls: decls, visited: make(map[*types.Func]bool)}
	for _, root := range roots {
		c.check(root)
	}
	return nil
}

// marked reports whether the declaration carries the hotpath marker.
func marked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Marker || strings.HasPrefix(c.Text, Marker+" ") {
			return true
		}
	}
	return false
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
}

// check walks fn's body, reporting violations and recursing into
// same-package callees. Each function is checked once per run however
// many roots reach it.
func (c *checker) check(fn *types.Func) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	fd, ok := c.decls[fn]
	if !ok || fd.Body == nil {
		return
	}
	where := fn.Name()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.call(n, where)
		case *ast.FuncLit:
			if !c.pass.Allowed(n.Pos()) {
				c.report(n.Pos(), where, "function literal allocates a closure")
			}
			return false // its body runs only if called; the literal itself is the cost here
		case *ast.CompositeLit:
			c.composite(n, where)
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				c.report(n.Pos(), where, "channel receive blocks")
			case token.AND:
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit && !c.pass.Allowed(n.Pos()) {
					c.report(n.Pos(), where, "escaping composite literal allocates")
				}
			}
		case *ast.SendStmt:
			c.report(n.Pos(), where, "channel send blocks")
		case *ast.SelectStmt:
			c.report(n.Pos(), where, "select blocks")
			return false
		case *ast.GoStmt:
			c.report(n.Pos(), where, "starting a goroutine allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypesInfo.Types[n.X].Type) {
				c.report(n.Pos(), where, "string concatenation allocates")
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.Types[n.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					c.report(n.Pos(), where, "ranging over a channel blocks")
				}
			}
		}
		return true
	})
}

func (c *checker) report(pos token.Pos, where, msg string) {
	c.pass.Reportf(pos, "hot path (via %s): %s", where, msg)
}

// call classifies one call expression. The return value tells the walker
// whether to descend into the call's children.
func (c *checker) call(call *ast.CallExpr, where string) bool {
	// An allowed line excuses the whole call: no finding, no traversal —
	// that is how the amortized slow-path spill (e.g. the beat path's
	// backlog flush) is kept out of the steady-state contract.
	if c.pass.Allowed(call.Pos()) {
		return false
	}
	fun := ast.Unparen(call.Fun)

	// Type conversion?
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type, where)
		return true
	}

	// Resolve the callee object.
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
		if sel, ok := c.pass.TypesInfo.Selections[f]; ok && sel.Kind() == types.FieldVal {
			c.report(call.Pos(), where, "call through a function-valued field cannot be verified")
			return true
		}
	default:
		c.report(call.Pos(), where, "indirect call cannot be verified")
		return true
	}

	switch obj := c.pass.TypesInfo.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			c.report(call.Pos(), where, "append may grow the backing array")
		case "make", "new":
			c.report(call.Pos(), where, obj.Name()+" allocates")
		case "close":
			c.report(call.Pos(), where, "channel close")
		}
		return true
	case *types.Func:
		c.funcCall(call, obj, where)
		return true
	case *types.Var:
		c.report(call.Pos(), where, "call through a function value cannot be verified")
		return true
	case *types.TypeName:
		// Conversion through a named type (already handled above for most
		// shapes); treat like a conversion.
		return true
	}
	return true
}

// funcCall handles a resolved call to fn.
func (c *checker) funcCall(call *ast.CallExpr, fn *types.Func, where string) {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			c.report(call.Pos(), where, "dynamic "+fn.Name()+" call through an interface cannot be verified")
			return
		}
	}
	c.boxedArgs(call, sig, where)

	pkg := fn.Pkg()
	if pkg == nil {
		return // error.Error and friends resolve above as interface calls
	}
	if pkg == c.pass.Pkg {
		c.check(fn) // same package: verify the callee transitively
		return
	}
	if _, marked := c.pass.Facts.Get(Name, fn.FullName()); marked {
		return // verified hot path in a dependency
	}
	if allowedPkgs[pkg.Path()] || allowedFuncs[pkg.Path()+"."+fn.Name()] {
		return
	}
	if pkg.Path() == "sync" {
		c.report(call.Pos(), where, "lock/synchronization operation "+fn.FullName())
		return
	}
	c.report(call.Pos(), where,
		"call into non-hotpath function "+fn.FullName()+" (mark it //hbvet:hotpath, or //hbvet:allow hotpath -- <reason>)")
}

// boxedArgs flags arguments whose concrete values convert implicitly to
// interface parameters — each such call boxes the argument.
func (c *checker) boxedArgs(call *ast.CallExpr, sig *types.Signature, where string) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos { // f(a, b...) passes the slice itself
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := c.pass.TypesInfo.Types[arg].Type
		if at == nil || types.IsInterface(at) || isNil(c.pass.TypesInfo, arg) {
			continue
		}
		c.report(arg.Pos(), where, "argument boxes into interface parameter and allocates")
	}
}

// conversion flags converting to an interface (boxing) and the
// string/slice conversions that copy.
func (c *checker) conversion(call *ast.CallExpr, dst types.Type, where string) {
	if len(call.Args) != 1 {
		return
	}
	src := c.pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) && !isNil(c.pass.TypesInfo, call.Args[0]) {
		c.report(call.Pos(), where, "conversion to interface allocates")
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if _, toSlice := du.(*types.Slice); toSlice && isString(src) {
		c.report(call.Pos(), where, "string-to-slice conversion allocates")
	}
	if isString(dst) {
		if _, fromSlice := su.(*types.Slice); fromSlice {
			c.report(call.Pos(), where, "slice-to-string conversion allocates")
		}
	}
}

// composite flags composite literals that must heap-allocate: slice and
// map literals always do; a struct or array literal only when its address
// is taken (a plain value literal lives in registers or on the stack).
func (c *checker) composite(lit *ast.CompositeLit, where string) {
	t := c.pass.TypesInfo.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), where, "slice literal allocates")
	case *types.Map:
		c.report(lit.Pos(), where, "map literal allocates")
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
