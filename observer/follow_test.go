package observer

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
)

// drainFollow collects batches until want records have arrived or the
// deadline passes.
func drainFollow(t *testing.T, s Stream, want int) []heartbeat.Record {
	t.Helper()
	var out []heartbeat.Record
	deadline := time.Now().Add(10 * time.Second)
	for len(out) < want {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		b, err := s.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Next after %d records: %v", len(out), err)
		}
		out = append(out, b.Records...)
	}
	return out
}

func writeRing(t *testing.T, path string, first, n int) {
	t.Helper()
	w, err := hbfile.Create(path, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < n; i++ {
		rec := heartbeat.Record{Seq: uint64(first + i), Time: time.Now()}
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// The ROADMAP gap this covers: a live tail held the inode it opened, so a
// producer that restarted — deleting and recreating its file — read as a
// flatline forever. FollowFile must notice the recreation on an idle tick
// and resume with the new life's records.
func TestFollowFileSurvivesDeleteRecreate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.hb")
	writeRing(t, path, 1, 5)

	s, err := FollowFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.(io.Closer).Close()
	first := drainFollow(t, s, 5)
	if first[len(first)-1].Seq != 5 {
		t.Fatalf("first life tail wrong: %+v", first)
	}

	// The producer restarts: the file is DELETED and recreated, so the new
	// file is a different inode and the new life's seqs restart at 1.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	writeRing(t, path, 1, 3)

	second := drainFollow(t, s, 3)
	for i, r := range second {
		if r.Seq != uint64(i+1) {
			t.Fatalf("new life record %d has seq %d, want %d", i, r.Seq, i+1)
		}
	}
}

// Recreation in the other variant (ring -> append-only log) must also be
// picked up: the variant is detected per reopen.
func TestFollowFileSurvivesVariantChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.hb")
	writeRing(t, path, 1, 4)

	s, err := FollowFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.(io.Closer).Close()
	drainFollow(t, s, 4)

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	lw, err := hbfile.CreateLog(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	for i := 1; i <= 2; i++ {
		if err := lw.WriteRecord(heartbeat.Record{Seq: uint64(i), Time: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	recs := drainFollow(t, s, 2)
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("log life records wrong: %+v", recs)
	}
}

// While the path is deleted but not yet recreated, the tail keeps serving
// the old (open) inode rather than erroring — and still catches up when
// the successor appears.
func TestFollowFileMissingGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.hb")
	writeRing(t, path, 1, 2)

	s, err := FollowFile(path, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.(io.Closer).Close()
	drainFollow(t, s, 2)

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	// Idle while the path is missing: Next must report a clean timeout,
	// not a failure.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := s.Next(ctx); err != context.DeadlineExceeded {
		cancel()
		t.Fatalf("Next during the gap: %v, want deadline exceeded", err)
	}
	cancel()

	writeRing(t, path, 1, 6)
	if recs := drainFollow(t, s, 6); recs[5].Seq != 6 {
		t.Fatalf("catch-up after gap wrong: %+v", recs)
	}
}
