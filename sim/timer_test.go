package sim

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestAfterFiresOnAdvanceInDeadlineOrder(t *testing.T) {
	c := NewClock(time.Time{})
	a := c.After(3 * time.Second)
	b := c.After(1 * time.Second)
	if got := c.PendingTimers(); got != 2 {
		t.Fatalf("PendingTimers = %d, want 2", got)
	}

	// Nothing fires before its deadline.
	c.Advance(999 * time.Millisecond)
	select {
	case <-a:
		t.Fatal("3s timer fired at 0.999s")
	case <-b:
		t.Fatal("1s timer fired at 0.999s")
	default:
	}

	// One sweep past both deadlines fires both, each stamped with its own
	// deadline, not the sweep target.
	c.Advance(10 * time.Second)
	tb := <-b
	ta := <-a
	if want := Epoch.Add(1 * time.Second); !tb.Equal(want) {
		t.Fatalf("1s timer stamped %v, want %v", tb, want)
	}
	if want := Epoch.Add(3 * time.Second); !ta.Equal(want) {
		t.Fatalf("3s timer stamped %v, want %v", ta, want)
	}
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d after firing, want 0", got)
	}
}

func TestAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewClock(time.Time{})
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestAdvanceToNext(t *testing.T) {
	c := NewClock(time.Time{})
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext with no timers reported true")
	}
	ch := c.After(5 * time.Second)
	later := c.After(7 * time.Second)
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext with a timer reported false")
	}
	if want := Epoch.Add(5 * time.Second); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
	<-ch
	select {
	case <-later:
		t.Fatal("later timer fired early")
	default:
	}
	if dl, ok := c.NextDeadline(); !ok || !dl.Equal(Epoch.Add(7*time.Second)) {
		t.Fatalf("NextDeadline = %v, %v", dl, ok)
	}
}

// AutoAdvance must drive a ticker-style loop — wait, work, re-arm —
// through many virtual seconds in a few real milliseconds.
func TestAutoAdvanceDrivesRearmedWaits(t *testing.T) {
	c := NewClock(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ticks atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			<-c.After(time.Second)
			ticks.Add(1)
		}
	}()
	go c.AutoAdvance(ctx, 0)

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("loop stalled after %d ticks", ticks.Load())
	}
	if got := ticks.Load(); got != 1000 {
		t.Fatalf("ticks = %d, want 1000", got)
	}
	if elapsed := c.Elapsed(Epoch); elapsed < 1000*time.Second {
		t.Fatalf("virtual elapsed %v, want >= 1000s", elapsed)
	}
}

func TestAutoAdvanceLimitStops(t *testing.T) {
	c := NewClock(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { // a loop that would re-arm forever
		for {
			<-c.After(time.Second)
		}
	}()
	done := make(chan struct{})
	go func() { defer close(done); c.AutoAdvance(ctx, 30*time.Second) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AutoAdvance ignored its limit")
	}
}
