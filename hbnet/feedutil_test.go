package hbnet

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/observer"
)

func mkRollups(app string) []observer.Rollup {
	return []observer.Rollup{{App: app, Records: 1}}
}

// fakeRollupStream ends with the given error after draining its batches.
type fakeRollupStream struct {
	batches []RollupBatch
	err     error
	closed  bool
}

func (s *fakeRollupStream) Next(ctx context.Context) (RollupBatch, error) {
	if len(s.batches) == 0 {
		return RollupBatch{}, s.err
	}
	b := s.batches[0]
	s.batches = s.batches[1:]
	return b, nil
}

func (s *fakeRollupStream) Close() error {
	s.closed = true
	return nil
}

func TestConsumeCleanEndAndClose(t *testing.T) {
	s := &fakeRollupStream{
		batches: []RollupBatch{
			{Cursor: 1, Rollups: mkRollups("a")},
			{Cursor: 2},                         // empty delivery: skipped
			{Cursor: 3, Missed: 2},              // loss-only delivery: delivered
			{Cursor: 4, Rollups: mkRollups("b")},
		},
		err: io.EOF,
	}
	feed := RollupFeed(func(ctx context.Context, since uint64) (RollupStream, error) {
		if since != 7 {
			t.Fatalf("feed opened at %d, want 7", since)
		}
		return s, nil
	})
	var got []uint64
	err := feed.Consume(context.Background(), 7, func(b RollupBatch) error {
		got = append(got, b.Cursor)
		return nil
	})
	if err != nil {
		t.Fatalf("Consume on clean end = %v, want nil", err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("delivered cursors %v, want [1 3 4]", got)
	}
	if !s.closed {
		t.Fatal("Consume did not close the stream")
	}
}

func TestConsumeStopsOnCallbackError(t *testing.T) {
	s := &fakeRollupStream{
		batches: []RollupBatch{{Cursor: 1, Rollups: mkRollups("a")}, {Cursor: 2, Rollups: mkRollups("a")}},
		err:     io.EOF,
	}
	feed := RollupFeed(func(ctx context.Context, since uint64) (RollupStream, error) { return s, nil })
	stop := errors.New("enough")
	n := 0
	err := feed.Consume(context.Background(), 0, func(RollupBatch) error { n++; return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("Consume = %v, want the callback's error", err)
	}
	if n != 1 {
		t.Fatalf("callback ran %d times after erroring, want 1", n)
	}
	if !s.closed {
		t.Fatal("stream left open after callback error")
	}
}

func TestConsumeSurfacesStreamError(t *testing.T) {
	broken := errors.New("wire snapped")
	feed := RollupFeed(func(ctx context.Context, since uint64) (RollupStream, error) {
		return &fakeRollupStream{err: broken}, nil
	})
	if err := feed.Consume(context.Background(), 0, func(RollupBatch) error { return nil }); !errors.Is(err, broken) {
		t.Fatalf("Consume = %v, want the stream error", err)
	}
}

// TestDialRollupFeedConsume runs the programmatic consumption helper
// against a live relay: DialRollupFeed adapts the remote rollup feed, and
// Consume accumulates conserved per-app counts.
func TestDialRollupFeedConsume(t *testing.T) {
	const perApp = 120
	hbs, _, addr := relayPair(t, 2, 20*time.Millisecond)

	for i := 0; i < perApp; i++ {
		for _, hb := range hbs {
			hb.Beat()
		}
	}
	for _, hb := range hbs {
		hb.Flush()
	}

	feed := DialRollupFeed(addr, "rollup")
	counts := map[string]uint64{}
	done := errors.New("done")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := feed.Consume(ctx, 0, func(b RollupBatch) error {
		if b.Missed != 0 {
			t.Fatalf("lapped %d emissions in a short run", b.Missed)
		}
		for _, r := range b.Rollups {
			counts[r.App] += r.Records + r.Missed
		}
		if counts["a"] >= perApp && counts["b"] >= perApp {
			return done
		}
		return nil
	})
	if !errors.Is(err, done) {
		t.Fatalf("Consume = %v (counts %v)", err, counts)
	}
	if counts["a"] != perApp || counts["b"] != perApp {
		t.Fatalf("counts %v, want %d each — rollups must conserve", counts, perApp)
	}
}
