package experiments

import "testing"

func TestMultiAppGlobalOutcome(t *testing.T) {
	r := MultiApp(Options{})
	rateA := seriesCol(t, r, "rate_A")
	rateB := seriesCol(t, r, "rate_B")
	coresA := seriesCol(t, r, "cores_A")
	coresB := seriesCol(t, r, "cores_B")
	last := len(rateA) - 1

	// Both applications end inside their own windows.
	if rateA[last] < 8 || rateA[last] > 10 {
		t.Errorf("A final rate %.2f outside [8, 10]", rateA[last])
	}
	if rateB[last] < 2 || rateB[last] > 3 {
		t.Errorf("B final rate %.2f outside [2, 3]", rateB[last])
	}
	// The pool is never oversubscribed and no app is starved.
	for i := range coresA {
		if coresA[i]+coresB[i] > 8 {
			t.Fatalf("decision %d: %g + %g cores oversubscribes", i+1, coresA[i], coresB[i])
		}
		if coresA[i] < 1 || coresB[i] < 1 {
			t.Fatalf("decision %d: an app was starved below one core", i+1)
		}
	}
	// The load rise shifted cores to A without pushing B out of window.
	if coresA[last] <= coresA[60] {
		t.Errorf("A's allocation did not grow after its load rise: %g then %g", coresA[60], coresA[last])
	}
	// B holds its window across the second half too.
	for i := 140; i <= last; i++ {
		if rateB[i] < 2*0.9 || rateB[i] > 3*1.1 {
			t.Fatalf("B left its window at decision %d: %.2f", i+1, rateB[i])
		}
	}
}
