package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkFile type-checks one synthetic file and runs the given analyzers
// over it with a fresh fact store.
func checkFile(t *testing.T, src string, analyzers []*Analyzer) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p/p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(&Package{
		Fset:    fset,
		Files:   []*ast.File{file},
		Pkg:     pkg,
		Info:    info,
		RelPath: func(pos token.Pos) string { return fset.Position(pos).Filename },
	}, analyzers, NewFacts())
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// reportAll is an analyzer that reports every return statement, so tests
// can steer findings onto chosen lines with plain Go syntax.
func reportAll(name string) *Analyzer {
	a := &Analyzer{Name: name, Doc: "test analyzer"}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ret, ok := n.(*ast.ReturnStmt); ok {
					pass.Reportf(ret.Pos(), "return seen by %s", a.Name)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func lines(fs []Finding) []int {
	var out []int
	for _, f := range fs {
		out = append(out, f.Pos.Line)
	}
	return out
}

func TestAllowTrailingCoversOwnLine(t *testing.T) {
	src := `package p
func a() int {
	return 1 //hbvet:allow test -- covered
}
func b() int {
	return 2
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test")})
	if len(fs) != 1 || fs[0].Pos.Line != 6 {
		t.Fatalf("want only the uncovered return on line 6, got %v", lines(fs))
	}
}

func TestAllowStandaloneCoversNextLine(t *testing.T) {
	src := `package p
func a() int {
	//hbvet:allow test -- covers the next line
	return 1
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test")})
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", lines(fs))
	}
}

func TestAllowStackedStandalones(t *testing.T) {
	src := `package p
func a() int {
	//hbvet:allow test -- first of a stack
	//hbvet:allow other -- second of a stack
	return 1
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test"), reportAll("other")})
	if len(fs) != 0 {
		t.Fatalf("want both analyzers silenced by the stack, got %v", lines(fs))
	}
}

func TestAllowScopedToNamedAnalyzer(t *testing.T) {
	src := `package p
func a() int {
	return 1 //hbvet:allow other -- names a different analyzer
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test")})
	if len(fs) != 1 || fs[0].Analyzer != "test" {
		t.Fatalf("allow naming %q must not cover %q: %+v", "other", "test", fs)
	}
}

func TestAllowCommaList(t *testing.T) {
	src := `package p
func a() int {
	return 1 //hbvet:allow test,other -- one comment, two analyzers
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test"), reportAll("other")})
	if len(fs) != 0 {
		t.Fatalf("comma list should cover both analyzers, got %+v", fs)
	}
}

func TestAllowMissingJustification(t *testing.T) {
	src := `package p
func a() int {
	return 1 //hbvet:allow test
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test")})
	if len(fs) != 2 {
		t.Fatalf("want the finding plus the invalid-allow report, got %+v", fs)
	}
	var sawInvalid, sawFinding bool
	for _, f := range fs {
		switch f.Analyzer {
		case "allow":
			sawInvalid = true
			if !strings.Contains(f.Message, "missing its justification") {
				t.Errorf("invalid-allow message = %q", f.Message)
			}
		case "test":
			sawFinding = true
		}
	}
	if !sawInvalid || !sawFinding {
		t.Fatalf("want one 'allow' and one 'test' finding, got %+v", fs)
	}
}

func TestAllowMalformed(t *testing.T) {
	src := `package p
func a() int {
	return 1 //hbvet:allow test trailing junk
}
`
	fs := checkFile(t, src, []*Analyzer{reportAll("test")})
	if len(fs) != 2 {
		t.Fatalf("want the finding plus the malformed-allow report, got %+v", fs)
	}
	var sawMalformed bool
	for _, f := range fs {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "malformed") {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Fatalf("want a malformed-allow report, got %+v", fs)
	}
}

func TestSeamFileFiltering(t *testing.T) {
	cases := []struct {
		patterns []string
		rel      string
		want     bool
	}{
		{[]string{"heartbeat/clock*.go"}, "heartbeat/clock.go", true},
		{[]string{"heartbeat/clock*.go"}, "heartbeat/clock_wall.go", true},
		{[]string{"heartbeat/clock*.go"}, "heartbeat/thread.go", false},
		{[]string{"heartbeat/clock*.go"}, "other/clock.go", false},
		{[]string{"sim/"}, "sim/clock.go", true},
		{[]string{"sim/"}, "sim/nested/deep.go", true},
		{[]string{"sim/"}, "simnet/conn.go", false},
	}
	for _, c := range cases {
		if got := seamFile(c.patterns, c.rel); got != c.want {
			t.Errorf("seamFile(%v, %q) = %v, want %v", c.patterns, c.rel, got, c.want)
		}
	}
}

func TestFactsFlowAcrossPackages(t *testing.T) {
	facts := NewFacts()
	facts.Set("hotpath", "(*repro/internal/ring.SP).Push", "marked")
	if _, ok := facts.Get("hotpath", "(*repro/internal/ring.SP).Push"); !ok {
		t.Fatal("fact written by a dependency pass must be readable")
	}
	if _, ok := facts.Get("wallclock", "(*repro/internal/ring.SP).Push"); ok {
		t.Fatal("facts must be namespaced per analyzer")
	}
}
