package hbfile

import (
	"fmt"
	"math"
	"os"
	"sync"

	"repro/heartbeat"
)

// LogMagic identifies the append-only variant of the heartbeat file.
//
// The ring file (Writer/Reader) bounds history, which §3 recommends for
// efficiency; the paper's reference implementation, however, keeps the
// complete history ("the HB_get_history function can support any value for
// n because the entire heartbeat history is kept in the file"). LogWriter/
// LogReader reproduce that behaviour: every heartbeat is appended, and
// observers can read any range of the full history at the cost of
// unbounded file growth.
const LogMagic = "APPHBL1\x00"

// LogWriter appends heartbeats to a log file. It implements
// heartbeat.Sink and heartbeat.TargetSink. One process writes a given
// file; within it, LogWriter is safe for concurrent use.
type LogWriter struct {
	mu        sync.Mutex
	f         *os.File
	count     uint64
	targetVer uint64
	closed    bool
}

var _ heartbeat.TargetSink = (*LogWriter)(nil)

// CreateLog creates (or truncates) an append-only heartbeat log.
func CreateLog(path string, window int) (*LogWriter, error) {
	if window <= 0 {
		return nil, fmt.Errorf("hbfile: invalid window %d", window)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hbfile: create log: %w", err)
	}
	buf := make([]byte, HeaderSize)
	copy(buf[offMagic:], LogMagic)
	byteOrder.PutUint32(buf[offVersion:], Version)
	byteOrder.PutUint32(buf[offRecordSize:], RecordSize)
	byteOrder.PutUint32(buf[offWindow:], uint32(window))
	byteOrder.PutUint64(buf[offPID:], uint64(os.Getpid()))
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbfile: write log header: %w", err)
	}
	return &LogWriter{f: f}, nil
}

// WriteRecord appends one heartbeat (heartbeat.Sink). Records are stored
// in arrival order; each embeds its sequence number, so observers can
// reorder if concurrent producers interleave.
func (w *LogWriter) WriteRecord(r heartbeat.Record) error {
	if r.Seq == 0 {
		return fmt.Errorf("hbfile: record with zero sequence number")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbfile: log writer closed")
	}
	off := HeaderSize + int64(w.count)*RecordSize
	if _, err := w.f.WriteAt(encodeRecord(r), off); err != nil {
		return fmt.Errorf("hbfile: append record: %w", err)
	}
	w.count++
	var buf [8]byte
	byteOrder.PutUint64(buf[:], w.count)
	if _, err := w.f.WriteAt(buf[:], offCursor); err != nil {
		return fmt.Errorf("hbfile: write count: %w", err)
	}
	return nil
}

// WriteTarget publishes the target range (heartbeat.TargetSink).
func (w *LogWriter) WriteTarget(min, max float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbfile: log writer closed")
	}
	var buf [8]byte
	w.targetVer++
	byteOrder.PutUint64(buf[:], w.targetVer)
	if _, err := w.f.WriteAt(buf[:], offTargetVer); err != nil {
		return err
	}
	byteOrder.PutUint64(buf[:], math.Float64bits(min))
	if _, err := w.f.WriteAt(buf[:], offTargetMin); err != nil {
		return err
	}
	byteOrder.PutUint64(buf[:], math.Float64bits(max))
	if _, err := w.f.WriteAt(buf[:], offTargetMax); err != nil {
		return err
	}
	w.targetVer++
	byteOrder.PutUint64(buf[:], w.targetVer)
	_, err := w.f.WriteAt(buf[:], offTargetVer)
	return err
}

// Count returns how many records have been appended.
func (w *LogWriter) Count() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Close flushes and closes the log. Idempotent.
func (w *LogWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// LogReader observes an append-only heartbeat log, possibly while another
// process is appending to it.
type LogReader struct {
	f      *os.File
	window int
}

// OpenLog opens a heartbeat log for observation.
func OpenLog(path string) (*LogReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hbfile: open log: %w", err)
	}
	buf := make([]byte, HeaderSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbfile: read log header: %w", err)
	}
	if string(buf[offMagic:offMagic+8]) != LogMagic {
		f.Close()
		return nil, fmt.Errorf("hbfile: not a heartbeat log (magic %q)", buf[offMagic:offMagic+8])
	}
	if v := byteOrder.Uint32(buf[offVersion:]); v != Version {
		f.Close()
		return nil, fmt.Errorf("hbfile: unsupported log version %d", v)
	}
	return &LogReader{f: f, window: int(byteOrder.Uint32(buf[offWindow:]))}, nil
}

// Window returns the application's default averaging window.
func (r *LogReader) Window() int { return r.window }

// Count returns the number of records appended so far.
func (r *LogReader) Count() (uint64, error) {
	var buf [8]byte
	if _, err := r.f.ReadAt(buf[:], offCursor); err != nil {
		return 0, fmt.Errorf("hbfile: read count: %w", err)
	}
	return byteOrder.Uint64(buf[:]), nil
}

// Read returns n records starting at index from (0-based, in append
// order). It clips to the available range — the full history is always
// addressable, matching the reference implementation's unbounded
// HB_get_history.
func (r *LogReader) Read(from uint64, n int) ([]heartbeat.Record, error) {
	count, err := r.Count()
	if err != nil {
		return nil, err
	}
	if from >= count || n <= 0 {
		return nil, nil
	}
	if uint64(n) > count-from {
		n = int(count - from)
	}
	buf := make([]byte, n*RecordSize)
	if _, err := r.f.ReadAt(buf, HeaderSize+int64(from)*RecordSize); err != nil {
		return nil, fmt.Errorf("hbfile: read log records: %w", err)
	}
	out := make([]heartbeat.Record, n)
	for i := range out {
		out[i] = decodeRecord(buf[i*RecordSize:])
	}
	return out, nil
}

// ReadSince returns the records appended after the first since, oldest to
// newest, plus the cursor to resume from (the count consumed so far; pass
// it to the next ReadSince). max > 0 bounds the batch size — the cursor
// then stops at the last returned record, so a tailing observer pages
// through a large backlog without skipping anything. When nothing new has
// been appended the call costs a single 8-byte header read. This is the
// incremental tail over the full-history log: no record is ever re-read.
func (r *LogReader) ReadSince(since uint64, max int) ([]heartbeat.Record, uint64, error) {
	count, err := r.Count()
	if err != nil {
		return nil, since, err
	}
	if count <= since {
		// Idle, or a recreated (shorter) file: return the file's count so
		// the caller resynchronizes.
		return nil, count, nil
	}
	n := count - since
	if max > 0 && n > uint64(max) {
		n = uint64(max)
	}
	recs, err := r.Read(since, int(n))
	if err != nil {
		return nil, since, err
	}
	return recs, since + uint64(len(recs)), nil
}

// Last returns the most recent n records in append order.
func (r *LogReader) Last(n int) ([]heartbeat.Record, error) {
	count, err := r.Count()
	if err != nil {
		return nil, err
	}
	if n <= 0 || count == 0 {
		return nil, nil
	}
	from := uint64(0)
	if uint64(n) < count {
		from = count - uint64(n)
	}
	return r.Read(from, n)
}

// Target returns the advertised target range, if set.
func (r *LogReader) Target() (min, max float64, ok bool, err error) {
	// Same seqlock discipline as the ring reader.
	var buf [24]byte
	const maxTries = 100
	for tries := 0; tries < maxTries; tries++ {
		if _, err := r.f.ReadAt(buf[:], offTargetVer); err != nil {
			return 0, 0, false, err
		}
		v1 := byteOrder.Uint64(buf[0:8])
		if v1%2 == 1 {
			continue
		}
		minBits := byteOrder.Uint64(buf[8:16])
		maxBits := byteOrder.Uint64(buf[16:24])
		var check [8]byte
		if _, err := r.f.ReadAt(check[:], offTargetVer); err != nil {
			return 0, 0, false, err
		}
		if byteOrder.Uint64(check[:]) != v1 {
			continue
		}
		if v1 == 0 {
			return 0, 0, false, nil
		}
		return math.Float64frombits(minBits), math.Float64frombits(maxBits), true, nil
	}
	return 0, 0, false, fmt.Errorf("hbfile: log target read contended")
}

// Rate computes the average heart rate over the last window records
// (window <= 0: the file's default window).
func (r *LogReader) Rate(window int) (perSec float64, ok bool, err error) {
	if window <= 0 {
		window = r.window
	}
	recs, err := r.Last(window)
	if err != nil {
		return 0, false, err
	}
	rate, ok := heartbeat.RateOf(recs)
	return rate.PerSec, ok, nil
}

// Stat returns the metadata of the opened file (see Reader.Stat): the
// recreation-detection hook for live tails.
func (r *LogReader) Stat() (os.FileInfo, error) { return r.f.Stat() }

// Close closes the log file.
func (r *LogReader) Close() error { return r.f.Close() }
