//go:build !unix

package hbshm

import (
	"fmt"
	"os"
)

// The shared-memory ring needs mmap; platforms without a unix mmap get a
// clean error instead of a build failure, so the rest of the module still
// compiles and the caller can fall back to the file ring (hbfile).
func mmapFile(f *os.File, size int, writable bool) ([]byte, error) {
	return nil, fmt.Errorf("hbshm: shared-memory mapping not supported on this platform")
}

func munmap(mem []byte) error { return nil }
