// Fleet-scale observation through a hierarchical relay tier: 30 producer
// PROCESSES, each beating into its own heartbeat ring file, observed
// through TWO relay layers — three leaf relays tail ten producer files
// each, and one root relay subscribes to the three leaves' merged feeds —
// so the monitor at the top watches the whole fleet through exactly one
// raw connection plus one rollup connection. This is the fan-in shape that
// keeps every node's load bounded as the fleet grows: no observer ever
// dials more than a handful of feeds, however many producers exist.
//
// Mid-run the demo injects the two failures a real fleet sees weekly:
//
//   - a PRODUCER RESTART: one producer process is killed, its ring file
//     deleted, and a new process recreates the path. The leaf relay's
//     live tail (observer.FollowFile) notices the inode change and
//     resumes with the new life's records — no flatline, no loss.
//   - a RELAY OUTAGE: one leaf relay drops its listener and every
//     subscriber connection for a second, then serves again on the same
//     address. The root relay's client redials with its cursor and
//     resumes exactly where it left off — a blip costs a delay, never a
//     duplicate and never a silent gap.
//
// At the end the run is audited: the root's merged stream must be
// exactly-once and dense (every hop-local sequence number present exactly
// once, zero records missed), its total must equal the sum of beats every
// producer process reported writing (across both lives of the restarted
// one), and the rollup feed's per-window record counts must sum to the
// same total — downsampling conserves the fleet's arithmetic.
//
//	go run ./examples/fleet
//
// (The binary re-executes itself with -producer / -leaf / -root to become
// the child processes.)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/hbfile"
	"repro/hbnet"
	"repro/heartbeat"
)

const (
	producers     = 30
	leaves        = 3
	perLeaf       = producers / leaves
	beatInterval  = 3 * time.Millisecond
	rollupEvery   = 250 * time.Millisecond
	leafPoll      = 5 * time.Millisecond
	mergedFeed    = "merged"
	rollupFeed    = "rollup"
	restartVictim = 7 // producer index killed and restarted mid-run
	outageLeaf    = 1 // leaf index that loses its server mid-run
)

func main() {
	producer := flag.String("producer", "", "internal: run as a producer writing this ring file")
	leaf := flag.String("leaf", "", "internal: run as a leaf relay over these comma-separated name=path files")
	root := flag.String("root", "", "internal: run as the root relay over these comma-separated name=addr upstreams")
	flag.Parse()
	switch {
	case *producer != "":
		runProducer(*producer)
	case *leaf != "":
		runRelayProcess(func(r *hbnet.Relay) error {
			for _, spec := range strings.Split(*leaf, ",") {
				name, path, _ := strings.Cut(spec, "=")
				if err := r.AddFileUpstream(name, path, leafPoll); err != nil {
					return err
				}
			}
			return nil
		}, nil)
	case *root != "":
		clients := map[string]*hbnet.Client{}
		runRelayProcess(func(r *hbnet.Relay) error {
			for _, spec := range strings.Split(*root, ",") {
				name, addr, _ := strings.Cut(spec, "=")
				c, err := r.DialUpstream(name, addr, mergedFeed,
					hbnet.WithReconnectBackoff(20*time.Millisecond, 200*time.Millisecond))
				if err != nil {
					return err
				}
				clients[name] = c
			}
			return nil
		}, func() {
			// The proof the outage happened AND healed: the root's
			// upstream client redialed (with its cursor) and the audit
			// above still found nothing duplicated or lost.
			for name, c := range clients {
				fmt.Fprintf(os.Stderr, "root: upstream %s reconnected %d times, missed %d records\n",
					name, c.Reconnects(), c.Missed())
			}
		})
	default:
		runFleet()
	}
}

// runProducer is one fleet member: an application beating into its own
// ring file until stdin closes, then reporting how many beats it wrote.
func runProducer(path string) {
	w, err := hbfile.Create(path, 20, 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	hb, err := heartbeat.New(20, heartbeat.WithSink(w), heartbeat.WithCapacity(1<<15))
	if err != nil {
		log.Fatal(err)
	}
	hb.SetTarget(100, 1000)
	fmt.Println("UP")

	stop := make(chan struct{})
	go func() {
		io.Copy(io.Discard, os.Stdin) // EOF on stdin = stop
		close(stop)
	}()
	ticker := time.NewTicker(beatInterval) //hbvet:allow wallclock -- child process beats in real time over real TCP; no virtual clock spans processes
	defer ticker.Stop()
	for beating := true; beating; {
		select {
		case <-ticker.C:
			hb.Beat()
		case <-stop:
			beating = false
		}
	}
	count := hb.Count()
	hb.Close()
	w.Close()
	fmt.Printf("DONE %d\n", count)
}

// runRelayProcess is the shared child body of the leaf and root relays:
// build the upstreams, serve merged+rollup feeds on an ephemeral port, and
// obey stdin commands ("outage" = drop the server for a second and serve
// again on the same address — the relay and its histories keep running).
func runRelayProcess(addUpstreams func(*hbnet.Relay) error, atExit func()) {
	relay := hbnet.NewRelay(
		hbnet.WithRollupInterval(rollupEvery),
		hbnet.WithMergedRetain(1<<18),
		hbnet.WithRelayOnError(func(app string, err error) {
			fmt.Fprintf(os.Stderr, "relay: upstream %s: %v\n", app, err)
		}),
	)
	if err := addUpstreams(relay); err != nil {
		log.Fatal(err)
	}
	serve := func(addr string) (*hbnet.Server, net.Listener) {
		srv := hbnet.NewServer()
		if err := relay.PublishOn(srv, mergedFeed, rollupFeed); err != nil {
			log.Fatal(err)
		}
		var l net.Listener
		var err error
		for tries := 0; ; tries++ {
			if l, err = net.Listen("tcp", addr); err == nil {
				break
			}
			if tries > 200 {
				log.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond) //hbvet:allow wallclock -- real listen-retry backoff while a prior process releases the port
		}
		go srv.Serve(l)
		return srv, l
	}
	srv, l := serve("127.0.0.1:0")
	addr := l.Addr().String()
	fmt.Printf("ADDR %s\n", addr)

	go relay.Run(context.Background())

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if sc.Text() != "outage" {
			continue
		}
		// The forced outage: listener and every subscriber connection die;
		// the relay itself — upstream pumps, merged ring, rollup history —
		// keeps running, exactly like a crashed load balancer in front of a
		// healthy node. Subscribers redial with their cursors and lose
		// nothing the rings retain.
		srv.Close()
		time.Sleep(time.Second) //hbvet:allow wallclock -- staged real-time outage window for the demo narrative
		srv, _ = serve(addr)
		fmt.Println("RESTORED")
	}
	if atExit != nil {
		atExit()
	}
	relay.Close()
	srv.Close()
}

// child wraps a spawned fleet process and its control pipe.
type child struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Scanner
}

// spawn re-executes this binary with args and waits for its banner line
// with the given prefix, returning the banner's payload.
func spawn(exe string, args []string, banner string) (*child, string) {
	cmd := exec.Command(exe, args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		log.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	c := &child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	for c.out.Scan() {
		if v, ok := strings.CutPrefix(c.out.Text(), banner); ok {
			return c, strings.TrimSpace(v)
		}
	}
	log.Fatalf("child %v never printed %q", args, banner)
	return nil, ""
}

// stop closes the child's stdin and waits for the trailing "DONE n" line
// (producers) or plain exit.
func (c *child) stop(wantDone bool) uint64 {
	c.stdin.Close()
	var count uint64
	if wantDone {
		for c.out.Scan() {
			if v, ok := strings.CutPrefix(c.out.Text(), "DONE "); ok {
				fmt.Sscanf(v, "%d", &count)
				break
			}
		}
	}
	done := make(chan struct{})
	go func() { c.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second): //hbvet:allow wallclock -- real kill timeout for a real child process
		c.cmd.Process.Kill()
		<-done
	}
	return count
}

func runFleet() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "fleet")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Layer 0: the producers, each its own OS process with its own file.
	fmt.Printf("starting %d producer processes...\n", producers)
	paths := make([]string, producers)
	prods := make([]*child, producers)
	for i := range prods {
		paths[i] = filepath.Join(dir, fmt.Sprintf("p%02d.hb", i))
		prods[i], _ = spawn(exe, []string{"-producer", paths[i]}, "UP")
	}

	// Layer 1: leaf relays, ten files each.
	leafChildren := make([]*child, leaves)
	leafAddrs := make([]string, leaves)
	for i := range leafChildren {
		specs := make([]string, 0, perLeaf)
		for j := i * perLeaf; j < (i+1)*perLeaf; j++ {
			specs = append(specs, fmt.Sprintf("p%02d=%s", j, paths[j]))
		}
		leafChildren[i], leafAddrs[i] = spawn(exe, []string{"-leaf", strings.Join(specs, ",")}, "ADDR ")
		fmt.Printf("leaf-%d relaying %d files at %s\n", i, perLeaf, leafAddrs[i])
	}

	// Layer 2: the root relay over the three leaves.
	rootSpecs := make([]string, leaves)
	for i, a := range leafAddrs {
		rootSpecs[i] = fmt.Sprintf("leaf-%d=%s", i, a)
	}
	rootChild, rootAddr := spawn(exe, []string{"-root", strings.Join(rootSpecs, ",")}, "ADDR ")
	fmt.Printf("root relaying %d leaves at %s\n", leaves, rootAddr)

	// The monitor: ONE raw connection and ONE rollup connection cover all
	// 30 producers.
	audit, err := hbnet.Dial(rootAddr, mergedFeed,
		hbnet.WithReconnectBackoff(20*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	rollups, err := hbnet.DialRollup(rootAddr, rollupFeed)
	if err != nil {
		log.Fatal(err)
	}

	var (
		auditSeqs   []uint64
		auditMissed uint64
	)
	noWait, cancelNoWait := context.WithCancel(context.Background())
	cancelNoWait()
	drainAudit := func(ctx context.Context) {
		for {
			b, err := audit.Next(ctx)
			if err != nil {
				return
			}
			for _, r := range b.Records {
				auditSeqs = append(auditSeqs, r.Seq)
			}
			auditMissed += b.Missed
		}
	}
	rollupRecords := map[string]uint64{}
	var rollupMissed uint64
	drainRollups := func(ctx context.Context) {
		for {
			rb, err := rollups.NextRollups(ctx)
			if err != nil {
				return
			}
			for _, r := range rb.Rollups {
				rollupRecords[r.App] += r.Records
				rollupMissed += r.Missed
			}
		}
	}
	pump := func(d time.Duration) {
		deadline := time.Now().Add(d) //hbvet:allow wallclock -- real drain deadline: the fleet runs across processes in wall time
		for time.Now().Before(deadline) { //hbvet:allow wallclock -- checks the real drain deadline set above
			ctx, cancel := context.WithDeadline(context.Background(), deadline) //hbvet:allow wallclock -- bounds a real network drain with the same wall deadline
			drainAudit(ctx)
			cancel()
			drainRollups(noWait)
		}
	}

	counts := make([]uint64, producers)

	fmt.Println("\nfleet beating; monitor draining the root's merged + rollup feeds...")
	pump(2 * time.Second)

	// Failure 1: a producer restart with file recreation.
	fmt.Printf("killing producer %d and deleting its file (restart with a fresh ring)...\n", restartVictim)
	counts[restartVictim] = prods[restartVictim].stop(true)
	if err := os.Remove(paths[restartVictim]); err != nil {
		log.Fatal(err)
	}
	pump(300 * time.Millisecond) // a few leaf polls: the tail notices
	prods[restartVictim], _ = spawn(exe, []string{"-producer", paths[restartVictim]}, "UP")
	fmt.Printf("producer %d restarted: same path, new inode, sequence numbers back at 1\n", restartVictim)

	pump(1 * time.Second)

	// Failure 2: a leaf relay outage.
	fmt.Printf("forcing a server outage on leaf-%d (listener and all connections drop for 1s)...\n", outageLeaf)
	fmt.Fprintln(leafChildren[outageLeaf].stdin, "outage")
	pump(2 * time.Second)
	fmt.Printf("leaf-%d restored; root resumed from its cursor (reconnects are the leaf's to report)\n", outageLeaf)

	pump(1 * time.Second)

	// Wind down: stop the producers, collect their self-reported counts.
	fmt.Println("stopping producers...")
	var produced uint64
	for i, p := range prods {
		counts[i] += p.stop(true)
		produced += counts[i]
	}

	// Let the tail drain through both relay layers and the last rollup
	// windows flush, then take the final audit.
	deadline := time.Now().Add(15 * time.Second) //hbvet:allow wallclock -- real drain deadline: the fleet runs across processes in wall time
	for uint64(len(auditSeqs))+auditMissed < produced && time.Now().Before(deadline) { //hbvet:allow wallclock -- checks the real drain deadline set above
		pump(200 * time.Millisecond)
	}
	var rollupTotal uint64
	recount := func() uint64 {
		rollupTotal = 0
		for _, n := range rollupRecords {
			rollupTotal += n
		}
		return rollupTotal + rollupMissed
	}
	for recount() < produced && time.Now().Before(deadline) { //hbvet:allow wallclock -- checks the real drain deadline set above
		pump(200 * time.Millisecond)
	}

	// The verdicts.
	dense := true
	for i, seq := range auditSeqs {
		if seq != uint64(i+1) {
			dense = false
			fmt.Printf("FAIL: audit seq %d at position %d (duplicate or gap)\n", seq, i)
			break
		}
	}
	total := uint64(len(auditSeqs))
	fmt.Printf("\nproduced:          %d beats across %d producer processes (incl. both lives of p%02d)\n",
		produced, producers, restartVictim)
	fmt.Printf("merged audit:      %d records, %d missed, dense 1..%d: %v\n",
		total, auditMissed, total, dense)
	fmt.Printf("rollup audit:      %d records, %d missed across %d apps\n",
		rollupTotal, rollupMissed, len(rollupRecords))
	fmt.Printf("root reconnects:   audit client %d (its own connection never dropped)\n", audit.Reconnects())

	ok := true
	check := func(cond bool, what string) {
		if !cond {
			ok = false
			fmt.Println("FAIL:", what)
		}
	}
	check(dense, "merged stream not exactly-once dense")
	check(auditMissed == 0, "records were lost end to end")
	check(total == produced, fmt.Sprintf("merged total %d != produced %d", total, produced))
	check(rollupMissed == 0, "rollups reported losses")
	check(rollupTotal == produced, fmt.Sprintf("rollup total %d != produced %d", rollupTotal, produced))

	audit.Close()
	rollups.Close()
	rootChild.stop(false)
	for _, lc := range leafChildren {
		lc.stop(false)
	}

	if !ok {
		fmt.Println("\nFLEET AUDIT FAILED")
		os.Exit(1)
	}
	fmt.Println("\nFLEET AUDIT PASSED: exactly-once dense delivery and conserved rollup counts,")
	fmt.Println("through two relay layers, across a producer restart (file recreation) and a relay outage.")
}
