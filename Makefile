# Tier-1 verification plus race checking and the short benchmark pass in
# one command: `make ci`.

GO ?= go

.PHONY: ci vet build test race bench-short bench

ci: vet build race bench-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The core-API benchmarks only, briefly: enough to catch a hot-path
# regression without regenerating every figure.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkBeat$$|BenchmarkHeartbeatParallel|BenchmarkThreadBeat' \
		-benchmem -benchtime=200ms .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
