package hbnet

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

func TestHelloRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		feed  string
		since uint64
	}{
		{"", 0},
		{"app", 42},
		{"a/b.c", math.MaxUint64},
	} {
		payload := appendHello(nil, tc.feed, tc.since)
		if payload[0] != frameHello {
			t.Fatalf("hello frame type %#x", payload[0])
		}
		feed, since, err := decodeHello(payload[1:])
		if err != nil {
			t.Fatalf("decodeHello(%q, %d): %v", tc.feed, tc.since, err)
		}
		if feed != tc.feed || since != tc.since {
			t.Fatalf("round trip (%q, %d) -> (%q, %d)", tc.feed, tc.since, feed, since)
		}
	}
}

func TestHelloRejectsGarbage(t *testing.T) {
	if _, _, err := decodeHello([]byte("GET / HTTP/1.1\r\n")); err == nil {
		t.Fatal("HTTP request accepted as hello")
	}
	// Truncations of a valid hello must error, never panic.
	full := appendHello(nil, "app", 7)[1:]
	for n := 0; n < len(full); n++ {
		if _, _, err := decodeHello(full[:n]); err == nil {
			t.Fatalf("truncated hello of %d bytes accepted", n)
		}
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	payload := appendWelcome(nil, 123456)
	cursor, err := decodeWelcome(payload[1:])
	if err != nil || cursor != 123456 {
		t.Fatalf("welcome round trip: cursor=%d err=%v", cursor, err)
	}
}

// Property: any batch survives the codec bit-exactly, including zero and
// non-monotone sequence numbers, negative tags, and NaN-free targets.
func TestBatchRoundTripProperty(t *testing.T) {
	f := func(count uint64, window uint16, missed uint32, targetSet bool,
		tmin, tmax float64, seqs []uint64, tags []int64) bool {
		if math.IsNaN(tmin) || math.IsNaN(tmax) {
			return true // Batch targets are validated upstream; NaN != NaN would fail reflect
		}
		b := observer.Batch{
			Count:  count,
			Window: int(window),
			Missed: uint64(missed),
		}
		if targetSet {
			b.TargetSet, b.TargetMin, b.TargetMax = true, tmin, tmax
		}
		for i, seq := range seqs {
			var tag int64
			if i < len(tags) {
				tag = tags[i]
			}
			b.Records = append(b.Records, heartbeat.Record{
				Seq:      seq,
				Time:     time.Unix(0, int64(seq%math.MaxInt32)).Add(time.Duration(i) * time.Millisecond),
				Tag:      tag,
				Producer: int32(i % 7),
			})
		}
		payload := appendBatch(nil, b, count+1)
		got, cursor, err := decodeBatch(payload[1:])
		if err != nil || cursor != count+1 {
			return false
		}
		// time.Unix carries no monotonic clock, so reflect equality holds.
		if len(got.Records) == 0 {
			got.Records = nil
		}
		if len(b.Records) == 0 {
			b.Records = nil
		}
		return reflect.DeepEqual(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchDecodeRejectsCorruption(t *testing.T) {
	b := observer.Batch{Count: 10, Window: 5, TargetSet: true, TargetMin: 1, TargetMax: 2}
	for i := 0; i < 8; i++ {
		b.Records = append(b.Records, heartbeat.Record{Seq: uint64(i + 1), Time: time.Unix(0, int64(i)*1e6)})
	}
	payload := appendBatch(nil, b, 10)[1:]
	// Every truncation errors instead of panicking or fabricating records.
	for n := 0; n < len(payload); n++ {
		if _, _, err := decodeBatch(payload[:n]); err == nil {
			t.Fatalf("truncated batch of %d/%d bytes accepted", n, len(payload))
		}
	}
	// A record count far beyond the body size is rejected before allocation.
	huge := []byte{0}                                 // cursor 0
	huge = append(huge, 0, 0, 0, 0)                   // count, window, missed, flags
	huge = append(huge, 0xff, 0xff, 0xff, 0xff, 0x7f) // nrecs ≈ 34 billion
	if _, _, err := decodeBatch(huge); err == nil {
		t.Fatal("absurd record count accepted")
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payload := appendWelcome(nil, 9)
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	ftype, body, err := readFrame(&buf)
	if err != nil || ftype != frameWelcome {
		t.Fatalf("readFrame: type=%#x err=%v", ftype, err)
	}
	if cursor, err := decodeWelcome(body); err != nil || cursor != 9 {
		t.Fatalf("welcome body: cursor=%d err=%v", cursor, err)
	}
	// Oversized length prefix is rejected without allocating.
	bad := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Empty frame is rejected.
	if _, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("empty frame accepted")
	}
}
