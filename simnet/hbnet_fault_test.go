package simnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/hbnet"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
	"repro/sim"
)

// These tests drive the hbnet failure seams the scenario matrix can only
// hit probabilistically, each pinned deterministically under virtual time:
// the reconnect stampede (backoff jitter must desynchronize a fleet), the
// server write timeout (a stalled subscriber must be disconnected at the
// simulated instant, not a wall-clock one), and the ref-counted fan-out
// frame lifecycle (a subscriber disconnecting mid-write must not free a
// frame other subscribers are still writing).

// recordingDialer wraps a Host and stamps the virtual time of every dial
// attempt — the observable trace of the client's backoff schedule.
type recordingDialer struct {
	d     hbnet.Dialer
	clk   heartbeat.Clock
	mu    *sync.Mutex
	times *[]time.Time
}

func (r recordingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	r.mu.Lock()
	*r.times = append(*r.times, clockNow(r.clk))
	r.mu.Unlock()
	return r.d.DialContext(ctx, network, addr)
}

// TestReconnectJitterDesynchronizesRedials is the stampede regression: a
// fleet of clients that all lose the same server at the same virtual
// instant must NOT redial in lockstep. Each client draws full jitter from
// its own seed, so the recorded redial schedules have to spread across the
// backoff window; before jitter existed every client's first retry landed
// at exactly cut+backoffMin — one distinct instant for the whole fleet.
func TestReconnectJitterDesynchronizesRedials(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	hb, err := heartbeat.New(20, heartbeat.WithClock(clk), heartbeat.WithCapacity(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	srv := hbnet.NewServer(hbnet.WithServerClock(clk))
	if err := srv.PublishHeartbeat("app", hb); err != nil {
		t.Fatal(err)
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	const fleet = 8
	var mu sync.Mutex
	attempts := make([][]time.Time, fleet)
	clients := make([]*hbnet.Client, fleet)
	hosts := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		hosts[i] = fmt.Sprintf("mon%d", i)
		c, err := hbnet.Dial("srv", "app",
			hbnet.WithDialer(recordingDialer{d: nw.Host(hosts[i]), clk: clk, mu: &mu, times: &attempts[i]}),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectJitterSeed(int64(1000+i)),
			hbnet.WithReconnectBackoff(20*time.Millisecond, 500*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}

	// The outage: every connection dies at the same virtual instant, and
	// the listener refuses redials for a few backoff cycles.
	nw.SetListenerDown("srv", true)
	for _, h := range hosts {
		nw.CutLink(h, "srv")
	}
	if !sleepUntilVirtual(ctx, clk, clk.Now().Add(3*time.Second)) {
		t.Fatal("virtual outage window interrupted")
	}
	nw.SetListenerDown("srv", false)

	deadline := time.Now().Add(30 * time.Second)
	for {
		reconnected := 0
		for _, c := range clients {
			if c.Reconnects() >= 1 {
				reconnected++
			}
		}
		if reconnected == fleet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d clients reconnected after the outage lifted", reconnected, fleet)
		}
		time.Sleep(time.Millisecond)
	}

	// attempts[i][0] is the successful initial dial; [1] is the first
	// post-cut retry. Jitter-free backoff puts every first retry at exactly
	// the same virtual instant; full jitter must spread them.
	mu.Lock()
	defer mu.Unlock()
	firstRetry := make(map[time.Time]int)
	for i, ts := range attempts {
		if len(ts) < 2 {
			t.Fatalf("client %d recorded %d dial attempts, want the initial dial plus retries", i, len(ts))
		}
		firstRetry[ts[1]]++
	}
	if distinct := len(firstRetry); distinct < fleet/2 {
		t.Fatalf("first post-outage retries landed on only %d distinct instants across %d clients — redials are synchronized: %v",
			distinct, fleet, firstRetry)
	}
}

// TestServerWriteTimeoutDropsStalledSubscriber pins the write-timeout seam
// under virtual time: a subscriber that stops draining its socket blocks
// the server's write (kernel-style backpressure via SetWriteLimit), the
// deadline — computed on the server's configured clock — fires at the
// simulated instant, the server disconnects the stall, and the subscriber
// later reconnects from its cursor with nothing lost unaccounted.
func TestServerWriteTimeoutDropsStalledSubscriber(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	hb, err := heartbeat.New(20, heartbeat.WithClock(clk), heartbeat.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	timeouts := make(chan error, 1)
	srv := hbnet.NewServer(
		hbnet.WithServerClock(clk),
		hbnet.WithWriteTimeout(time.Second),
		hbnet.WithServerOnError(func(err error) {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				select {
				case timeouts <- err:
				default:
				}
			}
		}))
	if err := srv.PublishHeartbeat("app", hb); err != nil {
		t.Fatal(err)
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// A small socket buffer, so a stalled subscriber backpressures the
	// server after a handful of batches instead of megabytes.
	nw.SetWriteLimit("mon", "srv", 1024)
	c, err := hbnet.Dial("srv", "app",
		hbnet.WithDialer(nw.Host("mon")),
		hbnet.WithClientClock(clk),
		hbnet.WithReconnectBackoff(10*time.Millisecond, 100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	beatCtx, stopBeats := context.WithCancel(ctx)
	var beats sync.WaitGroup
	beats.Add(1)
	go func() {
		defer beats.Done()
		for {
			select {
			case <-beatCtx.Done():
				return
			case <-clk.After(time.Millisecond):
			}
			hb.Beat()
		}
	}()

	// The stall: the consumer never calls Next, so the client's buffer
	// fills, the socket fills, the server's write blocks, and the virtual
	// deadline disconnects it. No wall-clock sleep is involved: the timeout
	// is a simulation event.
	select {
	case <-timeouts:
	case <-time.After(30 * time.Second):
		t.Fatal("server write timeout never fired under the virtual clock")
	}
	stopBeats()
	beats.Wait()
	hb.Flush()
	head := hb.Count()

	// The stalled subscriber wakes up: it drains its buffer, notices the
	// disconnect, reconnects from its cursor, and the delivery contract
	// holds — everything published is delivered or counted missed.
	tr := simcheck.NewTracker("stalled subscriber", 0)
	deadline := time.Now().Add(30 * time.Second)
	for tr.Delivered()+tr.Missed() < head {
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled at delivered=%d missed=%d of head=%d (reconnects=%d)",
				tr.Delivered(), tr.Missed(), head, c.Reconnects())
		}
		nctx, ncancel := context.WithTimeout(ctx, time.Second)
		b, err := c.Next(nctx)
		ncancel()
		if err != nil {
			continue // idle tick while the client redials
		}
		if aerr := tr.Absorb(b); aerr != nil {
			t.Fatal(aerr)
		}
	}
	if c.Reconnects() < 1 {
		t.Fatal("client never reconnected after the write-timeout disconnect")
	}
	simcheck.RequireConserved(t, "stalled subscriber", tr.Delivered(), tr.Missed(), head)
}

// TestFrameFanoutSurvivesMidWriteDisconnect exercises the ref-counted
// frame lifecycle under -race: four subscribers at the same cursor share
// each encoded catch-up frame, their writes staggered by latency and a
// tiny socket buffer, and one of them is severed mid-frame by a byte
// trigger. The failed write releases that subscriber's reference while
// another subscriber's write of the SAME frame is still in flight — if
// release returned the buffer to the pool early, the race detector (or a
// corrupt delivery) would catch the reuse. Every subscriber, the severed
// one included (it reconnects), must conserve against the relay's merged
// head.
func TestFrameFanoutSurvivesMidWriteDisconnect(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	hb, err := heartbeat.New(20, heartbeat.WithClock(clk), heartbeat.WithCapacity(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	relay := hbnet.NewRelay(hbnet.WithRelayClock(clk), hbnet.WithMergedRetain(1<<17))
	if err := relay.AddUpstream("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	go relay.Run(ctx)
	defer relay.Close()

	srv := hbnet.NewServer(hbnet.WithServerClock(clk), hbnet.WithWriteTimeout(0))
	if err := relay.PublishOn(srv, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// Phase 1: everyone connects and drains a small lead-in, so all four
	// subscribers sit at the same cursor before any fault is armed (arming
	// the byte trigger before the handshake would sever the dial itself —
	// the trigger counts the whole link's traffic).
	for i := 0; i < 2_000; i++ {
		hb.Beat()
	}
	hb.Flush()
	leadIn := waitMergedStable(t, relay)

	subscribers := []string{"fast", "lagged", "slow", "victim"}
	clients := make([]*hbnet.Client, len(subscribers))
	trackers := make([]*simcheck.Tracker, len(subscribers))
	for i, host := range subscribers {
		c, err := hbnet.Dial("srv", "merged",
			hbnet.WithDialer(nw.Host(host)),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
		if err != nil {
			t.Fatalf("%s: dial: %v", host, err)
		}
		clients[i] = c
		defer c.Close()
		trackers[i] = simcheck.NewTracker(host, 0)
		if err := drainTo(ctx, c, trackers[i], leadIn); err != nil {
			t.Fatalf("%s: lead-in: %v", host, err)
		}
	}

	// Phase 2, staggered speeds: an unconstrained subscriber, a
	// high-latency one, a backpressured one (4 KiB socket buffer against
	// ~1 MB of catch-up frames, so its writes stay in flight long after the
	// others), and a victim whose connection the byte trigger severs in the
	// middle of a shared frame.
	nw.SetLatency("lagged", "srv", 2*time.Millisecond)
	nw.SetWriteLimit("slow", "srv", 4096)
	nw.DropAfterBytes("victim", "srv", 32*1024)

	const burst = 40_000
	for i := 0; i < burst; i++ {
		hb.Beat()
	}
	hb.Flush()
	head := waitMergedStable(t, relay)

	errs := make(chan error, len(subscribers))
	var wg sync.WaitGroup
	for i, host := range subscribers {
		wg.Add(1)
		go func(host string, c *hbnet.Client, tr *simcheck.Tracker) {
			defer wg.Done()
			if err := drainTo(ctx, c, tr, head); err != nil {
				errs <- fmt.Errorf("%s: %w", host, err)
				return
			}
			if err := simcheck.Conserved(host, tr.Delivered(), tr.Missed(), head); err != nil {
				errs <- err
			}
		}(host, clients[i], trackers[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// drainTo absorbs batches from c into tr until the tracker accounts for
// every record up to head (delivered or missed), bounded in real time.
func drainTo(ctx context.Context, c *hbnet.Client, tr *simcheck.Tracker, head uint64) error {
	deadline := time.Now().Add(60 * time.Second)
	for tr.Delivered()+tr.Missed() < head {
		if time.Now().After(deadline) {
			return fmt.Errorf("stalled at delivered=%d missed=%d of head=%d (reconnects=%d)",
				tr.Delivered(), tr.Missed(), head, c.Reconnects())
		}
		nctx, ncancel := context.WithTimeout(ctx, time.Second)
		b, err := c.Next(nctx)
		ncancel()
		if err != nil {
			continue // idle tick while the client redials
		}
		if aerr := tr.Absorb(b); aerr != nil {
			return aerr
		}
		c.Recycle(b)
	}
	return nil
}

// waitMergedStable waits until the relay's merged head has absorbed the
// backlog and stopped moving, and returns it.
func waitMergedStable(t *testing.T, relay *hbnet.Relay) uint64 {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last uint64
	stable := 0
	for {
		h := relay.MergedHead()
		if h > 0 && h == last {
			stable++
			if stable >= 5 {
				return h
			}
		} else {
			stable = 0
		}
		last = h
		if time.Now().After(deadline) {
			t.Fatalf("relay merged head never settled (at %d)", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
