// Self-tuning library (§2.2): the paper's example is a CAD place-and-route
// library whose approximation precision is a free knob — "its data
// structures and algorithms have a degree of freedom in their internal
// precision that can be manipulated to maximize performance while meeting
// a user-defined constraint for how long place and route can run".
//
// Here a simulated-annealing placement library anneals in stages, beating
// once per stage. From the caller's deadline it derives a target stage
// rate; while the measured rate has slack it RAISES precision (more moves
// per stage, better final placement), and when it falls behind it sheds
// precision — control.Ladder with recovery enabled, run on real
// computation and the wall clock. A tight deadline finishes on time with a
// rougher placement; a generous one invests the slack in quality.
//
//	go run ./examples/adaptive-library
package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/control"
	"repro/heartbeat"
)

// placer is the "library": a simulated-annealing placement engine.
type placer struct {
	grid []int32
	w, h int
	cost float64 // current total wirelength
	temp float64
	rng  *rand.Rand
}

func newPlacer(w, h int, seed int64) *placer {
	p := &placer{grid: make([]int32, w*h), w: w, h: h, temp: 30, rng: rand.New(rand.NewSource(seed))}
	// Scrambled initial placement.
	perm := p.rng.Perm(w * h)
	for i, v := range perm {
		p.grid[i] = int32(v)
	}
	for loc := range p.grid {
		p.cost += p.wireCost(loc, p.grid[loc])
	}
	return p
}

// wireCost is the Manhattan distance of an element from its ideal spot.
func (p *placer) wireCost(loc int, id int32) float64 {
	lx, ly := loc%p.w, loc/p.w
	ix, iy := int(id)%p.w, int(id)/p.w
	return math.Abs(float64(lx-ix)) + math.Abs(float64(ly-iy))
}

// anneal performs moves Metropolis steps and returns the updated cost.
func (p *placer) anneal(moves int) float64 {
	for m := 0; m < moves; m++ {
		a, b := p.rng.Intn(len(p.grid)), p.rng.Intn(len(p.grid))
		before := p.wireCost(a, p.grid[a]) + p.wireCost(b, p.grid[b])
		after := p.wireCost(a, p.grid[b]) + p.wireCost(b, p.grid[a])
		delta := after - before
		if delta < 0 || p.rng.Float64() < math.Exp(-delta/p.temp) {
			p.grid[a], p.grid[b] = p.grid[b], p.grid[a]
			p.cost += delta
		}
		if p.temp > 0.05 {
			p.temp *= 0.99999
		}
	}
	return p.cost
}

// movesPerStage is the precision ladder, best quality first (level 0).
var movesPerStage = []int{200000, 120000, 70000, 40000, 22000, 12000}

// place runs the library under a deadline and returns the final cost.
func place(deadline time.Duration, seed int64) (cost float64, elapsed time.Duration, moves int) {
	const stages = 80
	targetRate := float64(stages) / deadline.Seconds() // stages per second

	hb, err := heartbeat.New(8)
	if err != nil {
		panic(err)
	}
	hb.SetTarget(targetRate, math.Inf(1))
	// Start at lowest precision and let slack buy quality: recovery
	// steps toward level 0 whenever the rate clears the target with
	// 30% headroom.
	ladder := &control.Ladder{
		MaxLevel:  len(movesPerStage) - 1,
		TargetMin: targetRate,
		TargetMax: targetRate * 1.3,
		Recover:   true,
		Settle:    1,
	}
	ladder.SetLevel(len(movesPerStage) - 1)

	p := newPlacer(48, 48, seed)
	start := time.Now() //hbvet:allow wallclock -- the adaptation loop measures real annealing runtime (the paper's use case)
	for s := 0; s < stages; s++ {
		n := movesPerStage[ladder.Level()]
		p.anneal(n)
		moves += n
		hb.Beat()
		rate, ok := hb.Rate(0)
		ladder.Decide(rate, ok)
	}
	return p.cost, time.Since(start), moves //hbvet:allow wallclock -- closes the real-runtime measurement opened at start
}

func main() {
	fmt.Println("placing a 48x48 netlist (80 annealing stages), precision tuned to the deadline:")
	for _, d := range []time.Duration{120 * time.Millisecond, 1200 * time.Millisecond} {
		cost, elapsed, moves := place(d, 7)
		status := "on time"
		if elapsed > d+d/4 {
			status = "LATE"
		}
		fmt.Printf("  deadline %6s: finished in %7.0fms (%s), %8d moves, final wirelength %8.0f\n",
			d, float64(elapsed.Microseconds())/1000, status, moves, cost)
	}
	fmt.Println("\nthe generous deadline buys a much better placement; both meet their constraint")
	fmt.Println("(same library, same API — the heartbeat feedback chose the precision)")
}
