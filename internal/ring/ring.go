// Package ring provides a fixed-capacity ring buffer that retains the most
// recent values pushed into it. It is the storage primitive behind per-thread
// heartbeat histories. The zero value is not usable; construct with New.
//
// Buffer is not safe for concurrent use; callers synchronize externally.
package ring

// Buffer is a fixed-capacity ring retaining the last cap values.
type Buffer[T any] struct {
	buf   []T
	total uint64 // number of values ever pushed
}

// New returns a Buffer retaining the last capacity values.
// It panics if capacity <= 0.
func New[T any](capacity int) *Buffer[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Buffer[T]{buf: make([]T, capacity)}
}

// Cap returns the buffer capacity.
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// Len returns the number of retained values: min(total pushed, capacity).
func (b *Buffer[T]) Len() int {
	if b.total < uint64(len(b.buf)) {
		return int(b.total)
	}
	return len(b.buf)
}

// Total returns the number of values ever pushed.
func (b *Buffer[T]) Total() uint64 { return b.total }

// Push appends v, evicting the oldest value if the buffer is full.
func (b *Buffer[T]) Push(v T) {
	b.buf[b.total%uint64(len(b.buf))] = v
	b.total++
}

// At returns the i-th retained value, 0 being the oldest.
// It panics if i is out of [0, Len()).
func (b *Buffer[T]) At(i int) T {
	n := b.Len()
	if i < 0 || i >= n {
		panic("ring: index out of range")
	}
	start := b.total - uint64(n)
	return b.buf[(start+uint64(i))%uint64(len(b.buf))]
}

// Last returns up to n most recent values, ordered oldest to newest.
// A non-positive n yields nil.
func (b *Buffer[T]) Last(n int) []T {
	if n <= 0 {
		return nil
	}
	have := b.Len()
	if n > have {
		n = have
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = b.At(have - n + i)
	}
	return out
}

// Snapshot returns all retained values, ordered oldest to newest.
func (b *Buffer[T]) Snapshot() []T { return b.Last(b.Len()) }
