package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/x264"
)

// quick is a scaled-down option set: encoder experiments run ~160 frames
// instead of 500-600, the overhead study prices 20000 options. Shape
// criteria are asserted at this scale; the full paper scale runs in
// cmd/hbexperiments.
var quick = Options{EncoderFrames: 160, OverheadUnits: 20000}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nonesuch", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAllCoversEveryID(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in long mode only")
	}
	results := All(quick)
	if len(results) != len(IDs()) {
		t.Fatalf("All = %d results, want %d", len(results), len(IDs()))
	}
	for i, r := range results {
		if r.ID != IDs()[i] {
			t.Errorf("result %d = %q, want %q", i, r.ID, IDs()[i])
		}
		if r.Table == nil && r.Series == nil {
			t.Errorf("%s: no table or series", r.ID)
		}
		if len(r.Notes) == 0 {
			t.Errorf("%s: no notes", r.ID)
		}
	}
}

func TestTable2ReproducesPaperRates(t *testing.T) {
	r := Table2(quick)
	if r.Table == nil || len(r.Table.Rows) != 10 {
		t.Fatalf("table2 = %+v", r.Table)
	}
	for _, row := range r.Table.Rows {
		paper, err1 := strconv.ParseFloat(row[2], 64)
		measured, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		rel := (measured - paper) / paper
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.001 {
			t.Errorf("%s: measured %v vs paper %v (%.3f%%)", row[0], measured, paper, rel*100)
		}
	}
	// The table renders and serializes.
	var buf bytes.Buffer
	if err := r.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "canneal") {
		t.Fatal("CSV missing rows")
	}
}

func TestOverheadShape(t *testing.T) {
	r := Overhead(quick)
	slowdown := func(row int) float64 {
		s := strings.TrimSuffix(r.Table.Rows[row][4], "x")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad slowdown cell %q", r.Table.Rows[row][4])
		}
		return v
	}
	// Wall-clock measurements: assert with generous margins.
	if s := slowdown(0); s < 2 {
		t.Errorf("per-option slowdown %.2fx, want the paper's blow-up (>2x)", s)
	}
	if s := slowdown(1); s > 1.5 {
		t.Errorf("per-25000 slowdown %.2fx, want negligible (<1.5x)", s)
	}
	if s := slowdown(2); s > 1.5 {
		t.Errorf("facesim slowdown %.2fx, want small (<1.5x)", s)
	}
}

func TestFig2PhaseStructure(t *testing.T) {
	r := Fig2(quick)
	if r.Series == nil || len(r.Series.X) == 0 {
		t.Fatal("fig2 empty")
	}
	// Recover phase means from the series itself.
	frames := quick.EncoderFrames
	b1, b2 := frames/5, frames*2/3
	var outer, middle []float64
	for i, x := range r.Series.X {
		switch beat := int(x); {
		case beat <= b1:
			outer = append(outer, r.Series.Y[0][i])
		case beat > b1+20 && beat <= b2: // skip the window-lag transition
			middle = append(middle, r.Series.Y[0][i])
		case beat > b2+20:
			outer = append(outer, r.Series.Y[0][i])
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	if len(middle) == 0 || len(outer) == 0 {
		t.Fatal("phases not populated")
	}
	mo, mm := mean(outer), mean(middle)
	if mm < 1.4*mo {
		t.Errorf("middle phase %.1f beats/s not clearly faster than outer %.1f (paper ~2x)", mm, mo)
	}
}

func TestFig3AdaptationShape(t *testing.T) {
	run := runAdaptive(quick)
	if run.crossedAt <= 0 {
		t.Fatal("adaptive encoder never reached the 30 beats/s goal")
	}
	final := run.rate[len(run.rate)-1]
	if final < 30 {
		t.Errorf("final rate %.1f < 30", final)
	}
	// The rate the first adaptation decision saw must be far below target
	// (the paper's 8.8 anchor).
	initial := run.rate[run.firstCheck-1]
	if initial > 15 {
		t.Errorf("initial rate %.1f, want the demanding-input anchor (<15)", initial)
	}
	if run.finalCfg.Search != x264.Diamond {
		t.Errorf("final config %v, want diamond search (paper narrative)", run.finalCfg)
	}
	if run.finalCfg.Subpartitions {
		t.Error("final config still uses sub-partitions")
	}
	// The climb is monotone-ish: the level sequence never moves toward
	// quality (the paper's encoder only sheds work).
	for i := 1; i < len(run.level); i++ {
		if run.level[i] < run.level[i-1] {
			t.Fatalf("ladder moved up at frame %d", i)
		}
	}
}

func TestFig4QualityCost(t *testing.T) {
	r := Fig4(quick)
	var sum, worst float64
	n := 0
	for _, d := range r.Series.Y[0] {
		sum += d
		if d < worst {
			worst = d
		}
		n++
	}
	mean := sum / float64(n)
	if mean > -0.02 {
		t.Errorf("mean PSNR diff %.3f dB: adaptation should cost some quality", mean)
	}
	if mean < -1.2 {
		t.Errorf("mean PSNR diff %.3f dB: too costly (paper ~-0.5)", mean)
	}
	if worst < -2.5 {
		t.Errorf("worst PSNR diff %.2f dB: too costly (paper ~-1)", worst)
	}
}

func seriesCol(t *testing.T, r Result, name string) []float64 {
	t.Helper()
	for c, col := range r.Series.Cols {
		if col == name {
			return r.Series.Y[c]
		}
	}
	t.Fatalf("%s: no column %q", r.ID, name)
	return nil
}

func TestFig5BodytrackShape(t *testing.T) {
	r := Fig5(quick)
	rates := seriesCol(t, r, "rate")
	cores := seriesCol(t, r, "cores")
	// Peak allocation reaches all 8 cores during the bump.
	peak := 0.0
	for _, c := range cores {
		if c > peak {
			peak = c
		}
	}
	if peak != 8 {
		t.Errorf("peak cores = %v, want 8", peak)
	}
	// Final: reclaimed to one core with the rate back inside the window.
	last := len(cores) - 1
	if cores[last] != 1 {
		t.Errorf("final cores = %v, want 1", cores[last])
	}
	if rates[last] < 2.5 || rates[last] > 3.5 {
		t.Errorf("final rate = %.2f, want inside [2.5, 3.5]", rates[last])
	}
	// Seven cores were enough before the bump: allocation at beat 90.
	if c := cores[89]; c != 7 {
		t.Errorf("cores at beat 90 = %v, want 7", c)
	}
}

func TestFig6StreamclusterShape(t *testing.T) {
	r := Fig6(quick)
	rates := seriesCol(t, r, "rate")
	// In-window by beat 30 and held to the end.
	for beat := 30; beat <= len(rates); beat++ {
		if rates[beat-1] < 0.45 || rates[beat-1] > 0.60 {
			t.Fatalf("rate %.3f at beat %d escaped the (slightly padded) window", rates[beat-1], beat)
		}
	}
}

func TestFig7X264Shape(t *testing.T) {
	r := Fig7(quick)
	rates := seriesCol(t, r, "rate")
	cores := seriesCol(t, r, "cores")
	peakRate := 0.0
	for _, v := range rates {
		if v > peakRate {
			peakRate = v
		}
	}
	if peakRate < 45 {
		t.Errorf("peak rate %.1f, want the paper's >45 spikes", peakRate)
	}
	// Steady-state allocation is mid-size (paper: 4-6 cores).
	last := len(cores) - 1
	if cores[last] < 3 || cores[last] > 6 {
		t.Errorf("final cores = %v, want 3-6", cores[last])
	}
	// Post-warmup, rate stays in a loose band around the window.
	for beat := 100; beat <= len(rates); beat++ {
		if rates[beat-1] < 20 || rates[beat-1] > 50 {
			t.Fatalf("rate %.1f at beat %d far outside plausible band", rates[beat-1], beat)
		}
	}
}

func TestFig8FaultToleranceShape(t *testing.T) {
	r := Fig8(quick)
	healthy := seriesCol(t, r, "healthy")
	unhealthy := seriesCol(t, r, "unhealthy")
	adaptive := seriesCol(t, r, "adaptive")
	last := len(healthy) - 1
	minTail := func(xs []float64) float64 {
		m := xs[len(xs)/2]
		for _, v := range xs[len(xs)/2:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	// Unhealthy collapses well below the healthy baseline after failures.
	if mu := minTail(unhealthy); mu >= 27 {
		t.Errorf("unhealthy min tail rate %.1f, want a collapse (<27)", mu)
	}
	// Adaptive ends at/above target while unhealthy does not.
	if adaptive[last] < 30 {
		t.Errorf("adaptive final rate %.1f < 30", adaptive[last])
	}
	if unhealthy[last] >= 30 {
		t.Errorf("unhealthy final rate %.1f >= 30; faults had no bite", unhealthy[last])
	}
	if healthy[last] < 30 {
		t.Errorf("healthy final rate %.1f < 30", healthy[last])
	}
	// Adaptive strictly dominates unhealthy at the end.
	if adaptive[last] <= unhealthy[last] {
		t.Errorf("adaptive %.1f not above unhealthy %.1f", adaptive[last], unhealthy[last])
	}
}
