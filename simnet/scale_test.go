package simnet

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// The scale matrix: seeded ScaleScenario runs at PR scale (10k producers),
// plus the bigger tiers — 100k always (outside -short and -race), 1M only
// behind SCALE_FULL=1. Every failure prints SCALE_SEED=<n>; re-running
// with that environment variable set replays exactly that scenario.

func scaleSeeds(t *testing.T, def []int64) []int64 {
	t.Helper()
	env := os.Getenv("SCALE_SEED")
	if env == "" {
		return def
	}
	n, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("SCALE_SEED=%q: %v", env, err)
	}
	return []int64{n}
}

func logScale(t *testing.T, sc ScaleScenario, st ScaleStats) {
	t.Helper()
	t.Logf("scale: %v delivered=%d missed=%d churn=%d/%d silenced=%d handoffs=%d shed=%d p50=%v p95=%v p99=%v bytes/producer=%.0f rootApps=%d rollupApps=%d sim=%.1fs real=%.1fs",
		sc, st.Delivered, st.Missed, st.Left, st.Rejoined, st.Silenced, st.Handoffs, st.Shed,
		st.P50, st.P95, st.P99, st.BytesPerProducer, st.RootApps, st.RootRollupApps,
		st.SimSeconds, st.RealSeconds)
}

// TestScaleMatrix is the PR-scale shard: three seeds at 10k producers
// (2k under the race detector), each a full relay-tree run with Zipf
// skew, churn and silence bursts, gated by the conservation invariants
// and the p99/bytes ceilings inside ScaleScenario.Run.
func TestScaleMatrix(t *testing.T) {
	producers := 10_000
	if raceEnabled {
		producers = 2_000
	}
	for _, seed := range scaleSeeds(t, []int64{1, 2, 3}) {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sc := GenerateScale(seed, producers)
			st, err := sc.Run()
			if err != nil {
				t.Fatalf("SCALE_SEED=%d: %v", seed, err)
			}
			logScale(t, sc, st)
		})
	}
}

// TestScale100k is the acceptance tier: a seeded 100k-producer run with
// the full load shape must complete, invariants green, inside a minute of
// real time.
func TestScale100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-producer run: skipped in -short (PR shard runs 10k)")
	}
	if raceEnabled {
		t.Skip("100k-producer run: skipped under -race")
	}
	const seed = 7
	sc := GenerateScale(seed, 100_000)
	start := time.Now()
	st, err := sc.Run()
	if err != nil {
		t.Fatalf("SCALE_SEED=%d: %v", seed, err)
	}
	logScale(t, sc, st)
	if real := time.Since(start); real > 60*time.Second {
		t.Fatalf("SCALE_SEED=%d: 100k-producer run took %v real, budget 60s", seed, real)
	}
}

// TestScale1M is the full tier, behind SCALE_FULL=1: a million simulated
// producers through the same tree, same invariants.
func TestScale1M(t *testing.T) {
	if os.Getenv("SCALE_FULL") == "" {
		t.Skip("1M-producer run: set SCALE_FULL=1")
	}
	if raceEnabled {
		t.Skip("1M-producer run: skipped under -race")
	}
	const seed = 11
	sc := GenerateScale(seed, 1_000_000)
	st, err := sc.Run()
	if err != nil {
		t.Fatalf("SCALE_SEED=%d: %v", seed, err)
	}
	logScale(t, sc, st)
}

// TestScaleRollupStateGrowth pins the O(apps) claim with arithmetic: two
// runs carrying the SAME total record volume, one with 10× the producers
// of the other. Since record volume (ring and frame-cache state) is held
// equal, the heap delta between them is the marginal cost of 18k extra
// producers — which must be pump state (a heap entry and a prod struct),
// not per-producer relay state. The root's compacted app count must not
// move at all.
func TestScaleRollupStateGrowth(t *testing.T) {
	if raceEnabled {
		t.Skip("heap accounting under -race measures the detector, not the relay")
	}
	run := func(producers, beats int) ScaleStats {
		t.Helper()
		sc := ScaleScenario{
			Seed:      42,
			Producers: producers,
			Apps:      16,
			Leaves:    4,
			Duration:  5 * time.Second,
			BeatEvery: 5 * time.Second / time.Duration(beats),
			// No churn or bursts: this test isolates state growth, and
			// the withDefaults zero-churn path keeps both runs identical
			// in shape.
		}
		st, err := sc.Run()
		if err != nil {
			t.Fatalf("SCALE_SEED=42 (producers=%d): %v", producers, err)
		}
		logScale(t, sc, st)
		return st
	}
	small := run(2_000, 50) // 2k producers × ~50 beats ≈ 100k records
	big := run(20_000, 5)   // 20k producers × ~5 beats ≈ 100k records
	if small.RootRollupApps != big.RootRollupApps {
		t.Fatalf("root rollup state moved with the fleet: %d apps at 2k producers, %d at 20k",
			small.RootRollupApps, big.RootRollupApps)
	}
	marginal := (float64(big.HeapBytes) - float64(small.HeapBytes)) / float64(20_000-2_000)
	t.Logf("scale: marginal heap cost %.0f bytes/producer at equal record volume", marginal)
	if marginal > 1024 {
		t.Fatalf("10× producers at equal record volume cost %.0f bytes each — relay state is not O(apps)", marginal)
	}
}

// BenchmarkScale publishes the PR-scale run's budget metrics for
// tools/benchgate: p99 virtual delivery latency in milliseconds and live
// heap bytes per producer, gated by require.json ceilings.
func BenchmarkScale(b *testing.B) {
	b.Run("p10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc := GenerateScale(1, 10_000)
			st, err := sc.Run()
			if err != nil {
				b.Fatalf("SCALE_SEED=1: %v", err)
			}
			b.ReportMetric(float64(st.P99.Milliseconds()), "p99-vms")
			b.ReportMetric(st.BytesPerProducer, "bytes/producer")
		}
	})
}
