package hbnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
)

func TestRollupWireRoundTrip(t *testing.T) {
	// time.Unix, like the decoder's, so DeepEqual sees one Location.
	base := time.Unix(1234, 567)
	in := RollupBatch{
		Cursor: 42,
		Missed: 3,
		Rollups: []observer.Rollup{
			{
				App: "video", Start: base, End: base.Add(time.Second),
				Records: 100, Missed: 2, Count: 102,
				Rate: heartbeat.Rate{PerSec: 99.5, Beats: 100, Span: 995 * time.Millisecond,
					FirstSeq: 3, LastSeq: 102},
				RateOK:      true,
				MinInterval: 9 * time.Millisecond, MaxInterval: 11 * time.Millisecond,
				MeanInterval: 10 * time.Millisecond,
			},
			{App: "silent", Start: base, End: base.Add(time.Second)},
			{
				App: "one-beat", Start: base.Add(time.Second), End: base.Add(2 * time.Second),
				Records: 1, Count: 7,
				Rate:         heartbeat.Rate{FirstSeq: 7, LastSeq: 7},
				MeanInterval: 250 * time.Millisecond,
				MinInterval:  250 * time.Millisecond,
				MaxInterval:  250 * time.Millisecond,
			},
		},
	}
	body := appendRollups(nil, in)
	if body[0] != frameRollup {
		t.Fatalf("frame type %#x", body[0])
	}
	out, err := decodeRollups(body[1:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}

	// Truncations must error, never panic or fabricate.
	for cut := 1; cut < len(body)-1; cut += 7 {
		if _, err := decodeRollups(body[1 : len(body)-cut]); err == nil {
			t.Fatalf("truncation by %d decoded without error", cut)
		}
	}
}

// relayPair builds a relay over n in-process heartbeats, runs it, and
// publishes both feeds on a live server.
func relayPair(t *testing.T, n int, rollupEvery time.Duration) ([]*heartbeat.Heartbeat, *Relay, string) {
	t.Helper()
	r := NewRelay(WithRollupInterval(rollupEvery))
	hbs := make([]*heartbeat.Heartbeat, n)
	for i := range hbs {
		hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<14))
		if err != nil {
			t.Fatal(err)
		}
		hbs[i] = hb
		t.Cleanup(func() { hb.Close() })
		if err := r.AddUpstream(string(rune('a'+i)), observer.HeartbeatStream(hb)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done; r.Close() })

	srv := NewServer()
	if err := r.PublishOn(srv, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	return hbs, r, startServer(t, srv)
}

// The merged feed: every upstream's records arrive exactly once through
// one connection, re-sequenced densely, attributed to hop-local producer
// ids.
func TestRelayMergedFanIn(t *testing.T) {
	const perApp = 200
	hbs, _, addr := relayPair(t, 3, 50*time.Millisecond)

	c, err := Dial(addr, "merged")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < perApp; i++ {
		for _, hb := range hbs {
			hb.Beat()
		}
	}
	for _, hb := range hbs {
		hb.Flush()
	}

	recs, missed := collect(t, c, func(recs []heartbeat.Record, missed uint64) bool {
		return len(recs)+int(missed) >= 3*perApp
	})
	if missed != 0 {
		t.Fatalf("missed %d records with ample retention", missed)
	}
	assertDense(t, recs, 0)
	perProducer := map[int32]int{}
	for _, r := range recs {
		perProducer[r.Producer]++
	}
	for id := int32(0); id < 3; id++ {
		if perProducer[id] != perApp {
			t.Fatalf("producer %d: %d records, want %d (by producer: %v)", id, perProducer[id], perApp, perProducer)
		}
	}
}

// The rollup feed: downsampled per-app windows conserve counts and carry
// usable rates.
func TestRelayRollups(t *testing.T) {
	const perApp = 150
	hbs, _, addr := relayPair(t, 2, 20*time.Millisecond)

	c, err := DialRollup(addr, "rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	go func() {
		for i := 0; i < perApp; i++ {
			for _, hb := range hbs {
				hb.Beat()
			}
			time.Sleep(200 * time.Microsecond)
		}
		for _, hb := range hbs {
			hb.Flush()
		}
		close(stop)
	}()

	perAppRecs := map[string]uint64{}
	var sawRate bool
	deadline := time.Now().Add(10 * time.Second)
	for perAppRecs["a"] < perApp || perAppRecs["b"] < perApp {
		if time.Now().After(deadline) {
			t.Fatalf("rollups incomplete: %v", perAppRecs)
		}
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		rb, err := c.NextRollups(ctx)
		cancel()
		if err != nil {
			t.Fatalf("NextRollups: %v (got %v)", err, perAppRecs)
		}
		if rb.Missed != 0 {
			t.Fatalf("lapped %d emissions in a short run", rb.Missed)
		}
		for _, r := range rb.Rollups {
			perAppRecs[r.App] += r.Records
			if r.Missed != 0 {
				t.Fatalf("rollup reports %d missed with ample retention: %+v", r.Missed, r)
			}
			if r.RateOK {
				sawRate = true
				if r.Rate.PerSec <= 0 || math.IsNaN(r.Rate.PerSec) {
					t.Fatalf("bogus rollup rate: %+v", r.Rate)
				}
			}
		}
	}
	<-stop
	if perAppRecs["a"] != perApp || perAppRecs["b"] != perApp {
		t.Fatalf("rollup records %v, want %d each", perAppRecs, perApp)
	}
	if !sawRate {
		t.Fatal("no rollup ever carried a rate")
	}
}

// Relays compose: a root relay dials a leaf relay's merged feed, and the
// records survive both hops exactly once.
func TestRelayTree(t *testing.T) {
	const perApp = 100
	hbs, _, leafAddr := relayPair(t, 2, 25*time.Millisecond)

	root := NewRelay(WithRollupInterval(25 * time.Millisecond))
	if _, err := root.DialUpstream("leaf", leafAddr, "merged"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); root.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done; root.Close() })
	srv := NewServer()
	if err := root.PublishOn(srv, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	rootAddr := startServer(t, srv)

	c, err := Dial(rootAddr, "merged")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < perApp; i++ {
		for _, hb := range hbs {
			hb.Beat()
		}
	}
	for _, hb := range hbs {
		hb.Flush()
	}

	recs, missed := collect(t, c, func(recs []heartbeat.Record, missed uint64) bool {
		return len(recs)+int(missed) >= 2*perApp
	})
	if missed != 0 {
		t.Fatalf("missed %d across the tree", missed)
	}
	assertDense(t, recs, 0)
}

// Satellite: downsampled windows account lapped records in Missed
// identically to raw subscriptions — delivered + missed equals the
// producer's published head on both paths — including when the records
// were lapped during a relay upstream reconnect.
func TestRollupMissedParityUnderLap(t *testing.T) {
	// A deliberately tiny ring so the producer laps it easily.
	hb, err := heartbeat.New(8, heartbeat.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	p := newProxy(t, startServer(t, srv))

	relay := NewRelay(WithRollupInterval(20 * time.Millisecond))
	up, err := relay.DialUpstream("app", p.addr(), "app",
		WithReconnectBackoff(5*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rctx, rcancel := context.WithCancel(context.Background())
	rdone := make(chan struct{})
	go func() { defer close(rdone); relay.Run(rctx) }()
	defer func() { rcancel(); <-rdone; relay.Close() }()
	rsrv := NewServer()
	if err := relay.PublishOn(rsrv, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	relayAddr := startServer(t, rsrv)

	rollups, err := DialRollup(relayAddr, "rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer rollups.Close()
	mergedC, err := Dial(relayAddr, "merged")
	if err != nil {
		t.Fatal(err)
	}
	defer mergedC.Close()

	beat := func(n int) {
		for i := 0; i < n; i++ {
			hb.Beat()
			if i%16 == 15 {
				hb.Flush()
				time.Sleep(time.Millisecond)
			}
		}
		hb.Flush()
	}

	beat(300)
	// A sustained outage: the relay's upstream connection is cut and new
	// dials are refused while the producer laps its 64-slot ring many
	// times over; the reconnect resumes from the cursor and the gap must
	// surface as Missed — in the rollups exactly as in a raw resume.
	p.setPaused(true)
	p.cut()
	for i := 0; i < 1000; i++ {
		hb.Beat()
	}
	hb.Flush()
	time.Sleep(50 * time.Millisecond)
	p.setPaused(false)
	beat(300)

	// Wait until the relay has caught up with the producer's full head.
	total := hb.Count()
	deadline := time.Now().Add(10 * time.Second)
	for up.Cursor() < total {
		if time.Now().After(deadline) {
			t.Fatalf("relay upstream stuck at cursor %d of %d", up.Cursor(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(60 * time.Millisecond) // at least one rollup flush past the tail

	// Raw parity reference: a fresh subscription from zero over the same
	// producer observes delivered + missed == head.
	sub := hb.SubscribeFrom(context.Background(), 0)
	defer sub.Close()
	var rawDelivered, rawMissed uint64
	for {
		recs, ok := sub.Poll()
		if !ok {
			break
		}
		rawDelivered += uint64(len(recs))
	}
	rawMissed = sub.Missed()
	simcheck.RequireConserved(t, "raw subscription", rawDelivered, rawMissed, total)
	if rawMissed == 0 {
		t.Fatal("test did not force a lap; tighten the ring")
	}

	// Rollup path: sum of Records and Missed across every emission. The
	// sums can never exceed the head if accounting is right, so collecting
	// until they reach it (or time runs out) asserts exact conservation —
	// via the same simcheck.RollupAccount the scenario matrix uses.
	var account simcheck.RollupAccount
	for account.Records+account.Missed < total {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		rb, err := rollups.NextRollups(ctx)
		cancel()
		if err != nil {
			t.Fatalf("NextRollups at %d + %d of %d: %v", account.Records, account.Missed, total, err)
		}
		if rb.Missed != 0 {
			// Lost emissions would make the sums below unreachable; fail
			// with the cause rather than spinning to the deadline.
			t.Fatalf("rollup emissions lapped in a short run: %d", rb.Missed)
		}
		account.AbsorbRollups(rb.Rollups, rb.Missed)
	}
	if err := account.CheckConserved("rollups", total); err != nil {
		t.Fatal(err)
	}
	if account.Missed == 0 {
		t.Fatal("rollups hid the lap entirely")
	}

	// Merged-feed subscriber: same conservation through the replay ring.
	mgRecs, mgMissed := collect(t, mergedC, func(recs []heartbeat.Record, missed uint64) bool {
		return uint64(len(recs))+missed >= total
	})
	simcheck.RequireConserved(t, "merged feed", uint64(len(mgRecs)), mgMissed, total)
	// And the relay delivered exactly what it saw: its merged head is the
	// producer's head (records it got plus losses it was told about).
	if relay.MergedHead() != total {
		t.Fatalf("relay merged head %d, want %d", relay.MergedHead(), total)
	}
}

// A relay that loses its server (listener and all connections) and
// re-publishes the same feeds on the same address resumes every
// subscriber from its cursor: the forced-outage path of examples/fleet,
// in-process.
func TestRelayServerOutageResume(t *testing.T) {
	const perApp = 120
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()

	relay := NewRelay(WithRollupInterval(20 * time.Millisecond))
	if err := relay.AddUpstream("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv1 := NewServer()
	if err := relay.PublishOn(srv1, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(l)

	c, err := Dial(addr, "merged", WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	beat := func(n int) {
		for i := 0; i < n; i++ {
			hb.Beat()
		}
		hb.Flush()
	}
	beat(perApp)
	got, _ := collect(t, c, func(recs []heartbeat.Record, missed uint64) bool {
		return len(recs) >= perApp
	})

	// The outage: the server dies, the relay (and its histories) lives.
	srv1.Close()
	beat(perApp)

	// Service restored on the same address by a fresh Server over the SAME
	// relay.
	var l2 net.Listener
	for tries := 0; ; tries++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if tries > 100 {
			t.Fatalf("re-listen on %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := NewServer()
	if err := relay.PublishOn(srv2, "merged", "rollup"); err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	t.Cleanup(func() { srv2.Close() })

	rest, missed := collect(t, c, func(recs []heartbeat.Record, missed uint64) bool {
		return len(recs) >= perApp
	})
	if missed != 0 {
		t.Fatalf("missed %d across the outage with ample retention", missed)
	}
	got = append(got, rest...)
	assertDense(t, got, 0)
	if len(got) != 2*perApp {
		t.Fatalf("got %d records, want %d", len(got), 2*perApp)
	}
	if c.Reconnects() == 0 {
		t.Fatal("the outage never forced a reconnect")
	}
}

// StreamFeed: one live single-consumer stream fans out to many
// subscribers, each with an independent cursor, and ends cleanly.
func TestStreamFeed(t *testing.T) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	sf := NewStreamFeed(observer.HeartbeatStream(hb), 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go sf.Run(ctx)

	srv := NewServer()
	if err := srv.Publish("app", sf.Feed()); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	c1, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	const n = 250
	for i := 0; i < n; i++ {
		hb.Beat()
	}
	hb.Close() // flushes, then ends the source stream → EOF downstream

	for _, c := range []*Client{c1, c2} {
		recs, missed := collect(t, c, func(recs []heartbeat.Record, missed uint64) bool {
			return len(recs)+int(missed) >= n
		})
		if missed != 0 {
			t.Fatalf("missed %d", missed)
		}
		assertDense(t, recs, 0)
		// After the tail, the feed must end.
		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := c.Next(dctx)
		dcancel()
		if !errors.Is(err, io.EOF) {
			t.Fatalf("after close: %v, want EOF", err)
		}
	}
}

// rejectedStream always fails terminally, like a Client whose
// subscription the server refused.
type rejectedStream struct{}

func (rejectedStream) Next(context.Context) (observer.Batch, error) {
	return observer.Batch{}, fmt.Errorf("%w by server: feed gone", ErrRejected)
}

// A terminally rejected upstream is reported once and retired — not
// re-reported every interval forever.
func TestRelayRetiresRejectedUpstream(t *testing.T) {
	errs := make(chan error, 16)
	relay := NewRelay(
		WithRollupInterval(10*time.Millisecond),
		WithRelayOnError(func(app string, err error) { errs <- err }),
	)
	defer relay.Close()
	if err := relay.AddUpstream("gone", rejectedStream{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done }()

	select {
	case err := <-errs:
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("reported %v, want ErrRejected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rejection never reported")
	}
	// Many intervals later: no re-reports.
	time.Sleep(100 * time.Millisecond)
	if n := len(errs); n != 0 {
		t.Fatalf("rejected upstream re-reported %d times", n)
	}
}

// Kind mismatches are refused permanently, not retried forever.
func TestRollupKindMismatch(t *testing.T) {
	hbs, _, addr := relayPair(t, 1, 50*time.Millisecond)
	hbs[0].Beat()
	hbs[0].Flush()

	// DialRollup against the raw merged feed: terminal ErrRejected.
	c, err := DialRollup(addr, "merged")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.NextRollups(ctx); !errors.Is(err, ErrRejected) {
		t.Fatalf("rollup dial of raw feed: %v, want ErrRejected", err)
	}

	// Dial against the rollup feed: also terminal.
	c2, err := Dial(addr, "rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if _, err := c2.Next(ctx2); !errors.Is(err, ErrRejected) {
		t.Fatalf("raw dial of rollup feed: %v, want ErrRejected", err)
	}
}

// Tentpole: hierarchical rollup compaction. A root relay subscribes to a
// leaf relay's ROLLUP feed instead of its raw merged feed, folds the
// child's per-app windows through a RollupCompactor, and re-exports them
// as its own compacted feed — so an interior node's rollup state is
// O(apps), independent of the producer count below, while Records+Missed
// still conserve end to end.
func TestRelayRollupCompaction(t *testing.T) {
	const perApp = 120
	hbs, _, leafAddr := relayPair(t, 2, 20*time.Millisecond)

	root := NewRelay(WithRollupInterval(20 * time.Millisecond))
	if _, err := root.DialRollupUpstream("leaf", leafAddr, "rollup"); err != nil {
		t.Fatal(err)
	}
	if err := root.AddRollupUpstream("leaf", nil); err == nil {
		t.Fatal("duplicate rollup upstream accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); root.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done; root.Close() })
	srv := NewServer()
	if err := srv.PublishRollup("apps", root.CompactedFeed()); err != nil {
		t.Fatal(err)
	}
	rootAddr := startServer(t, srv)

	c, err := DialRollup(rootAddr, "apps")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < perApp; i++ {
		for _, hb := range hbs {
			hb.Beat()
		}
	}
	for _, hb := range hbs {
		hb.Flush()
	}

	var account simcheck.RollupAccount
	sums := map[string]uint64{}
	deadline := time.Now().Add(10 * time.Second)
	for sums["a"]+sums["b"] < 2*perApp {
		if time.Now().After(deadline) {
			t.Fatalf("compacted rollups incomplete: %v", sums)
		}
		dctx, dcancel := context.WithDeadline(context.Background(), deadline)
		rb, err := c.NextRollups(dctx)
		dcancel()
		if err != nil {
			t.Fatalf("NextRollups: %v (got %v)", err, sums)
		}
		account.AbsorbRollups(rb.Rollups, rb.Missed)
		for _, r := range rb.Rollups {
			sums[r.App] += r.Records + r.Missed
		}
	}
	if sums["a"] != perApp || sums["b"] != perApp {
		t.Fatalf("per-app compacted counts %v, want %d each", sums, perApp)
	}
	if err := account.CheckConserved("compacted feed", 2*perApp); err != nil {
		t.Fatal(err)
	}
	if missed := root.RollupUpstreamMissed(); missed != 0 {
		t.Fatalf("root lapped %d child emissions in a short run", missed)
	}
	// The O(apps) claim, directly: the root tracks the fleet's two
	// applications, yet has zero raw upstreams of its own.
	if apps := root.RollupApps(); !reflect.DeepEqual(apps, []string{"a", "b"}) {
		t.Fatalf("RollupApps() = %v, want [a b]", apps)
	}
	if raw := root.Apps(); len(raw) != 0 {
		t.Fatalf("root re-tracks raw upstreams %v through a rollup subscription", raw)
	}
}
