package wallclock_test

import (
	"testing"

	"repro/tools/hbvet/internal/analysistest"
	"repro/tools/hbvet/internal/passes/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer, "a", "sim/inside")
}
