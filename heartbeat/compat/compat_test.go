package compat_test

import (
	"testing"
	"time"

	"repro/heartbeat"
	"repro/heartbeat/compat"
	"repro/sim"
)

func newHB(t *testing.T) (*compat.HB, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock(time.Time{})
	hb, err := compat.Initialize(10, false, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	return hb, clk
}

func TestGlobalRoundTrip(t *testing.T) {
	hb, clk := newHB(t)
	for i := 0; i < 10; i++ {
		if err := hb.Heartbeat(int64(i), false, 0); err != nil {
			t.Fatal(err)
		}
		clk.Advance(100 * time.Millisecond)
	}
	r, err := hb.CurrentRate(0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r < 9.99 || r > 10.01 {
		t.Fatalf("CurrentRate = %v, want 10", r)
	}
	recs, err := hb.GetHistory(3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Tag != 9 {
		t.Fatalf("GetHistory = %+v", recs)
	}
}

func TestTargets(t *testing.T) {
	hb, _ := newHB(t)
	if hb.GetTargetMin(false) != 0 || hb.GetTargetMax(false) != 0 {
		t.Fatal("targets nonzero before SetTargetRate")
	}
	if err := hb.SetTargetRate(2.5, 3.5, false); err != nil {
		t.Fatal(err)
	}
	if hb.GetTargetMin(false) != 2.5 || hb.GetTargetMax(false) != 3.5 {
		t.Fatalf("targets = %v, %v", hb.GetTargetMin(false), hb.GetTargetMax(false))
	}
}

func TestLocalHeartbeats(t *testing.T) {
	hb, clk := newHB(t)
	tid := hb.RegisterThread("worker")
	for i := 0; i < 5; i++ {
		if err := hb.Heartbeat(0, true, tid); err != nil {
			t.Fatal(err)
		}
		clk.Advance(200 * time.Millisecond)
	}
	r, err := hb.CurrentRate(0, true, tid)
	if err != nil {
		t.Fatal(err)
	}
	if r < 4.99 || r > 5.01 {
		t.Fatalf("local rate = %v, want 5", r)
	}
	// Global history must be untouched by local beats.
	if hb.App().Count() != 0 {
		t.Fatalf("global count = %d", hb.App().Count())
	}
	recs, err := hb.GetHistory(10, true, tid)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("local history = %d records", len(recs))
	}
}

func TestUnknownThreadKey(t *testing.T) {
	hb, _ := newHB(t)
	if err := hb.Heartbeat(0, true, 42); err == nil {
		t.Fatal("beat on unknown thread key accepted")
	}
	if _, err := hb.CurrentRate(0, true, 42); err == nil {
		t.Fatal("rate on unknown thread key accepted")
	}
	if _, err := hb.GetHistory(1, true, 42); err == nil {
		t.Fatal("history on unknown thread key accepted")
	}
}

func TestInitializeValidation(t *testing.T) {
	if _, err := compat.Initialize(-3, false); err == nil {
		t.Fatal("negative window accepted")
	}
}
