package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"name", "value"},
		Rows:   [][]string{{"plain", "1"}, {"with,comma", "2"}, {"with\"quote", "3"}},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTableRenderAligned(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "benchmark"},
		Rows:   [][]string{{"x264", "1"}, {"bs", "22"}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Fatalf("render = %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "T" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a     benchmark") {
		t.Fatalf("header = %q", lines[1])
	}
}

func TestSeriesAddAndCSV(t *testing.T) {
	s := &Series{XLabel: "beat", Cols: []string{"rate", "cores"}}
	s.Add(1, 2.5, 1)
	s.Add(2, 3.25, 2)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "beat,rate,cores\n1,2.5000,1\n2,3.2500,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestSeriesAddPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	s := &Series{Cols: []string{"one"}}
	s.Add(1, 2, 3)
}

func TestChartDrawsAllColumns(t *testing.T) {
	s := &Series{Title: "demo", XLabel: "x", Cols: []string{"up", "down"}}
	for i := 0; i < 50; i++ {
		s.Add(float64(i), float64(i), float64(50-i))
	}
	var buf bytes.Buffer
	s.Chart(&buf, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "*=up") || !strings.Contains(out, "+=down") {
		t.Fatalf("chart missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("chart missing marks")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(&Series{Title: "empty", Cols: []string{"y"}}).Chart(&buf, 40, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatalf("empty chart = %q", buf.String())
	}
	// Constant values and NaN must not panic or divide by zero.
	s := &Series{Title: "flat", Cols: []string{"y"}}
	s.Add(1, 5)
	s.Add(2, 5)
	s.Add(3, math.NaN())
	buf.Reset()
	s.Chart(&buf, 40, 10)
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("flat chart drew nothing")
	}
	// All-NaN series.
	n := &Series{Title: "nan", Cols: []string{"y"}}
	n.Add(1, math.NaN())
	buf.Reset()
	n.Chart(&buf, 40, 10)
}

func TestChartClampsTinyDimensions(t *testing.T) {
	s := &Series{Cols: []string{"y"}}
	s.Add(0, 1)
	s.Add(1, 2)
	var buf bytes.Buffer
	s.Chart(&buf, 1, 1) // must clamp, not panic
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" || trimFloat(3.5) != "3.5000" || trimFloat(-2) != "-2" {
		t.Fatalf("trimFloat: %q %q %q", trimFloat(3), trimFloat(3.5), trimFloat(-2))
	}
}
