package video

import (
	"testing"
)

func TestSourceDeterministic(t *testing.T) {
	prof := Uniform(Complexity{Motion: 2, Detail: 10, Noise: 3})
	a := NewSource(64, 48, 7, prof)
	b := NewSource(64, 48, 7, prof)
	for i := 0; i < 5; i++ {
		fa, ca := a.Next()
		fb, cb := b.Next()
		if ca != cb {
			t.Fatalf("complexities diverge at %d", i)
		}
		for j := range fa.Pix {
			if fa.Pix[j] != fb.Pix[j] {
				t.Fatalf("frames diverge at frame %d pixel %d", i, j)
			}
		}
	}
	c := NewSource(64, 48, 8, prof)
	f7, _ := NewSource(64, 48, 7, prof).Next()
	f8, _ := c.Next()
	same := true
	for j := range f7.Pix {
		if f7.Pix[j] != f8.Pix[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestFramesChangeOverTime(t *testing.T) {
	src := NewSource(64, 48, 1, Uniform(Complexity{Motion: 3, Detail: 10, Noise: 0}))
	f0, _ := src.Next()
	f1, _ := src.Next()
	diff := 0
	for i := range f0.Pix {
		if f0.Pix[i] != f1.Pix[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("consecutive frames identical despite motion")
	}
}

func TestStaticSceneWithoutMotion(t *testing.T) {
	src := NewSource(64, 48, 1, Uniform(Complexity{Motion: 0, Detail: 10, Noise: 0}))
	f0, _ := src.Next()
	f1, _ := src.Next()
	for i := range f0.Pix {
		if f0.Pix[i] != f1.Pix[i] {
			t.Fatal("zero-motion zero-noise scene changed between frames")
		}
	}
}

func TestPhasesProfile(t *testing.T) {
	p := Phases(
		[]Complexity{{Motion: 1}, {Motion: 2}, {Motion: 3}},
		[]int{100, 330},
	)
	cases := map[int]float64{0: 1, 99: 1, 100: 2, 329: 2, 330: 3, 1000: 3}
	for frame, motion := range cases {
		if got := p(frame).Motion; got != motion {
			t.Errorf("phase at frame %d = %v, want %v", frame, got, motion)
		}
	}
}

func TestPhasesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	Phases([]Complexity{{}, {}}, []int{1, 2})
}

func TestAtClamps(t *testing.T) {
	f := NewFrame(4, 3)
	for i := range f.Pix {
		f.Pix[i] = uint8(i)
	}
	if f.At(-5, -5) != f.At(0, 0) {
		t.Fatal("negative clamp broken")
	}
	if f.At(100, 100) != f.At(3, 2) {
		t.Fatal("positive clamp broken")
	}
	if f.At(2, 1) != f.Pix[1*4+2] {
		t.Fatal("interior lookup broken")
	}
}

func TestFrameIndexAdvances(t *testing.T) {
	src := NewSource(32, 32, 1, Uniform(Complexity{}))
	if src.FrameIndex() != 0 {
		t.Fatal("initial index nonzero")
	}
	src.Next()
	src.Next()
	if src.FrameIndex() != 2 {
		t.Fatalf("index = %d, want 2", src.FrameIndex())
	}
}
