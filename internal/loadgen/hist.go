package loadgen

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// Hist is a streaming histogram for delivery-latency accounting at scale:
// fixed memory however many samples arrive, O(1) insert, quantiles with a
// bounded relative error, and exact (integer-sum) merges. The bucketing is
// logarithmic with 2^sub linear sub-buckets per octave — the HDR shape —
// so a million observations spanning nanoseconds to minutes fit in a few
// kilobytes while p99 stays within relErr of the true value.
//
// Hist is not safe for concurrent use; each consumer owns one and Merge
// combines them.
type Hist struct {
	sub    uint // sub-bucket bits; values < 1<<sub are recorded exactly
	counts []uint64
	n      uint64
}

// defaultSubBits gives a relative quantile error <= 2^(1-7) ≈ 1.6%.
const defaultSubBits = 7

// NewHist returns a histogram with the default precision.
func NewHist() *Hist { return NewHistPrecision(defaultSubBits) }

// NewHistPrecision returns a histogram with 2^sub linear sub-buckets per
// octave: values below 2^sub are exact, values above have relative error
// at most 2^(1-sub). sub must be in [1, 20] (beyond 20 the table stops
// being "a few kilobytes").
func NewHistPrecision(sub uint) *Hist {
	if sub < 1 || sub > 20 {
		panic(fmt.Sprintf("loadgen: NewHistPrecision sub = %d, want 1..20", sub))
	}
	return &Hist{sub: sub, counts: make([]uint64, (64-sub+1)<<sub)}
}

// index maps a value to its bucket: octave k = max(0, bits needed beyond
// the sub-bucket resolution), then the top sub bits of v select the linear
// sub-bucket within the octave.
func (h *Hist) index(v uint64) int {
	k := uint(bits.Len64(v|(1<<h.sub-1))) - h.sub
	return int(k<<h.sub) + int(v>>k)
}

// bucketMax returns the largest value the bucket holds — the value
// Quantile reports, so reported quantiles never understate the truth.
func (h *Hist) bucketMax(idx int) int64 {
	k := uint(idx) >> h.sub
	m := uint64(idx) & (1<<h.sub - 1)
	if k == 0 {
		return int64(m)
	}
	return int64((m+1)<<k - 1)
}

// Observe records one value. Negative values (clock skew between
// concurrent hops) clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[h.index(uint64(v))]++
	h.n++
}

// ObserveDuration records d in nanoseconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n }

// Merge folds o into h: pure integer sums, so merging is exact,
// commutative and associative — shard histograms per consumer and combine
// at the end. The two histograms must share a precision.
func (h *Hist) Merge(o *Hist) error {
	if o.sub != h.sub {
		return fmt.Errorf("loadgen: merging histograms of precision %d and %d", o.sub, h.sub)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	return nil
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bucket max of the ceil(q*n)-th smallest observation. Zero observations
// yield 0; a single observation answers every q. q outside (0,1] clamps.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(1)
	if r := math.Ceil(q * float64(h.n)); r >= 1 {
		rank = h.n // q at or above 1 (or n huge): the maximum
		if r < float64(h.n) {
			rank = uint64(r)
		}
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.bucketMax(i)
		}
	}
	return h.bucketMax(len(h.counts) - 1) // unreachable: cum ends at n
}

// QuantileDuration is Quantile in nanoseconds, as a Duration.
func (h *Hist) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}

// RelErr returns the histogram's worst-case relative quantile error for
// values at or above the exact range.
func (h *Hist) RelErr() float64 { return math.Pow(2, 1-float64(h.sub)) }
