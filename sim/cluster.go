package sim

import (
	"fmt"
	"time"
)

// Cluster is a discrete-event co-simulator for several applications
// sharing one multicore machine — the substrate for the paper's
// multi-application claim (§1: "when running multiple Heartbeat-enabled
// applications, it allows system resources to be reallocated to provide
// the best global outcome"). Each Proc executes a stream of work items on
// its granted cores; the cluster advances the shared clock from one item
// completion to the next, so concurrently running applications progress at
// rates determined by their allocations.
//
// Cluster and Proc are not safe for concurrent use; drive them from one
// experiment loop.
type Cluster struct {
	clock    *Clock
	coreRate float64
	total    int
	procs    []*Proc
}

// Proc is one application's execution context in a Cluster.
type Proc struct {
	cluster   *Cluster
	name      string
	cores     int
	pf        float64
	remaining float64 // ops left in the current item
	idle      bool
	next      func() (Work, bool)
	completed uint64
}

// NewCluster creates a cluster with the given shared core count and
// per-core op rate.
func NewCluster(clock *Clock, totalCores int, coreRate float64) *Cluster {
	if clock == nil {
		panic("sim: nil clock")
	}
	if totalCores <= 0 || coreRate <= 0 {
		panic(fmt.Sprintf("sim: invalid cluster (cores=%d, coreRate=%g)", totalCores, coreRate))
	}
	return &Cluster{clock: clock, coreRate: coreRate, total: totalCores}
}

// Clock returns the shared clock.
func (c *Cluster) Clock() *Clock { return c.clock }

// TotalCores returns the shared core count.
func (c *Cluster) TotalCores() int { return c.total }

// UsedCores returns the sum of all current grants.
func (c *Cluster) UsedCores() int {
	used := 0
	for _, p := range c.procs {
		used += p.cores
	}
	return used
}

// AddProc registers an application. next supplies its successive work
// items; returning false parks the proc idle (it can be resumed with
// Resume). The initial allocation is clamped to [1, TotalCores]; keeping
// the sum of grants within TotalCores is the caller's (scheduler's)
// responsibility, checked at every Step.
func (c *Cluster) AddProc(name string, initialCores int, next func() (Work, bool)) *Proc {
	p := &Proc{cluster: c, name: name, pf: 1, next: next}
	p.setCoresClamped(initialCores)
	c.procs = append(c.procs, p)
	p.fetch()
	return p
}

// Name returns the proc's label.
func (p *Proc) Name() string { return p.name }

// Cores returns the proc's current grant.
func (p *Proc) Cores() int { return p.cores }

// Completed returns how many work items the proc has finished.
func (p *Proc) Completed() uint64 { return p.completed }

// Idle reports whether the proc has no work.
func (p *Proc) Idle() bool { return p.idle }

// SetCores grants n cores, clamped to [1, cluster total], and returns the
// effective grant.
func (p *Proc) SetCores(n int) int {
	p.setCoresClamped(n)
	return p.cores
}

func (p *Proc) setCoresClamped(n int) {
	if n < 1 {
		n = 1
	}
	if n > p.cluster.total {
		n = p.cluster.total
	}
	p.cores = n
}

// Resume re-arms an idle proc (its next function will be consulted again).
func (p *Proc) Resume() {
	if p.idle {
		p.idle = false
		p.fetch()
	}
}

// fetch pulls the next work item.
func (p *Proc) fetch() {
	w, ok := p.next()
	if !ok || w.Ops <= 0 {
		p.idle = true
		p.remaining = 0
		return
	}
	p.pf = w.ParallelFrac
	p.remaining = w.Ops
}

// rate returns the proc's current execution speed in ops/second.
func (p *Proc) rate() float64 {
	return p.cluster.coreRate * Speedup(p.cores, p.pf)
}

// Step advances the cluster to the next item completion: every running
// proc progresses for the elapsed interval, and exactly the finishing
// proc(s) fetch new work. It returns false when every proc is idle.
// Step panics if the grants oversubscribe the machine — a scheduler bug.
func (c *Cluster) Step() bool {
	if used := c.UsedCores(); used > c.total {
		panic(fmt.Sprintf("sim: cluster oversubscribed (%d granted, %d cores)", used, c.total))
	}
	// Find the earliest completion among running procs.
	first := time.Duration(-1)
	for _, p := range c.procs {
		if p.idle {
			continue
		}
		d := time.Duration(p.remaining / p.rate() * float64(time.Second))
		if first < 0 || d < first {
			first = d
		}
	}
	if first < 0 {
		return false // all idle
	}
	c.clock.Advance(first)
	dt := first.Seconds()
	for _, p := range c.procs {
		if p.idle {
			continue
		}
		p.remaining -= p.rate() * dt
		// Anything within a nanosecond of done is done (quantization).
		if p.remaining <= p.rate()*1e-9 {
			p.completed++
			p.fetch()
		}
	}
	return true
}

// RunUntil steps until the clock reaches deadline or all procs are idle.
func (c *Cluster) RunUntil(deadline time.Time) {
	for c.clock.Now().Before(deadline) {
		if !c.Step() {
			return
		}
	}
}
