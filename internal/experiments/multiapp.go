package experiments

import (
	"fmt"
	"time"

	"repro/heartbeat"
	"repro/internal/plot"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// MultiApp is the multi-application extension experiment. The paper argues
// (§1, §2.4) that registering goals with the system lets resources be
// "reallocated to provide the best global outcome" when several
// heartbeat-enabled applications compete; its evaluation only schedules one
// application at a time, so this experiment completes the claim: two
// applications with different goals share the eight-core machine, one's
// load quadruples mid-run, and the partitioner keeps BOTH inside their
// windows by shifting cores between them using nothing but heartbeats.
func MultiApp(Options) Result {
	const (
		coreRate = 1e6
		decide   = 2 * time.Second // scheduler polling period
		steps    = 260
		loadStep = 90 // decision step at which app A's load rises
	)
	clk := sim.NewClock(sim.Epoch)
	cluster := sim.NewCluster(clk, 8, coreRate)

	type app struct {
		hb   *heartbeat.Heartbeat
		proc *sim.Proc
	}
	mkApp := func(name string, initial int, min, max float64, ops func(beat uint64) float64, pf float64) *app {
		hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
		if err != nil {
			panic(err)
		}
		if err := hb.SetTarget(min, max); err != nil {
			panic(err)
		}
		a := &app{hb: hb}
		beat := uint64(0)
		a.proc = cluster.AddProc(name, initial, func() (sim.Work, bool) {
			if beat > 0 {
				hb.Beat()
			}
			beat++
			return sim.Work{Ops: ops(beat), ParallelFrac: pf}, true
		})
		return a
	}

	// App A: interactive-style goal 8-10 beats/s, needing 4 cores at first
	// and 6 after its per-beat cost rises ~1.4x. App B: background-style
	// goal 2-3 beats/s, steady on 2 cores. Post-rise the pool is exactly
	// full, so the partitioner must run A right at the feasibility edge.
	loadBoundary := uint64(0) // beat at which A's cost rises; set below
	a := mkApp("A", 1, 8, 10, func(beat uint64) float64 {
		if loadBoundary > 0 && beat > loadBoundary {
			return 0.58e6
		}
		return 0.42e6
	}, 0.95)
	b := mkApp("B", 1, 2, 3, func(uint64) float64 { return 0.8e6 }, 0.90)

	part, err := scheduler.NewPartitioner(8, 10)
	if err != nil {
		panic(err)
	}
	if err := part.Add("A", observer.HeartbeatSource(a.hb), a.proc.SetCores, 1); err != nil {
		panic(err)
	}
	if err := part.Add("B", observer.HeartbeatSource(b.hb), b.proc.SetCores, 1); err != nil {
		panic(err)
	}

	series := &plot.Series{
		Title:  "Extension: two heartbeat applications sharing 8 cores (global reallocation)",
		XLabel: "decision",
		Cols:   []string{"rate_A", "rate_B", "cores_A", "cores_B"},
	}
	bothInWindowBefore, bothInWindowAfter := -1, -1
	for step := 1; step <= steps; step++ {
		if step == loadStep {
			loadBoundary = a.hb.Count() // A's next beats get heavier
		}
		cluster.RunUntil(clk.Now().Add(decide))
		sts, err := part.Step()
		if err != nil {
			panic(err)
		}
		series.Add(float64(step), sts[0].Rate, sts[1].Rate, float64(sts[0].Cores), float64(sts[1].Cores))
		inA := sts[0].RateOK && sts[0].Rate >= 8 && sts[0].Rate <= 10
		inB := sts[1].RateOK && sts[1].Rate >= 2 && sts[1].Rate <= 3
		if inA && inB {
			if step < loadStep && bothInWindowBefore == -1 {
				bothInWindowBefore = step
			}
			if step > loadStep && bothInWindowAfter == -1 {
				bothInWindowAfter = step
			}
		}
	}
	finalA := series.Y[2][len(series.Y[2])-1]
	finalB := series.Y[3][len(series.Y[3])-1]
	return Result{
		ID: "multiapp", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("both apps inside their windows by decision %d (of %d)", bothInWindowBefore, steps),
			fmt.Sprintf("A's load rises 1.4x at decision %d; both back in window by decision %d", loadStep, bothInWindowAfter),
			fmt.Sprintf("final allocation: A=%g cores, B=%g cores (pool of 8, minimum-resource goal)", finalA, finalB),
			"extension beyond the paper's evaluation: completes the §1 multi-application claim",
		},
	}
}
