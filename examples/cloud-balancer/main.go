// Cloud load balancing and failover (§2.6): each server node exposes a
// heartbeat; a balancer routes traffic toward nodes with healthy heart
// rates, detects a flatlined node from its heartbeats alone, fails over,
// and later reclaims it. The paper: "a lack of heartbeats from a
// particular node would indicate that it has failed, and slow or erratic
// heartbeats could indicate that a machine is about to fail".
//
//	go run ./examples/cloud-balancer
package main

import (
	"fmt"
	"log"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

// node is one simulated server: it beats once per served request.
type node struct {
	name     string
	hb       *heartbeat.Heartbeat
	perReq   time.Duration // service time per request
	hung     bool
	source   observer.Source
	classify *observer.Classifier
}

func (n *node) serve() {
	if n.hung {
		return // a hung node consumes the request but never beats
	}
	n.hb.Beat()
}

func main() {
	clk := sim.NewClock(time.Time{})
	mkNode := func(name string, perReq time.Duration) *node {
		hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
		if err != nil {
			log.Fatal(err)
		}
		// Each node advertises the request rate it is provisioned for.
		if err := hb.SetTarget(5, 1000); err != nil {
			log.Fatal(err)
		}
		return &node{
			name: name, hb: hb, perReq: perReq,
			source:   observer.HeartbeatSource(hb),
			classify: &observer.Classifier{Clock: clk, FlatlineFactor: 8},
		}
	}
	nodes := []*node{
		mkNode("node-a", 8*time.Millisecond),
		mkNode("node-b", 12*time.Millisecond),
		mkNode("node-c", 10*time.Millisecond),
	}

	alive := func() []*node {
		var out []*node
		for _, n := range nodes {
			snap, err := n.source.Snapshot(0)
			if err != nil {
				continue
			}
			st := n.classify.Classify(snap)
			if st.Health != observer.Flatlined && st.Health != observer.Dead {
				out = append(out, n)
			}
		}
		return out
	}

	const totalRequests = 3000
	served := map[string]int{}
	rr := 0
	for req := 0; req < totalRequests; req++ {
		// Fault injection: node-b hangs a third of the way in and is
		// repaired at two thirds.
		if req == totalRequests/3 {
			nodes[1].hung = true
			fmt.Printf("req %4d: node-b hangs (stops beating — nothing else announces the failure)\n", req)
		}
		if req == 2*totalRequests/3 {
			nodes[1].hung = false
			fmt.Printf("req %4d: node-b repaired (beats resume)\n", req)
		}

		// The balancer consults heartbeats only — plus an occasional
		// canary probe so repaired nodes get a chance to beat again.
		var n *node
		if req%20 == 0 {
			n = nodes[(req/20)%len(nodes)]
		} else {
			pool := alive()
			if len(pool) == 0 {
				log.Fatal("all nodes flatlined")
			}
			n = pool[rr%len(pool)]
			rr++
		}
		clk.Advance(n.perReq / 3) // three-ish nodes serve concurrently
		n.serve()
		served[n.name]++

		if req%500 == 499 {
			fmt.Printf("req %4d: ", req+1)
			for _, n := range nodes {
				snap, _ := n.source.Snapshot(0)
				st := n.classify.Classify(snap)
				fmt.Printf("%s[%s beats=%d] ", n.name, st.Health, st.Count)
			}
			fmt.Println()
		}
	}

	fmt.Println("\nrequests served per node (note the failover window):")
	for _, n := range nodes {
		fmt.Printf("  %s: %d\n", n.name, served[n.name])
	}
	fmt.Println("node-b lost traffic only while flatlined; detection and recovery both came from heartbeats alone")
}
