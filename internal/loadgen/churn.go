package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// ChurnEvent is one scheduled membership change of one producer: a leave
// (the producer stops beating) or a join (it comes back — or arrives for
// the first time — as the next Life). Life numbers a producer's
// incarnations starting at 1 for the initial one; a rejoin increments it,
// and the pump stamps every record's Tag with the emitting life, so a
// consumer can prove no record was emitted by a life that had already
// ended.
type ChurnEvent struct {
	// At is the event's offset from the run start, in virtual time.
	At       time.Duration
	Producer int
	Join     bool
	// Life is the incarnation the event ends (leave) or begins (join).
	Life int
}

// ChurnSchedule draws a deterministic membership schedule: frac of the
// producers leave somewhere in the middle of a run of length dur, and a
// seeded subset of the leavers rejoins later as Life 2. Events are sorted
// by At (ties by producer), which is the order the pump applies them in.
// The same rng state always yields the same schedule.
func ChurnSchedule(rng *rand.Rand, producers int, frac float64, dur time.Duration) []ChurnEvent {
	n := int(float64(producers) * frac)
	if n <= 0 || producers <= 0 || dur <= 0 {
		return nil
	}
	if n > producers {
		n = producers
	}
	churners := rng.Perm(producers)[:n]
	events := make([]ChurnEvent, 0, 2*n)
	for _, p := range churners {
		leave := time.Duration((0.25 + 0.45*rng.Float64()) * float64(dur))
		events = append(events, ChurnEvent{At: leave, Producer: p, Life: 1})
		if rng.Float64() < 0.7 { // the rest leave for good
			rejoin := leave + time.Duration((0.15+0.6*rng.Float64())*float64(dur-leave))
			events = append(events, ChurnEvent{At: rejoin, Producer: p, Join: true, Life: 2})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Producer < events[j].Producer
	})
	return events
}

// ValidateChurn checks a schedule's well-formedness for a fleet of
// `producers`: producers in range, per-producer events alternate
// leave/join with strictly increasing times, and — the resurrection guard
// — every join begins a life strictly greater than the life the previous
// leave ended. A schedule that passes cannot make a producer beat under a
// stale Life.
func ValidateChurn(events []ChurnEvent, producers int) error {
	type state struct {
		live     bool
		seen     bool
		lastAt   time.Duration
		lastLife int
	}
	states := make(map[int]*state)
	for i, ev := range events {
		if ev.Producer < 0 || ev.Producer >= producers {
			return fmt.Errorf("event %d: producer %d out of range [0,%d)", i, ev.Producer, producers)
		}
		st := states[ev.Producer]
		if st == nil {
			st = &state{live: true, lastLife: 1}
			states[ev.Producer] = st
		}
		if st.seen && ev.At <= st.lastAt {
			return fmt.Errorf("event %d: producer %d at %v not after previous event at %v", i, ev.Producer, ev.At, st.lastAt)
		}
		if ev.Join {
			if st.live {
				return fmt.Errorf("event %d: producer %d joins while live", i, ev.Producer)
			}
			if ev.Life <= st.lastLife {
				return fmt.Errorf("event %d: producer %d rejoins as life %d, stale after life %d", i, ev.Producer, ev.Life, st.lastLife)
			}
			st.live, st.lastLife = true, ev.Life
		} else {
			if !st.live {
				return fmt.Errorf("event %d: producer %d leaves while gone", i, ev.Producer)
			}
			if ev.Life != st.lastLife {
				return fmt.Errorf("event %d: producer %d leave ends life %d, want %d", i, ev.Producer, ev.Life, st.lastLife)
			}
			st.live = false
		}
		st.seen, st.lastAt = true, ev.At
	}
	return nil
}
