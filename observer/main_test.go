package observer_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves goroutines running —
// monitors, watchdogs, and follow loops must all unwind on Stop/cancel.
func TestMain(m *testing.M) { leakcheck.Main(m) }
