package observer_test

import (
	"fmt"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

// An external observer classifies an application's health purely from its
// heartbeats: a healthy app, then the same app after it stops beating.
func ExampleClassifier_Classify() {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(8, 12)
	for i := 0; i < 20; i++ {
		clk.Advance(100 * time.Millisecond) // 10 beats/s
		hb.Beat()
	}

	classifier := &observer.Classifier{Clock: clk}
	source := observer.HeartbeatSource(hb)

	snap, _ := source.Snapshot(0)
	fmt.Println("while beating:", classifier.Classify(snap).Health)

	clk.Advance(30 * time.Second) // the application hangs
	snap, _ = source.Snapshot(0)
	fmt.Println("after hanging:", classifier.Classify(snap).Health)
	// Output:
	// while beating: healthy
	// after hanging: flatlined
}

// A watchdog debounces transient stalls and fires a restart hook on a
// sustained hang (§2.3).
func ExampleWatchdog() {
	dog := &observer.Watchdog{Threshold: 3, OnRestart: func(st observer.Status) {
		fmt.Println("restarting application, health:", st.Health)
	}}
	judgments := []observer.Health{
		observer.Healthy, observer.Flatlined, observer.Healthy, // blip: no restart
		observer.Flatlined, observer.Flatlined, observer.Flatlined, // sustained
	}
	for _, h := range judgments {
		dog.Observe(observer.Status{Health: h})
	}
	fmt.Println("restarts:", dog.Restarts())
	// Output:
	// restarting application, health: flatlined
	// restarts: 1
}

// A Hub multiplexes many named applications into one control loop: each
// gets its own incremental window and classifier, and judgments fan out
// per application. Step() drives it deterministically (simulated clock);
// Run(ctx) is the wall-clock equivalent.
func ExampleHub() {
	clk := sim.NewClock(time.Time{})
	video, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	indexer, _ := heartbeat.New(10, heartbeat.WithClock(clk))

	hub := observer.NewHub(time.Second, nil,
		observer.WithHubClassifier(func(string) *observer.Classifier {
			return &observer.Classifier{Clock: clk}
		}))
	hub.Add("video", observer.HeartbeatStream(video))
	hub.Add("indexer", observer.HeartbeatStream(indexer))

	for i := 0; i < 20; i++ {
		clk.Advance(100 * time.Millisecond) // both beat at 10/s
		video.Beat()
		indexer.Beat()
	}
	// The indexer hangs; video keeps beating.
	for i := 0; i < 300; i++ {
		clk.Advance(100 * time.Millisecond)
		video.Beat()
	}

	for _, ns := range hub.Step() {
		fmt.Printf("%s: %s after %d beats\n", ns.Name, ns.Status.Health, ns.Status.Count)
	}
	// Output:
	// video: healthy after 320 beats
	// indexer: flatlined after 20 beats
}

// A phase detector segments execution into performance regimes from the
// heart rate alone (§2.3, the structure of the paper's Figure 2).
func ExamplePhaseDetector() {
	d := &observer.PhaseDetector{RelThreshold: 0.25, MinSamples: 3}
	for beat := 1; beat <= 300; beat++ {
		rate := 13.0
		if beat > 100 {
			rate = 24.0
		}
		d.Observe(uint64(beat), rate)
	}
	for _, p := range d.Phases() {
		fmt.Printf("phase %d: from beat %d, %.0f beats/s\n", p.Index, p.StartBeat, p.MeanRate)
	}
	// Output:
	// phase 0: from beat 1, 13 beats/s
	// phase 1: from beat 101, 24 beats/s
}
