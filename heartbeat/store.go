package heartbeat

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
)

// store is the global heartbeat history. Implementations retain the most
// recent capacity records and allow concurrent producers and observers.
type store interface {
	// append claims the next sequence number and stores a record.
	append(unixNanos int64, tag int64, producer int32) (seq uint64)
	// total returns the number of records ever appended.
	total() uint64
	// skip claims n sequence numbers without materializing records: the
	// aggregator's accounting for merged records that a bounded history
	// would discard on arrival. Skipped sequence numbers read back as
	// absent.
	skip(n uint64)
	// capacity returns the number of retained records.
	capacity() int
	// last returns up to n of the most recent records, oldest to newest.
	// Records that were overwritten or are mid-write are skipped.
	last(n int) []Record
	// readSince returns the retained records with sequence numbers greater
	// than since, oldest to newest, plus the cursor to resume from. The
	// cursor normally equals the store total; it stops short of a record
	// that is still mid-write so the next readSince retries it, whereas
	// overwritten (or skipped) records are passed over for good — the
	// caller detects that loss as cursor-since exceeding len(records).
	// buf, when its capacity suffices, becomes the backing storage of the
	// returned slice (pass nil for a fresh allocation) — the reuse hook
	// that keeps a hot subscriber's poll loop allocation-free.
	readSince(since uint64, buf []Record) ([]Record, uint64)
}

// lockfreeStore is a ring of seqlock-validated slots. Producers claim a slot
// by atomically incrementing next, bracket their field stores with an odd
// and then an even version stamp, and never block. Observers validate each
// slot's version before and after reading its fields, so a torn read is
// detected and the slot skipped rather than returned corrupt. This mirrors
// the paper's requirement that external software (or hardware) read the
// heartbeat buffers without coordinating with the application.
type lockfreeStore struct {
	slots []lfSlot
	next  atomic.Uint64 // last claimed sequence number
}

type lfSlot struct {
	// ver holds 2*seq when the record for seq is stable in this slot and
	// 2*seq-1 while it is being written. 0 means never written.
	ver  atomic.Uint64
	time atomic.Int64
	tag  atomic.Int64
	prod atomic.Int32
}

func newLockfreeStore(capacity int) *lockfreeStore {
	return &lockfreeStore{slots: make([]lfSlot, capacity)}
}

func (s *lockfreeStore) append(unixNanos int64, tag int64, producer int32) uint64 {
	seq := s.next.Add(1)
	sl := &s.slots[(seq-1)%uint64(len(s.slots))]
	sl.ver.Store(2*seq - 1)
	sl.time.Store(unixNanos)
	sl.tag.Store(tag)
	sl.prod.Store(producer)
	sl.ver.Store(2 * seq)
	return seq
}

func (s *lockfreeStore) total() uint64 { return s.next.Load() }
func (s *lockfreeStore) capacity() int { return len(s.slots) }

// skip advances the sequence counter; the skipped slots keep their stale
// version stamps, so reads of the skipped sequence numbers fail like reads
// of overwritten records.
func (s *lockfreeStore) skip(n uint64) { s.next.Add(n) }

// read returns the record with the given sequence number if it is still
// retained and stable.
func (s *lockfreeStore) read(seq uint64) (Record, bool) {
	if seq == 0 {
		return Record{}, false
	}
	sl := &s.slots[(seq-1)%uint64(len(s.slots))]
	const maxTries = 64
	for tries := 0; tries < maxTries; tries++ {
		v1 := sl.ver.Load()
		switch {
		case v1 == 2*seq-1:
			continue // mid-write; retry
		case v1 != 2*seq:
			return Record{}, false // not yet written, or overwritten
		}
		t := sl.time.Load()
		tag := sl.tag.Load()
		p := sl.prod.Load()
		if sl.ver.Load() == v1 {
			return Record{Seq: seq, Time: time.Unix(0, t), Tag: tag, Producer: p}, true
		}
	}
	return Record{}, false
}

func (s *lockfreeStore) readSince(since uint64, buf []Record) ([]Record, uint64) {
	cur := s.next.Load()
	if cur <= since {
		return nil, cur
	}
	from := since + 1
	if cur-since > uint64(len(s.slots)) {
		from = cur - uint64(len(s.slots)) + 1
	}
	out := buf[:0]
	if uint64(cap(out)) < cur-from+1 {
		out = make([]Record, 0, cur-from+1)
	}
	for seq := from; seq <= cur; seq++ {
		r, ok := s.read(seq)
		if ok {
			out = append(out, r)
			continue
		}
		if s.next.Load() >= seq+uint64(len(s.slots)) {
			continue // lapped (or skipped) while scanning: lost for good
		}
		// Mid-write by a concurrent producer: stop here so the record is
		// retried next call rather than reported lost. The producer's
		// wake fires after its append completes, so a waiting subscriber
		// is re-notified once the record is stable.
		return out, seq - 1
	}
	return out, cur
}

func (s *lockfreeStore) last(n int) []Record {
	if n <= 0 {
		return nil
	}
	cur := s.next.Load()
	if cur == 0 {
		return nil
	}
	if uint64(n) > cur {
		n = int(cur)
	}
	if n > len(s.slots) {
		n = len(s.slots)
	}
	out := make([]Record, 0, n)
	for seq := cur - uint64(n) + 1; seq <= cur; seq++ {
		if r, ok := s.read(seq); ok {
			out = append(out, r)
		}
	}
	return out
}

// lockedStore is the straightforward mutex-guarded variant, matching the
// paper's reference implementation ("a mutex is used to guarantee mutual
// exclusion and ordering"). Kept for the lock-free-vs-locked ablation
// benchmark and as a simple correctness oracle in tests.
type lockedStore struct {
	mu  sync.Mutex
	buf *ring.Buffer[Record]
}

func newLockedStore(capacity int) *lockedStore {
	return &lockedStore{buf: ring.New[Record](capacity)}
}

func (s *lockedStore) append(unixNanos int64, tag int64, producer int32) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.buf.Total() + 1
	s.buf.Push(Record{Seq: seq, Time: time.Unix(0, unixNanos), Tag: tag, Producer: producer})
	return seq
}

func (s *lockedStore) total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Total()
}

func (s *lockedStore) skip(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Skip(n)
}

func (s *lockedStore) capacity() int { return s.buf.Cap() }

func (s *lockedStore) readSince(since uint64, buf []Record) ([]Record, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.buf.Total()
	if cur <= since {
		return nil, cur
	}
	n := cur - since
	if n > uint64(s.buf.Cap()) {
		n = uint64(s.buf.Cap())
	}
	recs := s.buf.Last(int(n))
	out := buf[:0]
	if cap(out) < len(recs) {
		out = make([]Record, 0, len(recs))
	}
	for _, r := range recs {
		// Skipped positions read back as zero Records; they were
		// discarded on arrival and count as lost, like an overwrite.
		if r.Seq != 0 {
			out = append(out, r)
		}
	}
	return out, cur
}

func (s *lockedStore) last(n int) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.buf.Last(n)
	// Skipped positions read back as zero Records; drop them.
	out := recs[:0]
	for _, r := range recs {
		if r.Seq != 0 {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
