// Package parsec provides synthetic stand-ins for the PARSEC benchmarks the
// paper instruments (Table 2, §5.1) and the workload profiles of its
// external-scheduler experiments (Figs 5-7). Each kernel performs the
// benchmark's characteristic computation on procedurally generated data —
// Black-Scholes pricing, particle-filter tracking, simulated annealing,
// content-defined chunking, an iterative solver, nearest-neighbour search,
// an SPH pass, online clustering, Monte-Carlo swaption pricing, and motion
// estimation — so heartbeat overhead and scaling are measured against real
// work, not busy-waiting.
package parsec

import (
	"math"
	"math/rand"

	"repro/internal/video"
	"repro/internal/x264"
)

// Kernel is one benchmark's unit of real work. Implementations are not
// safe for concurrent use; create one Kernel per worker goroutine (they are
// cheap) and drive each with its own *rand.Rand.
type Kernel interface {
	// Name is the PARSEC benchmark name.
	Name() string
	// BeatLabel describes where the paper inserts the heartbeat
	// (Table 2's "Heartbeat Location").
	BeatLabel() string
	// UnitsPerBeat is how many units of work separate heartbeats.
	UnitsPerBeat() int
	// DoUnit performs one unit of work, returning a checksum (so the
	// compiler cannot elide the computation) and the approximate
	// operation count performed.
	DoUnit(rng *rand.Rand) (checksum uint64, ops float64)
}

// Kernels returns one instance of every kernel, in Table 2 order.
func Kernels() []Kernel {
	return []Kernel{
		NewBlackscholes(),
		NewBodytrack(),
		NewCanneal(),
		NewDedup(),
		NewFacesim(),
		NewFerret(),
		NewFluidanimate(),
		NewStreamcluster(),
		NewSwaptions(),
		NewX264Kernel(),
	}
}

// ByName returns the kernel with the given name.
func ByName(name string) (Kernel, bool) {
	for _, k := range Kernels() {
		if k.Name() == name {
			return k, true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------- blackscholes

// Blackscholes prices European options with the Black-Scholes formula,
// PARSEC's blackscholes inner loop.
type Blackscholes struct{}

// NewBlackscholes returns the kernel.
func NewBlackscholes() *Blackscholes { return &Blackscholes{} }

// Name implements Kernel.
func (*Blackscholes) Name() string { return "blackscholes" }

// BeatLabel implements Kernel.
func (*Blackscholes) BeatLabel() string { return "Every 25000 options" }

// UnitsPerBeat implements Kernel (one unit = one option).
func (*Blackscholes) UnitsPerBeat() int { return 25000 }

// cnd is the cumulative normal distribution (Abramowitz & Stegun 26.2.17),
// the same approximation the PARSEC kernel uses.
func cnd(x float64) float64 {
	l := math.Abs(x)
	k := 1 / (1 + 0.2316419*l)
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*
		(0.31938153*k-0.356563782*k*k+1.781477937*k*k*k-
			1.821255978*k*k*k*k+1.330274429*k*k*k*k*k)
	if x < 0 {
		return 1 - w
	}
	return w
}

// DoUnit prices one call and one put.
func (*Blackscholes) DoUnit(rng *rand.Rand) (uint64, float64) {
	s := 50 + rng.Float64()*100 // spot
	k := 50 + rng.Float64()*100 // strike
	r := 0.01 + rng.Float64()*0.05
	v := 0.1 + rng.Float64()*0.4 // volatility
	t := 0.25 + rng.Float64()*2  // years
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / (v * math.Sqrt(t))
	d2 := d1 - v*math.Sqrt(t)
	call := s*cnd(d1) - k*math.Exp(-r*t)*cnd(d2)
	put := k*math.Exp(-r*t)*cnd(-d2) - s*cnd(-d1)
	return math.Float64bits(call) ^ math.Float64bits(put), 120
}

// ---------------------------------------------------------------- bodytrack

// Bodytrack runs a particle-filter tracking step, the heart of PARSEC's
// bodytrack vision workload.
type Bodytrack struct {
	px, py, pw []float64 // particle states and weights
	tx, ty     float64   // true target
}

// NewBodytrack returns the kernel with 128 particles.
func NewBodytrack() *Bodytrack {
	const n = 128
	b := &Bodytrack{px: make([]float64, n), py: make([]float64, n), pw: make([]float64, n)}
	for i := 0; i < n; i++ {
		b.px[i] = float64(i % 16)
		b.py[i] = float64(i / 16)
	}
	b.tx, b.ty = 8, 4
	return b
}

// Name implements Kernel.
func (*Bodytrack) Name() string { return "bodytrack" }

// BeatLabel implements Kernel.
func (*Bodytrack) BeatLabel() string { return "Every frame" }

// UnitsPerBeat implements Kernel (one unit = one frame's filter update).
func (*Bodytrack) UnitsPerBeat() int { return 1 }

// DoUnit propagates, weights, estimates and resamples the particle cloud.
func (b *Bodytrack) DoUnit(rng *rand.Rand) (uint64, float64) {
	n := len(b.px)
	// Target moves.
	b.tx += rng.NormFloat64() * 0.5
	b.ty += rng.NormFloat64() * 0.5
	// Propagate and weight.
	var wsum float64
	for i := 0; i < n; i++ {
		b.px[i] += rng.NormFloat64()
		b.py[i] += rng.NormFloat64()
		dx, dy := b.px[i]-b.tx, b.py[i]-b.ty
		b.pw[i] = math.Exp(-(dx*dx + dy*dy) / 8)
		wsum += b.pw[i]
	}
	if wsum == 0 {
		wsum = 1
	}
	// Estimate.
	var ex, ey float64
	for i := 0; i < n; i++ {
		ex += b.px[i] * b.pw[i] / wsum
		ey += b.py[i] * b.pw[i] / wsum
	}
	// Systematic resample.
	step := wsum / float64(n)
	u := rng.Float64() * step
	var acc float64
	j := 0
	for i := 0; i < n; i++ {
		for acc+b.pw[j] < u && j < n-1 {
			acc += b.pw[j]
			j++
		}
		b.px[i], b.py[i] = b.px[j], b.py[j]
		u += step
	}
	return math.Float64bits(ex) ^ math.Float64bits(ey), float64(n) * 40
}

// ---------------------------------------------------------------- canneal

// Canneal evaluates simulated-annealing element swaps on a netlist grid,
// PARSEC's canneal move loop.
type Canneal struct {
	grid []int32 // element id at each location
	w, h int
	temp float64
}

// NewCanneal returns the kernel on a 64x64 netlist.
func NewCanneal() *Canneal {
	w, h := 64, 64
	g := make([]int32, w*h)
	for i := range g {
		g[i] = int32(i)
	}
	return &Canneal{grid: g, w: w, h: h, temp: 100}
}

// Name implements Kernel.
func (*Canneal) Name() string { return "canneal" }

// BeatLabel implements Kernel.
func (*Canneal) BeatLabel() string { return "Every 1875 moves" }

// UnitsPerBeat implements Kernel (one unit = one move).
func (*Canneal) UnitsPerBeat() int { return 1875 }

// wireCost is the Manhattan attraction of an element to its net neighbours
// (its id's grid position in a reference placement).
func (c *Canneal) wireCost(loc int, id int32) float64 {
	lx, ly := loc%c.w, loc/c.w
	ix, iy := int(id)%c.w, int(id)/c.w
	return math.Abs(float64(lx-ix)) + math.Abs(float64(ly-iy))
}

// DoUnit proposes one swap and accepts it with the Metropolis criterion.
func (c *Canneal) DoUnit(rng *rand.Rand) (uint64, float64) {
	a := rng.Intn(len(c.grid))
	b := rng.Intn(len(c.grid))
	before := c.wireCost(a, c.grid[a]) + c.wireCost(b, c.grid[b])
	after := c.wireCost(a, c.grid[b]) + c.wireCost(b, c.grid[a])
	delta := after - before
	accept := delta < 0 || rng.Float64() < math.Exp(-delta/c.temp)
	if accept {
		c.grid[a], c.grid[b] = c.grid[b], c.grid[a]
	}
	if c.temp > 1 {
		c.temp *= 0.999999
	}
	return uint64(c.grid[a])<<32 | uint64(uint32(c.grid[b])), 60
}

// ---------------------------------------------------------------- dedup

// Dedup performs content-defined chunking with a rolling hash plus FNV-1a
// fingerprinting, PARSEC's dedup pipeline stages.
type Dedup struct {
	buf []byte
}

// NewDedup returns the kernel with a 4 KiB working buffer.
func NewDedup() *Dedup { return &Dedup{buf: make([]byte, 4096)} }

// Name implements Kernel.
func (*Dedup) Name() string { return "dedup" }

// BeatLabel implements Kernel.
func (*Dedup) BeatLabel() string { return "Every \"chunk\"" }

// UnitsPerBeat implements Kernel (one unit = one coarse chunk).
func (*Dedup) UnitsPerBeat() int { return 1 }

// DoUnit fills the buffer, finds content-defined boundaries with a rolling
// hash, and fingerprints each fine-grained chunk.
func (d *Dedup) DoUnit(rng *rand.Rand) (uint64, float64) {
	for i := range d.buf {
		d.buf[i] = byte(rng.Uint32())
	}
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	var roll uint32
	var sum uint64
	fp := uint64(fnvOffset)
	for _, b := range d.buf {
		roll = roll<<1 + uint32(b)
		fp = (fp ^ uint64(b)) * fnvPrime
		if roll&0xfff == 0xfff { // boundary ~ every 4 KiB of entropy
			sum ^= fp
			fp = fnvOffset
		}
	}
	sum ^= fp
	return sum, float64(len(d.buf)) * 6
}

// ---------------------------------------------------------------- facesim

// Facesim runs Jacobi relaxation sweeps over a deformation grid, standing
// in for PARSEC facesim's iterative physics solve.
type Facesim struct {
	a, b []float64
	n    int
}

// NewFacesim returns the kernel on a 32x32 grid.
func NewFacesim() *Facesim {
	n := 32
	f := &Facesim{a: make([]float64, n*n), b: make([]float64, n*n), n: n}
	for i := range f.a {
		f.a[i] = float64(i % 17)
	}
	return f
}

// Name implements Kernel.
func (*Facesim) Name() string { return "facesim" }

// BeatLabel implements Kernel.
func (*Facesim) BeatLabel() string { return "Every frame" }

// UnitsPerBeat implements Kernel (one unit = one simulated frame).
func (*Facesim) UnitsPerBeat() int { return 1 }

// DoUnit perturbs the boundary and runs 20 Jacobi sweeps.
func (f *Facesim) DoUnit(rng *rand.Rand) (uint64, float64) {
	n := f.n
	for x := 0; x < n; x++ { // new boundary forces, present in both buffers
		v := rng.Float64() * 10
		f.a[x] = v
		f.b[x] = v
	}
	const sweeps = 20
	src, dst := f.a, f.b
	for s := 0; s < sweeps; s++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				dst[y*n+x] = 0.25 * (src[y*n+x-1] + src[y*n+x+1] + src[(y-1)*n+x] + src[(y+1)*n+x])
			}
		}
		src, dst = dst, src
	}
	f.a, f.b = src, dst
	center := f.a[(n/2)*n+n/2]
	return math.Float64bits(center), float64(sweeps) * float64((n-2)*(n-2)) * 5
}

// ---------------------------------------------------------------- ferret

// Ferret answers similarity queries against a feature database, PARSEC
// ferret's content-based search.
type Ferret struct {
	db   []float64 // nVec × dim
	nVec int
	dim  int
}

// NewFerret returns the kernel with 256 32-dimensional vectors.
func NewFerret() *Ferret {
	nVec, dim := 256, 32
	rng := rand.New(rand.NewSource(1234))
	db := make([]float64, nVec*dim)
	for i := range db {
		db[i] = rng.Float64()
	}
	return &Ferret{db: db, nVec: nVec, dim: dim}
}

// Name implements Kernel.
func (*Ferret) Name() string { return "ferret" }

// BeatLabel implements Kernel.
func (*Ferret) BeatLabel() string { return "Every query" }

// UnitsPerBeat implements Kernel (one unit = one query).
func (*Ferret) UnitsPerBeat() int { return 1 }

// DoUnit finds the 4 nearest neighbours of a random query vector.
func (f *Ferret) DoUnit(rng *rand.Rand) (uint64, float64) {
	q := make([]float64, f.dim)
	for i := range q {
		q[i] = rng.Float64()
	}
	var top [4]int
	var topD [4]float64
	for i := range topD {
		topD[i] = math.Inf(1)
	}
	for v := 0; v < f.nVec; v++ {
		var d float64
		row := f.db[v*f.dim:]
		for i := 0; i < f.dim; i++ {
			diff := q[i] - row[i]
			d += diff * diff
		}
		for s := 0; s < len(top); s++ { // insertion into top-k
			if d < topD[s] {
				copy(topD[s+1:], topD[s:len(topD)-1])
				copy(top[s+1:], top[s:len(top)-1])
				topD[s], top[s] = d, v
				break
			}
		}
	}
	return uint64(top[0])<<48 ^ uint64(top[1])<<32 ^ uint64(top[2])<<16 ^ uint64(top[3]),
		float64(f.nVec) * float64(f.dim) * 3
}

// ---------------------------------------------------------------- fluidanimate

// Fluidanimate runs a smoothed-particle-hydrodynamics density/force pass,
// PARSEC fluidanimate's per-frame computation.
type Fluidanimate struct {
	x, y, z    []float64
	vx, vy, vz []float64
	n          int
}

// NewFluidanimate returns the kernel with 160 particles.
func NewFluidanimate() *Fluidanimate {
	n := 160
	f := &Fluidanimate{
		x: make([]float64, n), y: make([]float64, n), z: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		n: n,
	}
	rng := rand.New(rand.NewSource(5678))
	for i := 0; i < n; i++ {
		f.x[i], f.y[i], f.z[i] = rng.Float64(), rng.Float64(), rng.Float64()
	}
	return f
}

// Name implements Kernel.
func (*Fluidanimate) Name() string { return "fluidanimate" }

// BeatLabel implements Kernel.
func (*Fluidanimate) BeatLabel() string { return "Every frame" }

// UnitsPerBeat implements Kernel (one unit = one frame step).
func (*Fluidanimate) UnitsPerBeat() int { return 1 }

// DoUnit computes densities and pressure forces over a neighbour window and
// integrates the particles one step.
func (f *Fluidanimate) DoUnit(rng *rand.Rand) (uint64, float64) {
	const h2 = 0.05 // smoothing radius squared
	var ops float64
	// Neighbour window of 16 following particles (cell-list stand-in).
	for i := 0; i < f.n; i++ {
		var fx, fy, fz float64
		for k := 1; k <= 16; k++ {
			j := (i + k) % f.n
			dx, dy, dz := f.x[i]-f.x[j], f.y[i]-f.y[j], f.z[i]-f.z[j]
			d2 := dx*dx + dy*dy + dz*dz
			if d2 < h2 {
				w := (h2 - d2) * (h2 - d2) * (h2 - d2) // poly6 kernel
				fx += w * dx
				fy += w * dy
				fz += w * dz
			}
			ops += 15
		}
		f.vx[i] += fx*50 + rng.NormFloat64()*1e-4
		f.vy[i] += fy*50 - 1e-3 // gravity
		f.vz[i] += fz * 50
	}
	var cs uint64
	for i := 0; i < f.n; i++ {
		f.x[i] = wrapUnit(f.x[i] + f.vx[i]*0.01)
		f.y[i] = wrapUnit(f.y[i] + f.vy[i]*0.01)
		f.z[i] = wrapUnit(f.z[i] + f.vz[i]*0.01)
		ops += 10
	}
	cs = math.Float64bits(f.x[0]) ^ math.Float64bits(f.y[f.n/2])
	return cs, ops
}

func wrapUnit(v float64) float64 {
	for v < 0 {
		v++
	}
	for v > 1 {
		v--
	}
	return v
}

// ---------------------------------------------------------------- streamcluster

// Streamcluster assigns streamed points to the nearest of k medians and
// accumulates the clustering cost, PARSEC streamcluster's gain evaluation.
type Streamcluster struct {
	medians []float64 // k × dim
	k, dim  int
}

// NewStreamcluster returns the kernel with 16 medians in 8 dimensions.
func NewStreamcluster() *Streamcluster {
	k, dim := 16, 8
	rng := rand.New(rand.NewSource(91011))
	m := make([]float64, k*dim)
	for i := range m {
		m[i] = rng.Float64()
	}
	return &Streamcluster{medians: m, k: k, dim: dim}
}

// Name implements Kernel.
func (*Streamcluster) Name() string { return "streamcluster" }

// BeatLabel implements Kernel.
func (*Streamcluster) BeatLabel() string { return "Every 200000 points" }

// UnitsPerBeat implements Kernel (one unit = a block of 500 points;
// 400 units per beat at the Table 2 granularity).
func (*Streamcluster) UnitsPerBeat() int { return 400 }

// DoUnit clusters a block of 500 random points.
func (s *Streamcluster) DoUnit(rng *rand.Rand) (uint64, float64) {
	const points = 500
	var cost float64
	var pick uint64
	p := make([]float64, s.dim)
	for n := 0; n < points; n++ {
		for i := range p {
			p[i] = rng.Float64()
		}
		best, bestD := 0, math.Inf(1)
		for m := 0; m < s.k; m++ {
			var d float64
			row := s.medians[m*s.dim:]
			for i := 0; i < s.dim; i++ {
				diff := p[i] - row[i]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = m, d
			}
		}
		cost += bestD
		pick ^= uint64(best) << (n % 60)
	}
	return pick ^ math.Float64bits(cost), float64(points) * float64(s.k) * float64(s.dim) * 3
}

// ---------------------------------------------------------------- swaptions

// Swaptions prices a swaption by Monte-Carlo simulation of the short rate,
// PARSEC swaptions' HJM kernel.
type Swaptions struct{}

// NewSwaptions returns the kernel.
func NewSwaptions() *Swaptions { return &Swaptions{} }

// Name implements Kernel.
func (*Swaptions) Name() string { return "swaptions" }

// BeatLabel implements Kernel.
func (*Swaptions) BeatLabel() string { return "Every \"swaption\"" }

// UnitsPerBeat implements Kernel (one unit = one swaption).
func (*Swaptions) UnitsPerBeat() int { return 1 }

// DoUnit simulates 128 rate paths of 16 steps and averages the payoff.
func (*Swaptions) DoUnit(rng *rand.Rand) (uint64, float64) {
	const paths, steps = 128, 16
	strike := 0.005 + rng.Float64()*0.02
	var payoff, lastRate float64
	for p := 0; p < paths; p++ {
		rate := 0.02
		for s := 0; s < steps; s++ {
			rate *= math.Exp(-0.5*0.01 + 0.1*rng.NormFloat64()*0.25)
		}
		if rate > strike {
			payoff += rate - strike
		}
		lastRate = rate
	}
	price := payoff / paths
	return math.Float64bits(price) ^ math.Float64bits(lastRate), paths * steps * 12
}

// ---------------------------------------------------------------- x264

// X264Kernel encodes procedural video frames with the hexagon-search
// configuration PARSEC's x264 defaults resemble.
type X264Kernel struct {
	src *video.Source
	enc *x264.Encoder
}

// NewX264Kernel returns the kernel on 96x64 frames.
func NewX264Kernel() *X264Kernel {
	return &X264Kernel{
		src: video.NewSource(96, 64, 2024, video.Uniform(video.Complexity{Motion: 2, Detail: 12, Noise: 3})),
		enc: x264.NewEncoder(x264.Config{Search: x264.Hex, SubpelLevels: 1, RefFrames: 1}),
	}
}

// Name implements Kernel.
func (*X264Kernel) Name() string { return "x264" }

// BeatLabel implements Kernel.
func (*X264Kernel) BeatLabel() string { return "Every frame" }

// UnitsPerBeat implements Kernel (one unit = one frame).
func (*X264Kernel) UnitsPerBeat() int { return 1 }

// DoUnit encodes the next frame.
func (k *X264Kernel) DoUnit(_ *rand.Rand) (uint64, float64) {
	f, _ := k.src.Next()
	st, err := k.enc.Encode(f)
	if err != nil {
		panic(err) // unreachable: source frames are block-aligned
	}
	return st.PredSAD ^ uint64(st.Evals16), st.Ops
}
