package heartbeat_test

import (
	"testing"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

// newTestHB returns a heartbeat on a manual clock.
func newTestHB(t *testing.T, window int, opts ...heartbeat.Option) (*heartbeat.Heartbeat, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(window, append(opts, heartbeat.WithClock(clk))...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return hb, clk
}

func TestNewValidation(t *testing.T) {
	if _, err := heartbeat.New(-1); err == nil {
		t.Fatal("negative window accepted")
	}
	hb, err := heartbeat.New(0)
	if err != nil {
		t.Fatalf("New(0): %v", err)
	}
	if hb.Window() != heartbeat.DefaultWindow {
		t.Fatalf("Window = %d, want DefaultWindow %d", hb.Window(), heartbeat.DefaultWindow)
	}
	if _, err := heartbeat.New(10, heartbeat.WithClock(nil)); err == nil {
		t.Fatal("nil clock accepted")
	}
}

func TestCapacityDefaultsAndClamping(t *testing.T) {
	hb, err := heartbeat.New(100)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Capacity() != 400 {
		t.Fatalf("Capacity = %d, want 4*window = 400", hb.Capacity())
	}
	hb2, err := heartbeat.New(100, heartbeat.WithCapacity(10))
	if err != nil {
		t.Fatal(err)
	}
	if hb2.Capacity() < 100 {
		t.Fatalf("Capacity = %d, must be >= window", hb2.Capacity())
	}
}

func TestBeatCountAndHistory(t *testing.T) {
	hb, clk := newTestHB(t, 5)
	for i := 0; i < 3; i++ {
		hb.BeatTag(int64(100 + i))
		clk.Advance(10 * time.Millisecond)
	}
	if hb.Count() != 3 {
		t.Fatalf("Count = %d, want 3", hb.Count())
	}
	recs := hb.History(10)
	if len(recs) != 3 {
		t.Fatalf("History = %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d Seq = %d, want %d", i, r.Seq, i+1)
		}
		if r.Tag != int64(100+i) {
			t.Errorf("record %d Tag = %d, want %d", i, r.Tag, 100+i)
		}
		if r.Producer != 0 {
			t.Errorf("record %d Producer = %d, want 0", i, r.Producer)
		}
	}
	if !recs[1].Time.After(recs[0].Time) {
		t.Error("timestamps not increasing under advancing clock")
	}
}

func TestRateExactOnManualClock(t *testing.T) {
	hb, clk := newTestHB(t, 10)
	if _, ok := hb.Rate(0); ok {
		t.Fatal("Rate reported ok with no beats")
	}
	hb.Beat()
	if _, ok := hb.Rate(0); ok {
		t.Fatal("Rate reported ok with one beat")
	}
	// 10 beats spaced 100ms apart: 9 intervals over 0.9s = 10 beats/s.
	for i := 0; i < 9; i++ {
		clk.Advance(100 * time.Millisecond)
		hb.Beat()
	}
	r, ok := hb.Rate(0)
	if !ok {
		t.Fatal("Rate not ok after 10 beats")
	}
	if r < 9.999 || r > 10.001 {
		t.Fatalf("Rate = %v, want 10", r)
	}
	d, ok := hb.RateDetail(0)
	if !ok || d.Beats != 10 || d.Span != 900*time.Millisecond {
		t.Fatalf("RateDetail = %+v", d)
	}
	if d.FirstSeq != 1 || d.LastSeq != 10 {
		t.Fatalf("window endpoints = [%d, %d], want [1, 10]", d.FirstSeq, d.LastSeq)
	}
}

func TestRateWindowSelection(t *testing.T) {
	hb, clk := newTestHB(t, 4)
	// First 5 beats slow (1s apart), next 5 fast (100ms apart).
	for i := 0; i < 5; i++ {
		hb.Beat()
		clk.Advance(time.Second)
	}
	for i := 0; i < 5; i++ {
		clk.Advance(100 * time.Millisecond)
		hb.Beat()
	}
	// Default window (4) sees only fast beats: 10 beats/s.
	r, ok := hb.Rate(0)
	if !ok || r < 9.9 || r > 10.1 {
		t.Fatalf("Rate(default) = %v, want ~10", r)
	}
	// A wide window mixes the two phases and must be slower.
	wide, ok := hb.Rate(10)
	if !ok || wide >= r {
		t.Fatalf("Rate(10) = %v, want < %v", wide, r)
	}
}

func TestWindowClippedToCapacity(t *testing.T) {
	hb, clk := newTestHB(t, 4, heartbeat.WithCapacity(8))
	for i := 0; i < 100; i++ {
		clk.Advance(10 * time.Millisecond)
		hb.Beat()
	}
	d, ok := hb.RateDetail(1000) // paper: silently clipped
	if !ok {
		t.Fatal("RateDetail not ok")
	}
	if d.Beats != 8 {
		t.Fatalf("clipped window used %d beats, want capacity 8", d.Beats)
	}
}

func TestHistoryClipsAndOrders(t *testing.T) {
	hb, clk := newTestHB(t, 4, heartbeat.WithCapacity(16))
	for i := 0; i < 40; i++ {
		clk.Advance(time.Millisecond)
		hb.BeatTag(int64(i))
	}
	recs := hb.History(1000)
	if len(recs) != 16 {
		t.Fatalf("History(1000) = %d records, want 16", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("history not dense at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
	if recs[len(recs)-1].Seq != 40 {
		t.Fatalf("newest Seq = %d, want 40", recs[len(recs)-1].Seq)
	}
	if hb.History(0) != nil {
		t.Fatal("History(0) should be nil")
	}
}

func TestTargets(t *testing.T) {
	hb, _ := newTestHB(t, 5)
	if _, _, ok := hb.Target(); ok {
		t.Fatal("Target ok before SetTarget")
	}
	if err := hb.SetTarget(30, 35); err != nil {
		t.Fatal(err)
	}
	min, max, ok := hb.Target()
	if !ok || min != 30 || max != 35 {
		t.Fatalf("Target = %v, %v, %v", min, max, ok)
	}
	for _, bad := range [][2]float64{{-1, 5}, {5, 4}} {
		if err := hb.SetTarget(bad[0], bad[1]); err == nil {
			t.Errorf("SetTarget(%v, %v) accepted", bad[0], bad[1])
		}
	}
	// Failed SetTarget must not clobber the previous goal.
	min, max, ok = hb.Target()
	if !ok || min != 30 || max != 35 {
		t.Fatalf("Target after bad set = %v, %v, %v", min, max, ok)
	}
}

func TestLockedStoreVariantBehavesIdentically(t *testing.T) {
	for _, locked := range []bool{false, true} {
		opts := []heartbeat.Option{}
		if locked {
			opts = append(opts, heartbeat.WithLockedStore())
		}
		hb, clk := newTestHB(t, 5, opts...)
		for i := 0; i < 20; i++ {
			clk.Advance(50 * time.Millisecond)
			hb.BeatTag(int64(i))
		}
		r, ok := hb.Rate(0)
		if !ok || r < 19.99 || r > 20.01 {
			t.Fatalf("locked=%v: Rate = %v, want 20", locked, r)
		}
		if hb.Count() != 20 {
			t.Fatalf("locked=%v: Count = %d", locked, hb.Count())
		}
		recs := hb.History(5)
		if len(recs) != 5 || recs[4].Tag != 19 {
			t.Fatalf("locked=%v: History = %+v", locked, recs)
		}
	}
}

func TestIntervals(t *testing.T) {
	hb, clk := newTestHB(t, 5)
	gaps := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 50 * time.Millisecond}
	hb.Beat()
	for _, g := range gaps {
		clk.Advance(g)
		hb.Beat()
	}
	iv := heartbeat.Intervals(hb.History(10))
	if len(iv) != 3 {
		t.Fatalf("Intervals = %v", iv)
	}
	want := []float64{0.1, 0.2, 0.05}
	for i := range want {
		if diff := iv[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("interval %d = %v, want %v", i, iv[i], want[i])
		}
	}
	if heartbeat.Intervals(nil) != nil {
		t.Fatal("Intervals(nil) should be nil")
	}
}

func TestCloseIdempotent(t *testing.T) {
	hb, _ := newTestHB(t, 5)
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
}
