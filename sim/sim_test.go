package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvances(t *testing.T) {
	c := NewClock(time.Time{})
	if !c.Now().Equal(Epoch) {
		t.Fatalf("zero start != Epoch: %v", c.Now())
	}
	start := c.Now()
	c.Advance(3 * time.Second)
	c.AdvanceSeconds(0.5)
	if got := c.Elapsed(start); got != 3500*time.Millisecond {
		t.Fatalf("Elapsed = %v", got)
	}
}

func TestClockRejectsNegativeAdvance(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewClock(time.Time{}).Advance(-time.Second)
}

func TestSpeedupKnownValues(t *testing.T) {
	cases := []struct {
		cores int
		p     float64
		want  float64
	}{
		{1, 0.9, 1},
		{2, 1.0, 2},
		{8, 1.0, 8},
		{8, 0.9, 1 / (0.1 + 0.9/8)},
		{4, 0.0, 1},
		{0, 0.5, 0},
		{-3, 0.5, 0},
	}
	for _, c := range cases {
		if got := Speedup(c.cores, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Speedup(%d, %v) = %v, want %v", c.cores, c.p, got, c.want)
		}
	}
}

// Property: speedup is monotone in core count and bounded by both the core
// count and the Amdahl limit 1/(1-p).
func TestSpeedupMonotoneBoundedProperty(t *testing.T) {
	f := func(pRaw uint8, coresRaw uint8) bool {
		p := float64(pRaw) / 255
		cores := int(coresRaw)%64 + 1
		s := Speedup(cores, p)
		if s < 1-1e-12 || s > float64(cores)+1e-12 {
			return false
		}
		if cores > 1 && Speedup(cores-1, p) > s+1e-12 {
			return false
		}
		if p < 1 && s > 1/(1-p)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineExecuteAdvancesClock(t *testing.T) {
	clk := NewClock(time.Time{})
	m := NewMachine(clk, 8, 1000) // 1000 ops/s per core
	start := clk.Now()
	m.Execute(Work{Ops: 8000, ParallelFrac: 1}) // full speedup: 1s
	if got := clk.Elapsed(start); got != time.Second {
		t.Fatalf("Elapsed = %v, want 1s", got)
	}
	m.SetCores(1)
	start = clk.Now()
	m.Execute(Work{Ops: 1000, ParallelFrac: 1})
	if got := clk.Elapsed(start); got != time.Second {
		t.Fatalf("Elapsed on 1 core = %v, want 1s", got)
	}
}

func TestMachineCoreAccounting(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 8, 1)
	if m.Cores() != 8 || m.MaxCores() != 8 || m.TotalCores() != 8 {
		t.Fatal("fresh machine core counts wrong")
	}
	if got := m.SetCores(3); got != 3 {
		t.Fatalf("SetCores(3) = %d", got)
	}
	if got := m.SetCores(0); got != 1 {
		t.Fatalf("SetCores(0) = %d, want clamp to 1", got)
	}
	if got := m.SetCores(100); got != 8 {
		t.Fatalf("SetCores(100) = %d, want clamp to 8", got)
	}
}

func TestMachineFailures(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 8, 1)
	m.SetCores(8)
	m.FailCores(2)
	if m.MaxCores() != 6 || m.Cores() != 6 || m.FailedCores() != 2 {
		t.Fatalf("after 2 failures: max=%d cores=%d failed=%d", m.MaxCores(), m.Cores(), m.FailedCores())
	}
	m.FailCores(100)
	if m.MaxCores() != 0 || m.Cores() != 0 {
		t.Fatalf("after total failure: max=%d cores=%d", m.MaxCores(), m.Cores())
	}
	// Work on a dead machine takes effectively forever, not zero time.
	if d := m.Duration(Work{Ops: 1, ParallelFrac: 1}); d < time.Hour {
		t.Fatalf("dead machine Duration = %v", d)
	}
	m.Restore()
	if m.MaxCores() != 8 {
		t.Fatalf("Restore: max=%d", m.MaxCores())
	}
}

// Property: execution time is monotone non-increasing in granted cores.
func TestDurationMonotoneInCoresProperty(t *testing.T) {
	f := func(opsRaw uint16, pRaw uint8) bool {
		ops := float64(opsRaw) + 1
		p := float64(pRaw) / 255
		m := NewMachine(NewClock(time.Time{}), 16, 100)
		prev := time.Duration(math.MaxInt64)
		for c := 1; c <= 16; c++ {
			m.SetCores(c)
			d := m.Duration(Work{Ops: ops, ParallelFrac: p})
			if d > prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroOpsWork(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 4, 10)
	if d := m.Duration(Work{Ops: 0}); d != 0 {
		t.Fatalf("zero work Duration = %v", d)
	}
}

func TestFaultInjector(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 8, 1)
	inj := NewFaultInjector(
		FaultEvent{AtBeat: 320, FailCores: 1}, // out of order on purpose
		FaultEvent{AtBeat: 160, FailCores: 2},
		FaultEvent{AtBeat: 480, FailCores: 1},
	)
	if inj.Pending() != 3 {
		t.Fatalf("Pending = %d", inj.Pending())
	}
	if n := inj.Step(100, m); n != 0 {
		t.Fatalf("Step(100) failed %d cores", n)
	}
	if n := inj.Step(160, m); n != 2 || m.MaxCores() != 6 {
		t.Fatalf("Step(160): n=%d max=%d", n, m.MaxCores())
	}
	// Jumping past several events applies all of them.
	if n := inj.Step(500, m); n != 2 || m.MaxCores() != 4 {
		t.Fatalf("Step(500): n=%d max=%d", n, m.MaxCores())
	}
	if inj.Pending() != 0 {
		t.Fatalf("Pending = %d at end", inj.Pending())
	}
	// Re-stepping is a no-op.
	if n := inj.Step(1000, m); n != 0 {
		t.Fatalf("re-Step failed %d cores", n)
	}
}

// Regression: Step used to report the requested FailCores sum, not what
// Machine.FailCores actually failed — a machine with fewer healthy cores
// than the event demands over-reported the damage.
func TestFaultInjectorReportsActualFailures(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 4, 1)
	inj := NewFaultInjector(
		FaultEvent{AtBeat: 10, FailCores: 3},
		FaultEvent{AtBeat: 20, FailCores: 3}, // only 1 healthy core left
		FaultEvent{AtBeat: 30, FailCores: 2}, // machine already dead
	)
	if n := inj.Step(10, m); n != 3 || m.MaxCores() != 1 {
		t.Fatalf("Step(10): n=%d max=%d, want 3 failed", n, m.MaxCores())
	}
	if n := inj.Step(20, m); n != 1 || m.MaxCores() != 0 {
		t.Fatalf("Step(20): n=%d max=%d, want 1 actually failed of 3 requested", n, m.MaxCores())
	}
	if n := inj.Step(30, m); n != 0 {
		t.Fatalf("Step(30) on a dead machine reported %d failures", n)
	}
	// FailCores itself reports the clamp.
	m2 := NewMachine(NewClock(time.Time{}), 2, 1)
	if n := m2.FailCores(5); n != 2 {
		t.Fatalf("FailCores(5) on 2-core machine = %d", n)
	}
	if n := m2.FailCores(1); n != 0 {
		t.Fatalf("FailCores on dead machine = %d", n)
	}
}

func TestMachineValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMachine(nil, 8, 1) },
		func() { NewMachine(NewClock(time.Time{}), 0, 1) },
		func() { NewMachine(NewClock(time.Time{}), 8, 0) },
		func() { NewMachine(NewClock(time.Time{}), 8, -2) },
		func() { NewMachine(NewClock(time.Time{}), 8, 1).FailCores(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
