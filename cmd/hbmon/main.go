// Command hbmon watches a heartbeat ring or log file and reports the
// observed application's heart rate, goals, and health — the
// system-administration use of §2.3: detect hangs, watch program phases,
// diagnose performance in the field, all without touching the application.
//
// Usage:
//
//	hbmon -file app.hb [-interval 500ms] [-window N] [-count N] [-follow]
//
// The default mode polls a full snapshot every interval. With -follow,
// hbmon tails the file incrementally: each tick reads only the records
// published since the previous one (an idle tick is a single cursor
// read), reports how many new beats arrived, and flags records lost to
// ring overwrite. Each line reports: beat count, new beats this tick
// (follow mode), heart rate over the window, the advertised target range,
// and the health classification (healthy / slow / fast / erratic /
// flatlined / dead).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/hbfile"
	"repro/observer"
)

func main() {
	path := flag.String("file", "", "heartbeat ring or log file to watch (required)")
	interval := flag.Duration("interval", 500*time.Millisecond, "reporting interval")
	window := flag.Int("window", 0, "rate window in beats (0 = file default)")
	count := flag.Int("count", 0, "stop after this many reports (0 = forever)")
	follow := flag.Bool("follow", false, "tail the file incrementally instead of re-reading the window each poll")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Accept either file variant: the bounded ring or the append-only log.
	var (
		source     observer.Source
		stream     observer.Stream
		fileWindow int
	)
	if r, err := hbfile.Open(*path); err == nil {
		defer r.Close()
		fmt.Printf("watching ring %s (pid %d, window %d, capacity %d)\n", *path, r.PID(), r.Window(), r.Capacity())
		source = observer.FileSource(r)
		stream = observer.FileStream(r, *interval/10)
		fileWindow = r.Window()
	} else if lr, lerr := hbfile.OpenLog(*path); lerr == nil {
		defer lr.Close()
		fmt.Printf("watching log %s (window %d, full history)\n", *path, lr.Window())
		source = observer.LogSource(lr)
		stream = observer.LogStream(lr, *interval/10)
		fileWindow = lr.Window()
	} else {
		// Neither variant opened: show both failures — the ring error
		// alone would hide why a log file was rejected.
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat ring:", err)
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat log:", lerr)
		os.Exit(1)
	}

	classifier := &observer.Classifier{Window: *window, Epoch: time.Now()}
	if *follow {
		runFollow(stream, classifier, *interval, *count)
		return
	}

	maxRecords := *window
	if maxRecords <= 0 {
		maxRecords = fileWindow
	}
	for polls := 0; *count == 0 || polls < *count; polls++ {
		snap, err := source.Snapshot(maxRecords)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		report(classifier.Classify(snap), -1, 0)
		time.Sleep(*interval)
	}
}

// runFollow is the incremental mode: absorb new records as they land,
// judge and report every interval.
func runFollow(stream observer.Stream, classifier *observer.Classifier, interval time.Duration, count int) {
	win := observer.NewWindow(classifier.Window)
	ctx := context.Background()
	var lastCount, lastMissed uint64
	for reports := 0; count == 0 || reports < count; reports++ {
		if _, err := observer.CollectInto(ctx, stream, win, time.Now().Add(interval)); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		st := classifier.ClassifyWindow(win)
		delta := int64(st.Count) - int64(lastCount)
		if delta < 0 {
			delta = 0 // the file was recreated under us
		}
		report(st, delta, win.Missed()-lastMissed)
		lastCount, lastMissed = st.Count, win.Missed()
	}
}

// report prints one status line; delta < 0 means "don't show new-beat
// accounting" (snapshot mode).
func report(st observer.Status, delta int64, missed uint64) {
	target := "no target"
	if st.TargetSet {
		target = fmt.Sprintf("target [%.2f, %.2f]", st.TargetMin, st.TargetMax)
	}
	rate := "rate  n/a"
	if st.RateOK {
		rate = fmt.Sprintf("rate %7.2f beats/s", st.Rate)
	}
	line := fmt.Sprintf("%s  beats %8d", time.Now().Format("15:04:05.000"), st.Count)
	if delta >= 0 {
		line += fmt.Sprintf("  +%d", delta)
	}
	line += fmt.Sprintf("  %s  %s  health %s", rate, target, st.Health)
	if missed > 0 {
		line += fmt.Sprintf("  (missed %d: consumer outran by ring overwrite)", missed)
	}
	fmt.Println(line)
}
