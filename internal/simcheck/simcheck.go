// Package simcheck holds the machine-checked form of the delivery
// contract: the invariants every stream in the system promises —
// exactly-once in-order delivery, losses surfaced as Missed through cursor
// arithmetic (never silently), delivered + missed == head at every hop —
// written once and shared by the live tests (real TCP, real files, real
// child processes) and the simulated scenario matrix (package simnet). A
// live test and a simulated one failing the same checker fail for the same
// reason, which is the point: the simulation proves the same contract the
// wall-clock tests observe.
package simcheck

import (
	"fmt"
	"testing"

	"repro/heartbeat"
	"repro/observer"
)

// Dense verifies that recs carry strictly increasing, gap-free sequence
// numbers starting right after since — the exactly-once contract in the
// no-loss case.
func Dense(recs []heartbeat.Record, since uint64) error {
	next := since + 1
	for i, r := range recs {
		if r.Seq != next {
			return fmt.Errorf("record %d: seq %d, want %d (duplicate or gap)", i, r.Seq, next)
		}
		next++
	}
	return nil
}

// RequireDense is Dense as a test assertion.
func RequireDense(tb testing.TB, recs []heartbeat.Record, since uint64) {
	tb.Helper()
	if err := Dense(recs, since); err != nil {
		tb.Fatal(err)
	}
}

// Conserved verifies the loss-accounting identity at one hop: everything
// the producer published is either delivered or counted missed —
// delivered + missed == head, nothing lost unaccounted, nothing invented.
func Conserved(label string, delivered, missed, head uint64) error {
	if delivered+missed != head {
		return fmt.Errorf("%s does not conserve: delivered %d + missed %d = %d, want head %d",
			label, delivered, missed, delivered+missed, head)
	}
	return nil
}

// RequireConserved is Conserved as a test assertion.
func RequireConserved(tb testing.TB, label string, delivered, missed, head uint64) {
	tb.Helper()
	if err := Conserved(label, delivered, missed, head); err != nil {
		tb.Fatal(err)
	}
}

// Life is the accounting of one producer life as observed by a consumer:
// what it delivered, what it was told was lost, and the head (newest
// sequence number) the life reached from the consumer's point of view.
// Delivered + Missed == Head within each life.
type Life struct {
	Delivered, Missed, Head uint64
}

// Tracker absorbs one consumer's batches and verifies the delivery
// contract incrementally: sequence numbers strictly increase, every gap is
// accounted by the batch's Missed exactly, and a sequence regression is
// only legal as a producer-restart resynchronization (the stream reset its
// cursor to zero and redelivered the new life), which closes the current
// Life and opens the next. Any other shape — duplicates, unaccounted gaps,
// over-reported losses — is a contract violation, returned by Absorb and
// latched in Err.
//
// A Tracker is one consumer's view: feed it every batch of a single
// Stream, in order.
type Tracker struct {
	label  string
	cursor uint64
	cur    Life
	lives  []Life
	err    error
}

// NewTracker creates a tracker for one stream positioned after sequence
// number since (0 for a stream from the beginning).
func NewTracker(label string, since uint64) *Tracker {
	return &Tracker{label: label, cursor: since}
}

func (t *Tracker) fail(format string, args ...interface{}) error {
	err := fmt.Errorf("%s: %s", t.label, fmt.Sprintf(format, args...))
	if t.err == nil {
		t.err = err
	}
	return err
}

// Absorb verifies one batch and folds it into the accounting. The first
// violation is returned and latched; subsequent batches are still
// absorbed best-effort so totals remain inspectable.
func (t *Tracker) Absorb(b observer.Batch) error {
	recs := b.Records
	if len(recs) == 0 {
		// A record-free batch can only report losses (every record that
		// advanced the head was lapped before delivery).
		t.cursor += b.Missed
		t.cur.Missed += b.Missed
		t.cur.Head = t.cursor
		return nil
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			return t.fail("batch not strictly increasing: seq %d after %d (index %d)",
				recs[i].Seq, recs[i-1].Seq, i)
		}
	}
	first, last := recs[0].Seq, recs[len(recs)-1].Seq
	n := uint64(len(recs))
	switch {
	case first > t.cursor && b.Missed == last-t.cursor-n:
		// Continuation: the gap between the cursor and what arrived is
		// accounted by Missed, exactly.
	case b.Missed == last-n:
		// Restart resynchronization: the stream reset its cursor to zero
		// and the batch's loss accounting is exact relative to zero. This
		// is how a sequence regression is legal — and it can also arrive
		// with first > cursor, when the new life lapped past the old
		// cursor before its first delivery. (A continuation whose Missed
		// happens to equal last-n only coincides when cursor is 0, where
		// the two readings are the same batch.) The harness-level
		// CheckLives guard keeps a stream that wrongly re-reports from
		// zero from hiding here.
		t.lives = append(t.lives, t.cur)
		t.cur = Life{}
	case first > t.cursor:
		return t.fail("missed %d records between cursor %d and head %d, batch reports Missed=%d",
			last-t.cursor-n, t.cursor, last, b.Missed)
	default:
		return t.fail("seq regressed to %d at cursor %d without a restart-shaped resync (Missed=%d, want %d)",
			first, t.cursor, b.Missed, last-n)
	}
	t.cursor = last
	t.cur.Delivered += n
	t.cur.Missed += b.Missed
	t.cur.Head = t.cursor
	return nil
}

// Err returns the first contract violation observed, if any.
func (t *Tracker) Err() error { return t.err }

// Cursor returns the newest sequence number absorbed (current life).
func (t *Tracker) Cursor() uint64 { return t.cursor }

// Lives returns the accounting of every producer life observed, completed
// lives first, the in-progress one last. A run with no restarts has
// exactly one.
func (t *Tracker) Lives() []Life {
	return append(append([]Life(nil), t.lives...), t.cur)
}

// Delivered returns total records delivered across all lives.
func (t *Tracker) Delivered() uint64 {
	n := t.cur.Delivered
	for _, l := range t.lives {
		n += l.Delivered
	}
	return n
}

// Missed returns total records reported lost across all lives.
func (t *Tracker) Missed() uint64 {
	n := t.cur.Missed
	for _, l := range t.lives {
		n += l.Missed
	}
	return n
}

// Heads returns the summed observed heads across all lives: the total
// sequence space the consumer has accounted for. Delivered() + Missed()
// == Heads() by construction; compare Heads against the producers' true
// published heads to close the conservation argument end to end.
func (t *Tracker) Heads() uint64 {
	n := t.cur.Head
	for _, l := range t.lives {
		n += l.Head
	}
	return n
}

// CheckLives verifies the tracker saw exactly want producer lives (one
// more than the number of restarts) — the guard that makes a duplicated
// batch misread as a "restart" fail loudly instead of inflating totals.
func (t *Tracker) CheckLives(want int) error {
	if got := len(t.Lives()); got != want {
		return t.fail("observed %d producer lives, want %d (lives: %+v)", got, want, t.Lives())
	}
	return nil
}

// CheckConserved verifies the end-to-end identity against the true
// published total: every record any producer life published was either
// delivered or counted missed.
func (t *Tracker) CheckConserved(publishedTotal uint64) error {
	if got := t.Delivered() + t.Missed(); got != publishedTotal {
		return t.fail("delivered %d + missed %d = %d, want published total %d",
			t.Delivered(), t.Missed(), got, publishedTotal)
	}
	return nil
}

// RemapBound returns the invariant ceiling on a routing-table swap's
// measured remap fraction, given the swap's weight share (the changed
// weight over the larger of the total weight before and after). A
// weighted-rendezvous table's expected remap fraction IS the share; the
// 1.5× factor absorbs finite-bucket variance and the additive term keeps
// tiny shares (a reclaim ramp step among many nodes) from flagging on a
// handful of buckets.
func RemapBound(share float64) float64 { return 1.5*share + 0.03 }

// CheckRemap verifies the minimal-disruption invariant for one observed
// table swap: the fraction of the key space that actually moved must stay
// within RemapBound of the weight share that moved. This is the balancer
// counterpart of Conserved — rebalancing must never reshuffle keys it had
// no reason to touch.
func CheckRemap(label string, frac, share float64) error {
	if bound := RemapBound(share); frac > bound {
		return fmt.Errorf("%s: swap remapped %.3f of the key space for a weight share of %.3f (bound %.3f) — disruption not minimal",
			label, frac, share, bound)
	}
	return nil
}

// CheckShed verifies the backpressure-accounting invariant: shed is a
// refinement of Missed — every record a relay sheds off a lagging
// subscription is also counted missed by that subscription — so the shed
// tally can never exceed the missed tally over the same streams. A shed
// count above Missed means loss was attributed to backpressure that the
// delivery ledger never saw.
func CheckShed(label string, shed, missed uint64) error {
	if shed > missed {
		return fmt.Errorf("%s: shed %d records but only %d were missed — shed must refine Missed, not exceed it",
			label, shed, missed)
	}
	return nil
}

// RollupAccount accumulates rollup-feed deliveries for the count
// conservation check: the sum of Records and Missed over every emitted
// window must equal the merged head the relay observed.
type RollupAccount struct {
	Records, Missed uint64
	// EmissionsMissed counts whole windows lapped before delivery; exact
	// conservation is only checkable when it stays zero.
	EmissionsMissed uint64
	Emissions       uint64
}

// AbsorbRollups folds one rollup delivery into the account.
func (a *RollupAccount) AbsorbRollups(rs []observer.Rollup, emissionsMissed uint64) {
	for _, r := range rs {
		a.Records += r.Records
		a.Missed += r.Missed
	}
	a.EmissionsMissed += emissionsMissed
	a.Emissions++
}

// CheckConserved verifies rollup count conservation against the merged
// head: downsampling must neither hide loss nor invent records.
func (a *RollupAccount) CheckConserved(label string, head uint64) error {
	if a.EmissionsMissed != 0 {
		return fmt.Errorf("%s: %d rollup emissions lapped; conservation unverifiable", label, a.EmissionsMissed)
	}
	return Conserved(label, a.Records, a.Missed, head)
}

// Ceiling checks a measured scalar against an explicit budget — the scale
// harness's resource invariants (p99 latency, bytes per producer) phrased
// the same way the delivery invariants are: a named check that returns the
// violation, so the caller can attach the replay seed.
func Ceiling(label string, got, max float64) error {
	if got > max {
		return fmt.Errorf("%s: %g exceeds the ceiling %g", label, got, max)
	}
	return nil
}

// RequireCeiling fails the test when got exceeds its ceiling.
func RequireCeiling(tb testing.TB, label string, got, max float64) {
	tb.Helper()
	if err := Ceiling(label, got, max); err != nil {
		tb.Fatal(err)
	}
}
