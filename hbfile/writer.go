package hbfile

import (
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/heartbeat"
)

// Writer publishes heartbeats into a ring file for external observers.
// It implements heartbeat.Sink and heartbeat.TargetSink, so it is normally
// attached with heartbeat.WithSink. A file has exactly one writing process;
// within that process Writer is safe for concurrent use.
type Writer struct {
	mu        sync.Mutex
	f         *os.File
	capacity  uint32
	cursor    uint64 // highest sequence number published
	targetVer uint64
	closed    bool
}

var _ heartbeat.TargetSink = (*Writer)(nil)

// Create creates (or truncates) a heartbeat ring file retaining capacity
// records and advertising the application's default window.
func Create(path string, window, capacity int) (*Writer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("hbfile: invalid window %d", window)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("hbfile: invalid capacity %d", capacity)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hbfile: create: %w", err)
	}
	hdr := header{
		version:    Version,
		recordSize: RecordSize,
		capacity:   uint32(capacity),
		window:     uint32(window),
		pid:        uint64(os.Getpid()),
	}
	if _, err := f.WriteAt(encodeStaticHeader(hdr), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbfile: write header: %w", err)
	}
	// Pre-size the ring so readers never see a short file.
	if err := f.Truncate(HeaderSize + int64(capacity)*RecordSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbfile: truncate: %w", err)
	}
	return &Writer{f: f, capacity: uint32(capacity)}, nil
}

// WriteRecord publishes one heartbeat record (heartbeat.Sink).
// Records may arrive out of sequence order when multiple goroutines beat
// concurrently; the cursor only ever moves forward.
func (w *Writer) WriteRecord(r heartbeat.Record) error {
	one := [1]heartbeat.Record{r}
	return w.writeBatch(one[:])
}

// WriteRecords publishes an ordered batch of records
// (heartbeat.BatchSink): the file lock is taken and the cursor advanced
// once for the whole batch, so the aggregator's shard merges don't pay the
// per-record bookkeeping.
func (w *Writer) WriteRecords(recs []heartbeat.Record) error {
	if len(recs) == 0 {
		return nil
	}
	return w.writeBatch(recs)
}

func (w *Writer) writeBatch(recs []heartbeat.Record) error {
	// Validate the whole batch before touching the file so an invalid
	// batch is rejected without being applied at all.
	for _, r := range recs {
		if r.Seq == 0 {
			return fmt.Errorf("hbfile: record with zero sequence number")
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbfile: writer closed")
	}
	// An I/O failure skips that record but keeps writing the rest —
	// the batch is the aggregator's only delivery of these records, so
	// one bad write must not drop its successors (matching what
	// per-record delivery would have done). The first error is
	// reported; the cursor advances over whatever landed.
	var firstErr error
	cursor := w.cursor
	for _, r := range recs {
		if _, err := w.f.WriteAt(encodeRecord(r), slotOffset(r.Seq, w.capacity)); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("hbfile: write record: %w", err)
			}
			continue
		}
		if r.Seq > cursor {
			cursor = r.Seq
		}
	}
	if cursor > w.cursor {
		w.cursor = cursor
		var buf [8]byte
		byteOrder.PutUint64(buf[:], w.cursor)
		if _, err := w.f.WriteAt(buf[:], offCursor); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("hbfile: write cursor: %w", err)
		}
	}
	return firstErr
}

var _ heartbeat.BatchSink = (*Writer)(nil)

// WriteTarget publishes the target heart-rate range
// (heartbeat.TargetSink). Readers validate against the version field.
func (w *Writer) WriteTarget(min, max float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbfile: writer closed")
	}
	var buf [8]byte
	w.targetVer++ // odd: update in progress
	byteOrder.PutUint64(buf[:], w.targetVer)
	if _, err := w.f.WriteAt(buf[:], offTargetVer); err != nil {
		return fmt.Errorf("hbfile: write target version: %w", err)
	}
	byteOrder.PutUint64(buf[:], math.Float64bits(min))
	if _, err := w.f.WriteAt(buf[:], offTargetMin); err != nil {
		return fmt.Errorf("hbfile: write target min: %w", err)
	}
	byteOrder.PutUint64(buf[:], math.Float64bits(max))
	if _, err := w.f.WriteAt(buf[:], offTargetMax); err != nil {
		return fmt.Errorf("hbfile: write target max: %w", err)
	}
	w.targetVer++ // even: stable
	byteOrder.PutUint64(buf[:], w.targetVer)
	if _, err := w.f.WriteAt(buf[:], offTargetVer); err != nil {
		return fmt.Errorf("hbfile: write target version: %w", err)
	}
	return nil
}

// Sync flushes the file to stable storage. Observers on the same host read
// through the page cache and do not require it.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbfile: writer closed")
	}
	return w.f.Sync()
}

// Cursor returns the highest sequence number published so far.
func (w *Writer) Cursor() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cursor
}

// Close flushes and closes the file. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func unixTime(nanos int64) time.Time { return time.Unix(0, nanos) }
