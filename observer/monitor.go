package observer

import (
	"context"
	"time"
)

// Monitor periodically polls a Source, classifies it, and delivers Status
// updates. It is the long-running form of the observer role: the paper's
// external scheduler polls the application's heart rate between decisions,
// and its cloud manager watches for flatlined nodes.
type Monitor struct {
	source     Source
	classifier *Classifier
	interval   time.Duration
	maxRecords int
	onStatus   func(Status)
	onError    func(error)
}

// MonitorOption configures NewMonitor.
type MonitorOption func(*Monitor)

// WithClassifier sets the classifier (default: zero-value Classifier).
func WithClassifier(c *Classifier) MonitorOption {
	return func(m *Monitor) { m.classifier = c }
}

// WithMaxRecords sets how many records each poll fetches (default: the
// classifier window, falling back to the source default).
func WithMaxRecords(n int) MonitorOption {
	return func(m *Monitor) { m.maxRecords = n }
}

// WithOnError installs a callback for poll errors (default: ignored; a
// Source that keeps failing will surface as Dead via the classifier Epoch).
func WithOnError(f func(error)) MonitorOption {
	return func(m *Monitor) { m.onError = f }
}

// NewMonitor creates a Monitor that polls source every interval and calls
// onStatus with each classification.
func NewMonitor(source Source, interval time.Duration, onStatus func(Status), opts ...MonitorOption) *Monitor {
	m := &Monitor{
		source:   source,
		interval: interval,
		onStatus: onStatus,
	}
	for _, o := range opts {
		o(m)
	}
	if m.classifier == nil {
		m.classifier = &Classifier{}
	}
	return m
}

// Poll performs one observation immediately.
func (m *Monitor) Poll() (Status, error) {
	snap, err := m.source.Snapshot(m.maxRecords)
	if err != nil {
		return Status{}, err
	}
	return m.classifier.Classify(snap), nil
}

// Run polls until ctx is cancelled. The classifier's Epoch is set to the
// start time if unset, enabling Dead detection for sources that never beat.
func (m *Monitor) Run(ctx context.Context) {
	if m.classifier.Epoch.IsZero() {
		m.classifier.Epoch = m.classifier.now()
	}
	ticker := time.NewTicker(m.interval)
	defer ticker.Stop()
	for {
		st, err := m.Poll()
		if err != nil {
			if m.onError != nil {
				m.onError(err)
			}
		} else if m.onStatus != nil {
			m.onStatus(st)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
