package hbnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// The wire protocol is length-prefixed binary frames over a byte stream:
//
//	frame  = uint32 big-endian payload length | payload
//	payload = frame type byte | type-specific body
//
// A connection carries exactly one hello (client to server), one welcome
// or error in response, and then a one-way sequence of batch frames until
// an eof or error frame ends the stream. Integers are varints; record
// sequence numbers and timestamps are delta-encoded within a batch, so a
// steady heartbeat stream costs a few bytes per record.
const (
	frameHello   = 0x01 // client → server: magic, version, resume cursor, feed name
	frameWelcome = 0x02 // server → client: accepted; echoes the hello's cursor as an integrity check
	frameBatch   = 0x03 // server → client: one observer.Batch plus the new cursor
	frameEOF     = 0x04 // server → client: the feed ended cleanly (producer closed)
	frameError   = 0x05 // server → client: failure; body = permanence flag byte + message
	frameRollup  = 0x06 // server → client: one RollupBatch plus the new emission cursor
)

const (
	// protocolMagic opens every hello so a server can reject a stray
	// connection (a port scan, an HTTP request) before parsing further.
	protocolMagic   = 0x48424e31 // "HBN1"
	protocolVersion = 1

	// maxFramePayload bounds a single frame: far above any sane batch,
	// low enough that a garbage length prefix cannot balloon memory.
	maxFramePayload = 1 << 24
	// maxRecordsPerFrame caps how many records the server packs into one
	// batch frame; a worst-case record costs ~35 varint bytes, so the cap
	// keeps any frame under ~9 MiB, safely inside maxFramePayload.
	// Oversized batches (a full-history replay) are split across frames.
	maxRecordsPerFrame = 1 << 18
	// maxFeedName bounds the hello's feed-name field.
	maxFeedName = 1024
)

var errFrameTooLarge = fmt.Errorf("hbnet: frame exceeds %d bytes", maxFramePayload)

// writeFrame sends one payload (type byte already included) with its
// length prefix in a single Write, so frames are never interleaved by the
// kernel mid-frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFramePayload {
		return errFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame and returns its type and body (payload minus
// the type byte). The returned body aliases a fresh allocation.
func readFrame(r io.Reader) (ftype byte, body []byte, err error) {
	ftype, body, _, err = readFrameReuse(r, nil)
	return ftype, body, err
}

// readFrameReuse is readFrame reading into buf's storage (grown as
// needed); it returns the possibly-grown buffer for the caller to pass
// back in. The returned body aliases that buffer and is valid only until
// the next call — every decode path copies what it keeps, so a
// steady-state reader (Client.readConn) pays zero allocation per frame.
func readFrameReuse(r io.Reader, buf []byte) (ftype byte, body, next []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, buf, fmt.Errorf("hbnet: empty frame")
	}
	if n > maxFramePayload {
		return 0, nil, buf, errFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, fmt.Errorf("hbnet: short frame: %w", err)
	}
	return payload[0], payload[1:], buf, nil
}

// appendHello encodes the subscriber handshake.
func appendHello(dst []byte, feed string, since uint64) []byte {
	dst = append(dst, frameHello)
	dst = binary.BigEndian.AppendUint32(dst, protocolMagic)
	dst = append(dst, protocolVersion)
	dst = binary.AppendUvarint(dst, since)
	dst = binary.AppendUvarint(dst, uint64(len(feed)))
	return append(dst, feed...)
}

func decodeHello(body []byte) (feed string, since uint64, err error) {
	d := decoder{buf: body}
	if magic := d.uint32(); magic != protocolMagic {
		return "", 0, fmt.Errorf("hbnet: bad magic %#x (not a heartbeat subscriber)", magic)
	}
	if v := d.byte(); v != protocolVersion {
		return "", 0, fmt.Errorf("hbnet: protocol version %d, want %d", v, protocolVersion)
	}
	since = d.uvarint()
	n := d.uvarint()
	if n > maxFeedName {
		return "", 0, fmt.Errorf("hbnet: feed name of %d bytes exceeds %d", n, maxFeedName)
	}
	name := d.bytes(int(n))
	if d.err != nil {
		return "", 0, fmt.Errorf("hbnet: truncated hello: %w", d.err)
	}
	return string(name), since, nil
}

func appendWelcome(dst []byte, cursor uint64) []byte {
	dst = append(dst, frameWelcome)
	dst = append(dst, protocolVersion)
	return binary.AppendUvarint(dst, cursor)
}

func decodeWelcome(body []byte) (cursor uint64, err error) {
	d := decoder{buf: body}
	if v := d.byte(); v != protocolVersion {
		return 0, fmt.Errorf("hbnet: protocol version %d, want %d", v, protocolVersion)
	}
	cursor = d.uvarint()
	if d.err != nil {
		return 0, fmt.Errorf("hbnet: truncated welcome: %w", d.err)
	}
	return cursor, nil
}

// appendError encodes a failure report. permanent marks refusals that
// retrying cannot cure (bad handshake, unknown feed) as opposed to
// failures that may heal (a feed file mid-recreation): the client stops
// reconnecting only for the former.
func appendError(dst []byte, msg string, permanent bool) []byte {
	dst = append(dst, frameError)
	if permanent {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return append(dst, msg...)
}

func decodeError(body []byte) (msg string, permanent bool) {
	if len(body) == 0 {
		return "unspecified server error", false
	}
	return string(body[1:]), body[0] == 1
}

const batchFlagTargetSet = 1 << 0

// appendBatch encodes one batch and the server-side cursor after it. The
// per-record sequence numbers and timestamps are signed deltas from their
// predecessor (the first record's from zero), which run-length friendly
// streams compress to a couple of bytes per record while still encoding
// foreign streams with zero or non-monotone sequence numbers faithfully.
func appendBatch(dst []byte, b observer.Batch, cursor uint64) []byte {
	dst = appendBatchMeta(dst, b, cursor, len(b.Records))
	var prevSeq uint64
	var prevNanos int64
	for _, r := range b.Records {
		dst = appendRecordDelta(dst, r, &prevSeq, &prevNanos)
	}
	return dst
}

// appendBatchMeta encodes a batch frame's fixed fields and the record
// count; the caller appends exactly nrecords records with
// appendRecordDelta. Split out so the replay ring's encode-once fan-out
// (frameSince) shares the exact wire format with appendBatch instead of
// duplicating it.
func appendBatchMeta(dst []byte, b observer.Batch, cursor uint64, nrecords int) []byte {
	dst = append(dst, frameBatch)
	dst = binary.AppendUvarint(dst, cursor)
	dst = binary.AppendUvarint(dst, b.Count)
	dst = binary.AppendUvarint(dst, uint64(b.Window))
	dst = binary.AppendUvarint(dst, b.Missed)
	var flags byte
	if b.TargetSet {
		flags |= batchFlagTargetSet
	}
	dst = append(dst, flags)
	if b.TargetSet {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(b.TargetMin))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(b.TargetMax))
	}
	return binary.AppendUvarint(dst, uint64(nrecords))
}

// appendRecordDelta encodes one record as deltas from its predecessor,
// threading the predecessor state through prevSeq/prevNanos.
func appendRecordDelta(dst []byte, r heartbeat.Record, prevSeq *uint64, prevNanos *int64) []byte {
	dst = binary.AppendVarint(dst, int64(r.Seq-*prevSeq))
	nanos := r.Time.UnixNano()
	dst = binary.AppendVarint(dst, nanos-*prevNanos)
	dst = binary.AppendVarint(dst, r.Tag)
	dst = binary.AppendVarint(dst, int64(r.Producer))
	*prevSeq, *prevNanos = r.Seq, nanos
	return dst
}

func decodeBatch(body []byte) (b observer.Batch, cursor uint64, err error) {
	return decodeBatchInto(body, nil)
}

// decodeBatchInto is decodeBatch appending into recs (which may be nil or
// a recycled slice): with a pooled slice the steady-state decode path
// allocates nothing, which is what Client.Recycle buys the Relay's merge
// pump. The returned batch's Records alias recs's storage.
func decodeBatchInto(body []byte, recs []heartbeat.Record) (b observer.Batch, cursor uint64, err error) {
	d := decoder{buf: body}
	cursor = d.uvarint()
	b.Count = d.uvarint()
	b.Window = int(d.uvarint())
	b.Missed = d.uvarint()
	flags := d.byte()
	if flags&batchFlagTargetSet != 0 {
		b.TargetSet = true
		b.TargetMin = math.Float64frombits(d.uint64())
		b.TargetMax = math.Float64frombits(d.uint64())
	}
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)-d.off)/4+1 {
		// Each record costs at least 4 bytes on the wire; a count beyond
		// that is a corrupt frame, caught before allocating for it.
		return observer.Batch{}, 0, fmt.Errorf("hbnet: batch claims %d records in %d bytes", n, len(body))
	}
	if n > 0 && d.err == nil {
		if cap(recs) > 0 {
			b.Records = recs[:0]
		} else {
			b.Records = make([]heartbeat.Record, 0, n)
		}
		var prevSeq uint64
		var prevNanos int64
		for i := uint64(0); i < n; i++ {
			seq := prevSeq + uint64(d.varint())
			nanos := prevNanos + d.varint()
			tag := d.varint()
			producer := d.varint()
			b.Records = append(b.Records, heartbeat.Record{
				Seq:      seq,
				Time:     time.Unix(0, nanos),
				Tag:      tag,
				Producer: int32(producer),
			})
			prevSeq, prevNanos = seq, nanos
		}
	}
	if d.err != nil {
		return observer.Batch{}, 0, fmt.Errorf("hbnet: truncated batch: %w", d.err)
	}
	return b, cursor, nil
}

const rollupFlagRateOK = 1 << 0

// appendRollups encodes one rollup delivery: the emission cursor after it,
// lapped emissions, and the rollups themselves. Window start times are
// delta-encoded from the previous rollup's (relays flush every app at the
// same instant, so consecutive rollups usually share a start and the delta
// is one zero byte); each end is a delta from its own start.
func appendRollups(dst []byte, b RollupBatch) []byte {
	dst = append(dst, frameRollup)
	dst = binary.AppendUvarint(dst, b.Cursor)
	dst = binary.AppendUvarint(dst, b.Missed)
	dst = binary.AppendUvarint(dst, uint64(len(b.Rollups)))
	var prevStart int64
	for _, r := range b.Rollups {
		dst = binary.AppendUvarint(dst, uint64(len(r.App)))
		dst = append(dst, r.App...)
		start := r.Start.UnixNano()
		dst = binary.AppendVarint(dst, start-prevStart)
		dst = binary.AppendVarint(dst, r.End.UnixNano()-start)
		prevStart = start
		dst = binary.AppendUvarint(dst, r.Records)
		dst = binary.AppendUvarint(dst, r.Missed)
		dst = binary.AppendUvarint(dst, r.Count)
		var flags byte
		if r.RateOK {
			flags |= rollupFlagRateOK
		}
		dst = append(dst, flags)
		if r.RateOK {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(r.Rate.PerSec))
			dst = binary.AppendUvarint(dst, uint64(r.Rate.Beats))
			dst = binary.AppendVarint(dst, int64(r.Rate.Span))
		}
		dst = binary.AppendUvarint(dst, r.Rate.FirstSeq)
		dst = binary.AppendUvarint(dst, r.Rate.LastSeq)
		dst = binary.AppendVarint(dst, int64(r.MinInterval))
		dst = binary.AppendVarint(dst, int64(r.MaxInterval))
		dst = binary.AppendVarint(dst, int64(r.MeanInterval))
	}
	return dst
}

func decodeRollups(body []byte) (RollupBatch, error) {
	d := decoder{buf: body}
	var b RollupBatch
	b.Cursor = d.uvarint()
	b.Missed = d.uvarint()
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)-d.off)/8+1 {
		// Each rollup costs at least 8 bytes on the wire; a count beyond
		// that is a corrupt frame, caught before allocating for it.
		return RollupBatch{}, fmt.Errorf("hbnet: rollup frame claims %d rollups in %d bytes", n, len(body))
	}
	if n > 0 && d.err == nil {
		b.Rollups = make([]observer.Rollup, 0, n)
		var prevStart int64
		for i := uint64(0); i < n; i++ {
			var r observer.Rollup
			nameLen := d.uvarint()
			if nameLen > maxFeedName {
				return RollupBatch{}, fmt.Errorf("hbnet: rollup app name of %d bytes exceeds %d", nameLen, maxFeedName)
			}
			r.App = string(d.bytes(int(nameLen)))
			start := prevStart + d.varint()
			r.Start = time.Unix(0, start)
			r.End = time.Unix(0, start+d.varint())
			prevStart = start
			r.Records = d.uvarint()
			r.Missed = d.uvarint()
			r.Count = d.uvarint()
			flags := d.byte()
			if flags&rollupFlagRateOK != 0 {
				r.RateOK = true
				r.Rate.PerSec = math.Float64frombits(d.uint64())
				r.Rate.Beats = int(d.uvarint())
				r.Rate.Span = time.Duration(d.varint())
			}
			r.Rate.FirstSeq = d.uvarint()
			r.Rate.LastSeq = d.uvarint()
			r.MinInterval = time.Duration(d.varint())
			r.MaxInterval = time.Duration(d.varint())
			r.MeanInterval = time.Duration(d.varint())
			if d.err != nil {
				break
			}
			b.Rollups = append(b.Rollups, r)
		}
	}
	if d.err != nil {
		return RollupBatch{}, fmt.Errorf("hbnet: truncated rollup frame: %w", d.err)
	}
	return b, nil
}

// decoder is a cursor over a frame body that records the first failure
// instead of forcing an error check per field.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) uint32() uint32 {
	b := d.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) uint64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}
