// Package scheduler implements the paper's external observer (§5.3): a
// service that reads an application's heart rate and target window through
// the Heartbeats interface and adjusts the number of cores allocated to the
// application, using the minimum resources that keep performance inside the
// window. The scheduler never inspects the application itself — only its
// heartbeats — which is the paper's central argument: decisions are based
// directly on application-defined performance, not on proxies like priority
// or utilization.
package scheduler

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/control"
	"repro/observer"
)

// CoreMachine is the resource actuator: something that can grant cores to
// the observed application. sim.Machine implements it; a real deployment
// would wrap CPU-affinity syscalls.
type CoreMachine interface {
	// SetCores grants n cores, clamped to the machine's limits, and
	// returns the effective allocation.
	SetCores(n int) int
	// Cores returns the current effective allocation.
	Cores() int
	// MaxCores returns the largest grantable allocation.
	MaxCores() int
}

// Policy maps one heart-rate observation to a desired core count.
type Policy interface {
	DesiredCores(rate float64, rateOK bool, current, max int) int
}

// StepperPolicy adapts the paper's threshold stepper: one core up when the
// rate is below the window, one down when above.
type StepperPolicy struct {
	Stepper *control.Stepper
}

// DesiredCores implements Policy.
func (p StepperPolicy) DesiredCores(rate float64, rateOK bool, current, max int) int {
	switch p.Stepper.Decide(rate, rateOK) {
	case control.StepUp:
		return current + 1
	case control.StepDown:
		return current - 1
	default:
		return current
	}
}

// PIPolicy adapts a PI controller whose output is interpreted as a
// fractional core count; the extension ablated against the stepper.
type PIPolicy struct {
	PI *control.PI
	// Dt is the assumed seconds between observations (e.g. the polling
	// interval or the expected window duration).
	Dt float64
}

// DesiredCores implements Policy.
func (p PIPolicy) DesiredCores(rate float64, rateOK bool, current, max int) int {
	if !rateOK {
		return current
	}
	return int(math.Round(p.PI.Update(rate, p.Dt)))
}

// Sample records one scheduling decision, for experiment traces.
type Sample struct {
	Beat      uint64  // application beat count at decision time
	Rate      float64 // observed heart rate (beats/s)
	RateOK    bool
	Cores     int // allocation after the decision
	TargetMin float64
	TargetMax float64
}

// CoreScheduler couples an observer.Source to a CoreMachine through a
// Policy. Drive it either by calling Step at decision points (the
// deterministic experiment harness does this once per heartbeat window) or
// with Run for a wall-clock polling loop.
type CoreScheduler struct {
	source  observer.Source
	machine CoreMachine
	policy  Policy
	window  int // observation window in beats (0: source default)
}

// Option configures New.
type Option func(*CoreScheduler)

// WithWindow sets the observation window in beats used for rate
// measurements (default: the application's default window).
func WithWindow(n int) Option { return func(s *CoreScheduler) { s.window = n } }

// New creates a scheduler. Any nil argument is an error.
func New(source observer.Source, machine CoreMachine, policy Policy, opts ...Option) (*CoreScheduler, error) {
	if source == nil || machine == nil || policy == nil {
		return nil, fmt.Errorf("scheduler: nil source, machine, or policy")
	}
	s := &CoreScheduler{source: source, machine: machine, policy: policy}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Step performs one observe–decide–actuate cycle.
func (s *CoreScheduler) Step() (Sample, error) {
	maxRecords := s.window
	if maxRecords <= 0 {
		maxRecords = 0 // source default
	}
	snap, err := s.source.Snapshot(maxRecords)
	if err != nil {
		return Sample{}, fmt.Errorf("scheduler: %w", err)
	}
	rate, ok := snap.Rate(s.window)
	cur, max := s.machine.Cores(), s.machine.MaxCores()
	desired := s.policy.DesiredCores(rate, ok, cur, max)
	granted := cur
	if desired != cur {
		granted = s.machine.SetCores(desired)
	}
	return Sample{
		Beat:      snap.Count,
		Rate:      rate,
		RateOK:    ok,
		Cores:     granted,
		TargetMin: snap.TargetMin,
		TargetMax: snap.TargetMax,
	}, nil
}

// Run steps every interval until ctx is cancelled, invoking onSample (if
// non-nil) after each cycle and onError (if non-nil) on failures.
func (s *CoreScheduler) Run(ctx context.Context, interval time.Duration, onSample func(Sample), onError func(error)) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		sample, err := s.Step()
		if err != nil {
			if onError != nil {
				onError(err)
			}
		} else if onSample != nil {
			onSample(sample)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}
