package balance

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves goroutines running —
// the updater's decision loop must stop when its stream ends.
func TestMain(m *testing.M) { leakcheck.Main(m) }
