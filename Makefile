# Tier-1 verification plus race checking and the short benchmark pass in
# one command: `make ci`.

GO ?= go

.PHONY: ci vet analyze build build-extras test race net-loopback sim-matrix scale-matrix drain-scenario failover-scenario fuzz-short docs bench-short bench bench-compare bench-net bench-relay bench-shm bench-balance benchgate

ci: vet analyze build build-extras race net-loopback sim-matrix scale-matrix drain-scenario failover-scenario fuzz-short docs bench-short bench-compare bench-net bench-relay bench-shm bench-balance benchgate

vet:
	$(GO) vet ./...

# Project-specific static analysis: tools/hbvet enforces the clock seam
# (no wall-clock reads outside the seam files), the hot-path contract
# (//hbvet:hotpath functions stay allocation- and lock-free, transitively),
# and clock hygiene (types that store a Clock must use it). Every finding
# fails ci exactly like a broken test. staticcheck rides along when its
# module is available (generate tools/staticcheck.sum with
# `go mod tidy -modfile=tools/staticcheck.mod` on a networked machine);
# in an offline container the probe fails and the step is skipped, never
# silently degrading the hbvet gate, which is stdlib-only and always runs.
analyze:
	$(GO) run ./tools/hbvet ./...
	@if $(GO) run -modfile=tools/staticcheck.mod honnef.co/go/tools/cmd/staticcheck -version >/dev/null 2>&1; then \
		$(GO) run -modfile=tools/staticcheck.mod honnef.co/go/tools/cmd/staticcheck ./...; \
	else \
		echo "analyze: staticcheck unavailable (no module cache/network); skipped"; \
	fi

build:
	$(GO) build ./...

# The examples and commands are main packages `go build ./...` covers, but
# building them explicitly keeps their breakage attributable when ci fails.
build-extras:
	$(GO) build ./examples/...
	$(GO) build ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The hbnet loopback round trip, briefly and race-checked: one real TCP
# server and client exchanging records in-process — the fastest signal
# that the wire protocol still works end to end.
net-loopback:
	$(GO) test -race -run 'TestLoopbackRoundTrip' ./hbnet

# The deterministic simulation matrix, race-checked: 100+ seeded
# whole-stack scenarios (lapped rings, producer restarts, file recreation,
# link blips, partitions, relay outages across every topology), hundreds
# of simulated seconds in a few real ones, every scenario checked against
# the simcheck delivery contract. The run is recorded as test2json events
# in BENCH_sim.json so the suite's runtime trajectory is tracked across
# PRs; a failing scenario prints its seed (replay with SIMNET_SEED=<seed>)
# both to the console and into the recording. One rotating seed rides
# along with the fixed ones, widening coverage over time.
sim-matrix:
	@rm -f BENCH_sim.json
	$(GO) test -race -run 'TestScenarioMatrix' -v -json ./simnet > BENCH_sim.json; \
		status=$$?; \
		sed -n 's/^{.*"Output":"\(.*\)"}$$/\1/p' BENCH_sim.json \
			| awk '{printf "%s", $$0}' | sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' \
			| grep -E 'matrix:|SIMNET_SEED' || true; \
		exit $$status

# The scale matrix: seeded 10k-producer relay-tree runs (Zipf hot-key
# skew, producer churn, correlated silence bursts) through package loadgen
# under virtual time, plus the equal-volume state-growth check, plus the
# benchmark that records p99 virtual delivery latency and heap
# bytes/producer into BENCH_scale.json for benchgate's ceilings. `-short`
# keeps the PR tier at 10k producers; SCALE_FULL=1 adds the 100k and 1M
# tiers. A failing scenario prints SCALE_SEED=<seed> for exact replay.
scale-matrix:
	@rm -f BENCH_scale.json
	$(GO) test -run 'TestScale' $(if $(SCALE_FULL),,-short) \
		-bench 'BenchmarkScale' -benchtime=1x -timeout 30m \
		-v -json ./simnet > BENCH_scale.json; \
		status=$$?; \
		sed -n 's/^{.*"Output":"\(.*\)"}$$/\1/p' BENCH_scale.json \
			| awk '{printf "%s", $$0}' | sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' \
			| grep -E 'scale:|SCALE_SEED' || true; \
		exit $$status

# The balancer's tests in isolation, race-checked: the drain/reclaim
# scenario arc also runs inside sim-matrix (EvNodeDrain scenarios, with
# the matrix gate asserting the arc was exercised), but this shard keeps
# a balance-layer failure attributable — hysteresis edges, lock-free
# swaps under -race, and the end-to-end updater drain all in one place.
drain-scenario:
	$(GO) test -race ./balance ./internal/simcheck

# The elastic-membership shard, race-checked: the deterministic leaf-die
# failover and backpressure-shed tests, then full scenario-runner replays
# of generated leaf-die seeds (seeds whose schedules contain EvLeafDie —
# re-probe if the generator's draw order ever changes). The failover arc
# also runs inside sim-matrix, whose gate asserts handoffs were exercised;
# this shard keeps an elastic-membership failure attributable. A failing
# scenario prints SIMNET_SEED=<seed> for exact replay.
failover-scenario:
	$(GO) test -race -run 'TestLeafDieFailoverDeterministic|TestBackpressureShedExactlyAccountsGap' ./simnet
	@for seed in 1 26 42; do \
		echo "failover-scenario: replaying SIMNET_SEED=$$seed"; \
		SIMNET_SEED=$$seed $(GO) test -race -run 'TestScenarioMatrix' ./simnet || exit 1; \
	done

# Short go-fuzz passes over the hbnet wire codec: the decoders face bytes
# from the network, so they must never panic and must decode accepted
# frames to values that re-encode identically. The checked-in corpus under
# hbnet/testdata/fuzz holds past finds as regressions.
fuzz-short:
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeFrame$$' -fuzztime 3s ./hbnet
	$(GO) test -run '^$$' -fuzz 'FuzzDecodeRollup$$' -fuzztime 3s ./hbnet

# Documentation verification: vet, every godoc Example compiled and run,
# and the README/ARCHITECTURE code blocks checked against the sources they
# are annotated with (tools/docscheck), so the docs cannot silently drift
# from the code.
docs: vet
	$(GO) test -run '^Example' ./...
	$(GO) run ./tools/docscheck README.md ARCHITECTURE.md

# The core-API benchmarks only, briefly: enough to catch a hot-path
# regression without regenerating every figure.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkBeat$$|BenchmarkHeartbeatParallel|BenchmarkThreadBeat' \
		-benchmem -benchtime=200ms .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Echo the human-readable ns/op lines back out of a go test -json capture.
define show-bench
	@sed -n 's/^{.*"Output":"\(.*\)"}$$/\1/p' $(1) \
		| awk '{printf "%s", $$0}' \
		| sed -e 's/\\n/\n/g' -e 's/\\t/\t/g' \
		| grep 'ns/op'
endef

# Snapshot polling vs cursor streaming, recorded as test2json events in
# BENCH_stream.json so the consumer-path perf trajectory is tracked across
# PRs (compare the Output lines of successive runs).
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkPollVsStream' -benchmem \
		-benchtime=200ms -json . > BENCH_stream.json
	$(call show-bench,BENCH_stream.json)

# The remote consumer path: sustained records/s over loopback TCP and the
# idle-tick cost, recorded in BENCH_net.json alongside BENCH_stream.json.
bench-net:
	$(GO) test -run '^$$' -bench 'BenchmarkNetStream' -benchmem \
		-benchtime=200ms -json ./hbnet > BENCH_net.json
	$(call show-bench,BENCH_net.json)

# The fan-in tier: records/s through N producers → relay → subscriber over
# real loopback TCP, plus the in-process downsample cost, recorded in
# BENCH_relay.json next to the other trajectories.
bench-relay:
	$(GO) test -run '^$$' -bench 'BenchmarkRelay' -benchmem \
		-benchtime=1s -json ./hbnet > BENCH_relay.json
	$(call show-bench,BENCH_relay.json)

# The shared-memory transport against loopback TCP: the same record
# batches through both, plus the idle-tick cost of each, recorded in
# BENCH_shm.json. The shm rows are the paper's shared-memory registry
# claim in numbers — observation without crossing the kernel.
bench-shm:
	$(GO) test -run '^$$' -bench 'BenchmarkShmVsTCP' -benchmem \
		-benchtime=1s -json ./hbshm > BENCH_shm.json
	$(call show-bench,BENCH_shm.json)

# The balancer's routing hot path: lock-free copy-on-write Pick vs the
# RWMutex baseline at 1/4/8 goroutines, Pick throughput during concurrent
# weight swaps, and the measured remap fraction of a node removal,
# recorded in BENCH_balance.json next to the other trajectories.
bench-balance:
	$(GO) test -run '^$$' -bench 'BenchmarkPick|BenchmarkRemap' -benchmem \
		-benchtime=200ms -json ./balance > BENCH_balance.json
	$(call show-bench,BENCH_balance.json)

# Gate the recorded benchmarks: fan-in-32 must stay within 20% of the
# committed baseline (tools/benchgate/baseline.json), the shared-memory
# transport must stay faster than loopback TCP, and the balancer's
# lock-free read path must beat the RWMutex baseline under contention,
# allocate nothing (the -require contract, which also verifies the measured
# function still carries its //hbvet:hotpath mark so the static and
# measured 0-alloc guarantees cover the same code), and keep a single-node
# removal's remap fraction under the minimal-disruption ceiling
# (simcheck.RemapBound of a 1/8 share). The require contract also gates
# the scale-matrix recording (BENCH_scale.json): p99 virtual delivery
# latency and heap bytes/producer at the 10k-producer tier against their
# committed ceilings. Run after scale-matrix, bench-relay, bench-shm, and
# bench-balance have refreshed the JSON captures.
benchgate:
	$(GO) run ./tools/benchgate -file BENCH_relay.json -bench Relay/fanin-32 \
		-metric records/s -baseline tools/benchgate/baseline.json -tolerance 0.20
	$(GO) run ./tools/benchgate -file BENCH_shm.json -metric records/s \
		-faster ShmVsTCP/shm/stream,ShmVsTCP/tcp/stream
	$(GO) run ./tools/benchgate -file BENCH_balance.json -metric picks/s \
		-faster Pick/cow/p8,Pick/rwmutex/p8
	$(GO) run ./tools/benchgate -require tools/benchgate/require.json
	$(GO) run ./tools/benchgate -file BENCH_balance.json -bench Remap \
		-metric remapfrac -atmost 0.2175
	$(GO) run ./tools/benchgate -file BENCH_balance.json -bench Pick/cow/p8 \
		-metric picks/s -baseline tools/benchgate/baseline.json -tolerance 0.25
