package simnet

import (
	"io"
	"net"
	"sync"
	"time"

	"repro/heartbeat"
)

// conn is one endpoint of an in-memory connection: a pair of directional
// pipe buffers shared with its peer. Reads honor the link's latency on the
// network's clock; writes block only when the link carries a write limit
// (SetWriteLimit) and the peer has stopped draining — kernel-style
// backpressure, which is what lets a scenario drive a server's write
// timeout — and count against the link's byte trigger. Deadlines, read and
// write, are evaluated on the network's clock: a virtual-clock simulation
// times out at the simulated instant, deterministically, exactly like the
// latency front.
type conn struct {
	nw            *Network
	link          *link
	peer          *conn
	local, remote addr
	rd, wr        *pipeBuf

	dlMu      sync.Mutex
	rDeadline time.Time
	wDeadline time.Time
	closeOnce sync.Once
	severOnce sync.Once
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rDeadline, c.wDeadline = t, t
	c.dlMu.Unlock()
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rDeadline = t
	c.dlMu.Unlock()
	return nil
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.wDeadline = t
	c.dlMu.Unlock()
	return nil
}

func (c *conn) readDeadline() time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	return c.rDeadline
}

func (c *conn) writeDeadline() time.Time {
	c.dlMu.Lock()
	defer c.dlMu.Unlock()
	return c.wDeadline
}

// timeoutError satisfies net.Error the way a socket deadline does.
type timeoutError struct{}

func (timeoutError) Error() string   { return "simnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil // io.Reader allows zero-length reads; never block on one
	}
	for {
		n, wait, notify, err := c.rd.tryRead(p, c.nw.clk)
		if n > 0 || err != nil {
			return n, err
		}
		// Nothing deliverable yet: wait for new data / close, for the
		// latency front to pass, or for the read deadline — all on the
		// network's clock, so a virtual simulation times out virtually.
		var latency <-chan time.Time
		if wait > 0 {
			latency = heartbeat.After(c.nw.clk, wait)
		}
		var deadline <-chan time.Time
		if dl := c.readDeadline(); !dl.IsZero() {
			d := dl.Sub(clockNow(c.nw.clk))
			if d <= 0 {
				return 0, timeoutError{}
			}
			deadline = heartbeat.After(c.nw.clk, d)
		}
		select {
		case <-notify:
		case <-latency:
		case <-deadline:
			return 0, timeoutError{}
		}
	}
}

func (c *conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	// Backpressure: while the link carries a write limit and the peer has
	// not drained below it, block — honoring the write deadline on the
	// network's clock, the way a full kernel socket buffer does.
	for {
		c.nw.mu.Lock()
		limit := c.link.wlimit
		c.nw.mu.Unlock()
		if limit <= 0 {
			break
		}
		full, notify, err := c.wr.overLimit(limit)
		if err != nil {
			return 0, err
		}
		if !full {
			break
		}
		var deadline <-chan time.Time
		if dl := c.writeDeadline(); !dl.IsZero() {
			d := dl.Sub(clockNow(c.nw.clk))
			if d <= 0 {
				return 0, timeoutError{}
			}
			deadline = heartbeat.After(c.nw.clk, d)
		}
		select {
		case <-notify:
		case <-deadline:
			return 0, timeoutError{}
		}
	}

	c.nw.mu.Lock()
	lat := c.link.latency
	deliver := p
	severAfter := false
	if c.link.armed {
		if int64(len(p)) > c.link.cutAfter {
			deliver = p[:c.link.cutAfter]
			c.link.armed = false
			c.link.cutAfter = -1
			severAfter = true
		} else {
			c.link.cutAfter -= int64(len(p))
		}
	}
	c.nw.mu.Unlock()

	ready := clockNow(c.nw.clk).Add(lat)
	n, err := c.wr.write(deliver, ready)
	if err != nil {
		return n, err
	}
	if severAfter {
		c.sever(errSevered)
		return n, errSevered
	}
	return n, nil
}

// Close is the clean teardown: the peer drains what was already in flight
// and then reads io.EOF; writes from either side fail from now on.
func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.wr.closeClean()
		c.rd.fail(net.ErrClosed)
		c.unregister()
	})
	return nil
}

// sever is the fault-injected teardown: both directions fail immediately,
// pending bytes are discarded — an abrupt connection reset.
func (c *conn) sever(err error) {
	c.severOnce.Do(func() {
		c.rd.fail(err)
		c.wr.fail(err)
		c.unregister()
	})
}

func (c *conn) unregister() {
	c.nw.mu.Lock()
	delete(c.link.conns, c)
	delete(c.link.conns, c.peer)
	c.nw.mu.Unlock()
}

// clockNow is heartbeat.Now under the package's local name.
func clockNow(clk heartbeat.Clock) time.Time { return heartbeat.Now(clk) }

// seg is one write's worth of bytes, deliverable once the clock reaches
// ready.
type seg struct {
	data  []byte
	ready time.Time
}

// pipeBuf is one direction of a connection.
type pipeBuf struct {
	mu     sync.Mutex
	segs   []seg
	size   int   // pending bytes across segs
	closed bool  // clean close: drain, then EOF
	err    error // sever: immediate failure, pending bytes discarded
	notify chan struct{}
}

func newPipeBuf() *pipeBuf {
	return &pipeBuf{notify: make(chan struct{})}
}

// tryRead delivers available bytes. When nothing is deliverable it returns
// (0, wait, notify, nil): wait > 0 means the head segment becomes ready
// after wait on the network's clock; notify fires on any state change.
func (b *pipeBuf) tryRead(p []byte, clk heartbeat.Clock) (n int, wait time.Duration, notify <-chan struct{}, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return 0, 0, nil, b.err
	}
	if len(b.segs) > 0 {
		now := clockNow(clk)
		s := &b.segs[0]
		if s.ready.After(now) {
			return 0, s.ready.Sub(now), b.notify, nil
		}
		n = copy(p, s.data)
		if n == len(s.data) {
			b.segs[0] = seg{}
			b.segs = b.segs[1:]
		} else {
			s.data = s.data[n:]
		}
		b.size -= n
		// The drain may unblock a writer waiting on the buffer limit.
		b.wakeLocked()
		return n, 0, nil, nil
	}
	if b.closed {
		return 0, 0, nil, io.EOF
	}
	return 0, 0, b.notify, nil
}

func (b *pipeBuf) write(p []byte, ready time.Time) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return 0, b.err
	}
	if b.closed {
		return 0, net.ErrClosed
	}
	if len(p) > 0 {
		b.segs = append(b.segs, seg{data: append([]byte(nil), p...), ready: ready})
		b.size += len(p)
		b.wakeLocked()
	}
	return len(p), nil
}

// overLimit reports whether the buffer holds at least limit pending bytes;
// when it does, notify fires on any state change (a drain, a close, a
// sever) so a blocked writer can recheck.
func (b *pipeBuf) overLimit(limit int) (full bool, notify <-chan struct{}, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return false, nil, b.err
	}
	if b.closed {
		return false, nil, net.ErrClosed
	}
	if b.size >= limit {
		return true, b.notify, nil
	}
	return false, nil, nil
}

func (b *pipeBuf) closeClean() {
	b.mu.Lock()
	if !b.closed && b.err == nil {
		b.closed = true
		b.wakeLocked()
	}
	b.mu.Unlock()
}

func (b *pipeBuf) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
		b.segs = nil
		b.size = 0
		b.wakeLocked()
	}
	b.mu.Unlock()
}

func (b *pipeBuf) wakeLocked() {
	close(b.notify)
	b.notify = make(chan struct{})
}
