package ring

import (
	"math"
	"sync/atomic"
)

// SP is a lock-free single-producer, multi-reader heartbeat ring. It is the
// storage behind the sharded beat hot path: exactly one goroutine calls Push,
// while any number of goroutines read concurrently through Last, Read, or a
// Cursor. No operation blocks, and Push performs a single atomic store per
// beat in the steady state.
//
// The key observation is that a heartbeat record is almost always just "one
// more beat at the current timestamp": timestamps repeat (clocks are coarser
// than beat rates) and most beats carry tag 0. SP therefore run-length
// encodes the stream instead of storing one slot per record:
//
//   - total is the published beat count; record seq exists iff seq <= total.
//   - A time index of (start, time) entries marks each point where the
//     timestamp changed; record seq's timestamp is the time of the last
//     entry with start <= seq. A beat whose timestamp equals the previous
//     beat's writes no entry at all.
//   - Tagged beats write (seq, tag) into a tag slot addressed by seq; plain
//     beats write nothing. A slot whose mark doesn't equal the queried seq
//     means "tag 0".
//
// Readers validate against overwrite races seqlock-style: an index entry or
// tag slot is trusted only if, after reading it, the published counters show
// the writer cannot yet have wrapped around onto it. Torn reads are thereby
// detected and the affected records skipped, never returned corrupt —
// mirroring the paper's requirement that external observers read heartbeat
// buffers without coordinating with the application.
//
// The capacity bounds how far back reads reconstruct records (and how many
// distinct-timestamp runs and tagged beats are retained). The zero value is
// not usable; construct with NewSP.
type SP struct {
	// Published counters (written by the producer, polled by readers).
	total   atomic.Uint64 // beats ever pushed
	entries atomic.Uint64 // time-index entries ever written

	// Producer-private mirrors; never read by other goroutines.
	seq      uint64
	idxSeq   uint64
	lastTime int64

	idx     []idxEntry
	tagMark []atomic.Uint64
	tagVal  []atomic.Int64
}

// idxEntry marks that records from start onward carry time, until the next
// entry's start. ver holds the entry number while the pair is stable and 0
// while it is being (re)written, seqlock-style, so readers detect overwrite
// races exactly.
type idxEntry struct {
	ver   atomic.Uint64
	start atomic.Uint64
	time  atomic.Int64
}

// Entry is one reconstructed record of an SP ring.
type Entry struct {
	// Seq is the 1-based position of the record in the ring's history.
	Seq uint64
	// Time is the record's timestamp in Unix nanoseconds.
	Time int64
	// Tag is the caller-supplied tag (0 for plain beats).
	Tag int64
}

// NewSP returns an SP ring that retains the last capacity records.
// It panics if capacity <= 0.
func NewSP(capacity int) *SP {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &SP{
		// math.MinInt64 forces the first push to open a time run.
		lastTime: math.MinInt64,
		idx:      make([]idxEntry, capacity),
		tagMark:  make([]atomic.Uint64, capacity),
		tagVal:   make([]atomic.Int64, capacity),
	}
}

// Cap returns how many records the ring retains for readers.
func (r *SP) Cap() int { return len(r.idx) }

// Total returns the number of records ever pushed.
//
//hbvet:hotpath
func (r *SP) Total() uint64 { return r.total.Load() }

// Entries returns the number of time-index entries ever written. The
// difference between two observations bounds how many distinct timestamps
// the producer has emitted in between.
//
//hbvet:hotpath
func (r *SP) Entries() uint64 { return r.entries.Load() }

// Push appends a record with the given timestamp and tag and returns its
// sequence number, plus whether this push opened a new time run (callers use
// this to amortize index-pressure checks). Push must only ever be called
// from one goroutine. It never allocates and, while the timestamp stays the
// same and tag == 0, performs exactly one atomic store.
//
//hbvet:hotpath
func (r *SP) Push(timeNanos, tag int64) (seq uint64, newRun bool) {
	seq = r.seq + 1
	r.seq = seq
	if timeNanos != r.lastTime {
		r.lastTime = timeNanos
		k := r.idxSeq + 1
		r.idxSeq = k
		e := &r.idx[(k-1)%uint64(len(r.idx))]
		// Seqlock write: invalidate, fill, publish. Readers of the
		// lapped entry see ver change and reject the pair.
		e.ver.Store(0)
		e.start.Store(seq)
		e.time.Store(timeNanos)
		e.ver.Store(k)
		r.entries.Store(k)
		newRun = true
	}
	if tag != 0 {
		i := (seq - 1) % uint64(len(r.tagMark))
		// Mark before value: a reader that sees mark == seq, reads the
		// value, and still sees mark == seq cannot have read a value
		// from a different lap.
		r.tagMark[i].Store(seq)
		r.tagVal[i].Store(tag)
	}
	r.total.Store(seq)
	return seq, newRun
}

// loadEntry reads time-index entry k (1-based). ok is false when the entry
// has been — or is concurrently being — overwritten by a later lap.
func (r *SP) loadEntry(k uint64) (start uint64, tm int64, ok bool) {
	e := &r.idx[(k-1)%uint64(len(r.idx))]
	if e.ver.Load() != k {
		return 0, 0, false
	}
	start = e.start.Load()
	tm = e.time.Load()
	if e.ver.Load() != k {
		return 0, 0, false
	}
	return start, tm, true
}

// tag returns the tag of record seq. Safe only for seq within the retained
// window; outside it the tag degrades to 0 (never to a wrong value).
func (r *SP) tag(seq uint64) int64 {
	i := (seq - 1) % uint64(len(r.tagMark))
	if r.tagMark[i].Load() != seq {
		return 0
	}
	v := r.tagVal[i].Load()
	if r.tagMark[i].Load() != seq {
		return 0
	}
	return v
}

// Read reconstructs the record with the given sequence number. ok is false
// when seq has not been pushed yet or is too old to reconstruct.
//
//hbvet:hotpath
func (r *SP) Read(seq uint64) (Entry, bool) {
	if seq == 0 || seq > r.total.Load() {
		return Entry{}, false
	}
	tm, ok := r.seek(seq)
	if !ok {
		return Entry{}, false
	}
	return Entry{Seq: seq, Time: tm, Tag: r.tag(seq)}, true
}

// seek returns the timestamp of record seq by locating the greatest
// time-index entry with start <= seq. ok is false when no retained entry
// covers seq.
func (r *SP) seek(seq uint64) (tm int64, ok bool) {
	hi := r.entries.Load()
	if hi == 0 {
		return 0, false
	}
	lo := uint64(1)
	if hi > uint64(len(r.idx)) {
		lo = hi - uint64(len(r.idx)) + 1
	}
	// Binary search, biased high. Overwritten probes read larger starts
	// and push the search left; the final validation rejects any stale
	// pick.
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if r.idx[(mid-1)%uint64(len(r.idx))].start.Load() <= seq {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	start, tm, ok := r.loadEntry(lo)
	if !ok || start > seq {
		return 0, false
	}
	return tm, true
}

// Last reconstructs up to n of the most recent records, oldest to newest.
// Records whose timestamp run has been overwritten are skipped. A
// non-positive n yields nil; n is clipped to the ring capacity.
func (r *SP) Last(n int) []Entry {
	if n <= 0 {
		return nil
	}
	total := r.total.Load()
	if total == 0 {
		return nil
	}
	if n > len(r.idx) {
		n = len(r.idx)
	}
	if uint64(n) > total {
		n = int(total)
	}
	first := total - uint64(n) + 1

	// Collect the time runs covering [first, total], walking the index
	// backward so the scan is bounded by the requested window (at most
	// n+1 entries cover n records) rather than the ring capacity. A
	// lapped entry ends the walk: everything older is gone too.
	hi := r.entries.Load()
	lo := uint64(1)
	if hi > uint64(len(r.idx)) {
		lo = hi - uint64(len(r.idx)) + 1
	}
	type run struct {
		start uint64
		time  int64
	}
	maxRuns := uint64(n) + 1
	if span := hi - lo + 1; span < maxRuns {
		maxRuns = span
	}
	runs := make([]run, 0, maxRuns)
	for k := hi; k >= lo; k-- {
		start, tm, ok := r.loadEntry(k)
		if !ok {
			break
		}
		runs = append(runs, run{start, tm})
		if start <= first {
			break
		}
	}
	if len(runs) == 0 {
		return nil
	}
	// Reverse into oldest-first order for the tandem walk below.
	for i, j := 0, len(runs)-1; i < j; i, j = i+1, j-1 {
		runs[i], runs[j] = runs[j], runs[i]
	}

	out := make([]Entry, 0, n)
	ri := 0
	for seq := first; seq <= total; seq++ {
		for ri+1 < len(runs) && runs[ri+1].start <= seq {
			ri++
		}
		if runs[ri].start > seq {
			continue // older than the oldest retained run
		}
		out = append(out, Entry{Seq: seq, Time: runs[ri].time, Tag: r.tag(seq)})
	}
	return out
}

// Cursor consumes an SP ring sequentially: the aggregator side of the
// sharded heartbeat path. A Cursor must be guarded by the caller (a single
// consumer at a time); the producer may keep pushing concurrently. Callers
// must consume fast enough that unconsumed records are never overwritten —
// the heartbeat aggregator enforces this by flushing producers whose backlog
// reaches half the ring capacity — so cursor reads need no validation.
type Cursor struct {
	r    *SP
	next uint64 // next seq to consume
	k    uint64 // time-index entry covering next (0 = none yet)
	tm   int64  // time of entry k
}

// NewCursor returns a cursor positioned before the first record.
func (r *SP) NewCursor() Cursor { return Cursor{r: r} }

// Consumed returns how many records have been consumed.
func (c *Cursor) Consumed() uint64 { return c.next }

// EntriesConsumed returns how many time-index entries have been fully
// passed; entry k itself may still cover future records.
func (c *Cursor) EntriesConsumed() uint64 {
	if c.k == 0 {
		return 0
	}
	return c.k - 1
}

// advance moves the covering entry forward until it covers seq.
func (c *Cursor) advance(seq uint64) {
	published := c.r.entries.Load()
	for c.k < published {
		start, tm, _ := c.r.loadEntry(c.k + 1)
		if start > seq {
			break
		}
		c.k++
		c.tm = tm
	}
}

// PeekTime returns the timestamp of the next record. It must only be called
// when at least one record is pending.
//
//hbvet:hotpath
func (c *Cursor) PeekTime() int64 {
	c.advance(c.next + 1)
	return c.tm
}

// RunLen reports how many pending records, up to limit, share the next
// record's timestamp run.
//
//hbvet:hotpath
func (c *Cursor) RunLen(limit uint64) uint64 {
	c.advance(c.next + 1)
	end := limit
	published := c.r.entries.Load()
	if c.k < published {
		if start, _, ok := c.r.loadEntry(c.k + 1); ok && start-1 < end {
			end = start - 1
		}
	}
	return end - c.next
}

// Skip consumes n records without reconstructing them.
//
//hbvet:hotpath
func (c *Cursor) Skip(n uint64) {
	c.next += n
	c.advance(c.next)
}

// Next reconstructs and consumes the next record. ok is false when no
// record at or below limit is pending.
//
//hbvet:hotpath
func (c *Cursor) Next(limit uint64) (Entry, bool) {
	if c.next >= limit {
		return Entry{}, false
	}
	seq := c.next + 1
	c.advance(seq)
	e := Entry{Seq: seq, Time: c.tm, Tag: c.r.tag(seq)}
	c.next = seq
	return e, true
}
