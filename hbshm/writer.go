package hbshm

import (
	"fmt"
	"math"
	"os"
	"sync"

	"repro/heartbeat"
)

// Writer publishes heartbeats into a shared-memory ring for external
// observers. It implements heartbeat.Sink, heartbeat.BatchSink, and
// heartbeat.TargetSink, so it is normally attached with
// heartbeat.WithSink — exactly like the file ring's writer, with each
// record costing stores into mapped memory instead of a write(2). A
// region has exactly one writing process; within that process Writer is
// safe for concurrent use.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	mem      []byte
	capacity uint64
	mask     uint64 // capacity - 1, for slot addressing
	cursor   uint64 // highest sequence number published
	closed   bool
}

var _ heartbeat.TargetSink = (*Writer)(nil)
var _ heartbeat.BatchSink = (*Writer)(nil)

// Create creates (or truncates) a shared-memory heartbeat region at path
// retaining capacity records (rounded up to a power of two) and
// advertising the application's default window. Put path on a memory
// filesystem (/dev/shm on Linux) to keep the ring purely in memory; any
// mmap-able filesystem works.
func Create(path string, window, capacity int) (*Writer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("hbshm: invalid window %d", window)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("hbshm: invalid capacity %d", capacity)
	}
	capacity = nextPow2(capacity)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("hbshm: create: %w", err)
	}
	size := regionSize(capacity)
	// Size the file before mapping so observers never fault on a short
	// region, then write the static header through the mapping itself.
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbshm: truncate: %w", err)
	}
	mem, err := mmapFile(f, size, true)
	if err != nil {
		f.Close()
		return nil, err
	}
	copy(mem[offMagic:], Magic)
	byteOrder.PutUint32(mem[offVersion:], Version)
	byteOrder.PutUint32(mem[offRecordSize:], RecordSize)
	byteOrder.PutUint64(mem[offCapacity:], uint64(capacity))
	byteOrder.PutUint64(mem[offWindow:], uint64(window))
	return &Writer{f: f, mem: mem, capacity: uint64(capacity), mask: uint64(capacity) - 1}, nil
}

// WriteRecord publishes one heartbeat record (heartbeat.Sink). Records may
// arrive out of sequence order when multiple goroutines beat concurrently;
// the head only ever moves forward.
func (w *Writer) WriteRecord(r heartbeat.Record) error {
	if r.Seq == 0 {
		return fmt.Errorf("hbshm: record with zero sequence number")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbshm: writer closed")
	}
	w.writeSlotLocked(r)
	if r.Seq > w.cursor {
		w.cursor = r.Seq
		wordU64(w.mem, offHead).Store(r.Seq)
	}
	return nil
}

// WriteRecords publishes an ordered batch of records (heartbeat.BatchSink):
// the lock is taken and the head advanced once for the whole batch.
func (w *Writer) WriteRecords(recs []heartbeat.Record) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		if r.Seq == 0 {
			return fmt.Errorf("hbshm: record with zero sequence number")
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbshm: writer closed")
	}
	cursor := w.cursor
	for _, r := range recs {
		w.writeSlotLocked(r)
		if r.Seq > cursor {
			cursor = r.Seq
		}
	}
	if cursor > w.cursor {
		w.cursor = cursor
		// Head is stored after the batch's slots (mirroring the file
		// ring's cursor), so a head an observer loads only ever promises
		// records that were already published — and, dually, a slot that
		// fails to validate under a head covering it is permanently gone.
		wordU64(w.mem, offHead).Store(cursor)
	}
	return nil
}

// writeSlotLocked performs one seqlock slot write: zero the sequence word
// (readers of the old record now see it mid-write), store the fields,
// publish the new sequence number last. A reader that loads seq, copies
// fields, and re-loads the same seq can never observe a torn record.
//
// Only the two sequence-word stores are atomic. The field stores between
// them are plain: the bracketing atomics order them (neither the compiler
// nor the CPU moves a store across a sequentially-consistent one), and a
// sequentially-consistent store is an XCHG on amd64 — paying that per
// field would triple the per-record publish cost for ordering the seqlock
// already provides. Readers still load the fields atomically, which is
// what the validating re-load's ordering needs on weaker architectures.
func (w *Writer) writeSlotLocked(r heartbeat.Record) {
	off := slotOff(r.Seq, w.mask)
	wordU64(w.mem, off+recOffSeq).Store(0)
	byteOrder.PutUint64(w.mem[off+recOffTime:], uint64(r.Time.UnixNano()))
	byteOrder.PutUint64(w.mem[off+recOffTag:], uint64(r.Tag))
	byteOrder.PutUint32(w.mem[off+recOffProducer:], uint32(r.Producer))
	wordU64(w.mem, off+recOffSeq).Store(r.Seq)
}

// WriteTarget publishes the target heart-rate range (heartbeat.TargetSink).
// Readers validate against the version word: odd means mid-update.
func (w *Writer) WriteTarget(min, max float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("hbshm: writer closed")
	}
	ver := wordU64(w.mem, offTargetVer)
	ver.Add(1) // odd: update in progress
	wordU64(w.mem, offTargetMin).Store(math.Float64bits(min))
	wordU64(w.mem, offTargetMax).Store(math.Float64bits(max))
	ver.Add(1) // even: stable
	return nil
}

// Cursor returns the highest sequence number published so far.
func (w *Writer) Cursor() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cursor
}

// Close marks the region ended — observers drain what is published and
// then see stream end — and unmaps it. The file is left in place for
// late observers (remove it separately when the history should vanish).
// Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	// The closed flag is stored after the final head, so an observer that
	// sees it and then re-reads head is guaranteed the final cursor.
	wordU64(w.mem, offClosed).Store(1)
	err := munmap(w.mem)
	w.mem = nil
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}
