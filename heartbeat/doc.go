// Package heartbeat implements the Application Heartbeats framework from
// "Application Heartbeats for Software Performance and Health" (Hoffmann,
// Eastep, Santambrogio, Miller, Agarwal — MIT CSAIL, PPoPP 2010).
//
// Applications call Beat at significant points (a processed frame, a
// completed query, a finished chunk) to register progress. The intervals
// between heartbeats expose the application's actual performance — its heart
// rate, in beats per second — to the application itself and to external
// observers such as schedulers, runtimes, or health monitors. Applications
// declare their goal by setting a target heart-rate window; observers adapt
// resources (or the application adapts itself) to keep the measured rate
// inside that window.
//
// # Core concepts
//
//   - A Heartbeat owns a global (per-application) history of Records and a
//     default averaging window, both fixed at construction.
//   - Beat / BeatTag append a timestamped Record to the global history.
//   - Rate reports the average heart rate over the last w beats; w == 0 uses
//     the default window, and windows larger than the retained history are
//     silently clipped (as the paper specifies).
//   - SetTarget publishes the [min, max] beats-per-second goal so that
//     external observers can read it.
//   - History returns the most recent Records for in-depth analysis.
//   - Thread registers a per-thread handle with a private history, mirroring
//     the paper's local heartbeats. Go exposes no thread identity, so local
//     heartbeats attach to explicitly registered *Thread handles, one per
//     worker goroutine.
//
// # Sharded hot path
//
// Beat registration is built to run as fast as the hardware allows:
//
//   - Every Thread owns two lock-free single-producer rings (internal/ring
//     SP): a private local history for Beat, and a global shard for
//     GlobalBeat. A beat is a mutex-free, allocation-free push; the rings
//     run-length encode timestamps and store tags out of line, so in the
//     steady state (repeated timestamp, tag 0) a beat is a single atomic
//     store. Pair the Heartbeat with a CoarseClock to make repeated
//     timestamps the norm at high beat rates.
//   - A batched aggregator merges the shards into the global history — a
//     k-way merge by timestamp, ties broken by shard registration order —
//     assigning the dense global sequence numbers and delivering sink
//     batches (BatchSink). Merges happen on every read, on the interval
//     configured with WithFlushInterval, and whenever a shard's backlog
//     reaches half its capacity (WithShardCapacity), so no beat is ever
//     lost. When no sink is attached, backlog beyond the history capacity
//     is accounted without being materialized, since a bounded history
//     would discard it on arrival anyway.
//   - Beats on the Heartbeat itself (Beat/BeatTag) keep the reference
//     implementation's synchronous contract: the record is stored,
//     sequenced after all pending shard records, and delivered to the sink
//     before the call returns.
//
// The merged global history is a lock-free ring with seqlock-validated
// slots: observers never block producers, mirroring the paper's requirement
// that hardware or external software may read heartbeat buffers
// concurrently with the application. A mutex-guarded variant
// (WithLockedStore) exists for the locking ablation; the subdirectory
// package compat offers the paper's exact Table 1 function shapes.
//
// # Streaming consumers
//
// Readers that track the history over time consume it incrementally
// instead of re-reading windows:
//
//   - ReadSince(seq) returns only the records published after seq plus the
//     cursor to resume from — an idle call does no per-record work.
//   - Subscribe / SubscribeFrom return a Subscription whose Next blocks
//     until a flush publishes new records (wake on publication, no
//     polling) and delivers them as a batch, each record exactly once,
//     resumable across reconnects via its Cursor.
//
// Package observer builds its Stream abstraction — monitors, schedulers,
// and the multi-application hub — on these two calls.
//
// Cross-process observation — the paper's reference implementation writes
// heartbeats to a file — is provided by the companion package hbfile via the
// Sink hook (WithSink); its readers offer the same incremental ReadSince.
// Cross-machine observation is the companion package hbnet: the same
// cursor semantics streamed over TCP, with disconnected subscribers
// resuming via SubscribeFrom on the serving side.
//
// # Quick start
//
//	hb, _ := heartbeat.New(20)            // 20-beat default window
//	hb.SetTarget(30, 35)                  // goal: 30–35 beats/s
//	for _, frame := range frames {
//	    encode(frame)
//	    hb.Beat()
//	    if r, ok := hb.Rate(0); ok && r < 30 {
//	        lowerQuality()
//	    }
//	}
package heartbeat
