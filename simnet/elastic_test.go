package simnet

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/hbnet"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/sim"
)

// These tests pin the elastic-membership seams deterministically, where the
// scenario matrix hits them probabilistically: a full leaf decommission
// with cursor-preserving failover (no duplicate, no gap, names removed at
// every hop), and explicit backpressure shedding whose count exactly
// accounts the gap a lagging subscriber observed.

// elasticHarness is the shared fixture: a virtual clock, a simulated
// network, and real-time waits that poll while virtual time races.
type elasticHarness struct {
	t   *testing.T
	clk *sim.Clock
	nw  *Network
	ctx context.Context
}

func newElasticHarness(t *testing.T) *elasticHarness {
	t.Helper()
	clk := sim.NewClock(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go clk.AutoAdvance(ctx, 0)
	return &elasticHarness{t: t, clk: clk, nw: New(clk), ctx: ctx}
}

func (h *elasticHarness) opts(host string) []hbnet.ClientOption {
	return []hbnet.ClientOption{
		hbnet.WithDialer(h.nw.Host(host)),
		hbnet.WithClientClock(h.clk),
		hbnet.WithReconnectBackoff(20*time.Millisecond, 200*time.Millisecond),
	}
}

// producer brings up one heartbeat published by its own server at addr.
func (h *elasticHarness) producer(addr string) *heartbeat.Heartbeat {
	h.t.Helper()
	hb, err := heartbeat.New(20, heartbeat.WithClock(h.clk), heartbeat.WithCapacity(1<<12))
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { hb.Close() })
	srv := hbnet.NewServer(hbnet.WithServerClock(h.clk))
	if err := srv.PublishHeartbeat("app", hb); err != nil {
		h.t.Fatal(err)
	}
	ln, err := h.nw.Listen(addr)
	if err != nil {
		h.t.Fatal(err)
	}
	go srv.Serve(ln)
	h.t.Cleanup(func() { srv.Close() })
	return hb
}

// relay brings up a running relay serving its merged and rollup feeds at
// addr, returning the relay and its server (for explicit decommission).
func (h *elasticHarness) relay(addr string, ropts ...hbnet.RelayOption) (*hbnet.Relay, *hbnet.Server) {
	h.t.Helper()
	opts := append([]hbnet.RelayOption{
		hbnet.WithRelayClock(h.clk),
		hbnet.WithRollupInterval(100 * time.Millisecond),
		hbnet.WithMergedRetain(1 << 16),
	}, ropts...)
	relay := hbnet.NewRelay(opts...)
	srv := hbnet.NewServer(hbnet.WithServerClock(h.clk))
	if err := relay.PublishOn(srv, "merged", "rollup"); err != nil {
		h.t.Fatal(err)
	}
	ln, err := h.nw.Listen(addr)
	if err != nil {
		h.t.Fatal(err)
	}
	go srv.Serve(ln)
	go relay.Run(h.ctx)
	h.t.Cleanup(func() { srv.Close(); relay.Close() })
	return relay, srv
}

func (h *elasticHarness) waitFor(desc string, cond func() bool) {
	h.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			h.t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(time.Millisecond)
	}
}

func beat(hb *heartbeat.Heartbeat, n int) {
	for i := 0; i < n; i++ {
		hb.Beat()
	}
	hb.Flush()
}

// TestLeafDieFailoverDeterministic is the focused leaf-failover arc: two
// producers on two leaves, a consumer on the root, then leaf0 dies — its
// upstream re-homes to leaf1 with the cursor preserved (hbnet.Rebalance),
// the root drains and removes the dead leaf, and both producers keep
// beating. The consumer must see every record exactly once: one life, zero
// missed, totals conserved against the surviving topology.
func TestLeafDieFailoverDeterministic(t *testing.T) {
	h := newElasticHarness(t)
	p0 := h.producer("prod0")
	p1 := h.producer("prod1")

	leaf0, leaf0Srv := h.relay("leaf0")
	leaf1, _ := h.relay("leaf1")
	if _, err := leaf0.DialUpstream("app0", "prod0", "app", h.opts("leaf0")...); err != nil {
		t.Fatal(err)
	}
	if _, err := leaf1.DialUpstream("app1", "prod1", "app", h.opts("leaf1")...); err != nil {
		t.Fatal(err)
	}

	root, _ := h.relay("root")
	rootClients := make([]*hbnet.Client, 2)
	for li, leaf := range []string{"leaf0", "leaf1"} {
		c, err := root.DialUpstream(leaf, leaf, "merged", h.opts("root")...)
		if err != nil {
			t.Fatal(err)
		}
		rootClients[li] = c
	}

	// The consumer: a raw root subscription folded into the dense/dup
	// ledger.
	tracker := &lockedTracker{tr: simcheck.NewTracker("failover consumer", 0)}
	var consumerErr error
	var consumerMu sync.Mutex
	raw, err := hbnet.Dial("root", "merged", h.opts("mon")...)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		for h.ctx.Err() == nil {
			b, err := raw.Next(h.ctx)
			if err != nil {
				if h.ctx.Err() == nil && !errors.Is(err, io.EOF) {
					consumerMu.Lock()
					consumerErr = err
					consumerMu.Unlock()
				}
				return
			}
			if aerr := tracker.absorb(b); aerr != nil {
				consumerMu.Lock()
				consumerErr = aerr
				consumerMu.Unlock()
				return
			}
		}
	}()
	consumerTotal := func() uint64 {
		var total uint64
		tracker.with(func(tr *simcheck.Tracker) { total = tr.Delivered() + tr.Missed() })
		return total
	}

	const phase = 500
	beat(p0, phase)
	beat(p1, phase)
	h.waitFor("phase 1 delivery", func() bool { return consumerTotal() == 2*phase })

	// The failover: re-home app0 onto leaf1 at its consumed cursor, let
	// the root drain leaf0's frozen history, then remove leaf0 at the root
	// and shut its node down.
	if _, err := hbnet.Rebalance(leaf0, leaf1, "app0", "prod0", "app", h.opts("leaf1")...); err != nil {
		t.Fatalf("rebalance app0: %v", err)
	}
	if apps := leaf0.Apps(); len(apps) != 0 {
		t.Fatalf("leaf0 still tracks %v after the handoff", apps)
	}
	head0 := leaf0.MergedHead()
	h.waitFor("root to drain leaf0", func() bool { return rootClients[0].Cursor() >= head0 })
	if _, err := root.RemoveUpstream("leaf0"); err != nil {
		t.Fatalf("remove leaf0 at root: %v", err)
	}
	if apps := root.Apps(); len(apps) != 1 || apps[0] != "leaf1" {
		t.Fatalf("root tracks %v after the removal, want [leaf1]", apps)
	}
	leaf0Srv.Close()
	leaf0.Close()

	// Both producers beat on; every new record now flows through leaf1.
	beat(p0, phase)
	beat(p1, phase)
	want := uint64(4 * phase)
	h.waitFor("phase 2 delivery", func() bool { return consumerTotal() == want })

	consumerMu.Lock()
	errNow := consumerErr
	consumerMu.Unlock()
	if errNow != nil {
		t.Fatal(errNow)
	}
	if got := leaf0.MergedHead() + leaf1.MergedHead(); got != want {
		t.Fatalf("leaf heads sum to %d, want %d", got, want)
	}
	if got := root.MergedHead(); got != want {
		t.Fatalf("root head %d, want %d", got, want)
	}
	tracker.with(func(tr *simcheck.Tracker) {
		if tr.Missed() != 0 {
			t.Fatalf("consumer missed %d records across the failover, want 0", tr.Missed())
		}
		if err := tr.CheckLives(1); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckConserved(root.MergedHead()); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBackpressureShedExactlyAccountsGap pins the shed ledger: a relay
// with a small bounded window (and a deliberate shed-lag policy) outruns a
// subscriber that starts from zero, so everything the window no longer
// holds is shed — explicitly. The subscriber's Missed and the relay's
// Shed() must agree exactly: the gap is fully attributed, nothing silent.
func TestBackpressureShedExactlyAccountsGap(t *testing.T) {
	h := newElasticHarness(t)
	p := h.producer("prod")
	relay, _ := h.relay("relay",
		hbnet.WithMergedRetain(64),
		hbnet.WithShedLag(16),
	)
	if _, err := relay.DialUpstream("app", "prod", "app", h.opts("relay")...); err != nil {
		t.Fatal(err)
	}

	const published = 2000
	beat(p, published)
	h.waitFor("relay absorption", func() bool { return relay.MergedHead() == published })

	// The lagging subscriber: by the time it asks for history from zero,
	// the bounded window has lapped far past it.
	c, err := hbnet.Dial("relay", "merged", h.opts("mon")...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tracker := simcheck.NewTracker("shed consumer", 0)
	var delivered, missed uint64
	for delivered+missed < published {
		b, err := c.Next(h.ctx)
		if err != nil {
			t.Fatalf("shed consumer: %v", err)
		}
		if err := tracker.Absorb(b); err != nil {
			t.Fatal(err)
		}
		delivered, missed = tracker.Delivered(), tracker.Missed()
	}

	shed := relay.Shed()
	if shed == 0 {
		t.Fatal("relay shed nothing while lapping a from-zero subscriber")
	}
	if missed == 0 {
		t.Fatal("subscriber missed nothing while reading a lapped window")
	}
	if err := simcheck.CheckShed("shed consumer", shed, missed); err != nil {
		t.Fatal(err)
	}
	if shed != missed {
		t.Fatalf("gap not exactly accounted: subscriber missed %d, relay shed %d — pure backpressure loss must match", missed, shed)
	}
	if err := tracker.CheckConserved(relay.MergedHead()); err != nil {
		t.Fatal(err)
	}
	if err := tracker.CheckLives(1); err != nil {
		t.Fatal(err)
	}
}
