// Package simnet is the deterministic whole-stack simulation harness: an
// in-memory network with a programmable fault schedule, driven under
// virtual time (sim.Clock via heartbeat.WaitClock), so the entire
// heartbeat pipeline — producers, hbfile tails, hbnet servers, clients,
// relay trees, observer hubs, schedulers — runs end to end with no real
// socket, no real sleep, and thousands of simulated seconds per real
// second. The scenario matrix (scenario.go) generates seeded fault
// scenarios over it and checks the delivery contract with
// internal/simcheck: the same invariants the live TCP/file/process tests
// assert, machine-checked across hundreds of simulated ugly cases per CI
// run.
package simnet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/heartbeat"
)

// Network is an in-memory substitute for the real network. Addresses are
// plain strings; listeners bind them (Listen), hosts dial them (Host /
// DialContext — inject into hbnet via hbnet.WithDialer). Faults are
// programmed per link, where a link is the unordered {host, address} pair:
// latency, partitions, one-shot cuts, and byte-count-triggered drops; a
// listener can also be taken down without releasing its address.
//
// All methods are safe for concurrent use.
type Network struct {
	clk heartbeat.Clock // paces latency delivery; nil = wall clock

	mu        sync.Mutex
	listeners map[string]*listener
	links     map[linkKey]*link
}

// New creates an empty network. clk paces per-link latency delivery (use
// the simulation's clock); nil is the wall clock, which with zero
// latencies never waits at all.
func New(clk heartbeat.Clock) *Network {
	return &Network{
		clk:       clk,
		listeners: make(map[string]*listener),
		links:     make(map[linkKey]*link),
	}
}

// linkKey identifies the unordered pair of endpoint names.
type linkKey struct{ lo, hi string }

func keyFor(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// link carries the programmable fault state of one endpoint pair and the
// live connections crossing it.
type link struct {
	partitioned bool
	latency     time.Duration
	wlimit      int   // > 0: per-direction pending-byte bound; writers past it block
	cutAfter    int64 // >= 0: sever the conn that writes past this many more bytes, then disarm
	armed       bool
	conns       map[*conn]struct{}
}

func (n *Network) linkFor(a, b string) *link {
	k := keyFor(a, b)
	l, ok := n.links[k]
	if !ok {
		l = &link{cutAfter: -1, conns: make(map[*conn]struct{})}
		n.links[k] = l
	}
	return l
}

// SetLatency sets the one-way delivery latency of the link between a and b
// (both directions). Latency elapses on the network's clock: under a
// virtual clock a delayed byte arrives when the simulation reaches its
// delivery time.
func (n *Network) SetLatency(a, b string, d time.Duration) {
	n.mu.Lock()
	n.linkFor(a, b).latency = d
	n.mu.Unlock()
}

// Partition severs every live connection between a and b and refuses new
// dials in both directions until Heal. Dial attempts fail with an ordinary
// (retriable) error, the way an unreachable host does.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	l := n.linkFor(a, b)
	l.partitioned = true
	conns := snapshotConns(l)
	n.mu.Unlock()
	severAll(conns)
}

// Heal reopens the link between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	n.linkFor(a, b).partitioned = false
	n.mu.Unlock()
}

// CutLink severs every live connection between a and b once — a link blip.
// New dials succeed immediately, so a reconnecting client resumes as fast
// as its backoff allows.
func (n *Network) CutLink(a, b string) {
	n.mu.Lock()
	conns := snapshotConns(n.linkFor(a, b))
	n.mu.Unlock()
	severAll(conns)
}

// DropAfterBytes arms a one-shot byte trigger on the link between a and b:
// the connection that carries the link's total traffic past nbytes more
// bytes (in either direction) is severed mid-stream, and the trigger
// disarms. This is how a scenario injects "the connection died at byte N"
// — e.g. inside a frame — deterministically.
func (n *Network) DropAfterBytes(a, b string, nbytes int64) {
	n.mu.Lock()
	l := n.linkFor(a, b)
	l.cutAfter = nbytes
	l.armed = true
	n.mu.Unlock()
}

// SetWriteLimit bounds the pending (undelivered) bytes of each direction
// of the link between a and b; 0, the default, is unbounded. A writer past
// the bound blocks until the reader drains — the way a full kernel socket
// buffer backpressures a sender — honoring its write deadline on the
// network's clock. This is how a scenario makes a stalled subscriber
// deterministically trip a server's write timeout.
func (n *Network) SetWriteLimit(a, b string, bytes int) {
	n.mu.Lock()
	n.linkFor(a, b).wlimit = bytes
	n.mu.Unlock()
}

// SetListenerDown marks the listener at addr down (dials are refused with
// a retriable error) or back up. Existing connections survive — this is a
// listener outage, not a process crash; for the latter, close the server,
// which closes its listener and connections itself.
func (n *Network) SetListenerDown(addr string, down bool) {
	n.mu.Lock()
	if ln := n.listeners[addr]; ln != nil {
		ln.down.Store(down)
	}
	n.mu.Unlock()
}

func snapshotConns(l *link) []*conn {
	out := make([]*conn, 0, len(l.conns))
	for c := range l.conns {
		out = append(out, c)
	}
	return out
}

func severAll(conns []*conn) {
	for _, c := range conns {
		c.sever(errSevered)
	}
}

var errSevered = fmt.Errorf("simnet: connection severed by fault injection")

// addr is the trivial net.Addr of a simnet endpoint.
type addr string

func (a addr) Network() string { return "simnet" }
func (a addr) String() string  { return string(a) }

// listener implements net.Listener over an in-memory accept queue.
type listener struct {
	nw      *Network
	name    string
	backlog chan *conn
	done    chan struct{}
	once    sync.Once
	down    atomic.Bool
}

// Listen binds addr. Binding an address with a live listener fails;
// re-binding after Close succeeds, which is how a crashed-and-restarted
// server reclaims its address.
func (n *Network) Listen(address string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, live := n.listeners[address]; live {
		return nil, fmt.Errorf("simnet: address %q already bound", address)
	}
	ln := &listener{
		nw:      n,
		name:    address,
		backlog: make(chan *conn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[address] = ln
	return ln, nil
}

func (ln *listener) Accept() (net.Conn, error) {
	select {
	case c := <-ln.backlog:
		return c, nil
	case <-ln.done:
		return nil, net.ErrClosed
	}
}

func (ln *listener) Close() error {
	ln.once.Do(func() {
		close(ln.done)
		ln.nw.mu.Lock()
		if ln.nw.listeners[ln.name] == ln {
			delete(ln.nw.listeners, ln.name)
		}
		ln.nw.mu.Unlock()
	})
	return nil
}

func (ln *listener) Addr() net.Addr { return addr(ln.name) }

// Host returns a named dialing endpoint. The name identifies the host's
// side of every link it dials over, which is what the fault schedule keys
// on; it satisfies hbnet.Dialer.
func (n *Network) Host(name string) *Host { return &Host{nw: n, name: name} }

// Host is a dialing endpoint of the network.
type Host struct {
	nw   *Network
	name string
}

// DialContext connects to address over the in-memory network, honoring the
// link's fault state. The network argument is ignored (everything is
// "simnet"). Failures are ordinary retriable errors — exactly what a
// reconnecting hbnet client expects from an unreachable host.
func (h *Host) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h.nw.mu.Lock()
	ln := h.nw.listeners[address]
	l := h.nw.linkFor(h.name, address)
	if l.partitioned {
		h.nw.mu.Unlock()
		return nil, fmt.Errorf("simnet: dial %s->%s: network partitioned", h.name, address)
	}
	if ln == nil || ln.down.Load() {
		h.nw.mu.Unlock()
		return nil, fmt.Errorf("simnet: dial %s->%s: connection refused", h.name, address)
	}
	client, server := h.nw.newConnPair(l, h.name, address)
	h.nw.mu.Unlock()

	select {
	case ln.backlog <- server:
		return client, nil
	case <-ln.done:
		client.sever(net.ErrClosed)
		return nil, fmt.Errorf("simnet: dial %s->%s: connection refused", h.name, address)
	case <-ctx.Done():
		client.sever(ctx.Err())
		return nil, ctx.Err()
	}
}

// newConnPair builds the two endpoints of one connection over l. Callers
// hold n.mu.
func (n *Network) newConnPair(l *link, clientName, serverName string) (client, server *conn) {
	ab := newPipeBuf() // client → server
	ba := newPipeBuf() // server → client
	client = &conn{nw: n, link: l, local: addr(clientName), remote: addr(serverName), rd: ba, wr: ab}
	server = &conn{nw: n, link: l, local: addr(serverName), remote: addr(clientName), rd: ab, wr: ba}
	client.peer, server.peer = server, client
	l.conns[client] = struct{}{}
	l.conns[server] = struct{}{}
	return client, server
}
