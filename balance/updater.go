package balance

import (
	"context"
	"math"
	"sync"

	"repro/hbnet"
	"repro/observer"
)

// Updater drives a Table from live heartbeat evidence: feed it rollup
// windows (Absorb, or Run against an hbnet.RollupFeed) and classifier
// judgments (ApplyStatus, or StatusHook wired into an observer.Hub), and
// it applies a Policy's weight decisions as copy-on-write table swaps.
// All routing state changes happen here, event-driven — the per-request
// Pick path never recomputes anything.
//
// Updater is safe for concurrent use; rollup and status sources may feed
// it from different goroutines.
type Updater struct {
	table  *Table
	policy Policy

	mu    sync.Mutex
	nodes map[string]*nodeState

	onSwap  func(Swap)
	actuate func(node string, proposed float64) float64
}

// UpdaterOption configures NewUpdater.
type UpdaterOption func(*Updater)

// WithOnSwap installs a callback invoked (outside the updater's lock is
// NOT guaranteed — keep it cheap) for every swap that changed the table:
// the observability hook hbmon -balance and the scenario auditors use.
func WithOnSwap(f func(Swap)) UpdaterOption {
	return func(u *Updater) { u.onSwap = f }
}

// WithActuator interposes a controller between the policy's proposed
// weight and the applied one: it receives the node and the policy's
// proposal and returns the weight to apply (clamped to [0,1]). This is
// where a control.PI loop — or an AmdahlPlanner-derived allotment —
// plugs in. Moves to 0 (drain) and the reclaim ramp bypass the actuator:
// liveness decisions stay with the policy.
func WithActuator(f func(node string, proposed float64) float64) UpdaterOption {
	return func(u *Updater) { u.actuate = f }
}

// NewUpdater returns an updater applying policy to table. A zero Policy
// is normalized to the documented defaults.
func NewUpdater(table *Table, policy Policy, opts ...UpdaterOption) *Updater {
	u := &Updater{
		table:  table,
		policy: policy.normalized(),
		nodes:  make(map[string]*nodeState),
	}
	for _, o := range opts {
		o(u)
	}
	return u
}

// Table returns the table this updater drives.
func (u *Updater) Table() *Table { return u.table }

// Absorb folds rollup windows into their nodes' state, swapping the table
// wherever the policy decides a weight changed. Rollups for unseen apps
// add the node: a first live window admits it at full target weight (a
// fresh node is presumed healthy — the classifier and the next windows
// will correct it), a first silent window records it drained.
func (u *Updater) Absorb(rollups ...observer.Rollup) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, r := range rollups {
		st, ok := u.nodes[r.App]
		if !ok {
			st = newNodeState()
			u.nodes[r.App] = st
		}
		u.apply(r.App, st, u.policy.judge(st, r))
	}
}

// ApplyStatus folds one classifier judgment for app into its node state,
// swapping the table if the policy decides the weight changed.
func (u *Updater) ApplyStatus(app string, s observer.Status) {
	u.mu.Lock()
	defer u.mu.Unlock()
	st, ok := u.nodes[app]
	if !ok {
		st = newNodeState()
		u.nodes[app] = st
	}
	u.apply(app, st, u.policy.judgeStatus(st, s))
}

// StatusHook adapts ApplyStatus to the observer.Hub onStatus callback
// signature: pass it to observer.NewHub (or chain it from an existing
// callback) and every classifier judgment drives the table.
func (u *Updater) StatusHook() func(name string, st observer.Status) {
	return u.ApplyStatus
}

// Run subscribes to a rollup feed from emission since and absorbs every
// delivery until ctx is done or the feed ends; it returns nil on a clean
// feed end and ctx.Err() after cancellation. Pair it with a Relay's
// RollupFeed() in-process, or with hbnet.DialRollupFeed for a remote
// relay.
func (u *Updater) Run(ctx context.Context, feed hbnet.RollupFeed, since uint64) error {
	return feed.Consume(ctx, since, func(b hbnet.RollupBatch) error {
		u.Absorb(b.Rollups...)
		return nil
	})
}

// Weight returns the node's currently applied weight (0 when unknown).
func (u *Updater) Weight(node string) float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	if st, ok := u.nodes[node]; ok {
		return st.weight
	}
	return 0
}

// Forget drops a node from the updater and removes it from the table —
// for membership changes (a node decommissioned), as opposed to health
// changes (a node drained).
func (u *Updater) Forget(node string) Swap {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.nodes, node)
	sw := u.table.Remove(node)
	if u.onSwap != nil && (sw.Remapped > 0 || sw.Old != sw.New) {
		u.onSwap(sw)
	}
	return sw
}

// apply pushes a proposed weight through the actuator and the MinDelta
// hysteresis gate, swapping the table when it survives both. Callers hold
// u.mu.
func (u *Updater) apply(node string, st *nodeState, next float64) {
	if next == st.weight {
		return // the policy proposes holding — nothing to actuate or swap
	}
	// The actuator shapes live targets only: drains and the reclaim ramp
	// are liveness decisions the policy owns.
	if u.actuate != nil && next > 0 && !st.drained {
		next = u.actuate(node, next)
		if next < 0 || math.IsNaN(next) {
			next = 0
		} else if next > 1 {
			next = 1
		}
	}
	old := st.weight
	if next == old {
		return
	}
	if next != 0 && old != 0 && math.Abs(next-old) < u.policy.MinDelta {
		return // jitter: not worth a table swap
	}
	st.weight = next
	sw := u.table.Set(node, next)
	if u.onSwap != nil && (sw.Remapped > 0 || sw.Old != sw.New) {
		u.onSwap(sw)
	}
}
