// Package leakcheck fails a test binary that exits with stray goroutines
// still running — the lifecycle companion to hbvet's static checks: the
// wallclock analyzer proves loops wait on the injected clock, this
// package proves the loops actually end. It is a dependency-free take on
// goleak (the container this repo builds in has no module cache, so
// importing one was never an option): snapshot the goroutine dump after
// the tests run, strip the goroutines that belong to the runtime and the
// testing framework, and retry over a grace window so goroutines that are
// merely slow to unwind — connection readers draining after Close, timer
// callbacks mid-fire — get to finish before the verdict.
//
// Wire it into a package with one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// maxWait is the total grace window for goroutines to unwind before the
// remaining ones are declared leaked.
const maxWait = 2 * time.Second

// Main runs the package's tests, then fails the binary if goroutines
// leaked. Passing tests exit non-zero when a leak is found, with the
// offending stacks on stderr.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := Check(); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d goroutine(s) still running after tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Check waits for stray goroutines to unwind and returns the stacks of
// those that never did (empty means clean). Exposed separately from Main
// so an individual test can assert cleanliness at a checkpoint.
func Check() []string {
	var leaked []string
	for deadline := time.Now().Add(maxWait); ; { //hbvet:allow wallclock -- test-binary grace window: real goroutines unwind in real time
		leaked = interesting(stacks())
		if len(leaked) == 0 || time.Now().After(deadline) { //hbvet:allow wallclock -- checks the real grace deadline set above
			return leaked
		}
		time.Sleep(10 * time.Millisecond) //hbvet:allow wallclock -- real backoff between goroutine-dump samples
	}
}

// stacks returns the full goroutine dump split into one string per
// goroutine.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// benignSubstrings mark goroutines that belong to the harness, the
// runtime, or this package — never to the code under test.
var benignSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit",
	"created by runtime.gc",
	"runtime.MHeap_Scavenger",
	"runtime.ensureSigM",
	"signal.signal_recv",
	"sigterm.handler",
	"os/signal.loop",
}

// interesting filters a goroutine dump down to the goroutines the code
// under test is answerable for.
func interesting(gs []string) []string {
	var out []string
	for _, g := range gs {
		if g == "" {
			continue
		}
		// The dumping goroutine itself: only it can be inside stacks()
		// (or runtime.Stack, depending on what the traceback elides).
		if strings.Contains(g, "leakcheck.stacks(") || strings.Contains(g, "runtime.Stack(") {
			continue
		}
		benign := false
		for _, s := range benignSubstrings {
			if strings.Contains(g, s) {
				benign = true
				break
			}
		}
		if !benign {
			out = append(out, g)
		}
	}
	return out
}
