package balance

import (
	"fmt"
	"sync"
	"testing"
)

// rwTable is the baseline the lock-free table is benchmarked against: the
// same weighted-rendezvous assignment guarded by a sync.RWMutex, the
// design anyone reaches for first. The component bench quantifies what
// the copy-on-write pointer swap buys on the read path as readers stack
// up.
type rwTable struct {
	mu    sync.RWMutex
	state *tableState
}

func newRWTable(t *Table) *rwTable { return &rwTable{state: t.state.Load()} }

func (t *rwTable) Pick(key uint64) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := t.state
	i := s.assign[splitmix64(key)&uint64(len(s.assign)-1)]
	if i < 0 {
		return "", false
	}
	return s.nodes[i], true
}

func benchNodes() *Table {
	tb := New()
	for i := 0; i < 8; i++ {
		tb.Set(fmt.Sprintf("node%d", i), 1)
	}
	return tb
}

// runPicks drives pick from procs goroutines, splitting b.N between them,
// and reports throughput as picks/s — the metric benchgate compares, so
// the lock-free-beats-RWMutex claim is direction-correct (bigger is
// better) whatever the machine.
func runPicks(b *testing.B, procs int, pick func(uint64) (string, bool)) {
	b.ReportAllocs()
	per := b.N/procs + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for i := 0; i < per; i++ {
				k += 0x9E3779B97F4A7C15
				pick(k)
			}
		}(uint64(g) << 32)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(per*procs)/b.Elapsed().Seconds(), "picks/s")
}

// BenchmarkPick compares the per-request path of the copy-on-write table
// (one atomic load) against the RWMutex baseline at 1, 4 and 8
// concurrent pickers — the Snippet-3-style component benchmark behind
// `make bench-balance`.
func BenchmarkPick(b *testing.B) {
	cow := benchNodes()
	rw := newRWTable(cow)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cow/p%d", procs), func(b *testing.B) {
			runPicks(b, procs, cow.Pick)
		})
		b.Run(fmt.Sprintf("rwmutex/p%d", procs), func(b *testing.B) {
			runPicks(b, procs, rw.Pick)
		})
	}
}

// BenchmarkPickDuringSwaps measures the read path while a writer churns
// one node's weight — the live-balancer steady state where COW shines:
// readers never block behind the rebuild.
func BenchmarkPickDuringSwaps(b *testing.B) {
	cow := benchNodes()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := 0.5
		for {
			select {
			case <-stop:
				return
			default:
				cow.Set("node7", w)
				w = 1.5 - w // 0.5 <-> 1.0
			}
		}
	}()
	runPicks(b, 4, cow.Pick)
	close(stop)
	wg.Wait()
}

// BenchmarkRemap measures the disruption of membership change: remove one
// of 8 nodes, re-add it, and report the remapped key-space fraction of
// the removal — the ≤ ~1/N claim as a gated metric (remapfrac), plus the
// rebuild cost in ns/op.
func BenchmarkRemap(b *testing.B) {
	tb := benchNodes()
	var fracSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := tb.Remove("node3")
		fracSum += sw.Frac()
		tb.Set("node3", 1)
	}
	b.StopTimer()
	b.ReportMetric(fracSum/float64(b.N), "remapfrac")
}
