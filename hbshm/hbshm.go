// Package hbshm implements a shared-memory heartbeat ring: the same
// register-and-read observation contract as the file ring (package hbfile),
// but over a memory-mapped region, so publishing a heartbeat is a handful
// of ordinary stores into mapped memory and observing one is a load — no
// write(2)/read(2) round trip through the kernel on either side. This is
// the closest realization of the paper's standardized shared-memory
// heartbeat buffer ("the heartbeat data structure is registered ... other
// applications, or system software, can then read this data structure"):
// producer and observer are separate processes coordinating only through
// the bytes of one shared mapping.
//
// The region is a fixed-size header followed by a ring of fixed-size
// record slots, backed by any mmap-able file (a tmpfs path such as
// /dev/shm/... keeps it purely in memory). One process writes; any number
// of processes map it read-only and read concurrently without
// coordinating with the writer. Consistency uses the same seqlock
// discipline as the in-memory store (internal/ring) and the file ring:
// each slot's sequence word is zeroed before its fields are rewritten and
// set last, so a reader that loads the expected sequence number, copies
// the fields, and re-loads the same sequence number is guaranteed an
// untorn record — anything else is skipped and surfaces through cursor
// arithmetic as Missed, never as corrupt data.
package hbshm

import (
	"encoding/binary"
	"fmt"
)

// Format constants. Version bumps on any layout change.
const (
	// Magic identifies a shared-memory heartbeat region (8 bytes).
	Magic      = "HBSHMv1\x00"
	Version    = 1
	HeaderSize = 128
	RecordSize = 32
)

// Header field offsets. Every mutable field sits on its own 8-byte word so
// it can be addressed atomically through the mapping; the mapping itself
// is page-aligned, keeping each offset naturally aligned.
const (
	offMagic      = 0  // 8 bytes
	offVersion    = 8  // uint32
	offRecordSize = 12 // uint32
	offCapacity   = 16 // uint64, ring slots
	offWindow     = 24 // uint64, advertised averaging window
	offHead       = 32 // uint64 atomic, highest published sequence number
	offClosed     = 40 // uint64 atomic, nonzero once the writer closed
	offTargetVer  = 48 // uint64 atomic, odd while a target update is in progress
	offTargetMin  = 56 // float64 bits
	offTargetMax  = 64 // float64 bits
)

// Record slot field offsets (within a 32-byte slot). seq doubles as the
// slot's seqlock word: 0 while the slot is being rewritten.
const (
	recOffSeq      = 0  // uint64 atomic
	recOffTime     = 8  // int64 unix nanos
	recOffTag      = 16 // int64
	recOffProducer = 24 // int32
)

var byteOrder = binary.LittleEndian

// regionSize returns the byte size of a region retaining capacity records.
func regionSize(capacity int) int {
	return HeaderSize + capacity*RecordSize
}

// slotOff returns the region offset of the ring slot holding seq. mask is
// capacity-1: capacity is always a power of two (Create rounds up,
// checkHeader rejects anything else) precisely so this is a mask and not a
// hardware divide on every record on both sides of the mapping.
func slotOff(seq, mask uint64) int {
	return HeaderSize + int((seq-1)&mask)*RecordSize
}

// nextPow2 rounds n up to the next power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// checkHeader validates the static header fields of a mapped region.
func checkHeader(mem []byte) (capacity, window uint64, err error) {
	if len(mem) < HeaderSize {
		return 0, 0, fmt.Errorf("hbshm: short region (%d bytes)", len(mem))
	}
	if string(mem[offMagic:offMagic+8]) != Magic {
		return 0, 0, fmt.Errorf("hbshm: bad magic %q", mem[offMagic:offMagic+8])
	}
	if v := byteOrder.Uint32(mem[offVersion:]); v != Version {
		return 0, 0, fmt.Errorf("hbshm: unsupported version %d", v)
	}
	if rs := byteOrder.Uint32(mem[offRecordSize:]); rs != RecordSize {
		return 0, 0, fmt.Errorf("hbshm: unsupported record size %d", rs)
	}
	capacity = byteOrder.Uint64(mem[offCapacity:])
	window = byteOrder.Uint64(mem[offWindow:])
	if capacity == 0 || capacity&(capacity-1) != 0 {
		return 0, 0, fmt.Errorf("hbshm: capacity %d is not a power of two", capacity)
	}
	if len(mem) < regionSize(int(capacity)) {
		return 0, 0, fmt.Errorf("hbshm: region truncated: %d bytes for capacity %d", len(mem), capacity)
	}
	return capacity, window, nil
}
