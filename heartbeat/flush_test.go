package heartbeat_test

import (
	"testing"
	"time"

	"repro/heartbeat"
)

func sinkLen(s *collectSink) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Per-thread global beats reach the sink on Flush even when nobody reads.
func TestFlushDeliversPendingShardRecords(t *testing.T) {
	sink := &collectSink{}
	hb, clk := newTestHB(t, 5, heartbeat.WithSink(sink))
	tr := hb.Thread("w")
	for i := 0; i < 3; i++ {
		clk.Advance(time.Millisecond)
		tr.GlobalBeatTag(int64(i + 1))
	}
	if n := sinkLen(sink); n != 0 {
		t.Fatalf("sink saw %d records before any flush", n)
	}
	hb.Flush()
	if n := sinkLen(sink); n != 3 {
		t.Fatalf("sink saw %d records after Flush, want 3", n)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, r := range sink.records {
		if r.Seq != uint64(i+1) || r.Tag != int64(i+1) || r.Producer != tr.ID() {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	if sink.batches == 0 {
		t.Fatal("flush did not use batch delivery")
	}
}

// The background flusher bounds sink latency with no reads and no backlog
// pressure.
func TestFlushIntervalDeliversWithoutReads(t *testing.T) {
	sink := &collectSink{}
	hb, err := heartbeat.New(5,
		heartbeat.WithSink(sink),
		heartbeat.WithFlushInterval(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	for i := 0; i < 10; i++ {
		tr.GlobalBeat()
	}
	deadline := time.Now().Add(5 * time.Second)
	for sinkLen(sink) < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("flusher delivered %d of 10 records", sinkLen(sink))
		}
		time.Sleep(time.Millisecond)
	}
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
}

// Close flushes pending shard records before releasing the sink, so no beat
// registered before Close is ever lost.
func TestCloseFlushesPendingToSink(t *testing.T) {
	sink := &collectSink{}
	hb, clk := newTestHB(t, 5, heartbeat.WithSink(sink))
	tr := hb.Thread("w")
	clk.Advance(time.Millisecond)
	tr.GlobalBeatTag(42)
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sinkLen(sink); n != 1 {
		t.Fatalf("sink saw %d records after Close, want 1", n)
	}
}

// Direct beats and sharded beats interleave with ordered, dense sequence
// numbers at the sink: the direct beat merges the pending shard records
// first.
func TestDirectBeatMergesPendingFirst(t *testing.T) {
	sink := &collectSink{}
	hb, clk := newTestHB(t, 5, heartbeat.WithSink(sink))
	tr := hb.Thread("w")
	clk.Advance(time.Millisecond)
	tr.GlobalBeatTag(1)
	clk.Advance(time.Millisecond)
	hb.BeatTag(2) // must flush the pending shard beat before appending
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.records) != 2 {
		t.Fatalf("sink saw %d records, want 2", len(sink.records))
	}
	if sink.records[0].Tag != 1 || sink.records[0].Seq != 1 || sink.records[0].Producer != tr.ID() {
		t.Fatalf("first sink record = %+v", sink.records[0])
	}
	if sink.records[1].Tag != 2 || sink.records[1].Seq != 2 || sink.records[1].Producer != 0 {
		t.Fatalf("second sink record = %+v", sink.records[1])
	}
}

// MultiSink batches reach BatchSinks via WriteRecords and plain sinks via
// per-record WriteRecord, in order either way.
func TestMultiSinkBatchFanOut(t *testing.T) {
	batch := &collectSink{}
	var plain []int64
	plainSink := heartbeat.SinkFunc(func(r heartbeat.Record) error {
		plain = append(plain, r.Tag)
		return nil
	})
	hb, clk := newTestHB(t, 5, heartbeat.WithSink(heartbeat.MultiSink(batch, plainSink)))
	tr := hb.Thread("w")
	for i := 1; i <= 4; i++ {
		clk.Advance(time.Millisecond)
		tr.GlobalBeatTag(int64(i))
	}
	hb.Flush()
	if batch.batches == 0 || sinkLen(batch) != 4 {
		t.Fatalf("batch sink: %d batches, %d records", batch.batches, sinkLen(batch))
	}
	if len(plain) != 4 || plain[0] != 1 || plain[3] != 4 {
		t.Fatalf("plain sink got %v", plain)
	}
}

func TestCoarseClock(t *testing.T) {
	clk := heartbeat.NewCoarseClock(time.Millisecond)
	defer clk.Stop()
	start := clk.NowNanos()
	if got := clk.Now().UnixNano(); got < start {
		t.Fatalf("Now (%d) behind NowNanos (%d)", got, start)
	}
	deadline := time.Now().Add(5 * time.Second)
	for clk.NowNanos() == start {
		if time.Now().After(deadline) {
			t.Fatal("coarse clock never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Stop()
	clk.Stop() // idempotent

	// A heartbeat on the coarse clock still measures sane rates: beats
	// spread over real time spanning many resolution intervals.
	clk2 := heartbeat.NewCoarseClock(time.Millisecond)
	defer clk2.Stop()
	hb, err := heartbeat.New(0, heartbeat.WithClock(clk2), heartbeat.WithCapacity(256))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	for i := 0; i < 40; i++ {
		tr.GlobalBeat()
		time.Sleep(2 * time.Millisecond)
	}
	rate, ok := hb.RateDetail(40)
	if !ok {
		t.Fatal("rate unavailable on coarse clock")
	}
	// 40 beats ~2ms apart: ~500 beats/s; accept a generous band for a
	// loaded host.
	if rate.PerSec < 50 || rate.PerSec > 5000 {
		t.Fatalf("coarse-clock rate = %v beats/s", rate.PerSec)
	}
}
