package experiments

import (
	"fmt"
	"sync"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/plot"
	"repro/internal/video"
	"repro/internal/x264"
	"repro/sim"
)

// Encoder experiment geometry.
const (
	encW, encH = 160, 96
	// fig3CheckEvery is the paper's adaptation cadence: "x264 ... checks
	// its heart rate every 40 frames".
	fig3CheckEvery = 40
	// fig3Target is the paper's goal: 30 beats/s == 30 frames/s.
	fig3Target = 30.0
	// fig3BaselineRate anchors the unmodified encoder at the paper's
	// measured 8.8 beats/s on eight cores.
	fig3BaselineRate = 8.8
)

// demandingVideo is the "computationally demanding and more uniform" input
// of §5.2.
func demandingVideo() video.Profile {
	return video.Uniform(video.Complexity{Motion: 2.5, Detail: 14, Noise: 3})
}

// parsecVideo reproduces the three performance phases of the PARSEC native
// input (Fig 2): demanding, then much calmer between frames 100 and 330,
// then demanding again.
func parsecVideo(total int) video.Profile {
	b1, b2 := 100, 330
	if total < 500 { // scaled-down runs keep the phase proportions
		b1, b2 = total/5, total*2/3
	}
	busy := video.Complexity{Motion: 3.0, Detail: 18, Noise: 4}
	calm := video.Complexity{Motion: 0.5, Detail: 3.5, Noise: 1}
	return video.Phases([]video.Complexity{busy, calm, busy}, []int{b1, b2})
}

// fig8Video is the §5.4 input: demanding throughout, easing slightly over
// the final fifth — the paper notes "the performance in the healthy case
// actually increases slightly towards the end of execution as the input
// video becomes slightly easier at the end".
func fig8Video(total int) video.Profile {
	base := video.Complexity{Motion: 2.5, Detail: 14, Noise: 3}
	easeFrom := total * 4 / 5
	return func(frame int) video.Complexity {
		if frame < easeFrom || total == easeFrom {
			return base
		}
		// Linear ease down to 80% complexity at the last frame.
		f := 1 - 0.2*float64(frame-easeFrom)/float64(total-easeFrom)
		return video.Complexity{Motion: base.Motion * f, Detail: base.Detail * f, Noise: base.Noise * f}
	}
}

// calibrateCoreRate sizes the simulated per-core rate so the given encoder
// configuration achieves targetRate beats/s on eight cores for the given
// content — anchoring the simulation to the paper's measured operating
// points exactly as the paper anchors to its Xeon testbed.
func calibrateCoreRate(cfg x264.Config, prof video.Profile, seed int64, frames int, targetRate float64) float64 {
	src := video.NewSource(encW, encH, seed, prof)
	enc := x264.NewEncoder(cfg)
	var ops float64
	n := 0
	for i := 0; i < frames; i++ {
		f, _ := src.Next()
		st, err := enc.Encode(f)
		if err != nil {
			panic(err)
		}
		if st.Intra {
			continue
		}
		ops += st.Ops
		n++
	}
	mean := ops / float64(n)
	return targetRate * mean / sim.Speedup(8, x264.ParallelFrac)
}

// Fig2 reproduces Figure 2: the heart rate of the (non-adaptive) x264
// benchmark over the PARSEC native input, 20-beat moving average, showing
// three distinct performance regions.
func Fig2(opt Options) Result {
	frames := opt.encoderFrames(500)
	prof := parsecVideo(frames)
	cfg := x264.Config{Search: x264.Hex, SubpelLevels: 1, RefFrames: 1}
	// Anchor phase-one performance near the paper's ~13 beats/s.
	busyOnly := video.Uniform(prof(0))
	coreRate := calibrateCoreRate(cfg, busyOnly, opt.Seed+1, 30, 13)

	clk := sim.NewClock(sim.Epoch)
	m := sim.NewMachine(clk, 8, coreRate)
	hb, err := heartbeat.New(20, heartbeat.WithClock(clk))
	if err != nil {
		panic(err)
	}
	src := video.NewSource(encW, encH, opt.Seed+2, prof)
	enc := x264.NewEncoder(cfg)

	series := &plot.Series{
		Title:  "Fig 2: x264 heart rate on PARSEC-phase input (20-beat window)",
		XLabel: "heartbeat",
		Cols:   []string{"rate"},
	}
	var phaseRates [3][]float64
	b1, b2 := frames/5, frames*2/3
	if frames >= 500 {
		b1, b2 = 100, 330
	}
	for i := 0; i < frames; i++ {
		f, _ := src.Next()
		st, err := enc.Encode(f)
		if err != nil {
			panic(err)
		}
		m.Execute(sim.Work{Ops: st.Ops, ParallelFrac: x264.ParallelFrac})
		hb.Beat()
		if rate, ok := hb.Rate(20); ok {
			series.Add(float64(i+1), rate)
			switch {
			case i < b1:
				phaseRates[0] = append(phaseRates[0], rate)
			case i < b2:
				phaseRates[1] = append(phaseRates[1], rate)
			default:
				phaseRates[2] = append(phaseRates[2], rate)
			}
		}
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	// Drop the transition tail of each phase from the summary (the moving
	// average lags by up to a window).
	trim := func(xs []float64) []float64 {
		if len(xs) > 20 {
			return xs[20:]
		}
		return xs
	}
	p0, p1, p2 := mean(trim(phaseRates[0])), mean(trim(phaseRates[1])), mean(trim(phaseRates[2]))
	return Result{
		ID: "fig2", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("phase means: %.1f / %.1f / %.1f beats/s (paper: 12-14 / 23-29 / 12-14)", p0, p1, p2),
			fmt.Sprintf("middle-phase speedup over outer phases: %.2fx (paper: ~2x)", p1/((p0+p2)/2)),
		},
	}
}

// adaptiveRun is the shared §5.2 experiment behind Figures 3 and 4: the
// adaptive encoder climbs the quality ladder until the 30 beats/s goal is
// met, while a baseline (unmodified, level-0) encode of the same frames
// provides the PSNR reference.
type adaptiveRun struct {
	frames     int
	rate       []float64 // 40-beat moving average per frame
	rateOK     []bool
	psnrDiff   []float64 // adaptive - baseline, per frame
	level      []int
	finalCfg   x264.Config
	crossedAt  int // first frame with rate >= target (-1 if never)
	firstCheck int // frame of the first adaptation decision
}

var adaptiveMemo sync.Map // Options -> *adaptiveRun

func runAdaptive(opt Options) *adaptiveRun {
	if v, ok := adaptiveMemo.Load(opt); ok {
		return v.(*adaptiveRun)
	}
	frames := opt.encoderFrames(600)
	ladder := x264.Ladder()
	prof := demandingVideo()
	coreRate := calibrateCoreRate(ladder[0], prof, opt.Seed+3, 30, fig3BaselineRate)

	clk := sim.NewClock(sim.Epoch)
	m := sim.NewMachine(clk, 8, coreRate)
	hb, err := heartbeat.New(fig3CheckEvery, heartbeat.WithClock(clk))
	if err != nil {
		panic(err)
	}
	hb.SetTarget(fig3Target, 4*fig3Target)
	src := video.NewSource(encW, encH, opt.Seed+4, prof)
	adaptive := x264.NewEncoder(ladder[0])
	baseline := x264.NewEncoder(ladder[0])
	policy := &control.Ladder{MaxLevel: len(ladder) - 1, TargetMin: fig3Target}

	run := &adaptiveRun{frames: frames, crossedAt: -1}
	checkEvery := fig3CheckEvery
	if frames < 600 { // scaled-down runs keep the adaptation cadence
		checkEvery = frames / 15
		if checkEvery < 2 {
			checkEvery = 2
		}
	}
	run.firstCheck = checkEvery
	for i := 0; i < frames; i++ {
		f, _ := src.Next()
		stA, err := adaptive.Encode(f)
		if err != nil {
			panic(err)
		}
		stB, err := baseline.Encode(f)
		if err != nil {
			panic(err)
		}
		m.Execute(sim.Work{Ops: stA.Ops, ParallelFrac: x264.ParallelFrac})
		hb.Beat()
		rate, ok := hb.Rate(0)
		run.rate = append(run.rate, rate)
		run.rateOK = append(run.rateOK, ok)
		run.psnrDiff = append(run.psnrDiff, stA.PSNR-stB.PSNR)
		run.level = append(run.level, policy.Level())
		if ok && rate >= fig3Target && run.crossedAt == -1 {
			run.crossedAt = i + 1
		}
		if (i+1)%checkEvery == 0 {
			lvl := policy.Decide(rate, ok)
			adaptive.SetConfig(ladder[lvl])
		}
	}
	run.finalCfg = adaptive.Config()
	adaptiveMemo.Store(opt, run)
	return run
}

// Fig3 reproduces Figure 3: the adaptive encoder's heart rate climbing from
// ~8.8 beats/s to the 30 beats/s goal, settling above 35.
func Fig3(opt Options) Result {
	run := runAdaptive(opt)
	series := &plot.Series{
		Title:  "Fig 3: heart rate of adaptive x264 (40-beat window)",
		XLabel: "heartbeat",
		Cols:   []string{"adaptive", "goal"},
	}
	for i, r := range run.rate {
		if run.rateOK[i] {
			series.Add(float64(i+1), r, fig3Target)
		}
	}
	var initial, final float64
	if n := len(run.rate); n > 0 {
		// Report the first full-window measurement (the rate the first
		// adaptation decision sees), not the noisy two-beat startup.
		idx := run.firstCheck - 1
		if idx < 0 || idx >= n {
			idx = 0
		}
		initial = run.rate[idx]
		final = run.rate[n-1]
	}
	return Result{
		ID: "fig3", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("initial rate %.1f beats/s (paper: 8.8)", initial),
			fmt.Sprintf("first reached 30 beats/s at heartbeat %d of %d (paper: ~400 of 600)", run.crossedAt, run.frames),
			fmt.Sprintf("final rate %.1f beats/s (paper: >35)", final),
			fmt.Sprintf("final configuration: %v (paper: diamond search, no sub-partitions, light subpel)", run.finalCfg),
		},
	}
}

// Fig4 reproduces Figure 4: the per-frame PSNR difference between the
// adaptive encoder and the unmodified baseline encoding the same frames.
func Fig4(opt Options) Result {
	run := runAdaptive(opt)
	series := &plot.Series{
		Title:  "Fig 4: PSNR difference, adaptive minus baseline x264",
		XLabel: "heartbeat",
		Cols:   []string{"psnr_diff_dB"},
	}
	var sum, worst float64
	var post []float64 // after adaptation has finished climbing
	for i, d := range run.psnrDiff {
		series.Add(float64(i+1), d)
		sum += d
		if d < worst {
			worst = d
		}
		if run.level[i] == run.level[len(run.level)-1] {
			post = append(post, d)
		}
	}
	meanAll := sum / float64(len(run.psnrDiff))
	var meanPost float64
	for _, d := range post {
		meanPost += d
	}
	if len(post) > 0 {
		meanPost /= float64(len(post))
	}
	return Result{
		ID: "fig4", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("mean PSNR difference %.2f dB over the run, %.2f dB at final config (paper: ~-0.5 dB)", meanAll, meanPost),
			fmt.Sprintf("worst-case PSNR difference %.2f dB (paper: ~-1 dB)", worst),
		},
	}
}

// Fig8 reproduces Figure 8: core failures at heartbeats 160, 320 and 480.
// "Healthy" is the fixed encoder on an intact machine, "Unhealthy" the same
// encoder losing cores, and "Adaptive" the heartbeat-driven encoder that
// sheds quality to hold its 30 beats/s target through the failures.
func Fig8(opt Options) Result {
	frames := opt.encoderFrames(600)
	ladder := x264.Ladder()
	// The paper initializes the adaptive encoder with "a parameter set
	// that can achieve a heart rate of 30 beat/s on the eight-core
	// testbed": the second-to-last ladder level, anchored at 33 beats/s
	// so the healthy curve clears 30 through content variation.
	startLevel := len(ladder) - 2
	prof := fig8Video(frames)
	coreRate := calibrateCoreRate(ladder[startLevel], demandingVideo(), opt.Seed+5, 30, 33)

	faultBeats := []uint64{160, 320, 480}
	if frames < 600 {
		faultBeats = []uint64{uint64(frames / 4), uint64(frames / 2), uint64(3 * frames / 4)}
	}

	type curve struct {
		name     string
		adaptive bool
		faults   bool
		rates    []float64
		minAfter float64 // lowest windowed rate after the first failure
	}
	curves := []*curve{
		{name: "healthy"},
		{name: "unhealthy", faults: true},
		{name: "adaptive", adaptive: true, faults: true},
	}
	for _, c := range curves {
		clk := sim.NewClock(sim.Epoch)
		m := sim.NewMachine(clk, 8, coreRate)
		hb, err := heartbeat.New(20, heartbeat.WithClock(clk))
		if err != nil {
			panic(err)
		}
		hb.SetTarget(fig3Target, 4*fig3Target)
		var inj *sim.FaultInjector
		if c.faults {
			events := make([]sim.FaultEvent, len(faultBeats))
			for i, b := range faultBeats {
				events[i] = sim.FaultEvent{AtBeat: b, FailCores: 1}
			}
			inj = sim.NewFaultInjector(events...)
		}
		src := video.NewSource(encW, encH, opt.Seed+6, prof)
		enc := x264.NewEncoder(ladder[startLevel])
		policy := &control.Ladder{MaxLevel: len(ladder) - 1, TargetMin: fig3Target}
		policy.SetLevel(startLevel)
		c.minAfter = 1e9
		for i := 0; i < frames; i++ {
			if inj != nil {
				inj.Step(uint64(i+1), m)
			}
			f, _ := src.Next()
			st, err := enc.Encode(f)
			if err != nil {
				panic(err)
			}
			m.Execute(sim.Work{Ops: st.Ops, ParallelFrac: x264.ParallelFrac})
			hb.Beat()
			rate, ok := hb.Rate(20)
			if !ok {
				rate = 0
			}
			c.rates = append(c.rates, rate)
			if ok && uint64(i+1) > faultBeats[0]+20 && rate < c.minAfter {
				c.minAfter = rate
			}
			if c.adaptive && (i+1)%20 == 0 {
				enc.SetConfig(ladder[policy.Decide(rate, ok)])
			}
		}
	}

	series := &plot.Series{
		Title:  "Fig 8: heart rate under core failures (20-beat window)",
		XLabel: "heartbeat",
		Cols:   []string{"healthy", "unhealthy", "adaptive"},
	}
	for i := 0; i < frames; i++ {
		series.Add(float64(i+1), curves[0].rates[i], curves[1].rates[i], curves[2].rates[i])
	}
	return Result{
		ID: "fig8", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("healthy min rate after beat %d: %.1f beats/s (paper: stays >=30)", faultBeats[0], curves[0].minAfter),
			fmt.Sprintf("unhealthy min rate: %.1f beats/s (paper: falls below 25)", curves[1].minAfter),
			fmt.Sprintf("adaptive min rate: %.1f beats/s, recovers above 30 (paper: holds target through failures)", curves[2].minAfter),
		},
	}
}
