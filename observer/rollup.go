package observer

import (
	"time"

	"repro/heartbeat"
)

// Rollup is one downsampled observation window of one application's
// heartbeat stream: the fixed-interval summary a relay tier publishes in
// place of raw records, so a monitor can watch thousands of producers at a
// bounded per-producer cost. It reduces everything a raw Window would have
// told an observer about the interval — progress, rate, regularity, loss —
// to a constant-size record.
type Rollup struct {
	// App names the upstream application (or feed) the window summarizes.
	App string
	// Start and End bound the downsample window on the reducer's clock.
	Start, End time.Time
	// Records is how many records were delivered inside the window.
	Records uint64
	// Missed is how many records the stream reported lost to overwrite
	// (lapped rings, connection outages) inside the window. Summed across
	// windows it matches the Missed a raw subscription would have
	// accumulated over the same stream — downsampling never hides loss.
	Missed uint64
	// Count is the producer's cumulative record count at the window's end,
	// as advertised by the stream (Batch.Count).
	Count uint64
	// Rate is the heart rate over the window's delivered records — the
	// same (n-1)/span definition heartbeat.RateOf applies to a raw window,
	// with FirstSeq/LastSeq bounding the records used. Valid when RateOK.
	Rate   heartbeat.Rate
	RateOK bool
	// MinInterval, MaxInterval and MeanInterval summarize the inter-beat
	// gaps between consecutive delivered records, including the gap
	// spanning from the previous window's last record into this window —
	// so a 1-beat window still has one interval. Zero when the window saw
	// fewer than one interval.
	MinInterval, MaxInterval, MeanInterval time.Duration
}

// Silent reports a window in which the application published nothing at
// all: no records delivered AND no losses counted. A window with
// Records == 0 but Missed > 0 is not silent — records were published and
// lost before delivery (a lapped ring, a reconnect gap), which proves the
// producer alive. This is the distinction a weight policy drains on.
func (r Rollup) Silent() bool { return r.Records == 0 && r.Missed == 0 }

// ObservedRate returns the window's best available beats-per-second
// estimate: the windowed Rate when valid, else the reciprocal of the mean
// inter-beat interval (which a 1-record window still has, via the gap
// carried from the previous window), else 0 — no evidence.
func (r Rollup) ObservedRate() float64 {
	if r.RateOK && r.Rate.PerSec > 0 {
		return r.Rate.PerSec
	}
	if r.MeanInterval > 0 {
		return 1 / r.MeanInterval.Seconds()
	}
	return 0
}

// RollupWindow reduces one application's stream batches into successive
// Rollups. It is the batch-reducer counterpart of Window: where Window
// retains the last N records for judgment, RollupWindow retains O(1) state
// — first/last record, interval accumulators, counters — so a relay can
// run one per upstream at any fan-in without per-record memory.
//
// RollupWindow is not safe for concurrent use; each reducer owns one.
type RollupWindow struct {
	app string

	// Window-local accumulation, reset by Flush.
	records uint64
	missed  uint64
	first   heartbeat.Record
	last    heartbeat.Record

	// Interval accumulation. prev persists across Flush so the gap between
	// the last record of one window and the first of the next is counted
	// (in the later window), matching the intervals a raw Window computes
	// over a contiguous record history.
	prev      time.Time
	prevOK    bool
	intervals uint64
	sumIv     time.Duration
	minIv     time.Duration
	maxIv     time.Duration

	// Stream-advertised cumulative state, never reset.
	count uint64
}

// NewRollupWindow returns a reducer for the named application.
func NewRollupWindow(app string) *RollupWindow {
	return &RollupWindow{app: app}
}

// App returns the application name given to NewRollupWindow.
func (w *RollupWindow) App() string { return w.app }

// Absorb folds one batch into the current window.
func (w *RollupWindow) Absorb(b Batch) {
	w.missed += b.Missed
	if b.Count > 0 {
		// Follow the stream's advertised cumulative count wherever it
		// goes — including DOWN, which means the producer restarted and
		// its count began again (zero just means the stream does not
		// populate Count; keep the last real value then).
		w.count = b.Count
	}
	for _, r := range b.Records {
		if w.records == 0 {
			w.first = r
		}
		w.last = r
		w.records++
		if w.prevOK {
			iv := r.Time.Sub(w.prev)
			if iv < 0 {
				iv = 0 // concurrent producers can interleave timestamps
			}
			if w.intervals == 0 || iv < w.minIv {
				w.minIv = iv
			}
			if iv > w.maxIv {
				w.maxIv = iv
			}
			w.sumIv += iv
			w.intervals++
		}
		w.prev, w.prevOK = r.Time, true
	}
}

// Active reports whether the current window has absorbed any records or
// losses since the last Flush — whether Flush would say anything beyond
// "silent".
func (w *RollupWindow) Active() bool { return w.records > 0 || w.missed > 0 }

// Flush emits the current window as a Rollup spanning [start, end] and
// resets the window-local state. A window with no delivered records yields
// Records == 0 and RateOK == false — silence is reported, not elided, so a
// flatlined producer is as visible downsampled as raw.
func (w *RollupWindow) Flush(start, end time.Time) Rollup {
	r := Rollup{
		App:     w.app,
		Start:   start,
		End:     end,
		Records: w.records,
		Missed:  w.missed,
		Count:   w.count,
	}
	if w.records >= 2 {
		span := w.last.Time.Sub(w.first.Time)
		if span > 0 {
			r.Rate = heartbeat.Rate{
				PerSec:   float64(w.records-1) / span.Seconds(),
				Beats:    int(w.records),
				Span:     span,
				FirstSeq: w.first.Seq,
				LastSeq:  w.last.Seq,
			}
			r.RateOK = true
		}
	}
	if w.records >= 1 {
		r.Rate.FirstSeq, r.Rate.LastSeq = w.first.Seq, w.last.Seq
	}
	if w.intervals > 0 {
		r.MinInterval = w.minIv
		r.MaxInterval = w.maxIv
		r.MeanInterval = w.sumIv / time.Duration(w.intervals)
	}
	w.records, w.missed = 0, 0
	w.first, w.last = heartbeat.Record{}, heartbeat.Record{}
	w.intervals, w.sumIv, w.minIv, w.maxIv = 0, 0, 0, 0
	return r
}

// Downsampler reduces the streams of many named applications into
// per-interval Rollup slices: the fan-in reducer at the heart of a relay
// tier. Absorb routes batches to per-app RollupWindows; Flush emits one
// Rollup per registered application (registration order), covering the
// elapsed interval.
//
// Downsampler is not safe for concurrent use; the relay's merge loop owns
// it.
type Downsampler struct {
	apps  map[string]*RollupWindow
	order []string
}

// NewDownsampler returns an empty reducer; applications register lazily on
// first Absorb (or explicitly with Track).
func NewDownsampler() *Downsampler {
	return &Downsampler{apps: make(map[string]*RollupWindow)}
}

// Track registers app so Flush reports it even before (or without) any
// records — a producer that never speaks still shows up as silent windows.
func (d *Downsampler) Track(app string) *RollupWindow {
	w, ok := d.apps[app]
	if !ok {
		w = NewRollupWindow(app)
		d.apps[app] = w
		d.order = append(d.order, app)
	}
	return w
}

// Absorb folds one batch of the named application's stream into its
// current window.
func (d *Downsampler) Absorb(app string, b Batch) {
	d.Track(app).Absorb(b)
}

// Flush emits one Rollup per tracked application for the window
// [start, end], in registration order, and resets every window.
func (d *Downsampler) Flush(start, end time.Time) []Rollup {
	if len(d.order) == 0 {
		return nil
	}
	out := make([]Rollup, 0, len(d.order))
	for _, app := range d.order {
		out = append(out, d.apps[app].Flush(start, end))
	}
	return out
}

// Apps returns the tracked application names in registration order.
func (d *Downsampler) Apps() []string {
	return append([]string(nil), d.order...)
}

// Remove untracks app, flushing whatever the current window had absorbed as
// one final partial Rollup spanning [start, end]. The second return reports
// whether that rollup says anything (the app was tracked and its window was
// active) — callers emit it so mid-window counts survive the removal and
// rollup conservation holds. Removing an unknown app is a no-op.
func (d *Downsampler) Remove(app string, start, end time.Time) (Rollup, bool) {
	w, ok := d.apps[app]
	if !ok {
		return Rollup{}, false
	}
	delete(d.apps, app)
	for i, a := range d.order {
		if a == app {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	active := w.Active()
	return w.Flush(start, end), active
}
