// Command hbvet is this repository's custom static-analysis suite: a
// multichecker enforcing the invariants the compiler cannot see and the
// test suite only samples.
//
//	go run ./tools/hbvet ./...        # the whole module (what `make analyze` runs)
//	go run ./tools/hbvet ./balance    # one package (dependencies load automatically for facts)
//
// Three analyzers run by default (select a subset with -run):
//
//   - wallclock: no direct time.Now/Sleep/After/NewTicker/NewTimer or
//     context.WithTimeout/WithDeadline outside the clock seams
//     (heartbeat/clock*.go, sim/). Everything else must run on the
//     injected heartbeat.Clock, or carry //hbvet:allow wallclock -- <reason>.
//   - hotpath: functions marked //hbvet:hotpath are transitively
//     allocation-, lock-, and channel-free, and only call verified code.
//   - clockthread: a type that stores a clock must use it — its methods
//     and constructors may not read the wall directly, whatever blanket
//     wallclock waivers exist.
//
// hbvet exits non-zero when any finding survives seam and allow
// filtering, printing one "path:line:col: analyzer: message" per line,
// so it slots into `make ci` exactly like go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/hbvet/internal/analysis"
	"repro/tools/hbvet/internal/load"
	"repro/tools/hbvet/internal/passes/clockthread"
	"repro/tools/hbvet/internal/passes/hotpath"
	"repro/tools/hbvet/internal/passes/wallclock"
)

var all = []*analysis.Analyzer{wallclock.Analyzer, hotpath.Analyzer, clockthread.Analyzer}

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hbvet [-run analyzer,...] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := all
	if *run != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "hbvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbvet:", err)
		os.Exit(2)
	}
	prog, err := load.Load(cwd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbvet:", err)
		os.Exit(2)
	}

	facts := analysis.NewFacts()
	failed := false
	for _, pkg := range prog.Packages {
		findings, err := analysis.RunPackage(&analysis.Package{
			Fset:    prog.Fset,
			Files:   pkg.Files,
			Pkg:     pkg.Pkg,
			Info:    pkg.Info,
			RelPath: prog.RelPath,
		}, analyzers, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbvet:", err)
			os.Exit(2)
		}
		if !pkg.Requested {
			continue // loaded for facts only
		}
		for _, f := range findings {
			failed = true
			fmt.Printf("%s:%d:%d: %s: %s\n", f.RelFile, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if failed {
		os.Exit(1)
	}
}
