package simnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/balance"
	"repro/hbfile"
	"repro/hbnet"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
	"repro/sim"
)

// This file is the seeded scenario matrix: a generator that expands one
// seed into a whole-stack configuration — topology, producer count, fault
// schedule — and a runner that executes it under virtual time on the
// in-memory network, checking the delivery contract with
// internal/simcheck at every hop. Every scenario is reproducible from its
// seed alone; a failing run reports the seed, and re-running it replays
// the same generated configuration.

// Topology selects which observation stack the scenario runs.
type Topology int

const (
	// TopoDirect observes in-process heartbeats through subscriptions.
	TopoDirect Topology = iota
	// TopoFile observes heartbeat files through FollowFile tails.
	TopoFile
	// TopoRelayTree runs the full stack: producers → files → leaf relays
	// → root relay → one consumer, over the in-memory network.
	TopoRelayTree
	topoCount
)

func (t Topology) String() string {
	switch t {
	case TopoDirect:
		return "direct"
	case TopoFile:
		return "file"
	case TopoRelayTree:
		return "relay-tree"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// EventKind is one fault (or consumer action) the schedule can inject.
type EventKind int

const (
	// EvRestart kills and recreates producer P (same file variant).
	EvRestart EventKind = iota
	// EvRecreate is EvRestart with the file recreated in the other
	// variant (ring ↔ log); on non-file topologies it acts like EvRestart.
	EvRecreate
	// EvLap makes producer P burst several ring capacities of beats at one
	// instant, lapping consumers that poll.
	EvLap
	// EvSilence pauses producer P's beats for Arg nanoseconds.
	EvSilence
	// EvLinkBlip severs the link named by Link once (reconnect resumes).
	EvLinkBlip
	// EvDropBytes arms the Link's byte trigger: its connection is severed
	// mid-stream after Arg more bytes.
	EvDropBytes
	// EvPartition partitions Link for Arg nanoseconds, then heals it.
	EvPartition
	// EvServerCrash closes server S (listener and connections die; relay
	// histories survive) and restores it after Arg nanoseconds.
	EvServerCrash
	// EvListenerOutage takes server S's listener down for Arg nanoseconds
	// and blips its links so clients must redial into the outage.
	EvListenerOutage
	// EvResume closes the consumer's stream and resumes from its cursor.
	EvResume
	// EvSlowConsumer stalls the consumer for Arg while its link carries a
	// small write limit, so the root server's writes backpressure, its
	// write timeout fires on the virtual clock, and the subscriber is
	// disconnected mid-stream and must reconnect from its cursor.
	EvSlowConsumer
	// EvNodeDrain flatlines producer P for Arg nanoseconds and asserts the
	// balancer's whole reaction arc (relay-tree only): the health-weight
	// policy must drain the node after consecutive silent rollup windows,
	// the table swap must reshuffle no more of the key space than the
	// remap invariant allows, and after the producer recovers the node
	// must reclaim full weight through the ramp before the scenario ends.
	EvNodeDrain
	// EvLeafDie decommissions leaf relay S-1 (relay-tree with >= 2 leaves):
	// every producer upstream re-homes to a sibling leaf via
	// cursor-preserving handoff, the root drains what the dying leaf still
	// holds and then removes it through the runtime-membership path, and
	// the node is shut down — after which the dense/conserved/lives
	// invariants must hold at every hop with zero duplicate deliveries.
	EvLeafDie
)

func (k EventKind) String() string {
	switch k {
	case EvRestart:
		return "restart"
	case EvRecreate:
		return "recreate"
	case EvLap:
		return "lap"
	case EvSilence:
		return "silence"
	case EvLinkBlip:
		return "link-blip"
	case EvDropBytes:
		return "drop-bytes"
	case EvPartition:
		return "partition"
	case EvServerCrash:
		return "server-crash"
	case EvListenerOutage:
		return "listener-outage"
	case EvResume:
		return "resume"
	case EvSlowConsumer:
		return "slow-consumer"
	case EvNodeDrain:
		return "node-drain"
	case EvLeafDie:
		return "leaf-die"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scheduled fault at a virtual instant.
type Event struct {
	At       time.Duration // offset from scenario start, virtual
	Kind     EventKind
	Producer int           // EvRestart/EvRecreate/EvLap/EvSilence
	Link     int           // EvLinkBlip/EvDropBytes/EvPartition: index into the scenario's links
	Server   int           // EvServerCrash/EvListenerOutage/EvLeafDie: index into the scenario's servers (EvLeafDie: 1+leaf)
	Arg      time.Duration // window length for windowed faults; byte count for EvDropBytes
}

// Scenario is one generated whole-stack configuration.
type Scenario struct {
	Seed      int64
	Topology  Topology
	Producers int
	Leaves    int // relay-tree only
	Duration  time.Duration
	BeatEvery time.Duration
	Poll      time.Duration
	RingCap   int
	Rollup    time.Duration
	MaxLink   time.Duration // per-link latency is rng-drawn in [0, MaxLink]
	Events    []Event
}

func (sc Scenario) String() string {
	return fmt.Sprintf("seed=%d %s producers=%d leaves=%d dur=%v beat=%v poll=%v ring=%d events=%d",
		sc.Seed, sc.Topology, sc.Producers, sc.Leaves, sc.Duration, sc.BeatEvery, sc.Poll, sc.RingCap, len(sc.Events))
}

// Generate expands seed into a scenario: N producers × producer faults
// {restart, file-recreate, lap, silence} × network faults {link blip,
// drop-at-byte, partition window, server crash, listener outage,
// slow consumer} × topology {direct, file, relay-tree}. The same seed
// always generates the same scenario.
func Generate(seed int64) Scenario {
	return GenerateWith(seed, GenConfig{})
}

// GenConfig pins parts of a generated scenario that Generate otherwise
// draws small: zero fields keep the draw, positive fields override it
// after the draw, so the rng stream — and with it every downstream draw
// (fault schedule, latencies) — is identical whether or not a field is
// pinned. Generate(seed) == GenerateWith(seed, GenConfig{}) exactly.
type GenConfig struct {
	// Producers overrides the drawn producer count (the draw caps at 3).
	// A pinned count is honored exactly: a relay-tree scenario shrinks its
	// Leaves to fit rather than silently inflating Producers.
	Producers int
	// Leaves overrides the drawn leaf count (relay-tree only).
	Leaves int
}

// GenerateWith is Generate with GenConfig overrides applied.
func GenerateWith(seed int64, cfg GenConfig) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Seed:      seed,
		Topology:  Topology(rng.Intn(int(topoCount))),
		Producers: 1 + rng.Intn(3),
		Duration:  5 * time.Second,
		BeatEvery: time.Duration(10+rng.Intn(31)) * time.Millisecond,
		Poll:      time.Duration(10+rng.Intn(16)) * time.Millisecond,
		RingCap:   32 << rng.Intn(3), // 32, 64, 128
		Rollup:    time.Duration(100+rng.Intn(151)) * time.Millisecond,
	}
	if cfg.Producers > 0 {
		sc.Producers = cfg.Producers
	}
	if sc.Topology == TopoRelayTree {
		sc.Leaves = 1 + rng.Intn(2)
		if cfg.Leaves > 0 {
			sc.Leaves = cfg.Leaves
		}
		if sc.Producers < sc.Leaves {
			if cfg.Producers > 0 {
				sc.Leaves = sc.Producers
			} else {
				sc.Producers = sc.Leaves
			}
		}
		sc.MaxLink = time.Duration(rng.Intn(4)) * time.Millisecond
	}

	// Fault schedule: every scenario gets 1-2 producer faults; relay-tree
	// scenarios add exactly one network fault. Faults land in the middle
	// three-fifths of the run so there is always a clean lead-in (the
	// consumer establishes its cursor) and a clean tail (delivery drains).
	at := func() time.Duration {
		return time.Duration(float64(sc.Duration) * (0.2 + 0.55*rng.Float64()))
	}
	window := func() time.Duration {
		return time.Duration(float64(time.Second) * (0.3 + 0.9*rng.Float64()))
	}
	// The node-drain arc (relay-tree, half the scenarios): one producer
	// flatlines early and long enough that the balancer must drain it
	// (several whole rollup windows of silence), then recovers with enough
	// windows left before the scenario ends for the reclaim ramp to
	// complete. Drawn before the producer faults so those can be steered
	// off the drained producer — a restart or second silence landing on it
	// would make the drain/reclaim assertion unprovable.
	drained := -1
	if sc.Topology == TopoRelayTree && rng.Intn(2) == 0 {
		drained = rng.Intn(sc.Producers)
		sc.Events = append(sc.Events, Event{
			Kind:     EvNodeDrain,
			Producer: drained,
			At:       time.Duration(float64(sc.Duration) * (0.2 + 0.1*rng.Float64())),
			Arg:      time.Duration((3.5 + rng.Float64()) * float64(sc.Rollup)),
		})
	}
	producerFaults := []EventKind{EvRestart, EvRecreate, EvLap, EvSilence}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		if drained >= 0 && sc.Producers == 1 {
			break // the drain IS this scenario's producer fault
		}
		ev := Event{At: at(), Producer: rng.Intn(sc.Producers), Kind: producerFaults[rng.Intn(len(producerFaults))]}
		if drained >= 0 {
			// Steer the fault onto any other producer, preserving the draw.
			if ev.Producer = ev.Producer % (sc.Producers - 1); ev.Producer >= drained {
				ev.Producer++
			}
		}
		if ev.Kind == EvSilence {
			ev.Arg = window()
		}
		sc.Events = append(sc.Events, ev)
	}
	if sc.Topology == TopoRelayTree {
		ev := Event{At: at()}
		switch rng.Intn(6) {
		case 0:
			ev.Kind, ev.Link = EvLinkBlip, rng.Intn(sc.Leaves+1)
		case 1:
			ev.Kind, ev.Link = EvDropBytes, rng.Intn(sc.Leaves+1)
			ev.Arg = time.Duration(64 + rng.Intn(4096)) // byte budget, not a duration
		case 2:
			ev.Kind, ev.Link = EvPartition, rng.Intn(sc.Leaves+1)
			ev.Arg = window()
		case 3:
			ev.Kind, ev.Server = EvServerCrash, rng.Intn(sc.Leaves+1)
			ev.Arg = window()
		case 4:
			ev.Kind, ev.Server = EvListenerOutage, rng.Intn(sc.Leaves+1)
			ev.Arg = window()
		case 5:
			// The stall must outlast the server's write timeout, so the
			// blocked write actually fires it instead of merely bending.
			ev.Kind = EvSlowConsumer
			ev.Arg = serverWriteTimeout + window()
		}
		sc.Events = append(sc.Events, ev)
	}
	// Half the scenarios exercise the consumer cursor-resume path.
	if rng.Intn(2) == 0 {
		sc.Events = append(sc.Events, Event{At: at(), Kind: EvResume})
	}
	// The leaf-failover arc (relay-tree with a sibling to re-home onto,
	// half of the eligible scenarios): one leaf relay is decommissioned
	// mid-run through the runtime-membership path. Drawn after everything
	// else so earlier seeds' schedules are byte-identical with or without
	// this arc in the generator.
	if sc.Topology == TopoRelayTree && sc.Leaves >= 2 && rng.Intn(2) == 0 {
		sc.Events = append(sc.Events, Event{
			Kind:   EvLeafDie,
			At:     at(),
			Server: 1 + rng.Intn(sc.Leaves), // servers[0] is the root
		})
	}
	return sc
}

// Stats summarizes one scenario run, for matrix-level coverage assertions.
type Stats struct {
	SimSeconds float64
	Delivered  uint64
	Missed     uint64
	Lives      int
	Restarts   int
	Reconnects int
	Resumed    bool
	// Balancer accounting (relay-tree): drain and reclaim swaps observed
	// for the EvNodeDrain target, and the largest key-space fraction any
	// single table swap moved.
	Drains   int
	Reclaims int
	MaxRemap float64
	// Elastic-membership accounting (relay-tree): upstreams re-homed by an
	// EvLeafDie decommission, and records shed to backpressure across every
	// relay ring in the tree (always a refinement of Missed: shed <= missed
	// on any subscription that observed the loss).
	Handoffs int
	Shed     uint64
}

// Run executes the scenario and verifies the delivery contract. The
// returned error, if any, describes the first violated invariant; callers
// report the scenario's seed alongside it for exact replay.
func (sc Scenario) Run(dir string) (Stats, error) {
	switch sc.Topology {
	case TopoRelayTree:
		return sc.runRelayTree(dir)
	default:
		return sc.runLocal(dir)
	}
}

// settleDeadline bounds the real time a scenario may spend draining after
// its virtual duration elapses.
const settleDeadline = 20 * time.Second

// serverWriteTimeout is the write timeout every simulated relay server
// runs with, on the virtual clock: long enough that only a deliberately
// stalled consumer (EvSlowConsumer) trips it, short enough that the stall
// window can outlast it.
const serverWriteTimeout = time.Second

// producer is one simulated application: an in-process heartbeat,
// optionally sunk into a file, beating on the virtual clock and
// restartable (new heartbeat, new file life) by the fault schedule.
type producer struct {
	clk     *sim.Clock
	path    string // empty: in-process only (TopoDirect)
	window  int
	ringCap int
	isLog   bool

	mu       sync.Mutex
	hb       *heartbeat.Heartbeat
	paused   bool
	silentTo time.Time
	restarts int
	heads    []uint64 // final head of each completed life
}

func newProducer(clk *sim.Clock, path string, ringCap int) (*producer, error) {
	p := &producer{clk: clk, path: path, window: 20, ringCap: ringCap}
	return p, p.start()
}

// start creates the current life. Callers hold p.mu or own p exclusively.
func (p *producer) start() error {
	opts := []heartbeat.Option{heartbeat.WithClock(p.clk), heartbeat.WithCapacity(p.ringCap)}
	if p.path != "" {
		var sink heartbeat.Sink
		if p.isLog {
			w, err := hbfile.CreateLog(p.path, p.window)
			if err != nil {
				return err
			}
			sink = w
		} else {
			w, err := hbfile.Create(p.path, p.window, p.ringCap)
			if err != nil {
				return err
			}
			sink = w
		}
		opts = append(opts, heartbeat.WithSink(sink))
	}
	hb, err := heartbeat.New(p.window, opts...)
	if err != nil {
		return err
	}
	p.hb = hb
	return nil
}

// restart ends the current life and begins the next; flipVariant recreates
// the file in the other format. The producer mutex serializes it against
// the beat loop, so no beat lands between lives.
func (p *producer) restart(flipVariant bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hb.Close()
	p.heads = append(p.heads, p.hb.Count())
	if p.path != "" {
		os.Remove(p.path)
		if flipVariant {
			p.isLog = !p.isLog
		}
	}
	p.restarts++
	return p.start()
}

// beatLoop beats every interval on the virtual clock until stop.
func (p *producer) beatLoop(ctx context.Context, every time.Duration) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-p.clk.After(every):
		}
		p.mu.Lock()
		if !p.paused && p.clk.Now().After(p.silentTo) {
			p.hb.Beat()
		}
		p.mu.Unlock()
	}
}

// burst emits n beats at one virtual instant — the lap fault.
func (p *producer) burst(n int) {
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.hb.Beat()
	}
	p.mu.Unlock()
}

func (p *producer) silence(until time.Time) {
	p.mu.Lock()
	p.silentTo = until
	p.mu.Unlock()
}

// head returns the current life's published head.
func (p *producer) head() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hb.Count()
}

func (p *producer) lives() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts + 1
}

// visibleLifeHeads returns the published head of every life that a
// consumer can observe at all — the nonzero ones, in order. A life that
// published nothing is invisible: the stream's own cursor reset leaves no
// trace when there is no record to deliver (and its file, if any, is
// deleted by the next restart), so rotation accounting must skip it. An
// all-empty history yields one synthetic zero head: the tracker always
// reports at least its initial life.
func (p *producer) visibleLifeHeads() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []uint64
	for _, h := range p.heads {
		if h > 0 {
			out = append(out, h)
		}
	}
	if h := p.hb.Count(); h > 0 {
		out = append(out, h)
	}
	if len(out) == 0 {
		out = []uint64{0}
	}
	return out
}

// totalPublished sums every life's head — the true published total.
func (p *producer) totalPublished() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.hb.Count()
	for _, h := range p.heads {
		n += h
	}
	return n
}

// stream opens the consumer-side stream of the current life positioned
// after since (TopoDirect) or a follow tail over the file (TopoFile).
func (p *producer) stream(since uint64, poll time.Duration) (observer.Stream, error) {
	if p.path == "" {
		p.mu.Lock()
		defer p.mu.Unlock()
		return observer.HeartbeatStreamFrom(p.hb, since), nil
	}
	return observer.FollowFileClock(p.path, poll, since, p.clk)
}

func (p *producer) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hb.Close()
}

// lockedTracker guards a simcheck.Tracker shared between the consumer
// goroutine and the settle loop.
type lockedTracker struct {
	mu sync.Mutex
	tr *simcheck.Tracker
}

func (l *lockedTracker) absorb(b observer.Batch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tr.Absorb(b)
}

func (l *lockedTracker) with(f func(tr *simcheck.Tracker)) {
	l.mu.Lock()
	f(l.tr)
	l.mu.Unlock()
}

// runLocal runs the direct and file topologies: one consumer stream (and
// one tracker) per producer, faults injected on the virtual schedule, and
// per-producer conservation checked at the end.
func (sc Scenario) runLocal(dir string) (Stats, error) {
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5eed))
	clk := sim.NewClock(time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	producers := make([]*producer, sc.Producers)
	trackers := make([]*lockedTracker, sc.Producers)
	resumes := make([]chan struct{}, sc.Producers)
	var consumerErr sync.Map // producer index -> error
	for i := range producers {
		path := ""
		if sc.Topology == TopoFile {
			path = filepath.Join(dir, fmt.Sprintf("p%d.hb", i))
		}
		p, err := newProducer(clk, path, sc.RingCap)
		if err != nil {
			return Stats{}, err
		}
		defer p.close()
		producers[i] = p
		trackers[i] = &lockedTracker{tr: simcheck.NewTracker(fmt.Sprintf("producer %d", i), 0)}
		resumes[i] = make(chan struct{}, 4)
	}

	var wg sync.WaitGroup
	for i := range producers {
		wg.Add(1)
		go func(p *producer) { defer wg.Done(); p.beatLoop(ctx, sc.BeatEvery) }(producers[i])
	}

	// One consumer loop per producer: absorb batches, reattach on EOF (a
	// direct producer restart closes its stream), resume from the cursor
	// when the schedule says so. The resume request is a sticky flag, not
	// just a context cancellation: by the Stream drain contract a Next
	// with pending data returns it even under a cancelled context, so a
	// signal that lands while data is flowing must survive until the loop
	// can act on it.
	for i := range producers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, tr := producers[i], trackers[i]
			var resumePending atomic.Bool
			stream, err := p.stream(0, sc.Poll)
			if err != nil {
				consumerErr.Store(i, err)
				return
			}
			defer closeStream(&stream)
			// reattach reopens the stream from the tracker's cursor —
			// the shared tail of the EOF (direct restart) and
			// cursor-resume paths; either way the reopened stream must
			// deliver no duplicate and no unaccounted gap.
			reattach := func() {
				closeStream(&stream)
				var cursor uint64
				tr.with(func(t *simcheck.Tracker) { cursor = t.Cursor() })
				for ctx.Err() == nil {
					ns, rerr := p.stream(cursor, sc.Poll)
					if rerr == nil {
						stream = ns
						return
					}
					time.Sleep(200 * time.Microsecond) //hbvet:allow wallclock -- producer mid-restart retry: real-time pacing because the harness goroutine races virtual time, which may be parked mid-restart
				}
			}
			for ctx.Err() == nil {
				segCtx, segCancel := context.WithCancel(ctx)
				stop := make(chan struct{})
				go func() {
					select {
					case <-resumes[i]:
						resumePending.Store(true)
						segCancel()
					case <-stop:
					}
				}()
				b, err := stream.Next(segCtx)
				close(stop)
				segCancel()
				if err == nil {
					if aerr := tr.absorb(b); aerr != nil {
						consumerErr.Store(i, aerr)
						return
					}
					if resumePending.Swap(false) {
						reattach()
					}
					continue
				}
				switch {
				case errors.Is(err, io.EOF), segCtx.Err() != nil && ctx.Err() == nil:
					resumePending.Store(false)
					reattach()
				case ctx.Err() != nil:
					return
				default:
					consumerErr.Store(i, err)
					return
				}
			}
		}(i)
	}

	// The fault scheduler: sleep to each event's virtual time, apply it.
	stats := Stats{}
	events := append([]Event(nil), sc.Events...)
	start := clk.Now()
	for _, ev := range sortedEvents(events) {
		if !sleepUntilVirtual(ctx, clk, start.Add(ev.At)) {
			break
		}
		if handled, err := sc.applyProducerFault(producers, rng, clk, ev); err != nil {
			return stats, err
		} else if handled {
			continue
		}
		if ev.Kind == EvResume {
			stats.Resumed = true
			for i := range resumes {
				resumes[i] <- struct{}{}
			}
		}
	}
	sleepUntilVirtual(ctx, clk, start.Add(sc.Duration))

	// Settle: stop beating (pause everything), then wait — in real time,
	// while virtual time keeps racing — until every consumer has drained
	// its producer's final life.
	for _, p := range producers {
		p.mu.Lock()
		p.paused = true
		p.mu.Unlock()
	}
	deadline := time.Now().Add(settleDeadline) //hbvet:allow wallclock -- settle deadline is a real-time bound on the harness itself, not on simulated components
	stable := 0
	for {
		done := true
		for i, p := range producers {
			// A final life that published nothing is fully drained by
			// definition (there is nothing to deliver, and no record will
			// ever arrive to advance the tracker into it); otherwise the
			// tracker must reach the life's head. Require the condition to
			// hold across a few samples — virtual time races on between
			// them, so a pending rotation at a numerically-equal cursor
			// still gets its polls in before the verdict runs.
			if head := p.head(); head != 0 {
				var cursor uint64
				trackers[i].with(func(t *simcheck.Tracker) { cursor = t.Cursor() })
				if cursor != head {
					done = false
					break
				}
			}
		}
		if done {
			stable++
		} else {
			stable = 0
		}
		if hasErr(&consumerErr) || stable >= 3 {
			break
		}
		if time.Now().After(deadline) { //hbvet:allow wallclock -- checks the harness real-time settle deadline set above
			return stats, settleFailure(producers, trackers)
		}
		time.Sleep(200 * time.Microsecond) //hbvet:allow wallclock -- real-time sampling cadence while virtual time races between samples
	}

	// Verdict.
	if err := firstErr(&consumerErr); err != nil {
		return stats, err
	}
	stats.SimSeconds = clk.Elapsed(start).Seconds()
	for i, p := range producers {
		var err error
		trackers[i].with(func(t *simcheck.Tracker) {
			stats.Delivered += t.Delivered()
			stats.Missed += t.Missed()
			stats.Lives += len(t.Lives())
			stats.Restarts += p.lives() - 1
			if e := t.Err(); e != nil {
				err = e
				return
			}
			// The tracker can only observe lives that published anything
			// (empty lives leave no trace — see visibleLifeHeads), and
			// two back-to-back restarts can additionally hide a nonzero
			// middle life entirely (its file is deleted before the tail's
			// next stat). So the observed lives must form an
			// order-preserving sub-sequence of the true visible lives,
			// each observed head within its matched true head — more
			// observed lives than true ones, or a head no true life can
			// contain, means invented records. A no-restart run (exactly
			// one true life) still pins the count exactly and conserves
			// in full.
			trueHeads := p.visibleLifeHeads()
			lives := t.Lives()
			if len(lives) > len(trueHeads) {
				err = fmt.Errorf("producer %d: observed %d lives, only %d published (%+v vs heads %v)",
					i, len(lives), len(trueHeads), lives, trueHeads)
				return
			}
			ti := 0
			for li, l := range lives {
				for ti < len(trueHeads) && trueHeads[ti] < l.Head {
					ti++
				}
				if ti >= len(trueHeads) {
					err = fmt.Errorf("producer %d observed life %d: head %d fits no published life (lives %+v vs heads %v)",
						i, li, l.Head, lives, trueHeads)
					return
				}
				ti++
			}
			if p.lives() == 1 {
				if e := t.CheckConserved(p.totalPublished()); e != nil {
					err = e
					return
				}
			}
		})
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// runRelayTree runs the full stack: producers write files, leaf relays
// tail them and publish merged feeds on leaf servers, a root relay dials
// every leaf, and one consumer holds a raw and a rollup subscription to
// the root — all over the in-memory network under virtual time.
func (sc Scenario) runRelayTree(dir string) (Stats, error) {
	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5eed))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	// Producers, assigned round-robin to leaves.
	producers := make([]*producer, sc.Producers)
	for i := range producers {
		p, err := newProducer(clk, filepath.Join(dir, fmt.Sprintf("p%d.hb", i)), sc.RingCap)
		if err != nil {
			return Stats{}, err
		}
		defer p.close()
		producers[i] = p
	}
	var wg sync.WaitGroup
	for i := range producers {
		wg.Add(1)
		go func(p *producer) { defer wg.Done(); p.beatLoop(ctx, sc.BeatEvery) }(producers[i])
	}

	// Leaf tier: one relay + server per leaf. Retention is ample so the
	// only Missed in the system comes from producer-file laps.
	type node struct {
		relay *hbnet.Relay
		srv   *hbnet.Server
		addr  string
		mu    sync.Mutex
		// dead marks a leaf decommissioned by EvLeafDie: later scheduled
		// network faults that drew the same node become no-ops instead of
		// resurrecting its server. Only the schedule goroutine touches it.
		dead bool
	}
	newServerOn := func(n *node) error {
		// The servers run their deadline arithmetic on the virtual clock
		// (simnet conns evaluate deadlines on the same clock), so the write
		// timeout is a simulation event the slow-consumer fault can trip.
		srv := hbnet.NewServer(
			hbnet.WithHandshakeTimeout(2*time.Second),
			hbnet.WithServerClock(clk),
			hbnet.WithWriteTimeout(serverWriteTimeout))
		var err error
		if n.relay != nil {
			err = n.relay.PublishOn(srv, "merged", "rollup")
		}
		if err != nil {
			return err
		}
		ln, err := nw.Listen(n.addr)
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		n.mu.Lock()
		n.srv = srv
		n.mu.Unlock()
		return nil
	}

	leaves := make([]*node, sc.Leaves)
	leafCancels := make([]context.CancelFunc, sc.Leaves)
	for li := range leaves {
		relay := hbnet.NewRelay(
			hbnet.WithRelayClock(clk),
			hbnet.WithRollupInterval(sc.Rollup),
			hbnet.WithMergedRetain(1<<17),
		)
		for pi, p := range producers {
			if pi%sc.Leaves != li {
				continue
			}
			if err := relay.AddFileUpstream(fmt.Sprintf("app%d", pi), p.path, sc.Poll); err != nil {
				return Stats{}, err
			}
		}
		n := &node{relay: relay, addr: fmt.Sprintf("leaf%d", li)}
		if err := newServerOn(n); err != nil {
			return Stats{}, err
		}
		leaves[li] = n
		// Each leaf's merge loop gets its own cancel so an EvLeafDie can
		// stop exactly that leaf while the rest of the tree runs on.
		lctx, lcancel := context.WithCancel(ctx)
		leafCancels[li] = lcancel
		go relay.Run(lctx)
		defer relay.Close()
		defer func(n *node) { n.mu.Lock(); n.srv.Close(); n.mu.Unlock() }(n)
	}

	// Root tier.
	root := hbnet.NewRelay(
		hbnet.WithRelayClock(clk),
		hbnet.WithRollupInterval(sc.Rollup),
		hbnet.WithMergedRetain(1<<17),
	)
	var rootUpstreams []*hbnet.Client
	for li, leaf := range leaves {
		nw.SetLatency("root", leaf.addr, time.Duration(rng.Int63n(int64(sc.MaxLink+1))))
		c, err := root.DialUpstream(fmt.Sprintf("leaf%d", li), leaf.addr, "merged",
			hbnet.WithDialer(nw.Host("root")),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectBackoff(20*time.Millisecond, 500*time.Millisecond))
		if err != nil {
			return Stats{}, err
		}
		rootUpstreams = append(rootUpstreams, c)
	}
	rootNode := &node{relay: root, addr: "root"}
	if err := newServerOn(rootNode); err != nil {
		return Stats{}, err
	}
	go root.Run(ctx)
	defer root.Close()
	defer func() { rootNode.mu.Lock(); rootNode.srv.Close(); rootNode.mu.Unlock() }()
	servers := append([]*node{rootNode}, leaves...)

	// The consumer: a raw subscription and a rollup subscription to the
	// root, each over the simulated network.
	nw.SetLatency("mon", "root", time.Duration(rng.Int63n(int64(sc.MaxLink+1))))
	dialOpts := func() []hbnet.ClientOption {
		return []hbnet.ClientOption{
			hbnet.WithDialer(nw.Host("mon")),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectBackoff(20*time.Millisecond, 500*time.Millisecond),
		}
	}
	tracker := &lockedTracker{tr: simcheck.NewTracker("relay consumer", 0)}
	var (
		consumerMu  sync.Mutex
		consumerErr error
		// reconnects/wireMissed accumulate the counters of every retired
		// raw client; curClient is the live one, so readers (the resume
		// forwarder, the verdict) always see the whole history as
		// retired + live.
		reconnects   int
		wireMissed   uint64
		curClient    *hbnet.Client
		resumed      bool
		rollups      simcheck.RollupAccount
		rollupMu     sync.Mutex
		resumeSignal = make(chan struct{}, 4)
		stallSignal  = make(chan time.Duration, 1)
	)
	setErr := func(err error) {
		consumerMu.Lock()
		if consumerErr == nil {
			consumerErr = err
		}
		consumerMu.Unlock()
	}
	// consumerWire reads the accumulated wire-level accounting, live
	// client included.
	consumerWire := func() (rec int, missed uint64) {
		consumerMu.Lock()
		defer consumerMu.Unlock()
		return reconnects + curClient.Reconnects(), wireMissed + curClient.Missed()
	}

	raw, err := hbnet.Dial("root", "merged", dialOpts()...)
	if err != nil {
		return Stats{}, err
	}
	curClient = raw
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := raw
		defer func() { client.Close() }()
		for ctx.Err() == nil {
			select {
			case d := <-stallSignal:
				// The slow-consumer fault: stop draining for d of virtual
				// time. The link's write limit fills, the server's write
				// blocks, and its virtual-clock write timeout disconnects
				// this subscriber — the reconnect below resumes it.
				sleepUntilVirtual(ctx, clk, clk.Now().Add(d))
			default:
			}
			b, err := client.Next(ctx)
			if err == nil {
				if aerr := tracker.absorb(b); aerr != nil {
					setErr(aerr)
					return
				}
				continue
			}
			if ctx.Err() != nil {
				return
			}
			if errors.Is(err, io.EOF) {
				// The consumer closed its own client for a cursor-resume:
				// redial from the delivered cursor. Anything else ending
				// the stream is a scenario failure.
				consumerMu.Lock()
				wasResume := resumed
				reconnects += client.Reconnects()
				wireMissed += client.Missed()
				consumerMu.Unlock()
				if !wasResume {
					setErr(fmt.Errorf("raw subscription ended unexpectedly"))
					return
				}
				cursor := client.Cursor()
				client.Close()
				for ctx.Err() == nil {
					nc, derr := hbnet.DialFrom("root", "merged", cursor, dialOpts()...)
					if derr == nil {
						consumerMu.Lock()
						client, curClient = nc, nc
						consumerMu.Unlock()
						break
					}
					time.Sleep(500 * time.Microsecond) //hbvet:allow wallclock -- real-time reconnect pacing: the consumer lives outside the virtual clock
				}
				continue
			}
			setErr(fmt.Errorf("raw subscription: %w", err))
			return
		}
	}()
	wg.Add(1)
	go func() { // forward resume requests by closing the live client
		defer wg.Done()
		for {
			select {
			case <-ctx.Done():
				return
			case <-resumeSignal:
				consumerMu.Lock()
				resumed = true
				c := curClient
				consumerMu.Unlock()
				c.Close()
			}
		}
	}()

	rollupC, err := hbnet.DialRollup("root", "rollup", dialOpts()...)
	if err != nil {
		return Stats{}, err
	}
	defer rollupC.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rb, err := rollupC.NextRollups(ctx)
			if err != nil {
				if ctx.Err() == nil && !errors.Is(err, io.EOF) {
					setErr(fmt.Errorf("rollup subscription: %w", err))
				}
				return
			}
			rollupMu.Lock()
			rollups.AbsorbRollups(rb.Rollups, rb.Missed)
			rollupMu.Unlock()
		}
	}()

	// The balancer under test: a live routing table driven by each LEAF's
	// own rollup feed (the root's rollups are per-leaf aggregates; only
	// the leaves emit per-producer windows), exactly how a fleet-scale
	// balancer would watch its backends. Every swap is checked against the
	// remap invariant; when the schedule contains an EvNodeDrain, the
	// verdict additionally requires the full drain → minimal reshuffle →
	// reclaim arc to have completed for the drained producer's app.
	drainApp := ""
	for _, ev := range sc.Events {
		if ev.Kind == EvNodeDrain {
			drainApp = fmt.Sprintf("app%d", ev.Producer)
		}
	}
	var (
		balMu    sync.Mutex
		balErr   error
		drains   int
		reclaims int
		maxRemap float64
	)
	updater := balance.NewUpdater(balance.New(balance.WithBuckets(512)), balance.DefaultPolicy(),
		balance.WithOnSwap(func(sw balance.Swap) {
			balMu.Lock()
			defer balMu.Unlock()
			if err := simcheck.CheckRemap("balancer swap "+sw.Node, sw.Frac(), sw.Share); err != nil && balErr == nil {
				balErr = err
			}
			if f := sw.Frac(); f > maxRemap {
				maxRemap = f
			}
			if sw.Node == drainApp {
				if sw.New == 0 {
					drains++
				}
				if sw.New == 1 && sw.Old < 1 && drains > 0 {
					reclaims++
				}
			}
		}))
	for _, leaf := range leaves {
		nw.SetLatency("mon", leaf.addr, time.Duration(rng.Int63n(int64(sc.MaxLink+1))))
		feed := hbnet.DialRollupFeed(leaf.addr, "rollup", dialOpts()...)
		wg.Add(1)
		go func(feed hbnet.RollupFeed) {
			defer wg.Done()
			// The client under the feed reconnects by cursor on its own;
			// this loop only survives a torn-down open (a leaf listener
			// outage racing the initial dial), resuming from the last
			// delivered emission so no window is double-absorbed.
			var since uint64
			for ctx.Err() == nil {
				feed.Consume(ctx, since, func(b hbnet.RollupBatch) error {
					since = b.Cursor
					updater.Absorb(b.Rollups...)
					return nil
				})
				if ctx.Err() != nil {
					return
				}
				time.Sleep(500 * time.Microsecond) //hbvet:allow wallclock -- real-time poll cadence for the rollup feed while virtual time races
			}
		}(feed)
	}

	// The fault scheduler.
	stats := Stats{}
	linkName := func(i int) (a, b string) {
		if i == 0 {
			return "mon", "root"
		}
		return "root", leaves[i-1].addr
	}
	start := clk.Now()
schedule:
	for _, ev := range sortedEvents(append([]Event(nil), sc.Events...)) {
		if !sleepUntilVirtual(ctx, clk, start.Add(ev.At)) {
			break
		}
		if handled, err := sc.applyProducerFault(producers, rng, clk, ev); err != nil {
			return stats, err
		} else if handled {
			continue
		}
		switch ev.Kind {
		case EvResume:
			stats.Resumed = true
			resumeSignal <- struct{}{}
		case EvLinkBlip:
			a, b := linkName(ev.Link)
			nw.CutLink(a, b)
		case EvDropBytes:
			a, b := linkName(ev.Link)
			nw.DropAfterBytes(a, b, int64(ev.Arg))
		case EvPartition:
			a, b := linkName(ev.Link)
			nw.Partition(a, b)
			if !sleepUntilVirtual(ctx, clk, clk.Now().Add(ev.Arg)) {
				break schedule
			}
			nw.Heal(a, b)
		case EvServerCrash:
			n := servers[ev.Server]
			if n.dead {
				continue // decommissioned by an earlier EvLeafDie: nothing to crash
			}
			n.mu.Lock()
			n.srv.Close()
			n.mu.Unlock()
			if !sleepUntilVirtual(ctx, clk, clk.Now().Add(ev.Arg)) {
				break schedule
			}
			if err := newServerOn(n); err != nil {
				return stats, fmt.Errorf("restore server %s: %w", n.addr, err)
			}
		case EvListenerOutage:
			n := servers[ev.Server]
			if n.dead {
				continue // decommissioned by an earlier EvLeafDie
			}
			nw.SetListenerDown(n.addr, true)
			// Blip the links into the downed listener so clients must
			// redial into the outage and back off until it lifts.
			if n == rootNode {
				nw.CutLink("mon", "root")
			} else {
				nw.CutLink("root", n.addr)
			}
			if !sleepUntilVirtual(ctx, clk, clk.Now().Add(ev.Arg)) {
				break schedule
			}
			nw.SetListenerDown(n.addr, false)
		case EvSlowConsumer:
			// Bound the consumer link's socket buffer, then stall the
			// consumer past the server's write timeout. The limit lifts
			// when the window ends; the resumed consumer drains whatever
			// is pending, notices the disconnect, and reconnects.
			nw.SetWriteLimit("mon", "root", 512)
			stallSignal <- ev.Arg
			if !sleepUntilVirtual(ctx, clk, clk.Now().Add(ev.Arg)) {
				break schedule
			}
			nw.SetWriteLimit("mon", "root", 0)
		case EvLeafDie:
			// Decommission one leaf through the runtime-membership path:
			// re-home every producer upstream to a sibling with its cursor
			// preserved, let the root drain what the dying leaf still holds,
			// remove the root's upstream for it, then shut the node down.
			li := ev.Server - 1
			dying, sibling := leaves[li], leaves[(li+1)%sc.Leaves]
			for _, app := range dying.relay.Apps() {
				if err := hbnet.RebalanceStream(dying.relay, sibling.relay, app); err != nil {
					return stats, fmt.Errorf("leaf-die: re-home %s: %w", app, err)
				}
				stats.Handoffs++
			}
			// With its upstreams detached the dying head is frozen; wait (in
			// real time, while virtual time races on) until the root's client
			// has drained every record the leaf ever sequenced, so removal
			// loses nothing. The root↔leaf link may be mid-blip or mid-drop
			// here — the client's own reconnect covers that.
			dyingHead := dying.relay.MergedHead()
			handoffDeadline := time.Now().Add(settleDeadline) //hbvet:allow wallclock -- real-time bound on the harness's own drain wait, not on simulated components
			for rootUpstreams[li].Cursor() < dyingHead {
				if time.Now().After(handoffDeadline) { //hbvet:allow wallclock -- checks the harness real-time drain deadline set above
					return stats, fmt.Errorf("leaf-die: root drained %d of %d from %s before deadline",
						rootUpstreams[li].Cursor(), dyingHead, dying.addr)
				}
				time.Sleep(500 * time.Microsecond) //hbvet:allow wallclock -- real-time poll cadence while virtual time races
			}
			if _, err := root.RemoveUpstream(fmt.Sprintf("leaf%d", li)); err != nil {
				return stats, fmt.Errorf("leaf-die: remove root upstream: %w", err)
			}
			leafCancels[li]()
			dying.mu.Lock()
			dying.srv.Close()
			dying.mu.Unlock()
			dying.relay.Close()
			dying.dead = true
		}
	}
	sleepUntilVirtual(ctx, clk, start.Add(sc.Duration))

	// Settle: pause producers, then wait until the pipeline drains and
	// every hop agrees — consumer == root head == Σ leaf heads, rollups
	// conserve — and the totals are stable while virtual time races on.
	for _, p := range producers {
		p.mu.Lock()
		p.paused = true
		p.mu.Unlock()
	}
	deadline := time.Now().Add(settleDeadline) //hbvet:allow wallclock -- settle deadline is a real-time bound on the harness itself, not on simulated components
	var lastTotal uint64
	stable := 0
	for {
		consumerMu.Lock()
		errNow := consumerErr
		consumerMu.Unlock()
		if errNow != nil {
			break
		}
		var consumerTotal uint64
		tracker.with(func(t *simcheck.Tracker) { consumerTotal = t.Delivered() + t.Missed() })
		rootHead := root.MergedHead()
		var leafSum uint64
		for _, leaf := range leaves {
			leafSum += leaf.relay.MergedHead()
		}
		rollupMu.Lock()
		rollupTotal := rollups.Records + rollups.Missed
		rollupMu.Unlock()
		// A node-drain scenario must also have completed its arc: the
		// balancer's rollup subscriptions ride the same faulted network,
		// so the drained app's reclaim can trail the record pipeline.
		balMu.Lock()
		balSettled := drainApp == "" || balErr != nil || (drains > 0 && reclaims > 0)
		balMu.Unlock()
		if consumerTotal == rootHead && rootHead == leafSum && rollupTotal == rootHead && consumerTotal > 0 && balSettled {
			if consumerTotal == lastTotal {
				stable++
				if stable >= 5 {
					break
				}
			} else {
				stable = 0
			}
			lastTotal = consumerTotal
		} else {
			stable = 0
		}
		if time.Now().After(deadline) { //hbvet:allow wallclock -- checks the harness real-time settle deadline set above
			return stats, fmt.Errorf("relay settle timed out: consumer=%d rootHead=%d leafSum=%d rollupTotal=%d",
				consumerTotal, rootHead, leafSum, rollupTotal)
		}
		time.Sleep(2 * time.Millisecond) //hbvet:allow wallclock -- real-time sampling cadence while virtual time races between samples
	}

	// Verdict.
	consumerMu.Lock()
	errNow := consumerErr
	consumerMu.Unlock()
	if errNow != nil {
		return stats, errNow
	}
	stats.SimSeconds = clk.Elapsed(start).Seconds()
	var verdict error
	tracker.with(func(t *simcheck.Tracker) {
		stats.Delivered = t.Delivered()
		stats.Missed = t.Missed()
		stats.Lives = len(t.Lives())
		if e := t.Err(); e != nil {
			verdict = e
			return
		}
		// Relay histories survive every injected fault, so the consumer
		// must observe exactly one hop-local sequence space.
		if e := t.CheckLives(1); e != nil {
			verdict = e
			return
		}
		if e := t.CheckConserved(root.MergedHead()); e != nil {
			verdict = e
			return
		}
	})
	if verdict != nil {
		return stats, verdict
	}
	rollupMu.Lock()
	verdict = rollups.CheckConserved("rollups", root.MergedHead())
	rollupMu.Unlock()
	if verdict != nil {
		return stats, verdict
	}
	// Balancer verdict: every swap stayed inside the remap bound, and a
	// scheduled node-drain completed its whole arc.
	balMu.Lock()
	stats.Drains, stats.Reclaims, stats.MaxRemap = drains, reclaims, maxRemap
	balVerdict := balErr
	balMu.Unlock()
	if balVerdict != nil {
		return stats, balVerdict
	}
	if drainApp != "" {
		if stats.Drains == 0 {
			return stats, fmt.Errorf("node-drain scenario: balancer never drained %s (weight now %.2f)", drainApp, updater.Weight(drainApp))
		}
		if stats.Reclaims == 0 {
			return stats, fmt.Errorf("node-drain scenario: %s drained but never reclaimed full weight (weight now %.2f)", drainApp, updater.Weight(drainApp))
		}
	}
	for _, p := range producers {
		stats.Restarts += p.lives() - 1
	}
	for _, c := range rootUpstreams {
		stats.Reconnects += c.Reconnects()
	}
	stats.Shed = root.Shed()
	for _, leaf := range leaves {
		stats.Shed += leaf.relay.Shed()
	}
	if err := simcheck.CheckShed("relay tree", stats.Shed, stats.Missed); err != nil {
		return stats, err
	}
	// Wire-accounting parity: the client's own Missed tally (across every
	// retired client plus the live one) must agree with what the tracker
	// summed out of the delivered batches — the two independent ledgers of
	// the same loss.
	conRec, conMissed := consumerWire()
	stats.Reconnects += conRec
	if conMissed != stats.Missed {
		return stats, fmt.Errorf("wire accounting disagrees with tracker: client missed %d, tracker missed %d",
			conMissed, stats.Missed)
	}
	return stats, nil
}

// applyProducerFault applies the producer-fault arms of the schedule —
// the one switch both topology runners share, so the direct/file and
// relay-tree runs cannot drift apart in fault semantics. It reports
// whether it handled the event (network faults are the relay runner's
// own).
func (sc Scenario) applyProducerFault(producers []*producer, rng *rand.Rand, clk *sim.Clock, ev Event) (bool, error) {
	switch ev.Kind {
	case EvRestart, EvRecreate:
		if err := producers[ev.Producer].restart(ev.Kind == EvRecreate); err != nil {
			return true, fmt.Errorf("restart producer %d: %w", ev.Producer, err)
		}
	case EvLap:
		producers[ev.Producer].burst(3*sc.RingCap + rng.Intn(sc.RingCap))
	case EvSilence, EvNodeDrain:
		// A node-drain is mechanically a silence window; what distinguishes
		// it is the balancer assertions the relay-tree runner makes around
		// it (drain observed, remap bounded, reclaim completed).
		producers[ev.Producer].silence(clk.Now().Add(ev.Arg))
	default:
		return false, nil
	}
	return true, nil
}

func sortedEvents(events []Event) []Event {
	for i := 1; i < len(events); i++ { // insertion sort: schedules are tiny
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	return events
}

// sleepUntilVirtual blocks until the virtual clock reaches t (or ctx
// ends); false means cancelled.
func sleepUntilVirtual(ctx context.Context, clk *sim.Clock, t time.Time) bool {
	for {
		d := t.Sub(clk.Now())
		if d <= 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-clk.After(d):
		}
	}
}

func closeStream(s *observer.Stream) {
	if c, ok := (*s).(io.Closer); ok && c != nil {
		c.Close()
	}
}

func hasErr(m *sync.Map) bool {
	found := false
	m.Range(func(_, _ interface{}) bool { found = true; return false })
	return found
}

func firstErr(m *sync.Map) error {
	var err error
	m.Range(func(_, v interface{}) bool { err = v.(error); return false })
	return err
}

func settleFailure(producers []*producer, trackers []*lockedTracker) error {
	parts := ""
	for i, p := range producers {
		var cursor uint64
		trackers[i].with(func(t *simcheck.Tracker) { cursor = t.Cursor() })
		parts += fmt.Sprintf(" p%d[cursor=%d head=%d]", i, cursor, p.head())
	}
	return fmt.Errorf("settle timed out:%s", parts)
}
