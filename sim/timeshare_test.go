package sim

import (
	"testing"
	"time"
)

// endless returns a work supplier with fixed per-item cost.
func endless(ops float64) func() (Work, bool) {
	return func() (Work, bool) { return Work{Ops: ops, ParallelFrac: 1}, true }
}

// bounded returns a supplier of exactly n items.
func bounded(ops float64, n int) func() (Work, bool) {
	left := n
	return func() (Work, bool) {
		if left == 0 {
			return Work{}, false
		}
		left--
		return Work{Ops: ops, ParallelFrac: 1}, true
	}
}

// Time quanta equalize CPU; with a 4x per-item cost asymmetry the cheap
// app completes ~4x the beats.
func TestTimeQuantaEqualizeCPU(t *testing.T) {
	clk := NewClock(time.Time{})
	ts := NewTimeShare(clk, 1, 1000)
	cheap := ts.AddProc("cheap", endless(250))    // 4 items/s
	costly := ts.AddProc("costly", endless(1000)) // 1 item/s
	for i := 0; i < 200; i++ {
		ts.StepTimeQuantum(time.Second)
	}
	cpuRatio := float64(cheap.CPU()) / float64(costly.CPU())
	if cpuRatio < 0.95 || cpuRatio > 1.05 {
		t.Fatalf("CPU ratio = %.2f, want ~1 under time quanta", cpuRatio)
	}
	beatRatio := float64(cheap.Completed()) / float64(costly.Completed())
	if beatRatio < 3.5 || beatRatio > 4.5 {
		t.Fatalf("beat ratio = %.2f, want ~4 (cost asymmetry)", beatRatio)
	}
}

// Beat quanta equalize application progress; the costly app receives ~4x
// the CPU instead.
func TestBeatQuantaEqualizeProgress(t *testing.T) {
	clk := NewClock(time.Time{})
	ts := NewTimeShare(clk, 1, 1000)
	cheap := ts.AddProc("cheap", endless(250))
	costly := ts.AddProc("costly", endless(1000))
	for i := 0; i < 200; i++ {
		ts.StepBeatQuantum(4)
	}
	beatRatio := float64(cheap.Completed()) / float64(costly.Completed())
	if beatRatio < 0.95 || beatRatio > 1.05 {
		t.Fatalf("beat ratio = %.2f, want ~1 under beat quanta", beatRatio)
	}
	cpuRatio := float64(costly.CPU()) / float64(cheap.CPU())
	if cpuRatio < 3.5 || cpuRatio > 4.5 {
		t.Fatalf("CPU ratio = %.2f, want ~4 toward the costly app", cpuRatio)
	}
}

// A partially executed item resumes correctly across quanta.
func TestTimeQuantumPartialProgress(t *testing.T) {
	clk := NewClock(time.Time{})
	ts := NewTimeShare(clk, 1, 1000)
	// One item costs 2.5 quanta.
	p := ts.AddProc("app", bounded(2500, 1))
	for i := 0; i < 2; i++ {
		ts.StepTimeQuantum(time.Second)
		if p.Completed() != 0 {
			t.Fatalf("completed early at quantum %d", i)
		}
	}
	ts.StepTimeQuantum(time.Second)
	if p.Completed() != 1 || !p.Idle() {
		t.Fatalf("completed=%d idle=%v after 3 quanta", p.Completed(), p.Idle())
	}
	// 2.5 seconds of CPU, not 3: the final quantum ends at completion.
	if p.CPU() != 2500*time.Millisecond {
		t.Fatalf("CPU = %v, want 2.5s", p.CPU())
	}
}

func TestTimeShareDrainsAndStops(t *testing.T) {
	clk := NewClock(time.Time{})
	ts := NewTimeShare(clk, 2, 1000)
	a := ts.AddProc("a", bounded(1000, 3))
	b := ts.AddProc("b", bounded(1000, 5))
	steps := 0
	for ts.StepBeatQuantum(2) {
		steps++
		if steps > 100 {
			t.Fatal("scheduler did not terminate")
		}
	}
	if a.Completed() != 3 || b.Completed() != 5 {
		t.Fatalf("completed a=%d b=%d", a.Completed(), b.Completed())
	}
	if ts.StepTimeQuantum(time.Second) {
		t.Fatal("step on drained scheduler returned true")
	}
}

func TestTimeShareValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTimeShare(nil, 1, 1) },
		func() { NewTimeShare(NewClock(time.Time{}), 0, 1) },
		func() { NewTimeShare(NewClock(time.Time{}), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	ts := NewTimeShare(NewClock(time.Time{}), 1, 1)
	if ts.StepTimeQuantum(0) || ts.StepBeatQuantum(0) {
		t.Fatal("degenerate quanta accepted")
	}
}
