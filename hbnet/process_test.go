package hbnet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// TestHelperProcessServeHeartbeat is not a test: re-executed as a child
// process (the classic helper-process pattern), it runs a heartbeat-
// enabled "application" serving its heartbeats over hbnet on an ephemeral
// loopback port, printing the address on stdout. It beats continuously
// until stdin closes.
func TestHelperProcessServeHeartbeat(t *testing.T) {
	if os.Getenv("HBNET_HELPER_PROCESS") != "1" {
		t.Skip("helper process, skipped in normal runs")
	}
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(256))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hb.SetTarget(50, 5000)
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	go srv.Serve(l)
	fmt.Printf("ADDR %s\n", l.Addr())
	os.Stdout.Sync()

	// Beat at ~500/s until the parent closes our stdin, then shut down
	// cleanly so subscribers see EOF rather than a broken connection.
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1)
		os.Stdin.Read(buf)
	}()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			hb.Close()
			srv.Close()
			os.Exit(0)
		case <-tick.C:
			hb.Beat()
		}
	}
}

// startChildServer launches the helper process and returns its hbnet
// address plus a shutdown func that closes its stdin and reaps it.
func startChildServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestHelperProcessServeHeartbeat$", "-test.v=false")
	cmd.Env = append(os.Environ(), "HBNET_HELPER_PROCESS=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never printed its address")
	}
	var once sync.Once
	stop = func() {
		once.Do(func() {
			stdin.Close()
			waited := make(chan struct{})
			go func() { cmd.Wait(); close(waited) }()
			select {
			case <-waited:
			case <-time.After(10 * time.Second):
				cmd.Process.Kill()
				<-waited
			}
		})
	}
	t.Cleanup(stop)
	return addr, stop
}

// The acceptance scenario: a monitor and a scheduler consume hbnet.Client
// streams from an application in another process over loopback TCP, while
// a raw client proves exactly-once, ordered delivery with exact Missed
// accounting across a forced reconnect (the outage deliberately outruns
// the producer's 256-record ring, so the gap MUST surface as Missed).
func TestProcessBoundaryMonitorAndScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process and streams for seconds")
	}
	addr, stop := startChildServer(t)

	// Raw accounting client goes through a cuttable proxy so the network
	// can fail without the application noticing.
	p := newProxy(t, addr)
	raw, err := Dial(p.addr(), "app", WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	// Monitor on its own direct connection.
	mon, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	var muStatus sync.Mutex
	var statuses []observer.Status
	monitor := observer.NewMonitor(nil, 50*time.Millisecond, func(st observer.Status) {
		muStatus.Lock()
		statuses = append(statuses, st)
		muStatus.Unlock()
	}, observer.WithStream(mon), observer.WithClassifier(&observer.Classifier{FlatlineFactor: 50}))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); monitor.Run(ctx) }()

	// Scheduler on a third connection, actuating a simulated machine from
	// the remote rate signal.
	schedStream, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	machine := sim.NewMachine(sim.NewClock(time.Time{}), 8, 1e6)
	sched, err := scheduler.New(nil, machine, scheduler.StepperPolicy{
		Stepper: &control.Stepper{TargetMin: 50, TargetMax: 5000},
	}, scheduler.WithStream(schedStream))
	if err != nil {
		t.Fatal(err)
	}
	var muSample sync.Mutex
	var samples []scheduler.Sample
	wg.Add(1)
	go func() {
		defer wg.Done()
		sched.Run(ctx, 50*time.Millisecond, func(s scheduler.Sample) {
			muSample.Lock()
			samples = append(samples, s)
			muSample.Unlock()
		}, nil)
	}()
	defer schedStream.Close()

	// Phase 1: clean streaming.
	recs, missed := collect(t, raw, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 200 })

	// Phase 2: a sustained outage — live connections severed AND redials
	// refused — long enough for the producer to lap its 256-record ring
	// (500 beats/s for 1.2s ≈ 600 > 256), then restore the network and let
	// the client resume from its cursor.
	p.setPaused(true)
	p.cut()
	time.Sleep(1200 * time.Millisecond)
	p.setPaused(false)
	more, missedMore := collect(t, raw, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 300 })
	recs = append(recs, more...)
	missed += missedMore
	if raw.Reconnects() < 1 {
		t.Fatalf("no reconnect after cut (reconnects=%d)", raw.Reconnects())
	}
	if missed == 0 {
		t.Fatal("outage outran the ring but nothing was reported Missed")
	}

	// Exactly-once, ordered, and fully accounted: every sequence number up
	// to the newest delivered one was either delivered exactly once or
	// counted in Missed.
	seen := make(map[uint64]bool, len(recs))
	var prev uint64
	for i, r := range recs {
		if r.Seq == 0 {
			t.Fatalf("record %d has no sequence number", i)
		}
		if seen[r.Seq] {
			t.Fatalf("seq %d delivered twice across the reconnect", r.Seq)
		}
		if r.Seq <= prev {
			t.Fatalf("seq %d after %d: out of order", r.Seq, prev)
		}
		seen[r.Seq] = true
		prev = r.Seq
	}
	simcheck.RequireConserved(t, "reconnect-resumed subscription", uint64(len(recs)), missed, prev)
	// Dense wherever nothing was Missed: the gap total equals the Missed
	// total exactly, so with missed subtracted the delivery is gapless.

	// Let the control loops take a few more judgments, then stop the app.
	time.Sleep(300 * time.Millisecond)
	stop()

	// The monitor saw a live, progressing application.
	deadline := time.Now().Add(5 * time.Second)
	for {
		muStatus.Lock()
		n := len(statuses)
		var healthy *observer.Status
		for i := range statuses {
			if statuses[i].RateOK && statuses[i].Count > 0 {
				healthy = &statuses[i]
				break
			}
		}
		muStatus.Unlock()
		if healthy != nil {
			if healthy.TargetMin != 50 || healthy.TargetMax != 5000 {
				t.Fatalf("monitor saw target [%v, %v]", healthy.TargetMin, healthy.TargetMax)
			}
			if healthy.Rate <= 0 {
				t.Fatalf("monitor measured rate %v", healthy.Rate)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor never measured the remote app (%d statuses)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The scheduler decided from the remote signal.
	deadline = time.Now().Add(5 * time.Second)
	for {
		muSample.Lock()
		var decided *scheduler.Sample
		for i := range samples {
			if samples[i].RateOK {
				decided = &samples[i]
				break
			}
		}
		muSample.Unlock()
		if decided != nil {
			if decided.Rate <= 0 || decided.TargetMin != 50 {
				t.Fatalf("scheduler decided from %+v", decided)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("scheduler never observed a measurable remote rate")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	wg.Wait()
}
