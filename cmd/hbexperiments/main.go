// Command hbexperiments regenerates the paper's tables and figures.
//
// Usage:
//
//	hbexperiments [-run all|table2|overhead|fig2|...|fig8] [-out DIR]
//	              [-frames N] [-seed N] [-chart-width W] [-chart-height H]
//
// Each experiment prints its notes (measured vs. paper shape criteria) and
// either an aligned table or an ASCII chart; with -out, CSV files named
// <id>.csv are written for external plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment id or 'all' (ids: table2 overhead fig2..fig8 multiapp dvfs)")
	out := flag.String("out", "", "directory for CSV output (created if missing)")
	frames := flag.Int("frames", 0, "encoder experiment frame budget (0 = paper scale)")
	units := flag.Int("overhead-units", 0, "blackscholes options for the overhead study (0 = 200000)")
	seed := flag.Int64("seed", 0, "seed for procedural inputs")
	cw := flag.Int("chart-width", 72, "ASCII chart width")
	ch := flag.Int("chart-height", 16, "ASCII chart height")
	flag.Parse()

	opt := experiments.Options{EncoderFrames: *frames, OverheadUnits: *units, Seed: *seed}
	ids := experiments.IDs()
	if *run != "all" {
		ids = []string{*run}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "hbexperiments:", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		r, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbexperiments:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", r.Title)
		if r.Table != nil {
			r.Table.Render(os.Stdout)
		}
		if r.Series != nil {
			r.Series.Chart(os.Stdout, *cw, *ch)
		}
		for _, n := range r.Notes {
			fmt.Println("note:", n)
		}
		fmt.Println()
		if *out != "" {
			path := filepath.Join(*out, r.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbexperiments:", err)
				os.Exit(1)
			}
			if r.Table != nil {
				err = r.Table.WriteCSV(f)
			} else {
				err = r.Series.WriteCSV(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbexperiments:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
	}
}
