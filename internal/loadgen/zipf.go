package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^s — the hot-key
// skew of real fleets, where a handful of applications carry most of the
// heartbeat volume and a long tail barely speaks. s = 0 degenerates to
// uniform; s around 1 is the classic web-traffic shape. The sampler is a
// precomputed cumulative table plus a binary search, so drawing is O(log n)
// with no floating-point surprises between runs: the same seed always
// produces the same assignment.
type Zipf struct {
	s   float64
	cum []float64
}

// NewZipf builds a sampler over n ranks with exponent s >= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("loadgen: NewZipf n = %d, want > 0", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("loadgen: NewZipf s = %g, want >= 0", s))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // exact upper bound, immune to rounding
	return &Zipf{s: s, cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// S returns the exponent the sampler was built with.
func (z *Zipf) S() float64 { return z.s }

// Sample draws one rank using rng. rng is the caller's: determinism is the
// caller's seed, and one Zipf may serve many generators.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Weight returns rank's exact probability mass — what the empirical
// frequency of the rank converges to.
func (z *Zipf) Weight(rank int) float64 {
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}
