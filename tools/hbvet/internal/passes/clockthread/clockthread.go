// Package clockthread catches the “accepted the clock, forgot to use it”
// bug shape: a type stores an injected clock, yet one of its methods (or
// constructors) still reads the wall directly. PR 6 fixed exactly this
// class by hand when server deadlines ran on time.Now while the server
// carried a clock; this analyzer machine-checks it. The wallclock
// analyzer flags the same call sites generically — clockthread is the
// stricter companion: a site inside a clock-storing type needs its own
// //hbvet:allow clockthread justification, so a broad wallclock waiver
// cannot quietly cover the one place a clock was already at hand.
package clockthread

import (
	"go/ast"
	"go/types"

	"repro/tools/hbvet/internal/analysis"
	"repro/tools/hbvet/internal/passes/wallclock"
)

// Analyzer flags wall-clock calls inside clock-storing types.
var Analyzer = &analysis.Analyzer{
	Name:      "clockthread",
	Doc:       "flags types that store a Clock but whose methods or constructors call the wall clock directly",
	SeamFiles: []string{"heartbeat/clock*.go", "sim/"},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	// Named struct types that store a clock, with the field that does.
	clockField := make(map[*types.TypeName]string)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if field := st.Field(i); isClock(field.Type()) {
				clockField[tn] = field.Name()
				break
			}
		}
	}
	if len(clockField) == 0 {
		return nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner, role := ownerOf(pass, fd, clockField)
			if owner == nil {
				continue
			}
			field := clockField[owner]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if name, ok := wallclock.BannedFunc(pass.TypesInfo, id); ok {
					pass.Reportf(id.Pos(),
						"%s %s of %s calls %s directly, but %s already stores a clock in field %q — use the stored clock (or //hbvet:allow clockthread -- <reason>)",
						role, fd.Name.Name, owner.Name(), name, owner.Name(), field)
				}
				return true
			})
		}
	}
	return nil
}

// ownerOf resolves which clock-storing type fd belongs to: a method on it,
// or a constructor (a plain function returning it).
func ownerOf(pass *analysis.Pass, fd *ast.FuncDecl, owners map[*types.TypeName]string) (*types.TypeName, string) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if tn := namedOf(recv.Type()); tn != nil {
			if _, ok := owners[tn]; ok {
				return tn, "method"
			}
		}
		return nil, ""
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if tn := namedOf(results.At(i).Type()); tn != nil {
			if _, ok := owners[tn]; ok {
				return tn, "constructor"
			}
		}
	}
	return nil, ""
}

// namedOf unwraps pointers to the defining TypeName, if any.
func namedOf(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// isClock reports whether t (possibly behind a pointer) is a clock: an
// interface whose method set includes Now() time.Time. Matching the shape
// rather than the named heartbeat.Clock keeps the analyzer honest about
// sim clocks, test fakes, and future clock interfaces alike.
func isClock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Now" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		if named := namedOf(sig.Results().At(0).Type()); named != nil &&
			named.Name() == "Time" && named.Pkg() != nil && named.Pkg().Path() == "time" {
			return true
		}
	}
	return false
}
