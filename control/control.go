// Package control provides the adaptation policies used with Application
// Heartbeats: the threshold stepper the paper's external scheduler uses
// (§5.3: add a core when the heart rate is below the target window, reclaim
// one when above), the quality ladder its adaptive H.264 encoder uses (§5.2:
// step to cheaper algorithms until the target frame rate is met), and a PI
// controller as the natural control-theoretic extension explored by the
// authors' follow-on work.
//
// Policies are pure decision logic: they consume heart-rate measurements
// and emit resource or quality adjustments; actuation (granting cores,
// reconfiguring an encoder) belongs to the caller. All policies are
// single-goroutine state machines; wrap them if shared.
package control

import "math"

// Decision is a discrete adaptation step.
type Decision int

const (
	// StepDown releases resources or raises quality (rate above target).
	StepDown Decision = -1
	// Hold keeps the current configuration.
	Hold Decision = 0
	// StepUp adds resources or lowers quality (rate below target).
	StepUp Decision = 1
)

// String names the decision.
func (d Decision) String() string {
	switch {
	case d > 0:
		return "step-up"
	case d < 0:
		return "step-down"
	default:
		return "hold"
	}
}

// Stepper is the paper's threshold policy: one step toward the target
// window per decision, with an optional settle period after each change so
// the plant's heart-rate window can refill with post-change beats before
// the next judgment.
type Stepper struct {
	// TargetMin and TargetMax delimit the goal window in beats/s.
	TargetMin, TargetMax float64
	// Settle is how many decisions to hold after a change (default 0).
	Settle int

	cooldown int
}

// Decide returns the step for the given measured rate. ok == false (no
// measurable rate yet) holds.
func (s *Stepper) Decide(rate float64, ok bool) Decision {
	if !ok {
		return Hold
	}
	if s.cooldown > 0 {
		s.cooldown--
		return Hold
	}
	var d Decision
	switch {
	case rate < s.TargetMin:
		d = StepUp
	case rate > s.TargetMax:
		d = StepDown
	default:
		d = Hold
	}
	if d != Hold {
		s.cooldown = s.Settle
	}
	return d
}

// Reset clears the settle cooldown.
func (s *Stepper) Reset() { s.cooldown = 0 }

// PI is a proportional-integral controller mapping a heart-rate error to a
// continuous actuator value (e.g. desired core count before rounding).
// Anti-windup clamps the integral term so the output respects
// [MinOutput, MaxOutput].
//
// Non-finite measurements (NaN, ±Inf — a lossy or garbled remote signal)
// never reach the actuator: the controller holds its last good output (or
// MinOutput before any good measurement) and leaves the integral untouched.
type PI struct {
	// Kp and Ki are the proportional and integral gains.
	Kp, Ki float64
	// Setpoint is the desired heart rate in beats/s.
	Setpoint float64
	// MinOutput and MaxOutput clamp the actuator value.
	MinOutput, MaxOutput float64

	integral float64
	lastOut  float64
	haveOut  bool
}

// Update folds one measurement taken dt seconds after the previous one and
// returns the clamped actuator value.
func (c *PI) Update(measured, dt float64) float64 {
	if math.IsNaN(measured) || math.IsInf(measured, 0) {
		return c.hold()
	}
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		// No usable time step (an infinite one would poison the integral
		// with 0·Inf = NaN): respond proportionally but do not integrate
		// (the stale integral still contributes its term).
		return c.output(c.Kp * (c.Setpoint - measured))
	}
	err := c.Setpoint - measured
	c.integral += err * dt
	c.clampIntegral()
	return c.output(c.Kp * err)
}

// hold returns the last actuator value without folding anything in — the
// safe response to a measurement that cannot be trusted.
func (c *PI) hold() float64 {
	if c.haveOut {
		return c.lastOut
	}
	return c.MinOutput
}

func (c *PI) output(p float64) float64 {
	out := p + c.Ki*c.integral
	// NaN compares false against both clamp bounds, so an unsanitized NaN
	// would fall straight through to the actuator.
	if math.IsNaN(out) {
		return c.hold()
	}
	if out < c.MinOutput {
		out = c.MinOutput
	} else if c.MaxOutput > c.MinOutput && out > c.MaxOutput {
		out = c.MaxOutput
	}
	c.lastOut, c.haveOut = out, true
	return out
}

// clampIntegral implements anti-windup: the integral contribution alone is
// kept within the output range.
func (c *PI) clampIntegral() {
	if c.Ki == 0 {
		return
	}
	lo, hi := c.MinOutput/c.Ki, c.MaxOutput/c.Ki
	if lo > hi {
		lo, hi = hi, lo
	}
	if c.integral < lo {
		c.integral = lo
	}
	if c.integral > hi {
		c.integral = hi
	}
}

// Reset clears the accumulated integral and the held last output.
func (c *PI) Reset() {
	c.integral = 0
	c.lastOut, c.haveOut = 0, false
}

// Ladder walks an ordered list of configurations from slowest/highest
// quality (level 0) to fastest/lowest quality (MaxLevel) — the paper's
// adaptive encoder behaviour: while the heart rate is below the minimum
// target, step to the next cheaper configuration; optionally step back
// toward quality when the rate comfortably exceeds the maximum target.
type Ladder struct {
	// MaxLevel is the cheapest configuration index (levels are
	// 0..MaxLevel).
	MaxLevel int
	// TargetMin is the rate below which the ladder steps toward speed.
	TargetMin float64
	// TargetMax, when > 0 with Recover set, is the rate above which the
	// ladder steps back toward quality.
	TargetMax float64
	// Recover enables stepping back toward quality. The paper's encoder
	// never steps back (it only speeds up); recovery is the natural
	// extension and is exercised in the fault-tolerance experiment when
	// failed resources return.
	Recover bool
	// Settle is how many decisions to hold after a change.
	Settle int

	level    int
	cooldown int
}

// Level returns the current configuration index.
func (l *Ladder) Level() int { return l.level }

// SetLevel forces the configuration index, clamped to [0, MaxLevel].
func (l *Ladder) SetLevel(level int) {
	if level < 0 {
		level = 0
	}
	if level > l.MaxLevel {
		level = l.MaxLevel
	}
	l.level = level
}

// Decide consumes one rate measurement and returns the (possibly changed)
// level. ok == false holds.
func (l *Ladder) Decide(rate float64, ok bool) int {
	if !ok {
		return l.level
	}
	if l.cooldown > 0 {
		l.cooldown--
		return l.level
	}
	switch {
	case rate < l.TargetMin && l.level < l.MaxLevel:
		l.level++
		l.cooldown = l.Settle
	case l.Recover && l.TargetMax > 0 && rate > l.TargetMax && l.level > 0:
		l.level--
		l.cooldown = l.Settle
	}
	return l.level
}
