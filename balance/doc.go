// Package balance closes the loop the paper opens: heartbeats exist so
// that an external service can *act* on them, and this package is the
// acting half — a load balancer whose routing table is driven by live
// heartbeat observations instead of static configuration or synthetic
// health probes.
//
// Three pieces compose:
//
//   - Table is a lock-free consistent-hashing selector: a copy-on-write
//     bucket table swapped by atomic pointer. The per-request Pick path
//     is one atomic load, one hash, one slice index — zero locks, zero
//     allocations. Membership and weight changes rebuild the table
//     off to the side (weighted rendezvous over a fixed bucket space, so
//     a change to one node's weight moves only buckets that node gains
//     or loses) and swap it in atomically; every swap reports exactly
//     how many buckets moved.
//
//   - Policy turns a node's observed heartbeat windows (observer.Rollup)
//     and classifier judgments (observer.Status) into a weight in [0,1],
//     with hysteresis: one silent window holds, DrainAfter consecutive
//     silent windows drain (weight 0), and a drained node reclaims only
//     after ReclaimAfter consecutive live windows, ramping back up
//     instead of snapping — so a flapping producer cannot make traffic
//     slosh.
//
//   - Updater is the event-driven glue: feed it rollups (Absorb, or Run
//     against an hbnet.RollupFeed) and classifier transitions
//     (StatusHook on an observer.Hub), and it applies the policy's
//     weight decisions to the table as swaps — no per-request
//     recomputation anywhere.
//
// The weighted-rendezvous construction gives the minimal-disruption
// property consistent hashing is chosen for: removing (or draining) one
// of N equally weighted nodes remaps only that node's ≈1/N share of the
// key space, and restoring a node to a weight it held before restores
// exactly the bucket assignment it had before — reclaimed traffic goes
// home, not to a reshuffled stranger.
package balance
