// Cloud load balancing and failover (§2.6) across a REAL process
// boundary: each server node runs as a separate OS process, beats once
// per served request, and publishes its heartbeats over hbnet (loopback
// TCP). The balancer process shares no memory with the nodes — it learns
// everything it knows by subscribing to their heartbeat feeds through an
// observer.Hub, exactly the paper's claim that heartbeats "can be read by
// other processes, possibly on other machines": a lack of heartbeats from
// a node means it failed, and recovery is visible the same way.
//
// The run also demonstrates cursor resume: mid-run the balancer drops and
// re-dials one node's connection, resuming from its cursor — a network
// blip costs a delay, never a duplicate or a silent gap.
//
//	go run ./examples/cloud-balancer
//
// (The binary re-executes itself with -node to become a node process.)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/hbnet"
	"repro/heartbeat"
	"repro/observer"
)

func main() {
	nodeName := flag.String("node", "", "internal: run as the named server node")
	perReq := flag.Duration("perreq", 10*time.Millisecond, "internal: nominal service time per request")
	flag.Parse()
	if *nodeName != "" {
		runNode(*nodeName, *perReq)
		return
	}
	runBalancer()
}

// runNode is the server-node process: a heartbeat-enabled "application"
// that serves requests sent on stdin (one command per line) and beats per
// request. Its only output besides heartbeats is the hbnet address line.
func runNode(name string, perReq time.Duration) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(4096))
	if err != nil {
		log.Fatal(err)
	}
	// Each node advertises the request rate it is provisioned for; the
	// minimum also calibrates the observer's flatline threshold
	// (FlatlineFactor × the expected inter-beat interval).
	if err := hb.SetTarget(50, 2000); err != nil {
		log.Fatal(err)
	}
	srv := hbnet.NewServer()
	if err := srv.PublishHeartbeat(name, hb); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	fmt.Printf("ADDR %s\n", l.Addr())

	hung := false
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		switch sc.Text() {
		case "serve":
			// A hung node consumes the request but never beats — nothing
			// else announces the failure.
			if !hung {
				time.Sleep(perReq / 8) // a slice of the service time, so the demo stays brisk
				hb.Beat()
			}
		case "hang":
			hung = true
		case "recover":
			hung = false
		}
	}
	hb.Close()
	srv.Close()
}

// node is the balancer's view of one remote server: an address, a stdin
// pipe to drive it, and whatever its heartbeats say.
type node struct {
	name    string
	addr    string
	stdin   *bufio.Writer
	closeIn io.Closer
	served  int
}

func (n *node) serve() {
	n.stdin.WriteString("serve\n")
	n.stdin.Flush()
	n.served++
}

func (n *node) command(cmd string) {
	n.stdin.WriteString(cmd + "\n")
	n.stdin.Flush()
}

func runBalancer() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	spawn := func(name string, perReq time.Duration) (*node, *exec.Cmd) {
		cmd := exec.Command(exe, "-node", name, "-perreq", perReq.String())
		stdin, err := cmd.StdinPipe()
		if err != nil {
			log.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				return &node{name: name, addr: a, stdin: bufio.NewWriter(stdin), closeIn: stdin}, cmd
			}
		}
		log.Fatalf("node %s never reported its address", name)
		return nil, nil
	}

	nodes := []*node{}
	cmds := []*exec.Cmd{}
	for _, spec := range []struct {
		name   string
		perReq time.Duration
	}{
		{"node-a", 8 * time.Millisecond},
		{"node-b", 12 * time.Millisecond},
		{"node-c", 10 * time.Millisecond},
	} {
		n, cmd := spawn(spec.name, spec.perReq)
		nodes = append(nodes, n)
		cmds = append(cmds, cmd)
		fmt.Printf("%s up: pid %d, heartbeats at %s\n", n.name, cmd.Process.Pid, n.addr)
	}

	// The hub multiplexes every node's remote feed; health judgments are
	// made balancer-side from raw heartbeats. The balancer never asks a
	// node how it feels — it watches its pulse.
	var mu sync.Mutex
	health := map[string]observer.Health{}
	hub := observer.NewHub(25*time.Millisecond, func(name string, st observer.Status) {
		mu.Lock()
		prev, known := health[name]
		health[name] = st.Health
		mu.Unlock()
		if known && prev != st.Health {
			fmt.Printf("         hub: %s %s -> %s (beats=%d)\n", name, prev, st.Health, st.Count)
		}
	}, observer.WithHubClassifier(func(string) *observer.Classifier {
		return &observer.Classifier{FlatlineFactor: 8}
	}))
	clients := map[string]*hbnet.Client{}
	for _, n := range nodes {
		c, err := hbnet.DialIntoHub(hub, n.name, n.addr, n.name)
		if err != nil {
			log.Fatal(err)
		}
		clients[n.name] = c
	}
	hubCtx, hubCancel := context.WithCancel(context.Background())
	defer hubCancel()
	go hub.Run(hubCtx)

	// A second, directly-owned subscription to node-a audits the transport
	// itself: mid-run its connection is dropped and resumed from its
	// cursor, and at the end every received sequence number is checked —
	// exactly-once, in order, nothing skipped — across the blip.
	audit, err := hbnet.Dial(nodes[0].addr, nodes[0].name)
	if err != nil {
		log.Fatal(err)
	}
	noWait, cancelNoWait := context.WithCancel(context.Background())
	cancelNoWait() // expired ctx: Next becomes a non-blocking drain
	var auditSeqs []uint64
	var auditMissed uint64
	drainAudit := func() {
		for {
			b, err := audit.Next(noWait)
			if err != nil {
				return
			}
			for _, r := range b.Records {
				auditSeqs = append(auditSeqs, r.Seq)
			}
			auditMissed += b.Missed
		}
	}

	alive := func() []*node {
		mu.Lock()
		defer mu.Unlock()
		var out []*node
		for _, n := range nodes {
			h := health[n.name]
			if h != observer.Flatlined && h != observer.Dead {
				out = append(out, n)
			}
		}
		return out
	}

	const totalRequests = 3000
	rr := 0
	for req := 0; req < totalRequests; req++ {
		drainAudit() // non-blocking: absorb whatever node-a published
		// Fault injection: node-b hangs a third of the way in and is
		// repaired at two thirds. Only its beats tell the balancer.
		if req == totalRequests/3 {
			nodes[1].command("hang")
			fmt.Printf("req %4d: node-b hangs (stops beating — nothing else announces the failure)\n", req)
		}
		if req == 2*totalRequests/3 {
			nodes[1].command("recover")
			fmt.Printf("req %4d: node-b repaired (beats resume)\n", req)
		}
		// A simulated network blip on the audit subscription: drop the
		// connection outright and resume a fresh one from the delivered
		// cursor. The stream continues without duplicates, and Missed
		// stays 0 because the node's history covers the gap — verified
		// record by record at the end of the run.
		if req == totalRequests/2 {
			drainAudit()
			cursor := audit.Cursor()
			audit.Close()
			audit, err = hbnet.DialFrom(nodes[0].addr, nodes[0].name, cursor)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("req %4d: node-a audit connection dropped and re-dialed, resuming after seq %d\n", req, cursor)
		}

		// The balancer consults heartbeats only — plus an occasional
		// canary probe so repaired nodes get a chance to beat again.
		var n *node
		if req%20 == 0 {
			n = nodes[(req/20)%len(nodes)]
		} else {
			pool := alive()
			if len(pool) == 0 {
				log.Fatal("all nodes flatlined")
			}
			n = pool[rr%len(pool)]
			rr++
		}
		n.serve()
		time.Sleep(time.Millisecond)

		if req%500 == 499 {
			mu.Lock()
			fmt.Printf("req %4d: ", req+1)
			for _, n := range nodes {
				fmt.Printf("%s[%s] ", n.name, health[n.name])
			}
			mu.Unlock()
			fmt.Println()
		}
	}

	fmt.Println("\nrequests routed per node (note the failover window):")
	for _, n := range nodes {
		fmt.Printf("  %s: %d (missed heartbeat records: %d)\n", n.name, n.served, clients[n.name].Missed())
	}

	// Settle the audit stream and verify the transport's promise.
	time.Sleep(100 * time.Millisecond)
	drainAudit()
	audit.Close()
	dense := len(auditSeqs) > 0
	for i, seq := range auditSeqs {
		if seq != uint64(i+1) {
			dense = false
			break
		}
	}
	fmt.Printf("audit of node-a's stream: %d records, missed %d, dense 1..%d across the dropped connection: %v\n",
		len(auditSeqs), auditMissed, len(auditSeqs), dense)
	fmt.Println("node-b lost traffic only while flatlined; detection and recovery both came from heartbeats alone, across process boundaries")

	hubCancel()
	for i, cmd := range cmds {
		nodes[i].closeIn.Close() // EOF on stdin tells the node to exit
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
}
