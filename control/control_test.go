package control

import (
	"math"
	"testing"
	"testing/quick"

	"repro/sim"
)

func TestStepperBasicDecisions(t *testing.T) {
	s := &Stepper{TargetMin: 30, TargetMax: 35}
	cases := []struct {
		rate float64
		ok   bool
		want Decision
	}{
		{0, false, Hold},
		{10, true, StepUp},
		{29.9, true, StepUp},
		{30, true, Hold},
		{32, true, Hold},
		{35, true, Hold},
		{35.1, true, StepDown},
		{100, true, StepDown},
	}
	for _, c := range cases {
		if got := s.Decide(c.rate, c.ok); got != c.want {
			t.Errorf("Decide(%v, %v) = %v, want %v", c.rate, c.ok, got, c.want)
		}
	}
}

func TestStepperSettle(t *testing.T) {
	s := &Stepper{TargetMin: 30, TargetMax: 35, Settle: 2}
	if got := s.Decide(10, true); got != StepUp {
		t.Fatalf("first decision = %v", got)
	}
	// Two held decisions while settling, then active again.
	if got := s.Decide(10, true); got != Hold {
		t.Fatalf("settling decision 1 = %v", got)
	}
	if got := s.Decide(10, true); got != Hold {
		t.Fatalf("settling decision 2 = %v", got)
	}
	if got := s.Decide(10, true); got != StepUp {
		t.Fatalf("post-settle decision = %v", got)
	}
	s.Reset()
	s.Decide(10, true)
	s.Reset()
	if got := s.Decide(10, true); got != StepUp {
		t.Fatalf("after Reset = %v", got)
	}
}

func TestDecisionString(t *testing.T) {
	if StepUp.String() != "step-up" || StepDown.String() != "step-down" || Hold.String() != "hold" {
		t.Fatal("Decision.String broken")
	}
}

// Property: driving a monotone plant (heart rate strictly increasing in
// allocated cores, Amdahl-shaped) with the stepper converges into the
// target window whenever some core count can satisfy it, and never leaves
// afterwards.
func TestStepperConvergesOnMonotonePlant(t *testing.T) {
	f := func(baseRaw uint8, pRaw uint8) bool {
		base := 1 + float64(baseRaw)/16 // single-core rate: 1..17 beats/s
		p := 0.85 + 0.14*float64(pRaw)/255
		const maxCores = 8
		rate := func(c int) float64 { return base * sim.Speedup(c, p) }
		// Pick an achievable window around the 5-core rate.
		min, max := rate(5)*0.98, rate(5)*1.2
		s := &Stepper{TargetMin: min, TargetMax: max}
		cores := 1
		inWindow := 0
		for i := 0; i < 100; i++ {
			r := rate(cores)
			switch s.Decide(r, true) {
			case StepUp:
				if cores < maxCores {
					cores++
				}
			case StepDown:
				if cores > 1 {
					cores--
				}
			}
			if r >= min && r <= max {
				inWindow++
			} else if inWindow > 0 {
				return false // left the window after entering
			}
		}
		return inWindow > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPIConvergesToSetpoint(t *testing.T) {
	// Plant: rate = 4 * output (e.g. output is fractional cores).
	c := &PI{Kp: 0.05, Ki: 0.3, Setpoint: 32, MinOutput: 1, MaxOutput: 16}
	out := 1.0
	var rate float64
	for i := 0; i < 400; i++ {
		rate = 4 * out
		out = c.Update(rate, 0.1)
	}
	if rate < 31 || rate > 33 {
		t.Fatalf("PI settled at %v, want ~32", rate)
	}
}

func TestPIOutputClamped(t *testing.T) {
	c := &PI{Kp: 10, Ki: 10, Setpoint: 1000, MinOutput: 1, MaxOutput: 8}
	for i := 0; i < 100; i++ {
		out := c.Update(0, 1) // enormous positive error
		if out < 1 || out > 8 {
			t.Fatalf("output %v outside [1, 8]", out)
		}
	}
	c2 := &PI{Kp: 10, Ki: 10, Setpoint: 0, MinOutput: 1, MaxOutput: 8}
	for i := 0; i < 100; i++ {
		out := c2.Update(1000, 1) // enormous negative error
		if out < 1 || out > 8 {
			t.Fatalf("output %v outside [1, 8]", out)
		}
	}
}

func TestPIAntiWindupRecovery(t *testing.T) {
	// Saturate high for a long time, then flip the error sign: with
	// anti-windup the output must unwind in a bounded number of steps.
	c := &PI{Kp: 0.1, Ki: 1, Setpoint: 100, MinOutput: 0, MaxOutput: 10}
	for i := 0; i < 1000; i++ {
		c.Update(0, 1)
	}
	steps := 0
	for ; steps < 50; steps++ {
		if c.Update(200, 1) <= c.MinOutput+1e-9 {
			break
		}
	}
	if steps >= 50 {
		t.Fatalf("output failed to unwind after %d steps", steps)
	}
	c.Reset()
	if got := c.Update(100, 1); got != 0 {
		t.Fatalf("after Reset with zero error, output = %v", got)
	}
}

func TestPIDegenerateDt(t *testing.T) {
	c := &PI{Kp: 1, Ki: 1, Setpoint: 10, MinOutput: 0, MaxOutput: 100}
	if out := c.Update(5, 0); out != 5 {
		t.Fatalf("dt=0 output = %v, want pure P = 5", out)
	}
}

// Regression: NaN compares false against both clamp bounds, so a NaN
// measurement used to sail through output() and hand NaN to the actuator —
// and a dt<=0 update with a NaN measurement computed a fresh NaN error on
// top of the stale integral. The controller must instead hold its last
// good output (MinOutput before any) and keep its state uncorrupted.
func TestPINaNMeasurementSanitized(t *testing.T) {
	c := &PI{Kp: 0.5, Ki: 0.5, Setpoint: 32, MinOutput: 1, MaxOutput: 16}

	// Before any good measurement, a NaN must yield MinOutput, via either
	// the dt<=0 branch or the integrating branch.
	if out := c.Update(math.NaN(), 0); out != c.MinOutput {
		t.Fatalf("NaN measurement with dt=0 -> %v, want MinOutput %v", out, c.MinOutput)
	}
	if out := c.Update(math.NaN(), 1); out != c.MinOutput {
		t.Fatalf("NaN measurement with dt=1 -> %v, want MinOutput %v", out, c.MinOutput)
	}

	// Establish a good output, then poison with NaN and ±Inf: the last
	// good output must be held and the integral left untouched.
	good := c.Update(20, 1)
	if math.IsNaN(good) {
		t.Fatalf("good measurement produced NaN")
	}
	integral := c.integral
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if out := c.Update(bad, 1); out != good {
			t.Fatalf("Update(%v) -> %v, want held %v", bad, out, good)
		}
		if c.integral != integral {
			t.Fatalf("Update(%v) corrupted integral: %v -> %v", bad, integral, c.integral)
		}
	}

	// A non-finite dt must not integrate either: 0·Inf = NaN would brick
	// the controller permanently (every later output would hold forever).
	for _, badDt := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		out := c.Update(c.Setpoint, badDt) // zero error: pure P is 0 + integral term
		if math.IsNaN(out) || out < c.MinOutput || out > c.MaxOutput {
			t.Fatalf("Update(setpoint, dt=%v) -> %v", badDt, out)
		}
		if c.integral != integral {
			t.Fatalf("Update(setpoint, dt=%v) corrupted integral: %v -> %v", badDt, integral, c.integral)
		}
	}

	// And the controller still works afterwards: good measurements keep
	// producing finite, clamped outputs.
	for i := 0; i < 10; i++ {
		out := c.Update(20, 1)
		if math.IsNaN(out) || out < c.MinOutput || out > c.MaxOutput {
			t.Fatalf("post-NaN update %d -> %v", i, out)
		}
	}
}

func TestLadderWalksDownAndClamps(t *testing.T) {
	l := &Ladder{MaxLevel: 3, TargetMin: 30}
	for want := 1; want <= 3; want++ {
		if got := l.Decide(10, true); got != want {
			t.Fatalf("Decide -> %d, want %d", got, want)
		}
	}
	// At MaxLevel it stays.
	if got := l.Decide(10, true); got != 3 {
		t.Fatalf("beyond MaxLevel: %d", got)
	}
	// Without Recover it never steps back up.
	if got := l.Decide(1000, true); got != 3 {
		t.Fatalf("non-recovering ladder moved up: %d", got)
	}
}

func TestLadderRecover(t *testing.T) {
	l := &Ladder{MaxLevel: 5, TargetMin: 30, TargetMax: 40, Recover: true}
	l.SetLevel(4)
	if got := l.Decide(50, true); got != 3 {
		t.Fatalf("recover step = %d, want 3", got)
	}
	if got := l.Decide(35, true); got != 3 {
		t.Fatalf("in-window step = %d, want hold at 3", got)
	}
	// Clamp at 0.
	l.SetLevel(0)
	if got := l.Decide(50, true); got != 0 {
		t.Fatalf("recover below 0: %d", got)
	}
}

// The recover path under alternating rates: a ladder bouncing between a
// starving and a comfortable plant must oscillate within one level in each
// direction per judgment, never skip levels, respect Settle in both
// directions, and stay clamped to [0, MaxLevel] throughout.
func TestLadderRecoverAlternatingRates(t *testing.T) {
	l := &Ladder{MaxLevel: 4, TargetMin: 30, TargetMax: 40, Recover: true}
	l.SetLevel(2)
	prev := l.Level()
	for i := 0; i < 50; i++ {
		rate := 10.0 // below TargetMin: step toward speed
		if i%2 == 1 {
			rate = 50 // above TargetMax: recover toward quality
		}
		got := l.Decide(rate, true)
		if got < 0 || got > l.MaxLevel {
			t.Fatalf("step %d: level %d outside [0, %d]", i, got, l.MaxLevel)
		}
		if diff := got - prev; diff < -1 || diff > 1 {
			t.Fatalf("step %d: level jumped %d -> %d", i, prev, got)
		}
		prev = got
	}
	// Strict alternation with no settle ping-pongs between two adjacent
	// levels; after the transient the ladder must not have drifted to
	// either end.
	if prev <= 0 || prev >= l.MaxLevel {
		t.Fatalf("alternating rates drifted ladder to the boundary: %d", prev)
	}

	// With Settle, the held decisions must apply to recovery steps too.
	l2 := &Ladder{MaxLevel: 4, TargetMin: 30, TargetMax: 40, Recover: true, Settle: 1}
	l2.SetLevel(4)
	if got := l2.Decide(50, true); got != 3 {
		t.Fatalf("recover step = %d, want 3", got)
	}
	if got := l2.Decide(50, true); got != 3 {
		t.Fatalf("settling recover step = %d, want hold at 3", got)
	}
	if got := l2.Decide(50, true); got != 2 {
		t.Fatalf("post-settle recover step = %d, want 2", got)
	}
	// A no-op decision at MaxLevel (starving but nowhere cheaper to go)
	// sets no cooldown, so the next recovery step is immediate.
	l2.SetLevel(4)
	l2.Decide(10, true)
	if got := l2.Decide(50, true); got != 3 {
		t.Fatalf("recover from MaxLevel = %d, want 3", got)
	}
}

func TestLadderSettleAndSetLevelClamp(t *testing.T) {
	l := &Ladder{MaxLevel: 10, TargetMin: 30, Settle: 1}
	if got := l.Decide(10, true); got != 1 {
		t.Fatalf("first = %d", got)
	}
	if got := l.Decide(10, true); got != 1 {
		t.Fatalf("settling = %d", got)
	}
	if got := l.Decide(10, true); got != 2 {
		t.Fatalf("post-settle = %d", got)
	}
	l.SetLevel(-5)
	if l.Level() != 0 {
		t.Fatalf("SetLevel(-5) -> %d", l.Level())
	}
	l.SetLevel(99)
	if l.Level() != 10 {
		t.Fatalf("SetLevel(99) -> %d", l.Level())
	}
	if got := l.Decide(10, false); got != 10 {
		t.Fatalf("not-ok measurement moved ladder: %d", got)
	}
}
