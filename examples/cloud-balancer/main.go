// Cloud load balancing and failover (§2.6) with the loop actually
// closed: each server node runs as a separate OS process serving real
// HTTP, beats once per served request, and publishes its heartbeats over
// hbnet (loopback TCP). The balancer process shares no memory with the
// nodes — a relay reduces their streams into rollup windows, a
// balance.Updater turns those windows into health weights, and a
// lock-free balance.Table routes every proxied request by consistent
// hashing. A lack of heartbeats from a node means it failed; recovery is
// visible the same way; and the routing consequences follow from the
// weights alone.
//
// The run is a self-auditing demonstration of the balance package's two
// load-bearing properties, checked live and fatal on violation:
//
//   - minimal disruption: draining the flatlined node moves only its own
//     share of the key space (printed and asserted against
//     simcheck.RemapBound); every key owned by a surviving node stays
//     exactly where it was;
//   - exact reclaim: when the node recovers and ramps back to full
//     weight, every key it held before the failure returns to it — the
//     post-recovery mapping is compared key by key against the baseline.
//
// A final act closes the loop through repro/control: one node turns
// slow, its observed heart rate sags below the provisioned target, and a
// PI controller shapes the policy's proposed weight down until the rate
// evidence recovers — §2.6's "use the additional information provided by
// heartbeats to make smarter allocation decisions", with the decision
// being admission weight rather than cores.
//
//	go run ./examples/cloud-balancer
//
// The process exits non-zero if any audited invariant fails.
// (The binary re-executes itself with -node to become a node process.)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/balance"
	"repro/control"
	"repro/hbnet"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
)

// expectedRate is the per-node provisioned heart rate (beats/s ≡ served
// requests/s) the policy and the PI controller both judge against. The
// canary probes alone keep a healthy idle node comfortably above it, so
// rate evidence only trims weight when a node is genuinely degraded.
const expectedRate = 10

func main() {
	nodeName := flag.String("node", "", "internal: run as the named server node")
	flag.Parse()
	if *nodeName != "" {
		runNode(*nodeName)
		return
	}
	runBalancer()
}

// runNode is the server-node process: an HTTP server that beats once per
// served request and publishes its heartbeats over hbnet. Fault
// injection is part of its admin surface — /hang makes it consume
// requests without beating (nothing else announces the failure), /slow
// serializes it through a long service time so it still beats, just too
// slowly. It exits when its stdin closes (the balancer went away).
func runNode(name string) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<14))
	if err != nil {
		log.Fatal(err)
	}
	// The provisioned rate: the minimum calibrates both the balancer-side
	// classifier (flatline threshold, slow threshold) and the weight
	// policy's rate degradation.
	if err := hb.SetTarget(expectedRate, 100000); err != nil {
		log.Fatal(err)
	}
	srv := hbnet.NewServer()
	if err := srv.PublishHeartbeat(name, hb); err != nil {
		log.Fatal(err)
	}
	hbl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(hbl)

	var hung, slow atomic.Bool
	var gate sync.Mutex // serializes service while slow: a degraded node's capacity is bounded
	mux := http.NewServeMux()
	mux.HandleFunc("/serve", func(w http.ResponseWriter, r *http.Request) {
		if hung.Load() {
			// A hung node consumes the request but never beats.
			http.Error(w, name+" hung", http.StatusServiceUnavailable)
			return
		}
		if slow.Load() {
			gate.Lock()
			if slow.Load() {
				time.Sleep(250 * time.Millisecond) //hbvet:allow wallclock -- injected real service latency: the slow-node phase of the demo
			}
			gate.Unlock()
		} else {
			time.Sleep(time.Millisecond) //hbvet:allow wallclock -- baseline real service latency for a real HTTP handler
		}
		hb.Beat()
		io.WriteString(w, name)
	})
	for path, set := range map[string]func(){
		"/hang":    func() { hung.Store(true) },
		"/recover": func() { hung.Store(false) },
		"/slow":    func() { slow.Store(true) },
		"/fast":    func() { slow.Store(false) },
	} {
		set := set
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) { set(); io.WriteString(w, "ok") })
	}
	httpl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(httpl, mux)
	fmt.Printf("ADDR hb=%s http=%s\n", hbl.Addr(), httpl.Addr())

	io.Copy(io.Discard, os.Stdin) // EOF: the balancer exited
	hb.Close()
	srv.Close()
}

// node is the balancer's view of one backend: where its heartbeats are,
// where its HTTP is, and the stdin pipe whose closure tells it to exit.
type node struct {
	name    string
	hbAddr  string
	httpURL string
	closeIn io.Closer
}

func (n *node) admin(cmd string) {
	resp, err := http.Get(n.httpURL + "/" + cmd)
	if err != nil {
		fail("admin %s on %s: %v", cmd, n.name, err)
	}
	resp.Body.Close()
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "AUDIT FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func waitFor(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d) //hbvet:allow wallclock -- real deadline for a cross-process condition; no clock spans the fleet
	for time.Now().Before(deadline) { //hbvet:allow wallclock -- checks the real deadline set above
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond) //hbvet:allow wallclock -- real polling cadence for a cross-process condition
	}
	fail("timed out after %v waiting for %s", d, what)
}

func runBalancer() {
	// The whole demonstration is bounded: a wedged phase is an audit
	// failure, not a hang.
	time.AfterFunc(90*time.Second, func() { fail("demo exceeded its 90s deadline") }) //hbvet:allow wallclock -- hard real-time bound so a wedged demo fails loudly instead of hanging

	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	spawn := func(name string) (*node, *exec.Cmd) {
		cmd := exec.Command(exe, "-node", name)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			log.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			log.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		var hbAddr, httpAddr string
		buf := make([]byte, 256)
		var line strings.Builder
		for !strings.Contains(line.String(), "\n") {
			n, err := stdout.Read(buf)
			if n > 0 {
				line.Write(buf[:n])
			}
			if err != nil {
				log.Fatalf("node %s never reported its addresses", name)
			}
		}
		for _, f := range strings.Fields(line.String()) {
			if a, ok := strings.CutPrefix(f, "hb="); ok {
				hbAddr = a
			}
			if a, ok := strings.CutPrefix(f, "http="); ok {
				httpAddr = a
			}
		}
		if hbAddr == "" || httpAddr == "" {
			log.Fatalf("node %s reported a malformed address line: %q", name, line.String())
		}
		return &node{name: name, hbAddr: hbAddr, httpURL: "http://" + httpAddr, closeIn: stdin}, cmd
	}

	var nodes []*node
	var cmds []*exec.Cmd
	byName := map[string]*node{}
	for _, name := range []string{"node-a", "node-b", "node-c"} {
		n, cmd := spawn(name)
		nodes = append(nodes, n)
		cmds = append(cmds, cmd)
		byName[name] = n
		fmt.Printf("%s up: pid %d, heartbeats at %s, http at %s\n", n.name, cmd.Process.Pid, n.hbAddr, n.httpURL)
	}
	defer func() {
		for i, cmd := range cmds {
			nodes[i].closeIn.Close()
			done := make(chan struct{})
			go func(c *exec.Cmd) { c.Wait(); close(done) }(cmd)
			select {
			case <-done:
			case <-time.After(3 * time.Second): //hbvet:allow wallclock -- real kill timeout for a real child process
				cmd.Process.Kill()
				<-done
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The relay reduces every node's raw heartbeat stream into 100ms
	// rollup windows — the same constant-size evidence a fleet-scale
	// deployment would forward — and the updater consumes them.
	relay := hbnet.NewRelay(hbnet.WithRollupInterval(100 * time.Millisecond))
	for _, n := range nodes {
		if _, err := relay.DialUpstream(n.name, n.hbAddr, n.name); err != nil {
			log.Fatal(err)
		}
	}
	go relay.Run(ctx)

	// Freshest observed rate per node, for the PI actuator and the
	// narration: a second, independent subscription to the same rollup
	// feed the updater consumes.
	var rmu sync.Mutex
	rates := map[string]float64{}
	go relay.RollupFeed().Consume(ctx, 0, func(b hbnet.RollupBatch) error {
		rmu.Lock()
		for _, r := range b.Rollups {
			rates[r.App] = r.ObservedRate()
		}
		rmu.Unlock()
		return nil
	})

	// The routing table and the policy that drives it. Every swap the
	// updater publishes is audited on the spot against the minimal-
	// disruption bound — the same invariant the simnet matrix checks.
	table := balance.New(balance.WithBuckets(1024))
	policy := balance.Policy{
		DrainAfter: 2, ReclaimAfter: 2, ReclaimStart: 0.25,
		MinDelta: 0.1, SlowCap: 0.5, ExpectedRate: expectedRate,
	}
	var amu sync.Mutex
	var auditErr error
	var swaps []balance.Swap
	onSwap := func(s balance.Swap) {
		amu.Lock()
		defer amu.Unlock()
		swaps = append(swaps, s)
		fmt.Printf("         swap: %s %.2f -> %.2f, remapped %5.1f%% of keys (weight share %5.1f%%, bound %5.1f%%)\n",
			s.Node, s.Old, s.New, 100*s.Frac(), 100*s.Share, 100*simcheck.RemapBound(s.Share))
		if err := simcheck.CheckRemap("swap "+s.Node, s.Frac(), s.Share); err != nil && auditErr == nil {
			auditErr = err
		}
	}

	// The PI actuator: engaged for the final act, it shapes the policy's
	// proposed weight of a live node by the node's measured heart rate —
	// negative gains, because a node below its provisioned rate should
	// hold less of the key space, not be pushed harder.
	var actuateOn atomic.Bool
	pis := map[string]*control.PI{}
	actuate := func(nodeName string, proposed float64) float64 {
		if !actuateOn.Load() {
			return proposed
		}
		rmu.Lock()
		rate, ok := rates[nodeName]
		rmu.Unlock()
		if !ok {
			return proposed
		}
		pi := pis[nodeName]
		if pi == nil {
			pi = &control.PI{Kp: -0.01, Ki: -0.3, Setpoint: expectedRate, MinOutput: 0.2, MaxOutput: 1}
			pis[nodeName] = pi
		}
		shaped := pi.Update(rate, 0.1)
		if shaped < proposed {
			fmt.Printf("         pi: %s observed %.1f beats/s against target %d, weight %.2f shaped to %.2f\n",
				nodeName, rate, expectedRate, proposed, shaped)
			return shaped
		}
		return proposed
	}
	updater := balance.NewUpdater(table, policy, balance.WithOnSwap(onSwap), balance.WithActuator(actuate))
	go updater.Run(ctx, relay.RollupFeed(), 0)

	// The hub judges raw heartbeats balancer-side — the classifier path.
	// A flatline drains through StatusHook immediately, without waiting
	// for two silent rollup windows.
	statusHook := updater.StatusHook()
	var hmu sync.Mutex
	lastHealth := map[string]observer.Health{}
	hub := observer.NewHub(50*time.Millisecond, func(name string, st observer.Status) {
		hmu.Lock()
		prev, known := lastHealth[name]
		lastHealth[name] = st.Health
		hmu.Unlock()
		if known && prev != st.Health {
			fmt.Printf("         hub: %s %s -> %s (beats=%d)\n", name, prev, st.Health, st.Count)
		}
		statusHook(name, st)
	}, observer.WithHubClassifier(func(string) *observer.Classifier {
		// HTTP arrival is bursty by nature here, so interval jitter is not
		// a fault signal — only flatline and rate matter to this balancer.
		return &observer.Classifier{FlatlineFactor: 8, ErraticCV: 1e6}
	}))
	for _, n := range nodes {
		if _, err := hbnet.DialIntoHub(hub, n.name, n.hbAddr, n.name); err != nil {
			log.Fatal(err)
		}
	}
	go hub.Run(ctx)

	// The proxy: a real HTTP server whose only routing input is the
	// lock-free table. Per request: one atomic pointer load, one hash.
	var pmu sync.Mutex
	routed := map[string]int{}
	// Fail fast on a degraded backend: its serialized service time exceeds
	// this timeout, so requests routed there error out instead of capturing
	// every worker in its queue.
	backend := &http.Client{Timeout: 150 * time.Millisecond}
	proxy := http.NewServeMux()
	proxy.HandleFunc("/work", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		dst, ok := table.PickString(key)
		if !ok {
			http.Error(w, "no backend admitted", http.StatusServiceUnavailable)
			return
		}
		pmu.Lock()
		routed[dst]++
		pmu.Unlock()
		resp, err := backend.Get(byName[dst].httpURL + "/serve?key=" + key)
		if err != nil {
			http.Error(w, "backend "+dst+" failed: "+err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
	proxyl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(proxyl, proxy)
	proxyURL := "http://" + proxyl.Addr().String()
	fmt.Printf("proxy up at %s, routing by consistent hash over health weights\n\n", proxyURL)

	// Traffic: concurrent workers request random keys through the proxy;
	// every 25th request per worker is a canary probe straight at a
	// random backend, so a drained node still gets the chance to prove
	// itself alive again.
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%04d", i)
	}
	var workErrs atomic.Int64
	client := &http.Client{Timeout: 400 * time.Millisecond}
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ctx.Err() == nil; i++ {
				var url string
				if i%25 == 0 {
					url = nodes[rng.Intn(len(nodes))].httpURL + "/serve?key=canary"
				} else {
					url = proxyURL + "/work?key=" + keys[rng.Intn(len(keys))]
				}
				resp, err := client.Get(url)
				if err != nil {
					workErrs.Add(1)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						workErrs.Add(1)
					}
				}
				time.Sleep(3 * time.Millisecond) //hbvet:allow wallclock -- real request pacing against a real HTTP server
			}
		}(int64(w))
	}

	weight := updater.Weight
	allAt := func(w float64) func() bool {
		return func() bool {
			for _, n := range nodes {
				if weight(n.name) != w {
					return false
				}
			}
			return true
		}
	}
	snapshot := func() map[string]string {
		m := make(map[string]string, len(keys))
		for _, k := range keys {
			if owner, ok := table.PickString(k); ok {
				m[k] = owner
			}
		}
		return m
	}

	// ---- Phase 1: admission. Live rollup windows admit all three nodes
	// at full weight; the baseline mapping is the reference every later
	// audit compares against.
	waitFor("all three nodes admitted at weight 1", 10*time.Second, allAt(1))
	base := snapshot()
	owns := map[string]int{}
	for _, owner := range base {
		owns[owner]++
	}
	fmt.Printf("\nphase 1: all nodes admitted; baseline over %d keys:", len(keys))
	for _, n := range nodes {
		fmt.Printf(" %s=%d", n.name, owns[n.name])
		if owns[n.name] == 0 {
			fail("baseline gives %s no keys at equal weight", n.name)
		}
	}
	fmt.Println()

	// ---- Phase 2: failure. node-b hangs — it still answers HTTP, but it
	// stops beating, and only the missing heartbeats tell the balancer.
	byName["node-b"].admin("hang")
	fmt.Println("\nphase 2: node-b hangs (stops beating — nothing else announces the failure)")
	waitFor("node-b drained to weight 0", 10*time.Second, func() bool { return weight("node-b") == 0 })

	amu.Lock()
	var drain balance.Swap
	for _, s := range swaps {
		if s.Node == "node-b" && s.New == 0 {
			drain = s
		}
	}
	amu.Unlock()
	if drain.Node == "" {
		fail("node-b drained but no drain swap was recorded")
	}
	if err := simcheck.CheckRemap("drain node-b", drain.Frac(), drain.Share); err != nil {
		fail("%v", err)
	}
	fmt.Printf("         drain moved %.1f%% of the key space for a %.1f%% weight share — within the minimal-disruption bound\n",
		100*drain.Frac(), 100*drain.Share)

	post := snapshot()
	moved := 0
	for k, owner := range base {
		switch {
		case owner == "node-b":
			if post[k] == "node-b" {
				fail("key %s still maps to the drained node", k)
			}
			moved++
		case post[k] != owner:
			fail("survivor key %s moved %s -> %s during an unrelated drain", k, owner, post[k])
		}
	}
	fmt.Printf("         %d/%d keys reassigned (exactly node-b's), 0 survivor keys moved\n", moved, len(keys))

	// ---- Phase 3: recovery. Beats resume (via canaries), hysteresis
	// demands consecutive good windows, then the ramp reclaims — and the
	// table owes us the exact baseline mapping back.
	byName["node-b"].admin("recover")
	fmt.Println("\nphase 3: node-b repaired (beats resume; watch the reclaim ramp)")
	waitFor("node-b ramped back to weight 1", 15*time.Second, allAt(1))
	restored := snapshot()
	for k, owner := range base {
		if restored[k] != owner {
			fail("after reclaim, key %s maps to %s, want its original owner %s", k, restored[k], owner)
		}
	}
	fmt.Printf("         exact reclaim: all %d keys back on their original owners\n", len(keys))

	// ---- Phase 4: degradation. node-c turns slow — still beating, far
	// below its provisioned rate — and the PI controller shapes its
	// weight down from the rate evidence, then releases it on recovery.
	actuateOn.Store(true)
	byName["node-c"].admin("slow")
	fmt.Println("\nphase 4: node-c degrades (beats continue, far below the provisioned rate)")
	waitFor("node-c's weight shaped down to <= 0.6", 15*time.Second, func() bool { return weight("node-c") <= 0.6 })
	fmt.Printf("         node-c trimmed to weight %.2f while degraded\n", weight("node-c"))
	byName["node-c"].admin("fast")
	waitFor("node-c restored to weight 1", 15*time.Second, allAt(1))
	final := snapshot()
	for k, owner := range base {
		if final[k] != owner {
			fail("after node-c's recovery, key %s maps to %s, want %s", k, final[k], owner)
		}
	}
	fmt.Println("         rate recovered; weight released; mapping identical to the baseline again")

	amu.Lock()
	nswaps, aerr := len(swaps), auditErr
	amu.Unlock()
	if aerr != nil {
		fail("%v", aerr)
	}

	cancel()
	pmu.Lock()
	fmt.Printf("\nrequests proxied per node:")
	for _, n := range nodes {
		fmt.Printf(" %s=%d", n.name, routed[n.name])
	}
	pmu.Unlock()
	fmt.Printf("\nfailed requests (hung-node window + degraded-node timeouts): %d\n", workErrs.Load())
	fmt.Printf("%d table swaps, every one within the minimal-disruption bound; drain, reclaim, and PI trim all audited live\n", nswaps)
	fmt.Println("OK: detection, drain, minimal reshuffle, exact reclaim, and control-shaped weights — all from heartbeats alone, across process boundaries")
}
