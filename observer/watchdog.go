package observer

// Watchdog implements the §2.3 system-administration use of heartbeats:
// "heartbeats might be used to detect application hangs or crashes, and
// restart the application". It is a pure state machine over Status
// judgments — feed it from a Monitor callback or any polling loop — that
// debounces transient stalls and fires a restart hook after sustained
// flatline or death.
type Watchdog struct {
	// Threshold is how many consecutive Flatlined/Dead judgments trigger
	// a restart (default 3: one slow poll is noise, three is a hang).
	Threshold int
	// OnRestart is invoked once per trigger with the offending status.
	OnRestart func(Status)

	consecutive int
	restarts    int
}

func (w *Watchdog) threshold() int {
	if w.Threshold <= 0 {
		return 3
	}
	return w.Threshold
}

// Observe feeds one status and reports whether a restart fired. After
// firing, the debounce counter resets, so a still-hung application will
// trigger again after another Threshold judgments.
func (w *Watchdog) Observe(st Status) bool {
	switch st.Health {
	case Flatlined, Dead:
		w.consecutive++
	default:
		w.consecutive = 0
		return false
	}
	if w.consecutive < w.threshold() {
		return false
	}
	w.consecutive = 0
	w.restarts++
	if w.OnRestart != nil {
		w.OnRestart(st)
	}
	return true
}

// Restarts returns how many times the watchdog has fired.
func (w *Watchdog) Restarts() int { return w.restarts }
