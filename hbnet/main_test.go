package hbnet

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves goroutines running —
// client read loops, server accept loops, and relay pumps all carry
// Close contracts that this enforces end-to-end.
func TestMain(m *testing.M) { leakcheck.Main(m) }
