package hbnet

import (
	"context"
	"sync"
	"sync/atomic"
)

// This file is the encode-once fan-out machinery: at high fan-out every
// subscriber of a feed used to re-run appendBatch over the same records —
// N subscribers, N encodes, N scratch buffers of identical bytes. A
// frameBuf is one encoded, length-prefixed batch frame shared by every
// subscriber positioned at the same cursor; the replay ring encodes it
// once (frameSince) and the server writes the identical bytes to each
// connection.

// frameBuf is a pooled, reference-counted encoded frame. The encoding
// cache (replayRing) holds one reference and each subscriber writing the
// frame holds its own, so a slow subscriber disconnecting mid-write — or
// the cache moving on to a newer frame — can never return the buffer to
// the pool while another subscriber's Write is still reading it.
type frameBuf struct {
	data []byte
	refs atomic.Int32
}

// framePool is a bounded free list, not a sync.Pool: the GC empties pools
// every cycle, and a relay under load cycles GC fast enough that pooled
// catch-up frames (megabytes each) would be reallocated — and zeroed —
// over and over. The cap bounds retained storage; a frame released into a
// full list is simply dropped for the GC.
var framePool = struct {
	mu   sync.Mutex
	free []*frameBuf
}{}

const maxPooledFrames = 16

// newFrameBuf returns an empty buffer holding one reference.
func newFrameBuf() *frameBuf {
	framePool.mu.Lock()
	var fb *frameBuf
	if n := len(framePool.free); n > 0 {
		fb = framePool.free[n-1]
		framePool.free[n-1] = nil
		framePool.free = framePool.free[:n-1]
	}
	framePool.mu.Unlock()
	if fb == nil {
		fb = new(frameBuf)
	}
	fb.data = fb.data[:0]
	fb.refs.Store(1)
	return fb
}

func (fb *frameBuf) retain() { fb.refs.Add(1) }

// release drops one reference; the last one returns the buffer (and its
// storage) to the pool.
func (fb *frameBuf) release() {
	if n := fb.refs.Add(-1); n == 0 {
		framePool.mu.Lock()
		if len(framePool.free) < maxPooledFrames {
			framePool.free = append(framePool.free, fb)
		}
		framePool.mu.Unlock()
	} else if n < 0 {
		panic("hbnet: frameBuf released more often than retained")
	}
}

// frameStream is the zero-copy fast path of a feed's stream: NextFrame
// returns the next delivery as an encoded, ref-counted batch frame whose
// bytes are shared with every other subscriber at the same cursor. The
// caller owns one reference and must release it after writing. It follows
// Next's blocking and error contract (io.EOF at stream end, ctx errors on
// cancellation). Streams whose encodes cannot be shared simply don't
// implement it; the server falls back to Next + appendBatch.
type frameStream interface {
	NextFrame(ctx context.Context) (*frameBuf, error)
}
