package sim

import (
	"fmt"
	"time"
)

// TimeShare is a single-allocation time-sharing scheduler for the §2.4
// organic-OS idea: "schedulers could be designed to run an application for
// a specific number of heartbeats (implying a variable amount of time)
// instead of a fixed time quanta". Procs run one at a time on the whole
// allocation; the quantum is either a fixed slice of time (the
// conventional scheduler) or a fixed number of completed work items
// (heartbeat quanta). With heterogeneous per-item costs, time quanta
// equalize CPU share while beat quanta equalize application progress.
//
// TimeShare is not safe for concurrent use.
type TimeShare struct {
	clock    *Clock
	coreRate float64
	cores    int
	procs    []*SharedProc
	cur      int
}

// SharedProc is one application in a TimeShare.
type SharedProc struct {
	name      string
	pf        float64
	remaining float64
	idle      bool
	next      func() (Work, bool)
	completed uint64
	cpu       time.Duration // CPU time consumed
}

// NewTimeShare creates a scheduler over a machine of the given core count
// and per-core rate.
func NewTimeShare(clock *Clock, cores int, coreRate float64) *TimeShare {
	if clock == nil {
		panic("sim: nil clock")
	}
	if cores <= 0 || coreRate <= 0 {
		panic(fmt.Sprintf("sim: invalid timeshare (cores=%d, coreRate=%g)", cores, coreRate))
	}
	return &TimeShare{clock: clock, coreRate: coreRate, cores: cores}
}

// AddProc registers an application; next supplies successive work items
// (false parks it idle permanently).
func (t *TimeShare) AddProc(name string, next func() (Work, bool)) *SharedProc {
	p := &SharedProc{name: name, pf: 1, next: next}
	t.procs = append(t.procs, p)
	p.fetch()
	return p
}

// Name returns the proc's label.
func (p *SharedProc) Name() string { return p.name }

// Completed returns how many items the proc has finished (its heartbeat
// count in the §2.4 framing).
func (p *SharedProc) Completed() uint64 { return p.completed }

// CPU returns the processor time the proc has consumed.
func (p *SharedProc) CPU() time.Duration { return p.cpu }

// Idle reports whether the proc has run out of work.
func (p *SharedProc) Idle() bool { return p.idle }

func (p *SharedProc) fetch() {
	w, ok := p.next()
	if !ok || w.Ops <= 0 {
		p.idle = true
		p.remaining = 0
		return
	}
	p.pf = w.ParallelFrac
	p.remaining = w.Ops
}

// rate is the proc's execution speed on the full allocation.
func (t *TimeShare) rate(p *SharedProc) float64 {
	return t.coreRate * Speedup(t.cores, p.pf)
}

// runFor executes the current proc for at most budget and at most
// maxItems completed items (maxItems < 0: unlimited), returning the time
// actually consumed and how many items completed.
func (t *TimeShare) runFor(p *SharedProc, budget time.Duration, maxItems int) (time.Duration, int) {
	var used time.Duration
	items := 0
	for !p.idle && used < budget && (maxItems < 0 || items < maxItems) {
		r := t.rate(p)
		need := time.Duration(p.remaining / r * float64(time.Second))
		if need > budget-used {
			// Partial progress, quantum exhausted.
			slice := budget - used
			p.remaining -= r * slice.Seconds()
			used = budget
			break
		}
		used += need
		p.completed++
		items++
		p.fetch()
	}
	t.clock.Advance(used)
	p.cpu += used
	return used, items
}

// nextRunnable advances cur to the next non-idle proc; false if none.
func (t *TimeShare) nextRunnable() bool {
	for i := 0; i < len(t.procs); i++ {
		p := t.procs[t.cur]
		if !p.idle {
			return true
		}
		t.cur = (t.cur + 1) % len(t.procs)
	}
	return false
}

// StepTimeQuantum runs the next runnable proc for one fixed time slice and
// rotates. It returns false when every proc is idle.
func (t *TimeShare) StepTimeQuantum(quantum time.Duration) bool {
	if len(t.procs) == 0 || quantum <= 0 || !t.nextRunnable() {
		return false
	}
	t.runFor(t.procs[t.cur], quantum, -1)
	t.cur = (t.cur + 1) % len(t.procs)
	return true
}

// StepBeatQuantum runs the next runnable proc until it completes beats
// work items (however long that takes — the §2.4 variable-length quantum)
// and rotates. It returns false when every proc is idle.
func (t *TimeShare) StepBeatQuantum(beats int) bool {
	if len(t.procs) == 0 || beats <= 0 || !t.nextRunnable() {
		return false
	}
	p := t.procs[t.cur]
	t.runFor(p, time.Hour*24*365, beats)
	t.cur = (t.cur + 1) % len(t.procs)
	return true
}
