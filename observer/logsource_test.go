package observer_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

func TestLogSourceSnapshot(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hblog")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(4, 6)
	for i := 0; i < 40; i++ {
		clk.Advance(200 * time.Millisecond)
		hb.Beat()
	}

	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap, err := observer.LogSource(r).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 40 || !snap.TargetSet || snap.TargetMin != 4 || snap.TargetMax != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	rate, ok := snap.Rate(0)
	if !ok || rate < 4.99 || rate > 5.01 {
		t.Fatalf("rate = %v", rate)
	}
	// A classifier over the log source works end to end.
	st := (&observer.Classifier{Clock: clk}).Classify(snap)
	if st.Health != observer.Healthy {
		t.Fatalf("health = %v", st.Health)
	}
}
