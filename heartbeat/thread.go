package heartbeat

import (
	"sync"

	"repro/internal/ring"
)

// Thread is a per-thread heartbeat handle with a private history — the
// paper's "local" heartbeats. Threads working on independent objects beat on
// their own handles so observers can reason about them separately; threads
// cooperating on one object share the application's global heartbeat.
//
// A Thread is intended to be beaten by a single goroutine, but all methods
// are nevertheless safe for concurrent use (observers read concurrently).
type Thread struct {
	h    *Heartbeat
	id   int32
	name string

	mu  sync.Mutex
	buf *ring.Buffer[Record]
}

func newThread(h *Heartbeat, id int32, name string, capacity int) *Thread {
	return &Thread{h: h, id: id, name: name, buf: ring.New[Record](capacity)}
}

// ID returns the registration identifier stamped into this thread's records
// (and into global records emitted via GlobalBeat).
func (t *Thread) ID() int32 { return t.id }

// Name returns the label supplied at registration.
func (t *Thread) Name() string { return t.name }

// Beat registers a local heartbeat with tag 0 (HB_heartbeat, local=true).
func (t *Thread) Beat() { t.BeatTag(0) }

// BeatTag registers a local heartbeat carrying a caller-defined tag.
func (t *Thread) BeatTag(tag int64) {
	now := t.h.clock.Now()
	t.mu.Lock()
	seq := t.buf.Total() + 1
	t.buf.Push(Record{Seq: seq, Time: now, Tag: tag, Producer: t.id})
	t.mu.Unlock()
}

// GlobalBeat registers a heartbeat on the application's global history,
// attributed to this thread.
func (t *Thread) GlobalBeat() { t.h.beat(0, t.id) }

// GlobalBeatTag is GlobalBeat with a tag.
func (t *Thread) GlobalBeatTag(tag int64) { t.h.beat(tag, t.id) }

// Count returns the number of local heartbeats ever registered.
func (t *Thread) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Total()
}

// Rate returns the local heart rate over the last window beats; window == 0
// uses the application's default window. Windows beyond the retained
// history are clipped.
func (t *Thread) Rate(window int) (perSec float64, ok bool) {
	r, ok := t.RateDetail(window)
	return r.PerSec, ok
}

// RateDetail is Rate with the full measurement.
func (t *Thread) RateDetail(window int) (Rate, bool) {
	if window <= 0 {
		window = t.h.window
	}
	return rateOf(t.History(window))
}

// History returns up to n of the most recent local records, oldest first.
func (t *Thread) History(n int) []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf.Last(n)
}
