package loadgen

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestChurnScheduleValid: every generated schedule passes the
// no-resurrection validator across seeds, fleet sizes and fractions.
func TestChurnScheduleValid(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, producers := range []int{1, 3, 100, 5000} {
			for _, frac := range []float64{0, 0.1, 0.5, 1.0} {
				rng := rand.New(rand.NewSource(seed))
				evs := ChurnSchedule(rng, producers, frac, 10*time.Second)
				if err := ValidateChurn(evs, producers); err != nil {
					t.Fatalf("seed %d producers %d frac %g: %v", seed, producers, frac, err)
				}
				want := int(float64(producers) * frac)
				leavers := make(map[int]bool)
				for _, ev := range evs {
					if !ev.Join {
						leavers[ev.Producer] = true
					}
					if ev.At <= 0 || ev.At >= 10*time.Second {
						t.Fatalf("event outside the run: %+v", ev)
					}
				}
				if len(leavers) != want {
					t.Fatalf("seed %d: %d distinct leavers, want %d", seed, len(leavers), want)
				}
			}
		}
	}
}

// TestChurnScheduleDeterminism: same rng state, same schedule.
func TestChurnScheduleDeterminism(t *testing.T) {
	a := ChurnSchedule(rand.New(rand.NewSource(9)), 500, 0.3, 8*time.Second)
	b := ChurnSchedule(rand.New(rand.NewSource(9)), 500, 0.3, 8*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedules from the same seed differ")
	}
	if len(a) == 0 {
		t.Fatal("expected a non-empty schedule")
	}
}

// TestChurnRejoinLives: every rejoin begins a strictly newer life than the
// leave that preceded it — the schedule-level half of the stale-Life
// guard (the pump-level half is TestFleetPump's tag check).
func TestChurnRejoinLives(t *testing.T) {
	evs := ChurnSchedule(rand.New(rand.NewSource(4)), 1000, 0.5, 10*time.Second)
	last := make(map[int]ChurnEvent)
	rejoins := 0
	for _, ev := range evs {
		if prev, ok := last[ev.Producer]; ok && ev.Join {
			rejoins++
			if ev.Life <= prev.Life {
				t.Fatalf("producer %d rejoins as life %d after leaving life %d", ev.Producer, ev.Life, prev.Life)
			}
			if ev.At <= prev.At {
				t.Fatalf("producer %d rejoins at %v, not after its leave at %v", ev.Producer, ev.At, prev.At)
			}
		}
		last[ev.Producer] = ev
	}
	if rejoins == 0 {
		t.Fatal("schedule has no rejoins; the resurrection guard went unexercised")
	}
}

// TestValidateChurnRejects: hand-built illegal schedules must fail — in
// particular a producer resurrecting under a stale (non-incremented) Life.
func TestValidateChurnRejects(t *testing.T) {
	cases := []struct {
		name string
		evs  []ChurnEvent
	}{
		{"stale-life resurrection", []ChurnEvent{
			{At: time.Second, Producer: 0, Life: 1},
			{At: 2 * time.Second, Producer: 0, Join: true, Life: 1},
		}},
		{"life regression", []ChurnEvent{
			{At: time.Second, Producer: 0, Life: 1},
			{At: 2 * time.Second, Producer: 0, Join: true, Life: 0},
		}},
		{"join while live", []ChurnEvent{
			{At: time.Second, Producer: 0, Join: true, Life: 2},
		}},
		{"double leave", []ChurnEvent{
			{At: time.Second, Producer: 0, Life: 1},
			{At: 2 * time.Second, Producer: 0, Life: 1},
		}},
		{"time regression", []ChurnEvent{
			{At: 2 * time.Second, Producer: 0, Life: 1},
			{At: time.Second, Producer: 0, Join: true, Life: 2},
		}},
		{"producer out of range", []ChurnEvent{
			{At: time.Second, Producer: 7, Life: 1},
		}},
	}
	for _, tc := range cases {
		if err := ValidateChurn(tc.evs, 5); err == nil {
			t.Errorf("%s: validator accepted an illegal schedule", tc.name)
		}
	}
}
