package heartbeat_test

import (
	"sync"
	"testing"

	"repro/heartbeat"
)

// collectSink records every delivered record, batch or single. The
// aggregator serializes deliveries, but the sink locks anyway so the test
// doesn't depend on that.
type collectSink struct {
	mu      sync.Mutex
	records []heartbeat.Record
	batches int
}

func (s *collectSink) WriteRecord(r heartbeat.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, r)
	return nil
}

func (s *collectSink) WriteRecords(recs []heartbeat.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, recs...)
	s.batches++
	return nil
}

// The core no-lost-records guarantee of the sharded hot path: 32 goroutines
// hammer GlobalBeatTag concurrently with observer reads, and afterwards the
// sink must have received every single record, with dense strictly
// increasing global sequence numbers and every thread's tags in order.
func TestShardedGlobalBeatsLoseNothing(t *testing.T) {
	const (
		workers = 32
		beats   = 10000
	)
	sink := &collectSink{}
	hb, err := heartbeat.New(10,
		heartbeat.WithCapacity(1<<10),
		heartbeat.WithShardCapacity(1<<12),
		heartbeat.WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}

	// Observers hammer the merge-on-read path while producers beat.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastCount uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c := hb.Count(); c < lastCount {
					t.Errorf("Count went backwards: %d then %d", lastCount, c)
					return
				} else {
					lastCount = c
				}
				recs := hb.History(256)
				for j := 1; j < len(recs); j++ {
					if recs[j].Seq <= recs[j-1].Seq {
						t.Errorf("history out of order: %d then %d", recs[j-1].Seq, recs[j].Seq)
						return
					}
				}
				hb.Rate(0)
			}
		}()
	}

	var wg sync.WaitGroup
	threads := make([]*heartbeat.Thread, workers)
	for w := 0; w < workers; w++ {
		threads[w] = hb.Thread("stress")
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tr *heartbeat.Thread) {
			defer wg.Done()
			for i := 1; i <= beats; i++ {
				tr.GlobalBeatTag(int64(i))
			}
		}(threads[w])
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	hb.Flush()

	if got := hb.Count(); got != workers*beats {
		t.Fatalf("Count = %d, want %d", got, workers*beats)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.records) != workers*beats {
		t.Fatalf("sink received %d records, want %d", len(sink.records), workers*beats)
	}
	if sink.batches == 0 {
		t.Fatal("batch delivery never used")
	}
	perThread := make(map[int32]int64, workers)
	for i, r := range sink.records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: global sequence not dense/increasing", i, r.Seq)
		}
		if r.Producer <= 0 || int(r.Producer) > workers {
			t.Fatalf("record %d has producer %d", i, r.Producer)
		}
		if want := perThread[r.Producer] + 1; r.Tag != want {
			t.Fatalf("producer %d: tag %d arrived after %d — per-thread order broken",
				r.Producer, r.Tag, perThread[r.Producer])
		}
		perThread[r.Producer]++
	}
	for id, n := range perThread {
		if n != beats {
			t.Fatalf("producer %d delivered %d records, want %d", id, n, beats)
		}
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
}

// Without a sink the aggregator may discard surplus records lazily (they
// could never be read back from a bounded history anyway), but Count must
// stay exact and History dense-ordered under heavy concurrent wraparound.
func TestShardedBacklogDiscardKeepsAccounting(t *testing.T) {
	const (
		workers = 8
		beats   = 50000
	)
	hb, err := heartbeat.New(10,
		heartbeat.WithCapacity(128),
		heartbeat.WithShardCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tr := hb.Thread("wrap")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= beats; i++ {
				tr.GlobalBeatTag(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for {
			recs := hb.History(128)
			for j := 1; j < len(recs); j++ {
				if recs[j].Seq <= recs[j-1].Seq {
					t.Errorf("history out of order under discard: %d then %d",
						recs[j-1].Seq, recs[j].Seq)
					return
				}
			}
			// Count must be monotonic and must never overshoot the
			// true total (a mid-merge estimate double-counting a
			// record would latch into the monotonic clamp forever).
			c := hb.Count()
			if c < last {
				t.Errorf("Count went backwards: %d then %d", last, c)
				return
			}
			if c > workers*beats {
				t.Errorf("Count overshot: %d > %d", c, workers*beats)
				return
			}
			last = c
			if c >= workers*beats {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := hb.Count(); got != workers*beats {
		t.Fatalf("Count = %d, want %d", got, workers*beats)
	}
	recs := hb.History(1 << 20)
	if len(recs) == 0 || len(recs) > 128 {
		t.Fatalf("History returned %d records with capacity 128", len(recs))
	}
	if last := recs[len(recs)-1].Seq; last != workers*beats {
		t.Fatalf("newest seq = %d, want %d", last, workers*beats)
	}
}

// The beat hot paths must not allocate: local beats, tagged local beats,
// and global (sharded) beats, including their amortized aggregator flushes.
func TestBeatHotPathDoesNotAllocate(t *testing.T) {
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(256), heartbeat.WithShardCapacity(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("alloc")
	// Warm up so the aggregator's reusable scratch buffers exist.
	for i := 0; i < 4096; i++ {
		tr.Beat()
		tr.GlobalBeatTag(int64(i))
	}
	hb.Flush()
	if got := testing.AllocsPerRun(20000, tr.Beat); got != 0 {
		t.Errorf("Thread.Beat allocates %v per op", got)
	}
	if got := testing.AllocsPerRun(20000, func() { tr.BeatTag(7) }); got != 0 {
		t.Errorf("Thread.BeatTag allocates %v per op", got)
	}
	if got := testing.AllocsPerRun(20000, tr.GlobalBeat); got != 0 {
		t.Errorf("Thread.GlobalBeat allocates %v per op", got)
	}
	if got := testing.AllocsPerRun(20000, func() { tr.GlobalBeatTag(7) }); got != 0 {
		t.Errorf("Thread.GlobalBeatTag allocates %v per op", got)
	}
}
