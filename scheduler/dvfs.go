package scheduler

import (
	"fmt"

	"repro/observer"
)

// FrequencyMachine is the DVFS actuator: something whose clock frequency
// can be scaled as a fraction of nominal. sim.Machine implements it.
type FrequencyMachine interface {
	// SetFrequency scales the machine, clamped to its supported range,
	// and returns the effective setting.
	SetFrequency(f float64) float64
	// Frequency returns the current setting.
	Frequency() float64
}

// DVFSGovernor holds an application inside its target heart-rate window
// using the minimum clock frequency — the paper's §2.1 vision of hardware
// "where decisions about dynamic frequency and voltage scaling are driven
// by the performance measurements and target heart rate mechanisms of the
// Heartbeats framework". Below the window it raises frequency one step;
// above it, it lowers one step, cutting dynamic power cubically.
type DVFSGovernor struct {
	source  observer.Source
	machine FrequencyMachine
	window  int
	step    float64
}

// GovernorOption configures NewDVFSGovernor.
type GovernorOption func(*DVFSGovernor)

// WithGovernorWindow sets the observation window in beats.
func WithGovernorWindow(n int) GovernorOption {
	return func(g *DVFSGovernor) { g.window = n }
}

// WithGovernorStep sets the frequency step per decision (default 0.125 —
// eight P-state-like levels across the range).
func WithGovernorStep(s float64) GovernorOption {
	return func(g *DVFSGovernor) { g.step = s }
}

// NewDVFSGovernor creates a governor over the application's heartbeat
// source and the machine's frequency control.
func NewDVFSGovernor(source observer.Source, machine FrequencyMachine, opts ...GovernorOption) (*DVFSGovernor, error) {
	if source == nil || machine == nil {
		return nil, fmt.Errorf("scheduler: nil source or machine")
	}
	g := &DVFSGovernor{source: source, machine: machine, step: 0.125}
	for _, o := range opts {
		o(g)
	}
	return g, nil
}

// GovernorSample records one governor decision.
type GovernorSample struct {
	Beat      uint64
	Rate      float64
	RateOK    bool
	Frequency float64
	TargetMin float64
	TargetMax float64
}

// Step performs one observe–decide–actuate cycle: raise frequency when the
// application misses its minimum target, lower it when the application
// exceeds its maximum (wasting energy on unneeded speed).
func (g *DVFSGovernor) Step() (GovernorSample, error) {
	snap, err := g.source.Snapshot(g.window)
	if err != nil {
		return GovernorSample{}, fmt.Errorf("scheduler: %w", err)
	}
	rate, ok := snap.Rate(g.window)
	f := g.machine.Frequency()
	if ok && snap.TargetSet {
		switch {
		case rate < snap.TargetMin:
			f = g.machine.SetFrequency(f + g.step)
		case rate > snap.TargetMax:
			f = g.machine.SetFrequency(f - g.step)
		}
	}
	return GovernorSample{
		Beat: snap.Count, Rate: rate, RateOK: ok, Frequency: f,
		TargetMin: snap.TargetMin, TargetMax: snap.TargetMax,
	}, nil
}
