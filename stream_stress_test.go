package repro

// Stream fan-out stress: one live producer, several concurrent streaming
// consumers of different kinds, all under -race. The raw subscriber
// asserts the core streaming contract — every global sequence number is
// delivered exactly once, in order, across a mid-stream resubscribe —
// while a Monitor and a CoreScheduler consume the same heartbeat through
// their own independent cursors.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
	"repro/scheduler"
)

// stressMachine is a trivial CoreMachine actuator for the scheduler
// consumer; allocations are irrelevant to the streaming contract.
type stressMachine struct{ cores atomic.Int32 }

func (m *stressMachine) SetCores(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	m.cores.Store(int32(n))
	return n
}
func (m *stressMachine) Cores() int {
	if c := m.cores.Load(); c >= 1 {
		return int(c)
	}
	return 1
}

func (m *stressMachine) MaxCores() int { return 8 }

func TestStreamFanoutNoLossNoDupAcrossResubscribe(t *testing.T) {
	const beats = 30000
	hb, err := heartbeat.New(20,
		heartbeat.WithCapacity(1<<16), // covers the full run: no overwrite, so loss = a real bug
		heartbeat.WithFlushInterval(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	if err := hb.SetTarget(1, 1e9); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Consumer 1: a Monitor judging through its own stream.
	var statuses atomic.Int64
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		m := observer.NewMonitor(observer.HeartbeatSource(hb), time.Millisecond, func(observer.Status) {
			statuses.Add(1)
		})
		m.Run(mctx)
	}()

	// Consumer 2: a CoreScheduler deciding through its own stream.
	var samples atomic.Int64
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		sched, err := scheduler.New(observer.HeartbeatSource(hb), &stressMachine{},
			scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 1, TargetMax: 1e9}},
			scheduler.WithWindow(20))
		if err != nil {
			t.Error(err)
			return
		}
		sched.Run(sctx, time.Millisecond, func(scheduler.Sample) { samples.Add(1) }, nil)
	}()

	// Producer: a single Thread beating through its lock-free shard.
	producerDone := make(chan struct{})
	go func() {
		defer close(producerDone)
		tr := hb.Thread("producer")
		for i := 0; i < beats; i++ {
			tr.GlobalBeatTag(int64(i))
		}
		hb.Flush()
	}()

	// Consumer 3: the raw subscriber asserting exactly-once delivery —
	// through the shared simcheck contract checker, the same code the
	// simulated scenario matrix runs — with one resubscribe (Close +
	// SubscribeFrom at the saved cursor) halfway. The ring covers the full
	// run, so any batch reporting a gap (or a duplicate) is a violation.
	sub := hb.Subscribe(ctx)
	defer func() { sub.Close() }()
	tracker := simcheck.NewTracker("raw subscriber", 0)
	var resubscribed bool
	for tracker.Cursor() < beats {
		recs, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("consumed %d records, then: %v", tracker.Delivered(), err)
		}
		if err := tracker.Absorb(observer.Batch{Records: recs}); err != nil {
			t.Fatal(err)
		}
		if !resubscribed && tracker.Cursor() > beats/2 {
			cur := sub.Cursor()
			sub.Close()
			sub = hb.SubscribeFrom(ctx, cur)
			resubscribed = true
		}
	}
	if !resubscribed {
		t.Fatal("resubscribe never exercised")
	}
	if sub.Missed() != 0 {
		t.Fatalf("subscriber missed %d records", sub.Missed())
	}
	if err := tracker.CheckLives(1); err != nil {
		t.Fatal(err)
	}
	if err := tracker.CheckConserved(beats); err != nil {
		t.Fatal(err)
	}

	<-producerDone
	// Total accounting: every beat is in the history, none duplicated.
	if got := hb.Count(); got != beats {
		t.Fatalf("Count = %d, want %d", got, beats)
	}
	mcancel()
	scancel()
	<-monitorDone
	<-schedDone
	if statuses.Load() == 0 {
		t.Fatal("monitor consumer delivered no statuses")
	}
	if samples.Load() == 0 {
		t.Fatal("scheduler consumer delivered no samples")
	}
}
