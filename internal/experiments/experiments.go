// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on this repository's substrates: the Table 2 PARSEC
// heart-rate survey, the §5.1 instrumentation-overhead study, the Figure 2
// phase analysis, the Figures 3-4 adaptive encoder, the Figures 5-7
// external scheduler, and the Figure 8 fault-tolerance study. Each
// experiment returns a Result holding a table or data series plus notes
// summarizing the measured shape against the paper's.
package experiments

import (
	"fmt"

	"repro/internal/plot"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier: "table2", "overhead", "fig2" ...
	ID string
	// Title describes the experiment.
	Title string
	// Table holds tabular results (Table 2, overhead study).
	Table *plot.Table
	// Series holds figure data (Figs 2-8).
	Series *plot.Series
	// Notes summarize measured-vs-paper shape criteria.
	Notes []string
}

// Options scales the experiments. The zero value reproduces the paper's
// full scale; tests use reduced scales.
type Options struct {
	// EncoderFrames caps the frame count of the encoder experiments
	// (Figs 2-4, 8). 0 means the paper's scale (500-600 frames).
	EncoderFrames int
	// OverheadUnits is the option count of the blackscholes overhead
	// study (0: 200000).
	OverheadUnits int
	// Seed makes all procedural inputs deterministic (0 is a valid
	// seed; runs with equal Options are identical).
	Seed int64
}

func (o Options) encoderFrames(paperScale int) int {
	if o.EncoderFrames <= 0 || o.EncoderFrames > paperScale {
		return paperScale
	}
	return o.EncoderFrames
}

func (o Options) overheadUnits() int {
	if o.OverheadUnits <= 0 {
		return 200000
	}
	return o.OverheadUnits
}

// IDs lists all experiment identifiers in paper order.
func IDs() []string {
	return []string{"table2", "overhead", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "multiapp", "dvfs"}
}

// Run executes one experiment by ID.
func Run(id string, opt Options) (Result, error) {
	switch id {
	case "table2":
		return Table2(opt), nil
	case "overhead":
		return Overhead(opt), nil
	case "fig2":
		return Fig2(opt), nil
	case "fig3":
		return Fig3(opt), nil
	case "fig4":
		return Fig4(opt), nil
	case "fig5":
		return Fig5(opt), nil
	case "fig6":
		return Fig6(opt), nil
	case "fig7":
		return Fig7(opt), nil
	case "fig8":
		return Fig8(opt), nil
	case "multiapp":
		return MultiApp(opt), nil
	case "dvfs":
		return DVFS(opt), nil
	default:
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
}

// All runs every experiment in paper order.
func All(opt Options) []Result {
	ids := IDs()
	out := make([]Result, 0, len(ids))
	for _, id := range ids {
		r, err := Run(id, opt)
		if err != nil {
			panic(err) // unreachable: IDs() and Run agree
		}
		out = append(out, r)
	}
	return out
}
