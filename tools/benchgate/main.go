// Command benchgate turns the recorded benchmark captures into pass/fail
// CI signal, so a performance regression fails `make ci` the same way a
// broken test does instead of waiting for a human to eyeball the JSON.
//
// Three checks, all over `go test -json` captures of benchmark runs:
//
//	benchgate -file BENCH_relay.json -bench Relay/fanin-32 -metric records/s \
//	    -baseline tools/benchgate/baseline.json -tolerance 0.20
//
// asserts the named benchmark's metric is within tolerance of the value
// recorded for it in the committed baseline file (a regression beyond the
// tolerance fails; a faster run passes — improvements are recorded by
// refreshing the baseline, deliberately, in review).
//
//	benchgate -file BENCH_shm.json -metric records/s \
//	    -faster ShmVsTCP/shm/stream,ShmVsTCP/tcp/stream
//
// asserts the first benchmark's metric beats the second's in the same
// capture — the relative claim (shared memory outruns loopback TCP) that
// must hold on any machine, however fast the machine is.
//
//	benchgate -file BENCH_balance.json -bench Pick/cow/p8 \
//	    -metric allocs/op -atmost 0
//
// asserts the named benchmark's metric is at most the given ceiling — an
// absolute claim (a lock-free read path allocates nothing, a remap stays
// under its disruption bound) that holds on any machine or not at all.
//
//	benchgate -require tools/benchgate/require.json
//
// checks a committed contract file of such ceilings, where every entry
// also names the //hbvet:hotpath-marked function the measurement covers
// and the source file carrying the mark. benchgate verifies the mark is
// still present on that function before checking the number, so the
// static contract (hbvet proves the path allocation-free by analysis)
// and the measured contract (the benchmark observes 0 allocs/op) are tied
// to the same code and cannot drift apart silently: unmarking the
// function fails the gate even while the benchmark still happens to pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	file := flag.String("file", "", "go test -json benchmark capture to check")
	bench := flag.String("bench", "", "benchmark name to gate (Benchmark prefix and -N cpu suffix optional)")
	metric := flag.String("metric", "records/s", "metric to compare")
	baselinePath := flag.String("baseline", "", "JSON file of {bench: {metric: value}} baselines")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression vs the baseline")
	faster := flag.String("faster", "", "A,B: assert benchmark A's metric >= benchmark B's in the same capture")
	atmost := flag.String("atmost", "", "ceiling: assert the -bench metric is <= this value")
	require := flag.String("require", "", "JSON contract file of ceilings tied to //hbvet:hotpath marks")
	flag.Parse()

	if *require != "" {
		checkRequired(*require)
		return
	}
	if *file == "" {
		fatalf("benchgate: -file is required")
	}
	results, err := parseCapture(*file)
	if err != nil {
		fatalf("benchgate: %v", err)
	}

	switch {
	case *faster != "":
		a, b, ok := strings.Cut(*faster, ",")
		if !ok {
			fatalf("benchgate: -faster wants A,B")
		}
		av := lookup(results, a, *metric)
		bv := lookup(results, b, *metric)
		if av < bv {
			fatalf("benchgate: %s %s = %.0f is below %s = %.0f — the faster-than claim no longer holds",
				a, *metric, av, b, bv)
		}
		fmt.Printf("benchgate: %s %s %.0f >= %s %.0f ok (%.2fx)\n", a, *metric, av, b, bv, av/bv)
	case *atmost != "":
		if *bench == "" {
			fatalf("benchgate: -atmost needs -bench")
		}
		ceil, err := strconv.ParseFloat(*atmost, 64)
		if err != nil {
			fatalf("benchgate: bad -atmost %q: %v", *atmost, err)
		}
		got := lookup(results, *bench, *metric)
		if got > ceil {
			fatalf("benchgate: %s %s = %g exceeds the ceiling %g", *bench, *metric, got, ceil)
		}
		fmt.Printf("benchgate: %s %s %g <= %g ok\n", *bench, *metric, got, ceil)
	case *baselinePath != "":
		if *bench == "" {
			fatalf("benchgate: -baseline needs -bench")
		}
		base, err := readBaseline(*baselinePath, *bench, *metric)
		if err != nil {
			fatalf("benchgate: %v", err)
		}
		got := lookup(results, *bench, *metric)
		floor := base * (1 - *tolerance)
		if got < floor {
			fatalf("benchgate: %s %s = %.0f regressed more than %.0f%% below the recorded baseline %.0f (floor %.0f)",
				*bench, *metric, got, *tolerance*100, base, floor)
		}
		fmt.Printf("benchgate: %s %s %.0f within %.0f%% of baseline %.0f ok\n",
			*bench, *metric, got, *tolerance*100, base)
	default:
		fatalf("benchgate: nothing to check: pass -baseline, -faster, or -atmost")
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// contract is one entry of the -require file: a benchmark ceiling bound to
// the hotpath-marked function the benchmark measures.
type contract struct {
	// Capture is the go test -json file holding the measurement, relative
	// to the contract file's directory's module root (i.e. the repo root,
	// where make runs).
	Capture string  `json:"capture"`
	Bench   string  `json:"bench"`
	Metric  string  `json:"metric"`
	AtMost  float64 `json:"atmost"`
	// Func is the declaration prefix of the //hbvet:hotpath function this
	// measurement covers, e.g. "func (t *Table) Pick(". Source is the file
	// declaring it.
	Func   string `json:"func"`
	Source string `json:"source"`
}

// checkRequired verifies every entry of the contract file: the static mark
// first, then the measured ceiling.
func checkRequired(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("benchgate: %v", err)
	}
	var contracts []contract
	if err := json.Unmarshal(data, &contracts); err != nil {
		fatalf("benchgate: %s: %v", path, err)
	}
	if len(contracts) == 0 {
		fatalf("benchgate: %s: empty contract file", path)
	}
	captures := make(map[string]map[string]result)
	for _, c := range contracts {
		// A contract may tie its ceiling to an //hbvet:hotpath mark (the
		// 0-alloc gates do) or stand alone as a pure measured budget (the
		// scale-matrix latency and memory ceilings): the mark is only
		// verified when the contract names one.
		if c.Func != "" {
			if err := verifyMark(c.Source, c.Func); err != nil {
				fatalf("benchgate: %s: %v — the measured 0-alloc gate must cover an hbvet-verified hot path", path, err)
			}
		}
		results, ok := captures[c.Capture]
		if !ok {
			results, err = parseCapture(c.Capture)
			if err != nil {
				fatalf("benchgate: %v", err)
			}
			captures[c.Capture] = results
		}
		got := lookup(results, c.Bench, c.Metric)
		if got > c.AtMost {
			where := "measured budget"
			if c.Func != "" {
				where = fmt.Sprintf("contract for %s: %s", c.Source, c.Func)
			}
			fatalf("benchgate: %s %s = %g exceeds the required ceiling %g (%s)",
				c.Bench, c.Metric, got, c.AtMost, where)
		}
		if c.Func != "" {
			fmt.Printf("benchgate: %s %s %g <= %g ok (hotpath mark on %q verified)\n",
				c.Bench, c.Metric, got, c.AtMost, c.Func)
		} else {
			fmt.Printf("benchgate: %s %s %g <= %g ok\n", c.Bench, c.Metric, got, c.AtMost)
		}
	}
}

// verifyMark checks that source still declares funcPrefix under an
// //hbvet:hotpath marker: the first func declaration after each marker is
// a marked function.
func verifyMark(source, funcPrefix string) error {
	data, err := os.ReadFile(source)
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	marked := false
	for i, line := range lines {
		if strings.TrimSpace(line) != "//hbvet:hotpath" {
			continue
		}
		for _, after := range lines[i+1:] {
			if strings.HasPrefix(after, "func ") {
				if strings.HasPrefix(after, funcPrefix) {
					marked = true
				}
				break
			}
		}
	}
	if !marked {
		return fmt.Errorf("%s: no //hbvet:hotpath mark found on %q", source, funcPrefix)
	}
	return nil
}

// result is one benchmark's reported metrics, keyed by unit ("ns/op",
// "records/s", ...).
type result map[string]float64

// benchLine matches a benchmark result line reassembled from the capture:
// name, iterations, then value-unit pairs. The name is kept verbatim —
// a trailing -N may be a GOMAXPROCS suffix or part of the sub-benchmark
// name (fanin-32), so lookup() resolves that ambiguity, not the parser.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// valueUnit matches one "123.4 unit" pair within the measurements tail.
var valueUnit = regexp.MustCompile(`([0-9.eE+]+)\s+([^\s]+)`)

// parseCapture reads a `go test -json` capture and returns the metrics of
// every benchmark result line in it. test2json may split a physical line
// across Output events, so all output is concatenated before scanning.
func parseCapture(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string
			Output string
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the capture
		}
		if ev.Action == "output" {
			out.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := make(map[string]result)
	for _, line := range strings.Split(out.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := make(result)
		for _, vu := range valueUnit.FindAllStringSubmatch(m[2], -1) {
			v, err := strconv.ParseFloat(vu[1], 64)
			if err != nil {
				continue
			}
			r[vu[2]] = v
		}
		results[m[1]] = r
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return results, nil
}

// cpuSuffix is the -N GOMAXPROCS suffix go test appends on multi-proc runs.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// lookup finds a benchmark's metric, accepting the name with or without
// the Benchmark prefix and with or without a GOMAXPROCS -N suffix.
func lookup(results map[string]result, bench, metric string) float64 {
	name := bench
	if !strings.HasPrefix(name, "Benchmark") {
		name = "Benchmark" + name
	}
	r, ok := results[name]
	if !ok {
		// Not an exact key: accept a single capture entry that is the
		// requested name plus a GOMAXPROCS suffix.
		for k, v := range results {
			if cpuSuffix.ReplaceAllString(k, "") == name {
				if ok {
					fatalf("benchgate: benchmark %q is ambiguous in capture", bench)
				}
				r, ok = v, true
			}
		}
	}
	if !ok {
		var known []string
		for k := range results {
			known = append(known, k)
		}
		fatalf("benchgate: benchmark %q not in capture (have %s)", bench, strings.Join(known, ", "))
	}
	v, ok := r[metric]
	if !ok {
		fatalf("benchgate: benchmark %q has no %q metric", bench, metric)
	}
	return v
}

// readBaseline loads the committed {bench: {metric: value}} baseline file.
func readBaseline(path, bench, metric string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base map[string]map[string]float64
	if err := json.Unmarshal(data, &base); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	m, ok := base[bench]
	if !ok {
		return 0, fmt.Errorf("%s: no baseline for %q", path, bench)
	}
	v, ok := m[metric]
	if !ok {
		return 0, fmt.Errorf("%s: baseline for %q has no %q", path, bench, metric)
	}
	return v, nil
}
