package experiments

import (
	"fmt"
	"time"

	"repro/heartbeat"
	"repro/internal/plot"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// DVFS is the frequency-scaling extension experiment (§2.1): a paced
// real-time application (work items arrive at a fixed rate, the machine
// idles between completions) runs twice on eight cores — once racing at
// full clock frequency and idling, once under a heartbeat-driven DVFS
// governor that holds the heart rate inside the advertised window with the
// minimum frequency. Both meet the performance goal; the governed run
// consumes substantially less energy because dynamic power scales with the
// cube of frequency while idling still pays static leakage — the classic
// DVFS-beats-race-to-idle argument the paper cites (Govil'95, Pering'98),
// here driven end-to-end by the Heartbeats signal.
func DVFS(Options) Result {
	const (
		coreRate = 1e9
		beats    = 600
		check    = 10
		window   = 10
		tmin     = 29.0
		tmax     = 33.0
		paceHz   = 31.0 // work-item arrival rate
	)
	// Per-beat cost: a heavy middle phase needs full frequency to keep up
	// with the arrival rate; the outer phases need only about half.
	work := func(beat int) sim.Work {
		ops := 0.0912e9 // light: capacity ~32.5 beats/s at f=0.5 (p=0.95)
		if beat >= 200 && beat < 400 {
			ops = 0.188e9 // heavy: capacity ~31.5 beats/s at f=1.0
		}
		return sim.Work{Ops: ops, ParallelFrac: 0.95}
	}

	type runResult struct {
		rates    []float64
		freqs    []float64
		energy   float64
		violated int // beats measured below target after warmup
	}
	run := func(governed bool) runResult {
		clk := sim.NewClock(sim.Epoch)
		m := sim.NewMachine(clk, 8, coreRate)
		hb, err := heartbeat.New(window, heartbeat.WithClock(clk))
		if err != nil {
			panic(err)
		}
		if err := hb.SetTarget(tmin, tmax); err != nil {
			panic(err)
		}
		var gov *scheduler.DVFSGovernor
		if governed {
			gov, err = scheduler.NewDVFSGovernor(observer.HeartbeatSource(hb), m,
				scheduler.WithGovernorWindow(window))
			if err != nil {
				panic(err)
			}
			m.SetFrequency(0.5) // governors start low and earn speed
		}
		var res runResult
		start := clk.Now()
		for beat := 1; beat <= beats; beat++ {
			// Pacing: the beat-th work item arrives at start + beat/pace.
			arrival := start.Add(time.Duration(float64(beat-1) / paceHz * float64(time.Second)))
			if wait := arrival.Sub(clk.Now()); wait > 0 {
				m.Idle(wait)
			}
			m.Execute(work(beat))
			hb.Beat()
			rate, ok := hb.Rate(0)
			res.rates = append(res.rates, rate)
			res.freqs = append(res.freqs, m.Frequency())
			if ok && beat > 2*window && rate < tmin {
				res.violated++
			}
			if governed && beat%check == 0 {
				if _, err := gov.Step(); err != nil {
					panic(err)
				}
			}
		}
		res.energy = m.Energy()
		return res
	}

	fixed := run(false)
	governed := run(true)

	series := &plot.Series{
		Title:  "Extension: heartbeat-driven DVFS vs race-to-idle at full frequency (paced input, target 29-33 beats/s)",
		XLabel: "heartbeat",
		Cols:   []string{"rate_governed", "freq_governed_x10", "rate_fixed"},
	}
	for i := 0; i < beats; i++ {
		series.Add(float64(i+1), governed.rates[i], governed.freqs[i]*10, fixed.rates[i])
	}
	saving := 1 - governed.energy/fixed.energy
	return Result{
		ID: "dvfs", Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("energy: fixed-frequency %.1f units, governed %.1f units — %.0f%% saved at equal delivered performance", fixed.energy, governed.energy, saving*100),
			fmt.Sprintf("target misses after warmup: governed %d, fixed %d (of %d beats)", governed.violated, fixed.violated, beats),
			fmt.Sprintf("governed frequency: %.2f in light phases, %.2f in the heavy phase", governed.freqs[150], governed.freqs[350]),
			"extension: the paper's §2.1 self-tuning-hardware vision on the simulated machine",
		},
	}
}
