// Package wallclock flags direct wall-clock time outside the stack's
// clock seams. Every loop in this codebase is supposed to run on the
// injected heartbeat.Clock/WaitClock — that is what lets simnet's
// scenario matrix drive the whole stack under virtual time — so a bare
// time.Sleep or context.WithTimeout is a hole in the simulation's
// coverage, invisible to the compiler and to -race. The allowed seams
// are the clock implementations themselves (heartbeat/clock*.go, sim/)
// and sites annotated //hbvet:allow wallclock -- <reason>: genuine
// process edges like seeding an RNG or bounding a real TCP dial.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/tools/hbvet/internal/analysis"
)

// Analyzer flags direct wall-clock calls outside the clock seams.
var Analyzer = &analysis.Analyzer{
	Name:      "wallclock",
	Doc:       "flags time.Now/Sleep/After/... and context.WithTimeout/WithDeadline outside the clock seams",
	SeamFiles: []string{"heartbeat/clock*.go", "sim/"},
	Run:       run,
}

// Banned maps package path -> function names that read or schedule on the
// wall clock. Exported so the clockthread analyzer applies the identical
// notion of “wall-clock call”.
var Banned = map[string]map[string]bool{
	"time": {
		"Now": true, "Sleep": true, "After": true, "Tick": true,
		"NewTicker": true, "NewTimer": true, "AfterFunc": true,
		"Since": true, "Until": true,
	},
	"context": {
		"WithTimeout": true, "WithDeadline": true,
		"WithTimeoutCause": true, "WithDeadlineCause": true,
	},
}

// BannedFunc resolves id (in use position) to a banned wall-clock
// function, returning its display name like "time.Now". Matching every
// identifier use (not just call expressions) also catches time.Now
// passed around as a function value.
func BannedFunc(info *types.Info, id *ast.Ident) (string, bool) {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	// Methods share names with the banned package functions —
	// (time.Time).After is arithmetic, time.After is a wall-clock wait.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	if !Banned[fn.Pkg().Path()][fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if name, ok := BannedFunc(pass.TypesInfo, id); ok {
				pass.Reportf(id.Pos(),
					"direct %s call outside a clock seam: thread the injected heartbeat.Clock (heartbeat.Now/After/NewTicker/ContextWithTimeout) or annotate //hbvet:allow wallclock -- <reason>",
					name)
			}
			return true
		})
	}
	return nil
}
