package sim

import (
	"testing"
	"time"
)

func TestClusterSingleProcMatchesMachine(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 8, 1000)
	items := 0
	p := c.AddProc("app", 8, func() (Work, bool) {
		if items >= 5 {
			return Work{}, false
		}
		items++
		return Work{Ops: 8000, ParallelFrac: 1}, true
	})
	start := clk.Now()
	for c.Step() {
	}
	// 5 items × 8000 ops at 8×1000 ops/s = 5 seconds.
	if got := clk.Elapsed(start); got != 5*time.Second {
		t.Fatalf("elapsed = %v, want 5s", got)
	}
	if p.Completed() != 5 || !p.Idle() {
		t.Fatalf("completed=%d idle=%v", p.Completed(), p.Idle())
	}
}

func TestClusterTwoProcsShareTime(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 8, 1000)
	mk := func(n *int, limit int, ops float64) func() (Work, bool) {
		return func() (Work, bool) {
			if *n >= limit {
				return Work{}, false
			}
			*n++
			return Work{Ops: ops, ParallelFrac: 1}, true
		}
	}
	var na, nb int
	// A on 6 cores (6000 ops/s), B on 2 cores (2000 ops/s), same item size.
	a := c.AddProc("a", 6, mk(&na, 100, 6000))
	b := c.AddProc("b", 2, mk(&nb, 100, 2000))
	// Run 10 simulated seconds: both complete one item per second,
	// concurrently.
	c.RunUntil(clk.Now().Add(10 * time.Second))
	if a.Completed() != 10 || b.Completed() != 10 {
		t.Fatalf("completed a=%d b=%d, want 10 each", a.Completed(), b.Completed())
	}
}

func TestClusterProportionalProgress(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 8, 1000)
	mk := func() func() (Work, bool) {
		return func() (Work, bool) { return Work{Ops: 1000, ParallelFrac: 1}, true }
	}
	fast := c.AddProc("fast", 6, mk())
	slow := c.AddProc("slow", 2, mk())
	c.RunUntil(clk.Now().Add(30 * time.Second))
	ratio := float64(fast.Completed()) / float64(slow.Completed())
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("completion ratio = %.2f (fast=%d slow=%d), want ~3",
			ratio, fast.Completed(), slow.Completed())
	}
}

func TestClusterReallocationChangesRates(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 8, 1000)
	p := c.AddProc("app", 2, func() (Work, bool) { return Work{Ops: 1000, ParallelFrac: 1}, true })
	c.RunUntil(clk.Now().Add(10 * time.Second))
	before := p.Completed() // 2 cores: 2 items/s → ~20
	p.SetCores(8)
	c.RunUntil(clk.Now().Add(10 * time.Second))
	after := p.Completed() - before // 8 cores: 8 items/s → ~80
	if before < 19 || before > 21 {
		t.Fatalf("before = %d, want ~20", before)
	}
	if after < 76 || after > 84 {
		t.Fatalf("after = %d, want ~80", after)
	}
}

func TestClusterOversubscriptionPanics(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 4, 1000)
	c.AddProc("a", 3, func() (Work, bool) { return Work{Ops: 1, ParallelFrac: 1}, true })
	c.AddProc("b", 3, func() (Work, bool) { return Work{Ops: 1, ParallelFrac: 1}, true })
	defer func() {
		if recover() == nil {
			t.Fatal("oversubscribed Step did not panic")
		}
	}()
	c.Step()
}

func TestClusterIdleAndResume(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 2, 1000)
	served := 0
	budget := 3
	p := c.AddProc("app", 1, func() (Work, bool) {
		if served >= budget {
			return Work{}, false
		}
		served++
		return Work{Ops: 100, ParallelFrac: 1}, true
	})
	for c.Step() {
	}
	if !p.Idle() || p.Completed() != 3 {
		t.Fatalf("idle=%v completed=%d", p.Idle(), p.Completed())
	}
	if c.Step() {
		t.Fatal("Step on all-idle cluster returned true")
	}
	budget = 5
	p.Resume()
	for c.Step() {
	}
	if p.Completed() != 5 {
		t.Fatalf("completed after resume = %d", p.Completed())
	}
}

func TestClusterProcCoreClamping(t *testing.T) {
	clk := NewClock(time.Time{})
	c := NewCluster(clk, 4, 1000)
	p := c.AddProc("app", 99, func() (Work, bool) { return Work{}, false })
	if p.Cores() != 4 {
		t.Fatalf("initial grant = %d, want clamp to 4", p.Cores())
	}
	if got := p.SetCores(0); got != 1 {
		t.Fatalf("SetCores(0) = %d, want 1", got)
	}
	if c.UsedCores() != 1 || c.TotalCores() != 4 {
		t.Fatalf("used=%d total=%d", c.UsedCores(), c.TotalCores())
	}
}

func TestClusterValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCluster(nil, 4, 1) },
		func() { NewCluster(NewClock(time.Time{}), 0, 1) },
		func() { NewCluster(NewClock(time.Time{}), 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
