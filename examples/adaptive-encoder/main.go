// Adaptive encoder (§5.2): a video encoder observes its own heartbeats and
// sheds quality — weaker motion search, fewer reference frames — until it
// sustains its real-time frame-rate goal. This is Figure 1(a) of the
// paper: self-optimization through the Heartbeats API, no external help.
//
//	go run ./examples/adaptive-encoder
package main

import (
	"fmt"
	"log"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/video"
	"repro/internal/x264"
	"repro/sim"
)

func main() {
	const (
		targetRate = 30.0 // frames per second
		checkEvery = 40   // paper: "checks its heart rate every 40 frames"
		frames     = 400
	)
	ladder := x264.Ladder()

	// Simulated eight-core machine; the per-core rate is chosen so the
	// launch configuration manages only ~9 frames/s, like the paper's
	// demanding Main-profile parameters.
	clk := sim.NewClock(time.Time{})
	machine := sim.NewMachine(clk, 8, 1.14e7)

	hb, err := heartbeat.New(checkEvery, heartbeat.WithClock(clk))
	if err != nil {
		log.Fatal(err)
	}
	if err := hb.SetTarget(targetRate, 4*targetRate); err != nil {
		log.Fatal(err)
	}

	src := video.NewSource(160, 96, 7, video.Uniform(video.Complexity{Motion: 2.5, Detail: 14, Noise: 3}))
	enc := x264.NewEncoder(ladder[0])
	policy := &control.Ladder{MaxLevel: len(ladder) - 1, TargetMin: targetRate}

	fmt.Printf("goal: >= %.0f frames/s | launch config: %v\n\n", targetRate, ladder[0])
	for i := 1; i <= frames; i++ {
		frame, _ := src.Next()
		st, err := enc.Encode(frame)
		if err != nil {
			log.Fatal(err)
		}
		machine.Execute(sim.Work{Ops: st.Ops, ParallelFrac: x264.ParallelFrac})
		hb.Beat()

		if i%checkEvery == 0 {
			rate, ok := hb.Rate(0)
			before := policy.Level()
			after := policy.Decide(rate, ok)
			if after != before {
				enc.SetConfig(ladder[after])
			}
			marker := ""
			if after != before {
				marker = fmt.Sprintf("  -> stepping to level %d: %v", after, ladder[after])
			}
			fmt.Printf("frame %3d: %5.1f beats/s, PSNR %5.2f dB%s\n", i, rate, st.PSNR, marker)
		}
	}
	rate, _ := hb.Rate(0)
	fmt.Printf("\nfinal: %.1f beats/s at %v\n", rate, enc.Config())
	if rate >= targetRate {
		fmt.Println("goal met: quality was traded for throughput, frames were not dropped")
	}
}
