// Package hotuser imports hotdep from its own hot path: the mark on
// hotdep.Fast arrives as a fact (dependencies are analyzed first), while
// unmarked hotdep.Slow is a violation.
package hotuser

import "hotdep"

//hbvet:hotpath
func Use(x int) int {
	y := hotdep.Fast(x)
	_ = hotdep.Slow(x) // want `call into non-hotpath function hotdep\.Slow`
	return y
}
