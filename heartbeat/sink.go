package heartbeat

// Sink receives every global record as it is produced. Sinks expose the
// heartbeat to the world outside the process — the paper's reference
// implementation writes each heartbeat to a file that external services
// read; package hbfile provides that sink. WriteRecord is called
// synchronously from Beat, potentially from many goroutines at once, so
// implementations must be concurrency-safe and should be fast.
type Sink interface {
	WriteRecord(Record) error
}

// TargetSink is implemented by sinks that can also publish the target
// heart-rate range to external observers (the reference implementation
// writes targets into the same file as the heartbeats).
type TargetSink interface {
	Sink
	WriteTarget(min, max float64) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record) error

// WriteRecord implements Sink.
func (f SinkFunc) WriteRecord(r Record) error { return f(r) }

// MultiSink fans records out to several sinks, returning the first error.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) WriteRecord(r Record) error {
	var first error
	for _, s := range m {
		if err := s.WriteRecord(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m multiSink) WriteTarget(min, max float64) error {
	var first error
	for _, s := range m {
		if ts, ok := s.(TargetSink); ok {
			if err := ts.WriteTarget(min, max); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
