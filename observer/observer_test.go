package observer_test

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

func beatSteadily(hb *heartbeat.Heartbeat, clk *sim.Clock, n int, gap time.Duration) {
	for i := 0; i < n; i++ {
		clk.Advance(gap)
		hb.Beat()
	}
}

func TestHeartbeatSourceSnapshot(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.SetTarget(5, 15); err != nil {
		t.Fatal(err)
	}
	beatSteadily(hb, clk, 20, 100*time.Millisecond)

	snap, err := observer.HeartbeatSource(hb).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 20 || snap.Window != 10 || !snap.TargetSet || snap.TargetMin != 5 || snap.TargetMax != 15 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Records) != 10 {
		t.Fatalf("records = %d, want default window 10", len(snap.Records))
	}
	r, ok := snap.Rate(0)
	if !ok || r < 9.99 || r > 10.01 {
		t.Fatalf("Rate = %v, want 10", r)
	}
	// Rate over a smaller explicit window still works.
	r2, ok := snap.Rate(5)
	if !ok || r2 < 9.99 || r2 > 10.01 {
		t.Fatalf("Rate(5) = %v", r2)
	}
}

func TestThreadSourceSnapshot(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(8, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	for i := 0; i < 6; i++ {
		clk.Advance(50 * time.Millisecond)
		tr.Beat()
	}
	snap, err := observer.ThreadSource(tr, 8).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 6 || len(snap.Records) != 6 {
		t.Fatalf("snapshot = %+v", snap)
	}
	r, ok := snap.Rate(0)
	if !ok || r < 19.99 || r > 20.01 {
		t.Fatalf("thread rate = %v, want 20", r)
	}
}

func TestFileSourceSnapshot(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(30, 35)
	beatSteadily(hb, clk, 30, 25*time.Millisecond)

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap, err := observer.FileSource(r).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != 30 || !snap.TargetSet || snap.TargetMin != 30 {
		t.Fatalf("snapshot = %+v", snap)
	}
	rate, ok := snap.Rate(0)
	if !ok || rate < 39.9 || rate > 40.1 {
		t.Fatalf("rate = %v, want 40", rate)
	}
}

func classify(t *testing.T, clk *sim.Clock, hb *heartbeat.Heartbeat, c *observer.Classifier) observer.Status {
	t.Helper()
	if c.Clock == nil {
		c.Clock = clk
	}
	snap, err := observer.HeartbeatSource(hb).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	return c.Classify(snap)
}

func TestClassifyHealthy(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(8, 12)
	beatSteadily(hb, clk, 20, 100*time.Millisecond)
	st := classify(t, clk, hb, &observer.Classifier{})
	if st.Health != observer.Healthy {
		t.Fatalf("health = %v (%+v)", st.Health, st)
	}
	if !st.RateOK || st.Rate < 9.9 || st.Rate > 10.1 {
		t.Fatalf("rate = %v", st.Rate)
	}
}

func TestClassifySlowAndFast(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(20, 30)
	beatSteadily(hb, clk, 20, 100*time.Millisecond) // 10 beats/s < 20
	if st := classify(t, clk, hb, &observer.Classifier{}); st.Health != observer.Slow {
		t.Fatalf("health = %v, want slow", st.Health)
	}

	hb2, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb2.SetTarget(1, 5)
	beatSteadily(hb2, clk, 20, 100*time.Millisecond) // 10 beats/s > 5
	if st := classify(t, clk, hb2, &observer.Classifier{}); st.Health != observer.Fast {
		t.Fatalf("health = %v, want fast", st.Health)
	}
}

func TestClassifyNoTargetHealthy(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	beatSteadily(hb, clk, 20, 100*time.Millisecond)
	if st := classify(t, clk, hb, &observer.Classifier{}); st.Health != observer.Healthy {
		t.Fatalf("health = %v, want healthy without target", st.Health)
	}
}

func TestClassifyFlatlined(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(8, 12)
	beatSteadily(hb, clk, 20, 100*time.Millisecond)
	// Expected interval at target min 8/s is 125ms; flatline factor 16
	// means > 2s of silence flags it. Advance 10s.
	clk.Advance(10 * time.Second)
	st := classify(t, clk, hb, &observer.Classifier{})
	if st.Health != observer.Flatlined {
		t.Fatalf("health = %v, want flatlined (%+v)", st.Health, st)
	}
	if st.SinceLast != 10*time.Second {
		t.Fatalf("SinceLast = %v", st.SinceLast)
	}
}

func TestClassifyFlatlinedWithoutTarget(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	beatSteadily(hb, clk, 20, 100*time.Millisecond) // measured 10/s
	clk.Advance(time.Minute)
	st := classify(t, clk, hb, &observer.Classifier{})
	if st.Health != observer.Flatlined {
		t.Fatalf("health = %v, want flatlined from measured rate", st.Health)
	}
}

func TestClassifyErratic(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	// Alternate tiny and huge gaps: mean ~0.5s, stddev ~0.5s → CV ~1.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			clk.Advance(5 * time.Millisecond)
		} else {
			clk.Advance(1200 * time.Millisecond)
		}
		hb.Beat()
	}
	st := classify(t, clk, hb, &observer.Classifier{ErraticCV: 0.8})
	if st.Health != observer.Erratic {
		t.Fatalf("health = %v (CV=%v), want erratic", st.Health, st.IntervalCV)
	}
}

func TestClassifyUnknownAndDead(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	epoch := clk.Now()
	c := &observer.Classifier{Clock: clk, Epoch: epoch, Grace: 5 * time.Second}
	snap, _ := observer.HeartbeatSource(hb).Snapshot(0)
	if st := c.Classify(snap); st.Health != observer.Unknown {
		t.Fatalf("health = %v, want unknown inside grace", st.Health)
	}
	clk.Advance(6 * time.Second)
	snap, _ = observer.HeartbeatSource(hb).Snapshot(0)
	if st := c.Classify(snap); st.Health != observer.Dead {
		t.Fatalf("health = %v, want dead after grace", st.Health)
	}
}

func TestHealthString(t *testing.T) {
	names := map[observer.Health]string{
		observer.Unknown:    "unknown",
		observer.Healthy:    "healthy",
		observer.Slow:       "slow",
		observer.Fast:       "fast",
		observer.Erratic:    "erratic",
		observer.Flatlined:  "flatlined",
		observer.Dead:       "dead",
		observer.Health(99): "unknown",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%d.String() = %q, want %q", h, h.String(), want)
		}
	}
}

func TestMonitorRunDeliversStatuses(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, _ := heartbeat.New(10, heartbeat.WithClock(clk))
	hb.SetTarget(8, 12)
	beatSteadily(hb, clk, 20, 100*time.Millisecond)

	var polls atomic.Int32
	got := make(chan observer.Status, 64)
	m := observer.NewMonitor(observer.HeartbeatSource(hb), time.Millisecond, func(st observer.Status) {
		polls.Add(1)
		select {
		case got <- st:
		default:
		}
	}, observer.WithClassifier(&observer.Classifier{Clock: clk}))

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()

	select {
	case st := <-got:
		if st.Health != observer.Healthy {
			t.Fatalf("status = %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no status delivered")
	}
	cancel()
	<-done
	if polls.Load() == 0 {
		t.Fatal("no polls")
	}
}

func TestMonitorPollError(t *testing.T) {
	errSource := sourceFunc(func(int) (observer.Snapshot, error) {
		return observer.Snapshot{}, context.DeadlineExceeded
	})
	m := observer.NewMonitor(errSource, time.Millisecond, nil)
	if _, err := m.Poll(); err == nil {
		t.Fatal("Poll swallowed source error")
	}
}

type sourceFunc func(int) (observer.Snapshot, error)

func (f sourceFunc) Snapshot(n int) (observer.Snapshot, error) { return f(n) }
