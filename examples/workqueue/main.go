// Heartbeat-mediated work queue (§2.5): workers with asymmetric
// capabilities register per-thread heartbeats; the queue manager observes
// each worker's heart rate and sends "approximately the right amount of
// work to its queue", improving on blind round-robin for heterogeneous
// workers. This example runs both policies on real goroutines with real
// work and compares completion times.
//
//	go run ./examples/workqueue
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/heartbeat"
	"repro/internal/parsec"
)

// worker drains its own queue; speed differences model slower remote hosts
// (per-item latency), plus a little real local computation per item.
type worker struct {
	name    string
	thread  *heartbeat.Thread
	latency time.Duration // per-item service latency (higher = slower host)
	queue   chan int
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	kernel := parsec.NewBlackscholes()
	rng := rand.New(rand.NewSource(int64(w.latency)))
	var sink uint64
	for range w.queue {
		for r := 0; r < 50; r++ { // real local work per item
			cs, _ := kernel.DoUnit(rng)
			sink ^= cs
		}
		time.Sleep(w.latency) //hbvet:allow wallclock -- simulates remote-host service time in a real example process
		w.thread.Beat()       // per-thread (local) heartbeat: one per item
	}
	_ = sink
}

func runTrial(policy string, items int) time.Duration {
	hb, err := heartbeat.New(8, heartbeat.WithThreadCapacity(256))
	if err != nil {
		log.Fatal(err)
	}
	defer hb.Close()
	workers := []*worker{
		{name: "fast", latency: time.Millisecond, queue: make(chan int, 2)},
		{name: "medium", latency: 2 * time.Millisecond, queue: make(chan int, 2)},
		{name: "slow", latency: 6 * time.Millisecond, queue: make(chan int, 2)},
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		w.thread = hb.Thread(w.name)
		wg.Add(1)
		go w.run(&wg)
	}

	start := time.Now() //hbvet:allow wallclock -- example measures real elapsed work time
	for i := 0; i < items; i++ {
		var target *worker
		switch policy {
		case "round-robin":
			target = workers[i%len(workers)]
		case "heartbeat":
			// Send to the worker with the highest observed heart rate
			// (fewest seconds of queued work per pending item). Before
			// rates are measurable, deal round-robin.
			best, bestScore := workers[i%len(workers)], -1.0
			for _, w := range workers {
				rate, ok := w.thread.Rate(0)
				if !ok {
					continue
				}
				// Expected wait: queued items ahead divided by the
				// worker's observed service rate.
				score := rate / (float64(len(w.queue)) + 1)
				if score > bestScore {
					best, bestScore = w, score
				}
			}
			target = best
		}
		target.queue <- i
	}
	for _, w := range workers {
		close(w.queue)
	}
	wg.Wait()
	elapsed := time.Since(start) //hbvet:allow wallclock -- closes the real-elapsed measurement opened at start

	fmt.Printf("%-12s finished %d items in %8.1fms — per-worker beats:", policy, items, float64(elapsed.Microseconds())/1000)
	for _, w := range workers {
		fmt.Printf(" %s=%d", w.name, w.thread.Count())
	}
	fmt.Println()
	return elapsed
}

func main() {
	const items = 300
	rr := runTrial("round-robin", items)
	hbT := runTrial("heartbeat", items)
	speedup := float64(rr) / float64(hbT)
	fmt.Printf("\nheartbeat-mediated balancing speedup over round-robin: %.2fx\n", speedup)
	fmt.Println("(round-robin overloads the slow worker; heartbeats route work to whoever is actually making progress)")
}
