package hbshm

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/hbnet"
	"repro/heartbeat"
	"repro/observer"
)

const benchBatch = 256 // records per publish, a typical aggregation batch

// BenchmarkShmVsTCP prices the same observation — identical record batches
// delivered from a publisher to an external observer — over the two local
// transports: the shared-memory ring (plain stores bracketed by seqlock
// words on one side, validated loads on the other) and loopback TCP
// through hbnet (encode, kernel round trip, decode). The stream benches
// measure the transport itself, with no producer in the loop; the
// idle-tick benches price a quiet observer — one atomic load of the
// mapped head versus a poll of the client's delivery channel. make
// bench-shm records both in BENCH_shm.json; the gap is the price of
// crossing the kernel for observation that the paper's shared-memory
// registry exists to avoid.
func BenchmarkShmVsTCP(b *testing.B) {
	b.Run("shm/stream", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.shm")
		w, err := Create(path, 20, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		r, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { r.Close() })
		src := newBenchSource()
		buf := make([]heartbeat.Record, 0, benchBatch)
		var cursor uint64
		b.ReportAllocs()
		b.ResetTimer()
		for received := 0; received < b.N; {
			if err := w.WriteRecords(src.next()); err != nil {
				b.Fatal(err)
			}
			out, cur, err := r.ReadSinceInto(cursor, 0, buf)
			if err != nil {
				b.Fatal(err)
			}
			received += int(cur - cursor) // delivered + lapped, same accounting as the TCP side
			cursor = cur
			buf = out
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("tcp/stream", func(b *testing.B) {
		srv := hbnet.NewServer()
		src := newBenchSource()
		if err := srv.Publish("bench", func(ctx context.Context, since uint64) (observer.Stream, error) {
			return src, nil
		}); err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		b.Cleanup(func() { srv.Close() })
		c, err := hbnet.Dial(l.Addr().String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		b.ReportAllocs()
		b.ResetTimer()
		for received := 0; received < b.N; {
			batch, err := c.Next(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			received += len(batch.Records) + int(batch.Missed)
			c.Recycle(batch)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("shm/idle-tick", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.shm")
		w, err := Create(path, 20, 1<<12)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		r, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		s := StreamFrom(r, 50*time.Microsecond, 0, nil)
		b.Cleanup(func() { s.Close() })
		drain, cancel := context.WithCancel(context.Background())
		cancel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Next(drain); err != context.Canceled {
				b.Fatal(err)
			}
		}
	})

	b.Run("tcp/idle-tick", func(b *testing.B) {
		clk := heartbeat.NewCoarseClock(0)
		b.Cleanup(clk.Stop)
		hb, err := heartbeat.New(20, heartbeat.WithClock(clk))
		if err != nil {
			b.Fatal(err)
		}
		srv := hbnet.NewServer()
		if err := srv.PublishHeartbeat("bench", hb); err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		b.Cleanup(func() { srv.Close() })
		c, err := hbnet.Dial(l.Addr().String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		drain, cancel := context.WithCancel(context.Background())
		cancel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Next(drain); err != context.Canceled {
				b.Fatal(err)
			}
		}
	})
}

// benchSource produces an endless sequence of identical-shape record
// batches — dense seqs, microsecond-spaced timestamps — so both transports
// carry exactly the same payload. It doubles as the TCP side's feed
// (observer.Stream) and the shm side's batch generator, making batch
// construction cost identical in both loops.
type benchSource struct {
	recs []heartbeat.Record
	seq  uint64
	base time.Time
}

func newBenchSource() *benchSource {
	return &benchSource{recs: make([]heartbeat.Record, benchBatch), base: time.Unix(1000, 0)}
}

func (s *benchSource) next() []heartbeat.Record {
	for i := range s.recs {
		s.seq++
		s.recs[i] = heartbeat.Record{Seq: s.seq, Time: s.base.Add(time.Duration(s.seq) * time.Microsecond)}
	}
	return s.recs
}

// Next implements observer.Stream for the TCP feed: an endless pull source
// that always has the next batch ready.
func (s *benchSource) Next(ctx context.Context) (observer.Batch, error) {
	recs := s.next()
	return observer.Batch{Records: recs, Count: s.seq, Window: 20}, nil
}

func (s *benchSource) Close() error { return nil }
