// Package repro is a Go reproduction of "Application Heartbeats for
// Software Performance and Health" (Hoffmann, Eastep, Santambrogio,
// Miller, Agarwal — MIT CSAIL, PPoPP 2010).
//
// The library lives in the subpackages:
//
//   - heartbeat: the Application Heartbeats API (the paper's contribution),
//     with a sharded lock-free beat hot path: per-thread single-producer
//     rings merged by a batched aggregator, a single atomic store per beat
//     in the steady state
//   - heartbeat/compat: Table-1-shaped wrappers for C-reference parity
//   - hbfile: the file-backed ring for cross-process observation
//   - observer: external observation and health classification
//   - control: adaptation policies (threshold stepper, PI, quality ladder)
//   - scheduler: heart-rate-driven core allocation
//   - sim: the deterministic simulated multicore machine
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the per-figure reproduction record. The benchmarks in
// bench_test.go regenerate the paper's tables and figures under go test
// -bench and ablate the main design choices.
package repro
