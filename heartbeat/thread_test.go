package heartbeat_test

import (
	"sync"
	"testing"
	"time"

	"repro/heartbeat"
)

func TestThreadRegistration(t *testing.T) {
	hb, _ := newTestHB(t, 5)
	t1 := hb.Thread("worker-1")
	t2 := hb.Thread("worker-2")
	if t1.ID() == t2.ID() {
		t.Fatalf("thread IDs collide: %d", t1.ID())
	}
	if t1.Name() != "worker-1" || t2.Name() != "worker-2" {
		t.Fatalf("names = %q, %q", t1.Name(), t2.Name())
	}
	ths := hb.Threads()
	if len(ths) != 2 || ths[0] != t1 || ths[1] != t2 {
		t.Fatalf("Threads() = %v", ths)
	}
}

func TestThreadLocalHistoriesArePrivate(t *testing.T) {
	hb, clk := newTestHB(t, 5)
	t1 := hb.Thread("a")
	t2 := hb.Thread("b")
	for i := 0; i < 4; i++ {
		clk.Advance(100 * time.Millisecond)
		t1.BeatTag(int64(i))
	}
	clk.Advance(100 * time.Millisecond)
	t2.Beat()

	if t1.Count() != 4 || t2.Count() != 1 {
		t.Fatalf("counts = %d, %d", t1.Count(), t2.Count())
	}
	if hb.Count() != 0 {
		t.Fatalf("local beats leaked to global history: %d", hb.Count())
	}
	recs := t1.History(10)
	if len(recs) != 4 {
		t.Fatalf("t1 history = %d", len(recs))
	}
	for i, r := range recs {
		if r.Producer != t1.ID() || r.Tag != int64(i) || r.Seq != uint64(i+1) {
			t.Fatalf("t1 record %d = %+v", i, r)
		}
	}
	r, ok := t1.Rate(0)
	if !ok || r < 9.99 || r > 10.01 {
		t.Fatalf("t1 Rate = %v, want 10", r)
	}
	if _, ok := t2.Rate(0); ok {
		t.Fatal("t2 Rate ok with a single beat")
	}
}

func TestThreadGlobalBeatAttribution(t *testing.T) {
	hb, clk := newTestHB(t, 5)
	tr := hb.Thread("worker")
	clk.Advance(time.Millisecond)
	tr.GlobalBeat()
	tr.GlobalBeatTag(9)
	if hb.Count() != 2 {
		t.Fatalf("global Count = %d, want 2", hb.Count())
	}
	if tr.Count() != 0 {
		t.Fatalf("global beats leaked into local history: %d", tr.Count())
	}
	recs := hb.History(2)
	if recs[0].Producer != tr.ID() || recs[1].Tag != 9 {
		t.Fatalf("History = %+v", recs)
	}
}

func TestThreadsConcurrentWithGlobal(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(1<<13))
	if err != nil {
		t.Fatal(err)
	}
	const workers, beats = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := hb.Thread("w")
			for i := 0; i < beats; i++ {
				tr.Beat()
				tr.GlobalBeat()
			}
		}(w)
	}
	wg.Wait()
	if hb.Count() != workers*beats {
		t.Fatalf("global Count = %d, want %d", hb.Count(), workers*beats)
	}
	for _, tr := range hb.Threads() {
		if tr.Count() != beats {
			t.Fatalf("thread Count = %d, want %d", tr.Count(), beats)
		}
	}
}
