package hbshm

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/heartbeat"
)

func testRegion(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "hb.shm")
}

func mkRecord(seq uint64, nanos int64) heartbeat.Record {
	return heartbeat.Record{Seq: seq, Time: time.Unix(0, nanos), Tag: int64(seq) * 10, Producer: int32(seq % 7)}
}

func TestRoundTrip(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var recs []heartbeat.Record
	for seq := uint64(1); seq <= 10; seq++ {
		recs = append(recs, mkRecord(seq, int64(seq)*1e6))
	}
	if err := w.WriteRecords(recs); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Window() != 20 || r.Capacity() != 64 {
		t.Fatalf("window/capacity = %d/%d, want 20/64", r.Window(), r.Capacity())
	}
	if h := r.Head(); h != 10 {
		t.Fatalf("head = %d, want 10", h)
	}
	got, cur, err := r.ReadSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 10 || len(got) != 10 {
		t.Fatalf("ReadSince(0) = %d records, cursor %d; want 10, 10", len(got), cur)
	}
	for i, rec := range got {
		want := recs[i]
		if rec.Seq != want.Seq || !rec.Time.Equal(want.Time) || rec.Tag != want.Tag || rec.Producer != want.Producer {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	// Incremental: nothing new after the cursor.
	got, cur, err = r.ReadSince(cur, 0)
	if err != nil || len(got) != 0 || cur != 10 {
		t.Fatalf("ReadSince(10) = %d records, cursor %d, err %v; want 0, 10, nil", len(got), cur, err)
	}
}

func TestTargetSeqlock(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, ok, err := r.Target(); err != nil || ok {
		t.Fatalf("target before publish: ok=%v err=%v, want unset", ok, err)
	}
	if err := w.WriteTarget(2.5, 7.5); err != nil {
		t.Fatal(err)
	}
	min, max, ok, err := r.Target()
	if err != nil || !ok || min != 2.5 || max != 7.5 {
		t.Fatalf("target = %v..%v ok=%v err=%v, want 2.5..7.5", min, max, ok, err)
	}
}

func TestLappedRecordsCountAsMissed(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// 20 records through a ring of 8: the first 12 are lapped.
	for seq := uint64(1); seq <= 20; seq++ {
		if err := w.WriteRecord(mkRecord(seq, int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, cur, err := r.ReadSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cur != 20 || len(got) != 8 {
		t.Fatalf("ReadSince(0) = %d records, cursor %d; want 8 records, cursor 20", len(got), cur)
	}
	if got[0].Seq != 13 || got[7].Seq != 20 {
		t.Fatalf("retained range = %d..%d, want 13..20", got[0].Seq, got[7].Seq)
	}
	// Loss surfaces as cursor-since exceeding len(records): 20-0-8 = 12.
	if missed := cur - 0 - uint64(len(got)); missed != 12 {
		t.Fatalf("missed = %d, want 12", missed)
	}
}

func TestReadSincePagesWithMax(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.WriteRecord(mkRecord(seq, int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var all []heartbeat.Record
	cur := uint64(0)
	for i := 0; i < 5; i++ {
		recs, c, err := r.ReadSince(cur, 3)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
		cur = c
		if cur == 10 {
			break
		}
	}
	if len(all) != 10 || cur != 10 {
		t.Fatalf("paged read = %d records, cursor %d; want 10, 10", len(all), cur)
	}
}

func TestClosedRegionDrainsThenEOF(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.WriteRecord(mkRecord(seq, int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Published records drain first, then EOF.
	recs, cur, err := r.ReadSince(0, 0)
	if err != nil || len(recs) != 5 || cur != 5 {
		t.Fatalf("drain = %d records, cursor %d, err %v; want 5, 5, nil", len(recs), cur, err)
	}
	if _, _, err := r.ReadSince(cur, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain err = %v, want io.EOF", err)
	}
}

func TestStreamDeliversAndEnds(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 12; seq++ {
		if err := w.WriteRecord(mkRecord(seq, int64(seq))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteTarget(1, 9); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := StreamFrom(r, time.Millisecond, 0, nil)
	defer s.Close()
	b, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 12 || b.Count != 12 || b.Missed != 0 {
		t.Fatalf("batch = %d records, count %d, missed %d; want 12, 12, 0", len(b.Records), b.Count, b.Missed)
	}
	if !b.TargetSet || b.TargetMin != 1 || b.TargetMax != 9 {
		t.Fatalf("target = %v..%v set=%v, want 1..9 set", b.TargetMin, b.TargetMax, b.TargetSet)
	}
	s.Recycle(b)
	w.Close()
	if _, err := s.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("after close err = %v, want io.EOF", err)
	}
}

func TestStreamResyncsOnRecreatedRegion(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 9; seq++ {
		w.WriteRecord(mkRecord(seq, int64(seq)))
	}
	w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// A cursor from a previous, longer life of the producer: the stream
	// must resynchronize from the start instead of stalling forever.
	s := StreamFrom(r, time.Millisecond, 100, nil)
	defer s.Close()
	b, err := s.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 9 || b.Records[0].Seq != 1 {
		t.Fatalf("resync batch = %d records from seq %d; want 9 from 1", len(b.Records), b.Records[0].Seq)
	}
}

// TestExportBridgesHeartbeat runs the batched bridge: a heartbeat with an
// untouched hot path, Export copying it into the region, target range and
// every record (or accounted loss) arriving on the reading side, EOF after
// the heartbeat closes.
func TestExportBridgesHeartbeat(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 20, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.SetTarget(5, 50); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Export(context.Background(), hb, w) }()
	const beats = 20000
	for i := 0; i < beats; i++ {
		hb.Beat()
	}
	hb.Flush()
	hb.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if min, max, ok, err := r.Target(); err != nil || !ok || min != 5 || max != 50 {
		t.Fatalf("target = %v..%v ok=%v err=%v, want 5..50", min, max, ok, err)
	}
	s := StreamFrom(r, time.Millisecond, 0, nil)
	defer s.Close()
	var delivered, missed, head uint64
	for {
		b, err := s.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		delivered += uint64(len(b.Records))
		missed += b.Missed
		head = b.Count
		s.Recycle(b)
	}
	if delivered+missed != beats || head != beats {
		t.Fatalf("delivered %d + missed %d, head %d; want them to account for %d beats", delivered, missed, head, beats)
	}
}

// TestLiveSinkThroughHeartbeat runs the real pipeline: an instrumented
// Heartbeat publishing through WithSink into the shared region, a
// concurrent reader streaming it back, conservation checked at the end.
func TestLiveSinkThroughHeartbeat(t *testing.T) {
	path := testRegion(t)
	w, err := Create(path, 20, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<12), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	const beats = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < beats; i++ {
			hb.Beat()
		}
		hb.Flush()
		hb.Close()
		w.Close()
	}()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := StreamFrom(r, time.Millisecond, 0, nil)
	defer s.Close()
	var delivered, missed uint64
	var head uint64
	for {
		b, err := s.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		delivered += uint64(len(b.Records))
		missed += b.Missed
		if b.Count > head {
			head = b.Count
		}
		s.Recycle(b)
	}
	<-done
	if delivered+missed != beats {
		t.Fatalf("delivered %d + missed %d != %d beats", delivered, missed, beats)
	}
	if head != beats {
		t.Fatalf("final count %d, want %d", head, beats)
	}
}
