package heartbeat

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps for heartbeats. The default clock is the wall
// clock (time.Now). Deterministic tests and the simulated-machine experiments
// inject a manual clock (see package sim).
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// SystemClock returns the wall clock. Timestamps track wall time — external
// observers compare record times against their own clocks to detect
// staleness, so heartbeat timestamps must not drift from the wall across
// suspends or NTP steps. Per-producer monotonicity (never letting a
// thread's beats go backward across a wall step) is enforced by the beat
// paths themselves.
func SystemClock() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) NowNanos() int64 { return time.Now().UnixNano() }

// nanoClock is the fast-timestamp interface the beat hot path probes for:
// clocks that can hand out a Unix-nanosecond reading without constructing a
// time.Time.
type nanoClock interface {
	NowNanos() int64
}

// nanosFunc returns the cheapest available Unix-nanosecond reader for clk.
func nanosFunc(clk Clock) func() int64 {
	if nc, ok := clk.(nanoClock); ok {
		return nc.NowNanos
	}
	return func() int64 { return clk.Now().UnixNano() }
}

// CoarseClock is a cached wall clock: a background goroutine refreshes an
// atomic Unix-nanosecond reading at a fixed resolution, and Now/NowNanos
// just load it. Reading it costs about a nanosecond where time.Now costs
// tens, so it is the clock of choice for beat rates beyond roughly a
// million per second — the sharded hot path degenerates to a single atomic
// store per beat while consecutive beats share a timestamp. Heart rates
// measured over windows spanning many resolution intervals are unaffected
// by the quantization.
//
// Stop releases the refresher goroutine; a stopped clock keeps returning
// its last reading.
type CoarseClock struct {
	nanos atomic.Int64
	stop  chan struct{}
	once  sync.Once
}

// NewCoarseClock starts a coarse clock refreshing every resolution
// (non-positive selects 100µs).
func NewCoarseClock(resolution time.Duration) *CoarseClock {
	if resolution <= 0 {
		resolution = 100 * time.Microsecond
	}
	c := &CoarseClock{stop: make(chan struct{})}
	// Track the wall clock (so cross-process observers can judge
	// staleness against their own clocks) but never step backwards: a
	// backward wall adjustment plateaus the reading until the wall
	// catches up.
	last := time.Now().UnixNano()
	c.nanos.Store(last)
	go func() {
		t := time.NewTicker(resolution)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				if now := time.Now().UnixNano(); now > last {
					last = now
					c.nanos.Store(now)
				}
			}
		}
	}()
	return c
}

// Now implements Clock.
func (c *CoarseClock) Now() time.Time { return time.Unix(0, c.nanos.Load()) }

// NowNanos returns the cached Unix-nanosecond reading.
func (c *CoarseClock) NowNanos() int64 { return c.nanos.Load() }

// Stop halts the refresher goroutine. Stop is idempotent.
func (c *CoarseClock) Stop() { c.once.Do(func() { close(c.stop) }) }
