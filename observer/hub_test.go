package observer_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

func TestHubStepJudgesAllAppsDeterministically(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	mkApp := func(min, max float64) *heartbeat.Heartbeat {
		hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
		if err != nil {
			t.Fatal(err)
		}
		if err := hb.SetTarget(min, max); err != nil {
			t.Fatal(err)
		}
		return hb
	}
	video := mkApp(8, 12)  // will beat at 10/s: healthy
	indexer := mkApp(5, 6) // will beat at 2/s: slow

	var mu sync.Mutex
	fanout := map[string]observer.Health{}
	hub := observer.NewHub(time.Second, func(name string, st observer.Status) {
		mu.Lock()
		fanout[name] = st.Health
		mu.Unlock()
	}, observer.WithHubClassifier(func(string) *observer.Classifier {
		return &observer.Classifier{Clock: clk}
	}))
	if err := hub.Add("video", observer.HeartbeatStream(video)); err != nil {
		t.Fatal(err)
	}
	if err := hub.Add("indexer", observer.HeartbeatStream(indexer)); err != nil {
		t.Fatal(err)
	}
	if err := hub.Add("video", observer.HeartbeatStream(video)); err == nil {
		t.Fatal("duplicate Add accepted")
	}

	for i := 0; i < 40; i++ {
		clk.Advance(100 * time.Millisecond)
		video.Beat()
		if i%5 == 4 {
			indexer.Beat()
		}
	}
	sts := hub.Step()
	if len(sts) != 2 || sts[0].Name != "video" || sts[1].Name != "indexer" {
		t.Fatalf("statuses = %+v", sts)
	}
	if sts[0].Status.Health != observer.Healthy {
		t.Fatalf("video = %+v", sts[0].Status)
	}
	if sts[1].Status.Health != observer.Slow {
		t.Fatalf("indexer = %+v", sts[1].Status)
	}
	mu.Lock()
	defer mu.Unlock()
	if fanout["video"] != observer.Healthy || fanout["indexer"] != observer.Slow {
		t.Fatalf("fanout = %+v", fanout)
	}
	if st, ok := hub.Status("video"); !ok || st.Health != observer.Healthy {
		t.Fatalf("Status(video) = %+v, %v", st, ok)
	}
	if _, ok := hub.Status("nosuch"); ok {
		t.Fatal("Status invented an app")
	}
}

func TestHubStepIsIncremental(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hub := observer.NewHub(time.Second, nil, observer.WithHubClassifier(func(string) *observer.Classifier {
		return &observer.Classifier{Clock: clk}
	}))
	if err := hub.Add("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		clk.Advance(100 * time.Millisecond)
		hb.Beat()
	}
	first := hub.Step()
	if !first[0].Status.RateOK {
		t.Fatalf("first step = %+v", first[0].Status)
	}
	// Nothing new: the second step must keep the judgment (cursor did not
	// reset, no records were re-consumed, rate unchanged).
	second := hub.Step()
	if second[0].Status.Rate != first[0].Status.Rate || second[0].Status.Count != first[0].Status.Count {
		t.Fatalf("idle step drifted: %+v vs %+v", second[0].Status, first[0].Status)
	}
}

func TestHubRunFansOutStatuses(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(1, 1e6)
	statuses := make(chan observer.NamedStatus, 64)
	hub := observer.NewHub(5*time.Millisecond, func(name string, st observer.Status) {
		select {
		case statuses <- observer.NamedStatus{Name: name, Status: st}:
		default:
		}
	})
	if err := hub.Add("live", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { hub.Run(ctx); close(done) }()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				hb.Beat()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	deadline := time.After(10 * time.Second)
	var got observer.NamedStatus
	for healthy := false; !healthy; {
		select {
		case got = <-statuses:
			healthy = got.Name == "live" && got.Status.Health == observer.Healthy
		case <-deadline:
			t.Fatal("hub never judged the live app healthy")
		}
	}
	close(stop)
	cancel()
	<-done
	if got.Status.Count == 0 {
		t.Fatalf("status = %+v", got.Status)
	}
}

func TestHubRunPublishesLowRateShardBeats(t *testing.T) {
	// No WithFlushInterval and a default shard far from its backlog
	// threshold: only the hub pump's periodic re-poll (which merges
	// pending shard records) can publish these beats.
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	tr := hb.Thread("w")
	hub := observer.NewHub(2*time.Millisecond, nil)
	if err := hub.Add("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { hub.Run(ctx); close(done) }()
	tr.GlobalBeat()
	tr.GlobalBeat()
	tr.GlobalBeat()
	deadline := time.After(5 * time.Second)
	for {
		if st, ok := hub.Status("app"); ok && st.Count >= 3 {
			break
		}
		select {
		case <-deadline:
			cancel()
			<-done
			t.Fatal("hub never published the sub-threshold shard beats")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
}

func TestHubRunRestartable(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hub := observer.NewHub(2*time.Millisecond, nil)
	if err := hub.Add("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}

	runOnce := func(wantCount uint64) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { hub.Run(ctx); close(done) }()
		deadline := time.After(5 * time.Second)
		for {
			if st, ok := hub.Status("app"); ok && st.Count >= wantCount {
				break
			}
			select {
			case <-deadline:
				cancel()
				<-done
				t.Fatalf("hub never observed count %d", wantCount)
			case <-time.After(time.Millisecond):
			}
		}
		cancel()
		<-done
	}

	hb.Beat()
	runOnce(1)
	// A second Run must observe new beats: pumps restart after the first
	// Run returns.
	hb.Beat()
	hb.Beat()
	runOnce(3)
}

func TestHubAddWhileRunningAndRemove(t *testing.T) {
	hub := observer.NewHub(2*time.Millisecond, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { hub.Run(ctx); close(done) }()

	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	time.Sleep(5 * time.Millisecond) // Run is live
	if err := hub.Add("late", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	hb.Beat()
	deadline := time.After(5 * time.Second)
	for {
		if st, ok := hub.Status("late"); ok && st.Count > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("late-added app never judged")
		case <-time.After(time.Millisecond):
		}
	}
	hub.Remove("late")
	if _, ok := hub.Status("late"); ok {
		t.Fatal("removed app still reported")
	}
	cancel()
	<-done
}
