package control_test

import (
	"fmt"

	"repro/control"
)

// The paper's external-scheduler policy: one step toward the target window
// per decision.
func ExampleStepper() {
	s := &control.Stepper{TargetMin: 30, TargetMax: 35}
	for _, rate := range []float64{12, 22, 31, 50} {
		fmt.Printf("rate %2.0f -> %s\n", rate, s.Decide(rate, true))
	}
	// Output:
	// rate 12 -> step-up
	// rate 22 -> step-up
	// rate 31 -> hold
	// rate 50 -> step-down
}

// The paper's adaptive-encoder policy: walk an ordered list of
// configurations toward speed until the goal is met.
func ExampleLadder() {
	l := &control.Ladder{MaxLevel: 3, TargetMin: 30}
	for _, rate := range []float64{9, 15, 24, 33, 33} {
		fmt.Printf("rate %2.0f -> level %d\n", rate, l.Decide(rate, true))
	}
	// Output:
	// rate  9 -> level 1
	// rate 15 -> level 2
	// rate 24 -> level 3
	// rate 33 -> level 3
	// rate 33 -> level 3
}

// The model-based extension: invert an Amdahl model and jump straight to
// the smallest core count predicted to meet the goal.
func ExampleAmdahlPlanner() {
	p := &control.AmdahlPlanner{ParallelFrac: 0.95, TargetMin: 8, TargetMax: 10}
	// Observed: 2 beats/s on 1 core of 8.
	fmt.Println("desired cores:", p.DesiredCores(2, true, 1, 8))
	// Output:
	// desired cores: 5
}
