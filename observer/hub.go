package observer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/heartbeat"
)

// DefaultHubInterval is the judgment cadence a Hub falls back to when
// constructed with a non-positive interval.
const DefaultHubInterval = 100 * time.Millisecond

// NamedStatus pairs an application name with its latest Status.
type NamedStatus struct {
	Name   string
	Status Status
}

// Hub multiplexes the heartbeat streams of many named applications into
// one control loop — the §2.4 "organic OS" observer that watches every
// registered application at once, as a library feature instead of a
// hand-rolled loop per deployment. Each application gets its own
// incremental Window and Classifier; the hub fans per-application Status
// judgments out through one callback.
//
// Two driving modes share the same state:
//
//   - Run(ctx) pumps every stream concurrently (one goroutine per
//     stream, each blocked in Next — no polling) into a single loop that
//     re-judges an application when its batches land and re-judges all of
//     them every interval, so silent applications still progress toward
//     Flatlined/Dead.
//   - Step() drains every stream without blocking and returns all
//     judgments, for deterministic (simulated-clock) loops.
//
// Do not mix Run and Step concurrently: streams are single-consumer.
// Add and the status accessors are safe to call at any time.
type Hub struct {
	interval time.Duration
	onStatus func(name string, st Status)
	mkClass  func(name string) *Classifier
	onError  func(name string, err error)
	clk      heartbeat.Clock // nil = wall clock; paces Run's ticks and pumps

	mu     sync.Mutex
	apps   map[string]*hubApp
	order  []string
	runCtx context.Context
	events chan hubEvent
	pumps  sync.WaitGroup
}

type hubApp struct {
	name    string
	stream  Stream
	win     *Window
	cls     *Classifier
	last    Status
	judged  bool
	eof     bool
	pumping bool
	cancel  context.CancelFunc
}

type hubEvent struct {
	app   *hubApp
	batch Batch
	err   error
	eof   bool
}

// HubOption configures NewHub.
type HubOption func(*Hub)

// WithHubClassifier supplies the per-application classifier factory; it is
// invoked once per Add with the application's name. The default is a
// zero-value Classifier per application.
func WithHubClassifier(mk func(name string) *Classifier) HubOption {
	return func(h *Hub) { h.mkClass = mk }
}

// WithHubOnError installs a callback for per-application stream errors
// (default: ignored; a stream that keeps failing surfaces as Flatlined or
// Dead through its silence).
func WithHubOnError(f func(name string, err error)) HubOption {
	return func(h *Hub) { h.onError = f }
}

// WithHubClock runs the hub on an explicit clock: Run's judgment ticks,
// its pump re-poll bounds, and the default classifiers' notion of "now"
// all follow clk — under a virtual clock (sim.Clock) the whole hub becomes
// a deterministic simulation participant. A nil clk is the wall clock.
func WithHubClock(clk heartbeat.Clock) HubOption {
	return func(h *Hub) { h.clk = clk }
}

// NewHub creates a hub that judges every registered application at least
// every interval (interval <= 0 selects DefaultHubInterval) and calls
// onStatus — which may be nil — with each judgment.
func NewHub(interval time.Duration, onStatus func(name string, st Status), opts ...HubOption) *Hub {
	if interval <= 0 {
		interval = DefaultHubInterval
	}
	h := &Hub{
		interval: interval,
		onStatus: onStatus,
		apps:     make(map[string]*hubApp),
		events:   make(chan hubEvent, 64),
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Add registers an application's stream under a unique name. Applications
// may be added while Run is active; their pump starts immediately.
func (h *Hub) Add(name string, stream Stream) error {
	if stream == nil {
		return fmt.Errorf("observer: nil stream for %q", name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.apps[name]; dup {
		return fmt.Errorf("observer: duplicate app %q", name)
	}
	var cls *Classifier
	if h.mkClass != nil {
		cls = h.mkClass(name)
	}
	if cls == nil {
		cls = &Classifier{}
	}
	if cls.Clock == nil {
		cls.Clock = h.clk
	}
	if cls.Epoch.IsZero() {
		cls.Epoch = cls.now()
	}
	a := &hubApp{name: name, stream: stream, win: NewWindow(0), cls: cls}
	h.apps[name] = a
	h.order = append(h.order, name)
	if h.runCtx != nil && h.runCtx.Err() == nil {
		h.startPumpLocked(a)
	}
	return nil
}

// AddSource is Add for code still holding a Source: the source is
// converted to its natural stream via StreamOf. The derived stream is
// closed by Remove (and on registration failure), so AddSource never
// leaks a subscription.
func (h *Hub) AddSource(name string, src Source) error {
	if src == nil {
		return fmt.Errorf("observer: nil source for %q", name)
	}
	stream := StreamOfClock(src, h.interval/4, h.clk)
	if err := h.Add(name, stream); err != nil {
		if c, ok := stream.(io.Closer); ok {
			c.Close()
		}
		return err
	}
	return nil
}

// Remove unregisters an application, stops its pump (if running), and
// releases its stream when the stream supports Close — so repeatedly
// adding and removing live applications leaks nothing.
func (h *Hub) Remove(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.apps[name]
	if !ok {
		return
	}
	if a.cancel != nil {
		a.cancel()
	}
	if c, ok := a.stream.(io.Closer); ok {
		c.Close()
	}
	delete(h.apps, name)
	for i, n := range h.order {
		if n == name {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// Status returns the latest judgment for name; ok is false before the
// first judgment or for an unknown name.
func (h *Hub) Status(name string) (Status, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.apps[name]
	if !ok || !a.judged {
		return Status{}, false
	}
	return a.last, true
}

// Statuses returns the latest judgment of every application, in
// registration order. Applications not yet judged are skipped.
func (h *Hub) Statuses() []NamedStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]NamedStatus, 0, len(h.order))
	for _, name := range h.order {
		if a := h.apps[name]; a.judged {
			out = append(out, NamedStatus{Name: name, Status: a.last})
		}
	}
	return out
}

// Run multiplexes every registered stream until ctx is cancelled. An
// application is re-judged immediately when one of its batches lands (the
// fan-out fires on health changes) and every interval regardless (the
// fan-out fires for every application), so both fast degradation and
// silent death are noticed promptly. When Run returns, every pump has
// exited — the hub may be Run again with a fresh context.
func (h *Hub) Run(ctx context.Context) {
	h.mu.Lock()
	h.runCtx = ctx
	for _, name := range h.order {
		h.startPumpLocked(h.apps[name])
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		for _, a := range h.apps {
			if a.cancel != nil {
				a.cancel()
			}
		}
		h.mu.Unlock()
		h.pumps.Wait() // streams are single-consumer: no pump may outlive Run
	}()
	tick := heartbeat.NewTicker(h.clk, h.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case ev := <-h.events:
			h.handleEvent(ev)
		case <-tick.C():
			tick.Next()
			h.judgeAll(true)
		}
	}
}

// startPumpLocked starts the goroutine that blocks in Next and forwards
// batches to the hub loop. Callers hold h.mu.
func (h *Hub) startPumpLocked(a *hubApp) {
	if a.pumping {
		return
	}
	a.pumping = true
	pctx, cancel := context.WithCancel(h.runCtx)
	a.cancel = cancel
	h.pumps.Add(1)
	go func() {
		defer func() {
			h.mu.Lock()
			a.pumping = false
			h.mu.Unlock()
			h.pumps.Done()
		}()
		for {
			// Bound each wait by the hub interval: re-entering Next is
			// itself a read (an in-process stream's Poll merges pending
			// shard records), so a low-rate app beating through thread
			// shards with no flusher still publishes at least once per
			// interval instead of sitting below the backlog threshold
			// until a wake that may be a long time coming.
			nctx, ncancel := heartbeat.ContextWithTimeout(pctx, h.clk, h.interval)
			b, err := a.stream.Next(nctx)
			ncancel()
			if err == nil {
				select {
				case h.events <- hubEvent{app: a, batch: b}:
				case <-pctx.Done():
					// Shutting down with a batch in hand: absorb it
					// directly so the records (already consumed from the
					// stream's cursor) are not lost across a Run restart.
					h.mu.Lock()
					a.win.Absorb(b)
					h.mu.Unlock()
					return
				}
				continue
			}
			if pctx.Err() != nil {
				return
			}
			if errors.Is(err, context.DeadlineExceeded) {
				continue // idle interval: loop and re-poll
			}
			if errors.Is(err, io.EOF) {
				select {
				case h.events <- hubEvent{app: a, eof: true}:
				case <-pctx.Done():
				}
				return
			}
			select {
			case h.events <- hubEvent{app: a, err: err}:
			case <-pctx.Done():
				return
			}
			// Pace retries against a persistently failing stream.
			select {
			case <-heartbeat.After(h.clk, h.interval):
			case <-pctx.Done():
				return
			}
		}
	}()
}

func (h *Hub) handleEvent(ev hubEvent) {
	h.mu.Lock()
	a := ev.app
	// Identity, not name: after Remove("x")+Add("x") an in-flight event
	// from the removed app must not be attributed to its successor.
	if live, ok := h.apps[a.name]; !ok || live != a {
		h.mu.Unlock()
		return // removed while the event was in flight
	}
	if ev.err != nil {
		cb := h.onError
		h.mu.Unlock()
		if cb != nil {
			cb(a.name, ev.err)
		}
		return
	}
	if ev.eof {
		a.eof = true
		h.mu.Unlock()
		return
	}
	a.win.Absorb(ev.batch)
	st := a.cls.ClassifyWindow(a.win)
	changed := !a.judged || st.Health != a.last.Health
	a.last, a.judged = st, true
	cb := h.onStatus
	h.mu.Unlock()
	if changed && cb != nil {
		cb(a.name, st)
	}
}

// judgeAll reclassifies every application; emit fans every judgment out.
func (h *Hub) judgeAll(emit bool) {
	h.mu.Lock()
	out := make([]NamedStatus, 0, len(h.order))
	for _, name := range h.order {
		a := h.apps[name]
		st := a.cls.ClassifyWindow(a.win)
		a.last, a.judged = st, true
		out = append(out, NamedStatus{Name: name, Status: st})
	}
	cb := h.onStatus
	h.mu.Unlock()
	if emit && cb != nil {
		for _, ns := range out {
			cb(ns.Name, ns.Status)
		}
	}
}

// Step drains every stream without blocking, re-judges every application,
// fans the judgments out, and returns them in registration order — the
// deterministic alternative to Run for simulated-clock loops. Stream
// errors are routed to the WithHubOnError callback, like Run's pumps; the
// affected application is judged from its last good window.
func (h *Hub) Step() []NamedStatus {
	type appErr struct {
		name string
		err  error
	}
	h.mu.Lock()
	var failed []appErr
	for _, name := range h.order {
		a := h.apps[name]
		if a.eof {
			continue
		}
		eof, err := DrainInto(a.stream, a.win)
		if eof {
			a.eof = true
		}
		if err != nil {
			failed = append(failed, appErr{name, err})
		}
	}
	onError := h.onError
	h.mu.Unlock()
	if onError != nil {
		for _, f := range failed {
			onError(f.name, f.err)
		}
	}
	h.judgeAll(true)
	h.mu.Lock()
	out := make([]NamedStatus, 0, len(h.order))
	for _, name := range h.order {
		out = append(out, NamedStatus{Name: name, Status: h.apps[name].last})
	}
	h.mu.Unlock()
	return out
}
