package sim

import (
	"fmt"
	"sync"
	"time"
)

// Work is one unit of application work to execute on a Machine.
type Work struct {
	// Ops is the abstract operation count of the unit. For the real
	// computational kernels in this repository, Ops is derived from the
	// kernel's actual inner-loop counts (e.g. SAD evaluations for the
	// video encoder), so heavier configurations really cost more.
	Ops float64
	// ParallelFrac is the Amdahl-law parallel fraction of the unit in
	// [0, 1]: the share of its operations that scales with core count.
	ParallelFrac float64
}

// Speedup returns the Amdahl-law speedup of a workload with the given
// parallel fraction on the given number of cores: 1/((1-p) + p/c).
// Non-positive core counts yield 0.
func Speedup(cores int, parallelFrac float64) float64 {
	if cores <= 0 {
		return 0
	}
	p := parallelFrac
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return 1 / ((1 - p) + p/float64(cores))
}

// Machine is a simulated multicore processor. An external scheduler grants
// it between 1 and MaxCores cores via SetCores; fault injection removes
// cores from the pool entirely via FailCores (the paper's "core death").
// Executing work advances the machine's clock by the modeled duration.
// All methods are safe for concurrent use.
type Machine struct {
	clock *Clock

	mu         sync.Mutex
	totalCores int
	failed     int
	granted    int     // cores granted by the scheduler (before failures)
	coreRate   float64 // ops per second per core at nominal frequency

	dvfs dvfsState
}

// NewMachine returns a Machine with the given physical core count and
// per-core execution rate in ops/second. All cores start granted and
// healthy. It panics on non-positive arguments.
func NewMachine(clock *Clock, cores int, coreRate float64) *Machine {
	if clock == nil {
		panic("sim: nil clock")
	}
	if cores <= 0 || coreRate <= 0 {
		panic(fmt.Sprintf("sim: invalid machine (cores=%d, coreRate=%g)", cores, coreRate))
	}
	return &Machine{clock: clock, totalCores: cores, granted: cores, coreRate: coreRate}
}

// Clock returns the machine's clock.
func (m *Machine) Clock() *Clock { return m.clock }

// TotalCores returns the physical core count, including failed cores.
func (m *Machine) TotalCores() int { return m.totalCores }

// MaxCores returns the number of currently healthy cores — the most a
// scheduler can usefully grant.
func (m *Machine) MaxCores() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalCores - m.failed
}

// Cores returns the effective core count: the granted cores that are still
// healthy, at least 1 while any core is healthy.
func (m *Machine) Cores() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.effectiveLocked()
}

func (m *Machine) effectiveLocked() int {
	avail := m.totalCores - m.failed
	if avail <= 0 {
		return 0
	}
	eff := m.granted
	if eff > avail {
		eff = avail
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}

// SetCores grants n cores to the application, clamped to [1, MaxCores].
// It returns the effective allocation.
func (m *Machine) SetCores(n int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	avail := m.totalCores - m.failed
	if n < 1 {
		n = 1
	}
	if n > avail && avail > 0 {
		n = avail
	}
	m.granted = n
	return m.effectiveLocked()
}

// FailCores removes n cores from the healthy pool, simulating core death,
// and returns how many cores actually failed: failing more cores than
// remain healthy clamps, so the return value can be less than n (zero on a
// fully dead machine).
func (m *Machine) FailCores(n int) int {
	if n < 0 {
		panic("sim: negative core failure count")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	before := m.failed
	m.failed += n
	if m.failed > m.totalCores {
		m.failed = m.totalCores
	}
	return m.failed - before
}

// Restore heals all failed cores.
func (m *Machine) Restore() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failed = 0
}

// FailedCores returns how many cores have failed.
func (m *Machine) FailedCores() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Duration returns the modeled execution time of w on the current
// effective core allocation and frequency, without executing it.
func (m *Machine) Duration(w Work) time.Duration {
	m.mu.Lock()
	cores := m.effectiveLocked()
	rate := m.coreRate
	m.mu.Unlock()
	return workDuration(w, cores, rate*m.dvfs.frequency())
}

func workDuration(w Work, cores int, coreRate float64) time.Duration {
	if w.Ops <= 0 {
		return 0
	}
	s := Speedup(cores, w.ParallelFrac)
	if s <= 0 {
		// No healthy cores: the work never completes. Model as an
		// effectively infinite stall; callers detect it via heart-rate
		// flatline, exactly as the paper's health monitors would.
		return time.Hour * 24 * 365
	}
	secs := w.Ops / (coreRate * s)
	return time.Duration(secs * float64(time.Second))
}

// Execute runs w to completion: the clock advances by the modeled
// duration, and the energy drawn by the active cores is accumulated (see
// Energy).
func (m *Machine) Execute(w Work) {
	m.clock.Advance(m.executeDVFS(w))
}
