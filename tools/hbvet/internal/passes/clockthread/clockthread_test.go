package clockthread_test

import (
	"testing"

	"repro/tools/hbvet/internal/analysistest"
	"repro/tools/hbvet/internal/passes/clockthread"
)

func TestClockthread(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clockthread.Analyzer, "ct")
}
