package control

import (
	"testing"
	"testing/quick"

	"repro/sim"
)

func TestPlannerHoldsInWindow(t *testing.T) {
	p := &AmdahlPlanner{ParallelFrac: 0.95, TargetMin: 8, TargetMax: 10}
	if got := p.DesiredCores(9, true, 5, 8); got != 5 {
		t.Fatalf("in-window desired = %d, want hold at 5", got)
	}
	if got := p.DesiredCores(0, false, 5, 8); got != 5 {
		t.Fatalf("no-measurement desired = %d, want hold", got)
	}
}

// On an exactly-Amdahl plant the planner lands in the window in one jump.
func TestPlannerOneShotConvergence(t *testing.T) {
	const base = 2.0 // 1-core rate
	const p = 0.95
	plant := func(c int) float64 { return base * sim.Speedup(c, p) }
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 8, TargetMax: 10}
	cores := 1
	cores = planner.DesiredCores(plant(cores), true, cores, 8)
	rate := plant(cores)
	if rate < 8 || rate > 10.5 {
		t.Fatalf("after one decision: %d cores, %.2f beats/s", cores, rate)
	}
	// And it holds there.
	if got := planner.DesiredCores(rate, true, cores, 8); got != cores {
		t.Fatalf("second decision moved to %d", got)
	}
}

// The planner picks the MINIMUM core count that reaches the window — the
// paper's minimum-resource goal.
func TestPlannerPicksMinimumCores(t *testing.T) {
	const base, p = 2.0, 0.95
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 8, TargetMax: 10}
	got := planner.DesiredCores(base*sim.Speedup(8, p), true, 8, 8)
	// Find the true minimum.
	want := 0
	for c := 1; c <= 8; c++ {
		if base*sim.Speedup(c, p) >= 8 {
			want = c
			break
		}
	}
	if got != want {
		t.Fatalf("planner chose %d cores, minimum is %d", got, want)
	}
}

// The step-down direction: when the observed rate is above the window the
// planner must land on the smallest allocation predicted inside
// [TargetMin, TargetMax], not merely the smallest reaching TargetMin.
func TestPlannerStepsDownIntoWindow(t *testing.T) {
	const base, p = 2.0, 0.95
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 8, TargetMax: 10}
	// Running flat out on all 8 cores: well above the window.
	rate := base * sim.Speedup(8, p)
	if rate <= planner.TargetMax {
		t.Fatalf("test setup: rate %.2f not above window", rate)
	}
	got := planner.DesiredCores(rate, true, 8, 8)
	want := 0
	for c := 1; c <= 8; c++ {
		if pr := base * sim.Speedup(c, p); pr >= 8 && pr <= 10 {
			want = c
			break
		}
	}
	if want == 0 {
		t.Fatalf("test setup: no in-window allocation exists")
	}
	if got != want {
		t.Fatalf("step-down chose %d cores (predicted %.2f), want %d (predicted %.2f)",
			got, base*sim.Speedup(got, p), want, base*sim.Speedup(want, p))
	}
	// And it holds once in the window.
	if hold := planner.DesiredCores(base*sim.Speedup(got, p), true, got, 8); hold != got {
		t.Fatalf("post-step-down decision moved %d -> %d", got, hold)
	}
}

// With coarse speedup steps that straddle the window (no allocation is
// predicted in-window), the planner must pick the smallest count meeting
// TargetMin — never the near miss below, which would pin the application
// under its advertised minimum — and then hold there: no oscillation.
func TestPlannerStraddledWindowMeetsGoalStably(t *testing.T) {
	const p = 0.9
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 10, TargetMax: 12}
	// Plant base rate 9.75: predicted(1) = 9.75 (just below the window),
	// predicted(2) ≈ 17.7 (above it). Nothing lands inside.
	const base = 9.75
	plant := func(c int) float64 { return base * sim.Speedup(c, p) }

	// Step-down direction (far above the window) and step-up direction
	// (starving at 1 core) must converge on the same goal-meeting count.
	if got := planner.DesiredCores(plant(4), true, 4, 8); got != 2 {
		t.Fatalf("straddled step-down: chose %d cores (predicted %.2f), want 2", got, plant(got))
	}
	if got := planner.DesiredCores(plant(1), true, 1, 8); got != 2 {
		t.Fatalf("straddled step-up: chose %d cores (predicted %.2f), want 2", got, plant(got))
	}
	// And it is a fixed point: over-target at the chosen count, the next
	// decision stays rather than ping-ponging below the minimum.
	if got := planner.DesiredCores(plant(2), true, 2, 8); got != 2 {
		t.Fatalf("straddled hold: moved 2 -> %d", got)
	}
}

func TestPlannerUnreachableTargetSaturates(t *testing.T) {
	planner := &AmdahlPlanner{ParallelFrac: 0.5, TargetMin: 100, TargetMax: 200}
	if got := planner.DesiredCores(1, true, 1, 8); got != 8 {
		t.Fatalf("unreachable target desired = %d, want max 8", got)
	}
}

// Property: the planner's output is always within [1, max], and when the
// plant truly is Amdahl with the assumed fraction and the window is
// reachable, the predicted rate at the chosen allocation meets TargetMin.
func TestPlannerSoundnessProperty(t *testing.T) {
	f := func(baseRaw uint8, pRaw uint8, curRaw uint8) bool {
		base := 0.5 + float64(baseRaw)/16
		p := float64(pRaw%90) / 100
		cur := int(curRaw)%8 + 1
		planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: base * 2, TargetMax: base * 3}
		rate := base * sim.Speedup(cur, p)
		got := planner.DesiredCores(rate, true, cur, 8)
		if got < 1 || got > 8 {
			return false
		}
		reachable := base*sim.Speedup(8, p) >= planner.TargetMin
		if reachable && rate < planner.TargetMin {
			// The chosen allocation must be predicted to reach the goal.
			return base*sim.Speedup(got, p) >= planner.TargetMin-1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
