package hbnet

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// Fuzz targets for the wire codec: the decoders face bytes from the
// network, so they must never panic, never allocate absurdly, and — when
// they do accept a frame — decode it to a value that re-encodes to the
// same meaning (the round-trip stability property the hand-written tests
// check on friendly inputs, extended to adversarial ones). Seed corpus:
// the encodings the round-trip tests exercise.

// fuzzSeedBatch is a representative batch covering the encoder's paths:
// targets set, missed records, negative tags, non-dense foreign seqs.
func fuzzSeedBatch() observer.Batch {
	base := time.Unix(1234, 567)
	return observer.Batch{
		Count:     1007,
		Window:    20,
		Missed:    3,
		TargetMin: 5.5, TargetMax: 99.25, TargetSet: true,
		Records: []heartbeat.Record{
			{Seq: 5, Time: base, Tag: -7, Producer: 2},
			{Seq: 6, Time: base.Add(time.Millisecond), Tag: 0, Producer: 0},
			{Seq: 100, Time: base.Add(-time.Second), Tag: 1 << 40, Producer: 31},
		},
	}
}

func fuzzSeedRollups() RollupBatch {
	base := time.Unix(1234, 567)
	return RollupBatch{
		Cursor: 42,
		Missed: 3,
		Rollups: []observer.Rollup{
			{
				App: "video", Start: base, End: base.Add(time.Second),
				Records: 100, Missed: 2, Count: 102,
				Rate: heartbeat.Rate{PerSec: 99.5, Beats: 100, Span: 995 * time.Millisecond,
					FirstSeq: 3, LastSeq: 102},
				RateOK:      true,
				MinInterval: 9 * time.Millisecond, MaxInterval: 11 * time.Millisecond,
				MeanInterval: 10 * time.Millisecond,
			},
			{App: "silent", Start: base, End: base.Add(time.Second)},
		},
	}
}

// FuzzDecodeFrame fuzzes every frame decoder through the type-byte
// dispatch a connection reader performs.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendHello(nil, "app", 123))
	f.Add(appendWelcome(nil, 456))
	f.Add(appendError(nil, "feed file mid-recreation", false))
	f.Add(appendError(nil, "unknown feed", true))
	f.Add([]byte{frameEOF})
	f.Add(appendBatch(nil, fuzzSeedBatch(), 1009))
	f.Add(appendBatch(nil, observer.Batch{}, 0))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 {
			return
		}
		body := payload[1:]
		switch payload[0] {
		case frameHello:
			feed, since, err := decodeHello(body)
			if err == nil {
				redecFeed, redecSince, rerr := decodeHello(appendHello(nil, feed, since)[1:])
				if rerr != nil || redecFeed != feed || redecSince != since {
					t.Fatalf("hello not stable: %q/%d -> %q/%d, %v", feed, since, redecFeed, redecSince, rerr)
				}
			}
		case frameWelcome:
			if cursor, err := decodeWelcome(body); err == nil {
				if redec, rerr := decodeWelcome(appendWelcome(nil, cursor)[1:]); rerr != nil || redec != cursor {
					t.Fatalf("welcome not stable: %d -> %d, %v", cursor, redec, rerr)
				}
			}
		case frameError:
			msg, permanent := decodeError(body)
			remsg, reperm := decodeError(appendError(nil, msg, permanent)[1:])
			if remsg != msg || reperm != permanent {
				t.Fatalf("error frame not stable: %q/%v -> %q/%v", msg, permanent, remsg, reperm)
			}
		case frameBatch:
			b, cursor, err := decodeBatch(body)
			if err != nil {
				return
			}
			reenc := appendBatch(nil, b, cursor)
			b2, cursor2, rerr := decodeBatch(reenc[1:])
			if rerr != nil || cursor2 != cursor || !batchEquivalent(b, b2) {
				t.Fatalf("batch not stable:\n in %+v (cursor %d)\nout %+v (cursor %d), %v", b, cursor, b2, cursor2, rerr)
			}
		case frameRollup:
			fuzzRollupBody(t, body)
		}
	})
}

// FuzzDecodeRollup aims the fuzzer squarely at the most intricate decoder.
func FuzzDecodeRollup(f *testing.F) {
	f.Add(appendRollups(nil, fuzzSeedRollups())[1:])
	f.Add(appendRollups(nil, RollupBatch{Cursor: 1})[1:])
	f.Fuzz(fuzzRollupBody)
}

func fuzzRollupBody(t *testing.T, body []byte) {
	rb, err := decodeRollups(body)
	if err != nil {
		return
	}
	reenc := appendRollups(nil, rb)
	rb2, rerr := decodeRollups(reenc[1:])
	if rerr != nil || !rollupsEquivalent(rb, rb2) {
		t.Fatalf("rollup batch not stable:\n in %+v\nout %+v, %v", rb, rb2, rerr)
	}
}

// rollupsEquivalent is DeepEqual up to float bit patterns: the wire
// faithfully carries a NaN rate (the fuzzer found one), and NaN != NaN
// would fail a comparison by value.
func rollupsEquivalent(a, b RollupBatch) bool {
	if a.Cursor != b.Cursor || a.Missed != b.Missed || len(a.Rollups) != len(b.Rollups) {
		return false
	}
	for i := range a.Rollups {
		ra, rb := a.Rollups[i], b.Rollups[i]
		if math.Float64bits(ra.Rate.PerSec) != math.Float64bits(rb.Rate.PerSec) {
			return false
		}
		ra.Rate.PerSec, rb.Rate.PerSec = 0, 0
		if !reflect.DeepEqual(ra, rb) {
			return false
		}
	}
	return true
}

// batchEquivalent compares decoded batches up to timestamp re-encoding:
// times survive as Unix nanoseconds, so compare them that way (a fuzzed
// delta chain can produce any nanosecond value; the meaning is the int64).
func batchEquivalent(a, b observer.Batch) bool {
	if a.Count != b.Count || a.Window != b.Window || a.Missed != b.Missed ||
		a.TargetSet != b.TargetSet || len(a.Records) != len(b.Records) {
		return false
	}
	if a.TargetSet {
		// Compare the bit patterns: NaN targets must round-trip too.
		if math.Float64bits(a.TargetMin) != math.Float64bits(b.TargetMin) ||
			math.Float64bits(a.TargetMax) != math.Float64bits(b.TargetMax) {
			return false
		}
	}
	for i := range a.Records {
		ra, rb := a.Records[i], b.Records[i]
		if ra.Seq != rb.Seq || ra.Tag != rb.Tag || ra.Producer != rb.Producer ||
			ra.Time.UnixNano() != rb.Time.UnixNano() {
			return false
		}
	}
	return true
}
