package x264

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/video"
)

func demandingSource(seed int64) *video.Source {
	return video.NewSource(96, 64, seed, video.Uniform(video.Complexity{Motion: 2.5, Detail: 14, Noise: 3}))
}

// encodeRun encodes n frames and returns the per-frame stats (intra
// excluded from averages by callers as needed).
func encodeRun(t *testing.T, cfg Config, src *video.Source, n int) []FrameStats {
	t.Helper()
	enc := NewEncoder(cfg)
	out := make([]FrameStats, 0, n)
	for i := 0; i < n; i++ {
		f, _ := src.Next()
		st, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, st)
	}
	return out
}

func meanOps(sts []FrameStats) float64 {
	var sum float64
	n := 0
	for _, st := range sts {
		if st.Intra {
			continue
		}
		sum += st.Ops
		n++
	}
	return sum / float64(n)
}

func meanPSNR(sts []FrameStats) float64 {
	var sum float64
	n := 0
	for _, st := range sts {
		if st.Intra {
			continue
		}
		sum += st.PSNR
		n++
	}
	return sum / float64(n)
}

func meanSAD(sts []FrameStats) float64 {
	var sum float64
	n := 0
	for _, st := range sts {
		if st.Intra {
			continue
		}
		sum += float64(st.PredSAD)
		n++
	}
	return sum / float64(n)
}

func TestEncodeRejectsBadDimensions(t *testing.T) {
	enc := NewEncoder(Ladder()[0])
	if _, err := enc.Encode(video.NewFrame(100, 64)); err == nil {
		t.Fatal("width not multiple of 16 accepted")
	}
	if _, err := enc.Encode(video.NewFrame(96, 50)); err == nil {
		t.Fatal("height not multiple of 16 accepted")
	}
}

func TestFirstFrameIsIntra(t *testing.T) {
	sts := encodeRun(t, Ladder()[0], demandingSource(1), 3)
	if !sts[0].Intra {
		t.Fatal("first frame not intra")
	}
	if sts[1].Intra || sts[2].Intra {
		t.Fatal("later frames marked intra")
	}
	if sts[0].FrameIndex != 0 || sts[2].FrameIndex != 2 {
		t.Fatal("frame indices wrong")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := encodeRun(t, Ladder()[3], demandingSource(5), 6)
	b := encodeRun(t, Ladder()[3], demandingSource(5), 6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stats diverge at frame %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// The quality ladder must be strictly decreasing in cost on demanding
// content: this is what makes it a usable actuator for the adaptive
// encoder.
func TestLadderCostStrictlyDecreasing(t *testing.T) {
	const frames = 8
	prev := math.Inf(1)
	for lvl, cfg := range Ladder() {
		ops := meanOps(encodeRun(t, cfg, demandingSource(42), frames))
		if ops >= prev {
			t.Fatalf("ladder level %d (%v) ops %.0f >= previous %.0f", lvl, cfg, ops, prev)
		}
		prev = ops
	}
}

// Quality must not improve as the ladder gets cheaper (small tolerance for
// measurement noise).
func TestLadderQualityMonotone(t *testing.T) {
	const frames = 8
	ladder := Ladder()
	first := meanPSNR(encodeRun(t, ladder[0], demandingSource(42), frames))
	last := meanPSNR(encodeRun(t, ladder[len(ladder)-1], demandingSource(42), frames))
	if last >= first {
		t.Fatalf("lightest level PSNR %.2f >= heaviest %.2f", last, first)
	}
	// The full-quality gap is the paper's Figure 4 regime: fractions of a dB.
	if gap := first - last; gap < 0.1 || gap > 2.0 {
		t.Fatalf("quality gap = %.2f dB, expected within (0.1, 2.0)", gap)
	}
}

// A stronger search must find predictions at least as good (lower SAD).
func TestBetterSearchLowersResidual(t *testing.T) {
	const frames = 8
	strong := Config{Search: Exhaustive, SearchRange: 5, SubpelLevels: 0, RefFrames: 1}
	weak := Config{Search: Diamond, SubpelLevels: 0, RefFrames: 1}
	s := meanSAD(encodeRun(t, strong, demandingSource(9), frames))
	w := meanSAD(encodeRun(t, weak, demandingSource(9), frames))
	if s > w {
		t.Fatalf("exhaustive SAD %.0f > diamond SAD %.0f", s, w)
	}
}

func TestSubpelImprovesPrediction(t *testing.T) {
	const frames = 8
	with := Config{Search: Hex, SubpelLevels: 2, RefFrames: 1}
	without := Config{Search: Hex, SubpelLevels: 0, RefFrames: 1}
	sWith := meanSAD(encodeRun(t, with, demandingSource(11), frames))
	sWithout := meanSAD(encodeRun(t, without, demandingSource(11), frames))
	if sWith >= sWithout {
		t.Fatalf("subpel SAD %.0f >= no-subpel SAD %.0f", sWith, sWithout)
	}
}

func TestMoreReferencesImprovePrediction(t *testing.T) {
	const frames = 10
	one := Config{Search: Hex, SubpelLevels: 0, RefFrames: 1}
	five := Config{Search: Hex, SubpelLevels: 0, RefFrames: 5}
	s1 := meanSAD(encodeRun(t, one, demandingSource(13), frames))
	s5 := meanSAD(encodeRun(t, five, demandingSource(13), frames))
	if s5 > s1 {
		t.Fatalf("5-ref SAD %.0f > 1-ref SAD %.0f", s5, s1)
	}
}

// Exhaustive search must recover an exact integer translation.
func TestExhaustiveFindsExactShift(t *testing.T) {
	w, h := 96, 64
	ref := video.NewFrame(w, h)
	rng := newPRNG(99)
	for i := range ref.Pix {
		ref.Pix[i] = uint8(rng.next())
	}
	const dx, dy = 3, -2
	cur := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Pix[y*w+x] = ref.At(x+dx, y+dy)
		}
	}
	cfg := Config{Search: Exhaustive, SearchRange: 5, RefFrames: 1}
	var n sadCounter
	// Interior block (away from clamped edges).
	best := searchInteger(cfg, cur, ref, 32, 32, &n)
	if best.sad != 0 || int(best.fx) != dx || int(best.fy) != dy {
		t.Fatalf("best = (%v, %v) sad=%d, want (%d, %d) sad=0", best.fx, best.fy, best.sad, dx, dy)
	}
	if n.evals16 != 11*11 {
		t.Fatalf("exhaustive evals = %d, want 121", n.evals16)
	}
}

// Pattern searches find the same translation when it is within reach.
// Unlike the exhaustive test, the content must be smooth: iterative
// patterns descend the SAD surface and need a basin to follow (on white
// noise there is none — which is also why real encoders use them on real
// video, not noise).
func TestPatternSearchesFindNearbyShift(t *testing.T) {
	w, h := 96, 64
	src := video.NewSource(w, h, 7, video.Uniform(video.Complexity{Motion: 0, Detail: 12, Noise: 0}))
	ref, _ := src.Next()
	const dx, dy = 2, 1
	cur := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cur.Pix[y*w+x] = ref.At(x+dx, y+dy)
		}
	}
	for _, algo := range []SearchAlgo{Hex, Diamond} {
		var n sadCounter
		best := searchInteger(Config{Search: algo, RefFrames: 1}, cur, ref, 32, 32, &n)
		if best.sad != 0 {
			t.Fatalf("%v: sad = %d at (%v, %v), want 0", algo, best.sad, best.fx, best.fy)
		}
	}
}

// psnrOf is strictly decreasing in prediction error.
func TestPSNRMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		const pixels = 96 * 64
		return psnrOf(hi*pixels, pixels) < psnrOf(lo*pixels, pixels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateClamps(t *testing.T) {
	c := Config{Search: Exhaustive, SearchRange: 99, SubpelLevels: 9, RefFrames: 42}.validate()
	if c.SearchRange != 16 || c.SubpelLevels != 3 || c.RefFrames != MaxRefFrames {
		t.Fatalf("validate = %+v", c)
	}
	c = Config{SearchRange: -1, SubpelLevels: -1, RefFrames: 0}.validate()
	if c.SearchRange != 1 || c.SubpelLevels != 0 || c.RefFrames != 1 {
		t.Fatalf("validate = %+v", c)
	}
}

func TestSearchAlgoString(t *testing.T) {
	if Exhaustive.String() != "esa" || Hex.String() != "hex" || Diamond.String() != "dia" {
		t.Fatal("SearchAlgo names wrong")
	}
}

func TestResetClearsReferences(t *testing.T) {
	src := demandingSource(3)
	enc := NewEncoder(Ladder()[9])
	f, _ := src.Next()
	if st, _ := enc.Encode(f); !st.Intra {
		t.Fatal("first not intra")
	}
	enc.Reset()
	f, _ = src.Next()
	if st, _ := enc.Encode(f); !st.Intra {
		t.Fatal("frame after Reset not intra")
	}
}

// Tiny deterministic PRNG for test frame content (keeps tests independent
// of math/rand stream changes).
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng { return &prng{s: seed*2685821657736338717 + 1} }

func (p *prng) next() uint64 {
	p.s ^= p.s << 13
	p.s ^= p.s >> 7
	p.s ^= p.s << 17
	return p.s
}
