package hbshm

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/heartbeat"
)

// Reader observes a shared-memory heartbeat region written by another
// process. Readers never coordinate with the writer or with each other —
// every method is a matter of loads from the shared mapping, validated by
// the slot seqlocks — so any number of observers cost the producer
// nothing. Methods are safe for concurrent use.
type Reader struct {
	f        *os.File
	mem      []byte
	capacity uint64
	mask     uint64 // capacity - 1, for slot addressing
	window   uint64
}

// Open maps the shared-memory region at path read-only.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hbshm: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("hbshm: stat: %w", err)
	}
	if st.Size() < HeaderSize {
		f.Close()
		return nil, fmt.Errorf("hbshm: region too small (%d bytes)", st.Size())
	}
	mem, err := mmapFile(f, int(st.Size()), false)
	if err != nil {
		f.Close()
		return nil, err
	}
	capacity, window, err := checkHeader(mem)
	if err != nil {
		munmap(mem)
		f.Close()
		return nil, err
	}
	return &Reader{f: f, mem: mem, capacity: capacity, mask: capacity - 1, window: window}, nil
}

// Window returns the advertised averaging window.
func (r *Reader) Window() int { return int(r.window) }

// Capacity returns the number of retained records.
func (r *Reader) Capacity() int { return int(r.capacity) }

// Head returns the highest published sequence number: one atomic load,
// which is the entire cost of an idle observation tick.
func (r *Reader) Head() uint64 { return wordU64(r.mem, offHead).Load() }

// Closed reports whether the writing process closed the region.
func (r *Reader) Closed() bool { return wordU64(r.mem, offClosed).Load() != 0 }

// Target returns the advertised target heart-rate range; ok is false when
// no target was ever published. Torn reads (writer mid-update) retry.
func (r *Reader) Target() (min, max float64, ok bool, err error) {
	ver := wordU64(r.mem, offTargetVer)
	for {
		v1 := ver.Load()
		if v1 == 0 {
			return 0, 0, false, nil
		}
		if v1%2 == 1 {
			continue // mid-update; retry
		}
		min = math.Float64frombits(wordU64(r.mem, offTargetMin).Load())
		max = math.Float64frombits(wordU64(r.mem, offTargetMax).Load())
		if ver.Load() == v1 {
			return min, max, true, nil
		}
	}
}

// readSlot loads the slot expected to hold seq, seqlock-validated: ok is
// false when the slot is mid-write or holds a different sequence number
// (overwritten, or not yet written).
func (r *Reader) readSlot(seq uint64) (heartbeat.Record, bool) {
	off := slotOff(seq, r.mask)
	sw := wordU64(r.mem, off+recOffSeq)
	for {
		s1 := sw.Load()
		if s1 != seq {
			return heartbeat.Record{}, false
		}
		rec := heartbeat.Record{
			Seq:      seq,
			Time:     unixTime(wordI64(r.mem, off+recOffTime).Load()),
			Tag:      wordI64(r.mem, off+recOffTag).Load(),
			Producer: wordI32(r.mem, off+recOffProducer).Load(),
		}
		if sw.Load() == s1 {
			return rec, true
		}
	}
}

// ReadSince returns up to max records with sequence numbers greater than
// since, oldest to newest, plus the cursor to resume from — the same
// incremental contract as the file ring and the in-process history.
// Records lapped (or otherwise absent) before this reader got to them are
// passed over; the caller detects that loss as cursor-since exceeding
// len(records). Once the writer has closed the region and everything
// published has been delivered, ReadSince returns io.EOF.
func (r *Reader) ReadSince(since uint64, max int) ([]heartbeat.Record, uint64, error) {
	return r.ReadSinceInto(since, max, nil)
}

// ReadSinceInto is ReadSince appending into buf when its capacity suffices
// (nil buf allocates) — the reuse hook that keeps a polling observer
// allocation-free.
func (r *Reader) ReadSinceInto(since uint64, max int, buf []heartbeat.Record) ([]heartbeat.Record, uint64, error) {
	cur := r.Head()
	if cur < since {
		// The caller's cursor is ahead of everything published: it came
		// from a previous life of this region. Report the real head (never
		// EOF) so the caller can detect the regression and resynchronize.
		return nil, cur, nil
	}
	if cur == since {
		if wordU64(r.mem, offClosed).Load() != 0 {
			// The closed flag is published after the final head: re-read
			// head so a close racing this read can never hide the last
			// records behind the EOF.
			if h := r.Head(); h > since {
				cur = h
			} else {
				return nil, cur, io.EOF
			}
		} else {
			return nil, cur, nil
		}
	}
	from := since + 1
	if cur-since > r.capacity {
		from = cur - r.capacity + 1 // lapped: the older records are gone
	}
	if max > 0 && cur-from+1 > uint64(max) {
		cur = from + uint64(max) - 1 // page large backlogs
	}
	out := buf[:0]
	if uint64(cap(out)) < cur-from+1 {
		out = make([]heartbeat.Record, 0, cur-from+1)
	}
	// The scan is readSlot unrolled: one bounds check per slot instead of
	// four, no call overhead — this loop is the transport's entire
	// per-record cost, so it is kept as close to five loads as Go allows.
	//
	// Slots are published before the head advances, so a slot that fails
	// to validate under a head that covers it is permanently gone:
	// mid-overwrite by a lapping writer, lapped before we got here, or
	// never written because the publisher itself skipped the sequence (an
	// upstream loss an exporting bridge passed through). Either way the
	// cursor arithmetic reports it as missed; waiting for it would
	// livelock on publisher-side gaps.
	for seq := from; seq <= cur; seq++ {
		p := unsafe.Pointer(&r.mem[slotOff(seq, r.mask)])
		sw := (*atomic.Uint64)(p)
		for {
			s1 := sw.Load()
			if s1 != seq {
				break
			}
			rec := heartbeat.Record{
				Seq:      seq,
				Time:     unixTime((*atomic.Int64)(unsafe.Add(p, recOffTime)).Load()),
				Tag:      (*atomic.Int64)(unsafe.Add(p, recOffTag)).Load(),
				Producer: (*atomic.Int32)(unsafe.Add(p, recOffProducer)).Load(),
			}
			if sw.Load() == s1 {
				out = append(out, rec)
				break
			}
		}
	}
	return out, cur, nil
}

// Rate returns the average heart rate over the most recent window records
// (window <= 0 selects the advertised default), matching the file ring's
// reporting semantics: beats per second between the first and last record
// of the window. ok is false with fewer than two valid records.
func (r *Reader) Rate(window int) (perSec float64, ok bool, err error) {
	if window <= 0 {
		window = int(r.window)
	}
	head := r.Head()
	if head == 0 {
		return 0, false, nil
	}
	from := uint64(1)
	if head > uint64(window) {
		from = head - uint64(window) + 1
	}
	var first, last heartbeat.Record
	var n int
	for seq := from; seq <= head; seq++ {
		rec, okr := r.readSlot(seq)
		if !okr {
			continue
		}
		if n == 0 {
			first = rec
		}
		last = rec
		n++
	}
	if n < 2 {
		return 0, false, nil
	}
	dt := last.Time.Sub(first.Time).Seconds()
	if dt <= 0 {
		return 0, false, nil
	}
	return float64(n-1) / dt, true, nil
}

func unixTime(nanos int64) time.Time { return time.Unix(0, nanos) }

// Close unmaps the region. Close is idempotent.
func (r *Reader) Close() error {
	if r.mem == nil {
		return r.f.Close()
	}
	err := munmap(r.mem)
	r.mem = nil
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}
