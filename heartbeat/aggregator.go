package heartbeat

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ring"
)

// This file implements the batched aggregator behind the sharded beat hot
// path. Each registered Thread owns a lock-free single-producer shard
// (ring.SP) that GlobalBeat writes into without taking any lock; the
// aggregator merges shard records into the global history — assigning the
// dense global sequence numbers and delivering sink batches — on read, on
// the configured flush interval, or when a producer's backlog reaches half
// its shard capacity. The merge is a k-way merge by timestamp with ties
// broken by shard registration order, so a single-threaded beat schedule
// aggregates into exactly the history a fully serialized store would have
// produced.

// gshard is one producer's shard of the global heartbeat history. Exactly
// one goroutine (the owning Thread's) pushes into it; the aggregator is its
// only consumer.
type gshard struct {
	ring     *ring.SP
	agg      *aggregator
	producer int32
	// soft is the backlog level (in records or in time-index entries) at
	// which the producer itself triggers a flush: half the shard
	// capacity, so unconsumed records are never overwritten and no beat
	// is ever lost.
	soft uint64
	// consumed and entriesConsumed republish the aggregator's cursor
	// position — only once the merged records are visible in the store —
	// so the producer can check backlog pressure with a single atomic
	// load per beat, and hasPending stays true for the whole merge.
	consumed        atomic.Uint64
	entriesConsumed atomic.Uint64
	// countConsumed is the same position republished EARLY, before the
	// store appends land. Count's lock-free estimate subtracts it so a
	// record mid-merge is counted zero times, never twice (an overcount
	// would latch into Count's monotonic clamp permanently).
	countConsumed atomic.Uint64
	cur           ring.Cursor // guarded by agg.mu
}

// beat is the global-beat hot path: a lock-free shard push plus an amortized
// backlog check. It allocates nothing; in the steady state (repeated
// timestamp, tag 0, backlog below the soft limit) it performs a single
// atomic store.
//
//hbvet:hotpath
func (g *gshard) beat(timeNanos, tag int64) {
	seq, newRun := g.ring.Push(timeNanos, tag)
	if seq-g.consumed.Load() >= g.soft {
		g.agg.flush() //hbvet:allow hotpath -- amortized backlog spill: runs once per soft-limit crossing, not per beat
	} else if newRun && g.ring.Entries()-g.entriesConsumed.Load() >= g.soft {
		g.agg.flush() //hbvet:allow hotpath -- amortized time-index spill, same soft-limit cadence
	}
}

// mergeHead is one shard's position in the k-way merge.
type mergeHead struct {
	sh    *gshard
	limit uint64 // shard total snapshot; records beyond it merge next time
	t     int64  // timestamp of the shard's next pending record
}

// aggregator owns the merged global history and the sink once per-thread
// shards exist. All merged-store appends happen under mu; the store itself
// additionally tolerates the lock-free direct-beat path that runs before the
// first Thread is registered.
type aggregator struct {
	mu      sync.Mutex
	st      store
	sink    Sink
	sinkErr *atomic.Pointer[error]
	subs    *subscribers
	nshards atomic.Int32
	shards  []*gshard // guarded by mu; registration order
	// shardsPtr republishes the shards slice copy-on-write so lock-free
	// fast paths (direct beats, Count) can scan backlog atomics without
	// taking mu.
	shardsPtr atomic.Pointer[[]*gshard]
	heads     []mergeHead // merge scratch, reused across flushes
	batch     []Record    // sink-batch scratch, reused across flushes
}

// register creates a shard for a new producer.
func (a *aggregator) register(producer int32, capacity int) *gshard {
	g := &gshard{ring: ring.NewSP(capacity), agg: a, producer: producer, soft: uint64(capacity) / 2}
	if g.soft == 0 {
		g.soft = 1
	}
	g.cur = g.ring.NewCursor()
	a.mu.Lock()
	a.shards = append(a.shards, g)
	snap := make([]*gshard, len(a.shards))
	copy(snap, a.shards)
	a.shardsPtr.Store(&snap)
	a.nshards.Store(int32(len(a.shards)))
	a.mu.Unlock()
	return g
}

// active reports whether any shards exist (and the aggregated path is in
// effect for global state).
func (a *aggregator) active() bool { return a.nshards.Load() > 0 }

// snapshot returns the lock-free view of the registered shards.
func (a *aggregator) snapshot() []*gshard {
	if p := a.shardsPtr.Load(); p != nil {
		return *p
	}
	return nil
}

// hasPending reports, lock-free, whether any shard has unmerged records.
// It reads the late-published consumed counters, which lag until merged
// records are visible in the store, so this answers true for the whole
// duration of a merge — callers fall to the locked path and wait, keeping
// direct beats sequenced after every earlier shard record. The scan is
// O(registered threads) of atomic loads; an aggregate counter would move
// that coordination onto the sharded beat hot path, which is the wrong
// trade.
func (a *aggregator) hasPending() bool {
	for _, sh := range a.snapshot() {
		if sh.ring.Total() != sh.consumed.Load() {
			return true
		}
	}
	return false
}

// pendingEstimate sums shard backlogs lock-free against the early-published
// countConsumed. Reading it before the ring total keeps each term
// non-negative; the sum can transiently undercount records mid-merge, which
// Count compensates for with a monotonic clamp.
func (a *aggregator) pendingEstimate() uint64 {
	var n uint64
	for _, sh := range a.snapshot() {
		c := sh.countConsumed.Load()
		if t := sh.ring.Total(); t > c {
			n += t - c
		}
	}
	return n
}

// flush merges all pending shard records now.
func (a *aggregator) flush() {
	a.mu.Lock()
	a.mergeLocked()
	a.mu.Unlock()
}

// direct appends a record beaten on the global handle itself (producer 0).
// Pending shard records are merged first so global sequence numbers remain
// ordered, and the record reaches the sink before direct returns (the
// synchronous contract of Heartbeat.Beat).
func (a *aggregator) direct(timeNanos, tag int64) {
	a.mu.Lock()
	a.mergeLocked()
	seq := a.st.append(timeNanos, tag, 0)
	if a.sink != nil {
		a.deliver(Record{Seq: seq, Time: time.Unix(0, timeNanos), Tag: tag, Producer: 0})
	}
	a.mu.Unlock()
	a.subs.wake()
}

// pendingLocked counts shard records not yet merged.
func (a *aggregator) pendingLocked() uint64 {
	var n uint64
	for _, sh := range a.shards {
		n += sh.ring.Total() - sh.cur.Consumed()
	}
	return n
}

// minHead returns the index of the head with the smallest timestamp;
// ties resolve to the earliest-registered shard, keeping the merge
// deterministic.
func minHead(heads []mergeHead) int {
	mi := 0
	for i := 1; i < len(heads); i++ {
		if heads[i].t < heads[mi].t {
			mi = i
		}
	}
	return mi
}

// mergeLocked drains every shard up to its current total, materializing
// records into the merged store in timestamp order. When no sink is attached
// and the pending backlog exceeds the history capacity, the surplus oldest
// records — which a bounded history would discard on arrival anyway — are
// consumed run-by-run without materialization, with their sequence numbers
// accounted in bulk.
func (a *aggregator) mergeLocked() {
	heads := a.heads[:0]
	var pending uint64
	for _, sh := range a.shards {
		limit := sh.ring.Total()
		if limit > sh.cur.Consumed() {
			pending += limit - sh.cur.Consumed()
			heads = append(heads, mergeHead{sh: sh, limit: limit, t: sh.cur.PeekTime()})
		}
	}
	if len(heads) == 0 {
		a.heads = heads
		return
	}
	if capn := uint64(a.st.capacity()); a.sink == nil && pending > capn {
		toSkip := pending - capn
		for toSkip > 0 {
			mi := minHead(heads)
			h := &heads[mi]
			n := h.sh.cur.RunLen(h.limit)
			if n > toSkip {
				n = toSkip
			}
			h.sh.cur.Skip(n)
			h.sh.countConsumed.Store(h.sh.cur.Consumed())
			toSkip -= n
			if h.sh.cur.Consumed() >= h.limit {
				heads = append(heads[:mi], heads[mi+1:]...)
			} else {
				h.t = h.sh.cur.PeekTime()
			}
		}
		// The skip advances the store's sequence counter past every
		// retained record before the replacement tail is appended, so
		// a concurrent lock-free reader (a History whose TryLock lost
		// the race) can transiently observe a short or empty history
		// until the appends below land — the documented best-effort
		// degraded read, bounded by the merge duration.
		a.st.skip(pending - capn)
	}
	for len(heads) > 0 {
		mi := minHead(heads)
		h := &heads[mi]
		// Consume the head's whole same-timestamp run at once: every
		// record in it shares the minimal timestamp, so record-by-record
		// selection would keep picking this shard anyway (ties break to
		// the earliest-registered shard). This keeps the merge O(runs)
		// rather than O(records) in shard-head scans.
		run := h.sh.cur.RunLen(h.limit)
		h.sh.countConsumed.Store(h.sh.cur.Consumed() + run)
		for i := uint64(0); i < run; i++ {
			e, _ := h.sh.cur.Next(h.limit)
			seq := a.st.append(e.Time, e.Tag, h.sh.producer)
			if a.sink != nil {
				a.batch = append(a.batch, Record{Seq: seq, Time: time.Unix(0, e.Time), Tag: e.Tag, Producer: h.sh.producer})
			}
		}
		if h.sh.cur.Consumed() >= h.limit {
			heads = append(heads[:mi], heads[mi+1:]...)
		} else {
			h.t = h.sh.cur.PeekTime()
		}
	}
	a.heads = heads[:0]
	for _, sh := range a.shards {
		sh.consumed.Store(sh.cur.Consumed())
		sh.entriesConsumed.Store(sh.cur.EntriesConsumed())
		sh.countConsumed.Store(sh.cur.Consumed())
	}
	if len(a.batch) > 0 {
		a.deliverBatch(a.batch)
		a.batch = a.batch[:0]
	}
	// Records merged above are visible in the store (and past the sink),
	// so blocked subscribers can consume them now. The send is
	// non-blocking, so waking under mu is safe; a subscriber that runs
	// before mu is released simply reads the store lock-free.
	a.subs.wake()
}

func (a *aggregator) deliver(r Record) {
	if err := a.sink.WriteRecord(r); err != nil {
		a.sinkErr.Store(&err)
	}
}

func (a *aggregator) deliverBatch(recs []Record) {
	if bs, ok := a.sink.(BatchSink); ok {
		if err := bs.WriteRecords(recs); err != nil {
			a.sinkErr.Store(&err)
		}
		return
	}
	for _, r := range recs {
		a.deliver(r)
	}
}
