// Multi-application scheduling (§1, §2.4): two heartbeat-enabled
// applications with different goals share one eight-core machine. The
// partitioner sees nothing but heartbeats and advertised target windows,
// yet keeps both applications on goal while one's load shifts — the
// "best global outcome" the paper argues registered goals enable, and the
// scheduling behaviour an "organic OS" would build in.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

func main() {
	clk := sim.NewClock(time.Time{})
	cluster := sim.NewCluster(clk, 8, 1e6)

	mkApp := func(name string, min, max float64, opsFn func(beat uint64) float64, pf float64) (*heartbeat.Heartbeat, *sim.Proc) {
		hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
		if err != nil {
			log.Fatal(err)
		}
		if err := hb.SetTarget(min, max); err != nil {
			log.Fatal(err)
		}
		beat := uint64(0)
		proc := cluster.AddProc(name, 1, func() (sim.Work, bool) {
			if beat > 0 {
				hb.Beat()
			}
			beat++
			return sim.Work{Ops: opsFn(beat), ParallelFrac: pf}, true
		})
		return hb, proc
	}

	// "video": an interactive app that wants 8-10 beats/s; its content
	// gets harder halfway through. "indexer": a background job content
	// with 2-3 beats/s.
	harder := uint64(0)
	videoHB, videoProc := mkApp("video", 8, 10, func(beat uint64) float64 {
		if harder > 0 && beat > harder {
			return 0.58e6
		}
		return 0.42e6
	}, 0.95)
	indexHB, indexProc := mkApp("indexer", 2, 3, func(uint64) float64 { return 0.8e6 }, 0.90)

	part, err := scheduler.NewPartitioner(8, 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := part.Add("video", observer.HeartbeatSource(videoHB), videoProc.SetCores, 1); err != nil {
		log.Fatal(err)
	}
	if err := part.Add("indexer", observer.HeartbeatSource(indexHB), indexProc.SetCores, 1); err != nil {
		log.Fatal(err)
	}

	fmt.Println("decision  video: rate cores [goal 8-10]   indexer: rate cores [goal 2-3]   free")
	for step := 1; step <= 200; step++ {
		if step == 80 {
			harder = videoHB.Count()
			fmt.Println("-- video content becomes ~1.4x harder --")
		}
		cluster.RunUntil(clk.Now().Add(2 * time.Second))
		sts, err := part.Step()
		if err != nil {
			log.Fatal(err)
		}
		if step%20 == 0 || step == 81 || step == 82 {
			fmt.Printf("%8d  %12.2f %5d   %18.2f %5d   %4d\n",
				step, sts[0].Rate, sts[0].Cores, sts[1].Rate, sts[1].Cores, part.Free())
		}
	}
	fmt.Println("\nboth goals held through the load shift; unused cores stay free for other work")
}
