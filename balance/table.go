package balance

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultBuckets is the bucket-table size used by New unless WithBuckets
// overrides it. 1024 buckets keep the remap granularity under 0.1% per
// bucket while a full rebuild stays a few thousand float multiplies.
const DefaultBuckets = 1024

// Option configures a Table.
type Option func(*Table)

// WithBuckets sets the bucket-table size, rounded up to a power of two
// (minimum 8). More buckets mean finer-grained weight resolution and a
// remap fraction closer to its expectation; the per-request cost does not
// change.
func WithBuckets(n int) Option {
	return func(t *Table) {
		if n < 8 {
			n = 8
		}
		p := 8
		for p < n {
			p <<= 1
		}
		t.nbuckets = p
	}
}

// Table is the lock-free selector: a fixed space of hash buckets, each
// owned by one node, assigned by weighted rendezvous hashing. Readers call
// Pick, which is one atomic pointer load plus a hash — no locks, no
// allocations, safe from any number of goroutines. Writers (Set, Remove)
// serialize among themselves, rebuild the assignment copy-on-write, and
// publish it with a single atomic swap; a Pick racing a swap sees either
// the old table or the new one, never a mix.
//
// Weighted rendezvous gives two properties the balancer leans on:
//
//   - Minimal disruption: changing one node's weight moves only buckets
//     that node gains or loses — never a bucket between two unchanged
//     nodes. The expected moved fraction is |Δw|/total weight.
//   - Exact reclaim: the assignment is a pure function of the
//     (node, weight) set, so restoring a drained node to its old weight
//     restores the identical bucket assignment it had before.
type Table struct {
	nbuckets int

	state atomic.Pointer[tableState]

	// mu serializes writers; the cached per-node score arrays are only
	// touched under it.
	mu     sync.Mutex
	scores map[string][]float64
}

// tableState is one immutable published assignment.
type tableState struct {
	nodes   []string  // sorted
	weights []float64 // parallel to nodes
	assign  []int32   // bucket -> index into nodes; -1 when no node has weight
}

// Swap describes one published table change: the node whose weight
// changed, its old and new weight, and exactly how much of the key space
// moved owner as a result.
type Swap struct {
	Node     string
	Old, New float64
	// Remapped counts buckets whose owner changed, out of Buckets total.
	Remapped int
	Buckets  int
	// Share is |New-Old| divided by the larger of the total weight before
	// and after — the expected fraction of the key space this change
	// moves. Frac() should land near it; invariant checks bound Frac()
	// by a small multiple of Share.
	Share float64
}

// Frac returns the measured fraction of the key space the swap remapped.
func (s Swap) Frac() float64 {
	if s.Buckets == 0 {
		return 0
	}
	return float64(s.Remapped) / float64(s.Buckets)
}

// New returns an empty table. Pick on an empty table reports no node.
func New(opts ...Option) *Table {
	t := &Table{nbuckets: DefaultBuckets, scores: make(map[string][]float64)}
	for _, o := range opts {
		o(t)
	}
	t.state.Store(&tableState{assign: emptyAssign(t.nbuckets)})
	return t
}

func emptyAssign(n int) []int32 {
	a := make([]int32, n)
	for i := range a {
		a[i] = -1
	}
	return a
}

// Pick returns the node owning key's bucket. It is the per-request path:
// one atomic load, one hash, one index — lock-free and allocation-free.
// ok is false when no node currently holds weight.
//
//hbvet:hotpath
func (t *Table) Pick(key uint64) (node string, ok bool) {
	s := t.state.Load()
	i := s.assign[splitmix64(key)&uint64(len(s.assign)-1)]
	if i < 0 {
		return "", false
	}
	return s.nodes[i], true
}

// PickString is Pick over a string key (an URL path, a session id),
// hashed with FNV-1a — still allocation-free.
//
//hbvet:hotpath
func (t *Table) PickString(key string) (node string, ok bool) {
	return t.Pick(hashString(key))
}

// Set gives node the given weight (clamped to [0,1]; a new node is added,
// weight 0 keeps it as a member owning nothing — a drain) and publishes
// the rebuilt table. The returned Swap reports what moved.
func (t *Table) Set(node string, weight float64) Swap {
	if weight < 0 || math.IsNaN(weight) {
		weight = 0
	} else if weight > 1 {
		weight = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	old := t.state.Load()
	nodes, weights, oldW := withWeight(old, node, weight)
	return t.publish(old, nodes, weights, node, oldW, weight)
}

// Remove drops node from the table entirely and publishes the rebuilt
// assignment. Equivalent to Set(node, 0) for routing purposes; Remove
// additionally forgets the node and frees its cached scores.
func (t *Table) Remove(node string) Swap {
	t.mu.Lock()
	defer t.mu.Unlock()

	old := t.state.Load()
	oldW := 0.0
	nodes := make([]string, 0, len(old.nodes))
	weights := make([]float64, 0, len(old.nodes))
	for i, n := range old.nodes {
		if n == node {
			oldW = old.weights[i]
			continue
		}
		nodes = append(nodes, n)
		weights = append(weights, old.weights[i])
	}
	delete(t.scores, node)
	return t.publish(old, nodes, weights, node, oldW, 0)
}

// withWeight returns old's membership with node set to weight, inserting
// it in sorted position when new. oldW is the node's previous weight.
func withWeight(old *tableState, node string, weight float64) (nodes []string, weights []float64, oldW float64) {
	i := sort.SearchStrings(old.nodes, node)
	if i < len(old.nodes) && old.nodes[i] == node {
		oldW = old.weights[i]
		nodes = append([]string(nil), old.nodes...)
		weights = append([]float64(nil), old.weights...)
		weights[i] = weight
		return nodes, weights, oldW
	}
	nodes = make([]string, 0, len(old.nodes)+1)
	weights = make([]float64, 0, len(old.nodes)+1)
	nodes = append(append(nodes, old.nodes[:i]...), node)
	nodes = append(nodes, old.nodes[i:]...)
	weights = append(append(weights, old.weights[:i]...), weight)
	weights = append(weights, old.weights[i:]...)
	return nodes, weights, 0
}

// publish rebuilds the assignment for the new membership, swaps it in,
// and accounts the change against the previous state. Callers hold t.mu.
func (t *Table) publish(old *tableState, nodes []string, weights []float64, node string, oldW, newW float64) Swap {
	next := &tableState{nodes: nodes, weights: weights, assign: t.rebuild(nodes, weights)}
	remapped := 0
	for b := range next.assign {
		if ownerName(old, old.assign[b]) != ownerName(next, next.assign[b]) {
			remapped++
		}
	}
	t.state.Store(next)

	var tb, ta float64
	for _, w := range old.weights {
		tb += w
	}
	for _, w := range weights {
		ta += w
	}
	share := 0.0
	if m := math.Max(tb, ta); m > 0 {
		share = math.Abs(newW-oldW) / m
	}
	return Swap{Node: node, Old: oldW, New: newW, Remapped: remapped, Buckets: t.nbuckets, Share: share}
}

func ownerName(s *tableState, i int32) string {
	if i < 0 {
		return ""
	}
	return s.nodes[i]
}

// rebuild computes the weighted-rendezvous assignment: bucket b belongs to
// the node maximizing weight × g(node, b), where g is a deterministic
// per-(node, bucket) draw from an exponential-like distribution
// (-1/ln(u), u uniform in (0,1)). Scores of unchanged nodes never change,
// which is what makes disruption minimal and reclaim exact. Callers hold
// t.mu (the score cache).
func (t *Table) rebuild(nodes []string, weights []float64) []int32 {
	assign := emptyAssign(t.nbuckets)
	best := make([]float64, t.nbuckets)
	for i, n := range nodes {
		w := weights[i]
		if w <= 0 {
			continue
		}
		g := t.gscores(n)
		for b := 0; b < t.nbuckets; b++ {
			if s := w * g[b]; s > best[b] {
				best[b] = s
				assign[b] = int32(i)
			}
		}
	}
	return assign
}

// gscores returns node's cached per-bucket rendezvous draws, computing
// them once per node name. Deterministic: recomputing after eviction (or
// in a different process) yields the same draws.
func (t *Table) gscores(node string) []float64 {
	if g, ok := t.scores[node]; ok {
		return g
	}
	g := make([]float64, t.nbuckets)
	h := hashString(node)
	for b := range g {
		v := splitmix64(h + uint64(b+1)*0x9E3779B97F4A7C15)
		// u strictly inside (0,1): 53 mantissa bits, offset by half an ulp.
		u := (float64(v>>11) + 0.5) * (1.0 / (1 << 53))
		g[b] = -1 / math.Log(u)
	}
	t.scores[node] = g
	return g
}

// Weight returns node's current weight (0 when absent).
func (t *Table) Weight(node string) float64 {
	s := t.state.Load()
	i := sort.SearchStrings(s.nodes, node)
	if i < len(s.nodes) && s.nodes[i] == node {
		return s.weights[i]
	}
	return 0
}

// Weights returns a copy of the current node → weight map.
func (t *Table) Weights() map[string]float64 {
	s := t.state.Load()
	m := make(map[string]float64, len(s.nodes))
	for i, n := range s.nodes {
		m[n] = s.weights[i]
	}
	return m
}

// Nodes returns the current member names, sorted.
func (t *Table) Nodes() []string {
	s := t.state.Load()
	return append([]string(nil), s.nodes...)
}

// Buckets returns the bucket-table size.
func (t *Table) Buckets() int { return t.nbuckets }

// splitmix64 is the SplitMix64 finalizer: a full-avalanche mix of one
// 64-bit word, used both to spread Pick keys across buckets and to derive
// the per-(node, bucket) rendezvous draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a over the key's bytes — allocation-free on the Pick
// path.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
