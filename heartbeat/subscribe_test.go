package heartbeat_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

func TestReadSinceIncremental(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts []heartbeat.Option
	}{
		{"lockfree", nil},
		{"locked", []heartbeat.Option{heartbeat.WithLockedStore()}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			clk := sim.NewClock(time.Time{})
			hb, err := heartbeat.New(10, append(variant.opts, heartbeat.WithClock(clk), heartbeat.WithCapacity(64))...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				clk.Advance(time.Millisecond)
				hb.BeatTag(int64(i))
			}
			recs, cur := hb.ReadSince(0)
			if len(recs) != 5 || cur != 5 {
				t.Fatalf("ReadSince(0) = %d records, cursor %d; want 5, 5", len(recs), cur)
			}
			for i, r := range recs {
				if r.Seq != uint64(i+1) || r.Tag != int64(i) {
					t.Fatalf("record %d = %+v", i, r)
				}
			}
			// Idle: cursor unchanged, nothing returned.
			recs, cur2 := hb.ReadSince(cur)
			if len(recs) != 0 || cur2 != cur {
				t.Fatalf("idle ReadSince = %d records, cursor %d", len(recs), cur2)
			}
			// Only the delta comes back.
			hb.Beat()
			recs, cur3 := hb.ReadSince(cur2)
			if len(recs) != 1 || recs[0].Seq != 6 || cur3 != 6 {
				t.Fatalf("delta ReadSince = %+v, cursor %d", recs, cur3)
			}
		})
	}
}

func TestReadSinceSeesUnflushedShardBeats(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	for i := 0; i < 3; i++ {
		tr.GlobalBeat()
	}
	// No explicit Flush: ReadSince merges the pending shard records, like
	// History does.
	recs, cur := hb.ReadSince(0)
	if len(recs) != 3 || cur != 3 {
		t.Fatalf("ReadSince = %d records, cursor %d; want 3, 3", len(recs), cur)
	}
}

func TestReadSinceOverwriteReportsLoss(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(2, heartbeat.WithClock(clk), heartbeat.WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	recs, cur := hb.ReadSince(0)
	if cur != 20 {
		t.Fatalf("cursor = %d, want 20", cur)
	}
	if len(recs) != 8 || recs[0].Seq != 13 || recs[7].Seq != 20 {
		t.Fatalf("retained window = %+v", recs)
	}
}

func TestSubscribeDeliversBacklogThenDeltas(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	recs, err := sub.Next(context.Background())
	if err != nil || len(recs) != 4 {
		t.Fatalf("backlog batch = %d records, err %v", len(recs), err)
	}
	if recs, ok := sub.Poll(); ok {
		t.Fatalf("Poll after drain returned %d records", len(recs))
	}
	hb.Beat()
	recs, err = sub.Next(context.Background())
	if err != nil || len(recs) != 1 || recs[0].Seq != 5 {
		t.Fatalf("delta batch = %+v, err %v", recs, err)
	}
	if sub.Cursor() != 5 || sub.Missed() != 0 {
		t.Fatalf("cursor %d missed %d", sub.Cursor(), sub.Missed())
	}
}

func TestSubscribeWakesBlockedNextOnDirectBeat(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	got := make(chan []heartbeat.Record, 1)
	go func() {
		recs, err := sub.Next(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- recs
	}()
	time.Sleep(10 * time.Millisecond) // let Next block
	hb.Beat()
	select {
	case recs := <-got:
		if len(recs) != 1 {
			t.Fatalf("woke with %d records", len(recs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke on a direct beat")
	}
}

func TestSubscribeWakesBlockedNextOnFlush(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	got := make(chan int, 1)
	go func() {
		recs, err := sub.Next(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- len(recs)
	}()
	time.Sleep(10 * time.Millisecond)
	tr.GlobalBeat() // parks in the shard: far below the soft limit
	tr.GlobalBeat()
	hb.Flush() // the flush publishes and must wake the subscriber
	select {
	case n := <-got:
		if n != 2 {
			t.Fatalf("woke with %d records, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke on Flush")
	}
}

func TestSubscribeNextContextCancel(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestSubscribeNextReturnsPendingDataBeforeCtx(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	hb.Beat()
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done: pending data must still win
	recs, err := sub.Next(ctx)
	if err != nil || len(recs) != 1 {
		t.Fatalf("Next with cancelled ctx = %d records, err %v; want the pending record", len(recs), err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("drained Next err = %v, want canceled", err)
	}
}

func TestSubscribeFromResumesWithoutLossOrDup(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	sub := hb.Subscribe(context.Background())
	first, err := sub.Next(context.Background())
	if err != nil || len(first) != 6 {
		t.Fatalf("first batch %d records, err %v", len(first), err)
	}
	cur := sub.Cursor()
	sub.Close()

	for i := 0; i < 3; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	resumed := hb.SubscribeFrom(context.Background(), cur)
	defer resumed.Close()
	second, err := resumed.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 3 || second[0].Seq != 7 || second[2].Seq != 9 {
		t.Fatalf("resumed batch = %+v, want seqs 7..9", second)
	}
}

// Regression: a cursor saved from a previous life of the producer (whose
// sequence numbers restarted at 1) used to stall the subscription forever
// — ReadSince's head stayed below the cursor, so Poll never returned
// records, Missed, or an error. The subscription must resynchronize from
// the new history instead, like the stream-side resyncs already do.
func TestSubscribeFromFutureCursorResynchronizes(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	// The "restarted producer": this Heartbeat's seqs start at 1, but the
	// consumer resumes with a cursor from before the restart.
	sub := hb.SubscribeFrom(context.Background(), 5000)
	defer sub.Close()
	for i := 0; i < 4; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	recs, err := sub.Next(ctx)
	if err != nil {
		t.Fatalf("resumed-from-future Next stalled: %v", err)
	}
	if len(recs) != 4 || recs[0].Seq != 1 || recs[3].Seq != 4 {
		t.Fatalf("resynchronized batch = %+v, want seqs 1..4", recs)
	}
	if sub.Missed() != 0 {
		t.Fatalf("resync counted %d phantom missed records", sub.Missed())
	}
	if sub.Cursor() != 4 {
		t.Fatalf("cursor = %d after resync", sub.Cursor())
	}
}

func TestSubscribeNextErrClosedAfterDrain(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	hb.Beat()
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
	// The pre-close record is still delivered...
	recs, err := sub.Next(context.Background())
	if err != nil || len(recs) != 1 {
		t.Fatalf("tail batch = %d records, err %v", len(recs), err)
	}
	// ...then the stream ends.
	if _, err := sub.Next(context.Background()); !errors.Is(err, heartbeat.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSubscribeCloseWakesBlockedNext(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	got := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	hb.Close()
	select {
	case err := <-got:
		if !errors.Is(err, heartbeat.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke on Close")
	}
}

func TestSubscriptionCloseWakesBlockedNext(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	sub := hb.Subscribe(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Next block on an idle heartbeat
	sub.Close()
	select {
	case err := <-got:
		if !errors.Is(err, heartbeat.ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke on Subscription.Close")
	}
	sub.Close() // idempotent
}

func TestSubscriptionMissedCountsOverwrites(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(2, heartbeat.WithClock(clk), heartbeat.WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	sub := hb.Subscribe(context.Background())
	defer sub.Close()
	for i := 0; i < 12; i++ {
		clk.Advance(time.Millisecond)
		hb.Beat()
	}
	recs, ok := sub.Poll()
	if !ok {
		t.Fatal("no batch")
	}
	if len(recs) != 4 || sub.Missed() != 8 || sub.Cursor() != 12 {
		t.Fatalf("recs=%d missed=%d cursor=%d; want 4, 8, 12", len(recs), sub.Missed(), sub.Cursor())
	}
}
