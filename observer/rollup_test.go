package observer

import (
	"testing"
	"time"

	"repro/heartbeat"
)

// recsAt builds records with the given sequence numbers, spaced evenly by
// step starting at base.
func recsAt(base time.Time, step time.Duration, seqs ...uint64) []heartbeat.Record {
	out := make([]heartbeat.Record, len(seqs))
	for i, s := range seqs {
		out[i] = heartbeat.Record{Seq: s, Time: base.Add(time.Duration(i) * step)}
	}
	return out
}

func TestRollupWindowStats(t *testing.T) {
	base := time.Unix(1000, 0)
	w := NewRollupWindow("app")
	w.Absorb(Batch{Records: recsAt(base, 100*time.Millisecond, 1, 2, 3, 4, 5), Count: 5})

	r := w.Flush(base, base.Add(time.Second))
	if r.App != "app" || r.Records != 5 || r.Missed != 0 || r.Count != 5 {
		t.Fatalf("rollup basics wrong: %+v", r)
	}
	if !r.RateOK {
		t.Fatal("RateOK false with 5 records")
	}
	// 4 beats over 400ms = 10/s.
	if r.Rate.PerSec < 9.99 || r.Rate.PerSec > 10.01 {
		t.Fatalf("rate %v, want 10/s", r.Rate.PerSec)
	}
	if r.Rate.FirstSeq != 1 || r.Rate.LastSeq != 5 || r.Rate.Beats != 5 {
		t.Fatalf("rate bounds wrong: %+v", r.Rate)
	}
	if r.MinInterval != 100*time.Millisecond || r.MaxInterval != 100*time.Millisecond || r.MeanInterval != 100*time.Millisecond {
		t.Fatalf("intervals wrong: %v %v %v", r.MinInterval, r.MaxInterval, r.MeanInterval)
	}

	// The next window is empty: silence is reported, not elided.
	r2 := w.Flush(base.Add(time.Second), base.Add(2*time.Second))
	if r2.Records != 0 || r2.RateOK || r2.MinInterval != 0 {
		t.Fatalf("silent window not silent: %+v", r2)
	}
	if r2.Count != 5 {
		t.Fatalf("cumulative count lost across flush: %d", r2.Count)
	}
}

// The interval spanning two windows is charged to the later window, so
// downsampled interval stats cover the same gaps a raw Window sees.
func TestRollupWindowIntervalContinuity(t *testing.T) {
	base := time.Unix(1000, 0)
	w := NewRollupWindow("app")
	w.Absorb(Batch{Records: recsAt(base, 10*time.Millisecond, 1, 2)})
	w.Flush(base, base.Add(time.Second))

	// One record, 40ms after the previous window's last: the window has one
	// interval even though it has only one record.
	w.Absorb(Batch{Records: []heartbeat.Record{{Seq: 3, Time: base.Add(50 * time.Millisecond)}}})
	r := w.Flush(base.Add(time.Second), base.Add(2*time.Second))
	if r.Records != 1 {
		t.Fatalf("records %d, want 1", r.Records)
	}
	if r.RateOK {
		t.Fatal("RateOK with a single record")
	}
	if r.Rate.FirstSeq != 3 || r.Rate.LastSeq != 3 {
		t.Fatalf("seq bounds wrong: %+v", r.Rate)
	}
	if r.MeanInterval != 40*time.Millisecond {
		t.Fatalf("cross-window interval %v, want 40ms", r.MeanInterval)
	}
}

func TestRollupWindowMissed(t *testing.T) {
	w := NewRollupWindow("app")
	w.Absorb(Batch{Missed: 7, Count: 7})
	r := w.Flush(time.Time{}, time.Time{})
	if r.Missed != 7 || r.Records != 0 {
		t.Fatalf("missed-only window wrong: %+v", r)
	}
	// Missed resets with the window.
	if r2 := w.Flush(time.Time{}, time.Time{}); r2.Missed != 0 {
		t.Fatalf("missed leaked across flush: %+v", r2)
	}
}

func TestDownsamplerPerApp(t *testing.T) {
	base := time.Unix(1000, 0)
	d := NewDownsampler()
	d.Track("silent")
	d.Absorb("a", Batch{Records: recsAt(base, time.Millisecond, 1, 2, 3), Count: 3})
	d.Absorb("b", Batch{Records: recsAt(base, time.Millisecond, 1, 2), Count: 2, Missed: 4})

	rs := d.Flush(base, base.Add(time.Second))
	if len(rs) != 3 {
		t.Fatalf("got %d rollups, want 3 (incl. the silent app)", len(rs))
	}
	byApp := map[string]Rollup{}
	for _, r := range rs {
		byApp[r.App] = r
	}
	if byApp["a"].Records != 3 || byApp["b"].Records != 2 || byApp["b"].Missed != 4 {
		t.Fatalf("per-app accounting wrong: %+v", byApp)
	}
	if byApp["silent"].Records != 0 || byApp["silent"].RateOK {
		t.Fatalf("silent app not silent: %+v", byApp["silent"])
	}
	// Sum of records+missed is conserved per flush: the rollup tier never
	// hides loss (the raw-parity invariant the relay tests lean on).
	var recs, missed uint64
	for _, r := range rs {
		recs, missed = recs+r.Records, missed+r.Missed
	}
	if recs != 5 || missed != 4 {
		t.Fatalf("conservation broken: records %d missed %d", recs, missed)
	}
}

func TestRollupSilent(t *testing.T) {
	if !(Rollup{}).Silent() {
		t.Fatal("empty window not silent")
	}
	if (Rollup{Records: 1}).Silent() {
		t.Fatal("window with records judged silent")
	}
	// Losses prove publication: an all-lapped window is alive, not silent
	// — the distinction that keeps a restarting producer routable.
	if (Rollup{Missed: 7}).Silent() {
		t.Fatal("all-lapped window judged silent")
	}
}

func TestRollupObservedRate(t *testing.T) {
	r := Rollup{Rate: heartbeat.Rate{PerSec: 42}, RateOK: true, MeanInterval: time.Second}
	if got := r.ObservedRate(); got != 42 {
		t.Fatalf("ObservedRate = %v, want the windowed rate", got)
	}
	// A 1-record window has no windowed rate but does carry the interval
	// spanning from the previous window.
	r = Rollup{MeanInterval: 250 * time.Millisecond}
	if got := r.ObservedRate(); got != 4 {
		t.Fatalf("ObservedRate = %v, want 4 from the mean interval", got)
	}
	if got := (Rollup{}).ObservedRate(); got != 0 {
		t.Fatalf("ObservedRate with no evidence = %v, want 0", got)
	}
}
