package control

// AmdahlPlanner is a model-based allocation policy: instead of stepping one
// core at a time (Stepper), it inverts an Amdahl-law model of the
// application — estimated online from the observed rate at the current
// allocation — and jumps directly to the smallest core count predicted to
// meet the target window. This is the direction the authors' follow-on
// self-aware-computing work took (model-based and control-theoretic
// resource allocators seeded by the Heartbeats signal); here it serves as
// the ablation partner for the paper's threshold policy.
//
// It satisfies the scheduler package's Policy interface.
type AmdahlPlanner struct {
	// ParallelFrac is the assumed Amdahl parallel fraction of the
	// application in [0, 1).
	ParallelFrac float64
	// TargetMin and TargetMax delimit the goal window in beats/s.
	TargetMin, TargetMax float64
}

// amdahlSpeedup mirrors sim.Speedup without importing it (control stays
// dependency-free).
func amdahlSpeedup(cores int, p float64) float64 {
	if cores <= 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return 1 / ((1 - p) + p/float64(cores))
}

// DesiredCores implements the scheduler Policy shape: estimate the
// single-core base rate from the current observation, then return the
// smallest allocation whose predicted rate lands inside
// [TargetMin, TargetMax] — TargetMax participates in the objective, so a
// rate above the window steps down to the smallest in-window count
// rather than merely the smallest count reaching TargetMin. When the
// model's speedup steps straddle the window (no allocation is predicted
// in-window), the smallest allocation meeting TargetMin is chosen: a
// fast-but-met goal beats an unmet one — preferring the near miss below
// would pin the application under its advertised minimum (and oscillate,
// since the next decision at the lower count faces the inverse choice).
// If even max cores cannot reach TargetMin, max is returned and the
// application must adapt itself instead. TargetMax <= 0 means no upper
// bound.
func (a *AmdahlPlanner) DesiredCores(rate float64, rateOK bool, current, max int) int {
	if !rateOK || rate <= 0 || current <= 0 {
		return current
	}
	if rate >= a.TargetMin && (a.TargetMax <= 0 || rate <= a.TargetMax) {
		return current // already in window; hold (minimum-resource goal)
	}
	base := rate / amdahlSpeedup(current, a.ParallelFrac)
	met := 0 // smallest count predicted to reach TargetMin, if any
	for c := 1; c <= max; c++ {
		predicted := base * amdahlSpeedup(c, a.ParallelFrac)
		if predicted < a.TargetMin {
			continue
		}
		if a.TargetMax <= 0 || predicted <= a.TargetMax {
			return c // smallest in-window allocation
		}
		if met == 0 {
			met = c
		}
		// Larger counts only predict faster: no in-window count remains.
		break
	}
	if met > 0 {
		return met
	}
	return max
}
