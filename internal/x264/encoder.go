package x264

import (
	"fmt"
	"math"

	"repro/internal/video"
)

// Cost-model constants. Search work is counted exactly (pixel operations
// performed); these cover the rest of the pipeline so that total cost
// behaves like a real encoder's.
var (
	// OverheadOpsPerBlock models per-macroblock transform/quantization
	// work, which is configuration-independent.
	OverheadOpsPerBlock = 10000.0
	// EntropyOpsPerSAD models entropy-coding work proportional to the
	// residual magnitude: worse prediction produces more coefficients to
	// code. This is what gives cheap search algorithms diminishing
	// returns, as in real encoders.
	EntropyOpsPerSAD = 15.0
	// ParallelFrac is the Amdahl parallel fraction of the encode loop
	// (x264 parallelizes well but not perfectly).
	ParallelFrac = 0.93
)

// Quality-model constants (fixed-bitrate abstraction): the effective
// quantizer grows with prediction error, so PSNR falls when motion search
// is weakened — the paper's Figure 4 trade-off.
var (
	// QBase is the quantization step with perfect prediction.
	QBase = 3.0
	// SigmaRef scales how quickly residual energy coarsens the quantizer.
	SigmaRef = 6.0
	// MSEFloor is reconstruction error present at any quality.
	MSEFloor = 0.3
)

// FrameStats reports one encoded frame.
type FrameStats struct {
	// FrameIndex counts frames through this encoder, starting at 0.
	FrameIndex int
	// Config is the operating point used for this frame.
	Config Config
	// Intra marks the first frame (no references yet).
	Intra bool
	// Evals16 and Evals8 count block-SAD evaluations actually performed.
	Evals16, Evals8 int
	// PredSAD is the total best SAD across blocks (residual magnitude).
	PredSAD uint64
	// PredSSE is the total squared prediction error across the frame.
	PredSSE float64
	// Ops is the modeled total operation count of the frame: counted
	// search pixel-ops plus per-block overhead plus residual-
	// proportional entropy work.
	Ops float64
	// PSNR is the frame quality in dB under the fixed-bitrate model.
	PSNR float64
}

// Encoder encodes a stream of frames at a switchable operating point,
// holding up to MaxRefFrames previous frames as references. Not safe for
// concurrent use.
type Encoder struct {
	cfg  Config
	refs []*video.Frame // newest first
	next int
}

// NewEncoder returns an encoder starting at cfg.
func NewEncoder(cfg Config) *Encoder {
	return &Encoder{cfg: cfg.validate()}
}

// Config returns the current operating point.
func (e *Encoder) Config() Config { return e.cfg }

// SetConfig switches the operating point; references are retained, so
// adaptation is seamless mid-stream (as in the paper's adaptive encoder).
func (e *Encoder) SetConfig(cfg Config) { e.cfg = cfg.validate() }

// Encode encodes one frame and advances the reference list.
func (e *Encoder) Encode(cur *video.Frame) (FrameStats, error) {
	if cur.W%BlockSize != 0 || cur.H%BlockSize != 0 {
		return FrameStats{}, fmt.Errorf("x264: frame %dx%d not a multiple of %d", cur.W, cur.H, BlockSize)
	}
	st := FrameStats{FrameIndex: e.next, Config: e.cfg}
	e.next++
	var n sadCounter
	if len(e.refs) == 0 {
		st.Intra = true
		e.encodeIntra(cur, &st, &n)
	} else {
		e.encodeInter(cur, &st, &n)
	}
	st.Evals16 = n.evals16
	st.Evals8 = n.evals8
	blocks := (cur.W / BlockSize) * (cur.H / BlockSize)
	st.Ops = 256*float64(n.evals16) + 64*float64(n.evals8) +
		OverheadOpsPerBlock*float64(blocks) + EntropyOpsPerSAD*float64(st.PredSAD)
	st.PSNR = psnrOf(st.PredSSE, cur.W*cur.H)

	// Advance references with the original frame (loss-free reference
	// approximation).
	e.refs = append([]*video.Frame{cur}, e.refs...)
	if len(e.refs) > MaxRefFrames {
		e.refs = e.refs[:MaxRefFrames]
	}
	return st, nil
}

// Reset clears the reference list (e.g. at a scene cut).
func (e *Encoder) Reset() { e.refs = nil }

// encodeIntra predicts each block by its own mean (DC prediction).
func (e *Encoder) encodeIntra(cur *video.Frame, st *FrameStats, n *sadCounter) {
	for by := 0; by < cur.H; by += BlockSize {
		for bx := 0; bx < cur.W; bx += BlockSize {
			n.evals16++ // one pass over the block
			var sum int64
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					sum += int64(cur.Pix[(by+y)*cur.W+bx+x])
				}
			}
			mean := float64(sum) / (BlockSize * BlockSize)
			var sad uint64
			var sse float64
			for y := 0; y < BlockSize; y++ {
				for x := 0; x < BlockSize; x++ {
					d := float64(cur.Pix[(by+y)*cur.W+bx+x]) - mean
					if d < 0 {
						sad += uint64(-d)
					} else {
						sad += uint64(d)
					}
					sse += d * d
				}
			}
			st.PredSAD += sad
			st.PredSSE += sse
		}
	}
}

// encodeInter motion-compensates each block against the reference list.
func (e *Encoder) encodeInter(cur *video.Frame, st *FrameStats, n *sadCounter) {
	nRefs := e.cfg.RefFrames
	if nRefs > len(e.refs) {
		nRefs = len(e.refs)
	}
	for by := 0; by < cur.H; by += BlockSize {
		for bx := 0; bx < cur.W; bx += BlockSize {
			bestRef := e.refs[0]
			best := searchInteger(e.cfg, cur, bestRef, bx, by, n)
			for r := 1; r < nRefs; r++ {
				if mv := searchInteger(e.cfg, cur, e.refs[r], bx, by, n); mv.sad < best.sad {
					best, bestRef = mv, e.refs[r]
				}
			}
			best = refineSubpel(e.cfg, cur, bestRef, bx, by, best, n)

			partitioned := false
			var subMVs [4]motionVector
			if e.cfg.Subpartitions {
				var sum uint32
				imvx, imvy := int(best.fx), int(best.fy)
				for i := 0; i < 4; i++ {
					sx := bx + (i%2)*8
					sy := by + (i/2)*8
					sub := motionVector{fx: float64(imvx), fy: float64(imvy), sad: sad8(cur, bestRef, sx, sy, imvx, imvy, n)}
					sub = subSearch(cur, bestRef, sx, sy, sub, n)
					subMVs[i] = sub
					sum += sub.sad
				}
				// Partitioning costs motion-vector signaling; require a
				// real win.
				if sum < best.sad-best.sad/32 {
					partitioned = true
				}
			}

			if partitioned {
				for i := 0; i < 4; i++ {
					sx := bx + (i%2)*8
					sy := by + (i/2)*8
					st.PredSAD += uint64(subMVs[i].sad)
					st.PredSSE += sse8(cur, bestRef, sx, sy, int(subMVs[i].fx), int(subMVs[i].fy))
				}
			} else {
				st.PredSAD += uint64(best.sad)
				st.PredSSE += sse16(cur, bestRef, bx, by, best.fx, best.fy)
			}
		}
	}
}

// subSearch refines an 8x8 sub-block with a short diamond walk around the
// parent motion vector.
func subSearch(cur, ref *video.Frame, sx, sy int, best motionVector, n *sadCounter) motionVector {
	cx, cy := int(best.fx), int(best.fy)
	for iter := 0; iter < 2; iter++ {
		improved := false
		for _, p := range diamondPattern {
			dx, dy := cx+p[0], cy+p[1]
			if s := sad8(cur, ref, sx, sy, dx, dy, n); s < best.sad {
				best = motionVector{fx: float64(dx), fy: float64(dy), sad: s}
				improved = true
			}
		}
		if !improved {
			break
		}
		cx, cy = int(best.fx), int(best.fy)
	}
	return best
}

// sse16 computes the squared prediction error of a 16x16 block at a
// (possibly fractional) motion vector.
func sse16(cur, ref *video.Frame, bx, by int, fx, fy float64) float64 {
	var sse float64
	ifx, ify := int(fx), int(fy)
	integer := fx == float64(ifx) && fy == float64(ify)
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var pred float64
			if integer {
				pred = float64(ref.At(bx+x+ifx, by+y+ify))
			} else {
				pred = bilinear(ref, float64(bx+x)+fx, float64(by+y)+fy)
			}
			d := float64(cur.Pix[(by+y)*cur.W+bx+x]) - pred
			sse += d * d
		}
	}
	return sse
}

// sse8 is sse16 for 8x8 sub-blocks (integer vectors only).
func sse8(cur, ref *video.Frame, sx, sy, mvx, mvy int) float64 {
	var sse float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			d := float64(cur.Pix[(sy+y)*cur.W+sx+x]) - float64(ref.At(sx+x+mvx, sy+y+mvy))
			sse += d * d
		}
	}
	return sse
}

// bilinear samples ref at fractional coordinates with edge clamping.
func bilinear(ref *video.Frame, fx, fy float64) float64 {
	ix, iy := int(math.Floor(fx)), int(math.Floor(fy))
	wx, wy := fx-float64(ix), fy-float64(iy)
	p00 := float64(ref.At(ix, iy))
	p10 := float64(ref.At(ix+1, iy))
	p01 := float64(ref.At(ix, iy+1))
	p11 := float64(ref.At(ix+1, iy+1))
	return p00*(1-wx)*(1-wy) + p10*wx*(1-wy) + p01*(1-wx)*wy + p11*wx*wy
}

// psnrOf converts total prediction SSE into frame PSNR under the
// fixed-bitrate model: residual energy coarsens the effective quantizer
// (Q = QBase·(1 + rms/SigmaRef)), and reconstruction error is the uniform-
// quantizer distortion Q²/12 plus a floor.
func psnrOf(predSSE float64, pixels int) float64 {
	rms := math.Sqrt(predSSE / float64(pixels))
	q := QBase * (1 + rms/SigmaRef)
	mse := q*q/12 + MSEFloor
	return 10 * math.Log10(255*255/mse)
}
