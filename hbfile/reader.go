package hbfile

import (
	"fmt"
	"math"
	"os"

	"repro/heartbeat"
)

// Reader observes a heartbeat ring file written by another process (or the
// same one). Readers never block the writer and never coordinate with it;
// they detect overwritten or in-flight data and discard it. Reader is safe
// for concurrent use.
type Reader struct {
	f   *os.File
	hdr header
}

// Open opens an existing heartbeat ring file for observation.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hbfile: open: %w", err)
	}
	buf := make([]byte, HeaderSize)
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("hbfile: read header: %w", err)
	}
	hdr, err := decodeStaticHeader(buf)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Reader{f: f, hdr: hdr}, nil
}

// Window returns the application's default averaging window.
func (r *Reader) Window() int { return int(r.hdr.window) }

// Capacity returns how many records the ring retains.
func (r *Reader) Capacity() int { return int(r.hdr.capacity) }

// PID returns the process id recorded by the writing application.
func (r *Reader) PID() uint64 { return r.hdr.pid }

// Cursor returns the total number of heartbeats published so far.
func (r *Reader) Cursor() (uint64, error) {
	var buf [8]byte
	if _, err := r.f.ReadAt(buf[:], offCursor); err != nil {
		return 0, fmt.Errorf("hbfile: read cursor: %w", err)
	}
	return byteOrder.Uint64(buf[:]), nil
}

// Target returns the advertised target range; ok is false when the
// application never set one. Torn updates are retried a bounded number of
// times.
func (r *Reader) Target() (min, max float64, ok bool, err error) {
	var buf [24]byte // ver, min, max are contiguous in the header
	const maxTries = 100
	for tries := 0; tries < maxTries; tries++ {
		if _, err := r.f.ReadAt(buf[:], offTargetVer); err != nil {
			return 0, 0, false, fmt.Errorf("hbfile: read target: %w", err)
		}
		v1 := byteOrder.Uint64(buf[0:8])
		if v1%2 == 1 {
			continue // writer mid-update
		}
		minBits := byteOrder.Uint64(buf[8:16])
		maxBits := byteOrder.Uint64(buf[16:24])
		var check [8]byte
		if _, err := r.f.ReadAt(check[:], offTargetVer); err != nil {
			return 0, 0, false, fmt.Errorf("hbfile: read target: %w", err)
		}
		if byteOrder.Uint64(check[:]) != v1 {
			continue // raced with an update
		}
		if v1 == 0 {
			return 0, 0, false, nil // never set
		}
		return math.Float64frombits(minBits), math.Float64frombits(maxBits), true, nil
	}
	return 0, 0, false, fmt.Errorf("hbfile: target read contended beyond %d retries", maxTries)
}

// Last returns up to n of the most recent records, oldest to newest.
// Records overwritten or in flight during the read are omitted.
func (r *Reader) Last(n int) ([]heartbeat.Record, error) {
	if n <= 0 {
		return nil, nil
	}
	cur, err := r.Cursor()
	if err != nil {
		return nil, err
	}
	if cur == 0 {
		return nil, nil
	}
	if uint64(n) > cur {
		n = int(cur)
	}
	if n > int(r.hdr.capacity) {
		n = int(r.hdr.capacity)
	}
	return r.readRange(cur-uint64(n)+1, n)
}

// ReadSince returns the retained records with sequence numbers greater
// than since, oldest to newest, plus the cursor to resume from (pass it to
// the next ReadSince). max > 0 bounds the batch size; the cursor then
// stops at the last returned record so no record is skipped. When nothing
// new has been published the call costs a single 8-byte header read — the
// incremental alternative to re-reading and re-decoding the whole window
// every poll tick.
//
// Records older than the ring capacity are lost to overwrite; the caller
// detects that as cursor-since exceeding len(records).
func (r *Reader) ReadSince(since uint64, max int) ([]heartbeat.Record, uint64, error) {
	cur, err := r.Cursor()
	if err != nil {
		return nil, since, err
	}
	if cur <= since {
		// Idle — or, when cur < since, a recreated file (the caller's
		// cursor is foreign): return cur either way so the caller
		// resynchronizes rather than waiting for seqs that may never come.
		return nil, cur, nil
	}
	first := since + 1
	if cur-since > uint64(r.hdr.capacity) {
		first = cur - uint64(r.hdr.capacity) + 1
	}
	to := cur
	if max > 0 && to-first+1 > uint64(max) {
		to = first + uint64(max) - 1
	}
	recs, err := r.readRange(first, int(to-first+1))
	if err != nil {
		return nil, since, err
	}
	return recs, to, nil
}

// readRange bulk-reads records [first, first+n), validating each slot
// seqlock-style against writer overwrites.
func (r *Reader) readRange(first uint64, n int) ([]heartbeat.Record, error) {
	// Bulk-read the byte range covering the slots, then validate per slot.
	// The range may wrap the ring; read it as up to two spans.
	buf := make([]byte, n*RecordSize)
	firstSlot := (first - 1) % uint64(r.hdr.capacity)
	span1 := uint64(r.hdr.capacity) - firstSlot
	if span1 > uint64(n) {
		span1 = uint64(n)
	}
	if _, err := r.f.ReadAt(buf[:span1*RecordSize], HeaderSize+int64(firstSlot)*RecordSize); err != nil {
		return nil, fmt.Errorf("hbfile: read records: %w", err)
	}
	if span1 < uint64(n) {
		if _, err := r.f.ReadAt(buf[span1*RecordSize:], HeaderSize); err != nil {
			return nil, fmt.Errorf("hbfile: read records: %w", err)
		}
	}
	// Re-read the cursor: anything the writer might have lapped during our
	// read window is suspect and dropped (seqlock validation step).
	cur2, err := r.Cursor()
	if err != nil {
		return nil, err
	}
	out := make([]heartbeat.Record, 0, n)
	for i := 0; i < n; i++ {
		want := first + uint64(i)
		rec := decodeRecord(buf[i*RecordSize:])
		if rec.Seq != want {
			continue // slot not yet written, lapped, or torn
		}
		// The writer may be mid-write of want+capacity as soon as the
		// cursor reaches want+capacity-1; such a slot is suspect.
		if cur2+1 >= want+uint64(r.hdr.capacity) {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Rate computes the average heart rate over the last window records;
// window <= 0 uses the file's default window. ok is false with fewer than
// two readable records.
func (r *Reader) Rate(window int) (perSec float64, ok bool, err error) {
	if window <= 0 {
		window = int(r.hdr.window)
	}
	recs, err := r.Last(window)
	if err != nil {
		return 0, false, err
	}
	rate, ok := heartbeat.RateOf(recs)
	return rate.PerSec, ok, nil
}

// Stat returns the metadata of the opened file — the file as it was
// opened, not as the path currently resolves. A live tail compares it
// against os.Stat(path) (via os.SameFile) to notice that a restarted
// producer deleted and recreated the file, which this reader, holding the
// old inode, would otherwise report as a flatline forever.
func (r *Reader) Stat() (os.FileInfo, error) { return r.f.Stat() }

// Close closes the file.
func (r *Reader) Close() error { return r.f.Close() }
