package heartbeat

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Subscription.Next once the Heartbeat has been
// closed and every published record has been delivered.
var ErrClosed = errors.New("heartbeat: closed")

// subscribers is the registry of wake channels behind Subscribe. The wake
// path is lock-free — the registered channels are republished copy-on-write
// (the aggregator's shardsPtr pattern) — so beats never contend on a
// registry mutex: with no subscribers a wake is one atomic load, and with
// subscribers it is non-blocking channel sends.
type subscribers struct {
	closed   atomic.Bool
	chansPtr atomic.Pointer[[]chan struct{}]
	mu       sync.Mutex
	chans    map[*Subscription]chan struct{}
}

// wake nudges every subscriber that new records are visible in the store.
// Sends are non-blocking into one-slot channels: a subscriber that already
// has a pending wake coalesces further ones, and a mid-read subscriber
// re-checks the cursor before sleeping, so no wake is ever needed twice.
func (s *subscribers) wake() {
	p := s.chansPtr.Load()
	if p == nil {
		return
	}
	for _, ch := range *p {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// republishLocked snapshots the channel set for the lock-free wake path.
// Callers hold s.mu.
func (s *subscribers) republishLocked() {
	if len(s.chans) == 0 {
		s.chansPtr.Store(nil)
		return
	}
	snap := make([]chan struct{}, 0, len(s.chans))
	for _, ch := range s.chans {
		snap = append(snap, ch)
	}
	s.chansPtr.Store(&snap)
}

func (s *subscribers) add(sub *Subscription, ch chan struct{}) {
	s.mu.Lock()
	if s.chans == nil {
		s.chans = make(map[*Subscription]chan struct{})
	}
	s.chans[sub] = ch
	s.republishLocked()
	s.mu.Unlock()
}

func (s *subscribers) remove(sub *Subscription) {
	s.mu.Lock()
	if _, ok := s.chans[sub]; ok {
		delete(s.chans, sub)
		s.republishLocked()
	}
	s.mu.Unlock()
}

// close marks the heartbeat closed and wakes every subscriber so blocked
// Next calls can drain the tail and return ErrClosed.
func (s *subscribers) close() {
	s.closed.Store(true)
	s.wake()
}

// ReadSince returns every retained global record with sequence number
// greater than since, oldest to newest, plus the cursor to pass to the next
// ReadSince. Pending shard records are merged first (same discipline as
// History). An idle call — no beats since the last cursor — does no
// per-record work: it is a merge-backlog check plus one atomic load.
//
// The cursor normally advances to the newest assigned sequence number.
// When cursor-since exceeds len(records), the difference was overwritten
// (or discarded under backlog pressure) before this reader got to it;
// consumers that must not miss records size WithCapacity to cover their
// maximum read lag. Subscription tracks that loss as Missed.
func (h *Heartbeat) ReadSince(since uint64) ([]Record, uint64) {
	return h.ReadSinceInto(since, nil)
}

// ReadSinceInto is ReadSince reusing buf as the returned slice's backing
// storage when its capacity suffices (nil buf allocates, exactly like
// ReadSince). A poller that hands each delivered batch back — the hbnet
// server's per-subscriber stream does, via its recycler — reads the
// history with no per-poll allocation at all.
func (h *Heartbeat) ReadSinceInto(since uint64, buf []Record) ([]Record, uint64) {
	if h.agg.active() && h.agg.mu.TryLock() {
		h.agg.mergeLocked()
		h.agg.mu.Unlock()
	}
	return h.store.readSince(since, buf)
}

// Subscription is a cursor over the global heartbeat history that delivers
// new records in batches as they are published — the push form of ReadSince.
// Obtain one with Subscribe or SubscribeFrom. Next and Poll must be called
// from a single goroutine at a time; Close may be called from any goroutine.
// Independent subscriptions have independent cursors, so any number of
// consumers can stream the same Heartbeat without coordinating.
type Subscription struct {
	h         *Heartbeat
	ctx       context.Context
	ch        chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	cursor    uint64
	missed    uint64
}

// Subscribe returns a Subscription positioned before the oldest retained
// record: the first Next delivers the retained history, then each
// subsequent Next delivers records as flushes publish them (a blocked Next
// wakes on publication — there is no polling). ctx bounds the subscription's
// lifetime: once it is cancelled, Next returns its error. A nil ctx means
// context.Background().
func (h *Heartbeat) Subscribe(ctx context.Context) *Subscription {
	return h.SubscribeFrom(ctx, 0)
}

// SubscribeFrom is Subscribe starting after sequence number since: the
// first Next delivers only records newer than since. A consumer that was
// disconnected resumes exactly where it left off by passing its last
// Cursor, receiving each record once across the resubscribe.
func (h *Heartbeat) SubscribeFrom(ctx context.Context, since uint64) *Subscription {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Subscription{h: h, ctx: ctx, ch: make(chan struct{}, 1), done: make(chan struct{}), cursor: since}
	h.subs.add(s, s.ch)
	return s
}

// Next blocks until records newer than the cursor are published, then
// returns them oldest to newest and advances the cursor. It returns
// immediately when records are already pending, even if ctx is already
// cancelled — cancellation is only checked once there is nothing to
// deliver, so a consumer never loses data to a race with its own shutdown.
// An empty batch with a nil error means records were published but
// overwritten before they could be read; Missed counts them.
//
// Next returns ctx.Err() (or the Subscribe ctx's error) on cancellation and
// ErrClosed once the Heartbeat — or this Subscription — is closed and
// fully drained.
func (s *Subscription) Next(ctx context.Context) ([]Record, error) {
	return s.NextInto(ctx, nil)
}

// NextInto is Next decoding into buf when its capacity suffices (nil buf
// allocates, exactly like Next). Pair it with a consumer that returns each
// delivered slice once done — see ReadSinceInto.
func (s *Subscription) NextInto(ctx context.Context, buf []Record) ([]Record, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if recs, ok := s.PollInto(buf); ok {
			return recs, nil
		}
		if s.h.subs.closed.Load() || s.isClosed() {
			// Re-check after observing closed: Close publishes the final
			// flush before setting the flag, but a record can land
			// between our Poll and the flag load.
			if recs, ok := s.PollInto(buf); ok {
				return recs, nil
			}
			return nil, ErrClosed
		}
		select {
		case <-s.ch:
		case <-s.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
}

func (s *Subscription) isClosed() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Poll is the non-blocking form of Next: it returns (records, true) and
// advances the cursor when anything was published since the last call —
// records may be empty if the window was overwritten — and (nil, false)
// when the cursor is already current.
func (s *Subscription) Poll() ([]Record, bool) {
	return s.PollInto(nil)
}

// PollInto is Poll decoding into buf when its capacity suffices (nil buf
// allocates, exactly like Poll); see ReadSinceInto.
func (s *Subscription) PollInto(buf []Record) ([]Record, bool) {
	recs, cur := s.h.ReadSinceInto(s.cursor, buf)
	if cur < s.cursor {
		// The history's head is behind the cursor: this subscription was
		// resumed (SubscribeFrom) with a cursor from a previous life of
		// the producer, whose sequence numbers restarted. Resynchronize
		// from the beginning — the stream-side resync pollStream and
		// fileStream already do — rather than stall silently until the
		// new history happens to pass the old cursor. The records between
		// the two lives are unknowable, so they are not counted as
		// Missed.
		s.cursor = 0
		recs, cur = s.h.ReadSinceInto(0, buf)
	}
	if cur <= s.cursor {
		return nil, false
	}
	s.missed += (cur - s.cursor) - uint64(len(recs))
	s.cursor = cur
	return recs, true
}

// Cursor returns the sequence number the subscription has consumed up to;
// pass it to SubscribeFrom to resume after a disconnect.
func (s *Subscription) Cursor() uint64 { return s.cursor }

// Missed returns how many records were overwritten before this
// subscription could read them (0 whenever the history capacity covers the
// consumer's read lag).
func (s *Subscription) Missed() uint64 { return s.missed }

// Close unregisters the subscription and wakes any goroutine blocked in
// Next, whose next idle return is ErrClosed (pending records are still
// delivered first). Close does not invalidate the cursor:
// SubscribeFrom(ctx, s.Cursor()) continues the stream without loss or
// duplication. Close is idempotent and may be called from any goroutine.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		s.h.subs.remove(s)
		close(s.done)
	})
}
