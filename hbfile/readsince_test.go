package hbfile_test

import (
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
)

func writeSeqs(t *testing.T, w *hbfile.Writer, from, to uint64) {
	t.Helper()
	base := time.Unix(0, 0)
	for seq := from; seq <= to; seq++ {
		r := heartbeat.Record{Seq: seq, Time: base.Add(time.Duration(seq) * time.Millisecond), Tag: int64(seq)}
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReaderReadSinceIncremental(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	writeSeqs(t, w, 1, 5)

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	recs, cur, err := r.ReadSince(0, 0)
	if err != nil || len(recs) != 5 || cur != 5 {
		t.Fatalf("ReadSince(0) = %d records, cursor %d, err %v", len(recs), cur, err)
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	// Idle tick: nothing new, cursor unchanged.
	recs, cur, err = r.ReadSince(cur, 0)
	if err != nil || len(recs) != 0 || cur != 5 {
		t.Fatalf("idle = %d records, cursor %d, err %v", len(recs), cur, err)
	}
	// Only the delta comes back.
	writeSeqs(t, w, 6, 8)
	recs, cur, err = r.ReadSince(cur, 0)
	if err != nil || len(recs) != 3 || recs[0].Seq != 6 || cur != 8 {
		t.Fatalf("delta = %+v, cursor %d, err %v", recs, cur, err)
	}
}

func TestReaderReadSinceMaxPages(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	writeSeqs(t, w, 1, 10)
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var got []uint64
	cur := uint64(0)
	for i := 0; i < 10; i++ {
		recs, next, err := r.ReadSince(cur, 4)
		if err != nil {
			t.Fatal(err)
		}
		if next == cur {
			break
		}
		for _, rec := range recs {
			got = append(got, rec.Seq)
		}
		cur = next
	}
	if len(got) != 10 {
		t.Fatalf("paged to %d records, want 10: %v", len(got), got)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("page ordering broken at %d: %v", i, got)
		}
	}
}

func TestReaderReadSinceWraparoundReportsLoss(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	writeSeqs(t, w, 1, 20)
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	recs, cur, err := r.ReadSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The oldest slot of a wrapped ring is always suspect (the writer may
	// be mid-write of its successor), so 7 of the 8 retained records
	// validate — same discipline as Last.
	if cur != 20 || len(recs) != 7 || recs[0].Seq != 14 || recs[6].Seq != 20 {
		t.Fatalf("recs=%d first=%d cursor=%d; want the validated 14..20", len(recs), recs[0].Seq, cur)
	}
}

func TestReaderReadSinceForeignCursorResyncs(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	writeSeqs(t, w, 1, 3)
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, cur, err := r.ReadSince(100, 0)
	if err != nil || len(recs) != 0 || cur != 3 {
		t.Fatalf("foreign cursor: recs=%d cur=%d err=%v; want resync to 3", len(recs), cur, err)
	}
}

func TestLogReaderReadSinceTail(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hbl")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := time.Unix(0, 0)
	for seq := uint64(1); seq <= 6; seq++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: seq, Time: base.Add(time.Duration(seq) * time.Millisecond)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	recs, cur, err := r.ReadSince(0, 0)
	if err != nil || len(recs) != 6 || cur != 6 {
		t.Fatalf("tail = %d records, cursor %d, err %v", len(recs), cur, err)
	}
	recs, cur, err = r.ReadSince(cur, 0)
	if err != nil || len(recs) != 0 || cur != 6 {
		t.Fatalf("idle tail = %d records, cursor %d, err %v", len(recs), cur, err)
	}
	for seq := uint64(7); seq <= 9; seq++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: seq, Time: base.Add(time.Duration(seq) * time.Millisecond)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, cur, err = r.ReadSince(cur, 2)
	if err != nil || len(recs) != 2 || recs[0].Seq != 7 || cur != 8 {
		t.Fatalf("bounded tail = %+v, cursor %d, err %v", recs, cur, err)
	}
	recs, cur, err = r.ReadSince(cur, 2)
	if err != nil || len(recs) != 1 || recs[0].Seq != 9 || cur != 9 {
		t.Fatalf("final tail = %+v, cursor %d, err %v", recs, cur, err)
	}
}
