// Package hot is the hotpath analyzer's golden input: every violation
// class, the transitive same-package walk, and the allow edge that prunes
// an amortized slow path out of the steady-state contract.
package hot

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

type state struct {
	count atomic.Uint64
	keys  []int
	mu    sync.Mutex
	hook  func() int
	box   []any
}

type pair struct{ a, b int }

type reader interface{ Read() int }

//hbvet:hotpath
func (s *state) Clean(k int) int {
	s.count.Add(1)
	i := sort.SearchInts(s.keys, k)
	return s.cleanHelper(i)
}

// cleanHelper is unmarked but reached from Clean, so it is verified
// transitively — and is clean, so silent.
func (s *state) cleanHelper(i int) int {
	if i < len(s.keys) {
		return s.keys[i]
	}
	return -1
}

//hbvet:hotpath
func (s *state) Transitive() int {
	return s.spill()
}

// spill's body is the violation: the finding lands here, not at the call.
func (s *state) spill() int {
	buf := make([]int, 8) // want `hot path \(via spill\): make allocates`
	return len(buf)
}

//hbvet:hotpath
func (s *state) Allocates(v int, bs []byte, str string) {
	_ = make([]int, 4)          // want `make allocates`
	_ = new(int)                // want `new allocates`
	s.keys = append(s.keys, v)  // want `append may grow the backing array`
	_ = []int{1, 2}             // want `slice literal allocates`
	_ = map[int]int{}           // want `map literal allocates`
	_ = &pair{1, 2}             // want `escaping composite literal allocates`
	_ = func() int { return v } // want `function literal allocates a closure`
	_ = str + "x"               // want `string concatenation allocates`
	_ = any(v)                  // want `conversion to interface allocates`
	_ = []byte(str)             // want `string-to-slice conversion allocates`
	_ = string(bs)              // want `slice-to-string conversion allocates`
	take(v)                     // want `argument boxes into interface parameter and allocates`
	logf(v)                     // want `argument boxes into interface parameter and allocates`
	logf(s.box...)              // passing the []any through boxes nothing
}

func take(any) {}

func logf(args ...any) {}

//hbvet:hotpath
func (s *state) Blocks(ch chan int) {
	s.mu.Lock() // want `lock/synchronization operation \(\*sync\.Mutex\)\.Lock`
	ch <- 1     // want `channel send blocks`
	<-ch        // want `channel receive blocks`
	close(ch)   // want `channel close`
	for range ch { // want `ranging over a channel blocks`
	}
	select {} // want `select blocks`
	go spin() // want `starting a goroutine allocates`
}

func spin() {}

//hbvet:hotpath
func (s *state) Indirect(r reader, f func() int) int {
	n := s.hook()                // want `call through a function-valued field cannot be verified`
	n += f()                     // want `call through a function value cannot be verified`
	n += r.Read()                // want `dynamic Read call through an interface cannot be verified`
	n += strings.Count("a", "a") // want `call into non-hotpath function strings\.Count`
	return n
}

//hbvet:hotpath
func (s *state) Amortized() {
	s.flushSlow() //hbvet:allow hotpath -- golden test: amortized spill, measured off the steady state
}

// flushSlow allocates freely, but the only path into it is the allowed
// edge above — the allow prunes traversal, so nothing here is reported.
func (s *state) flushSlow() {
	s.keys = append(s.keys, make([]int, 16)...)
}

// notHot is never marked and never reached from a hot path: free to
// allocate without comment.
func notHot() []int { return make([]int, 1) }
