package heartbeat

// Sink receives every global record as it is produced. Sinks expose the
// heartbeat to the world outside the process — the paper's reference
// implementation writes each heartbeat to a file that external services
// read; package hbfile provides that sink. WriteRecord is called
// synchronously from Beat, potentially from many goroutines at once, so
// implementations must be concurrency-safe and should be fast.
//
// Delivery happens while the aggregator lock is held, so a sink must not
// call back into the originating Heartbeat: Beat and Flush from inside a
// sink deadlock (or recurse, on the no-backlog fast path). Count, Rate,
// and History are tolerated — they fall back to a lock-free estimate or
// the pre-merge history — but the right design is for a sink to hand
// records off, not to re-enter.
type Sink interface {
	WriteRecord(Record) error
}

// TargetSink is implemented by sinks that can also publish the target
// heart-rate range to external observers (the reference implementation
// writes targets into the same file as the heartbeats).
type TargetSink interface {
	Sink
	WriteTarget(min, max float64) error
}

// BatchSink is implemented by sinks that can accept an ordered batch of
// records in one call. The aggregator delivers each shard merge through
// WriteRecords when the sink supports it, amortizing per-record overhead
// (hbfile.Writer, for example, takes its lock and advances its cursor once
// per batch). Sinks that don't implement BatchSink receive the same records
// through WriteRecord, one call each, in the same order.
//
// The slice is the aggregator's reusable scratch buffer: it is only valid
// for the duration of the call. A sink that wants to keep the records must
// copy them before returning.
type BatchSink interface {
	Sink
	WriteRecords([]Record) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record) error

// WriteRecord implements Sink.
func (f SinkFunc) WriteRecord(r Record) error { return f(r) }

// MultiSink fans records out to several sinks, returning the first error.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) WriteRecord(r Record) error {
	var first error
	for _, s := range m {
		if err := s.WriteRecord(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteRecords fans a batch out to every sink, using each sink's batch
// entry point when it has one. It returns the first error but still
// attempts every sink.
func (m multiSink) WriteRecords(recs []Record) error {
	var first error
	for _, s := range m {
		if bs, ok := s.(BatchSink); ok {
			if err := bs.WriteRecords(recs); err != nil && first == nil {
				first = err
			}
			continue
		}
		for _, r := range recs {
			if err := s.WriteRecord(r); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (m multiSink) WriteTarget(min, max float64) error {
	var first error
	for _, s := range m {
		if ts, ok := s.(TargetSink); ok {
			if err := ts.WriteTarget(min, max); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
