// Package a is the wallclock analyzer's golden input: direct wall-clock
// reads and waits, the justified-allow escape hatch, and the shapes that
// must stay silent.
package a

import (
	"context"
	"time"
)

func violations(ctx context.Context) {
	_ = time.Now()                       // want `direct time\.Now call outside a clock seam`
	time.Sleep(time.Millisecond)         // want `direct time\.Sleep call`
	<-time.After(time.Second)            // want `direct time\.After call`
	t := time.NewTicker(time.Second)     // want `direct time\.NewTicker call`
	t.Stop()
	tm := time.NewTimer(time.Second) // want `direct time\.NewTimer call`
	tm.Stop()
	time.AfterFunc(time.Second, func() {}) // want `direct time\.AfterFunc call`
	_ = time.Since(time.Time{})            // want `direct time\.Since call`

	c1, cancel1 := context.WithTimeout(ctx, time.Second) // want `direct context\.WithTimeout call`
	defer cancel1()
	_ = c1
	c2, cancel2 := context.WithDeadline(ctx, time.Time{}) // want `direct context\.WithDeadline call`
	defer cancel2()
	_ = c2
}

// valueReference passes time.Now around without calling it — still a
// wall-clock dependency.
func valueReference() func() time.Time {
	return time.Now // want `direct time\.Now call`
}

func allowed() {
	time.Sleep(time.Millisecond) //hbvet:allow wallclock -- golden test: a justified edge stays silent
	//hbvet:allow wallclock -- golden test: a standalone allow covers the next line
	_ = time.Now()
}

// unjustified allows silence nothing and are themselves reported.
func unjustified() {
	time.Sleep(time.Millisecond) //hbvet:allow wallclock // want `direct time\.Sleep call` `malformed //hbvet:allow comment`
}

// otherAnalyzerAllow must not leak across analyzers: an allow naming
// hotpath does not cover a wallclock finding.
func otherAnalyzerAllow() {
	time.Sleep(time.Millisecond) //hbvet:allow hotpath -- wrong analyzer name // want `direct time\.Sleep call`
}

// silent shapes: durations, comparisons, formatting — time usage that
// never reads the wall. In particular the time.Time methods sharing names
// with banned package functions ((time.Time).After/Sub) are arithmetic.
func silent(a, b time.Time) time.Duration {
	if a.After(b) {
		return a.Sub(b)
	}
	if a.Before(b) {
		return b.Sub(a)
	}
	return 3 * time.Second
}
