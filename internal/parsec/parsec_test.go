package parsec

import (
	"math/rand"
	"testing"

	"repro/sim"
)

func TestKernelsAllPresent(t *testing.T) {
	ks := Kernels()
	if len(ks) != 10 {
		t.Fatalf("Kernels() = %d kernels, want 10", len(ks))
	}
	want := []string{
		"blackscholes", "bodytrack", "canneal", "dedup", "facesim",
		"ferret", "fluidanimate", "streamcluster", "swaptions", "x264",
	}
	for i, k := range ks {
		if k.Name() != want[i] {
			t.Errorf("kernel %d = %q, want %q", i, k.Name(), want[i])
		}
		if k.UnitsPerBeat() <= 0 {
			t.Errorf("%s: UnitsPerBeat = %d", k.Name(), k.UnitsPerBeat())
		}
		if k.BeatLabel() == "" {
			t.Errorf("%s: empty BeatLabel", k.Name())
		}
	}
}

func TestByName(t *testing.T) {
	k, ok := ByName("canneal")
	if !ok || k.Name() != "canneal" {
		t.Fatalf("ByName(canneal) = %v, %v", k, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName(nonesuch) found something")
	}
}

// Every kernel must do real, non-trivial work: positive op counts and
// checksums that vary across units (constant checksums would suggest the
// computation is degenerate or elided).
func TestKernelsProduceWork(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			seen := make(map[uint64]bool)
			var totalOps float64
			const units = 20
			for i := 0; i < units; i++ {
				cs, ops := k.DoUnit(rng)
				if ops <= 0 {
					t.Fatalf("unit %d: ops = %v", i, ops)
				}
				totalOps += ops
				seen[cs] = true
			}
			if len(seen) < units/2 {
				t.Fatalf("only %d distinct checksums in %d units", len(seen), units)
			}
			if totalOps < 100 {
				t.Fatalf("suspiciously little work: %v ops", totalOps)
			}
		})
	}
}

// Kernels must be deterministic given the same seed (required for
// reproducible benchmarks).
func TestKernelsDeterministic(t *testing.T) {
	for _, name := range []string{"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret", "fluidanimate", "streamcluster", "swaptions", "x264"} {
		name := name
		t.Run(name, func(t *testing.T) {
			k1, _ := ByName(name)
			k2, _ := ByName(name)
			r1 := rand.New(rand.NewSource(7))
			r2 := rand.New(rand.NewSource(7))
			for i := 0; i < 10; i++ {
				c1, o1 := k1.DoUnit(r1)
				c2, o2 := k2.DoUnit(r2)
				if c1 != c2 || o1 != o2 {
					t.Fatalf("unit %d diverged: (%x, %v) vs (%x, %v)", i, c1, o1, c2, o2)
				}
			}
		})
	}
}

func TestProfilesMatchTable2(t *testing.T) {
	ps := Profiles()
	if len(ps) != 10 {
		t.Fatalf("%d profiles, want 10", len(ps))
	}
	// Spot-check the paper's values.
	want := map[string]float64{
		"blackscholes":  561.03,
		"bodytrack":     4.31,
		"canneal":       1043.76,
		"dedup":         264.30,
		"facesim":       0.72,
		"ferret":        40.78,
		"fluidanimate":  41.25,
		"streamcluster": 0.02,
		"swaptions":     2.27,
		"x264":          11.32,
	}
	for _, p := range ps {
		if want[p.Name] != p.PaperRate {
			t.Errorf("%s: PaperRate = %v, want %v", p.Name, p.PaperRate, want[p.Name])
		}
		if p.ParallelFrac <= 0 || p.ParallelFrac > 1 {
			t.Errorf("%s: ParallelFrac = %v", p.Name, p.ParallelFrac)
		}
		if p.Beats <= 0 {
			t.Errorf("%s: Beats = %d", p.Name, p.Beats)
		}
		// A kernel exists for every profile.
		if _, ok := ByName(p.Name); !ok {
			t.Errorf("%s: no kernel", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("facesim")
	if err != nil || p.PaperRate != 0.72 {
		t.Fatalf("ProfileByName(facesim) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// Calibration identity: executing one calibrated beat of work on the
// reference machine must take exactly 1/PaperRate seconds.
func TestOpsPerBeatCalibration(t *testing.T) {
	const coreRate = 1e9
	for _, p := range Profiles() {
		clk := sim.NewClock(sim.Epoch)
		m := sim.NewMachine(clk, 8, coreRate)
		start := clk.Now()
		m.Execute(p.Work(coreRate, 8))
		got := clk.Elapsed(start).Seconds()
		want := 1 / p.PaperRate
		// The clock quantizes to nanoseconds, so allow ppm-level error.
		if rel := (got - want) / want; rel > 1e-6 || rel < -1e-6 {
			t.Errorf("%s: beat took %vs, want %vs", p.Name, got, want)
		}
	}
}

func TestSchedWorkloadShapes(t *testing.T) {
	for _, w := range SchedWorkloads() {
		if w.TargetMin >= w.TargetMax {
			t.Errorf("%s: window [%v, %v]", w.Name, w.TargetMin, w.TargetMax)
		}
		if w.Beats <= 0 || w.CheckEvery <= 0 || w.Window <= 0 {
			t.Errorf("%s: beats=%d check=%d window=%d", w.Name, w.Beats, w.CheckEvery, w.Window)
		}
		for beat := 1; beat <= w.Beats; beat++ {
			if s := w.Shape(beat); s <= 0 {
				t.Fatalf("%s: shape(%d) = %v", w.Name, beat, s)
			}
		}
	}
}

// The achievable-rate geometry behind each scheduling figure: some core
// count must satisfy the target window on the nominal load.
func TestSchedWorkloadsAchievable(t *testing.T) {
	for _, w := range SchedWorkloads() {
		achievable := false
		for c := 1; c <= 8; c++ {
			r := w.BaseRate * sim.Speedup(c, w.ParallelFrac)
			if r >= w.TargetMin && r <= w.TargetMax {
				achievable = true
				break
			}
		}
		if !achievable {
			t.Errorf("%s: no core count meets [%v, %v]", w.Name, w.TargetMin, w.TargetMax)
		}
	}
}

// Figure 5's specific geometry: seven cores needed initially, eight after
// the bump, one core after the drop.
func TestBodytrackGeometry(t *testing.T) {
	w := BodytrackSched()
	rate := func(c int, shape float64) float64 {
		return w.BaseRate * sim.Speedup(c, w.ParallelFrac) / shape
	}
	if r := rate(6, 1); r >= w.TargetMin {
		t.Errorf("6 cores already meet the target (%v); paper needs 7", r)
	}
	if r := rate(7, 1); r < w.TargetMin || r > w.TargetMax {
		t.Errorf("7 cores rate %v outside window", r)
	}
	if r := rate(7, 1.17); r >= w.TargetMin {
		t.Errorf("7 cores under bump rate %v should dip below window", r)
	}
	if r := rate(8, 1.17); r < w.TargetMin || r > w.TargetMax {
		t.Errorf("8 cores under bump rate %v outside window", r)
	}
	if r := rate(1, 0.16); r < w.TargetMin || r > w.TargetMax {
		t.Errorf("1 core under light load rate %v outside window", r)
	}
}
