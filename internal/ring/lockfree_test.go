package ring

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSPSequentialSemantics(t *testing.T) {
	r := NewSP(64)
	if r.Cap() != 64 || r.Total() != 0 {
		t.Fatalf("fresh ring: cap %d total %d", r.Cap(), r.Total())
	}
	if r.Last(10) != nil {
		t.Fatal("Last on empty ring not nil")
	}
	if _, ok := r.Read(1); ok {
		t.Fatal("Read(1) ok on empty ring")
	}

	// Three beats at t=100 (one tagged), two at t=200.
	seq, newRun := r.Push(100, 0)
	if seq != 1 || !newRun {
		t.Fatalf("first push: seq %d newRun %v", seq, newRun)
	}
	if seq, newRun = r.Push(100, 7); seq != 2 || newRun {
		t.Fatalf("second push: seq %d newRun %v", seq, newRun)
	}
	r.Push(100, 0)
	if seq, newRun = r.Push(200, 0); seq != 4 || !newRun {
		t.Fatalf("new-run push: seq %d newRun %v", seq, newRun)
	}
	r.Push(200, -3)

	if r.Total() != 5 || r.Entries() != 2 {
		t.Fatalf("total %d entries %d, want 5 and 2", r.Total(), r.Entries())
	}
	want := []Entry{{1, 100, 0}, {2, 100, 7}, {3, 100, 0}, {4, 200, 0}, {5, 200, -3}}
	got := r.Last(100)
	if len(got) != len(want) {
		t.Fatalf("Last = %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Last[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	if e, ok := r.Read(2); !ok || e != want[1] {
		t.Fatalf("Read(2) = %+v, %v", e, ok)
	}
	if _, ok := r.Read(6); ok {
		t.Fatal("Read past total ok")
	}
	if last := r.Last(2); len(last) != 2 || last[0].Seq != 4 {
		t.Fatalf("Last(2) = %+v", last)
	}
}

// Property: driven sequentially with arbitrary time/tag streams, SP agrees
// record-for-record with the plain Buffer oracle over the retained window.
func TestSPEquivalenceProperty(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw)%50 + 8
		sp := NewSP(capacity)
		oracle := New[Entry](capacity)
		now := int64(1)
		for i, op := range ops {
			if op%3 == 0 { // repeat the timestamp on every third op
				now += int64(op % 97)
			}
			tag := int64(0)
			if op%2 == 0 {
				tag = int64(op) - 40
			}
			seq, _ := sp.Push(now, tag)
			oracle.Push(Entry{Seq: uint64(i + 1), Time: now, Tag: tag})
			if seq != uint64(i+1) {
				return false
			}
		}
		if sp.Total() != oracle.Total() {
			return false
		}
		for _, n := range []int{0, 1, capacity / 2, capacity, capacity + 10} {
			a, b := sp.Last(n), oracle.Last(n)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Readers racing a wrapping producer must never observe a torn record: the
// producer stamps time = 2*seqIndex+7 and tag = seqIndex so any mismatched
// pair is detectable.
func TestSPNoTornReadsUnderWrap(t *testing.T) {
	const (
		capacity = 32 // small: force heavy wraparound
		pushes   = 20000
	)
	r := NewSP(capacity)
	var torn atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range r.Last(capacity) {
					if e.Time != 2*int64(e.Seq)+7 || (e.Tag != 0 && e.Tag != int64(e.Seq)) {
						torn.Add(1)
						return
					}
				}
				if e, ok := r.Read(r.Total()); ok {
					if e.Time != 2*int64(e.Seq)+7 {
						torn.Add(1)
						return
					}
				}
			}
		}()
	}
	for i := int64(1); i <= pushes; i++ {
		tag := int64(0)
		if i%3 == 0 {
			tag = i
		}
		r.Push(2*i+7, tag)
	}
	close(stop)
	readers.Wait()
	if torn.Load() != 0 {
		t.Fatalf("observed %d torn records", torn.Load())
	}
	if r.Total() != pushes {
		t.Fatalf("total = %d, want %d", r.Total(), pushes)
	}
	recs := r.Last(capacity)
	if len(recs) != capacity {
		t.Fatalf("retained %d records, want %d", len(recs), capacity)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("records not dense: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// A cursor must consume every record exactly once, in order, with correct
// times and tags, while the producer stays within the no-overwrite budget
// the heartbeat aggregator enforces.
func TestSPCursorConsumesAll(t *testing.T) {
	const capacity = 128
	r := NewSP(capacity)
	cur := r.NewCursor()
	next := uint64(1)
	now := int64(5)
	for round := 0; round < 200; round++ {
		n := uint64(round%(capacity/2) + 1)
		for i := uint64(0); i < n; i++ {
			if i%4 == 0 {
				now += 3
			}
			r.Push(now, int64(r.Total()%5))
		}
		limit := r.Total()
		for {
			e, ok := cur.Next(limit)
			if !ok {
				break
			}
			if e.Seq != next {
				t.Fatalf("cursor out of order: got %d, want %d", e.Seq, next)
			}
			if e.Tag != int64((e.Seq-1)%5) {
				t.Fatalf("seq %d tag = %d, want %d", e.Seq, e.Tag, (e.Seq-1)%5)
			}
			if want, ok := r.Read(e.Seq); ok && want.Time != e.Time {
				t.Fatalf("seq %d time = %d, want %d", e.Seq, e.Time, want.Time)
			}
			next = e.Seq + 1
		}
		if cur.Consumed() != limit {
			t.Fatalf("consumed %d, want %d", cur.Consumed(), limit)
		}
	}
}

// Skip and RunLen drive the aggregator's lazy-discard path: runs report
// contiguous same-timestamp spans and skipping stays consistent with Next.
func TestSPCursorRunsAndSkip(t *testing.T) {
	r := NewSP(64)
	for i := 0; i < 10; i++ {
		r.Push(100, int64(i))
	}
	for i := 0; i < 5; i++ {
		r.Push(200, 0)
	}
	cur := r.NewCursor()
	limit := r.Total()
	if tm := cur.PeekTime(); tm != 100 {
		t.Fatalf("PeekTime = %d, want 100", tm)
	}
	if n := cur.RunLen(limit); n != 10 {
		t.Fatalf("RunLen = %d, want 10", n)
	}
	cur.Skip(7)
	if n := cur.RunLen(limit); n != 3 {
		t.Fatalf("RunLen after skip = %d, want 3", n)
	}
	e, ok := cur.Next(limit)
	if !ok || e.Seq != 8 || e.Time != 100 || e.Tag != 7 {
		t.Fatalf("Next after skip = %+v, %v", e, ok)
	}
	cur.Skip(2)
	if tm := cur.PeekTime(); tm != 200 {
		t.Fatalf("PeekTime in second run = %d, want 200", tm)
	}
	if n := cur.RunLen(limit); n != 5 {
		t.Fatalf("second RunLen = %d, want 5", n)
	}
	for want := uint64(11); want <= 15; want++ {
		e, ok := cur.Next(limit)
		if !ok || e.Seq != want || e.Time != 200 {
			t.Fatalf("tail Next = %+v, %v (want seq %d)", e, ok, want)
		}
	}
	if _, ok := cur.Next(limit); ok {
		t.Fatal("Next past limit ok")
	}
}

func TestBufferSkip(t *testing.T) {
	b := New[int](4)
	b.Push(1)
	b.Push(2)
	b.Skip(3)
	b.Push(9)
	if b.Total() != 6 {
		t.Fatalf("Total = %d, want 6", b.Total())
	}
	got := b.Snapshot()
	want := []int{0, 0, 0, 9} // skipped positions read back as zeros
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	b.Skip(100) // skipping far past capacity clears everything retained
	for _, v := range b.Snapshot() {
		if v != 0 {
			t.Fatalf("Snapshot after big skip = %v", b.Snapshot())
		}
	}
}
