package loadgen

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfDeterminism: the same seed must produce the identical sample
// sequence — the property every SCALE_SEED replay rests on.
func TestZipfDeterminism(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		z := NewZipf(64, 1.1)
		a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		for i := 0; i < 10_000; i++ {
			if x, y := z.Sample(a), z.Sample(b); x != y {
				t.Fatalf("seed %d: sample %d diverged: %d vs %d", seed, i, x, y)
			}
		}
	}
}

// TestZipfFullSupport: at small N every rank must be reachable — the long
// tail exists, it is just thin.
func TestZipfFullSupport(t *testing.T) {
	for _, s := range []float64{0, 0.8, 1.1, 2.0} {
		z := NewZipf(8, s)
		rng := rand.New(rand.NewSource(7))
		seen := make(map[int]int)
		for i := 0; i < 20_000; i++ {
			r := z.Sample(rng)
			if r < 0 || r >= z.N() {
				t.Fatalf("s=%g: sample %d out of range", s, r)
			}
			seen[r]++
		}
		for rank := 0; rank < z.N(); rank++ {
			if seen[rank] == 0 {
				t.Fatalf("s=%g: rank %d never drawn in 20k samples (weight %g)", s, rank, z.Weight(rank))
			}
		}
	}
}

// TestZipfRankFrequencySlope: the defining Zipf property — on a log-log
// plot of frequency vs rank, the empirical slope of the well-sampled top
// ranks must match -s within tolerance.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.1, 1.5} {
		const n, samples, top = 200, 400_000, 30
		z := NewZipf(n, s)
		rng := rand.New(rand.NewSource(11))
		freq := make([]float64, n)
		for i := 0; i < samples; i++ {
			freq[z.Sample(rng)]++
		}
		// Least-squares slope of log(freq) on log(rank+1) over the top
		// ranks, where sampling noise is negligible.
		var sx, sy, sxx, sxy float64
		for r := 0; r < top; r++ {
			if freq[r] == 0 {
				t.Fatalf("s=%g: top rank %d unsampled", s, r)
			}
			x, y := math.Log(float64(r+1)), math.Log(freq[r]/samples)
			sx, sy, sxx, sxy = sx+x, sy+y, sxx+x*x, sxy+x*y
		}
		slope := (float64(top)*sxy - sx*sy) / (float64(top)*sxx - sx*sx)
		if math.Abs(slope+s) > 0.08 {
			t.Fatalf("s=%g: empirical rank-frequency slope %.3f, want %.3f ± 0.08", s, slope, -s)
		}
	}
}

// TestZipfWeights: the analytic masses are a distribution and monotone
// decreasing, and the empirical frequency of the hottest rank converges to
// its weight.
func TestZipfWeights(t *testing.T) {
	z := NewZipf(50, 1.2)
	var sum float64
	for r := 0; r < z.N(); r++ {
		w := z.Weight(r)
		if w <= 0 {
			t.Fatalf("rank %d: weight %g", r, w)
		}
		if r > 0 && w > z.Weight(r-1)+1e-12 {
			t.Fatalf("rank %d heavier than rank %d", r, r-1)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", sum)
	}
	rng := rand.New(rand.NewSource(3))
	const samples = 200_000
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Sample(rng) == 0 {
			hot++
		}
	}
	got, want := float64(hot)/samples, z.Weight(0)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("hottest rank frequency %.4f, want %.4f ± 0.01", got, want)
	}
}
