// Shared-memory observation (§2.3, §3): the producer publishes heartbeats
// into an mmap'd region — each beat is a handful of stores, no syscalls —
// and a separate process observes it by mapping the same file read-only.
// This is the paper's "standardized shared-memory buffer" topology: the
// registry file plays the buffer, the seqlocked ring plays the protocol,
// and the observer costs the producer nothing no matter how often it
// polls.
//
// The example re-executes itself as the producer child, watches the region
// from the parent, and closes with the delivery-contract audit every other
// transport in this repo passes: delivered + missed == head
// (simcheck.Conserved), sequence numbers dense within each batch.
//
//	go run ./examples/shm
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"repro/hbshm"
	"repro/heartbeat"
	"repro/internal/simcheck"
)

const (
	roleEnv = "HBSHM_EXAMPLE_ROLE"
	pathEnv = "HBSHM_EXAMPLE_PATH"
	beats   = 50_000
	window  = 100
)

func main() {
	if os.Getenv(roleEnv) == "producer" {
		produce(os.Getenv(pathEnv))
		return
	}

	dir, err := os.MkdirTemp("", "hbshm-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "app.shm")

	// Re-exec this binary as the producer child: a genuinely separate
	// process, sharing nothing with us but the mapped file.
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), roleEnv+"=producer", pathEnv+"="+path)
	child.Stdout, child.Stderr = os.Stdout, os.Stderr
	if err := child.Start(); err != nil {
		log.Fatal(err)
	}

	// The region appears when the child creates it; retry until it maps.
	var r *hbshm.Reader
	for {
		if r, err = hbshm.Open(path); err == nil {
			break
		}
		time.Sleep(time.Millisecond) //hbvet:allow wallclock -- cross-process retry: waiting for the child to create the region, no shared clock exists
	}
	fmt.Printf("observer: mapped %s (window %d, capacity %d)\n", path, r.Window(), r.Capacity())

	s := hbshm.StreamFrom(r, time.Millisecond, 0, nil)
	defer s.Close()
	tracker := simcheck.NewTracker("shm observer", 0)
	var delivered, missed, head uint64
	batches := 0
	for {
		b, err := s.Next(context.Background())
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := tracker.Absorb(b); err != nil {
			log.Fatal(err)
		}
		delivered += uint64(len(b.Records))
		missed += b.Missed
		head = b.Count
		if batches++; batches%50 == 0 {
			if rate, ok, _ := r.Rate(0); ok {
				fmt.Printf("observer: head %d, %.0f beats/s over the window\n", head, rate)
			}
		}
		s.Recycle(b)
	}
	if err := child.Wait(); err != nil {
		log.Fatal(err)
	}

	// The audit: everything the producer published is either in our hands
	// or accounted as lapped — across process boundaries, with zero
	// coordination beyond the mapping itself.
	if err := simcheck.Conserved("shm observer", delivered, missed, head); err != nil {
		log.Fatal(err)
	}
	if head != beats {
		log.Fatalf("observer saw head %d, producer published %d", head, beats)
	}
	fmt.Printf("observer: %d delivered + %d lapped = %d published — conserved\n", delivered, missed, head)
}

// produce is the child: an instrumented application whose only observation
// cost is stores into the mapped ring.
func produce(path string) {
	w, err := hbshm.Create(path, window, 1<<14)
	if err != nil {
		log.Fatal(err)
	}
	hb, err := heartbeat.New(window, heartbeat.WithSink(w))
	if err != nil {
		log.Fatal(err)
	}
	if err := hb.SetTarget(1000, 100000); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < beats; i++ {
		hb.Beat()
		if i%2000 == 0 {
			time.Sleep(time.Millisecond) //hbvet:allow wallclock -- real pacing so the observer process sees distinct phases
		}
	}
	hb.Flush()
	hb.Close()
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("producer: published %d beats through %s\n", beats, path)
}
