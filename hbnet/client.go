package hbnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// ErrRejected marks a handshake the server answered and permanently
// refused — an unknown feed, a protocol mismatch. Retrying cannot help
// until the operator intervenes, so the reconnect loop stops and Next
// surfaces the error (check with errors.Is). Transient server-side
// failures (a feed file mid-recreation) are NOT rejections: the server
// flags them as such and the client keeps retrying with backoff.
var ErrRejected = errors.New("hbnet: subscription rejected")

// ClientOption configures Dial.
type ClientOption func(*Client)

// WithoutReconnect makes a broken connection terminal: Next returns the
// connection error instead of redialing. The default is to reconnect with
// capped exponential backoff, resuming from the last delivered cursor.
func WithoutReconnect() ClientOption {
	return func(c *Client) { c.reconnect = false }
}

// WithDialTimeout bounds each dial attempt, including the handshake
// (default 5 seconds).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.dialTimeout = d }
}

// WithReconnectBackoff sets the redial pacing: the first retry waits min,
// doubling up to max. The defaults are 50ms and 2s.
func WithReconnectBackoff(min, max time.Duration) ClientOption {
	return func(c *Client) {
		if min > 0 {
			c.backoffMin = min
		}
		if max >= c.backoffMin {
			c.backoffMax = max
		}
	}
}

// WithOnReconnect installs a callback invoked from the client's reader
// goroutine after each successful reconnect, with the cursor the stream
// resumed from.
func WithOnReconnect(f func(cursor uint64)) ClientOption {
	return func(c *Client) { c.onReconnect = f }
}

// WithReconnectJitterSeed seeds the client's backoff jitter (the default
// seed is process-unique per client). Every backoff wait is drawn
// uniformly from (0, backoff] — full jitter — so a fleet of clients that
// lost the same server at the same instant spreads its redials across the
// whole backoff window instead of stampeding back in lockstep. A fixed
// seed makes a test's wait sequence reproducible.
func WithReconnectJitterSeed(seed int64) ClientOption {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// jitterSeq varies the default jitter seeds of clients created in the same
// nanosecond — the stampede case the jitter exists for.
var jitterSeq atomic.Int64

// Client is a remote heartbeat subscription: the consuming half of an
// hbnet connection. It satisfies observer.Stream (and io.Closer), so it
// plugs into everything the local streams plug into — observer.Monitor,
// observer.Hub, scheduler.CoreScheduler, scheduler.Partitioner — which is
// the point: a scheduler does not know or care that its signal crosses a
// machine boundary.
//
// A background reader drains the connection into a bounded buffer, so a
// briefly slow consumer does not stall the socket; a consumer slower than
// the producer for long backpressures TCP, and any records the producer's
// ring laps meanwhile surface as Missed. When the connection breaks, the
// reader redials with the last delivered cursor (unless WithoutReconnect)
// — the server replays what the history still retains and the gap, if any,
// is counted in Missed, never silently dropped and never re-delivered.
//
// Like every Stream, a Client is a single-consumer cursor: calls to Next
// must not overlap. Close may be called from any goroutine.
type Client struct {
	addr, feed  string
	dialTimeout time.Duration
	backoffMin  time.Duration
	backoffMax  time.Duration
	reconnect   bool
	onReconnect func(uint64)
	dialer      Dialer          // nil = real network
	clk         heartbeat.Clock // nil = wall clock; paces backoff waits
	rng         *rand.Rand      // backoff jitter; used only by the reader goroutine

	// recFree recycles decoded record slices (Recycle): consumers that are
	// done with a batch before the next Next — the Relay merge pump — make
	// the whole read path allocation-free. A bounded free list, not a
	// sync.Pool: the GC empties pools every cycle, and under load that
	// turns every multi-megabyte catch-up batch into a fresh allocation
	// plus a zeroing pass — exactly the cost recycling exists to remove.
	recMu   sync.Mutex
	recFree [][]heartbeat.Record

	// kind is the frame type this subscription expects: frameBatch for raw
	// record feeds (Dial), frameRollup for rollup feeds (DialRollup).
	kind byte

	ctx    context.Context
	cancel context.CancelFunc

	batches chan netMsg
	// readerDone is closed when the reader goroutine exits; termErr then
	// holds the terminal error Next reports once the buffer drains.
	readerDone chan struct{}
	termErr    error

	mu   sync.Mutex // guards conn swaps vs Close
	conn net.Conn

	closeOnce sync.Once
	// wireCursor tracks the newest sequence number read off the wire —
	// the redial resume point (batches between it and the delivered
	// cursor sit safely in the buffer, so a reconnect must not re-request
	// them). delivered and missed advance only when Next hands a batch to
	// the consumer, so Cursor()/Missed() never run ahead of what the
	// consumer has actually seen.
	wireCursor atomic.Uint64
	delivered  atomic.Uint64
	missed     atomic.Uint64
	reconnects atomic.Int64
}

// netMsg is one decoded delivery: a raw batch or a rollup batch (per the
// client's kind), paired with the server cursor after it.
type netMsg struct {
	b      observer.Batch
	rb     RollupBatch
	cursor uint64
}

// Dial connects to an hbnet server and subscribes to the named feed from
// the beginning of its retained history. The initial connection and
// handshake are synchronous, so an unreachable server or unknown feed
// fails here rather than on the first Next.
func Dial(addr, feed string, opts ...ClientOption) (*Client, error) {
	return DialFrom(addr, feed, 0, opts...)
}

// DialFrom is Dial resuming after sequence number since: the server
// replays only retained records newer than since, counting anything
// already lapped as Missed — how a consumer that kept its cursor across
// its own restart avoids re-processing records it has seen.
func DialFrom(addr, feed string, since uint64, opts ...ClientOption) (*Client, error) {
	return dial(addr, feed, since, frameBatch, opts)
}

// DialRollup connects to a rollup feed (Server.PublishRollup — typically a
// Relay's downsampled export) from the beginning of its retained
// emissions. Consume it with NextRollups; Next is for raw feeds and
// errors on a rollup subscription.
func DialRollup(addr, feed string, opts ...ClientOption) (*Client, error) {
	return DialRollupFrom(addr, feed, 0, opts...)
}

// DialRollupFrom is DialRollup resuming after emission number since (the
// Cursor of the last delivered RollupBatch): emissions still retained are
// replayed, emissions already lapped are counted as Missed.
func DialRollupFrom(addr, feed string, since uint64, opts ...ClientOption) (*Client, error) {
	return dial(addr, feed, since, frameRollup, opts)
}

func dial(addr, feed string, since uint64, kind byte, opts []ClientOption) (*Client, error) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		addr:        addr,
		feed:        feed,
		kind:        kind,
		dialTimeout: 5 * time.Second,
		backoffMin:  50 * time.Millisecond,
		backoffMax:  2 * time.Second,
		reconnect:   true,
		ctx:         ctx,
		cancel:      cancel,
		batches:     make(chan netMsg, 16),
		readerDone:  make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ jitterSeq.Add(1)<<32)) //hbvet:allow wallclock,clockthread -- jitter seed entropy, not a time read: determinism comes from injecting rng, not clk
	}
	c.wireCursor.Store(since)
	c.delivered.Store(since)
	conn, err := c.dialOnce()
	if err != nil {
		cancel()
		return nil, err
	}
	c.conn = conn
	go c.readLoop(conn)
	return c, nil
}

// dialOnce establishes one connection and completes the handshake from the
// current cursor.
func (c *Client) dialOnce() (net.Conn, error) {
	d := c.dialer
	if d == nil {
		d = &net.Dialer{Timeout: c.dialTimeout}
	}
	// Bound the dial through the context too, so an injected dialer that
	// blackholes is cut off after dialTimeout just like the real network.
	dctx := c.ctx
	if c.dialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(c.ctx, c.dialTimeout) //hbvet:allow wallclock,clockthread -- deliberate wall bound: cuts off blackholed dialers even when c.clk is virtual and nobody advances it
		defer cancel()
	}
	conn, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("hbnet: dial %s: %w", c.addr, err)
	}
	if c.dialTimeout > 0 {
		// On the client's clock, not the wall's: under a virtual clock the
		// handshake deadline is part of the simulation.
		conn.SetDeadline(heartbeat.Now(c.clk).Add(c.dialTimeout))
	}
	since := c.wireCursor.Load()
	if err := writeFrame(conn, appendHello(nil, c.feed, since)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hbnet: hello: %w", err)
	}
	ftype, body, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("hbnet: welcome: %w", err)
	}
	switch ftype {
	case frameWelcome:
		cursor, err := decodeWelcome(body)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("%w: %w", ErrRejected, err)
		}
		if cursor != since {
			// The echo proves the server parsed the hello we sent; a
			// mismatch means the stream would resume from the wrong spot.
			conn.Close()
			return nil, fmt.Errorf("%w: welcome echoes cursor %d, sent %d", ErrRejected, cursor, since)
		}
	case frameError:
		conn.Close()
		msg, permanent := decodeError(body)
		if permanent {
			return nil, fmt.Errorf("%w by server: %s", ErrRejected, msg)
		}
		// Transient server-side failure (e.g. the feed's file is being
		// recreated): report it as an ordinary error so redial retries.
		return nil, fmt.Errorf("hbnet: server: %s", msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected frame %#x during handshake", ErrRejected, ftype)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// readLoop drains connections into the batch buffer until the stream ends,
// a terminal error occurs, or the client is closed, redialing as needed.
func (c *Client) readLoop(conn net.Conn) {
	defer close(c.readerDone)
	var failBackoff time.Duration
	for {
		start := c.now()
		err := c.readConn(conn)
		conn.Close()
		switch {
		case err == nil: // frameEOF: the feed ended cleanly
			c.termErr = io.EOF
			return
		case c.ctx.Err() != nil: // Close raced the read
			c.termErr = io.EOF
			return
		case errors.Is(err, ErrRejected):
			// A kind mismatch (raw Next against a rollup feed or vice
			// versa) cannot heal by redialing: the server will keep
			// streaming the same frame type.
			c.termErr = err
			return
		case !c.reconnect:
			c.termErr = err
			return
		}
		// redial paces failed dial attempts, but a connection that
		// handshakes fine and then dies immediately (a feed whose stream
		// errors every time) would otherwise cycle at RTT speed; pace
		// those too, resetting once a connection survives a while.
		if c.now().Sub(start) < time.Second {
			if failBackoff == 0 {
				failBackoff = c.backoffMin
			} else if failBackoff *= 2; failBackoff > c.backoffMax {
				failBackoff = c.backoffMax
			}
			select {
			case <-heartbeat.After(c.clk, c.jitter(failBackoff)):
			case <-c.ctx.Done():
				c.termErr = io.EOF
				return
			}
		} else {
			failBackoff = 0
		}
		next, rerr := c.redial()
		if rerr != nil {
			if c.ctx.Err() != nil {
				c.termErr = io.EOF
			} else {
				c.termErr = rerr
			}
			return
		}
		conn = next
		c.reconnects.Add(1)
		if c.onReconnect != nil {
			c.onReconnect(c.wireCursor.Load())
		}
	}
}

// readConn forwards batches from one connection. nil means clean EOF; any
// other return is the broken-connection (or terminal server) error.
func (c *Client) readConn(conn net.Conn) error {
	var rbuf []byte // reused frame buffer; every decode path copies out of it
	for {
		ftype, body, next, err := readFrameReuse(conn, rbuf)
		if err != nil {
			return fmt.Errorf("hbnet: read: %w", err)
		}
		rbuf = next
		switch ftype {
		case frameBatch:
			if c.kind != frameBatch {
				return fmt.Errorf("%w: feed %q streams raw records — subscribe with Dial, not DialRollup", ErrRejected, c.feed)
			}
			var recs []heartbeat.Record
			c.recMu.Lock()
			if n := len(c.recFree); n > 0 {
				recs = c.recFree[n-1]
				c.recFree[n-1] = nil
				c.recFree = c.recFree[:n-1]
			}
			c.recMu.Unlock()
			b, cursor, err := decodeBatchInto(body, recs)
			if err != nil {
				// A frame that parses wrongly means the stream framing is
				// gone; resync by reconnecting from the last good cursor.
				return err
			}
			c.wireCursor.Store(cursor)
			select {
			case c.batches <- netMsg{b: b, cursor: cursor}:
			case <-c.ctx.Done():
				return fmt.Errorf("hbnet: closed")
			}
		case frameRollup:
			if c.kind != frameRollup {
				return fmt.Errorf("%w: feed %q streams rollups — subscribe with DialRollup, not Dial", ErrRejected, c.feed)
			}
			rb, err := decodeRollups(body)
			if err != nil {
				return err
			}
			c.wireCursor.Store(rb.Cursor)
			select {
			case c.batches <- netMsg{rb: rb, cursor: rb.Cursor}:
			case <-c.ctx.Done():
				return fmt.Errorf("hbnet: closed")
			}
		case frameEOF:
			return nil
		case frameError:
			// A server-side stream failure: with reconnect enabled the
			// redial re-opens the feed (the failure may be transient);
			// without it, readLoop surfaces this error as terminal.
			msg, _ := decodeError(body)
			return fmt.Errorf("hbnet: server: %s", msg)
		default:
			return fmt.Errorf("hbnet: unexpected frame %#x", ftype)
		}
	}
}

// redial re-establishes the connection with capped exponential backoff.
// dialOnce presents the wire cursor — NOT the delivered cursor: batches
// between the two sit safely in c.batches, and re-requesting them would
// deliver duplicates.
func (c *Client) redial() (net.Conn, error) {
	backoff := c.backoffMin
	for {
		conn, err := c.dialOnce()
		if errors.Is(err, ErrRejected) {
			// The server answered and said no (feed gone, protocol
			// mismatch): hammering it cannot help. Stop and surface.
			return nil, err
		}
		if err == nil {
			c.mu.Lock()
			if c.ctx.Err() != nil {
				c.mu.Unlock()
				conn.Close()
				return nil, fmt.Errorf("hbnet: closed")
			}
			c.conn = conn
			c.mu.Unlock()
			return conn, nil
		}
		if c.ctx.Err() != nil {
			return nil, err
		}
		select {
		case <-c.ctx.Done():
			return nil, err
		case <-heartbeat.After(c.clk, c.jitter(backoff)):
		}
		if backoff *= 2; backoff > c.backoffMax {
			backoff = c.backoffMax
		}
	}
}

// jitter draws a full-jitter wait, uniform in (0, d]: the nominal capped
// exponential backoff bounds the wait, the draw desynchronizes it. Only
// the reader goroutine draws, so the unsynchronized rng is safe.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d // too short to meaningfully spread; keep pacing exact
	}
	return time.Duration(c.rng.Int63n(int64(d))) + 1
}

// now reads the client's clock, falling back to the wall clock.
func (c *Client) now() time.Time { return heartbeat.Now(c.clk) }

// Next implements observer.Stream: it blocks until the server pushes
// records and returns them as a Batch. Batches already received are
// returned even when ctx is expired (the non-blocking drain contract).
// After the feed ends — or the client is closed — Next drains the buffer
// and then returns io.EOF; with WithoutReconnect a connection failure is
// returned instead once the buffer is empty, and a reconnect handshake
// the server refuses (errors.Is(err, ErrRejected): feed unpublished,
// protocol mismatch) is terminal even with reconnect enabled.
func (c *Client) Next(ctx context.Context) (observer.Batch, error) {
	if c.kind != frameBatch {
		// Wrapped in ErrRejected: the mismatch is permanent, so consumers
		// that retire terminally rejected streams (a Relay upstream pump)
		// treat this misuse the same way instead of retrying forever.
		return observer.Batch{}, fmt.Errorf("%w: rollup subscription to %q: use NextRollups", ErrRejected, c.feed)
	}
	nb, err := c.next(ctx)
	if err != nil {
		return observer.Batch{}, err
	}
	return nb.b, nil
}

// NextRollups is Next for rollup subscriptions (DialRollup): it blocks
// until the relay emits rollups and returns them as a RollupBatch, with
// the same drain-then-EOF and reconnect semantics as Next. Missed counts
// emissions (downsample windows) lapped before delivery, and accumulates
// into Missed() alongside delivery.
func (c *Client) NextRollups(ctx context.Context) (RollupBatch, error) {
	if c.kind != frameRollup {
		return RollupBatch{}, fmt.Errorf("%w: raw subscription to %q: use Next", ErrRejected, c.feed)
	}
	nb, err := c.next(ctx)
	if err != nil {
		return RollupBatch{}, err
	}
	return nb.rb, nil
}

func (c *Client) next(ctx context.Context) (netMsg, error) {
	select {
	case nb := <-c.batches:
		return c.deliver(nb), nil
	default:
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case nb := <-c.batches:
		return c.deliver(nb), nil
	case <-c.readerDone:
		// The reader quit; anything it buffered first still wins.
		select {
		case nb := <-c.batches:
			return c.deliver(nb), nil
		default:
			return netMsg{}, c.terminal()
		}
	case <-ctx.Done():
		return netMsg{}, ctx.Err()
	}
}

// deliver advances the consumer-visible accounting as a batch is handed
// out of Next (records missed) or NextRollups (emissions missed).
func (c *Client) deliver(nb netMsg) netMsg {
	c.delivered.Store(nb.cursor)
	if c.kind == frameRollup {
		c.missed.Add(nb.rb.Missed)
	} else {
		c.missed.Add(nb.b.Missed)
	}
	return nb
}

// terminal reports why the stream ended; only called after readerDone.
func (c *Client) terminal() error {
	if c.termErr != nil {
		return c.termErr
	}
	return io.EOF
}

// Close disconnects and releases the client. A Next in progress (or any
// later Next) drains the remaining buffered batches and then returns
// io.EOF. Close is idempotent and safe from any goroutine.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		c.cancel()
		c.mu.Lock()
		if c.conn != nil {
			c.conn.Close()
		}
		c.mu.Unlock()
	})
	return nil
}

// BatchRecycler is implemented by streams whose delivered batches can be
// handed back for reuse once the consumer is done with them. The Relay's
// merge pump recycles every batch it absorbs, which at high fan-in is what
// keeps merging allocation-free; consumers that retain a batch's records
// simply never call it.
type BatchRecycler interface {
	Recycle(observer.Batch)
}

// Recycle returns a delivered batch's record slice to the client's decode
// pool (BatchRecycler). Only call it when the consumer is completely done
// with the batch: the records' storage is reused by a later decode.
func (c *Client) Recycle(b observer.Batch) {
	if cap(b.Records) == 0 {
		return
	}
	c.recMu.Lock()
	// Keep enough slices to cover the delivery channel's depth plus the
	// batch being decoded and the one being consumed: the reader can run
	// that far ahead of the consumer, and a bound below it would make the
	// reader allocate fresh slices while full-grown recycled ones are
	// dropped here.
	if len(c.recFree) < cap(c.batches)+2 {
		c.recFree = append(c.recFree, b.Records[:0])
	}
	c.recMu.Unlock()
}

// Cursor returns the newest sequence number Next has delivered — the
// resume point a successor process would pass to DialFrom. Records the
// reader has buffered but Next has not yet returned are deliberately NOT
// covered: resuming from Cursor re-requests them, so a consumer that
// saves its cursor and restarts never silently skips what it had not
// processed.
func (c *Client) Cursor() uint64 { return c.delivered.Load() }

// Missed returns the total records reported lapped across the delivered
// batches, including across reconnects.
func (c *Client) Missed() uint64 { return c.missed.Load() }

// Reconnects returns how many times the client has re-established its
// connection.
func (c *Client) Reconnects() int { return int(c.reconnects.Load()) }

// DialIntoHub dials a remote feed and registers it with a Hub under name:
// the one-liner that gives an observer.Hub a remote source next to its
// local ones. The hub owns the client — Hub.Remove (or closing the
// returned client) releases the connection.
func DialIntoHub(h *observer.Hub, name, addr, feed string, opts ...ClientOption) (*Client, error) {
	c, err := Dial(addr, feed, opts...)
	if err != nil {
		return nil, err
	}
	if err := h.Add(name, c); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}
