package heartbeat

import (
	"time"

	"repro/internal/ring"
)

// Thread is a per-thread heartbeat handle — the paper's "local" heartbeats.
// Threads working on independent objects beat on their own handles so
// observers can reason about them separately; threads cooperating on one
// object report shared progress through GlobalBeat.
//
// A Thread owns two lock-free single-producer rings: a private local history
// (Beat/BeatTag) and a global shard (GlobalBeat/GlobalBeatTag) that the
// aggregator merges into the application history. Both beat paths are
// mutex-free and allocation-free: in the steady state a beat is a single
// atomic store. That speed rests on a single-producer contract: all beat
// calls on one Thread must come from one goroutine (register one handle per
// worker — Thread handles are cheap). Concurrent beats on a shared handle
// are a data race: beats can be lost and `go test -race` will flag the
// caller. This is stricter than the seed's mutex-guarded Thread, which
// tolerated shared handles; heartbeat/compat serializes its local beats for
// C-parity callers that relied on that. All read methods remain safe for
// any number of concurrent observers.
type Thread struct {
	h    *Heartbeat
	id   int32
	name string
	// coarse short-circuits the clock indirection when the application
	// runs on a CoarseClock — the beat hot path becomes a direct atomic
	// load instead of an indirect call.
	coarse    *CoarseClock
	nowNanos  func() int64
	lastNanos int64 // producer-private: clamps beat times non-decreasing
	local     *ring.SP
	g         *gshard
}

func newThread(h *Heartbeat, id int32, name string, localCap, shardCap int) *Thread {
	t := &Thread{
		h:        h,
		id:       id,
		name:     name,
		nowNanos: h.nowNanos,
		local:    ring.NewSP(localCap),
		g:        h.agg.register(id, shardCap),
	}
	if cc, ok := h.clock.(*CoarseClock); ok {
		t.coarse = cc
	}
	return t
}

// now is the hot-path timestamp read, clamped so one thread's beat times
// never run backwards across a wall-clock step (negative spans would make
// windowed rates unreportable). The clamp is a plain field: only the
// owning goroutine beats, per the single-producer contract.
func (t *Thread) now() int64 {
	var n int64
	if t.coarse != nil {
		n = t.coarse.nanos.Load()
	} else {
		n = t.nowNanos() //hbvet:allow hotpath -- injected clock read; the contract-bearing config (CoarseClock) takes the atomic-load branch above
	}
	if n < t.lastNanos {
		return t.lastNanos
	}
	t.lastNanos = n
	return n
}

// ID returns the registration identifier stamped into this thread's records
// (and into global records emitted via GlobalBeat).
func (t *Thread) ID() int32 { return t.id }

// Name returns the label supplied at registration.
func (t *Thread) Name() string { return t.name }

// Beat registers a local heartbeat with tag 0 (HB_heartbeat, local=true).
//
//hbvet:hotpath
func (t *Thread) Beat() { t.local.Push(t.now(), 0) }

// BeatTag registers a local heartbeat carrying a caller-defined tag.
//
//hbvet:hotpath
func (t *Thread) BeatTag(tag int64) { t.local.Push(t.now(), tag) }

// GlobalBeat registers a heartbeat on the application's global history,
// attributed to this thread. The write lands in this thread's lock-free
// shard; the aggregator assigns its global sequence number when the shard
// is merged (on read, on the flush interval, or on backlog pressure).
//
//hbvet:hotpath
func (t *Thread) GlobalBeat() { t.g.beat(t.now(), 0) }

// GlobalBeatTag is GlobalBeat with a tag.
//
//hbvet:hotpath
func (t *Thread) GlobalBeatTag(tag int64) { t.g.beat(t.now(), tag) }

// Count returns the number of local heartbeats ever registered.
func (t *Thread) Count() uint64 { return t.local.Total() }

// Rate returns the local heart rate over the last window beats; window == 0
// uses the application's default window. Windows beyond the retained
// history are clipped.
func (t *Thread) Rate(window int) (perSec float64, ok bool) {
	r, ok := t.RateDetail(window)
	return r.PerSec, ok
}

// RateDetail is Rate with the full measurement.
func (t *Thread) RateDetail(window int) (Rate, bool) {
	if window <= 0 {
		window = t.h.window
	}
	return rateOf(t.History(window))
}

// History returns up to n of the most recent local records, oldest first.
func (t *Thread) History(n int) []Record {
	ents := t.local.Last(n)
	if len(ents) == 0 {
		return nil
	}
	out := make([]Record, len(ents))
	for i, e := range ents {
		out[i] = Record{Seq: e.Seq, Time: time.Unix(0, e.Time), Tag: e.Tag, Producer: t.id}
	}
	return out
}
