package heartbeat

import "time"

// Clock supplies timestamps for heartbeats. The default clock is the wall
// clock (time.Now). Deterministic tests and the simulated-machine experiments
// inject a manual clock (see package sim).
type Clock interface {
	Now() time.Time
}

// ClockFunc adapts a function to the Clock interface.
type ClockFunc func() time.Time

// Now implements Clock.
func (f ClockFunc) Now() time.Time { return f() }

// SystemClock returns the wall clock.
func SystemClock() Clock { return ClockFunc(time.Now) }
