// Package video generates deterministic procedural video for the encoder
// experiments: a textured background with moving blobs and sensor noise.
// Complexity profiles control motion magnitude and texture detail over
// time, reproducing the input characteristics of the paper's experiments —
// the three performance phases of the PARSEC native input (Fig 2) and the
// "computationally demanding and more uniform" input of the adaptive
// encoder study (Figs 3, 4 and 8).
package video

import (
	"math"
	"math/rand"
)

// Frame is an 8-bit luma image.
type Frame struct {
	W, H int
	Pix  []uint8
}

// NewFrame allocates a zero frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y), clamping coordinates to the frame edge
// (the usual padding convention for motion search).
func (f *Frame) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Complexity describes the content difficulty of a frame.
type Complexity struct {
	// Motion is the average object displacement per frame, in pixels.
	Motion float64
	// Detail is the amplitude of high-frequency texture (0..~40).
	Detail float64
	// Noise is the amplitude of per-pixel sensor noise (0..~12).
	Noise float64
}

// Profile maps a frame index to its content complexity.
type Profile func(frame int) Complexity

// Uniform returns a profile with constant complexity — the demanding input
// of the adaptive-encoder experiments.
func Uniform(c Complexity) Profile {
	return func(int) Complexity { return c }
}

// Phases returns a profile that switches complexity at the given frame
// boundaries: bounds[i] is the first frame of phase i+1. It reproduces the
// PARSEC native input's distinct performance regions.
func Phases(phases []Complexity, bounds []int) Profile {
	if len(bounds) != len(phases)-1 {
		panic("video: need len(phases)-1 bounds")
	}
	return func(frame int) Complexity {
		for i, b := range bounds {
			if frame < b {
				return phases[i]
			}
		}
		return phases[len(phases)-1]
	}
}

// blob is a moving bright disc.
type blob struct {
	x, y   float64
	dx, dy float64 // unit direction
	r      float64
	bright float64
}

// Source produces consecutive frames of a deterministic synthetic scene.
type Source struct {
	w, h    int
	rng     *rand.Rand
	profile Profile
	blobs   []blob
	frame   int
	phase   float64 // global texture phase, drifts with motion
}

// NewSource creates a source of w×h frames with the given seed and
// complexity profile.
func NewSource(w, h int, seed int64, profile Profile) *Source {
	rng := rand.New(rand.NewSource(seed))
	nBlobs := 6
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		angle := rng.Float64() * 2 * math.Pi
		blobs[i] = blob{
			x:      rng.Float64() * float64(w),
			y:      rng.Float64() * float64(h),
			dx:     math.Cos(angle),
			dy:     math.Sin(angle),
			r:      6 + rng.Float64()*float64(h)/6,
			bright: 40 + rng.Float64()*80,
		}
	}
	return &Source{w: w, h: h, rng: rng, profile: profile, blobs: blobs}
}

// FrameIndex returns the index of the next frame Next will produce.
func (s *Source) FrameIndex() int { return s.frame }

// Next renders the next frame and reports its complexity.
func (s *Source) Next() (*Frame, Complexity) {
	c := s.profile(s.frame)
	// Advance the scene: blobs move by Motion pixels, bouncing off edges;
	// the texture phase drifts so the whole background shifts slightly.
	for i := range s.blobs {
		b := &s.blobs[i]
		b.x += b.dx * c.Motion
		b.y += b.dy * c.Motion
		if b.x < 0 || b.x > float64(s.w) {
			b.dx = -b.dx
			b.x += 2 * b.dx * c.Motion
		}
		if b.y < 0 || b.y > float64(s.h) {
			b.dy = -b.dy
			b.y += 2 * b.dy * c.Motion
		}
	}
	s.phase += c.Motion * 0.4

	f := NewFrame(s.w, s.h)
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			// Smooth gradient background.
			v := 90 + 50*float64(x)/float64(s.w) + 20*float64(y)/float64(s.h)
			// High-frequency texture, shifted by the drifting phase.
			v += c.Detail * math.Sin(0.9*float64(x)+s.phase) * math.Cos(0.7*float64(y)-0.5*s.phase)
			// Blobs.
			for _, b := range s.blobs {
				dx, dy := float64(x)-b.x, float64(y)-b.y
				d2 := dx*dx + dy*dy
				if d2 < b.r*b.r*4 {
					v += b.bright * math.Exp(-d2/(b.r*b.r))
				}
			}
			// Sensor noise.
			if c.Noise > 0 {
				v += (s.rng.Float64()*2 - 1) * c.Noise
			}
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			f.Pix[y*s.w+x] = uint8(v)
		}
	}
	s.frame++
	return f, c
}
