package hbnet

import (
	"context"
	"net"
	"testing"

	"repro/heartbeat"
)

// BenchmarkNetStream measures the remote consumer path over real loopback
// TCP: sustained records/s through server → wire → client, and the cost of
// an idle tick (a Next that finds nothing pending — the price a remote
// observer pays per decision interval while the application is quiet).
func BenchmarkNetStream(b *testing.B) {
	newPair := func(b *testing.B) (*heartbeat.Heartbeat, *Client) {
		b.Helper()
		clk := heartbeat.NewCoarseClock(0)
		b.Cleanup(clk.Stop)
		hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<16), heartbeat.WithClock(clk))
		if err != nil {
			b.Fatal(err)
		}
		srv := NewServer()
		srv.PublishHeartbeat("bench", hb)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		b.Cleanup(func() { srv.Close() })
		c, err := Dial(l.Addr().String(), "bench")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return hb, c
	}

	b.Run("throughput", func(b *testing.B) {
		hb, c := newPair(b)
		b.ReportAllocs()
		b.ResetTimer()
		go func() {
			for i := 0; i < b.N; i++ {
				hb.Beat()
			}
			hb.Flush()
		}()
		received := 0
		for received < b.N {
			batch, err := c.Next(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			received += len(batch.Records) + int(batch.Missed)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("idle-tick", func(b *testing.B) {
		_, c := newPair(b)
		drain, cancel := context.WithCancel(context.Background())
		cancel()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Next(drain); err != context.Canceled {
				b.Fatal(err)
			}
		}
	})
}
