package hbfile_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
)

// Opening arbitrary bytes as a heartbeat ring or log must fail cleanly —
// never panic, never return a reader over garbage silently. (Observers
// attach to files owned by other processes, so robust rejection matters.)
func FuzzOpenArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("APPHBv1\x00"))
	f.Add([]byte("APPHBL1\x00"))
	f.Add(make([]byte, 128))
	// A valid-looking header with absurd fields.
	valid := make([]byte, 256)
	copy(valid, "APPHBv1\x00")
	valid[8] = 1     // version
	valid[12] = 32   // record size
	valid[16] = 0xff // capacity
	f.Add(valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.hb")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		if r, err := hbfile.Open(path); err == nil {
			// If the header happened to be valid, reads must still be
			// well-behaved on truncated/garbage bodies.
			_, _ = r.Cursor()
			_, _ = r.Last(16)
			_, _, _, _ = r.Target()
			r.Close()
		}
		if lr, err := hbfile.OpenLog(path); err == nil {
			_, _ = lr.Count()
			_, _ = lr.Last(16)
			_, _, _, _ = lr.Target()
			lr.Close()
		}
	})
}

// Round-trip fuzz: any record written must decode back identically through
// the ring file.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(0), int64(0), int32(0))
	f.Add(uint64(1<<40), int64(-5), int64(1<<62), int32(-1))
	f.Fuzz(func(t *testing.T, seq uint64, nanos, tag int64, producer int32) {
		if seq == 0 {
			t.Skip()
		}
		path := filepath.Join(t.TempDir(), "rt.hb")
		w, err := hbfile.Create(path, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		rec := recordFrom(seq, nanos, tag, producer)
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
		r, err := hbfile.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got, err := r.Last(8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("read back %d records", len(got))
		}
		if got[0].Seq != rec.Seq || got[0].Tag != rec.Tag ||
			got[0].Producer != rec.Producer || got[0].Time.UnixNano() != rec.Time.UnixNano() {
			t.Fatalf("round trip mismatch: wrote %+v, read %+v", rec, got[0])
		}
	})
}

func recordFrom(seq uint64, nanos, tag int64, producer int32) heartbeat.Record {
	return heartbeat.Record{Seq: seq, Time: time.Unix(0, nanos), Tag: tag, Producer: producer}
}
