package heartbeat_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

// refModel is the single-lock reference the sharded store is checked
// against: a plain slice behind the paper's "one mutex around everything"
// semantics. The differential test drives identical deterministic beat
// schedules through both and demands identical observable statistics.
type refModel struct {
	window   int
	capacity int
	recs     []heartbeat.Record
}

func (m *refModel) beat(now time.Time, tag int64, producer int32) {
	m.recs = append(m.recs, heartbeat.Record{
		Seq:      uint64(len(m.recs) + 1),
		Time:     time.Unix(0, now.UnixNano()),
		Tag:      tag,
		Producer: producer,
	})
}

func (m *refModel) count() uint64 { return uint64(len(m.recs)) }

func (m *refModel) history(n int) []heartbeat.Record {
	if n <= 0 {
		return nil
	}
	if n > m.capacity {
		n = m.capacity
	}
	if n > len(m.recs) {
		n = len(m.recs)
	}
	return m.recs[len(m.recs)-n:]
}

func (m *refModel) clipWindow(w int) int {
	if w <= 0 {
		return m.window
	}
	if w > m.capacity {
		return m.capacity
	}
	return w
}

func sameRecords(a, b []heartbeat.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Tag != b[i].Tag ||
			a[i].Producer != b[i].Producer ||
			a[i].Time.UnixNano() != b[i].Time.UnixNano() {
			return false
		}
	}
	return true
}

// TestShardedMatchesSingleLockReference runs identical beat schedules —
// per-thread global beats, direct beats, tags, and interleaved reads —
// through the sharded aggregated store and the serialized reference model,
// and asserts equal counts, histories, window rates, and filtered rates at
// every checkpoint. The clock always advances between beats, so the
// reference's program order is the unique timestamp order the merge must
// reproduce.
func TestShardedMatchesSingleLockReference(t *testing.T) {
	for _, variant := range []struct {
		name string
		opts []heartbeat.Option
	}{
		{"lockfree-store", nil},
		{"locked-store", []heartbeat.Option{heartbeat.WithLockedStore()}},
	} {
		t.Run(variant.name, func(t *testing.T) {
			const (
				window   = 7
				capacity = 64
				threads  = 4
				ops      = 6000
			)
			clk := sim.NewClock(time.Time{})
			opts := append([]heartbeat.Option{
				heartbeat.WithClock(clk),
				heartbeat.WithCapacity(capacity),
				heartbeat.WithShardCapacity(512),
			}, variant.opts...)
			hb, err := heartbeat.New(window, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref := &refModel{window: hb.Window(), capacity: capacity}
			trs := make([]*heartbeat.Thread, threads)
			for i := range trs {
				trs[i] = hb.Thread("w")
			}

			check := func(step int) {
				t.Helper()
				if got, want := hb.Count(), ref.count(); got != want {
					t.Fatalf("step %d: Count = %d, want %d", step, got, want)
				}
				for _, n := range []int{1, 5, capacity / 2, capacity, capacity + 50} {
					if got, want := hb.History(n), ref.history(n); !sameRecords(got, want) {
						t.Fatalf("step %d: History(%d) diverged:\n got %+v\nwant %+v", step, n, got, want)
					}
				}
				for _, w := range []int{0, 2, 5, 16, capacity, capacity + 9} {
					gr, gok := hb.RateDetail(w)
					wr, wok := rateRef(ref.history(ref.clipWindow(w)))
					if gok != wok || gr != wr {
						t.Fatalf("step %d: RateDetail(%d) = %+v/%v, want %+v/%v", step, w, gr, gok, wr, wok)
					}
				}
				for tag := int64(0); tag < 4; tag++ {
					gr, gok := hb.RateByTag(capacity, tag)
					wr, wok := rateRef(filterTag(ref.history(capacity), tag))
					if gok != wok || gr != wr {
						t.Fatalf("step %d: RateByTag(%d) diverged", step, tag)
					}
				}
				for p := int32(0); p <= threads; p++ {
					gr, gok := hb.RateByProducer(capacity, p)
					wr, wok := rateRef(filterProducer(ref.history(capacity), p))
					if gok != wok || gr != wr {
						t.Fatalf("step %d: RateByProducer(%d) diverged", step, p)
					}
				}
			}

			rng := rand.New(rand.NewSource(42))
			for step := 0; step < ops; step++ {
				clk.Advance(time.Duration(rng.Intn(5_000_000) + 1))
				tag := int64(rng.Intn(4))
				switch k := rng.Intn(10); {
				case k < 7: // sharded per-thread global beat
					i := rng.Intn(threads)
					trs[i].GlobalBeatTag(tag)
					ref.beat(clk.Now(), tag, trs[i].ID())
				case k < 9: // direct beat on the global handle
					hb.BeatTag(tag)
					ref.beat(clk.Now(), tag, 0)
				default:
					check(step)
				}
			}
			// A long unread stretch deep enough to trigger the lazy
			// backlog discard, then a final full comparison.
			for i := 0; i < 3000; i++ {
				clk.Advance(time.Duration(rng.Intn(1000) + 1))
				w := rng.Intn(threads)
				tag := int64(rng.Intn(4))
				trs[w].GlobalBeatTag(tag)
				ref.beat(clk.Now(), tag, trs[w].ID())
			}
			check(ops)
		})
	}
}

// rateRef recomputes the windowed rate exactly as the package defines it.
func rateRef(recs []heartbeat.Record) (heartbeat.Rate, bool) {
	if len(recs) < 2 {
		return heartbeat.Rate{}, false
	}
	first, last := recs[0], recs[len(recs)-1]
	span := last.Time.Sub(first.Time)
	if span <= 0 {
		return heartbeat.Rate{}, false
	}
	return heartbeat.Rate{
		PerSec:   float64(len(recs)-1) / span.Seconds(),
		Beats:    len(recs),
		Span:     span,
		FirstSeq: first.Seq,
		LastSeq:  last.Seq,
	}, true
}

func filterTag(recs []heartbeat.Record, tag int64) []heartbeat.Record {
	var out []heartbeat.Record
	for _, r := range recs {
		if r.Tag == tag {
			out = append(out, r)
		}
	}
	return out
}

func filterProducer(recs []heartbeat.Record, p int32) []heartbeat.Record {
	var out []heartbeat.Record
	for _, r := range recs {
		if r.Producer == p {
			out = append(out, r)
		}
	}
	return out
}
