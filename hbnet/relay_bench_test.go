package hbnet

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// BenchmarkRelay measures the fan-in tier: N producer processes' worth of
// heartbeat servers, one relay subscribing to all of them over real
// loopback TCP, one subscriber draining the merged feed — sustained
// records/s through produce → N×(server → wire → client) → merge →
// re-sequence → wire → subscriber. This is the number that bounds how many
// producers one relay node absorbs at a given per-producer rate
// (make bench-relay records it in BENCH_relay.json).
func BenchmarkRelay(b *testing.B) {
	for _, fan := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("fanin-%d", fan), func(b *testing.B) {
			benchRelayFanIn(b, fan)
		})
	}

	// Handoff disruption: how many already-delivered records a re-home
	// replays into the destination relay. Cursor preservation makes it 0 —
	// benchgate's require contract holds replayed/op at that ceiling, so a
	// regression to full-history replay fails ci.
	b.Run("handoff", benchRelayHandoff)

	// The reducer alone, in-process: what each absorbed batch costs the
	// rollup path (no network, 64-record batches).
	b.Run("downsample", func(b *testing.B) {
		ds := observer.NewDownsampler()
		recs := make([]heartbeat.Record, 64)
		base := time.Unix(1000, 0)
		for i := range recs {
			recs[i] = heartbeat.Record{Seq: uint64(i + 1), Time: base.Add(time.Duration(i) * time.Millisecond)}
		}
		batch := observer.Batch{Records: recs, Count: 64}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds.Absorb("app", batch)
			if i%1024 == 1023 {
				ds.Flush(base, base.Add(time.Second))
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "records/s")
	})
}

// benchRelayHandoff builds a producer with a deep delivered history, then
// migrates its upstream between two relays b.N times with Rebalance. The
// reported replayed/op is how many of those already-delivered records a
// re-home pushed into the destination again — 0 when the handoff cursor is
// preserved, the full history per op if a regression re-dials from zero.
func benchRelayHandoff(b *testing.B) {
	const history = 1 << 14
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<16))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { hb.Close() })
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()

	relays := [2]*Relay{
		NewRelay(WithRollupInterval(100*time.Millisecond), WithMergedRetain(1<<16)),
		NewRelay(WithRollupInterval(100*time.Millisecond), WithMergedRetain(1<<16)),
	}
	for _, r := range relays {
		r := r
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); r.Run(ctx) }()
		b.Cleanup(func() { cancel(); <-done; r.Close() })
	}
	up, err := relays[0].DialUpstream("app", addr, "app")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < history; i++ {
		hb.Beat()
	}
	hb.Flush()
	deadline := time.Now().Add(30 * time.Second)
	for up.Cursor() < history {
		if time.Now().After(deadline) {
			b.Fatalf("warm-up stuck at cursor %d", up.Cursor())
		}
		time.Sleep(time.Millisecond)
	}

	cur := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rebalance(relays[cur], relays[1-cur], "app", addr, "app"); err != nil {
			b.Fatal(err)
		}
		cur = 1 - cur
	}
	b.StopTimer()
	// No beats happened during the moves, so any merged-head growth beyond
	// the warmed history is replayed delivery.
	replayed := relays[0].MergedHead() + relays[1].MergedHead() - history
	b.ReportMetric(float64(replayed)/float64(b.N), "replayed/op")
}

func benchRelayFanIn(b *testing.B, fan int) {
	clk := heartbeat.NewCoarseClock(0)
	b.Cleanup(clk.Stop)
	relay := NewRelay(WithRollupInterval(100*time.Millisecond), WithMergedRetain(1<<18))
	hbs := make([]*heartbeat.Heartbeat, fan)
	for i := range hbs {
		hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<16), heartbeat.WithClock(clk))
		if err != nil {
			b.Fatal(err)
		}
		hbs[i] = hb
		b.Cleanup(func() { hb.Close() })
		srv := NewServer()
		srv.PublishHeartbeat("app", hb)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		b.Cleanup(func() { srv.Close() })
		if _, err := relay.DialUpstream(fmt.Sprintf("app-%d", i), l.Addr().String(), "app"); err != nil {
			b.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	b.Cleanup(func() { cancel(); <-done; relay.Close() })

	srv := NewServer()
	if err := relay.PublishOn(srv, "merged", "rollup"); err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	c, err := Dial(l.Addr().String(), "merged")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })

	// Warm-up: run one full ring's worth of records per producer through
	// the whole pipeline before the clock starts. Every reusable buffer on
	// the path — server poll slices, client decode slices, encode buffers,
	// shared frames — grows to its steady-state size here, so the timed
	// region measures the recycled steady state instead of the one-time
	// growth chains of a cold pipeline.
	warm := 1 << 16
	for _, hb := range hbs {
		go func(hb *heartbeat.Heartbeat) {
			for i := 0; i < warm; i++ {
				hb.Beat()
			}
			hb.Flush()
		}(hb)
	}
	for received := 0; received < warm*fan; {
		batch, err := c.Next(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		received += len(batch.Records) + int(batch.Missed)
		c.Recycle(batch)
	}

	per := b.N / fan
	b.ReportAllocs()
	b.ResetTimer()
	for _, hb := range hbs {
		go func(hb *heartbeat.Heartbeat, n int) {
			for i := 0; i < n; i++ {
				hb.Beat()
			}
			hb.Flush()
		}(hb, per)
	}
	want := per * fan
	received := 0
	for received < want {
		batch, err := c.Next(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		received += len(batch.Records) + int(batch.Missed)
		c.Recycle(batch) // counted and done: keep the drain allocation-free
	}
	b.StopTimer()
	b.ReportMetric(float64(want)/b.Elapsed().Seconds(), "records/s")
}
