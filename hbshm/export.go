package hbshm

import (
	"context"
	"errors"
	"io"

	"repro/heartbeat"
	"repro/observer"
)

// Export bridges a live Heartbeat into a shared-memory region in batches:
// it subscribes to hb and copies every delivery into w, the way hbnet's
// server bridges a heartbeat onto the wire. Compared with attaching the
// Writer directly via heartbeat.WithSink — which writes each direct beat
// into the mapping synchronously — Export keeps the beat hot path
// untouched and amortizes the region lock over whole batches, at the cost
// of one bridging goroutine's worth of delivery latency.
//
// Export runs until the heartbeat closes (it then closes w, so observers
// drain and see stream end) or ctx is cancelled (w is left open for the
// caller). Records the subscription itself loses surface to observers as
// sequence gaps, which readers account as missed — loss stays loss across
// the bridge, never silence.
func Export(ctx context.Context, hb *heartbeat.Heartbeat, w *Writer) error {
	s := observer.HeartbeatStream(hb)
	var tmin, tmax float64
	var tset bool
	for {
		b, err := s.Next(ctx)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return w.Close()
			}
			return err
		}
		if b.TargetSet && (!tset || b.TargetMin != tmin || b.TargetMax != tmax) {
			if err := w.WriteTarget(b.TargetMin, b.TargetMax); err != nil {
				return err
			}
			tset, tmin, tmax = true, b.TargetMin, b.TargetMax
		}
		if err := w.WriteRecords(b.Records); err != nil {
			return err
		}
		// Same structural contract as hbnet.BatchRecycler, matched
		// structurally so the two transports stay independent.
		if rec, ok := s.(interface{ Recycle(observer.Batch) }); ok {
			rec.Recycle(b)
		}
	}
}
