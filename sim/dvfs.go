package sim

import (
	"math"
	"sync"
	"time"
)

// Dynamic frequency/voltage scaling support — the §2.1 vision: "a
// multicore microarchitecture where decisions about dynamic frequency and
// voltage scaling are driven by the performance measurements and target
// heart rate mechanisms of the Heartbeats framework" (the paper cites
// Govil'95 and Pering'98 as the energy motivation).
//
// The machine executes at coreRate × frequency; per-core power follows the
// classic cubic model P = Pstatic + Pdyn·f³ (voltage tracks frequency, and
// dynamic power ∝ V²f). Executing work integrates energy over the active
// cores, so a governor that holds an application just above its target
// rate at reduced frequency measurably saves energy versus racing at full
// speed.

// Frequency bounds of the simulated DVFS range, as a fraction of nominal.
const (
	MinFrequency = 0.25
	MaxFrequency = 1.0
)

// Power-model coefficients, normalized so one core at full frequency
// draws 1.0 power unit.
const (
	staticPower  = 0.3
	dynamicPower = 0.7
)

// CorePower returns the power draw of one core at frequency f (clamped to
// the DVFS range), in normalized units.
func CorePower(f float64) float64 {
	f = clampFreq(f)
	return staticPower + dynamicPower*f*f*f
}

func clampFreq(f float64) float64 {
	if f < MinFrequency {
		return MinFrequency
	}
	if f > MaxFrequency {
		return MaxFrequency
	}
	return f
}

// dvfsState holds the mutable frequency/energy state of a Machine.
type dvfsState struct {
	mu     sync.Mutex
	freq   float64
	energy float64 // accumulated, in power-units × seconds
}

func (d *dvfsState) frequency() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.freq == 0 {
		return MaxFrequency
	}
	return d.freq
}

func (d *dvfsState) setFrequency(f float64) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.freq = clampFreq(f)
	return d.freq
}

func (d *dvfsState) addEnergy(e float64) {
	d.mu.Lock()
	d.energy += e
	d.mu.Unlock()
}

func (d *dvfsState) energyTotal() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy
}

func (d *dvfsState) resetEnergy() {
	d.mu.Lock()
	d.energy = 0
	d.mu.Unlock()
}

// Frequency returns the machine's current frequency as a fraction of
// nominal (1.0 unless SetFrequency lowered it).
func (m *Machine) Frequency() float64 { return m.dvfs.frequency() }

// SetFrequency scales the machine, clamped to [MinFrequency,
// MaxFrequency], and returns the effective setting. Lower frequencies
// execute work proportionally slower and draw cubically less dynamic
// power.
func (m *Machine) SetFrequency(f float64) float64 { return m.dvfs.setFrequency(f) }

// Energy returns the energy consumed by all Execute calls so far, in
// normalized power-units × seconds.
func (m *Machine) Energy() float64 { return m.dvfs.energyTotal() }

// ResetEnergy zeroes the energy accumulator.
func (m *Machine) ResetEnergy() { m.dvfs.resetEnergy() }

// IdleCorePower is the per-core power draw while idle (clock-gated
// between paced work items): static leakage only.
const IdleCorePower = staticPower

// Idle advances the clock by d while the allocated cores draw only static
// power — the state a paced application sits in between work-item
// arrivals. Racing at full frequency and idling afterwards therefore
// still pays leakage, which is exactly the trade DVFS exploits.
func (m *Machine) Idle(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	cores := m.effectiveLocked()
	m.mu.Unlock()
	m.dvfs.addEnergy(float64(cores) * IdleCorePower * d.Seconds())
	m.clock.Advance(d)
}

// executeDVFS computes the duration of w at the current frequency and
// integrates the energy drawn by the allocated cores over it.
func (m *Machine) executeDVFS(w Work) time.Duration {
	m.mu.Lock()
	cores := m.effectiveLocked()
	rate := m.coreRate
	m.mu.Unlock()
	f := m.dvfs.frequency()
	d := workDuration(w, cores, rate*f)
	if d > 0 && d < time.Hour*24*365 {
		m.dvfs.addEnergy(float64(cores) * CorePower(f) * d.Seconds())
	}
	return d
}

// EnergyRatio compares consumed energy against running the same active
// time at full frequency on the same cores — a convenience for the DVFS
// experiment.
func EnergyRatio(consumed, activeSeconds float64, cores int) float64 {
	full := float64(cores) * CorePower(MaxFrequency) * activeSeconds
	if full == 0 {
		return math.NaN()
	}
	return consumed / full
}
