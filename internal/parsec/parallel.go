package parsec

import (
	"math/rand"
	"sync"

	"repro/heartbeat"
)

// RunParallel drives a kernel with real concurrent workers, each owning a
// per-thread heartbeat handle (the paper's local heartbeats: "if different
// threads are working on independent objects, they should use separate
// heartbeats") while the shared application-level progress lands in the
// global history via attributed beats. It returns the combined checksum.
//
// kernelFactory must return a fresh kernel per worker (kernels are not
// concurrency-safe). Each worker beats locally every UnitsPerBeat units
// and globally at the same cadence, so both views stay populated.
func RunParallel(kernelFactory func() Kernel, hb *heartbeat.Heartbeat, workers, unitsPerWorker int, seed int64) uint64 {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sums := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := kernelFactory()
			thread := hb.Thread(k.Name())
			rng := rand.New(rand.NewSource(seed + int64(w)))
			per := k.UnitsPerBeat()
			var sum uint64
			for u := 1; u <= unitsPerWorker; u++ {
				cs, _ := k.DoUnit(rng)
				sum ^= cs
				if u%per == 0 {
					thread.Beat()       // local progress for this worker
					thread.GlobalBeat() // application progress, attributed
				}
			}
			sums[w] = sum
		}(w)
	}
	wg.Wait()
	var total uint64
	for _, s := range sums {
		total ^= s
	}
	return total
}
