package hbnet

import (
	"context"
	"errors"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/observer"
)

// startServer serves feeds on an ephemeral loopback port and returns the
// address. The server (and its listener) is torn down with the test.
func startServer(t *testing.T, s *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l.Addr().String()
}

// collect drains batches from stream until the predicate is satisfied or
// the deadline passes, returning every record received.
func collect(t *testing.T, s observer.Stream, done func(recs []heartbeat.Record, missed uint64) bool) ([]heartbeat.Record, uint64) {
	t.Helper()
	var recs []heartbeat.Record
	var missed uint64
	deadline := time.Now().Add(10 * time.Second)
	for !done(recs, missed) {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		b, err := s.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("Next after %d records (missed %d): %v", len(recs), missed, err)
		}
		recs = append(recs, b.Records...)
		missed += b.Missed
	}
	return recs, missed
}

// assertDense fails unless recs carry strictly increasing, dense sequence
// numbers starting right after since. The check itself lives in
// internal/simcheck, shared with the simulated scenario matrix — live and
// simulated tests enforce the same contract with the same code.
func assertDense(t *testing.T, recs []heartbeat.Record, since uint64) {
	t.Helper()
	simcheck.RequireDense(t, recs, since)
}

// The short loopback round trip `make ci` runs: every beat arrives exactly
// once with metadata intact, and closing the heartbeat ends the stream.
func TestLoopbackRoundTrip(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.SetTarget(5, 50); err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.PublishHeartbeat("app", hb); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const beats = 500
	for i := 0; i < beats; i++ {
		hb.BeatTag(int64(i))
	}
	recs, missed := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= beats })
	if missed != 0 {
		t.Fatalf("missed %d records with ample capacity", missed)
	}
	assertDense(t, recs, 0)
	for i, r := range recs {
		if r.Tag != int64(i) {
			t.Fatalf("record %d: tag %d", i, r.Tag)
		}
	}

	// Metadata crossed the wire.
	ctxDone, cancel := context.WithCancel(context.Background())
	cancel()
	hb.Beat()
	b, err := c.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if b.Window != 10 || !b.TargetSet || b.TargetMin != 5 || b.TargetMax != 50 {
		t.Fatalf("metadata lost: %+v", b)
	}
	if got := c.Cursor(); got != beats+1 {
		t.Fatalf("cursor %d, want %d", got, beats+1)
	}

	// Idle drain honors the Stream contract: expired ctx, nothing pending.
	if _, err := c.Next(ctxDone); !errors.Is(err, context.Canceled) {
		t.Fatalf("idle drain returned %v", err)
	}

	// Closing the producer ends the stream with io.EOF after the drain.
	hb.Close()
	for {
		if _, err := c.Next(context.Background()); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("after close: %v", err)
			}
			break
		}
	}
}

func TestDialUnknownFeedFailsFast(t *testing.T) {
	srv := NewServer()
	addr := startServer(t, srv)
	if _, err := Dial(addr, "nope"); err == nil || !strings.Contains(err.Error(), "unknown feed") {
		t.Fatalf("Dial unknown feed: %v", err)
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	srv := NewServer(WithHandshakeTimeout(200 * time.Millisecond))
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must hang up, not stream to a web browser.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// proxy is a single-connection TCP relay whose link can be cut, to force
// client reconnects without the server going away.
type proxy struct {
	l      net.Listener
	target string

	mu     sync.Mutex
	conns  []net.Conn
	paused bool
}

func newProxy(t *testing.T, target string) *proxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &proxy{l: l, target: target}
	go p.run()
	t.Cleanup(func() { l.Close(); p.cut() })
	return p
}

func (p *proxy) addr() string { return p.l.Addr().String() }

func (p *proxy) run() {
	for {
		up, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		paused := p.paused
		p.mu.Unlock()
		if paused {
			up.Close()
			continue
		}
		down, err := net.Dial("tcp", p.target)
		if err != nil {
			up.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, up, down)
		p.mu.Unlock()
		go func() { io.Copy(down, up); down.Close(); up.Close() }()
		go func() { io.Copy(up, down); down.Close(); up.Close() }()
	}
}

// cut severs every live relayed connection; new dials still succeed
// unless the proxy is paused.
func (p *proxy) cut() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// setPaused controls whether new connections are relayed (false) or
// immediately dropped (true) — a sustained outage rather than a blip.
func (p *proxy) setPaused(v bool) {
	p.mu.Lock()
	p.paused = v
	p.mu.Unlock()
}

// A forced disconnect mid-stream: the client redials with its cursor and
// the records keep arriving exactly once, densely, with nothing missed
// while the history covers the outage.
func TestClientReconnectResume(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(1<<16))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	p := newProxy(t, startServer(t, srv))

	c, err := Dial(p.addr(), "app", WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const half = 300
	for i := 0; i < half; i++ {
		hb.Beat()
	}
	recs, _ := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= half })

	p.cut()
	// Beat through the outage: capacity retains everything, so the replay
	// after reconnect must deliver every one.
	for i := 0; i < half; i++ {
		hb.Beat()
	}
	more, missed := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= half })
	recs = append(recs, more...)
	if missed != 0 {
		t.Fatalf("missed %d during covered outage", missed)
	}
	assertDense(t, recs, 0)
	if c.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want >= 1", c.Reconnects())
	}
}

// When the outage outruns the ring, the lapped records surface as Missed —
// and delivered + missed exactly accounts for every beat ever made.
func TestMissedAccountingAcrossReconnect(t *testing.T) {
	const capacity = 64
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(capacity))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	p := newProxy(t, startServer(t, srv))

	c, err := Dial(p.addr(), "app", WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const before = 30
	for i := 0; i < before; i++ {
		hb.Beat()
	}
	recs, _ := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= before })

	p.cut()
	// Lap the ring several times over while disconnected.
	const during = capacity * 5
	for i := 0; i < during; i++ {
		hb.Beat()
	}
	more, missed := collect(t, c, func(r []heartbeat.Record, m uint64) bool {
		return uint64(len(r))+m >= during
	})
	recs = append(recs, more...)
	if missed == 0 {
		t.Fatal("lapped outage reported no Missed")
	}
	if got := uint64(len(recs)) + missed; got != before+during {
		t.Fatalf("delivered %d + missed %d = %d, want %d", len(recs), missed, got, before+during)
	}
	if c.Missed() != missed {
		t.Fatalf("Client.Missed() = %d, batches said %d", c.Missed(), missed)
	}
	// Nothing was delivered twice, order held, and the stream caught up to
	// the newest beat; every undelivered record is accounted for in Missed
	// (gaps can also occur mid-connection — the ring is tiny — which is
	// precisely what the Missed count is for).
	seen := map[uint64]bool{}
	var prev uint64
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("seq %d delivered twice", r.Seq)
		}
		if r.Seq <= prev {
			t.Fatalf("seq %d after %d: out of order", r.Seq, prev)
		}
		seen[r.Seq] = true
		prev = r.Seq
	}
	if prev != before+during {
		t.Fatalf("newest delivered seq %d, want %d", prev, before+during)
	}
}

// Cursor() reflects what Next has delivered, not what the background
// reader has buffered: a consumer that saves its cursor and resumes later
// must re-receive everything it never processed.
func TestCursorTracksDeliveryNotReceipt(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	addr := startServer(t, srv)
	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 10; i++ {
		hb.Beat()
	}
	// Give the reader ample time to buffer the batches; with no Next call
	// the delivered cursor must not move.
	time.Sleep(100 * time.Millisecond)
	if got := c.Cursor(); got != 0 {
		t.Fatalf("Cursor advanced to %d before any Next", got)
	}
	recs, _ := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 10 })
	if got := c.Cursor(); got != recs[len(recs)-1].Seq {
		t.Fatalf("Cursor = %d after delivering through seq %d", got, recs[len(recs)-1].Seq)
	}
}

// A reconnect handshake the server refuses — here, the feed is gone after
// a server restart — must stop the redial loop and surface through Next,
// not retry silently forever while the consumer starves.
func TestReconnectRejectionIsTerminal(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	c, err := Dial(addr, "app", WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hb.Beat()
	collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 1 })

	// Restart the server on the same address without the feed.
	srv.Close()
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			t.Skipf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv2 := NewServer()
	go srv2.Serve(l2)
	t.Cleanup(func() { srv2.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = c.Next(ctx)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Next after feed vanished = %v, want ErrRejected", err)
	}
}

// DialFrom resumes a brand-new client from a cursor, the
// process-restart counterpart of automatic reconnect.
func TestDialFromResumesCursor(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	addr := startServer(t, srv)

	c1, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		hb.Beat()
	}
	collect(t, c1, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 100 })
	cursor := c1.Cursor()
	c1.Close()

	for i := 0; i < 50; i++ {
		hb.Beat()
	}
	c2, err := DialFrom(addr, "app", cursor)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	recs, missed := collect(t, c2, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 50 })
	if missed != 0 || len(recs) != 50 {
		t.Fatalf("resumed: %d records, %d missed", len(recs), missed)
	}
	assertDense(t, recs, cursor)
}

// Resuming with a cursor from a previous producer life (the application
// restarted, its seqs regressed) must resynchronize ONCE: the wire cursor
// follows the stream down into the new seq space, so a later reconnect
// does not resync again and replay everything already delivered.
func TestProducerRestartResyncNoDuplicates(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	p := newProxy(t, startServer(t, srv))

	for i := 0; i < 10; i++ {
		hb.Beat()
	}
	// The consumer's cursor predates this producer's life entirely.
	c, err := DialFrom(p.addr(), "app", 5000, WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, _ := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 10 })
	assertDense(t, recs, 0) // resynchronized to the new life's seqs 1..10

	// A blip after the resync: the reconnect must continue from seq 10,
	// not replay 1..10 (nor stall on the stale 5000).
	p.cut()
	for i := 0; i < 5; i++ {
		hb.Beat()
	}
	more, missed := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 5 })
	if missed != 0 {
		t.Fatalf("missed %d across covered blip", missed)
	}
	assertDense(t, more, 10)
	if last := more[len(more)-1].Seq; last != 15 {
		t.Fatalf("post-blip stream ends at seq %d, want 15", last)
	}
}

// A replay bigger than one frame can carry (a subscriber dialing from 0
// against a huge retained history) must be split across frames and arrive
// complete — not abort into a redial livelock at the frame cap.
func TestHugeReplaySplitsAcrossFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("streams several hundred thousand records")
	}
	const beats = maxRecordsPerFrame + 50_000
	clk := heartbeat.NewCoarseClock(0)
	defer clk.Stop()
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(1<<19), heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < beats; i++ {
		hb.Beat()
	}
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	addr := startServer(t, srv)
	c, err := Dial(addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recs, missed := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= beats })
	if missed != 0 {
		t.Fatalf("split replay missed %d", missed)
	}
	assertDense(t, recs, 0)
}

// A FileFeed relays a heartbeat ring file to remote subscribers.
func TestFileFeedRelay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "app.hb")
	w, err := hbfile.Create(path, 10, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteTarget(3, 30); err != nil {
		t.Fatal(err)
	}

	srv := NewServer()
	srv.Publish("file-app", FileFeed(path, time.Millisecond))
	addr := startServer(t, srv)

	c, err := Dial(addr, "file-app")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 1; i <= 200; i++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: uint64(i), Time: time.Unix(0, int64(i)*1e6)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, missed := collect(t, c, func(r []heartbeat.Record, _ uint64) bool { return len(r) >= 200 })
	if missed != 0 {
		t.Fatalf("missed %d", missed)
	}
	assertDense(t, recs, 0)
}

// A hub mixing a local stream and a remote client judges both; removing
// the remote app closes its connection.
func TestDialIntoHub(t *testing.T) {
	remote, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	local, err := heartbeat.New(10, heartbeat.WithCapacity(4096))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.PublishHeartbeat("remote-app", remote)
	addr := startServer(t, srv)

	hub := observer.NewHub(20*time.Millisecond, nil)
	if err := hub.Add("local", observer.HeartbeatStream(local)); err != nil {
		t.Fatal(err)
	}
	c, err := DialIntoHub(hub, "remote", addr, "remote-app")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hubDone := make(chan struct{})
	go func() { hub.Run(ctx); close(hubDone) }()

	for i := 0; i < 50; i++ {
		local.Beat()
		remote.Beat()
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := hub.Status("remote")
		if ok && st.Count >= 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hub never judged the remote app: %+v ok=%v", st, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Remove closes the remote client: its next read fails terminally.
	hub.Remove("remote")
	if _, err := c.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("after Remove, Next = %v, want io.EOF", err)
	}
	cancel()
	<-hubDone
}
