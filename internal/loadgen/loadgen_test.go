package loadgen

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/internal/simcheck"
	"repro/sim"
)

// drainAll empties a stream without blocking (the Stream contract's
// expired-ctx drain).
func drainAll(t *testing.T, s *AppStream) []heartbeat.Record {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out []heartbeat.Record
	for {
		b, err := s.Next(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, io.EOF) {
				return out
			}
			t.Fatalf("drain: %v", err)
		}
		if b.Missed != 0 {
			t.Fatalf("AppStream reported Missed=%d; it never drops", b.Missed)
		}
		out = append(out, b.Records...)
	}
}

// TestFleetPump runs a small fleet entirely under virtual time and checks
// the pump's whole contract: dense per-app sequences, conservation of the
// published total, per-producer Life monotonicity (no stale-life
// resurrection), and that churn and silence bursts actually happened.
func TestFleetPump(t *testing.T) {
	cfg := Config{
		Seed:      21,
		Producers: 60,
		Apps:      5,
		BeatEvery: 100 * time.Millisecond,
		Duration:  3 * time.Second,
		ChurnFrac: 0.4,
		Bursts:    1,
		BurstLen:  500 * time.Millisecond,
		PumpTick:  10 * time.Millisecond,
	}
	clk := sim.NewClock(time.Time{})
	f := New(cfg, clk)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	start := clk.Now()
	deadline := time.Now().Add(30 * time.Second)
	for clk.Elapsed(start) < cfg.Duration {
		if time.Now().After(deadline) {
			t.Fatalf("virtual clock stalled at %v", clk.Elapsed(start))
		}
		time.Sleep(time.Millisecond)
	}
	f.Pause()
	time.Sleep(20 * time.Millisecond) // let an in-flight step finish
	cancel()
	<-done

	var drained uint64
	lastLife := make(map[int32]int64)
	for i := 0; i < f.Apps(); i++ {
		recs := drainAll(t, f.Stream(i))
		simcheck.RequireDense(t, recs, 0)
		if uint64(len(recs)) != f.AppHead(i) {
			t.Fatalf("app %d: drained %d records, head %d", i, len(recs), f.AppHead(i))
		}
		drained += uint64(len(recs))
		for _, r := range recs {
			if r.Tag < lastLife[r.Producer] {
				t.Fatalf("producer %d: life regressed %d -> %d — a stale life resurrected",
					r.Producer, lastLife[r.Producer], r.Tag)
			}
			lastLife[r.Producer] = r.Tag
			if r.Time.Before(start) || r.Time.After(clk.Now()) {
				t.Fatalf("record stamped %v outside the run", r.Time)
			}
		}
	}
	if drained == 0 || drained != f.TotalPublished() {
		t.Fatalf("drained %d records, fleet published %d", drained, f.TotalPublished())
	}
	left, rejoined := f.Churned()
	if left == 0 || rejoined == 0 {
		t.Fatalf("churn unexercised: left %d rejoined %d", left, rejoined)
	}
	if f.Silenced() == 0 {
		t.Fatal("silence burst unexercised")
	}
	rejoinedLives := 0
	for _, life := range lastLife {
		if life >= 2 {
			rejoinedLives++
		}
	}
	if rejoinedLives == 0 {
		t.Fatal("no record carries a rejoined life's tag")
	}

	producers := 0
	for i := 0; i < f.Apps(); i++ {
		producers += f.ProducersOf(i)
	}
	if producers != cfg.Producers {
		t.Fatalf("app assignment covers %d producers, want %d", producers, cfg.Producers)
	}
}

// TestFleetDeterministicBuild: two fleets from the same seed draw the same
// app assignment and the same churn schedule.
func TestFleetDeterministicBuild(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	cfg := Config{Seed: 5, Producers: 300, Apps: 8, ChurnFrac: 0.3}
	a, b := New(cfg, clk), New(cfg, clk)
	for i := 0; i < a.Apps(); i++ {
		if a.ProducersOf(i) != b.ProducersOf(i) {
			t.Fatalf("app %d: %d vs %d producers", i, a.ProducersOf(i), b.ProducersOf(i))
		}
	}
	if len(a.churn) != len(b.churn) {
		t.Fatalf("churn schedules differ in length: %d vs %d", len(a.churn), len(b.churn))
	}
	for i := range a.churn {
		if a.churn[i] != b.churn[i] {
			t.Fatalf("churn event %d differs: %+v vs %+v", i, a.churn[i], b.churn[i])
		}
	}
	if err := ValidateChurn(a.churn, cfg.Producers); err != nil {
		t.Fatal(err)
	}
}

// TestAppStreamContract: pending data wins over an expired context; Close
// yields EOF after the drain; Recycle feeds the publish free-list.
func TestAppStreamContract(t *testing.T) {
	s := &AppStream{name: "app"}
	s.publish([]heartbeat.Record{{Time: time.Unix(1, 0)}, {Time: time.Unix(2, 0)}})
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := s.Next(expired)
	if err != nil || len(b.Records) != 2 || b.Count != 2 {
		t.Fatalf("Next(expired) = %d records, Count %d, err %v; want the pending 2", len(b.Records), b.Count, err)
	}
	simcheck.RequireDense(t, b.Records, 0)
	if _, err := s.Next(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("idle Next(expired) = %v, want context.Canceled", err)
	}
	s.Recycle(b)
	s.publish([]heartbeat.Record{{Time: time.Unix(3, 0)}})
	s.Close()
	b, err = s.Next(context.Background())
	if err != nil || len(b.Records) != 1 || b.Records[0].Seq != 3 {
		t.Fatalf("post-Close drain = %+v, %v", b, err)
	}
	if _, err := s.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("drained closed stream returns %v, want io.EOF", err)
	}
}
