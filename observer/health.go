package observer

import (
	"time"

	"repro/heartbeat"
	"repro/internal/stats"
)

// Health is an observer's judgment of an application from its heartbeats
// alone — the paper's fault-tolerance thesis is that performance and health
// collapse into the same signal ("a lack of heartbeats from a particular
// node would indicate that it has failed, and slow or erratic heartbeats
// could indicate that a machine is about to fail", §2.6).
type Health int

const (
	// Unknown: not enough heartbeats to judge yet.
	Unknown Health = iota
	// Healthy: beating, and inside the target window if one is set.
	Healthy
	// Slow: measured rate below the advertised minimum target.
	Slow
	// Fast: measured rate above the advertised maximum target.
	Fast
	// Erratic: rate acceptable but inter-beat intervals highly variable —
	// the "about to fail" early-warning signal.
	Erratic
	// Flatlined: beats have stopped for much longer than the expected
	// inter-beat interval; the application is hung or starved.
	Flatlined
	// Dead: never beat at all within the observation grace period.
	Dead
)

// String returns the lowercase name of the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Slow:
		return "slow"
	case Fast:
		return "fast"
	case Erratic:
		return "erratic"
	case Flatlined:
		return "flatlined"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Status is the result of classifying one snapshot.
type Status struct {
	Health     Health
	Rate       float64 // beats/s over the classifier window (0 if !RateOK)
	RateOK     bool
	Count      uint64
	LastBeat   time.Time     // zero if no beats
	SinceLast  time.Duration // time since last beat at classification
	IntervalCV float64       // coefficient of variation of inter-beat gaps
	TargetMin  float64
	TargetMax  float64
	TargetSet  bool
}

// Classifier turns snapshots into Status judgments. The zero value uses
// sensible defaults; set Clock for deterministic tests.
type Classifier struct {
	// Window is the averaging window in beats (0: the source's default).
	Window int
	// FlatlineFactor: a gap exceeding FlatlineFactor × the expected
	// inter-beat interval marks the app Flatlined. Default 16.
	FlatlineFactor float64
	// ErraticCV: an interval coefficient of variation above this marks
	// the app Erratic. Default 1.0.
	ErraticCV float64
	// Grace: how long an app may remain beat-free after observation
	// starts before it is declared Dead. Default 10s.
	Grace time.Duration
	// Clock supplies "now" (default: wall clock).
	Clock heartbeat.Clock
	// Epoch anchors the Dead grace period; typically the time
	// observation began. Zero disables Dead classification.
	Epoch time.Time
}

func (c *Classifier) flatlineFactor() float64 {
	if c.FlatlineFactor <= 0 {
		return 16
	}
	return c.FlatlineFactor
}

func (c *Classifier) erraticCV() float64 {
	if c.ErraticCV <= 0 {
		return 1.0
	}
	return c.ErraticCV
}

func (c *Classifier) grace() time.Duration {
	if c.Grace <= 0 {
		return 10 * time.Second
	}
	return c.Grace
}

func (c *Classifier) now() time.Time {
	return heartbeat.Now(c.Clock)
}

// Classify judges one snapshot. It recomputes the windowed statistics from
// the snapshot's records on every call; streaming consumers use
// ClassifyWindow, which caches them between batches.
func (c *Classifier) Classify(snap Snapshot) Status {
	var last time.Time
	if n := len(snap.Records); n > 0 {
		last = snap.Records[n-1].Time
	}
	rate, rateOK := snap.Rate(c.Window)
	cv := stats.Summarize(heartbeat.Intervals(snap.Records)).CV()
	return c.judge(snap.Count, snap.TargetMin, snap.TargetMax, snap.TargetSet,
		len(snap.Records) > 0, last, rate, rateOK, cv)
}

// ClassifyWindow judges the state accumulated in a stream consumer's
// Window. The windowed rate and interval statistics are cached inside the
// Window and recomputed only when a batch delivered new records, so an
// idle tick — reclassifying for flatline/death detection while no beats
// arrive — does no per-record work.
func (c *Classifier) ClassifyWindow(w *Window) Status {
	rate, rateOK, cv := w.cachedStats(c.Window)
	return c.judge(w.count, w.targetMin, w.targetMax, w.targetSet,
		len(w.recs) > 0, w.LastBeat(), rate.PerSec, rateOK, cv)
}

// judge is the single health decision procedure behind both entry points.
func (c *Classifier) judge(count uint64, targetMin, targetMax float64, targetSet bool,
	hasBeats bool, lastBeat time.Time, rate float64, rateOK bool, cv float64) Status {
	now := c.now()
	st := Status{
		Count:     count,
		TargetMin: targetMin,
		TargetMax: targetMax,
		TargetSet: targetSet,
	}
	if !hasBeats {
		if !c.Epoch.IsZero() && now.Sub(c.Epoch) > c.grace() {
			st.Health = Dead
		} else {
			st.Health = Unknown
		}
		return st
	}
	st.LastBeat = lastBeat
	st.SinceLast = now.Sub(lastBeat)
	st.Rate, st.RateOK = rate, rateOK
	st.IntervalCV = cv

	// Expected inter-beat interval: from the target if set, else measured.
	var expected time.Duration
	switch {
	case targetSet && targetMin > 0:
		expected = time.Duration(float64(time.Second) / targetMin)
	case st.RateOK && st.Rate > 0:
		expected = time.Duration(float64(time.Second) / st.Rate)
	}
	if expected > 0 && st.SinceLast > time.Duration(c.flatlineFactor()*float64(expected)) {
		st.Health = Flatlined
		return st
	}
	if !st.RateOK {
		st.Health = Unknown
		return st
	}
	if targetSet {
		if st.Rate < targetMin {
			st.Health = Slow
			return st
		}
		if st.Rate > targetMax {
			st.Health = Fast
			return st
		}
	}
	if st.IntervalCV > c.erraticCV() {
		st.Health = Erratic
		return st
	}
	st.Health = Healthy
	return st
}
