package hbfile_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/sim"
)

func tempPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "app.hb")
}

func TestCreateValidation(t *testing.T) {
	p := tempPath(t)
	if _, err := hbfile.Create(p, 0, 16); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := hbfile.Create(p, 10, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	p := tempPath(t)
	w, err := hbfile.Create(p, 20, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	for i := uint64(1); i <= 10; i++ {
		rec := heartbeat.Record{
			Seq:      i,
			Time:     base.Add(time.Duration(i) * 100 * time.Millisecond),
			Tag:      int64(i * 7),
			Producer: int32(i % 3),
		}
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteTarget(30, 35); err != nil {
		t.Fatal(err)
	}

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Window() != 20 || r.Capacity() != 64 {
		t.Fatalf("Window=%d Capacity=%d", r.Window(), r.Capacity())
	}
	if r.PID() != uint64(os.Getpid()) {
		t.Fatalf("PID = %d, want %d", r.PID(), os.Getpid())
	}
	cur, err := r.Cursor()
	if err != nil || cur != 10 {
		t.Fatalf("Cursor = %d, %v", cur, err)
	}
	recs, err := r.Last(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("Last(5) = %d records", len(recs))
	}
	for i, rec := range recs {
		want := uint64(6 + i)
		if rec.Seq != want || rec.Tag != int64(want*7) || rec.Producer != int32(want%3) {
			t.Fatalf("record %d = %+v", i, rec)
		}
		if !rec.Time.Equal(base.Add(time.Duration(want) * 100 * time.Millisecond)) {
			t.Fatalf("record %d time = %v", i, rec.Time)
		}
	}
	min, max, ok, err := r.Target()
	if err != nil || !ok || min != 30 || max != 35 {
		t.Fatalf("Target = %v %v %v %v", min, max, ok, err)
	}
	rate, ok, err := r.Rate(0)
	if err != nil || !ok {
		t.Fatalf("Rate: %v %v", ok, err)
	}
	if rate < 9.99 || rate > 10.01 {
		t.Fatalf("Rate = %v, want 10", rate)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestTargetUnsetAndUpdated(t *testing.T) {
	p := tempPath(t)
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, ok, err := r.Target(); err != nil || ok {
		t.Fatalf("Target before set: ok=%v err=%v", ok, err)
	}
	if err := w.WriteTarget(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTarget(5, 6); err != nil {
		t.Fatal(err)
	}
	min, max, ok, err := r.Target()
	if err != nil || !ok || min != 5 || max != 6 {
		t.Fatalf("Target = %v %v %v %v", min, max, ok, err)
	}
}

func TestRingWraparound(t *testing.T) {
	p := tempPath(t)
	w, err := hbfile.Create(p, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	base := time.Unix(0, 0)
	for i := uint64(1); i <= 100; i++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: i, Time: base.Add(time.Duration(i) * time.Millisecond), Tag: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recs, err := r.Last(100)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 8, but the newest slot's predecessor-by-capacity is
	// considered suspect, so at least capacity-1 records must survive.
	if len(recs) < 7 {
		t.Fatalf("Last returned %d records, want >= 7", len(recs))
	}
	if recs[len(recs)-1].Seq != 100 {
		t.Fatalf("newest = %d, want 100", recs[len(recs)-1].Seq)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("gap in records: %d -> %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := hbfile.Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("open of missing file succeeded")
	}
	// Corrupt magic.
	p := tempPath(t)
	if err := os.WriteFile(p, make([]byte, 256), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := hbfile.Open(p); err == nil {
		t.Fatal("open of corrupt file succeeded")
	}
}

func TestWriterRejectsZeroSeq(t *testing.T) {
	w, err := hbfile.Create(tempPath(t), 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteRecord(heartbeat.Record{Seq: 0}); err == nil {
		t.Fatal("zero seq accepted")
	}
}

// Property: for any sequence of writes, Last(n) returns a dense suffix of
// the most recent records, each matching exactly what was written.
func TestLastDenseSuffixProperty(t *testing.T) {
	f := func(countRaw uint8, capRaw uint8, nRaw uint8) bool {
		count := int(countRaw)%120 + 1
		capacity := int(capRaw)%20 + 2
		n := int(nRaw)%130 + 1
		p := filepath.Join(t.TempDir(), "q.hb")
		w, err := hbfile.Create(p, 5, capacity)
		if err != nil {
			return false
		}
		defer w.Close()
		base := time.Unix(0, 0)
		for i := 1; i <= count; i++ {
			rec := heartbeat.Record{Seq: uint64(i), Time: base.Add(time.Duration(i) * time.Second), Tag: int64(i * 3)}
			if err := w.WriteRecord(rec); err != nil {
				return false
			}
		}
		r, err := hbfile.Open(p)
		if err != nil {
			return false
		}
		defer r.Close()
		recs, err := r.Last(n)
		if err != nil {
			return false
		}
		if len(recs) == 0 {
			return false // writer quiescent: newest record always readable
		}
		if recs[len(recs)-1].Seq != uint64(count) {
			return false
		}
		for i := range recs {
			want := uint64(count - len(recs) + 1 + i)
			if recs[i].Seq != want || recs[i].Tag != int64(want*3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Integration: a Heartbeat with a file sink is observable through a Reader,
// including by a genuinely separate process.
func TestHeartbeatWithFileSink(t *testing.T) {
	p := tempPath(t)
	w, err := hbfile.Create(p, 10, 128)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	if err := hb.SetTarget(30, 35); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		clk.Advance(25 * time.Millisecond) // 40 beats/s
		hb.Beat()
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rate, ok, err := r.Rate(0)
	if err != nil || !ok {
		t.Fatalf("Rate: %v %v", ok, err)
	}
	if rate < 39.9 || rate > 40.1 {
		t.Fatalf("observed rate = %v, want 40", rate)
	}
	min, max, ok, err := r.Target()
	if err != nil || !ok || min != 30 || max != 35 {
		t.Fatalf("observed target = %v-%v ok=%v err=%v", min, max, ok, err)
	}

	// Cross-process check: a child process reads the same file.
	if os.Getenv("HBFILE_CHILD") == "" {
		cmd := exec.Command(os.Args[0], "-test.run", "TestHeartbeatWithFileSink$", "-test.v")
		cmd.Env = append(os.Environ(), "HBFILE_CHILD="+p)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child process failed: %v\n%s", err, out)
		}
	}
}

func TestMain(m *testing.M) {
	if p := os.Getenv("HBFILE_CHILD"); p != "" {
		r, err := hbfile.Open(p)
		if err != nil {
			os.Exit(1)
		}
		cur, err := r.Cursor()
		if err != nil || cur != 50 {
			os.Exit(1)
		}
		rate, ok, err := r.Rate(0)
		if err != nil || !ok || rate < 39.9 || rate > 40.1 {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// Concurrent producers within one process must serialize correctly through
// the sink.
func TestConcurrentSinkWrites(t *testing.T) {
	p := tempPath(t)
	w, err := hbfile.Create(p, 10, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(1<<12), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	const goroutines, each = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				hb.Beat()
			}
		}()
	}
	wg.Wait()
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cur, err := r.Cursor()
	if err != nil || cur != goroutines*each {
		t.Fatalf("Cursor = %d, want %d", cur, goroutines*each)
	}
	recs, err := r.Last(goroutines * each)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < goroutines*each-1 {
		t.Fatalf("read back %d records", len(recs))
	}
}
