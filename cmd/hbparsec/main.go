// Command hbparsec runs the instrumented PARSEC-class kernels.
//
// Two modes:
//
//	-mode sim  (default): regenerate Table 2 rows on the simulated 8-core
//	           reference machine (deterministic).
//	-mode real: run the selected kernel's real computation on this host's
//	           wall clock for -duration, beating at the Table 2 granularity,
//	           and report the measured heart rate. With -hbfile the
//	           heartbeats are also published for external observers (watch
//	           with hbmon in another terminal).
//
// Usage:
//
//	hbparsec [-bench all|blackscholes|...] [-mode sim|real]
//	         [-duration 5s] [-hbfile PATH]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/experiments"
	"repro/internal/parsec"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	mode := flag.String("mode", "sim", "'sim' (Table 2 reproduction) or 'real' (wall-clock kernels)")
	duration := flag.Duration("duration", 5*time.Second, "how long to run each kernel in real mode")
	hbPath := flag.String("hbfile", "", "publish heartbeats to this ring file (real mode)")
	workers := flag.Int("workers", 1, "concurrent workers with per-thread heartbeats (real mode)")
	flag.Parse()

	switch *mode {
	case "sim":
		r := experiments.Table2(experiments.Options{})
		if *bench != "all" {
			filtered := *r.Table
			filtered.Rows = nil
			for _, row := range r.Table.Rows {
				if row[0] == *bench {
					filtered.Rows = append(filtered.Rows, row)
				}
			}
			if len(filtered.Rows) == 0 {
				fmt.Fprintf(os.Stderr, "hbparsec: unknown benchmark %q\n", *bench)
				os.Exit(1)
			}
			filtered.Render(os.Stdout)
			return
		}
		r.Table.Render(os.Stdout)
		for _, n := range r.Notes {
			fmt.Println("note:", n)
		}
	case "real":
		kernels := parsec.Kernels()
		if *bench != "all" {
			k, ok := parsec.ByName(*bench)
			if !ok {
				fmt.Fprintf(os.Stderr, "hbparsec: unknown benchmark %q\n", *bench)
				os.Exit(1)
			}
			kernels = []parsec.Kernel{k}
		}
		for _, k := range kernels {
			if err := runReal(k, *duration, *hbPath, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "hbparsec:", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "hbparsec: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runReal(k parsec.Kernel, d time.Duration, hbPath string, workers int) error {
	opts := []heartbeat.Option{heartbeat.WithCapacity(1 << 14)}
	if hbPath != "" {
		w, err := hbfile.Create(hbPath, 20, 1<<14)
		if err != nil {
			return err
		}
		opts = append(opts, heartbeat.WithSink(w))
	}
	hb, err := heartbeat.New(20, opts...)
	if err != nil {
		return err
	}
	defer hb.Close()

	var sink uint64
	var units uint64
	start := time.Now() //hbvet:allow wallclock -- benchmark driver: measures real runtime of real work
	if workers > 1 {
		// Per-thread heartbeats for every worker plus attributed global
		// beats (see parsec.RunParallel). Sized by duration estimate:
		// run in slices until the deadline.
		deadline := start.Add(d)
		slice := 4 * k.UnitsPerBeat()
		for time.Now().Before(deadline) { //hbvet:allow wallclock -- real-runtime benchmark deadline
			sink ^= parsec.RunParallel(func() parsec.Kernel {
				nk, _ := parsec.ByName(k.Name())
				return nk
			}, hb, workers, slice, time.Now().UnixNano()) //hbvet:allow wallclock -- worker RNG seed entropy for the benchmark run
			units += uint64(workers * slice)
		}
	} else {
		rng := rand.New(rand.NewSource(time.Now().UnixNano())) //hbvet:allow wallclock -- RNG seed entropy for the benchmark run
		deadline := start.Add(d)
		for time.Now().Before(deadline) { //hbvet:allow wallclock -- real-runtime benchmark deadline
			for u := 0; u < k.UnitsPerBeat(); u++ {
				cs, _ := k.DoUnit(rng)
				sink ^= cs
				units++
			}
			hb.Beat()
		}
	}
	elapsed := time.Since(start) //hbvet:allow wallclock -- closes the real-runtime measurement opened at start
	rate := float64(hb.Count()) / elapsed.Seconds()
	winRate, _ := hb.Rate(0)
	fmt.Printf("%-14s %-22s beats %6d  units %10d  avg %10.2f beats/s  window %10.2f beats/s  (checksum %x)\n",
		k.Name(), k.BeatLabel(), hb.Count(), units, rate, winRate, sink&0xffff)
	if err := hb.SinkErr(); err != nil {
		return fmt.Errorf("heartbeat sink: %w", err)
	}
	return nil
}
