package ring

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New[int](c)
		}()
	}
}

func TestEmpty(t *testing.T) {
	b := New[int](4)
	if b.Len() != 0 || b.Total() != 0 {
		t.Fatalf("empty buffer: Len=%d Total=%d", b.Len(), b.Total())
	}
	if got := b.Last(3); got != nil {
		t.Fatalf("Last on empty = %v, want nil", got)
	}
	if got := b.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot on empty = %v", got)
	}
}

func TestPushBelowCapacity(t *testing.T) {
	b := New[int](5)
	for i := 1; i <= 3; i++ {
		b.Push(i)
	}
	if b.Len() != 3 || b.Total() != 3 {
		t.Fatalf("Len=%d Total=%d, want 3,3", b.Len(), b.Total())
	}
	want := []int{1, 2, 3}
	got := b.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	b := New[int](3)
	for i := 1; i <= 7; i++ {
		b.Push(i)
	}
	if b.Len() != 3 || b.Total() != 7 {
		t.Fatalf("Len=%d Total=%d, want 3,7", b.Len(), b.Total())
	}
	want := []int{5, 6, 7}
	got := b.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestLastClipsToAvailable(t *testing.T) {
	b := New[int](10)
	b.Push(1)
	b.Push(2)
	if got := b.Last(100); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Last(100) = %v", got)
	}
	if got := b.Last(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Last(1) = %v", got)
	}
	if got := b.Last(0); got != nil {
		t.Fatalf("Last(0) = %v, want nil", got)
	}
	if got := b.Last(-5); got != nil {
		t.Fatalf("Last(-5) = %v, want nil", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	b := New[int](3)
	b.Push(42)
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			b.At(i)
		}()
	}
	if b.At(0) != 42 {
		t.Fatalf("At(0) = %d, want 42", b.At(0))
	}
}

// Property: after pushing values 0..n-1 into a buffer of capacity c, the
// buffer retains exactly the last min(n, c) values in order.
func TestRetentionProperty(t *testing.T) {
	f := func(n uint16, c uint8) bool {
		capacity := int(c)%64 + 1
		count := int(n) % 500
		b := New[int](capacity)
		for i := 0; i < count; i++ {
			b.Push(i)
		}
		keep := count
		if keep > capacity {
			keep = capacity
		}
		got := b.Snapshot()
		if len(got) != keep {
			return false
		}
		for i, v := range got {
			if v != count-keep+i {
				return false
			}
		}
		return b.Total() == uint64(count) && b.Len() == keep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Last(k) is always the suffix of Snapshot().
func TestLastIsSuffixProperty(t *testing.T) {
	f := func(n uint8, k uint8, c uint8) bool {
		capacity := int(c)%32 + 1
		b := New[int](capacity)
		for i := 0; i < int(n); i++ {
			b.Push(i * 3)
		}
		all := b.Snapshot()
		got := b.Last(int(k))
		if len(got) > len(all) {
			return false
		}
		for i := range got {
			if got[i] != all[len(all)-len(got)+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
