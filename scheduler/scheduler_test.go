package scheduler_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/control"
	"repro/hbfile"
	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// runApp simulates an instrumented application: each beat costs work ops,
// executed on the machine; the scheduler steps once every window beats.
func runApp(t *testing.T, hb *heartbeat.Heartbeat, m *sim.Machine, sched *scheduler.CoreScheduler,
	beats int, window int, cost func(beat int) sim.Work) []scheduler.Sample {
	t.Helper()
	var samples []scheduler.Sample
	for b := 1; b <= beats; b++ {
		m.Execute(cost(b))
		hb.Beat()
		if b%window == 0 {
			s, err := sched.Step()
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, s)
		}
	}
	return samples
}

func newSim(t *testing.T, window int) (*heartbeat.Heartbeat, *sim.Machine) {
	t.Helper()
	clk := sim.NewClock(time.Time{})
	m := sim.NewMachine(clk, 8, 1e6) // 1M ops/s per core
	hb, err := heartbeat.New(window, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	return hb, m
}

func TestNewValidation(t *testing.T) {
	hb, m := newSim(t, 10)
	src := observer.HeartbeatSource(hb)
	pol := scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 1, TargetMax: 2}}
	if _, err := scheduler.New(nil, m, pol); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := scheduler.New(src, nil, pol); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := scheduler.New(src, m, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

// The scheduler must ramp cores up until the rate enters the target window
// and keep it there — the shape of the paper's Figures 5-7.
func TestStepperSchedulerReachesWindow(t *testing.T) {
	const window = 10
	hb, m := newSim(t, window)
	// Work sized so 1 core gives 2 beats/s and 8 cores ~13.1 beats/s
	// (p = 0.95); target 8-10 beats/s needs ~4-5 cores.
	work := func(int) sim.Work { return sim.Work{Ops: 0.5e6, ParallelFrac: 0.95} }
	hb.SetTarget(8, 10)
	m.SetCores(1)
	sched, err := scheduler.New(
		observer.HeartbeatSource(hb), m,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 8, TargetMax: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	samples := runApp(t, hb, m, sched, 400, window, work)

	// Once in the window, it must stay (deterministic plant).
	entered := -1
	for i, s := range samples {
		if s.RateOK && s.Rate >= 8 && s.Rate <= 10 {
			entered = i
			break
		}
	}
	if entered == -1 {
		t.Fatalf("never entered target window; last=%+v", samples[len(samples)-1])
	}
	for _, s := range samples[entered+1:] {
		if s.Rate < 7.5 || s.Rate > 10.5 {
			t.Fatalf("left window after entering: %+v", s)
		}
	}
	final := samples[len(samples)-1]
	if final.Cores < 4 || final.Cores > 5 {
		t.Fatalf("final cores = %d, want 4-5", final.Cores)
	}
}

// When the computational load drops, the scheduler must reclaim cores while
// holding the window (Figure 5's second half).
func TestSchedulerReclaimsCoresOnLoadDrop(t *testing.T) {
	const window = 10
	hb, m := newSim(t, window)
	hb.SetTarget(8, 10)
	m.SetCores(1)
	sched, err := scheduler.New(
		observer.HeartbeatSource(hb), m,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 8, TargetMax: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	work := func(beat int) sim.Work {
		if beat <= 300 {
			return sim.Work{Ops: 0.5e6, ParallelFrac: 0.95}
		}
		return sim.Work{Ops: 0.1e6, ParallelFrac: 0.95} // 5x lighter
	}
	samples := runApp(t, hb, m, sched, 700, window, work)

	heavyCores := 0
	for _, s := range samples {
		if s.Beat == 300 {
			heavyCores = s.Cores
		}
	}
	final := samples[len(samples)-1]
	if final.Cores >= heavyCores {
		t.Fatalf("cores not reclaimed: heavy=%d final=%d", heavyCores, final.Cores)
	}
	if final.Cores != 1 {
		t.Fatalf("final cores = %d, want 1 (light load achieves target on one core)", final.Cores)
	}
	if final.Rate < 8 {
		t.Fatalf("final rate = %v below target", final.Rate)
	}
}

// The PI policy must also settle the plant into the target region.
func TestPIPolicyScheduler(t *testing.T) {
	const window = 10
	hb, m := newSim(t, window)
	hb.SetTarget(8, 10)
	m.SetCores(1)
	pi := &control.PI{Kp: 0.15, Ki: 0.4, Setpoint: 9, MinOutput: 1, MaxOutput: 8}
	sched, err := scheduler.New(
		observer.HeartbeatSource(hb), m,
		scheduler.PIPolicy{PI: pi, Dt: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	work := func(int) sim.Work { return sim.Work{Ops: 0.5e6, ParallelFrac: 0.95} }
	samples := runApp(t, hb, m, sched, 600, window, work)
	final := samples[len(samples)-1]
	if !final.RateOK || final.Rate < 7 || final.Rate > 11 {
		t.Fatalf("PI failed to settle: %+v", final)
	}
}

// Cross-process shape: schedule from an hbfile written by the application.
func TestSchedulerOverFileSource(t *testing.T) {
	const window = 10
	path := filepath.Join(t.TempDir(), "app.hb")
	w, err := hbfile.Create(path, window, 256)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	m := sim.NewMachine(clk, 8, 1e6)
	hb, err := heartbeat.New(window, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(8, 10)
	m.SetCores(1)

	r, err := hbfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sched, err := scheduler.New(
		observer.FileSource(r), m,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 8, TargetMax: 10}},
		scheduler.WithWindow(window),
	)
	if err != nil {
		t.Fatal(err)
	}
	samples := runApp(t, hb, m, sched, 400, window, func(int) sim.Work {
		return sim.Work{Ops: 0.5e6, ParallelFrac: 0.95}
	})
	final := samples[len(samples)-1]
	if !final.RateOK || final.Rate < 8 || final.Rate > 10 {
		t.Fatalf("file-driven scheduler failed: %+v", final)
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
}

// Run drives Step on a wall-clock ticker and stops on cancellation.
func TestRunLoop(t *testing.T) {
	hb, m := newSim(t, 10)
	hb.SetTarget(1, 2)
	sched, err := scheduler.New(
		observer.HeartbeatSource(hb), m,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 1, TargetMax: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan scheduler.Sample, 1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		sched.Run(ctx, time.Millisecond, func(s scheduler.Sample) {
			select {
			case got <- s:
			default:
			}
		}, nil)
		close(done)
	}()
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("Run produced no samples")
	}
	cancel()
	<-done
}
