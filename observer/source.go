// Package observer implements the external-observer side of the Application
// Heartbeats framework: reading a heartbeat-enabled application's progress,
// goals, and history, and classifying its health. This is the role the
// paper assigns to the OS, runtime, cloud manager, or system-administration
// tooling (§2.3, §2.4, §2.6, §5.3): observers read heartbeat data the
// application publishes and adapt on the application's behalf — or detect
// that it is hung, slow, erratic, or dead.
//
// The primary abstraction is Stream: a cursor-based incremental view that
// delivers each heartbeat record to a consumer exactly once, in batches,
// as the application publishes them. Consumers accumulate batches in a
// Window and judge it with Classifier.ClassifyWindow; Monitor packages
// that loop for one application, and Hub multiplexes many named
// applications into one loop with per-application Status fan-out. Native
// streams exist for in-process heartbeats (HeartbeatStream — wakes on
// flush, no polling) and for heartbeat files written by other processes
// (FileStream, LogStream — idle ticks cost one cursor read); package
// hbnet carries the same streams across machines (hbnet.Client satisfies
// Stream, so hubs and monitors take remote sources unchanged).
//
// Source, the original snapshot-pull interface, remains as a thin
// compatibility shim: every Source still works, and StreamOf converts one
// to its natural Stream (the built-in sources map to native streams;
// foreign implementations fall back to snapshot polling). New code should
// consume Streams; Snapshot re-reads the whole window on every call.
package observer

import (
	"fmt"

	"repro/hbfile"
	"repro/heartbeat"
)

// Snapshot is a point-in-time view of an application's heartbeat state.
type Snapshot struct {
	// Count is the total number of heartbeats registered so far.
	Count uint64
	// Window is the application's default averaging window.
	Window int
	// TargetMin and TargetMax are the advertised goal; valid when
	// TargetSet.
	TargetMin, TargetMax float64
	TargetSet            bool
	// Records holds the most recent heartbeats, oldest to newest.
	Records []heartbeat.Record
}

// Rate computes the average heart rate over the last window records of the
// snapshot; window <= 0 uses the application's default window. The math is
// heartbeat.RateOf — the one shared windowed-rate definition.
func (s Snapshot) Rate(window int) (perSec float64, ok bool) {
	if window <= 0 {
		window = s.Window
	}
	recs := s.Records
	if window > 0 && len(recs) > window {
		recs = recs[len(recs)-window:]
	}
	r, ok := heartbeat.RateOf(recs)
	return r.PerSec, ok
}

// Source supplies heartbeat snapshots to observers. Implementations exist
// for in-process heartbeats (HeartbeatSource) and for heartbeat ring files
// written by other processes (FileSource).
//
// Source is the pre-stream interface, kept as a compatibility shim: each
// Snapshot re-reads the last-N window whether or not anything changed.
// Migrate consumers to Stream (see StreamOf) for O(new records) cost.
//
// Implementations should populate each Record's Seq: stream adapters
// dedup by it (PollStream tolerates zero Seqs by falling back to
// Count-based dedup, but only dense sequence numbers give exact
// exactly-once forwarding).
type Source interface {
	// Snapshot returns the current state with up to maxRecords of the
	// most recent records.
	Snapshot(maxRecords int) (Snapshot, error)
}

// HeartbeatSource adapts an in-process *heartbeat.Heartbeat to Source.
// This is the self-observation path of Figure 1(a) in the paper.
func HeartbeatSource(hb *heartbeat.Heartbeat) Source { return hbSource{hb} }

type hbSource struct{ hb *heartbeat.Heartbeat }

func (s hbSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.hb.Window()
	}
	snap := Snapshot{
		Count:   s.hb.Count(),
		Window:  s.hb.Window(),
		Records: s.hb.History(maxRecords),
	}
	snap.TargetMin, snap.TargetMax, snap.TargetSet = s.hb.Target()
	return snap, nil
}

// ThreadSource adapts a per-thread handle to Source, for observers that
// track individual workers.
func ThreadSource(t *heartbeat.Thread, window int) Source { return threadSource{t, window} }

type threadSource struct {
	t      *heartbeat.Thread
	window int
}

func (s threadSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.window
	}
	return Snapshot{
		Count:   s.t.Count(),
		Window:  s.window,
		Records: s.t.History(maxRecords),
	}, nil
}

// FileSource adapts an hbfile.Reader to Source. This is the external-
// observation path of Figure 1(b): another process monitoring the
// application through the heartbeat file.
func FileSource(r *hbfile.Reader) Source { return fileSource{r} }

// LogSource adapts an hbfile.LogReader (the append-only full-history
// variant) to Source.
func LogSource(r *hbfile.LogReader) Source { return logSource{r} }

type logSource struct{ r *hbfile.LogReader }

func (s logSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.r.Window()
	}
	count, err := s.r.Count()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	recs, err := s.r.Last(maxRecords)
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	min, max, ok, err := s.r.Target()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	return Snapshot{
		Count:     count,
		Window:    s.r.Window(),
		TargetMin: min,
		TargetMax: max,
		TargetSet: ok,
		Records:   recs,
	}, nil
}

type fileSource struct{ r *hbfile.Reader }

func (s fileSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.r.Window()
	}
	cur, err := s.r.Cursor()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	recs, err := s.r.Last(maxRecords)
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	min, max, ok, err := s.r.Target()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	return Snapshot{
		Count:     cur,
		Window:    s.r.Window(),
		TargetMin: min,
		TargetMax: max,
		TargetSet: ok,
		Records:   recs,
	}, nil
}
