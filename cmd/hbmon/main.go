// Command hbmon watches a heartbeat ring file and reports the observed
// application's heart rate, goals, and health — the system-administration
// use of §2.3: detect hangs, watch program phases, diagnose performance in
// the field, all without touching the application.
//
// Usage:
//
//	hbmon -file app.hb [-interval 500ms] [-window N] [-count N]
//
// Each line reports: beat count, heart rate over the window, the advertised
// target range, and the health classification (healthy / slow / fast /
// erratic / flatlined / dead).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/hbfile"
	"repro/observer"
)

func main() {
	path := flag.String("file", "", "heartbeat ring or log file to watch (required)")
	interval := flag.Duration("interval", 500*time.Millisecond, "polling interval")
	window := flag.Int("window", 0, "rate window in beats (0 = file default)")
	count := flag.Int("count", 0, "stop after this many polls (0 = forever)")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Accept either file variant: the bounded ring or the append-only log.
	var source observer.Source
	fileWindow := 0
	if r, err := hbfile.Open(*path); err == nil {
		defer r.Close()
		fmt.Printf("watching ring %s (pid %d, window %d, capacity %d)\n", *path, r.PID(), r.Window(), r.Capacity())
		source = observer.FileSource(r)
		fileWindow = r.Window()
	} else if lr, lerr := hbfile.OpenLog(*path); lerr == nil {
		defer lr.Close()
		fmt.Printf("watching log %s (window %d, full history)\n", *path, lr.Window())
		source = observer.LogSource(lr)
		fileWindow = lr.Window()
	} else {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
		os.Exit(1)
	}

	classifier := &observer.Classifier{Window: *window, Epoch: time.Now()}
	maxRecords := *window
	if maxRecords <= 0 {
		maxRecords = fileWindow
	}
	for polls := 0; *count == 0 || polls < *count; polls++ {
		snap, err := source.Snapshot(maxRecords)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		st := classifier.Classify(snap)
		target := "no target"
		if st.TargetSet {
			target = fmt.Sprintf("target [%.2f, %.2f]", st.TargetMin, st.TargetMax)
		}
		rate := "rate  n/a"
		if st.RateOK {
			rate = fmt.Sprintf("rate %7.2f beats/s", st.Rate)
		}
		fmt.Printf("%s  beats %8d  %s  %s  health %s\n",
			time.Now().Format("15:04:05.000"), st.Count, rate, target, st.Health)
		time.Sleep(*interval)
	}
}
