package scheduler_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// clusterApp wires one heartbeat-enabled application into a sim.Cluster.
type clusterApp struct {
	hb   *heartbeat.Heartbeat
	proc *sim.Proc
}

func addClusterApp(t *testing.T, c *sim.Cluster, name string, initial int,
	min, max float64, ops func(beat uint64) float64, pf float64) *clusterApp {
	t.Helper()
	hb, err := heartbeat.New(10, heartbeat.WithClock(c.Clock()))
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.SetTarget(min, max); err != nil {
		t.Fatal(err)
	}
	a := &clusterApp{hb: hb}
	beat := uint64(0)
	a.proc = c.AddProc(name, initial, func() (sim.Work, bool) {
		if beat > 0 {
			hb.Beat() // the previous item just completed
		}
		beat++
		return sim.Work{Ops: ops(beat), ParallelFrac: pf}, true
	})
	return a
}

// Two applications with different goals share eight cores: the partitioner
// must put BOTH inside their windows and keep them there.
func TestPartitionerBalancesTwoApps(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	cluster := sim.NewCluster(clk, 8, 1e6)
	// App A: wants 8-10 beats/s, needs ~5 cores (0.5e6 ops/beat, p=0.95).
	a := addClusterApp(t, cluster, "a", 1, 8, 10, func(uint64) float64 { return 0.5e6 }, 0.95)
	// App B: wants 2-3 beats/s, needs ~2 cores (0.8e6 ops/beat, p=0.9).
	b := addClusterApp(t, cluster, "b", 1, 2, 3, func(uint64) float64 { return 0.8e6 }, 0.90)

	part, err := scheduler.NewPartitioner(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Add("a", observer.HeartbeatSource(a.hb), a.proc.SetCores, 1); err != nil {
		t.Fatal(err)
	}
	if err := part.Add("b", observer.HeartbeatSource(b.hb), b.proc.SetCores, 1); err != nil {
		t.Fatal(err)
	}

	var last []scheduler.AppStatus
	for i := 0; i < 120; i++ {
		cluster.RunUntil(clk.Now().Add(2 * time.Second))
		last, err = part.Step()
		if err != nil {
			t.Fatal(err)
		}
		if used := a.proc.Cores() + b.proc.Cores(); used > 8 {
			t.Fatalf("oversubscribed: %d cores", used)
		}
	}
	for _, st := range last {
		if !st.RateOK {
			t.Fatalf("%s: no rate", st.Name)
		}
		if st.Rate < st.TargetMin*0.95 || st.Rate > st.TargetMax*1.05 {
			t.Fatalf("%s: rate %.2f outside [%g, %g] (cores %d)",
				st.Name, st.Rate, st.TargetMin, st.TargetMax, st.Cores)
		}
	}
}

// When one application's load rises, the partitioner must shift cores from
// the over-performing application — the paper's global reallocation.
func TestPartitionerShiftsCoresOnLoadChange(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	cluster := sim.NewCluster(clk, 8, 1e6)
	// A's per-beat cost doubles at beat 200.
	a := addClusterApp(t, cluster, "a", 4, 8, 10, func(beat uint64) float64 {
		if beat > 200 {
			return 0.9e6
		}
		return 0.5e6
	}, 0.95)
	b := addClusterApp(t, cluster, "b", 4, 2, 3, func(uint64) float64 { return 0.8e6 }, 0.90)

	part, err := scheduler.NewPartitioner(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	part.Add("a", observer.HeartbeatSource(a.hb), a.proc.SetCores, 4)
	part.Add("b", observer.HeartbeatSource(b.hb), b.proc.SetCores, 3)

	coresAtPhase1 := 0
	for i := 0; i < 300; i++ {
		cluster.RunUntil(clk.Now().Add(2 * time.Second))
		if _, err := part.Step(); err != nil {
			t.Fatal(err)
		}
		if a.hb.Count() < 200 {
			coresAtPhase1 = a.proc.Cores()
		}
	}
	if a.proc.Cores() <= coresAtPhase1 {
		t.Fatalf("a's allocation did not grow with its load: phase1 %d, final %d",
			coresAtPhase1, a.proc.Cores())
	}
	// B must still be inside its window at the end.
	rate, ok := b.hb.Rate(10)
	if !ok || rate < 2*0.95 || rate > 3*1.05 {
		t.Fatalf("b's rate %.2f left its window after reallocation", rate)
	}
}

func TestPartitionerValidation(t *testing.T) {
	if _, err := scheduler.NewPartitioner(0, 5); err == nil {
		t.Fatal("0-core pool accepted")
	}
	part, err := scheduler.NewPartitioner(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := heartbeat.New(5)
	src := observer.HeartbeatSource(hb)
	set := func(n int) int { return n }
	if err := part.Add("a", nil, set, 1); err == nil {
		t.Fatal("nil source accepted")
	}
	if err := part.Add("a", src, nil, 1); err == nil {
		t.Fatal("nil actuator accepted")
	}
	if err := part.Add("a", src, set, 1); err != nil {
		t.Fatal(err)
	}
	if err := part.Add("b", src, set, 1); err != nil {
		t.Fatal(err)
	}
	if err := part.Add("c", src, set, 1); err == nil {
		t.Fatal("third app on 2 cores accepted")
	}
}

// Property: for arbitrary observed rates, the partitioner never
// oversubscribes the pool and never starves an application below one core.
func TestPartitionerInvariantsProperty(t *testing.T) {
	f := func(rates []uint16) bool {
		const total = 8
		part, err := scheduler.NewPartitioner(total, 4)
		if err != nil {
			return false
		}
		// Three fake apps whose observed rates are driven by the fuzz
		// input; targets [10, 20] each.
		cores := [3]int{2, 2, 2}
		rate := [3]float64{15, 15, 15}
		for i := 0; i < 3; i++ {
			i := i
			src := fakeSource(func(int) (observer.Snapshot, error) {
				return snapshotWithRate(rate[i], 10, 20), nil
			})
			set := func(n int) int {
				if n < 1 {
					n = 1
				}
				cores[i] = n
				return n
			}
			if err := part.Add("app", src, set, cores[i]); err != nil {
				return false
			}
		}
		for step, r := range rates {
			rate[step%3] = float64(r % 40)
			if _, err := part.Step(); err != nil {
				return false
			}
			sum := cores[0] + cores[1] + cores[2]
			if sum > total {
				return false
			}
			for _, c := range cores {
				if c < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type fakeSource func(int) (observer.Snapshot, error)

func (f fakeSource) Snapshot(n int) (observer.Snapshot, error) { return f(n) }

// snapshotWithRate fabricates a snapshot whose Rate() evaluates to
// approximately perSec beats/s.
func snapshotWithRate(perSec float64, min, max float64) observer.Snapshot {
	if perSec <= 0 {
		perSec = 0.001
	}
	base := time.Unix(0, 0)
	gap := time.Duration(float64(time.Second) / perSec)
	recs := make([]heartbeat.Record, 5)
	for i := range recs {
		recs[i] = heartbeat.Record{Seq: uint64(i + 1), Time: base.Add(time.Duration(i) * gap)}
	}
	return observer.Snapshot{
		Count: 5, Window: 5,
		TargetMin: min, TargetMax: max, TargetSet: true,
		Records: recs,
	}
}
