package balance

import (
	"context"
	"errors"
	"io"
	"testing"

	"repro/hbnet"
	"repro/observer"
)

// chanStream adapts a channel of batches to hbnet.RollupStream.
type chanStream struct{ ch chan hbnet.RollupBatch }

func (s chanStream) Next(ctx context.Context) (hbnet.RollupBatch, error) {
	select {
	case b, ok := <-s.ch:
		if !ok {
			return hbnet.RollupBatch{}, io.EOF
		}
		return b, nil
	case <-ctx.Done():
		return hbnet.RollupBatch{}, ctx.Err()
	}
}

func chanFeed(ch chan hbnet.RollupBatch) hbnet.RollupFeed {
	return func(ctx context.Context, since uint64) (hbnet.RollupStream, error) {
		return chanStream{ch}, nil
	}
}

// TestRunDrainsAndReclaimsFromFeed drives the updater end to end over a
// RollupFeed: a node flatlines in the feed and drains from the table
// while its healthy peer keeps full weight.
func TestRunDrainsAndReclaimsFromFeed(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	ch := make(chan hbnet.RollupBatch)
	done := make(chan error, 1)
	go func() { done <- u.Run(context.Background(), chanFeed(ch), 0) }()

	emit := func(rs ...observer.Rollup) {
		ch <- hbnet.RollupBatch{Rollups: rs}
	}
	emit(live("a", 0), live("b", 0))
	emit(silent("a"), live("b", 0))
	emit(silent("a"), live("b", 0))
	emit(silent("a"), live("b", 0))
	close(ch)
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("flatlined node weight = %v, want 0 after feed drain", w)
	}
	if w := u.Weight("b"); w != 1 {
		t.Fatalf("healthy node weight = %v, want 1", w)
	}
	// All of b's traffic, none of a's.
	for k := uint64(0); k < 128; k++ {
		n, ok := u.Table().Pick(k)
		if !ok || n != "b" {
			t.Fatalf("key %d -> %q, want b", k, n)
		}
	}
}

func TestRunReturnsContextError(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	ch := make(chan hbnet.RollupBatch)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- u.Run(ctx, chanFeed(ch), 0) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
}

// TestStatusHookSignature wires the hook the way a Hub would call it.
func TestStatusHookSignature(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	hook := u.StatusHook()
	hook("a", observer.Status{Health: observer.Flatlined})
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("status hook did not drain: weight %v", w)
	}
}

func TestActuatorShapesLiveWeight(t *testing.T) {
	var got []float64
	u := NewUpdater(New(WithBuckets(64)), Policy{MinDelta: 0}, WithActuator(func(node string, proposed float64) float64 {
		got = append(got, proposed)
		return proposed * 0.8
	}))
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 0.8 {
		t.Fatalf("actuated weight = %v, want 0.8", w)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("actuator saw proposals %v, want [1]", got)
	}
	// Drains bypass the actuator: liveness stays with the policy.
	u.Absorb(silent("a"), silent("a"))
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("drain was actuated away: weight %v", w)
	}
}

func TestForgetRemovesNode(t *testing.T) {
	u, swaps := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0), live("b", 0))
	n := len(*swaps)
	sw := u.Forget("a")
	if sw.Old != 1 || sw.New != 0 {
		t.Fatalf("forget swap = %+v", sw)
	}
	if len(*swaps) != n+1 {
		t.Fatalf("forget did not report its swap")
	}
	if got := u.Table().Nodes(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("nodes after forget = %v", got)
	}
	// A later rollup re-admits it fresh.
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("re-admitted node weight = %v", w)
	}
}
