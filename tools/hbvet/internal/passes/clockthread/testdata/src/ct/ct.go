// Package ct is the clockthread analyzer's golden input: types that
// store a clock and then read the wall anyway, in methods and in
// constructors, plus the shapes that must stay silent.
package ct

import "time"

// Clock is shape-matched (an interface with Now() time.Time), not
// name-matched: any clock-ish interface puts its holder under the rule.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type Holder struct {
	clk Clock
	n   int
}

func NewHolder(clk Clock) *Holder {
	h := &Holder{clk: clk}
	h.n = int(time.Now().UnixNano()) // want `constructor NewHolder of Holder calls time\.Now directly`
	return h
}

func (h *Holder) Tick() {
	time.Sleep(time.Millisecond) // want `method Tick of Holder calls time\.Sleep directly`
}

func (h *Holder) Good() time.Time {
	return h.clk.Now()
}

// A wallclock allow does not cover clockthread: the stricter analyzer
// needs its own name on the line.
func (h *Holder) WrongAllow() time.Time {
	return time.Now() //hbvet:allow wallclock -- wrong analyzer for this site // want `method WrongAllow of Holder calls time\.Now directly`
}

func (h *Holder) Excused() time.Time {
	return time.Now() //hbvet:allow clockthread -- golden test: a justified clockthread allow stays silent
}

// NoClock stores no clock: its methods answer to wallclock only, never to
// clockthread.
type NoClock struct{ n int }

func (n *NoClock) Free() time.Time { return time.Now() }

// Waiter has no Now() time.Time, so WaitHolder is not a clock holder.
type Waiter interface {
	After(d time.Duration) <-chan time.Time
}

type WaitHolder struct{ w Waiter }

func (w *WaitHolder) M() time.Time { return time.Now() }

// helper returns no clock-storing type and takes no receiver: not a
// constructor, not a method — out of scope.
func helper() time.Time { return time.Now() }
