package hbnet

import (
	"testing"

	"repro/heartbeat"
	"repro/observer"
)

// seqs builds records carrying just the sequence numbers advanceCursor
// looks at.
func seqs(ss ...uint64) []heartbeat.Record {
	recs := make([]heartbeat.Record, len(ss))
	for i, s := range ss {
		recs[i].Seq = s
	}
	return recs
}

// TestAdvanceCursor pins the resume-cursor arithmetic case by case. The
// trailing-Missed rows are the regression guard: a ring that lapped
// between its newest retained record and its head accounts for more
// positions than the cursor-to-last-Seq span, and a cursor left at the
// last Seq would re-report that loss to the subscriber on every resume.
func TestAdvanceCursor(t *testing.T) {
	cases := []struct {
		name   string
		cursor uint64
		batch  observer.Batch
		want   uint64
	}{
		{
			name:   "empty batch holds position",
			cursor: 5,
			batch:  observer.Batch{},
			want:   5,
		},
		{
			name:   "dense records advance to last seq",
			cursor: 10,
			batch:  observer.Batch{Records: seqs(11, 12, 13, 14, 15)},
			want:   15,
		},
		{
			name:   "missed only, no records retained",
			cursor: 10,
			batch:  observer.Batch{Missed: 5},
			want:   15,
		},
		{
			name:   "leading missed already inside the span",
			cursor: 10,
			batch:  observer.Batch{Records: seqs(15, 16, 17), Missed: 4},
			want:   17,
		},
		{
			name:   "trailing missed advances past last seq",
			cursor: 10,
			batch:  observer.Batch{Records: seqs(11, 12, 13), Missed: 2},
			want:   15,
		},
		{
			name:   "lap between newest record and head",
			cursor: 0,
			batch:  observer.Batch{Records: seqs(1, 2, 3, 4), Missed: 6},
			want:   10,
		},
		{
			name:   "resync-down follows restarted producer",
			cursor: 100,
			batch:  observer.Batch{Records: seqs(1, 2, 3)},
			want:   3,
		},
		{
			name:   "resync-down ignores missed above new head",
			cursor: 100,
			batch:  observer.Batch{Records: seqs(1, 2, 3), Missed: 50},
			want:   3,
		},
		{
			name:   "zero-seq foreign stream counts deliveries",
			cursor: 7,
			batch:  observer.Batch{Records: seqs(0, 0, 0), Missed: 2},
			want:   12,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := advanceCursor(tc.cursor, tc.batch); got != tc.want {
				t.Fatalf("advanceCursor(%d, %d recs, %d missed) = %d, want %d",
					tc.cursor, len(tc.batch.Records), tc.batch.Missed, got, tc.want)
			}
		})
	}
}
