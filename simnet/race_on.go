//go:build race

package simnet

// raceEnabled reports whether the race detector is compiled in; see
// race_off.go.
const raceEnabled = true
