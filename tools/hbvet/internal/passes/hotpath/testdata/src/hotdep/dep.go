// Package hotdep is the dependency side of the cross-package fact test:
// Fast exports its hotpath mark as a fact; Slow is ordinary code.
package hotdep

//hbvet:hotpath
func Fast(x int) int { return x * 2 }

// Slow allocates, but no hot path in this package reaches it, so it is
// not checked here — the question is whether *callers* may use it.
func Slow(x int) []int { return make([]int, x) }
