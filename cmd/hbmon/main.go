// Command hbmon watches a heartbeat ring or log file — or a remote hbnet
// feed — and reports the observed application's heart rate, goals, and
// health: the system-administration use of §2.3 (detect hangs, watch
// program phases, diagnose performance in the field) without touching the
// application, now across machines.
//
// Usage:
//
//	hbmon -file app.hb [-interval 500ms] [-window N] [-count N] [-follow]
//	hbmon -file app.hb -listen :9999 [-app NAME]     # relay the file over TCP
//	hbmon -connect HOST:9999 [-app NAME]             # watch a remote feed
//
// The default mode polls a full snapshot every interval. With -follow,
// hbmon tails the file incrementally: each tick reads only the records
// published since the previous one (an idle tick is a single cursor
// read), reports how many new beats arrived, and flags records lost to
// ring overwrite.
//
// With -listen, hbmon additionally serves the file as an hbnet feed so
// observers on other machines can subscribe to it — the relay case: the
// application only writes a local file, hbmon exports it. With -connect,
// hbmon is such a remote observer: it streams the named feed (always
// incremental, like -follow) and reports identically, including records
// missed across connection outages. The balance of the reporting flags
// applies to every mode. Each line reports: beat count, new beats this
// tick (incremental modes), heart rate over the window, the advertised
// target range, and the health classification (healthy / slow / fast /
// erratic / flatlined / dead).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/hbfile"
	"repro/hbnet"
	"repro/observer"
)

func main() {
	path := flag.String("file", "", "heartbeat ring or log file to watch")
	connect := flag.String("connect", "", "watch a remote hbnet feed at this address instead of a file")
	listen := flag.String("listen", "", "also serve the file as an hbnet feed on this address (requires -file)")
	app := flag.String("app", "app", "feed name to serve (-listen) or subscribe to (-connect)")
	interval := flag.Duration("interval", 500*time.Millisecond, "reporting interval")
	window := flag.Int("window", 0, "rate window in beats (0 = file default)")
	count := flag.Int("count", 0, "stop after this many reports (0 = forever)")
	follow := flag.Bool("follow", false, "tail the file incrementally instead of re-reading the window each poll")
	flag.Parse()
	if (*path == "") == (*connect == "") {
		fmt.Fprintln(os.Stderr, "hbmon: exactly one of -file or -connect is required")
		flag.Usage()
		os.Exit(2)
	}
	if *listen != "" && *path == "" {
		fmt.Fprintln(os.Stderr, "hbmon: -listen relays a file; it requires -file")
		os.Exit(2)
	}

	classifier := &observer.Classifier{Window: *window, Epoch: time.Now()}

	if *connect != "" {
		c, err := hbnet.Dial(*connect, *app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		defer c.Close()
		fmt.Printf("watching remote feed %q at %s\n", *app, *connect)
		runFollow(c, classifier, *interval, *count)
		return
	}

	// Accept either file variant: the bounded ring or the append-only log.
	var (
		source     observer.Source
		stream     observer.Stream
		fileWindow int
	)
	if r, err := hbfile.Open(*path); err == nil {
		defer r.Close()
		fmt.Printf("watching ring %s (pid %d, window %d, capacity %d)\n", *path, r.PID(), r.Window(), r.Capacity())
		source = observer.FileSource(r)
		stream = observer.FileStream(r, *interval/10)
		fileWindow = r.Window()
	} else if lr, lerr := hbfile.OpenLog(*path); lerr == nil {
		defer lr.Close()
		fmt.Printf("watching log %s (window %d, full history)\n", *path, lr.Window())
		source = observer.LogSource(lr)
		stream = observer.LogStream(lr, *interval/10)
		fileWindow = lr.Window()
	} else {
		// Neither variant opened: show both failures — the ring error
		// alone would hide why a log file was rejected.
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat ring:", err)
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat log:", lerr)
		os.Exit(1)
	}

	if *listen != "" {
		srv := hbnet.NewServer()
		// Each subscriber opens its own reader of the file, so the relay
		// and the local report never share a cursor.
		if err := srv.Publish(*app, hbnet.FileFeed(*path, *interval/10)); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		// Bind synchronously so a bad address fails the command outright;
		// once serving, a relay failure only warns — the local monitor
		// keeps reporting.
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		defer srv.Close()
		go func() {
			if err := srv.Serve(l); err != nil {
				fmt.Fprintln(os.Stderr, "hbmon: relay stopped:", err)
			}
		}()
		fmt.Printf("serving feed %q on %s\n", *app, l.Addr())
	}

	if *follow {
		runFollow(stream, classifier, *interval, *count)
		return
	}

	maxRecords := *window
	if maxRecords <= 0 {
		maxRecords = fileWindow
	}
	for polls := 0; *count == 0 || polls < *count; polls++ {
		snap, err := source.Snapshot(maxRecords)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		report(classifier.Classify(snap), -1, 0)
		time.Sleep(*interval)
	}
}

// runFollow is the incremental mode shared by -follow and -connect:
// absorb new records as they land, judge and report every interval.
func runFollow(stream observer.Stream, classifier *observer.Classifier, interval time.Duration, count int) {
	win := observer.NewWindow(classifier.Window)
	ctx := context.Background()
	var lastCount, lastMissed uint64
	for reports := 0; count == 0 || reports < count; reports++ {
		if _, err := observer.CollectInto(ctx, stream, win, time.Now().Add(interval)); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		st := classifier.ClassifyWindow(win)
		delta := int64(st.Count) - int64(lastCount)
		if delta < 0 {
			delta = 0 // the file was recreated under us
		}
		report(st, delta, win.Missed()-lastMissed)
		lastCount, lastMissed = st.Count, win.Missed()
	}
}

// report prints one status line; delta < 0 means "don't show new-beat
// accounting" (snapshot mode).
func report(st observer.Status, delta int64, missed uint64) {
	target := "no target"
	if st.TargetSet {
		target = fmt.Sprintf("target [%.2f, %.2f]", st.TargetMin, st.TargetMax)
	}
	rate := "rate  n/a"
	if st.RateOK {
		rate = fmt.Sprintf("rate %7.2f beats/s", st.Rate)
	}
	line := fmt.Sprintf("%s  beats %8d", time.Now().Format("15:04:05.000"), st.Count)
	if delta >= 0 {
		line += fmt.Sprintf("  +%d", delta)
	}
	line += fmt.Sprintf("  %s  %s  health %s", rate, target, st.Health)
	if missed > 0 {
		line += fmt.Sprintf("  (missed %d: consumer outran by ring overwrite)", missed)
	}
	fmt.Println(line)
}
