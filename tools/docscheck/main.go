// Command docscheck keeps the markdown documentation honest: it fails
// when a Go code block in README.md (or any other given markdown file)
// drifts from the source it claims to come from.
//
// Every ```go fence must be annotated with an HTML comment on one of the
// three lines above it:
//
//	<!-- snippet: hbnet/example_test.go -->   the block is an excerpt: every
//	                                          non-blank line must appear, in
//	                                          order, in the named file
//	<!-- snippet: freestanding -->            the block is illustrative; it
//	                                          must still parse as Go
//
// An unannotated fence is an error — each block must either be tied to
// compiled code (the godoc Example functions `make docs` runs) or
// explicitly declared freestanding, so future edits cannot silently
// introduce unchecked code samples.
//
//	go run ./tools/docscheck README.md ARCHITECTURE.md
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md"}
	}
	failed := false
	for _, f := range files {
		for _, err := range checkFile(f) {
			failed = true
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// fence is one ```go block with its annotation.
type fence struct {
	file    string
	line    int // 1-based line of the opening ```go
	snippet string
	code    []string
}

func checkFile(path string) []error {
	data, err := os.ReadFile(path)
	if err != nil {
		return []error{err}
	}
	var errs []error
	for _, f := range parseFences(path, strings.Split(string(data), "\n")) {
		if err := checkFence(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

func parseFences(path string, lines []string) []fence {
	var out []fence
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		f := fence{file: path, line: i + 1}
		// The annotation may sit up to three lines above the fence.
		for back := 1; back <= 3 && i-back >= 0; back++ {
			t := strings.TrimSpace(lines[i-back])
			if rest, ok := strings.CutPrefix(t, "<!-- snippet:"); ok {
				f.snippet = strings.TrimSpace(strings.TrimSuffix(rest, "-->"))
				break
			}
		}
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			f.code = append(f.code, lines[i])
		}
		out = append(out, f)
	}
	return out
}

func checkFence(f fence) error {
	where := fmt.Sprintf("%s:%d", f.file, f.line)
	switch f.snippet {
	case "":
		return fmt.Errorf("%s: go block without a <!-- snippet: ... --> annotation (name its source file, or mark it freestanding)", where)
	case "freestanding":
		return checkParses(where, f.code)
	default:
		if err := checkParses(where, f.code); err != nil {
			return err
		}
		return checkExcerpt(where, f.snippet, f.code)
	}
}

// checkParses accepts either a whole file or a fragment that parses
// inside a function body.
func checkParses(where string, code []string) error {
	src := strings.Join(code, "\n")
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "block.go", src, 0); err == nil {
		return nil
	}
	wrapped := "package p\nfunc _() {\n" + src + "\n}\n"
	if _, err := parser.ParseFile(fset, "block.go", wrapped, 0); err != nil {
		return fmt.Errorf("%s: block does not parse as Go: %v", where, err)
	}
	return nil
}

// checkExcerpt verifies every non-blank block line appears, in order, in
// the named source file (whitespace-normalized) — so renaming an API or
// reshaping an example breaks the build until the docs follow.
func checkExcerpt(where, src string, code []string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return fmt.Errorf("%s: snippet source: %w", where, err)
	}
	have := strings.Split(string(data), "\n")
	for i := range have {
		have[i] = strings.TrimSpace(have[i])
	}
	pos := 0
	for _, raw := range code {
		want := strings.TrimSpace(raw)
		if want == "" {
			continue
		}
		found := false
		for ; pos < len(have); pos++ {
			if have[pos] == want {
				found = true
				pos++
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: line %q not found (in order) in %s — the doc drifted from the code", where, want, src)
		}
	}
	return nil
}
